module vransim

go 1.22
