// Package cliutil centralizes the width/mechanism/protocol flag
// vocabulary shared by the command-line front-ends (vranpipe,
// vranserve) and flag-driven examples, so every binary accepts the same
// spellings and prints the same error messages.
package cliutil

import (
	"fmt"
	"strings"

	"vransim/internal/core"
	"vransim/internal/simd"
	"vransim/internal/transport"
)

// WidthHelp documents the -width flag.
const WidthHelp = "SIMD width in bits: 128, 256 or 512"

// MechHelp documents the -mech flag.
const MechHelp = "arrangement mechanism: original, apcm, apcm+shuffle, apcm+rotate, shuffle, scalar"

// ProtoHelp documents the -proto flag.
const ProtoHelp = "udp or tcp"

// ParseWidth maps a -width value to the simd register width.
func ParseWidth(bits int) (simd.Width, error) {
	switch bits {
	case 128:
		return simd.W128, nil
	case 256:
		return simd.W256, nil
	case 512:
		return simd.W512, nil
	}
	return 0, fmt.Errorf("width must be 128, 256 or 512 (got %d)", bits)
}

// ParseStrategy maps a -mech value to the arrangement strategy.
func ParseStrategy(name string) (core.Strategy, error) {
	switch strings.ToLower(name) {
	case "original":
		return core.StrategyExtract, nil
	case "apcm":
		return core.StrategyAPCM, nil
	case "apcm+shuffle":
		return core.StrategyAPCMShuffle, nil
	case "apcm+rotate":
		return core.StrategyAPCMRotate, nil
	case "shuffle":
		return core.StrategyShuffle, nil
	case "scalar":
		return core.StrategyScalar, nil
	}
	return 0, fmt.Errorf("unknown mechanism %q (want original, apcm, apcm+shuffle, apcm+rotate, shuffle or scalar)", name)
}

// ParseProto maps a -proto value to the transport protocol.
func ParseProto(name string) (transport.Proto, error) {
	switch strings.ToLower(name) {
	case "udp":
		return transport.UDP, nil
	case "tcp":
		return transport.TCP, nil
	}
	return 0, fmt.Errorf("protocol must be udp or tcp (got %q)", name)
}
