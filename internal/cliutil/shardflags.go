package cliutil

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"vransim/internal/chaos"
	"vransim/internal/ran"
	"vransim/internal/shard"
	"vransim/internal/tune"
)

// This file is the flag plumbing shared by the serving binaries —
// vranserve (single process), vranshard (shard worker) and vrancoord
// (fleet coordinator) — so the three accept the same runtime, chaos and
// rebalance vocabulary instead of copy-pasting flag blocks that drift.

// RuntimeFlags is the serving-runtime flag set: every knob that shapes
// a ran.Config, registered with identical names and defaults across the
// binaries.
type RuntimeFlags struct {
	Cells, Workers, Width *int
	Mech                  *string
	K, Iters, Queue       *int
	Deadline, Window      *time.Duration
	HARQRetries           *int
	HARQProcs             *int
	Sched                 *bool
	TuneCache             *string
	Class                 *string
	URLLCDeadline         *time.Duration
	Predict               *bool
	PredictWindow         *time.Duration
}

// RegisterRuntime registers the runtime flags on fs.
func RegisterRuntime(fs *flag.FlagSet) *RuntimeFlags {
	return &RuntimeFlags{
		Cells:         fs.Int("cells", 3, "number of served cells"),
		Workers:       fs.Int("workers", 4, "decode worker pool size"),
		Width:         fs.Int("width", 512, WidthHelp),
		Mech:          fs.String("mech", "apcm", MechHelp),
		K:             fs.Int("k", 40, "turbo code block size"),
		Iters:         fs.Int("iters", 4, "turbo decoder iteration budget"),
		Deadline:      fs.Duration("deadline", 10*time.Millisecond, "per-block HARQ processing budget (the emulated decoder is ~1000x a real one, so the default budget is loose)"),
		Window:        fs.Duration("window", 500*time.Microsecond, "lane-fill batch window"),
		Queue:         fs.Int("queue", 64, "per-cell ingress queue depth"),
		HARQRetries:   fs.Int("harq-retries", 3, "HARQ retransmission budget per block (0 disables the retry path)"),
		HARQProcs:     fs.Int("harq-procs", 8, "HARQ processes per (cell, UE)"),
		Sched:         fs.Bool("sched", false, "route worker program compilations through the port-aware scheduling pass"),
		TuneCache:     fs.String("tunecache", "", "vrantune plan cache file; workers warm-start from it and skip compile+search for the tuned grid"),
		Class:         fs.String("class", "", "per-cell SLA class list, comma-separated and cycled over cells (e.g. \"urllc,embb\"); empty = class-blind"),
		URLLCDeadline: fs.Duration("urllc-deadline", 0, "processing budget override for URLLC-class blocks (0: same as -deadline)"),
		Predict:       fs.Bool("predict", false, "arm the per-cell MMPP burst predictor feeding the class-aware shed ladder"),
		PredictWindow: fs.Duration("predict-window", time.Millisecond, "burst predictor rate-estimation window"),
	}
}

// Config resolves the parsed flags into a ran.Config (width and
// mechanism validated).
func (rf *RuntimeFlags) Config() (ran.Config, error) {
	w, err := ParseWidth(*rf.Width)
	if err != nil {
		return ran.Config{}, err
	}
	s, err := ParseStrategy(*rf.Mech)
	if err != nil {
		return ran.Config{}, err
	}
	cfg := ran.DefaultConfig(w, s)
	cfg.Cells = *rf.Cells
	cfg.Workers = *rf.Workers
	cfg.QueueDepth = *rf.Queue
	cfg.MaxIters = *rf.Iters
	cfg.BatchWindow = *rf.Window
	cfg.Deadline = *rf.Deadline
	cfg.HARQ = ran.HARQConfig{MaxRetries: *rf.HARQRetries, Processes: *rf.HARQProcs}
	cfg.Schedule = *rf.Sched
	classes, err := ran.ParseClassList(*rf.Class, cfg.Cells)
	if err != nil {
		return ran.Config{}, fmt.Errorf("-class: %w", err)
	}
	cfg.SLA = ran.SLAConfig{Classes: classes, URLLCDeadline: *rf.URLLCDeadline}
	cfg.Predict = ran.PredictConfig{Enabled: *rf.Predict, Window: *rf.PredictWindow}
	if *rf.TuneCache != "" {
		c, err := tune.Load(*rf.TuneCache)
		if err != nil {
			return ran.Config{}, fmt.Errorf("-tunecache: %w", err)
		}
		cfg.TuneCache = c
	}
	return cfg, nil
}

// ChaosFlags is the fault-injection flag set. The decode-path rates
// match vranserve's historical flags; the chaos-link* rates arm the
// fronthaul sites and only matter to binaries that own a data link.
type ChaosFlags struct {
	On                                *bool
	Seed                              *int64
	Corrupt, CRC, Stall, Queue, Evict *float64
	Compile                           *float64
	LinkDrop, LinkDelay, LinkPart     *float64
	LinkPartFor                       *time.Duration
}

// RegisterChaos registers the chaos flags on fs.
func RegisterChaos(fs *flag.FlagSet) *ChaosFlags {
	return &ChaosFlags{
		On:          fs.Bool("chaos", false, "arm the fault injector (see -chaos-* rates)"),
		Seed:        fs.Int64("chaos-seed", 0, "fault injector seed (0: derive from -seed)"),
		Corrupt:     fs.Float64("chaos-corrupt", 0.05, "probability a submitted word is received noisily"),
		CRC:         fs.Float64("chaos-crc", 0.05, "probability a decode's CRC verdict is forced to fail"),
		Stall:       fs.Float64("chaos-stall", 0, "probability a worker stalls before a batch decode"),
		Queue:       fs.Float64("chaos-queue", 0, "probability admission behaves as if the cell queue were full"),
		Evict:       fs.Float64("chaos-evict", 0, "probability a worker's plan cache is flushed before a batch"),
		Compile:     fs.Float64("chaos-compilefail", 0, "probability a program compile-verify is failed"),
		LinkDrop:    fs.Float64("chaos-linkdrop", 0, "probability a fronthaul data frame is lost in flight"),
		LinkDelay:   fs.Float64("chaos-linkdelay", 0, "probability a fronthaul data frame is reordered behind its successor"),
		LinkPart:    fs.Float64("chaos-linkpart", 0, "probability a fronthaul partition window opens"),
		LinkPartFor: fs.Duration("chaos-linkpart-for", 5*time.Millisecond, "fronthaul partition window length"),
	}
}

// Injector builds the armed injector, or nil when -chaos is unset.
// defaultSeed backs -chaos-seed 0 (conventionally the traffic seed).
func (cf *ChaosFlags) Injector(defaultSeed int64) *chaos.Injector {
	if !*cf.On {
		return nil
	}
	seed := *cf.Seed
	if seed == 0 {
		seed = defaultSeed
	}
	return chaos.New(chaos.Config{
		Seed:          seed,
		CorruptRate:   *cf.Corrupt,
		CRCRate:       *cf.CRC,
		StallRate:     *cf.Stall,
		QueueRate:     *cf.Queue,
		EvictRate:     *cf.Evict,
		CompileRate:   *cf.Compile,
		LinkDropRate:  *cf.LinkDrop,
		LinkDelayRate: *cf.LinkDelay,
		LinkPartRate:  *cf.LinkPart,
		LinkPartFor:   *cf.LinkPartFor,
	})
}

// RebalanceFlags is the coordinator's load-rebalance policy flag set.
type RebalanceFlags struct {
	Every                  *time.Duration
	Skew, Streak           *int
	Cooldown, DrainTimeout *time.Duration
}

// RegisterRebalance registers the rebalance flags on fs.
func RegisterRebalance(fs *flag.FlagSet) *RebalanceFlags {
	return &RebalanceFlags{
		Every:        fs.Duration("rebalance-every", 0, "rebalancer poll period (0 disables automatic rebalancing)"),
		Skew:         fs.Int("rebalance-skew", 32, "minimum busiest-to-idlest backlog gap (blocks) to count toward the streak"),
		Streak:       fs.Int("rebalance-streak", 3, "consecutive skewed polls before a cell moves"),
		Cooldown:     fs.Duration("rebalance-cooldown", 0, "per-cell ineligibility window after a move (0: 50x the poll period)"),
		DrainTimeout: fs.Duration("drain-timeout", 5*time.Second, "per-migration drain budget"),
	}
}

// Config resolves the parsed flags into a shard.RebalanceConfig.
func (rb *RebalanceFlags) Config() shard.RebalanceConfig {
	return shard.RebalanceConfig{
		Every:        *rb.Every,
		Skew:         *rb.Skew,
		Streak:       *rb.Streak,
		Cooldown:     *rb.Cooldown,
		DrainTimeout: *rb.DrainTimeout,
	}
}

// ParseShardAddrs splits a -shards value ("host:port,host:port,…") into
// the shard worker addresses, rejecting empty lists and entries without
// a port.
func ParseShardAddrs(csv string) ([]string, error) {
	var addrs []string
	for _, a := range strings.Split(csv, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		if !strings.Contains(a, ":") {
			return nil, fmt.Errorf("shard address %q has no port", a)
		}
		addrs = append(addrs, a)
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("no shard addresses (want host:port[,host:port...])")
	}
	return addrs, nil
}
