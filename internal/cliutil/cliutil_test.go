package cliutil

import (
	"testing"

	"vransim/internal/core"
	"vransim/internal/simd"
	"vransim/internal/transport"
)

func TestParseWidth(t *testing.T) {
	for bits, want := range map[int]simd.Width{128: simd.W128, 256: simd.W256, 512: simd.W512} {
		got, err := ParseWidth(bits)
		if err != nil || got != want {
			t.Errorf("ParseWidth(%d) = %v, %v", bits, got, err)
		}
	}
	if _, err := ParseWidth(64); err == nil {
		t.Error("ParseWidth(64) should fail")
	}
}

func TestParseStrategy(t *testing.T) {
	cases := map[string]core.Strategy{
		"original":     core.StrategyExtract,
		"apcm":         core.StrategyAPCM,
		"APCM":         core.StrategyAPCM, // case-insensitive
		"apcm+shuffle": core.StrategyAPCMShuffle,
		"apcm+rotate":  core.StrategyAPCMRotate,
		"shuffle":      core.StrategyShuffle,
		"scalar":       core.StrategyScalar,
	}
	for name, want := range cases {
		got, err := ParseStrategy(name)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseStrategy("avx1024"); err == nil {
		t.Error("unknown mechanism should fail")
	}
}

func TestParseProto(t *testing.T) {
	if p, err := ParseProto("udp"); err != nil || p != transport.UDP {
		t.Errorf("udp: %v, %v", p, err)
	}
	if p, err := ParseProto("TCP"); err != nil || p != transport.TCP {
		t.Errorf("TCP: %v, %v", p, err)
	}
	if _, err := ParseProto("sctp"); err == nil {
		t.Error("sctp should fail")
	}
}
