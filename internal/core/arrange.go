// Package core implements the paper's primary contribution: the data
// arrangement process that converts the interleaved LLR stream
//
//	[S1₁ YP1₁ YP2₁ S1₂ YP1₂ YP2₂ …]   (one int16 per element)
//
// produced by rate de-matching into the three segregated, SIMD-aligned
// arrays (systematic, parity 1, parity 2) that the turbo decoder's
// gamma/alpha/beta/extrinsic kernels consume — in two ways:
//
//   - Extract: the original mechanism, built exclusively from SIMD data
//     movement instructions (pextrw, vextracti128, vextracti32x8). It
//     moves 16 bits per store µop, saturates the store ports, and leaves
//     the vector ALU ports idle.
//   - APCM (Arithmetic Ports Consciousness Mechanism): samples each
//     cluster with vpand masks, congregates them with vpor (work that
//     runs on the otherwise-idle vector ALU ports 0-2), aligns the
//     clusters with the rotate-mimic of the paper's Figure 12, and then
//     stores whole registers — one full-width store per cluster per
//     group.
//
// Both produce the same logical result; they differ in the µop stream
// they emit and therefore in every microarchitectural metric the paper
// reports (Figures 8b, 9, 13-16).
package core

import (
	"fmt"

	"vransim/internal/simd"
)

// Strategy enumerates the implemented arrangement mechanisms.
type Strategy int

const (
	// StrategyScalar is a plain scalar-instruction reference.
	StrategyScalar Strategy = iota
	// StrategyExtract is the original extract-based mechanism.
	StrategyExtract
	// StrategyAPCM is the paper's mechanism with the rotate-mimic.
	StrategyAPCM
	// StrategyAPCMShuffle is the ablation that restores natural lane
	// order with one extra shuffle per congregated register instead of
	// the rotate-mimic.
	StrategyAPCMShuffle
	// StrategyAPCMRotate is the ablation using an explicit lane-rotate
	// instruction (which x86 lacks; see Figure 12) instead of the
	// offset-read mimic.
	StrategyAPCMRotate
	// StrategyShuffle is the classic shuffle-based AoS->SoA
	// de-interleave (single-source permutes + OR merges).
	StrategyShuffle
)

// String names the strategy as the experiment tables do.
func (s Strategy) String() string {
	switch s {
	case StrategyScalar:
		return "scalar"
	case StrategyExtract:
		return "original"
	case StrategyAPCM:
		return "apcm"
	case StrategyAPCMShuffle:
		return "apcm+shuffle"
	case StrategyAPCMRotate:
		return "apcm+rotate"
	case StrategyShuffle:
		return "shuffle"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// Dest carries the base addresses of the three segregated output arrays.
type Dest struct {
	S, P1, P2 int64
}

// Cluster identifies one of the three output arrays.
type Cluster int

// The three clusters of the decoder input.
const (
	ClusterS Cluster = iota
	ClusterP1
	ClusterP2
)

func (c Cluster) String() string {
	switch c {
	case ClusterS:
		return "systematic"
	case ClusterP1:
		return "yparity1"
	case ClusterP2:
		return "yparity2"
	}
	return "?"
}

// Base returns the cluster's base address within d.
func (d Dest) Base(c Cluster) int64 {
	switch c {
	case ClusterS:
		return d.S
	case ClusterP1:
		return d.P1
	case ClusterP2:
		return d.P2
	}
	panic("core: bad cluster")
}

// Arranger is one data arrangement mechanism.
type Arranger interface {
	// Name labels the mechanism in reports.
	Name() string
	// Strategy returns the mechanism's identity.
	Strategy() Strategy
	// Layout describes how Arrange lays elements out in the destination
	// arrays at register width w.
	Layout(w simd.Width) Layout
	// Arrange reads n interleaved (S, P1, P2) triples of int16 at src
	// and writes the three segregated arrays at dst, emitting its µop
	// stream into e's trace. n need not be a multiple of the SIMD group
	// size; the tail is handled with scalar element copies.
	Arrange(e *simd.Engine, src int64, dst Dest, n int)
}

// ByStrategy returns the Arranger implementing s.
func ByStrategy(s Strategy) Arranger {
	switch s {
	case StrategyScalar:
		return ScalarArranger{}
	case StrategyExtract:
		return ExtractArranger{}
	case StrategyAPCM:
		return APCMArranger{}
	case StrategyAPCMShuffle:
		return APCMArranger{NaturalOrder: true}
	case StrategyAPCMRotate:
		return APCMArranger{ExplicitRotate: true}
	case StrategyShuffle:
		return ShuffleArranger{}
	}
	panic("core: bad strategy")
}

// Layout describes where natural-order element j of each cluster lives in
// the destination arrays, so any consumer (or test) can read the result
// of any mechanism uniformly.
type Layout struct {
	// GroupLanes is the number of triples handled per SIMD group (the
	// 16-bit lane count of the register width).
	GroupLanes int
	// StrideLanes is the number of lanes each group block occupies in a
	// destination array (>= GroupLanes; APCM pads each block with two
	// lanes for the rotate-mimic's duplicated elements).
	StrideLanes int
	// Rot is the per-cluster read offset in lanes: a consumer reading
	// group g of cluster c as a vector starts at lane g*StrideLanes +
	// Rot[c] (the rotate-mimic of Figure 12).
	Rot [3]int
	// LanePos maps the natural within-group element index jj to the
	// lane (relative to the rotated read position) where it is stored.
	// Identity for natural-order mechanisms.
	LanePos []int
}

// ElementAddr returns the byte address of natural-order element j of
// cluster c in the array based at base.
func (l Layout) ElementAddr(base int64, c Cluster, j int) int64 {
	g, jj := j/l.GroupLanes, j%l.GroupLanes
	lane := l.LanePos[jj] + l.Rot[c]
	// The stored block is unrotated: positions wrap within the group.
	if lane >= l.GroupLanes {
		lane -= l.GroupLanes
	}
	return base + 2*int64(g*l.StrideLanes+lane)
}

// DstBytes returns how many bytes one destination array needs to hold n
// elements under this layout (including rotate-mimic padding).
func (l Layout) DstBytes(n int) int {
	groups := (n + l.GroupLanes - 1) / l.GroupLanes
	return 2 * (groups*l.StrideLanes + 2)
}

// ReadNatural gathers the n elements of cluster c back into natural
// order. It is a functional helper for tests and consumers; it performs
// no µop emission.
func (l Layout) ReadNatural(mem *simd.Memory, base int64, c Cluster, n int) []int16 {
	out := make([]int16, n)
	for j := range out {
		out[j] = mem.ReadI16(l.ElementAddr(base, c, j))
	}
	return out
}

// naturalPosByL caches the identity lane-position table per lane count.
// Built at init for every supported width and read-only afterwards, so
// concurrent Layout calls (one engine per worker goroutine) are safe.
var naturalPosByL = func() map[int][]int {
	m := make(map[int][]int, len(simd.Widths))
	for _, w := range simd.Widths {
		L := w.Lanes16()
		pos := make([]int, L)
		for i := range pos {
			pos[i] = i
		}
		m[L] = pos
	}
	return m
}()

// naturalPos returns the identity lane-position table for L lanes
// without allocating for the supported widths.
func naturalPos(L int) []int {
	if pos, ok := naturalPosByL[L]; ok {
		return pos
	}
	pos := make([]int, L)
	for i := range pos {
		pos[i] = i
	}
	return pos
}

// identityLayout is the natural contiguous layout for width w.
func identityLayout(w simd.Width) Layout {
	lanes := w.Lanes16()
	return Layout{GroupLanes: lanes, StrideLanes: lanes, LanePos: naturalPos(lanes)}
}

// WriteInterleaved stores the three equal-length cluster slices as one
// interleaved [S P1 P2 …] stream at base, returning the number of triples.
// It is a workload-construction helper and emits no µops.
func WriteInterleaved(mem *simd.Memory, base int64, s, p1, p2 []int16) int {
	if len(s) != len(p1) || len(s) != len(p2) {
		panic("core: cluster length mismatch")
	}
	for i := range s {
		mem.WriteI16(base+int64(6*i), s[i])
		mem.WriteI16(base+int64(6*i+2), p1[i])
		mem.WriteI16(base+int64(6*i+4), p2[i])
	}
	return len(s)
}

// InterleavedBytes is the size of an n-triple interleaved input stream.
func InterleavedBytes(n int) int { return 6 * n }

// WriteInterleavedPacked writes one block's triples into a cross-block
// SoA-packed interleaved stream: nb same-K blocks share one stream in
// which element i of block b sits at packed position i*nb+b, so element
// i of blocks 0..nb-1 are adjacent. One Arrange call over the packed
// stream (n = nb*K elements) then arranges every in-flight block at
// once — the packed layout is what lets the K-indexed decode phases
// (gamma, extrinsic finalize, interleave, hard decisions) run once per
// iteration for all blocks instead of once per block. Like
// WriteInterleaved this is input copy-in, not part of the measured
// arrangement mechanism, so it uses plain memory writes and emits no
// µops.
func WriteInterleavedPacked(mem *simd.Memory, base int64, b, nb int, s, p1, p2 []int16) int {
	if len(s) != len(p1) || len(s) != len(p2) {
		panic("core: cluster length mismatch")
	}
	for i := range s {
		o := base + int64(6*(i*nb+b))
		mem.WriteI16(o, s[i])
		mem.WriteI16(o+2, p1[i])
		mem.WriteI16(o+4, p2[i])
	}
	return len(s)
}

// scalarTail copies triples [from, n) with plain scalar loads and stores,
// used by every SIMD mechanism for the non-multiple-of-group remainder.
func scalarTail(e *simd.Engine, src int64, dst Dest, lay Layout, from, n int) {
	for j := from; j < n; j++ {
		for c := ClusterS; c <= ClusterP2; c++ {
			sa := src + int64(6*j+2*int(c))
			da := lay.ElementAddr(dst.Base(c), c, j)
			e.CopyI16(da, sa)
		}
	}
}
