package core

import "vransim/internal/simd"

// ExtractArranger is the original mechanism used by the vRAN platform
// (Section 5.2 of the paper): after a full-register load of the
// interleaved stream, every element is moved to its destination array
// with a 16-bit pextrw store.
//
//   - xmm (SSE128): pextrw can address every lane directly.
//   - ymm (AVX256): pextrw reaches only the low 128 bits, so the upper
//     half must first be moved down with vextracti128 — the extra step
//     that makes the original mechanism *slower* on wider registers.
//   - zmm (AVX512): vextracti32x8 moves a 256-bit half down; selecting
//     the low half clobbers the rest of the register, so the source must
//     be reloaded (vmovdqa64) before the upper half can be processed.
type ExtractArranger struct{}

// Name implements Arranger.
func (ExtractArranger) Name() string { return "original" }

// Strategy implements Arranger.
func (ExtractArranger) Strategy() Strategy { return StrategyExtract }

// Layout implements Arranger: natural contiguous order.
func (ExtractArranger) Layout(w simd.Width) Layout { return identityLayout(w) }

// Arrange implements Arranger.
func (a ExtractArranger) Arrange(e *simd.Engine, src int64, dst Dest, n int) {
	lanes := e.W.Lanes16()
	groups := n / lanes
	reg := e.AcquireVec()
	half := e.AcquireVec()
	quarter := e.AcquireVec()

	for g := 0; g < groups; g++ {
		baseLane := 3 * g * lanes // first interleaved lane of the group
		for r := 0; r < 3; r++ {
			addr := src + int64(2*(baseLane+r*lanes))
			e.LoadVec(reg, addr)
			switch e.W {
			case simd.W128:
				a.extractRun(e, reg, dst, g, r, 0, 8, 0)
			case simd.W256:
				a.extractRun(e, reg, dst, g, r, 0, 8, 0)
				e.VExtractI128(half, reg, 1)
				a.extractRun(e, half, dst, g, r, 8, 16, 8)
			case simd.W512:
				// Low 256 bits.
				e.VExtractI32x8(half, reg, 0)
				a.extractRun(e, half, dst, g, r, 0, 8, 0)
				e.VExtractI128(quarter, half, 1)
				a.extractRun(e, quarter, dst, g, r, 8, 16, 8)
				// The extract destroyed the rest of the working
				// register set: reload before taking the high half
				// (the +6.4% CPU-time penalty of Figure 14).
				e.LoadVec(reg, addr)
				e.VExtractI32x8(half, reg, 1)
				a.extractRun(e, half, dst, g, r, 16, 24, 16)
				e.VExtractI128(quarter, half, 1)
				a.extractRun(e, quarter, dst, g, r, 24, 32, 24)
			}
		}
		// Loop bookkeeping: pointer advance and loop branch.
		e.EmitScalar("add", 1)
		e.EmitBranch("jnz")
	}
	e.ReleaseVec(reg, half, quarter)
	scalarTail(e, src, dst, a.Layout(e.W), groups*lanes, n)
}

// extractRun extracts register lanes [lo,hi) of the logical register r of
// group g. regLaneOff is the logical lane index of the physical lane 0 of
// v (pextrw can only address the low 128 bits, so callers pass the
// shifted view).
func (ExtractArranger) extractRun(e *simd.Engine, v *simd.Vec, dst Dest, g, r, lo, hi, regLaneOff int) {
	lanes := e.W.Lanes16()
	for l := lo; l < hi; l++ {
		k := 3*g*lanes + r*lanes + l // global interleaved lane
		c := Cluster(k % 3)
		j := k / 3 // natural element index
		e.PExtrWToMem(dst.Base(c)+int64(2*j), v, l-regLaneOff)
	}
}
