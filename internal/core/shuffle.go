package core

import "vransim/internal/simd"

// ShuffleArranger de-interleaves with single-source word permutes
// (vpermw/pshufb-style) and OR-merges: for each output cluster, each of
// the three input registers is permuted so its cluster elements land in
// their natural positions (other lanes zeroed), and the three partial
// results are ORed. This is the classic shuffle-based AoS→SoA transform
// — a third point in the design space between the extract-based original
// (store-port bound) and APCM (vector-ALU bound): it produces natural
// order directly but leans on the shuffle ports, which on a real Skylake
// are scarcer (port 5 only) than the paper's model assumes. The
// `abl-ports` style WithPorts ablation can restrict VecShuffle to a
// single port to expose exactly that.
type ShuffleArranger struct{}

// Name implements Arranger.
func (ShuffleArranger) Name() string { return "shuffle" }

// Strategy implements Arranger.
func (ShuffleArranger) Strategy() Strategy { return StrategyShuffle }

// Layout implements Arranger: natural contiguous order.
func (ShuffleArranger) Layout(w simd.Width) Layout { return identityLayout(w) }

// shuffleIdxByL caches the permute tables per lane count: for output
// cluster c, input register r contributes element jj (at its lane
// (3jj+c) mod L) to output lane jj; every other lane selects zero.
// Built at init per supported width, read-only afterwards.
var shuffleIdxByL = func() map[int][3][3][]int {
	m := make(map[int][3][3][]int, len(simd.Widths))
	for _, w := range simd.Widths {
		m[w.Lanes16()] = buildShuffleIdx(w.Lanes16())
	}
	return m
}()

func buildShuffleIdx(L int) [3][3][]int {
	var idx [3][3][]int
	for c := 0; c < 3; c++ {
		for r := 0; r < 3; r++ {
			tab := make([]int, L)
			for i := range tab {
				tab[i] = -1
			}
			for jj := 0; jj < L; jj++ {
				k := 3*jj + c
				if k/L == r {
					tab[jj] = k % L
				}
			}
			idx[c][r] = tab
		}
	}
	return idx
}

// Arrange implements Arranger.
func (a ShuffleArranger) Arrange(e *simd.Engine, src int64, dst Dest, n int) {
	L := e.W.Lanes16()
	groups := n / L
	lay := a.Layout(e.W)
	if groups > 0 {
		in := [3]*simd.Vec{e.AcquireVec(), e.AcquireVec(), e.AcquireVec()}
		t0, t1, acc := e.AcquireVec(), e.AcquireVec(), e.AcquireVec()

		idx, ok := shuffleIdxByL[L]
		if !ok {
			idx = buildShuffleIdx(L)
		}

		for g := 0; g < groups; g++ {
			baseLane := 3 * g * L
			for r := 0; r < 3; r++ {
				e.LoadVec(in[r], src+int64(2*(baseLane+r*L)))
			}
			for c := 0; c < 3; c++ {
				e.PermuteW(t0, in[0], idx[c][0])
				e.PermuteW(t1, in[1], idx[c][1])
				e.POr(acc, t0, t1)
				e.PermuteW(t0, in[2], idx[c][2])
				e.POr(acc, acc, t0)
				e.StoreVec(dst.Base(Cluster(c))+2*int64(g*L), acc)
			}
			e.EmitScalar("add", 1)
			e.EmitBranch("jnz")
		}
		e.ReleaseVec(in[0], in[1], in[2], t0, t1, acc)
	}
	scalarTail(e, src, dst, lay, groups*L, n)
}
