package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vransim/internal/simd"
	"vransim/internal/trace"
	"vransim/internal/uarch"
)

var allStrategies = []Strategy{
	StrategyScalar, StrategyExtract, StrategyAPCM, StrategyAPCMShuffle, StrategyAPCMRotate, StrategyShuffle,
}

// runArrange builds an n-triple workload with deterministic pseudo-random
// LLR values, runs the arranger, and returns the engine plus the three
// destination base addresses.
func runArrange(t *testing.T, s Strategy, w simd.Width, n int, seed int64) (*simd.Engine, Dest, []int16) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	interleaved := make([]int16, 3*n)
	for i := range interleaved {
		interleaved[i] = int16(rng.Intn(65536) - 32768)
	}
	ar := ByStrategy(s)
	mem := simd.NewMemory(1 << 20)
	e := simd.NewEngine(w, mem, trace.NewRecorder(4096))
	src := mem.Alloc(InterleavedBytes(n), 64)
	sArr, p1Arr, p2Arr := ArrangeReference(interleaved)
	WriteInterleaved(mem, src, sArr, p1Arr, p2Arr)
	lay := ar.Layout(w)
	dst := Dest{
		S:  mem.Alloc(lay.DstBytes(n), 64),
		P1: mem.Alloc(lay.DstBytes(n), 64),
		P2: mem.Alloc(lay.DstBytes(n), 64),
	}
	ar.Arrange(e, src, dst, n)
	return e, dst, interleaved
}

func checkArrangement(t *testing.T, s Strategy, w simd.Width, n int, seed int64) {
	t.Helper()
	e, dst, interleaved := runArrange(t, s, w, n, seed)
	lay := ByStrategy(s).Layout(w)
	wantS, wantP1, wantP2 := ArrangeReference(interleaved)
	for c, want := range map[Cluster][]int16{ClusterS: wantS, ClusterP1: wantP1, ClusterP2: wantP2} {
		got := lay.ReadNatural(e.Mem, dst.Base(c), c, n)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("%v/%v n=%d: cluster %v element %d = %d, want %d",
					s, w, n, c, j, got[j], want[j])
			}
		}
	}
}

func TestAllStrategiesMatchReference(t *testing.T) {
	for _, s := range allStrategies {
		for _, w := range simd.Widths {
			lanes := w.Lanes16()
			for _, n := range []int{0, 1, lanes - 1, lanes, 2 * lanes, 3*lanes + 5, 7 * lanes} {
				checkArrangement(t, s, w, n, int64(n)+int64(w))
			}
		}
	}
}

// Property: every SIMD strategy agrees with the scalar reference for
// random sizes and data.
func TestArrangementEquivalenceProperty(t *testing.T) {
	for _, s := range []Strategy{StrategyExtract, StrategyAPCM, StrategyAPCMShuffle, StrategyAPCMRotate, StrategyShuffle} {
		s := s
		f := func(nRaw uint16, seed int64) bool {
			n := int(nRaw % 200)
			w := simd.Widths[int(nRaw)%len(simd.Widths)]
			e, dst, interleaved := runArrange(t, s, w, n, seed)
			lay := ByStrategy(s).Layout(w)
			wantS, _, wantP2 := ArrangeReference(interleaved)
			gotS := lay.ReadNatural(e.Mem, dst.S, ClusterS, n)
			gotP2 := lay.ReadNatural(e.Mem, dst.P2, ClusterP2, n)
			for j := 0; j < n; j++ {
				if gotS[j] != wantS[j] || gotP2[j] != wantP2[j] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Errorf("%v: %v", s, err)
		}
	}
}

// TestFigure10WorkedExample checks the exact batch orders of the paper's
// Figure 10 for one 8-lane (SSE128) group: congregated S1 must read
// [1 4 7 2 5 8 3 6] (1-based), YP1 [6 1 4 7 2 5 8 3], YP2
// [3 6 1 4 7 2 5 8], and the rotated views must all align to
// [1 4 7 2 5 8 3 6].
func TestFigure10WorkedExample(t *testing.T) {
	n := 8
	sArr := []int16{11, 12, 13, 14, 15, 16, 17, 18}  // S1_1..S1_8
	p1Arr := []int16{21, 22, 23, 24, 25, 26, 27, 28} // YP1_1..YP1_8
	p2Arr := []int16{31, 32, 33, 34, 35, 36, 37, 38} // YP2_1..YP2_8
	mem := simd.NewMemory(1 << 16)
	e := simd.NewEngine(simd.W128, mem, nil)
	src := mem.Alloc(InterleavedBytes(n), 64)
	WriteInterleaved(mem, src, sArr, p1Arr, p2Arr)
	ar := APCMArranger{}
	lay := ar.Layout(simd.W128)
	dst := Dest{S: mem.Alloc(lay.DstBytes(n), 64), P1: mem.Alloc(lay.DstBytes(n), 64), P2: mem.Alloc(lay.DstBytes(n), 64)}
	ar.Arrange(e, src, dst, n)

	// Stored (unrotated) blocks, Figure 10 step 3.
	wantStored := map[Cluster][]int16{
		ClusterS:  {11, 14, 17, 12, 15, 18, 13, 16},
		ClusterP1: {26, 21, 24, 27, 22, 25, 28, 23},
		ClusterP2: {33, 36, 31, 34, 37, 32, 35, 38},
	}
	for c, want := range wantStored {
		got := mem.ReadI16s(dst.Base(c), 8)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("stored %v lane %d = %d, want %d (Figure 10 step 3)", c, i, got[i], want[i])
			}
		}
	}
	// Rotated views (read at +Rot lanes), Figure 10 step 4: all aligned
	// to batch order 1 4 7 2 5 8 3 6.
	batch := []int{0, 3, 6, 1, 4, 7, 2, 5}
	for c, arr := range map[Cluster][]int16{ClusterS: sArr, ClusterP1: p1Arr, ClusterP2: p2Arr} {
		rot := lay.Rot[c]
		view := mem.ReadI16s(dst.Base(c)+int64(2*rot), 8)
		for i, jj := range batch {
			if view[i] != arr[jj] {
				t.Errorf("rotated view %v lane %d = %d, want element %d = %d", c, i, view[i], jj, arr[jj])
			}
		}
	}
	// The rotate-mimic duplicates: YP1 block must be followed by its
	// first lane (YP1_6), YP2 by its first two (YP2_3, YP2_6) — exactly
	// the extra elements the paper names in Section 5.2.
	if got := mem.ReadI16(dst.P1 + 16); got != 26 {
		t.Errorf("YP1 extra element = %d, want 26 (YP1_6)", got)
	}
	if got := mem.ReadI16(dst.P2 + 16); got != 33 {
		t.Errorf("YP2 first extra = %d, want 33 (YP2_3)", got)
	}
	if got := mem.ReadI16(dst.P2 + 18); got != 36 {
		t.Errorf("YP2 second extra = %d, want 36 (YP2_6)", got)
	}
}

// TestAPCMClustersLaneAligned verifies the Figure 10 alignment property
// at every width: after rotation, lane i of all three clusters holds the
// same natural element index.
func TestAPCMClustersLaneAligned(t *testing.T) {
	for _, w := range simd.Widths {
		L := w.Lanes16()
		pos := apcmLanePos(L)
		seen := make([]bool, L)
		for jj, p := range pos {
			if p < 0 || p >= L || seen[p] {
				t.Fatalf("%v: LanePos not a permutation at element %d", w, jj)
			}
			seen[p] = true
		}
	}
}

// TestAPCMInstructionCount verifies the paper's Section 5.1 arithmetic:
// batching one SSE128 group takes 17 vector-ALU-port instructions
// (9 vpand + 6 vpor + 2 rotation steps) and the stores move whole
// registers.
func TestAPCMInstructionCount(t *testing.T) {
	e, _, _ := runArrange(t, StrategyAPCM, simd.W128, 8, 1)
	var vecALU, vecStores, extraStores, loads int
	for _, in := range e.Recorder().Insts() {
		switch {
		case in.Class == trace.VecALU && (in.Mnemonic == "vpand" || in.Mnemonic == "vpor"):
			vecALU++
		case in.Class == trace.Store && in.Bytes == 16:
			vecStores++
		case in.Class == trace.Store && in.Bytes == 2:
			extraStores++
		case in.Class == trace.Load && in.Mnemonic == "vmovdqu":
			loads++
		}
	}
	if vecALU != 15 {
		t.Errorf("vpand+vpor count = %d, want 15 (9 sample + 6 congregate)", vecALU)
	}
	if extraStores != 3 {
		t.Errorf("rotate-mimic extra stores = %d, want 3 (1 for YP1 + 2 for YP2)", extraStores)
	}
	if vecALU+extraStores != 18 { // 15 ALU + 3 mimic ≈ the paper's 17 "instructions"
		t.Logf("batching ops = %d (paper counts 17: it counts the two rotations once each)", vecALU+extraStores)
	}
	if vecStores != 3 {
		t.Errorf("full-register stores = %d, want 3", vecStores)
	}
	if loads != 3 {
		t.Errorf("full-register loads = %d, want 3", loads)
	}
}

// TestExtractStoreGranularity verifies the original mechanism's defining
// property: one 2-byte store per element, plus the width-dependent
// movement overhead (vextracti128 on ymm; vextracti32x8 + reload on zmm).
func TestExtractStoreGranularity(t *testing.T) {
	for _, tc := range []struct {
		w            simd.Width
		n            int
		wantShuffles int
		wantReloads  int // extra vmovdqu loads beyond the 3 stream loads
	}{
		{simd.W128, 8, 0, 0},
		{simd.W256, 16, 3, 0},  // 1 vextracti128 per register
		{simd.W512, 32, 12, 3}, // per register: 2 vextracti32x8 + 2 vextracti128, 1 reload
	} {
		e, _, _ := runArrange(t, StrategyExtract, tc.w, tc.n, 2)
		var stores2, shuffles, loads int
		for _, in := range e.Recorder().Insts() {
			switch {
			case in.Class == trace.Store && in.Bytes == 2:
				stores2++
			case in.Class == trace.VecShuffle:
				shuffles++
			case in.Class == trace.Load && in.Mnemonic == "vmovdqu":
				loads++
			}
		}
		if stores2 != 3*tc.n {
			t.Errorf("%v: 2-byte stores = %d, want %d (one per element)", tc.w, stores2, 3*tc.n)
		}
		if shuffles != tc.wantShuffles {
			t.Errorf("%v: shuffle µops = %d, want %d", tc.w, shuffles, tc.wantShuffles)
		}
		if loads != 3+tc.wantReloads {
			t.Errorf("%v: loads = %d, want %d", tc.w, loads, 3+tc.wantReloads)
		}
	}
}

// TestAPCMBeatsExtractOnSimulator is the headline result in miniature:
// under the paper's port model APCM must deliver far higher IPC, far
// lower backend bound and several-fold store bandwidth at every width.
func TestAPCMBeatsExtractOnSimulator(t *testing.T) {
	cfg := uarch.SkylakeServer()
	for _, w := range simd.Widths {
		n := 96 * w.Lanes16()
		eO, _, _ := runArrange(t, StrategyExtract, w, n, 3)
		eA, _, _ := runArrange(t, StrategyAPCM, w, n, 3)
		rO := uarch.Simulate(eO.Recorder().Insts(), cfg, nil)
		rA := uarch.Simulate(eA.Recorder().Insts(), cfg, nil)
		if rA.Cycles >= rO.Cycles {
			t.Errorf("%v: APCM %d cycles not faster than original %d", w, rA.Cycles, rO.Cycles)
		}
		if rA.IPC() <= rO.IPC() {
			t.Errorf("%v: APCM IPC %.2f <= original %.2f", w, rA.IPC(), rO.IPC())
		}
		if rA.TopDown.BackendBound >= rO.TopDown.BackendBound {
			t.Errorf("%v: APCM backend bound %.2f >= original %.2f",
				w, rA.TopDown.BackendBound, rO.TopDown.BackendBound)
		}
		gain := rA.StoreBitsPerCycle() / rO.StoreBitsPerCycle()
		if gain < 2 {
			t.Errorf("%v: bandwidth gain %.1fx, want >=2x", w, gain)
		}
	}
}

func TestLayoutDstBytes(t *testing.T) {
	lay := APCMArranger{}.Layout(simd.W128) // stride 10 lanes
	if got := lay.DstBytes(8); got != 2*(10+2) {
		t.Errorf("DstBytes(8) = %d, want %d", got, 2*(10+2))
	}
	if got := lay.DstBytes(9); got != 2*(20+2) {
		t.Errorf("DstBytes(9) = %d, want %d", got, 2*(20+2))
	}
}

func TestStrategyStringsAndByStrategy(t *testing.T) {
	for _, s := range allStrategies {
		if ByStrategy(s).Strategy() != s {
			t.Errorf("ByStrategy(%v) round-trip failed", s)
		}
		if s.String() == "" || ByStrategy(s).Name() == "" {
			t.Errorf("empty name for %v", s)
		}
	}
}

func TestClusterAccessors(t *testing.T) {
	d := Dest{S: 10, P1: 20, P2: 30}
	if d.Base(ClusterS) != 10 || d.Base(ClusterP1) != 20 || d.Base(ClusterP2) != 30 {
		t.Error("Dest.Base broken")
	}
	for _, c := range []Cluster{ClusterS, ClusterP1, ClusterP2} {
		if c.String() == "?" {
			t.Errorf("cluster %d has no name", c)
		}
	}
}

func TestWriteInterleavedMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	WriteInterleaved(simd.NewMemory(64), 0, []int16{1}, []int16{1, 2}, []int16{1})
}
