package core

import "vransim/internal/simd"

// ScalarArranger performs the arrangement with plain scalar loads and
// stores, one element at a time. It is the pre-SIMD reference point and
// the correctness oracle for the vector mechanisms.
type ScalarArranger struct{}

// Name implements Arranger.
func (ScalarArranger) Name() string { return "scalar" }

// Strategy implements Arranger.
func (ScalarArranger) Strategy() Strategy { return StrategyScalar }

// Layout implements Arranger: natural contiguous order.
func (ScalarArranger) Layout(w simd.Width) Layout { return identityLayout(w) }

// Arrange implements Arranger.
func (a ScalarArranger) Arrange(e *simd.Engine, src int64, dst Dest, n int) {
	scalarTail(e, src, dst, a.Layout(e.W), 0, n)
}

// ArrangeReference computes the segregated arrays purely in Go, without
// an engine, memory or trace: the golden model every mechanism is tested
// against. It returns the three clusters in natural order.
func ArrangeReference(interleaved []int16) (s, p1, p2 []int16) {
	n := len(interleaved) / 3
	s = make([]int16, n)
	p1 = make([]int16, n)
	p2 = make([]int16, n)
	for j := 0; j < n; j++ {
		s[j] = interleaved[3*j]
		p1[j] = interleaved[3*j+1]
		p2[j] = interleaved[3*j+2]
	}
	return s, p1, p2
}
