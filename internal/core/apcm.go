package core

import "vransim/internal/simd"

// APCMArranger implements the Arithmetic Ports Consciousness Mechanism
// (Section 5.1, Figures 10-12). Per group of 3 input registers it emits:
//
//   - 3 full-register loads of the interleaved stream;
//   - 9 vpand (sampling: select each cluster's lanes in each register)
//     and 6 vpor (congregation: merge the three samples per cluster) —
//     15 µops that execute on the vector ALU ports 0-2, which the
//     original mechanism leaves idle;
//   - the alignment step of Figure 10 step 4: yparity1 must be rotated
//     left one lane and yparity2 two lanes. x86 has no SIMD lane-rotate,
//     so the default configuration uses the paper's Figure 12 mimic —
//     store the congregated register unrotated, duplicate its first
//     lane(s) after the block, and let consumers read at a +1/+2 lane
//     offset;
//   - 3 full-register stores (one per cluster).
//
// With the two rotation steps the batching costs the 17 instructions the
// paper counts, and the stores move a whole register per µop instead of
// 16 bits — the source of the 4X-16X bandwidth gain.
type APCMArranger struct {
	// NaturalOrder restores natural element order with one vpermw per
	// congregated register (an ablation: on AVX-512 hardware vpermw is
	// available and subsumes the rotation).
	NaturalOrder bool
	// ExplicitRotate performs the alignment with a hypothetical SIMD
	// lane-rotate instruction instead of the offset-read mimic (an
	// ablation quantifying what the missing instruction would buy).
	ExplicitRotate bool
}

// Name implements Arranger.
func (a APCMArranger) Name() string { return a.Strategy().String() }

// Strategy implements Arranger.
func (a APCMArranger) Strategy() Strategy {
	switch {
	case a.NaturalOrder:
		return StrategyAPCMShuffle
	case a.ExplicitRotate:
		return StrategyAPCMRotate
	default:
		return StrategyAPCM
	}
}

// apcmLanePos returns, for a group of L lanes, the rotated-view lane
// index of each natural element: element jj of any cluster sits at lane
// LanePos[jj] once the cluster's rotation is applied. The alignment
// property — all three clusters share this map — is what Figure 10 step 4
// achieves and what TestAPCMClustersLaneAligned verifies.
func apcmLanePos(L int) []int {
	if t, ok := apcmTablesByL[L]; ok {
		return t.lanePos
	}
	return buildAPCMLanePos(L)
}

func buildAPCMLanePos(L int) []int {
	pos := make([]int, L)
	for i := 0; i < L; i++ {
		for r := 0; r < 3; r++ {
			if (L*r+i)%3 == 0 {
				pos[(L*r+i)/3] = i
				break
			}
		}
	}
	return pos
}

// apcmTables holds the width-dependent constant tables of the mechanism:
// the rotated-view lane map, the three sampling mask patterns (lane l
// selected when l%3 == d), and the NaturalOrder ablation's restore
// permutations. Pure functions of the lane count, built once per
// supported width at init and shared read-only across engines, so a
// steady-state Arrange call allocates nothing.
type apcmTables struct {
	lanePos  []int
	masks    [3][]int16
	natural  [3][]int
}

var apcmTablesByL = func() map[int]*apcmTables {
	m := make(map[int]*apcmTables, len(simd.Widths))
	for _, w := range simd.Widths {
		m[w.Lanes16()] = buildAPCMTables(w.Lanes16())
	}
	return m
}()

func buildAPCMTables(L int) *apcmTables {
	t := &apcmTables{lanePos: buildAPCMLanePos(L)}
	for d := 0; d < 3; d++ {
		pattern := make([]int16, L)
		for l := 0; l < L; l++ {
			if l%3 == d {
				pattern[l] = -1 // 0xFFFF
			}
		}
		t.masks[d] = pattern
	}
	for c := 0; c < 3; c++ {
		idx := make([]int, L)
		for i := 0; i < L; i++ {
			idx[i] = (t.lanePos[i] + c) % L
		}
		t.natural[c] = idx
	}
	return t
}

func apcmTablesFor(L int) *apcmTables {
	if t, ok := apcmTablesByL[L]; ok {
		return t
	}
	return buildAPCMTables(L)
}

// Layout implements Arranger.
func (a APCMArranger) Layout(w simd.Width) Layout {
	if a.NaturalOrder {
		return identityLayout(w)
	}
	L := w.Lanes16()
	lay := Layout{
		GroupLanes:  L,
		StrideLanes: L,
		LanePos:     apcmLanePos(L),
	}
	if !a.ExplicitRotate {
		// Rotate-mimic: blocks are stored unrotated with two lanes of
		// duplicated padding; consumers read at a per-cluster offset.
		lay.StrideLanes = L + 2
		lay.Rot = [3]int{0, 1, 2}
	}
	return lay
}

// Arrange implements Arranger.
func (a APCMArranger) Arrange(e *simd.Engine, src int64, dst Dest, n int) {
	L := e.W.Lanes16()
	groups := n / L
	lay := a.Layout(e.W)

	if groups > 0 {
		tables := apcmTablesFor(L)
		// The three sampling masks: mask[d] keeps lanes l with l%3 == d.
		// Constants, loaded once per call into pooled registers.
		var masks [3]*simd.Vec
		for d := 0; d < 3; d++ {
			masks[d] = e.AcquireVec()
			e.SetImm(masks[d], tables.masks[d])
		}

		in := [3]*simd.Vec{e.AcquireVec(), e.AcquireVec(), e.AcquireVec()}
		acc := [3]*simd.Vec{e.AcquireVec(), e.AcquireVec(), e.AcquireVec()}
		tmp := e.AcquireVec()
		rot := e.AcquireVec()

		for g := 0; g < groups; g++ {
			baseLane := 3 * g * L
			for r := 0; r < 3; r++ {
				e.LoadVec(in[r], src+int64(2*(baseLane+r*L)))
			}
			// Sampling + congregation: 9 vpand, 6 vpor.
			for c := 0; c < 3; c++ {
				for r := 0; r < 3; r++ {
					d := ((c-L*r)%3 + 3) % 3
					if r == 0 {
						e.PAnd(acc[c], in[r], masks[d])
						continue
					}
					e.PAnd(tmp, in[r], masks[d])
					e.POr(acc[c], acc[c], tmp)
				}
			}
			// Alignment + store, per configured variant.
			for c := 0; c < 3; c++ {
				blockAddr := dst.Base(Cluster(c)) + 2*int64(g*lay.StrideLanes)
				switch {
				case a.NaturalOrder:
					// One vpermw restores natural order (and subsumes
					// the rotation).
					e.PermuteW(rot, acc[c], tables.natural[c])
					e.StoreVec(blockAddr, rot)
				case a.ExplicitRotate:
					if c == 0 {
						e.StoreVec(blockAddr, acc[c])
					} else {
						e.RotateLanesLeft(rot, acc[c], c)
						e.StoreVec(blockAddr, rot)
					}
				default:
					// Figure 12 rotate-mimic: store unrotated, then
					// duplicate the block's first c lanes after it so
					// a +c-lane read sees the rotated view.
					e.StoreVec(blockAddr, acc[c])
					for x := 0; x < c; x++ {
						e.PExtrWToMem(blockAddr+2*int64(L+x), acc[c], x)
					}
				}
			}
			e.EmitScalar("add", 1)
			e.EmitBranch("jnz")
		}
		e.ReleaseVec(masks[0], masks[1], masks[2], in[0], in[1], in[2],
			acc[0], acc[1], acc[2], tmp, rot)
	}
	scalarTail(e, src, dst, lay, groups*L, n)
}
