package phy

import (
	"fmt"

	"vransim/internal/turbo"
)

// maxCodeBlock is the largest turbo information block (36.212: Z = 6144).
const maxCodeBlock = 6144

// Segmentation describes how a CRC-attached transport block splits into
// turbo code blocks.
type Segmentation struct {
	// B is the input length (transport block + CRC24A).
	B int
	// C is the number of code blocks; each carries a CRC24B when C > 1.
	C int
	// K is the per-block information length (one size for all blocks;
	// the 36.212 two-size scheme is simplified to the single nearest
	// size, with filler bits up front — see DESIGN.md).
	K int
	// F is the number of filler bits prepended to the first block.
	F int
}

// Segment computes the segmentation of a B-bit CRC-attached transport
// block.
func Segment(b int) (Segmentation, error) {
	if b <= 0 {
		return Segmentation{}, fmt.Errorf("phy: empty transport block")
	}
	seg := Segmentation{B: b}
	if b <= maxCodeBlock {
		seg.C = 1
		seg.K = turbo.NearestBlockSize(b)
		seg.F = seg.K - b
		return seg, nil
	}
	// Per-block payload shrinks by the CRC24B overhead.
	l := 24
	seg.C = (b + maxCodeBlock - l - 1) / (maxCodeBlock - l)
	per := (b + seg.C*l + seg.C - 1) / seg.C
	seg.K = turbo.NearestBlockSize(per)
	seg.F = seg.C*seg.K - b - seg.C*l
	return seg, nil
}

// SegmentLaneFill segments like Segment but rounds the code-block count
// up to a multiple of laneBlocks, so a lane-parallel SIMD decoder
// (internal/turbo.MultiSIMDDecoder) fills every register lane group
// instead of idling lanes on the tail batch. Blocks are kept at or above
// the minimum turbo block size; when the transport block is too small to
// split that far, the standard segmentation is returned.
func SegmentLaneFill(b, laneBlocks int) (Segmentation, error) {
	seg, err := Segment(b)
	if err != nil || laneBlocks <= 1 || seg.C%laneBlocks == 0 {
		return seg, err
	}
	c := (seg.C + laneBlocks - 1) / laneBlocks * laneBlocks
	l := 24 // every block carries CRC24B once C > 1
	per := (b + c*l + c - 1) / c
	if per < turbo.BlockSizes[0] {
		return seg, nil // too small to split further
	}
	k := turbo.NearestBlockSize(per)
	return Segmentation{
		B: b,
		C: c,
		K: k,
		F: c*k - b - c*l,
	}, nil
}

// Split divides the CRC-attached transport block bits into C code blocks
// of K bits each, prepending F filler zeros to the first block and
// attaching CRC24B per block when C > 1.
func (s Segmentation) Split(bits []byte) ([][]byte, error) {
	if len(bits) != s.B {
		return nil, fmt.Errorf("phy: segmentation built for B=%d, got %d", s.B, len(bits))
	}
	payload := s.K
	if s.C > 1 {
		payload -= 24
	}
	padded := make([]byte, s.F, s.F+len(bits))
	padded = append(padded, bits...)
	blocks := make([][]byte, 0, s.C)
	for c := 0; c < s.C; c++ {
		blk := padded[c*payload : (c+1)*payload]
		if s.C > 1 {
			blocks = append(blocks, AppendCRC(blk, CRC24BPoly, 24))
		} else {
			blocks = append(blocks, append([]byte(nil), blk...))
		}
	}
	return blocks, nil
}

// Join reassembles decoded code blocks into the CRC-attached transport
// block, verifying per-block CRC24B when present. ok reports whether all
// block CRCs held.
func (s Segmentation) Join(blocks [][]byte) (bits []byte, ok bool, err error) {
	if len(blocks) != s.C {
		return nil, false, fmt.Errorf("phy: expected %d blocks, got %d", s.C, len(blocks))
	}
	ok = true
	var out []byte
	for _, blk := range blocks {
		if len(blk) != s.K {
			return nil, false, fmt.Errorf("phy: block length %d, want %d", len(blk), s.K)
		}
		if s.C > 1 {
			if !CheckCRC(blk, CRC24BPoly, 24) {
				ok = false
			}
			out = append(out, blk[:len(blk)-24]...)
		} else {
			out = append(out, blk...)
		}
	}
	return out[s.F:], ok, nil
}
