package phy

import (
	"fmt"

	"vransim/internal/simd"
)

// subBlockColumns is the fixed column count of the 36.212 sub-block
// interleaver.
const subBlockColumns = 32

// subBlockPerm is the inter-column permutation pattern of TS 36.212
// Table 5.1.4-1.
var subBlockPerm = [subBlockColumns]int{
	0, 16, 8, 24, 4, 20, 12, 28, 2, 18, 10, 26, 6, 22, 14, 30,
	1, 17, 9, 25, 5, 21, 13, 29, 3, 19, 11, 27, 7, 23, 15, 31,
}

// dummy marks padding positions in the interleaver matrix. Using an
// out-of-band sentinel (LLR streams are int16; indices are ints) keeps
// the puncturing logic explicit.
const dummy = -1

// subBlockInterleave writes the D input indices into an R×32 matrix row
// by row (front-padded with dummies), permutes the columns, and reads
// column by column: the output is a length R*32 slice of input indices
// or dummy.
func subBlockInterleave(d int) []int {
	r := (d + subBlockColumns - 1) / subBlockColumns
	total := r * subBlockColumns
	pad := total - d
	out := make([]int, 0, total)
	for _, col := range subBlockPerm {
		for row := 0; row < r; row++ {
			pos := row*subBlockColumns + col
			if pos < pad {
				out = append(out, dummy)
			} else {
				out = append(out, pos-pad)
			}
		}
	}
	return out
}

// subBlockInterleave2 is the modified pattern the third stream uses:
// π(k) = (P[⌊k/R⌋] + 32·(k mod R) + 1) mod (R·32), applied to the padded
// matrix positions.
func subBlockInterleave2(d int) []int {
	r := (d + subBlockColumns - 1) / subBlockColumns
	total := r * subBlockColumns
	pad := total - d
	out := make([]int, 0, total)
	for k := 0; k < total; k++ {
		pos := (subBlockPerm[k/r] + subBlockColumns*(k%r) + 1) % total
		if pos < pad {
			out = append(out, dummy)
		} else {
			out = append(out, pos-pad)
		}
	}
	return out
}

// RateMatcher implements turbo-code rate matching: the three encoder
// output streams pass through sub-block interleavers into a circular
// buffer (systematic part first, then parity bits interlaced), from
// which E bits are read starting at a redundancy-version offset,
// skipping dummies and wrapping around.
type RateMatcher struct {
	D int // per-stream block length (K + tail share)
	// circular[i] holds (stream, index) of buffer position i, or
	// stream = -1 for dummy padding.
	circular []bufPos
	// Eng, when set, receives a representative µop stream — rate
	// matching is a near-ideal-IPC table-walk module in Figures 3-6.
	Eng *simd.Engine
}

type bufPos struct {
	stream int8
	index  int32
}

// NewRateMatcher builds the circular buffer geometry for per-stream
// length d.
func NewRateMatcher(d int) *RateMatcher {
	v0 := subBlockInterleave(d)
	v1 := subBlockInterleave(d)
	v2 := subBlockInterleave2(d)
	buf := make([]bufPos, 0, 3*len(v0))
	for _, idx := range v0 {
		buf = append(buf, pos(0, idx))
	}
	for k := range v1 {
		buf = append(buf, pos(1, v1[k]))
		buf = append(buf, pos(2, v2[k]))
	}
	return &RateMatcher{D: d, circular: buf}
}

func pos(stream int, idx int) bufPos {
	if idx == dummy {
		return bufPos{stream: -1}
	}
	return bufPos{stream: int8(stream), index: int32(idx)}
}

// rvOffset returns the circular-buffer start for redundancy version rv.
func (rm *RateMatcher) rvOffset(rv int) int {
	r := (rm.D + subBlockColumns - 1) / subBlockColumns
	ncb := len(rm.circular)
	return (r * (2*((ncb/(8*r))*rv) + 2)) % ncb
}

// Match selects e bits from the three streams (each length D) for
// redundancy version rv.
func (rm *RateMatcher) Match(s0, s1, s2 []byte, e, rv int) ([]byte, error) {
	if len(s0) != rm.D || len(s1) != rm.D || len(s2) != rm.D {
		return nil, fmt.Errorf("phy: rate matcher built for D=%d, got %d/%d/%d", rm.D, len(s0), len(s1), len(s2))
	}
	streams := [3][]byte{s0, s1, s2}
	out := make([]byte, 0, e)
	ncb := len(rm.circular)
	for i := rm.rvOffset(rv); len(out) < e; i = (i + 1) % ncb {
		p := rm.circular[i]
		if p.stream < 0 {
			continue
		}
		out = append(out, streams[p.stream][p.index])
	}
	rm.emitOps(e)
	return out, nil
}

// Dematch soft-combines e received LLRs back into three per-stream LLR
// buffers (each length D), accumulating repeats and leaving punctured
// positions at zero.
func (rm *RateMatcher) Dematch(llr []int16, rv int) (d0, d1, d2 []int16) {
	d0 = make([]int16, rm.D)
	d1 = make([]int16, rm.D)
	d2 = make([]int16, rm.D)
	dst := [3][]int16{d0, d1, d2}
	ncb := len(rm.circular)
	i := rm.rvOffset(rv)
	for _, v := range llr {
		for rm.circular[i].stream < 0 {
			i = (i + 1) % ncb
		}
		p := rm.circular[i]
		s := dst[p.stream]
		acc := int32(s[p.index]) + int32(v)
		if acc > 32767 {
			acc = 32767
		}
		if acc < -32768 {
			acc = -32768
		}
		s[p.index] = int16(acc)
		i = (i + 1) % ncb
	}
	rm.emitOps(len(llr))
	return d0, d1, d2
}

func (rm *RateMatcher) emitOps(n int) {
	if rm.Eng == nil {
		return
	}
	// Table-driven copy: one load + one store per handful of bits with
	// occasional branches; high-retiring scalar code.
	steps := n / 4
	for i := 0; i < steps; i++ {
		rm.Eng.EmitScalarLoad("mov", int64(i*8), 8)
		rm.Eng.EmitScalar("add", 1)
		rm.Eng.EmitScalarStore("mov", int64(i*8), 8)
		if i%8 == 7 {
			rm.Eng.EmitBranch("jnz")
		}
	}
}

// InterleaveTriples converts the de-matched per-stream LLR buffers into
// the interleaved [S P1 P2 …] stream the data arrangement process
// consumes (the handoff point between rate de-matching and decoding in
// Figure 8a).
func InterleaveTriples(d0, d1, d2 []int16, k int) []int16 {
	out := make([]int16, 0, 3*k)
	for i := 0; i < k; i++ {
		out = append(out, d0[i], d1[i], d2[i])
	}
	return out
}
