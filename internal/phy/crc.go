// Package phy implements the LTE-shaped physical-layer substrate of the
// vRAN pipeline: CRC attachment, code-block segmentation, rate matching
// with the sub-block interleaver, Gold-sequence scrambling, QPSK/16QAM/
// 64QAM modulation with max-log soft demodulation, OFDM with cyclic
// prefix over a radix-2 FFT, an AWGN channel, and the DCI path's
// tail-biting convolutional code with a Viterbi decoder.
//
// Functions that burn CPU in the real pipeline accept an optional
// *simd.Engine and emit a representative µop stream so the timing
// simulator can attribute cycles per module (the basis of the paper's
// Figures 3-6).
package phy

// CRC polynomials from 3GPP TS 36.212 §5.1.1 (MSB-first, implicit top
// bit).
const (
	CRC24APoly = 0x864CFB // gCRC24A: transport-block CRC
	CRC24BPoly = 0x800063 // gCRC24B: code-block CRC
	CRC16Poly  = 0x1021   // gCRC16
	CRC8Poly   = 0x9B     // gCRC8
)

// crcBits computes an n-bit CRC over a bit slice (values 0/1) with the
// given polynomial (implicit leading 1), zero initial state.
func crcBits(bits []byte, poly uint32, n int) uint32 {
	var reg uint32
	top := uint32(1) << (n - 1)
	mask := (uint32(1) << n) - 1
	for _, b := range bits {
		fb := (reg&top != 0) != (b != 0)
		reg = (reg << 1) & mask
		if fb {
			reg ^= poly
		}
	}
	return reg
}

// CRC24A returns the 24-bit transport-block CRC of bits.
func CRC24A(bits []byte) uint32 { return crcBits(bits, CRC24APoly, 24) }

// CRC24B returns the 24-bit code-block CRC of bits.
func CRC24B(bits []byte) uint32 { return crcBits(bits, CRC24BPoly, 24) }

// CRC16 returns the 16-bit CRC of bits.
func CRC16(bits []byte) uint32 { return crcBits(bits, CRC16Poly, 16) }

// CRC8 returns the 8-bit CRC of bits.
func CRC8(bits []byte) uint32 { return crcBits(bits, CRC8Poly, 8) }

// AppendCRC returns bits with the n-bit CRC for poly appended MSB first.
func AppendCRC(bits []byte, poly uint32, n int) []byte {
	c := crcBits(bits, poly, n)
	out := make([]byte, len(bits), len(bits)+n)
	copy(out, bits)
	for i := n - 1; i >= 0; i-- {
		out = append(out, byte((c>>uint(i))&1))
	}
	return out
}

// CheckCRC verifies a bit string that carries its n-bit CRC as a suffix.
// A CRC-extended message is valid iff the CRC over the whole string is
// zero.
func CheckCRC(bits []byte, poly uint32, n int) bool {
	if len(bits) < n {
		return false
	}
	return crcBits(bits, poly, n) == 0
}
