package phy

import (
	"fmt"
	"math"
	"math/bits"

	"vransim/internal/simd"
)

// OFDM implements the multicarrier modulation stage over an iterative
// radix-2 FFT. The paper's profile runs this module with scalar
// instructions ("do OFDM"), where it reaches near-ideal IPC; the
// optional engine hook emits a matching scalar µop stream.
type OFDM struct {
	// FFTSize is the transform length (power of two).
	FFTSize int
	// UsedCarriers is the number of occupied subcarriers, centered
	// around DC (DC itself unused), e.g. 300 for 5 MHz LTE.
	UsedCarriers int
	// CPLen is the cyclic-prefix length in samples.
	CPLen int
	// Eng, when set, receives ~10 scalar µops per butterfly.
	Eng *simd.Engine

	twRe, twIm []float64 // twiddle factors for the forward transform
}

// NewOFDM builds an OFDM modem. Typical 5 MHz LTE geometry:
// NewOFDM(512, 300, 36).
func NewOFDM(fftSize, used, cp int) (*OFDM, error) {
	if fftSize <= 0 || fftSize&(fftSize-1) != 0 {
		return nil, fmt.Errorf("phy: FFT size %d is not a power of two", fftSize)
	}
	if used >= fftSize {
		return nil, fmt.Errorf("phy: %d used carriers exceed FFT size %d", used, fftSize)
	}
	o := &OFDM{FFTSize: fftSize, UsedCarriers: used, CPLen: cp}
	o.twRe = make([]float64, fftSize/2)
	o.twIm = make([]float64, fftSize/2)
	for i := range o.twRe {
		ang := -2 * math.Pi * float64(i) / float64(fftSize)
		o.twRe[i] = math.Cos(ang)
		o.twIm[i] = math.Sin(ang)
	}
	return o, nil
}

// SymbolsPerSlot returns how many data symbols fit a slot of n samples.
func (o *OFDM) SamplesPerSymbol() int { return o.FFTSize + o.CPLen }

// fft computes an in-place iterative radix-2 DIT transform. invert
// selects the inverse transform (without 1/N normalization; callers
// normalize).
func (o *OFDM) fft(re, im []float64, invert bool) {
	n := len(re)
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	butterflies := 0
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for base := 0; base < n; base += size {
			for k := 0; k < half; k++ {
				tr, ti := o.twRe[k*step], o.twIm[k*step]
				if invert {
					ti = -ti
				}
				i, j := base+k, base+k+half
				xr := re[j]*tr - im[j]*ti
				xi := re[j]*ti + im[j]*tr
				re[j] = re[i] - xr
				im[j] = im[i] - xi
				re[i] += xr
				im[i] += xi
				butterflies++
			}
		}
	}
	if o.Eng != nil {
		// ~10 scalar FLOP/mem µops per butterfly, loop branch per 8.
		for b := 0; b < butterflies; b++ {
			o.Eng.EmitScalar("fmul", 4)
			o.Eng.EmitScalar("fadd", 4)
			o.Eng.EmitScalarLoad("mov", int64(b*16%4096), 8)
			o.Eng.EmitScalarStore("mov", int64(b*16%4096), 8)
			if b%8 == 7 {
				o.Eng.EmitBranch("jnz")
			}
		}
	}
}

// carrierIndex maps used-subcarrier slot u (0-based) to an FFT bin,
// splitting the band around DC.
func (o *OFDM) carrierIndex(u int) int {
	half := o.UsedCarriers / 2
	if u < half {
		return o.FFTSize - half + u // negative frequencies
	}
	return u - half + 1 // positive frequencies, skipping DC
}

// Modulate maps UsedCarriers QAM symbols onto the grid, runs the IFFT
// and prepends the cyclic prefix, returning FFTSize+CPLen time samples.
func (o *OFDM) Modulate(syms []IQ) ([]IQ, error) {
	if len(syms) != o.UsedCarriers {
		return nil, fmt.Errorf("phy: got %d symbols, grid holds %d", len(syms), o.UsedCarriers)
	}
	re := make([]float64, o.FFTSize)
	im := make([]float64, o.FFTSize)
	for u, s := range syms {
		b := o.carrierIndex(u)
		re[b], im[b] = s.I, s.Q
	}
	o.fft(re, im, true)
	// Normalize so the time-domain signal has unit average power per
	// sample (with unit-energy constellation symbols), keeping the
	// channel's SNR definition meaningful at the sample level.
	scale := 1 / math.Sqrt(float64(o.UsedCarriers))
	out := make([]IQ, 0, o.CPLen+o.FFTSize)
	for i := o.FFTSize - o.CPLen; i < o.FFTSize; i++ {
		out = append(out, IQ{re[i] * scale, im[i] * scale})
	}
	for i := 0; i < o.FFTSize; i++ {
		out = append(out, IQ{re[i] * scale, im[i] * scale})
	}
	return out, nil
}

// Demodulate strips the cyclic prefix, runs the forward FFT and returns
// the UsedCarriers received symbols.
func (o *OFDM) Demodulate(samples []IQ) ([]IQ, error) {
	if len(samples) != o.FFTSize+o.CPLen {
		return nil, fmt.Errorf("phy: got %d samples, symbol is %d", len(samples), o.FFTSize+o.CPLen)
	}
	re := make([]float64, o.FFTSize)
	im := make([]float64, o.FFTSize)
	for i := 0; i < o.FFTSize; i++ {
		re[i] = samples[o.CPLen+i].I
		im[i] = samples[o.CPLen+i].Q
	}
	o.fft(re, im, false)
	inv := math.Sqrt(float64(o.UsedCarriers)) / float64(o.FFTSize)
	out := make([]IQ, o.UsedCarriers)
	for u := range out {
		b := o.carrierIndex(u)
		out[u] = IQ{re[b] * inv, im[b] * inv}
	}
	return out, nil
}

// SubcarrierNoiseVar converts the channel's per-sample noise variance to
// the per-subcarrier variance seen after Demodulate's FFT and scaling:
// var · UsedCarriers / FFTSize.
func (o *OFDM) SubcarrierNoiseVar(sampleVar float64) float64 {
	return sampleVar * float64(o.UsedCarriers) / float64(o.FFTSize)
}
