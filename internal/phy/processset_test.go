package phy

import (
	"testing"

	"vransim/internal/turbo"
)

func llrWord(k int, fill int16) *turbo.LLRWord {
	w := turbo.NewLLRWord(k)
	for i := range w.Sys {
		w.Sys[i] = fill
		w.P1[i] = fill
		w.P2[i] = fill
	}
	for i := 0; i < 3; i++ {
		w.TailSys[i] = fill
		w.TailP1[i] = fill
	}
	return w
}

// TestProcessSetCombine: repeated combines accumulate, attempts count
// up, and the returned snapshot is independent of the buffer.
func TestProcessSetCombine(t *testing.T) {
	ps := NewProcessSet(8, 16)
	w := llrWord(40, 10)
	c1, n1, err := ps.Combine(0, 1, 2, w)
	if err != nil || n1 != 1 {
		t.Fatalf("first combine: %v attempts=%d", err, n1)
	}
	if c1.Sys[0] != 10 {
		t.Errorf("first combine sample = %d, want 10", c1.Sys[0])
	}
	c2, n2, err := ps.Combine(0, 1, 2, w)
	if err != nil || n2 != 2 {
		t.Fatalf("second combine: %v attempts=%d", err, n2)
	}
	if c2.Sys[0] != 20 || c2.TailSys[0] != 20 {
		t.Errorf("combined sample = %d/%d, want 20/20", c2.Sys[0], c2.TailSys[0])
	}
	// Snapshots are private copies: mutating one must not reach the
	// buffer.
	c2.Sys[0] = 99
	c3, _, _ := ps.Combine(0, 1, 2, w)
	if c3.Sys[0] != 30 {
		t.Errorf("third combine sample = %d, want 30 (snapshot leaked into buffer)", c3.Sys[0])
	}
	if got := ps.Attempts(0, 1, 2); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
	if ps.Len() != 1 {
		t.Errorf("len = %d, want 1", ps.Len())
	}
}

// TestProcessSetWraparound: process ids wrap modulo MaxProcs, so proc,
// proc+MaxProcs and a negative id canonicalizing to the same residue all
// land on one buffer.
func TestProcessSetWraparound(t *testing.T) {
	ps := NewProcessSet(8, 16)
	w := llrWord(40, 5)
	ps.Combine(1, 2, 3, w)
	if _, n, err := ps.Combine(1, 2, 3+8, w); err != nil || n != 2 {
		t.Fatalf("proc+MaxProcs missed the buffer: attempts=%d err=%v", n, err)
	}
	if _, n, err := ps.Combine(1, 2, 3-8, w); err != nil || n != 3 {
		t.Fatalf("negative proc missed the buffer: attempts=%d err=%v", n, err)
	}
	if ps.Len() != 1 {
		t.Errorf("wraparound created %d buffers, want 1", ps.Len())
	}
	// Different residue is a different buffer.
	ps.Combine(1, 2, 4, w)
	if ps.Len() != 2 {
		t.Errorf("distinct residues share a buffer (len=%d)", ps.Len())
	}
}

// TestProcessSetKMismatch: a transmission with a different K is rejected
// and the live buffer is left untouched.
func TestProcessSetKMismatch(t *testing.T) {
	ps := NewProcessSet(8, 16)
	ps.Combine(0, 0, 0, llrWord(40, 7))
	if _, n, err := ps.Combine(0, 0, 0, llrWord(48, 7)); err == nil {
		t.Fatal("K-mismatch combine accepted")
	} else if n != 1 {
		t.Errorf("mismatch reported %d attempts, want 1", n)
	}
	// The buffer still holds the original accumulation.
	c, n, err := ps.Combine(0, 0, 0, llrWord(40, 7))
	if err != nil || n != 2 {
		t.Fatalf("post-mismatch combine: %v attempts=%d", err, n)
	}
	if c.Sys[0] != 14 {
		t.Errorf("buffer corrupted by rejected combine: sample=%d, want 14", c.Sys[0])
	}
}

// TestProcessSetEviction: combining past Capacity evicts the least-
// recently-combined buffer; a later combine on the evicted key restarts
// a fresh accumulation.
func TestProcessSetEviction(t *testing.T) {
	ps := NewProcessSet(8, 2)
	w := llrWord(40, 3)
	ps.Combine(0, 0, 0, w) // oldest
	ps.Combine(0, 1, 0, w)
	ps.Combine(0, 1, 0, w) // refresh key (0,1,0)
	ps.Combine(0, 2, 0, w) // over capacity: evicts (0,0,0)
	if ps.Len() != 2 {
		t.Fatalf("len = %d, want 2 after eviction", ps.Len())
	}
	combines, evictions := ps.Stats()
	if evictions != 1 {
		t.Errorf("evictions = %d, want 1", evictions)
	}
	if combines != 4 {
		t.Errorf("combines = %d, want 4", combines)
	}
	// Combine after eviction: starts over, not resuming the old count.
	c, n, err := ps.Combine(0, 0, 0, w)
	if err != nil || n != 1 {
		t.Fatalf("post-eviction combine: %v attempts=%d, want fresh 1", err, n)
	}
	if c.Sys[0] != 3 {
		t.Errorf("post-eviction sample = %d, want 3 (fresh accumulation)", c.Sys[0])
	}
}

// TestProcessSetRelease frees the buffer and its attempt count.
func TestProcessSetRelease(t *testing.T) {
	ps := NewProcessSet(8, 16)
	w := llrWord(40, 2)
	ps.Combine(3, 4, 5, w)
	ps.Combine(3, 4, 5, w)
	ps.Release(3, 4, 5)
	if ps.Len() != 0 {
		t.Errorf("len = %d after release, want 0", ps.Len())
	}
	if ps.Attempts(3, 4, 5) != 0 {
		t.Error("attempts survived release")
	}
	// Release also canonicalizes the process id.
	ps.Combine(3, 4, 5, w)
	ps.Release(3, 4, 5+8)
	if ps.Len() != 0 {
		t.Error("wrapped release missed the buffer")
	}
}

// TestProcessSetSaturation: accumulation clamps at the channel-LLR bound
// so a combined word never leaves the range every decoder build accepts.
func TestProcessSetSaturation(t *testing.T) {
	ps := NewProcessSet(8, 16)
	w := llrWord(40, turbo.LLRLimit-1)
	var c *turbo.LLRWord
	for i := 0; i < 4; i++ {
		c, _, _ = ps.Combine(0, 0, 0, w)
	}
	if c.Sys[0] != turbo.LLRLimit-1 {
		t.Errorf("saturated sample = %d, want %d", c.Sys[0], turbo.LLRLimit-1)
	}
}
