package phy

import (
	"fmt"
	"sort"
	"sync"

	"vransim/internal/turbo"
)

// HARQBuffer accumulates soft values across HARQ retransmissions of the
// same code block. Each (re)transmission may use a different redundancy
// version, so combining happens in the rate-dematched domain where every
// position of the circular buffer has a fixed meaning (incremental
// redundancy: retransmissions with a different rv contribute previously
// punctured bits; chase combining: the same rv doubles the LLR energy).
type HARQBuffer struct {
	rm *RateMatcher
	d0 []int16
	d1 []int16
	d2 []int16
	// Attempts counts the transmissions combined so far.
	Attempts int
}

// NewHARQBuffer builds a combining buffer for the given rate-matcher
// geometry.
func NewHARQBuffer(rm *RateMatcher) *HARQBuffer {
	return &HARQBuffer{
		rm: rm,
		d0: make([]int16, rm.D),
		d1: make([]int16, rm.D),
		d2: make([]int16, rm.D),
	}
}

// Combine de-matches one received transmission (rv is its redundancy
// version) and adds it into the buffer with saturation.
func (h *HARQBuffer) Combine(llr []int16, rv int) {
	n0, n1, n2 := h.rm.Dematch(llr, rv)
	acc := func(dst, src []int16) {
		for i := range dst {
			s := int32(dst[i]) + int32(src[i])
			if s > 32767 {
				s = 32767
			}
			if s < -32768 {
				s = -32768
			}
			dst[i] = int16(s)
		}
	}
	acc(h.d0, n0)
	acc(h.d1, n1)
	acc(h.d2, n2)
	h.Attempts++
}

// Streams returns the combined per-stream LLR buffers (length D each).
func (h *HARQBuffer) Streams() (d0, d1, d2 []int16) { return h.d0, h.d1, h.d2 }

// Reset clears the buffer for a new transport block.
func (h *HARQBuffer) Reset() {
	for i := range h.d0 {
		h.d0[i], h.d1[i], h.d2[i] = 0, 0, 0
	}
	h.Attempts = 0
}

// RVSequence is the LTE redundancy-version cycling order.
var RVSequence = []int{0, 2, 3, 1}

// ProcKey identifies one HARQ process: the (cell, UE, process) triple a
// soft buffer is keyed by. Process ids wrap modulo the set's MaxProcs
// (LTE FDD: 8 processes per UE), so a monotonically increasing process
// counter lands on the right buffer.
type ProcKey struct {
	Cell, UE, Proc int
}

// procEntry is one live soft buffer plus its LRU bookkeeping.
type procEntry struct {
	word     *turbo.LLRWord
	k        int
	attempts int
	// tick is the set's logical clock at the entry's last Combine; the
	// eviction scan removes the smallest.
	tick uint64
}

// ProcessSet manages soft combining buffers for every HARQ process the
// serving runtime tracks, in the LLR-word domain (chase combining via
// turbo.LLRWord.Accumulate — the runtime retransmits the same rate-
// matched word, so every position realigns and the rate-dematched
// HARQBuffer machinery above is not needed on this path). The set is
// bounded: at most Capacity buffers are live, and combining into a new
// key past the bound evicts the least-recently-combined buffer — a
// retransmission arriving after its buffer was evicted simply starts a
// fresh accumulation (counted in Evictions; recovery then rests on the
// retransmission alone). Safe for concurrent use.
type ProcessSet struct {
	// MaxProcs wraps process ids; Capacity bounds live buffers.
	MaxProcs, Capacity int

	mu        sync.Mutex
	m         map[ProcKey]*procEntry
	clock     uint64
	evictions uint64
	combines  uint64
}

// NewProcessSet builds a set wrapping process ids modulo maxProcs
// (default 8) holding at most capacity soft buffers (default 1024).
func NewProcessSet(maxProcs, capacity int) *ProcessSet {
	if maxProcs <= 0 {
		maxProcs = 8
	}
	if capacity <= 0 {
		capacity = 1024
	}
	return &ProcessSet{
		MaxProcs: maxProcs,
		Capacity: capacity,
		m:        make(map[ProcKey]*procEntry),
	}
}

// key canonicalizes proc into [0, MaxProcs).
func (ps *ProcessSet) key(cell, ue, proc int) ProcKey {
	p := proc % ps.MaxProcs
	if p < 0 {
		p += ps.MaxProcs
	}
	return ProcKey{Cell: cell, UE: ue, Proc: p}
}

// Combine folds one received transmission into (cell, ue, proc)'s soft
// buffer and returns an independent snapshot of the combined word plus
// the number of transmissions accumulated so far. A transmission whose
// K differs from the buffered one is rejected without touching the
// buffer (a new transport block must not corrupt the old one's soft
// bits); the caller decides whether to Release and start over.
func (ps *ProcessSet) Combine(cell, ue, proc int, w *turbo.LLRWord) (*turbo.LLRWord, int, error) {
	k := len(w.Sys)
	ps.mu.Lock()
	defer ps.mu.Unlock()
	key := ps.key(cell, ue, proc)
	e, ok := ps.m[key]
	if !ok {
		if len(ps.m) >= ps.Capacity {
			ps.evictOldestLocked()
		}
		e = &procEntry{word: w.Clone(), k: k}
	} else {
		if e.k != k {
			return nil, e.attempts, fmt.Errorf("phy: HARQ process %v holds K=%d, got K=%d", key, e.k, k)
		}
		if err := e.word.Accumulate(w); err != nil {
			return nil, e.attempts, err
		}
	}
	e.attempts++
	ps.clock++
	e.tick = ps.clock
	ps.m[key] = e
	ps.combines++
	return e.word.Clone(), e.attempts, nil
}

// evictOldestLocked removes the least-recently-combined buffer.
func (ps *ProcessSet) evictOldestLocked() {
	var victim ProcKey
	var best uint64
	found := false
	for k, e := range ps.m {
		if !found || e.tick < best {
			victim, best, found = k, e.tick, true
		}
	}
	if found {
		delete(ps.m, victim)
		ps.evictions++
	}
}

// Release drops (cell, ue, proc)'s soft buffer — called when the block
// is delivered or terminally dropped, freeing the process for its next
// transport block.
func (ps *ProcessSet) Release(cell, ue, proc int) {
	ps.mu.Lock()
	delete(ps.m, ps.key(cell, ue, proc))
	ps.mu.Unlock()
}

// Attempts reports how many transmissions (cell, ue, proc)'s buffer has
// accumulated; 0 when no buffer is live.
func (ps *ProcessSet) Attempts(cell, ue, proc int) int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if e, ok := ps.m[ps.key(cell, ue, proc)]; ok {
		return e.attempts
	}
	return 0
}

// Len reports the number of live soft buffers.
func (ps *ProcessSet) Len() int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return len(ps.m)
}

// ProcState is one HARQ process's exported soft buffer — the unit the
// cell-migration path serializes through the fronthaul. Word is the
// live combined buffer (combined-range LLRs, up to ±2·(channel max)
// before saturation — serialize losslessly).
type ProcState struct {
	UE, Proc int
	K        int
	Attempts int
	Word     *turbo.LLRWord
}

// ExportCell removes and returns every live soft buffer belonging to
// cell, ordered by (UE, Proc) for deterministic serialization. The
// buffers leave the set — after export the cell owns no HARQ state
// here, which is exactly the drain-and-migrate invariant.
func (ps *ProcessSet) ExportCell(cell int) []ProcState {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	var out []ProcState
	for k, e := range ps.m {
		if k.Cell != cell {
			continue
		}
		out = append(out, ProcState{UE: k.UE, Proc: k.Proc, K: e.k, Attempts: e.attempts, Word: e.word})
		delete(ps.m, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].UE != out[j].UE {
			return out[i].UE < out[j].UE
		}
		return out[i].Proc < out[j].Proc
	})
	return out
}

// Inject installs an exported soft buffer for cell, replacing any
// existing entry on the same key and evicting LRU if the set is at
// capacity — the import side of a cell migration.
func (ps *ProcessSet) Inject(cell int, st ProcState) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	key := ps.key(cell, st.UE, st.Proc)
	if _, ok := ps.m[key]; !ok && len(ps.m) >= ps.Capacity {
		ps.evictOldestLocked()
	}
	ps.clock++
	ps.m[key] = &procEntry{word: st.Word, k: st.K, attempts: st.Attempts, tick: ps.clock}
}

// Stats reports lifetime combine and eviction counts.
func (ps *ProcessSet) Stats() (combines, evictions uint64) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.combines, ps.evictions
}
