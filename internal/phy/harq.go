package phy

// HARQBuffer accumulates soft values across HARQ retransmissions of the
// same code block. Each (re)transmission may use a different redundancy
// version, so combining happens in the rate-dematched domain where every
// position of the circular buffer has a fixed meaning (incremental
// redundancy: retransmissions with a different rv contribute previously
// punctured bits; chase combining: the same rv doubles the LLR energy).
type HARQBuffer struct {
	rm *RateMatcher
	d0 []int16
	d1 []int16
	d2 []int16
	// Attempts counts the transmissions combined so far.
	Attempts int
}

// NewHARQBuffer builds a combining buffer for the given rate-matcher
// geometry.
func NewHARQBuffer(rm *RateMatcher) *HARQBuffer {
	return &HARQBuffer{
		rm: rm,
		d0: make([]int16, rm.D),
		d1: make([]int16, rm.D),
		d2: make([]int16, rm.D),
	}
}

// Combine de-matches one received transmission (rv is its redundancy
// version) and adds it into the buffer with saturation.
func (h *HARQBuffer) Combine(llr []int16, rv int) {
	n0, n1, n2 := h.rm.Dematch(llr, rv)
	acc := func(dst, src []int16) {
		for i := range dst {
			s := int32(dst[i]) + int32(src[i])
			if s > 32767 {
				s = 32767
			}
			if s < -32768 {
				s = -32768
			}
			dst[i] = int16(s)
		}
	}
	acc(h.d0, n0)
	acc(h.d1, n1)
	acc(h.d2, n2)
	h.Attempts++
}

// Streams returns the combined per-stream LLR buffers (length D each).
func (h *HARQBuffer) Streams() (d0, d1, d2 []int16) { return h.d0, h.d1, h.d2 }

// Reset clears the buffer for a new transport block.
func (h *HARQBuffer) Reset() {
	for i := range h.d0 {
		h.d0[i], h.d1[i], h.d2[i] = 0, 0, 0
	}
	h.Attempts = 0
}

// RVSequence is the LTE redundancy-version cycling order.
var RVSequence = []int{0, 2, 3, 1}
