package phy

import "testing"

// TestProcessSetExportInject: exporting a cell removes exactly its
// buffers (deterministically ordered), and injecting them into another
// set reproduces the combined state bit for bit — the migration
// invariant the shard layer rests on.
func TestProcessSetExportInject(t *testing.T) {
	src := NewProcessSet(8, 64)
	for ue := 0; ue < 3; ue++ {
		src.Combine(0, ue, ue, llrWord(40, int16(ue+1)))
		src.Combine(0, ue, ue, llrWord(40, int16(ue+1)))
	}
	src.Combine(1, 9, 0, llrWord(40, 7)) // another cell's buffer stays

	st := src.ExportCell(0)
	if len(st) != 3 {
		t.Fatalf("exported %d buffers, want 3", len(st))
	}
	if src.Len() != 1 {
		t.Fatalf("source still holds %d buffers, want 1 (cell 1's)", src.Len())
	}
	if src.Attempts(0, 1, 1) != 0 {
		t.Error("exported buffer still answers Attempts on the source")
	}
	for i, b := range st {
		if b.UE != i || b.Proc != i || b.K != 40 || b.Attempts != 2 {
			t.Fatalf("entry %d = %+v, want UE/Proc %d, K 40, attempts 2", i, b, i)
		}
		if b.Word.Sys[0] != int16(2*(i+1)) {
			t.Fatalf("entry %d combined sample = %d, want %d", i, b.Word.Sys[0], 2*(i+1))
		}
	}

	dst := NewProcessSet(8, 64)
	for _, b := range st {
		dst.Inject(0, b)
	}
	if dst.Len() != 3 {
		t.Fatalf("target holds %d buffers, want 3", dst.Len())
	}
	if dst.Attempts(0, 2, 2) != 2 {
		t.Errorf("injected attempts = %d, want 2", dst.Attempts(0, 2, 2))
	}
	// A further combine continues the accumulation seamlessly.
	c, n, err := dst.Combine(0, 1, 1, llrWord(40, 2))
	if err != nil || n != 3 {
		t.Fatalf("post-inject combine: %v attempts=%d", err, n)
	}
	if c.Sys[0] != 6 {
		t.Errorf("post-inject combined sample = %d, want 6", c.Sys[0])
	}

	if got := src.ExportCell(5); got != nil {
		t.Errorf("export of empty cell = %v, want nil", got)
	}
}
