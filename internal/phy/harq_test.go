package phy

import (
	"math/rand"
	"testing"

	"vransim/internal/turbo"
)

// harqTrial encodes one block, transmits it `attempts` times at the
// given per-transmission E and SNR (cycling redundancy versions),
// combines, and reports whether the decoder recovers the payload.
func harqTrial(t *testing.T, k, e int, snrDB float64, attempts int, seed int64) bool {
	t.Helper()
	code, err := turbo.NewCode(k)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	bits := randBits(rng, k)
	cw, err := code.Encode(bits)
	if err != nil {
		t.Fatal(err)
	}
	d := k + 4
	rm := NewRateMatcher(d)
	s0 := make([]byte, d)
	s1 := make([]byte, d)
	s2 := make([]byte, d)
	copy(s0, cw.Sys)
	copy(s1, cw.P1)
	copy(s2, cw.P2)
	for j := 0; j < 3; j++ {
		s0[k+j] = cw.TailSys[j]
		s1[k+j] = cw.TailP1[j]
	}

	buf := NewHARQBuffer(rm)
	ch := NewAWGNChannel(snrDB, seed+1)
	for a := 0; a < attempts; a++ {
		rv := RVSequence[a%len(RVSequence)]
		tx, err := rm.Match(s0, s1, s2, e, rv)
		if err != nil {
			t.Fatal(err)
		}
		// BPSK over the AWGN channel, max-log LLR.
		samples := make([]IQ, len(tx))
		for i, b := range tx {
			x := 1.0
			if b == 1 {
				x = -1
			}
			samples[i] = IQ{I: x}
		}
		ch.Apply(samples)
		llr := make([]int16, len(tx))
		scale := 24 / ch.NoiseVar()
		for i := range llr {
			v := samples[i].I * scale
			if v > 255 {
				v = 255
			}
			if v < -255 {
				v = -255
			}
			llr[i] = int16(v)
		}
		buf.Combine(llr, rv)
	}

	d0, d1, d2 := buf.Streams()
	w := turbo.NewLLRWord(k)
	copy(w.Sys, d0[:k])
	copy(w.P1, d1[:k])
	copy(w.P2, d2[:k])
	for j := 0; j < 3; j++ {
		w.TailSys[j] = d0[k+j]
		w.TailP1[j] = d1[k+j]
	}
	dec := turbo.NewDecoder(code)
	dec.MaxIters = 8
	got, _, err := dec.Decode(w)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bits {
		if got[i] != bits[i] {
			return false
		}
	}
	return true
}

func TestHARQIncrementalRedundancy(t *testing.T) {
	// Heavily punctured first transmission (E < D: rate ~ >1) at low
	// SNR fails; combining the IR retransmissions recovers the block.
	const k, seed = 256, 11
	e := k + 40 // barely more bits than the payload: near rate-1
	if harqTrial(t, k, e, 2.0, 1, seed) {
		t.Skip("single punctured transmission unexpectedly decodable; shrink E to keep the test meaningful")
	}
	if !harqTrial(t, k, e, 2.0, 4, seed) {
		t.Error("four combined redundancy versions should decode")
	}
}

func TestHARQChaseCombining(t *testing.T) {
	// Same rv repeated: combining raises the effective SNR by ~6 dB for
	// 4 attempts. A block undecodable at -7.5 dB in one shot decodes
	// after 4 chase combines.
	const k, seed = 256, 21
	e := 3 * (k + 4)
	single := harqTrial(t, k, e, -7.5, 1, seed)
	combined := harqTrialSameRV(t, k, e, -7.5, 4, seed)
	if single {
		t.Skip("single transmission decoded at -7.5 dB; channel too kind for the test")
	}
	if !combined {
		t.Error("chase combining failed to decode at -7.5 dB with 4 attempts")
	}
}

// harqTrialSameRV is harqTrial but always rv=0 (pure chase combining).
func harqTrialSameRV(t *testing.T, k, e int, snrDB float64, attempts int, seed int64) bool {
	t.Helper()
	code, err := turbo.NewCode(k)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	bits := randBits(rng, k)
	cw, _ := code.Encode(bits)
	d := k + 4
	rm := NewRateMatcher(d)
	s0 := make([]byte, d)
	s1 := make([]byte, d)
	s2 := make([]byte, d)
	copy(s0, cw.Sys)
	copy(s1, cw.P1)
	copy(s2, cw.P2)
	for j := 0; j < 3; j++ {
		s0[k+j] = cw.TailSys[j]
		s1[k+j] = cw.TailP1[j]
	}
	buf := NewHARQBuffer(rm)
	ch := NewAWGNChannel(snrDB, seed+1)
	tx, _ := rm.Match(s0, s1, s2, e, 0)
	for a := 0; a < attempts; a++ {
		samples := make([]IQ, len(tx))
		for i, b := range tx {
			x := 1.0
			if b == 1 {
				x = -1
			}
			samples[i] = IQ{I: x}
		}
		ch.Apply(samples)
		llr := make([]int16, len(tx))
		scale := 12 / ch.NoiseVar()
		for i := range llr {
			v := samples[i].I * scale
			if v > 200 {
				v = 200
			}
			if v < -200 {
				v = -200
			}
			llr[i] = int16(v)
		}
		buf.Combine(llr, 0)
	}
	d0, d1, d2 := buf.Streams()
	w := turbo.NewLLRWord(k)
	copy(w.Sys, d0[:k])
	copy(w.P1, d1[:k])
	copy(w.P2, d2[:k])
	for j := 0; j < 3; j++ {
		w.TailSys[j] = d0[k+j]
		w.TailP1[j] = d1[k+j]
	}
	dec := turbo.NewDecoder(code)
	dec.MaxIters = 8
	got, _, err := dec.Decode(w)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bits {
		if got[i] != bits[i] {
			return false
		}
	}
	return true
}

func TestHARQBufferReset(t *testing.T) {
	rm := NewRateMatcher(44)
	buf := NewHARQBuffer(rm)
	llr := make([]int16, 60)
	for i := range llr {
		llr[i] = 10
	}
	buf.Combine(llr, 0)
	if buf.Attempts != 1 {
		t.Error("attempt count wrong")
	}
	d0, _, _ := buf.Streams()
	nonzero := false
	for _, v := range d0 {
		if v != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Error("combine left buffer empty")
	}
	buf.Reset()
	d0, d1, d2 := buf.Streams()
	for i := range d0 {
		if d0[i] != 0 || d1[i] != 0 || d2[i] != 0 {
			t.Fatal("reset incomplete")
		}
	}
	if buf.Attempts != 0 {
		t.Error("attempts not reset")
	}
}

func TestRVSequence(t *testing.T) {
	if len(RVSequence) != 4 || RVSequence[0] != 0 {
		t.Error("LTE rv cycling should start at 0 and have period 4")
	}
	// Different rvs must start reading the circular buffer at different
	// offsets (otherwise IR degenerates to chase combining).
	rm := NewRateMatcher(132)
	offsets := map[int]bool{}
	for _, rv := range RVSequence {
		offsets[rm.rvOffset(rv)] = true
	}
	if len(offsets) != 4 {
		t.Errorf("only %d distinct rv offsets", len(offsets))
	}
}
