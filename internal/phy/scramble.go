package phy

import "vransim/internal/simd"

// GoldSequence generates the length-31 Gold pseudo-random sequence of
// 3GPP TS 36.211 §7.2: c(n) = x1(n+Nc) XOR x2(n+Nc) with Nc = 1600,
// x1 initialized to 0…01 and x2 to cInit.
func GoldSequence(cInit uint32, n int) []byte {
	const nc = 1600
	total := nc + n
	x1 := make([]byte, total+31)
	x2 := make([]byte, total+31)
	x1[0] = 1
	for i := 0; i < 31; i++ {
		x2[i] = byte((cInit >> uint(i)) & 1)
	}
	for i := 0; i < total; i++ {
		x1[i+31] = x1[i+3] ^ x1[i]
		x2[i+31] = x2[i+3] ^ x2[i+2] ^ x2[i+1] ^ x2[i]
	}
	c := make([]byte, n)
	for i := range c {
		c[i] = x1[i+nc] ^ x2[i+nc]
	}
	return c
}

// ScrambleInit derives the PUSCH/PDSCH scrambling seed from the RNTI,
// codeword index q, slot number and cell identity, following the 36.211
// §6.3.1 formula.
func ScrambleInit(rnti uint16, q, slot int, cellID uint16) uint32 {
	return uint32(rnti)<<14 | uint32(q&1)<<13 | uint32(slot/2)<<9 | uint32(cellID)
}

// Scrambler XORs bit streams with a Gold sequence. The same operation
// descrambles. Scrambling is one of the near-ideal-IPC modules in the
// paper's Figure 3/4 characterization: a pure streaming XOR.
type Scrambler struct {
	seq []byte
	// Eng, when set, receives a representative µop stream: the real
	// implementation XORs 8 bits per scalar byte op.
	Eng *simd.Engine
}

// NewScrambler builds a scrambler with the sequence for cInit, long
// enough for n bits.
func NewScrambler(cInit uint32, n int) *Scrambler {
	return &Scrambler{seq: GoldSequence(cInit, n)}
}

// Apply XORs bits with the sequence in place and returns bits. It panics
// if the scrambler was built for fewer bits.
func (s *Scrambler) Apply(bits []byte) []byte {
	if len(bits) > len(s.seq) {
		panic("phy: scrambler sequence too short")
	}
	for i := range bits {
		bits[i] ^= s.seq[i]
	}
	if s.Eng != nil {
		// Byte-granular XOR stream with word loads/stores: ~3 µops per
		// 8 bits plus loop control.
		words := (len(bits) + 7) / 8
		for i := 0; i < words; i++ {
			s.Eng.EmitScalarLoad("mov", int64(i*8), 8)
			s.Eng.EmitScalar("xor", 1)
			s.Eng.EmitScalarStore("mov", int64(i*8), 8)
			if i%16 == 15 {
				s.Eng.EmitBranch("jnz")
			}
		}
	}
	return bits
}

// ApplyLLR flips the signs of soft values where the sequence bit is 1,
// descrambling an LLR stream in place.
func (s *Scrambler) ApplyLLR(llr []int16) []int16 {
	if len(llr) > len(s.seq) {
		panic("phy: scrambler sequence too short")
	}
	for i := range llr {
		if s.seq[i] == 1 {
			llr[i] = -llr[i]
		}
	}
	if s.Eng != nil {
		words := (len(llr) + 3) / 4
		for i := 0; i < words; i++ {
			s.Eng.EmitScalarLoad("mov", int64(i*8), 8)
			s.Eng.EmitScalar("neg", 1)
			s.Eng.EmitScalarStore("mov", int64(i*8), 8)
		}
	}
	return llr
}
