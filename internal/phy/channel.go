package phy

import (
	"math"
	"math/rand"
)

// AWGNChannel adds white Gaussian noise of the configured variance per
// real dimension. It stands in for the paper's RF front-end (USRP B210 +
// over-the-air link); the claims under reproduction are all CPU-side,
// so a deterministic stochastic channel that exercises the same
// soft-decision code paths suffices (see DESIGN.md).
type AWGNChannel struct {
	// SNRdB is the per-sample signal-to-noise ratio.
	SNRdB float64
	rng   *rand.Rand
}

// NewAWGNChannel builds a deterministic channel for the given SNR and
// seed.
func NewAWGNChannel(snrDB float64, seed int64) *AWGNChannel {
	return &AWGNChannel{SNRdB: snrDB, rng: rand.New(rand.NewSource(seed))}
}

// sigma returns the per-dimension noise standard deviation for unit
// signal energy.
func (c *AWGNChannel) sigma() float64 {
	return math.Pow(10, -c.SNRdB/20) / math.Sqrt2
}

// Apply adds noise to the samples in place and returns them.
func (c *AWGNChannel) Apply(samples []IQ) []IQ {
	s := c.sigma()
	for i := range samples {
		samples[i].I += c.rng.NormFloat64() * s
		samples[i].Q += c.rng.NormFloat64() * s
	}
	return samples
}

// NoiseVar returns the total (two-dimensional) noise variance, the value
// a demodulator should use.
func (c *AWGNChannel) NoiseVar() float64 {
	s := c.sigma()
	return 2 * s * s
}
