package phy

import (
	"fmt"

	"vransim/internal/simd"
)

// The DCI (Downlink Control Information) path uses the 36.212
// tail-biting convolutional code: rate 1/3, constraint length 7,
// generators 133/171/165 (octal).
const (
	tbccK     = 7
	tbccMem   = tbccK - 1
	numTBCC   = 1 << tbccMem
	tbccG0    = 0o133
	tbccG1    = 0o171
	tbccG2    = 0o165
	tbccRate  = 3
	tbccInfin = int32(1) << 28
)

// parityOf returns the XOR of the bits of x.
func parityOf(x int) byte {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return byte(n & 1)
}

// tbccOutputs returns the three coded bits for register contents
// r = u<<6 | s: the current input in bit 6 and the six previous inputs
// below it (newest in bit 5).
func tbccOutputs(r int) [3]byte {
	return [3]byte{parityOf(r & tbccG0), parityOf(r & tbccG1), parityOf(r & tbccG2)}
}

// TBCCEncode convolutionally encodes bits with tail-biting: the shift
// register starts loaded with the last six information bits, so initial
// and final states coincide and no tail is transmitted. Output length is
// 3·len(bits).
func TBCCEncode(bits []byte) []byte {
	n := len(bits)
	if n < tbccMem {
		panic("phy: TBCC payload shorter than the constraint length")
	}
	// State s holds the six previous inputs, newest in bit 5.
	state := 0
	for i := 0; i < tbccMem; i++ {
		state = state<<1 | int(bits[n-tbccMem+i])
	}
	// Reverse into the newest-in-bit-5 convention.
	state = reverseBits(state, tbccMem)
	out := make([]byte, 0, tbccRate*n)
	for _, b := range bits {
		r := int(b)<<tbccMem | state
		o := tbccOutputs(r)
		out = append(out, o[0], o[1], o[2])
		state = r >> 1
	}
	return out
}

func reverseBits(x, n int) int {
	out := 0
	for i := 0; i < n; i++ {
		out = out<<1 | (x>>i)&1
	}
	return out
}

// TBCCDecoder is a wrap-around Viterbi decoder for the tail-biting code.
type TBCCDecoder struct {
	// Wraps is how many times the trellis is traversed before the
	// traceback (2 suffices for DCI-sized payloads).
	Wraps int
	// Eng, when set, receives a representative µop stream: OAI's
	// Viterbi is a SIMD add/max kernel (one of the Figure 3/4 modules).
	Eng *simd.Engine
}

// Decode returns the maximum-likelihood information bits for the 3·n
// received LLRs (positive ⇒ bit 0).
//
// Trellis bookkeeping: a state ns encodes the six most recent inputs,
// newest in bit 5, so the input that *produced* ns is ns>>5 and its two
// possible predecessors are ((ns&31)<<1)|b for the shifted-out bit b.
func (d *TBCCDecoder) Decode(llr []int16, n int) ([]byte, error) {
	if len(llr) != tbccRate*n {
		return nil, fmt.Errorf("phy: got %d LLRs for %d bits, want %d", len(llr), n, tbccRate*n)
	}
	if n < tbccMem {
		return nil, fmt.Errorf("phy: payload %d shorter than constraint length", n)
	}
	wraps := d.Wraps
	if wraps <= 0 {
		wraps = 2
	}
	steps := wraps * n

	metric := make([]int32, numTBCC) // equiprobable start: tail-biting
	next := make([]int32, numTBCC)
	survivors := make([][]byte, steps)

	for t := 0; t < steps; t++ {
		pos := t % n
		l := [3]int32{int32(llr[3*pos]), int32(llr[3*pos+1]), int32(llr[3*pos+2])}
		surv := make([]byte, numTBCC)
		for ns := 0; ns < numTBCC; ns++ {
			u := ns >> (tbccMem - 1)
			best := -tbccInfin
			var bestB byte
			for b := 0; b < 2; b++ {
				s := (ns&(numTBCC>>1-1))<<1 | b
				r := u<<tbccMem | s
				o := tbccOutputs(r)
				bm := branchLLR(o[0], l[0]) + branchLLR(o[1], l[1]) + branchLLR(o[2], l[2])
				if m := metric[s] + bm; m > best {
					best = m
					bestB = byte(b)
				}
			}
			next[ns] = best
			surv[ns] = bestB
		}
		survivors[t] = surv
		copy(metric, next)
		if t%32 == 31 {
			normalizeI32(metric)
		}
		if d.Eng != nil {
			// 64 states × (add + max), vectorized in the real kernel.
			vecs := numTBCC / d.Eng.W.Lanes16()
			for v := 0; v < vecs; v++ {
				d.Eng.EmitScalarLoad("mov", int64(t*64%4096), 8)
				d.Eng.EmitScalar("add", 2)
				d.Eng.EmitScalar("cmp", 1)
			}
			d.Eng.EmitBranch("jnz")
		}
	}

	// Traceback over the final wrap.
	best := 0
	for s := 1; s < numTBCC; s++ {
		if metric[s] > metric[best] {
			best = s
		}
	}
	bits := make([]byte, n)
	state := best
	for t := steps - 1; t >= steps-n; t-- {
		bits[t%n] = byte(state >> (tbccMem - 1))
		state = (state&(numTBCC>>1-1))<<1 | int(survivors[t][state])
	}
	return bits, nil
}

func branchLLR(bit byte, llr int32) int32 {
	if bit == 0 {
		return llr
	}
	return -llr
}

func normalizeI32(v []int32) {
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	for i := range v {
		v[i] -= m
	}
}

// DCI is a downlink control message: a compact bit payload protected by
// a CRC16 and the tail-biting convolutional code.
type DCI struct {
	// Payload carries the scheduling fields as raw bits.
	Payload []byte
}

// EncodeDCI attaches a CRC16 and convolutionally encodes the message.
func EncodeDCI(d DCI) []byte {
	return TBCCEncode(AppendCRC(d.Payload, CRC16Poly, 16))
}

// DecodeDCI Viterbi-decodes and CRC-checks a DCI of the given payload
// length from LLRs.
func DecodeDCI(llr []int16, payloadLen int, dec *TBCCDecoder) (DCI, bool, error) {
	n := payloadLen + 16
	bits, err := dec.Decode(llr, n)
	if err != nil {
		return DCI{}, false, err
	}
	ok := CheckCRC(bits, CRC16Poly, 16)
	return DCI{Payload: bits[:payloadLen]}, ok, nil
}
