package phy

import (
	"math"
	"math/rand"
	"testing"
)

func TestPilotPatternGeometry(t *testing.T) {
	p := PilotPattern{Offset: 0, Spacing: 6}
	pos := p.Positions(300)
	if len(pos) != 50 {
		t.Fatalf("pilot count %d, want 50", len(pos))
	}
	data := p.DataPositions(300)
	if len(data) != 250 {
		t.Fatalf("data count %d, want 250", len(data))
	}
	seen := map[int]bool{}
	for _, i := range append(append([]int{}, pos...), data...) {
		if seen[i] {
			t.Fatal("overlapping pilot/data position")
		}
		seen[i] = true
	}
}

func TestEstimateRecoversKnownChannel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 300
	seq := GoldSequence(999, 2*n)
	p := DefaultPilots
	grid := make([]IQ, n)
	p.InsertPilots(grid, seq)
	// Apply a known channel, no noise.
	hRe, hIm := 0.8, -0.45
	rx := make([]IQ, n)
	for i, s := range grid {
		rx[i] = IQ{I: s.I*hRe - s.Q*hIm, Q: s.I*hIm + s.Q*hRe}
	}
	gotRe, gotIm := p.Estimate(rx, seq)
	if math.Abs(gotRe-hRe) > 1e-9 || math.Abs(gotIm-hIm) > 1e-9 {
		t.Errorf("estimate (%f,%f), want (%f,%f)", gotRe, gotIm, hRe, hIm)
	}
	_ = rng
}

func TestEqualizeInvertsChannel(t *testing.T) {
	syms, _ := Modulate([]byte{0, 1, 1, 0, 1, 1, 0, 0}, QPSK)
	hRe, hIm := 0.3, 0.9
	rx := make([]IQ, len(syms))
	for i, s := range syms {
		rx[i] = IQ{I: s.I*hRe - s.Q*hIm, Q: s.I*hIm + s.Q*hRe}
	}
	scale := Equalize(rx, hRe, hIm)
	for i := range syms {
		if math.Abs(rx[i].I-syms[i].I) > 1e-9 || math.Abs(rx[i].Q-syms[i].Q) > 1e-9 {
			t.Fatalf("symbol %d not restored", i)
		}
	}
	want := 1 / (hRe*hRe + hIm*hIm)
	if math.Abs(scale-want) > 1e-9 {
		t.Errorf("noise scale %f, want %f", scale, want)
	}
}

// TestEqualizedLinkThroughFading is the end-to-end payoff: a QPSK/OFDM
// link through a random-phase fading channel fails without equalization
// and succeeds with pilot-based estimation + equalization.
func TestEqualizedLinkThroughFading(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	o, err := NewOFDM(512, 300, 36)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultPilots
	seq := GoldSequence(4321, 2*o.UsedCarriers)
	dataPos := p.DataPositions(o.UsedCarriers)
	bits := randBits(rng, 2*len(dataPos))
	syms, err := Modulate(bits, QPSK)
	if err != nil {
		t.Fatal(err)
	}
	grid := make([]IQ, o.UsedCarriers)
	for j, pos := range dataPos {
		grid[pos] = syms[j]
	}
	p.InsertPilots(grid, seq)

	tx, err := o.Modulate(grid)
	if err != nil {
		t.Fatal(err)
	}
	// A channel whose phase rotation alone scrambles QPSK decisions.
	ch := NewFadingChannel(25, 7)
	if math.Abs(math.Atan2(ch.HIm, ch.HRe)) < 0.3 {
		ch.HRe, ch.HIm = 0, 1 // force a 90-degree rotation
	}
	rxSamples := ch.Apply(tx)
	rxGrid, err := o.Demodulate(rxSamples)
	if err != nil {
		t.Fatal(err)
	}

	countErrs := func(g []IQ, nv float64) int {
		d := Demodulator{M: QPSK, NoiseVar: nv, Scale: 16}
		rxData := make([]IQ, len(dataPos))
		for j, pos := range dataPos {
			rxData[j] = g[pos]
		}
		llr := d.Demodulate(rxData)
		errs := 0
		for i, b := range bits {
			got := byte(0)
			if llr[i] < 0 {
				got = 1
			}
			if got != b {
				errs++
			}
		}
		return errs
	}

	raw := append([]IQ(nil), rxGrid...)
	rawErrs := countErrs(raw, o.SubcarrierNoiseVar(ch.NoiseVar()))
	if rawErrs < len(bits)/8 {
		t.Fatalf("unequalized link only had %d/%d errors; channel too kind for the test", rawErrs, len(bits))
	}

	hRe, hIm := p.Estimate(rxGrid, seq)
	scale := Equalize(rxGrid, hRe, hIm)
	eqErrs := countErrs(rxGrid, o.SubcarrierNoiseVar(ch.NoiseVar())*scale)
	if eqErrs > 2 {
		t.Errorf("equalized link had %d errors at 25 dB, want ~0", eqErrs)
	}
}

func TestFadingChannelDeterministic(t *testing.T) {
	a := NewFadingChannel(10, 3)
	b := NewFadingChannel(10, 3)
	if a.HRe != b.HRe || a.HIm != b.HIm {
		t.Error("fading channel not deterministic per seed")
	}
	mag := math.Hypot(a.HRe, a.HIm)
	if mag < 0.3 || mag > 3 {
		t.Errorf("implausible channel magnitude %f", mag)
	}
}
