package phy

import (
	"fmt"
	"math"

	"vransim/internal/simd"
)

// Modulation identifies a constellation.
type Modulation int

// Supported constellations.
const (
	QPSK Modulation = iota
	QAM16
	QAM64
)

// BitsPerSymbol returns the number of bits one symbol carries.
func (m Modulation) BitsPerSymbol() int {
	switch m {
	case QPSK:
		return 2
	case QAM16:
		return 4
	case QAM64:
		return 6
	}
	panic("phy: unknown modulation")
}

// String names the constellation.
func (m Modulation) String() string {
	switch m {
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16QAM"
	case QAM64:
		return "64QAM"
	}
	return fmt.Sprintf("mod(%d)", int(m))
}

// IQ is one complex baseband sample.
type IQ struct{ I, Q float64 }

// pamLevel maps bit groups to one PAM axis per 36.211: Gray-coded with
// the first bit selecting the sign and subsequent bits the magnitude.
func pamLevel(bits []byte) float64 {
	switch len(bits) {
	case 1:
		return 1 - 2*float64(bits[0])
	case 2:
		// 0b00:+1 0b01:+3 0b10:-1 0b11:-3 (scaled by caller)
		v := 1.0
		if bits[1] == 1 {
			v = 3.0
		}
		if bits[0] == 1 {
			v = -v
		}
		return v
	case 3:
		mag := []float64{3, 1, 5, 7}[bits[1]<<1|bits[2]]
		if bits[0] == 1 {
			return -mag
		}
		return mag
	}
	panic("phy: bad PAM width")
}

// Modulate maps a bit stream (length a multiple of BitsPerSymbol) to IQ
// symbols with unit average energy.
func Modulate(bits []byte, m Modulation) ([]IQ, error) {
	bps := m.BitsPerSymbol()
	if len(bits)%bps != 0 {
		return nil, fmt.Errorf("phy: %d bits not a multiple of %d", len(bits), bps)
	}
	norm := map[Modulation]float64{QPSK: math.Sqrt2, QAM16: math.Sqrt(10), QAM64: math.Sqrt(42)}[m]
	half := bps / 2
	out := make([]IQ, len(bits)/bps)
	for i := range out {
		g := bits[i*bps : (i+1)*bps]
		// 36.211 interleaves axis bits: even-indexed bits drive I,
		// odd-indexed bits drive Q.
		ib := make([]byte, 0, half)
		qb := make([]byte, 0, half)
		for j := 0; j < bps; j += 2 {
			ib = append(ib, g[j])
			qb = append(qb, g[j+1])
		}
		out[i] = IQ{I: pamLevel(ib) / norm, Q: pamLevel(qb) / norm}
	}
	return out, nil
}

// Demodulator computes max-log LLRs from received symbols.
type Demodulator struct {
	M Modulation
	// Scale converts the float LLR to the int16 fixed-point range the
	// decoder consumes.
	Scale float64
	// NoiseVar is the channel noise variance estimate.
	NoiseVar float64
	// Eng, when set, receives a representative µop stream (the OAI
	// demodulators are SIMD calculation kernels).
	Eng *simd.Engine
}

// Demodulate returns one int16 LLR per bit (positive ⇒ bit 0), max-log
// over the constellation.
func (d *Demodulator) Demodulate(syms []IQ) []int16 {
	bps := d.M.BitsPerSymbol()
	nv := d.NoiseVar
	if nv <= 0 {
		nv = 1e-3
	}
	scale := d.Scale
	if scale == 0 {
		scale = 16
	}
	out := make([]int16, len(syms)*bps)
	table := constellation(d.M)
	for si, y := range syms {
		for b := 0; b < bps; b++ {
			best0, best1 := math.Inf(-1), math.Inf(-1)
			for _, pt := range table {
				di := y.I - pt.sym.I
				dq := y.Q - pt.sym.Q
				metric := -(di*di + dq*dq) / nv
				if pt.bits>>(bps-1-b)&1 == 0 {
					if metric > best0 {
						best0 = metric
					}
				} else if metric > best1 {
					best1 = metric
				}
			}
			llr := (best0 - best1) * scale
			if llr > 32767 {
				llr = 32767
			}
			if llr < -32768 {
				llr = -32768
			}
			out[si*bps+b] = int16(llr)
		}
		if d.Eng != nil {
			// Per symbol: distance computation across the
			// constellation, vectorized in the real code.
			d.Eng.EmitScalar("fma", 2)
			vecs := (len(table) + d.Eng.W.Lanes16() - 1) / d.Eng.W.Lanes16()
			for v := 0; v < vecs; v++ {
				d.Eng.EmitScalarLoad("mov", int64(si*8), 8)
				d.Eng.EmitScalar("sub", 2)
			}
		}
	}
	return out
}

type constPoint struct {
	bits uint32
	sym  IQ
}

// constellation enumerates every point with its bit label.
func constellation(m Modulation) []constPoint {
	bps := m.BitsPerSymbol()
	n := 1 << bps
	out := make([]constPoint, 0, n)
	bits := make([]byte, bps)
	for v := 0; v < n; v++ {
		for j := 0; j < bps; j++ {
			bits[j] = byte(v >> (bps - 1 - j) & 1)
		}
		syms, err := Modulate(bits, m)
		if err != nil {
			panic(err)
		}
		out = append(out, constPoint{bits: uint32(v), sym: syms[0]})
	}
	return out
}
