package phy

import (
	"math"
	"math/rand"
)

// FadingChannel models a frequency-flat block-fading radio channel: a
// complex gain h (drawn once per channel instance, Rayleigh-distributed
// magnitude, uniform phase) applied to every sample, plus AWGN. It
// extends the plain AWGN substitute for the paper's RF front-end with
// the impairment that makes channel estimation necessary.
type FadingChannel struct {
	HRe, HIm float64
	awgn     *AWGNChannel
}

// NewFadingChannel draws the channel gain and builds the noise source.
func NewFadingChannel(snrDB float64, seed int64) *FadingChannel {
	rng := rand.New(rand.NewSource(seed))
	// Rayleigh magnitude with unit mean power, uniform phase.
	mag := math.Sqrt((rng.NormFloat64()*rng.NormFloat64() + 1) / 2)
	if mag < 0.3 {
		mag = 0.3 // keep the block decodable: deep fades are HARQ territory
	}
	phase := rng.Float64() * 2 * math.Pi
	return &FadingChannel{
		HRe:  mag * math.Cos(phase),
		HIm:  mag * math.Sin(phase),
		awgn: NewAWGNChannel(snrDB, seed+1),
	}
}

// Apply multiplies by the channel gain and adds noise, in place.
func (c *FadingChannel) Apply(samples []IQ) []IQ {
	for i, s := range samples {
		samples[i] = IQ{
			I: s.I*c.HRe - s.Q*c.HIm,
			Q: s.I*c.HIm + s.Q*c.HRe,
		}
	}
	return c.awgn.Apply(samples)
}

// NoiseVar exposes the additive noise variance.
func (c *FadingChannel) NoiseVar() float64 { return c.awgn.NoiseVar() }

// PilotPattern describes where reference symbols sit in the subcarrier
// grid: every Spacing-th carrier starting at Offset.
type PilotPattern struct {
	Offset  int
	Spacing int
}

// DefaultPilots is an LTE-ish one-in-six reference-signal density.
var DefaultPilots = PilotPattern{Offset: 0, Spacing: 6}

// Positions returns the pilot carrier indices for a grid of n carriers.
func (p PilotPattern) Positions(n int) []int {
	var out []int
	for i := p.Offset; i < n; i += p.Spacing {
		out = append(out, i)
	}
	return out
}

// PilotValue returns the known reference symbol for pilot position index
// j (a QPSK constant-amplitude sequence derived from a Gold sequence, so
// both ends can generate it).
func PilotValue(seq []byte, j int) IQ {
	a := 1 / math.Sqrt2
	re, im := a, a
	if seq[2*j] == 1 {
		re = -a
	}
	if seq[2*j+1] == 1 {
		im = -a
	}
	return IQ{I: re, Q: im}
}

// InsertPilots writes pilot symbols into the grid (overwriting whatever
// data mapper put there); data must be mapped around the pilots by the
// caller using DataPositions.
func (p PilotPattern) InsertPilots(grid []IQ, seq []byte) {
	for j, pos := range p.Positions(len(grid)) {
		grid[pos] = PilotValue(seq, j)
	}
}

// DataPositions returns the non-pilot carrier indices.
func (p PilotPattern) DataPositions(n int) []int {
	pilot := map[int]bool{}
	for _, pos := range p.Positions(n) {
		pilot[pos] = true
	}
	var out []int
	for i := 0; i < n; i++ {
		if !pilot[i] {
			out = append(out, i)
		}
	}
	return out
}

// Estimate performs least-squares channel estimation over the pilots of
// a received grid: ĥ = Σ Y_p·conj(X_p) / Σ |X_p|².
func (p PilotPattern) Estimate(rx []IQ, seq []byte) (hRe, hIm float64) {
	var numRe, numIm, den float64
	for j, pos := range p.Positions(len(rx)) {
		x := PilotValue(seq, j)
		y := rx[pos]
		numRe += y.I*x.I + y.Q*x.Q
		numIm += y.Q*x.I - y.I*x.Q
		den += x.I*x.I + x.Q*x.Q
	}
	if den == 0 {
		return 1, 0
	}
	return numRe / den, numIm / den
}

// Equalize applies the one-tap zero-forcing equalizer X̂ = Y·conj(ĥ)/|ĥ|²
// in place and returns the post-equalization noise variance scale
// (noise is amplified by 1/|ĥ|²).
func Equalize(rx []IQ, hRe, hIm float64) float64 {
	mag2 := hRe*hRe + hIm*hIm
	if mag2 < 1e-9 {
		mag2 = 1e-9
	}
	for i, y := range rx {
		rx[i] = IQ{
			I: (y.I*hRe + y.Q*hIm) / mag2,
			Q: (y.Q*hRe - y.I*hIm) / mag2,
		}
	}
	return 1 / mag2
}
