package phy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBits(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(2))
	}
	return b
}

func TestCRCDetectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		poly uint32
		n    int
	}{{CRC24APoly, 24}, {CRC24BPoly, 24}, {CRC16Poly, 16}, {CRC8Poly, 8}} {
		bits := randBits(rng, 200)
		ext := AppendCRC(bits, tc.poly, tc.n)
		if !CheckCRC(ext, tc.poly, tc.n) {
			t.Fatalf("poly %#x: valid CRC rejected", tc.poly)
		}
		for trial := 0; trial < 20; trial++ {
			corrupted := append([]byte(nil), ext...)
			corrupted[rng.Intn(len(corrupted))] ^= 1
			if CheckCRC(corrupted, tc.poly, tc.n) {
				t.Errorf("poly %#x: single-bit error not detected", tc.poly)
			}
		}
	}
}

func TestCRCKnownZeroInput(t *testing.T) {
	// All-zero input has CRC zero for any polynomial with zero init.
	if CRC24A(make([]byte, 64)) != 0 || CRC16(make([]byte, 64)) != 0 {
		t.Error("zero input must yield zero CRC")
	}
}

// Property: CheckCRC accepts exactly the strings AppendCRC produces.
func TestCRCProperty(t *testing.T) {
	f := func(data []byte, flip uint16) bool {
		if len(data) == 0 {
			data = []byte{1}
		}
		bits := make([]byte, len(data)%128+8)
		for i := range bits {
			bits[i] = data[i%len(data)] & 1
		}
		ext := AppendCRC(bits, CRC24BPoly, 24)
		if !CheckCRC(ext, CRC24BPoly, 24) {
			return false
		}
		ext[int(flip)%len(ext)] ^= 1
		return !CheckCRC(ext, CRC24BPoly, 24)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestGoldSequenceProperties(t *testing.T) {
	c1 := GoldSequence(12345, 4096)
	c2 := GoldSequence(12345, 4096)
	c3 := GoldSequence(54321, 4096)
	same, diff := 0, 0
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatal("Gold sequence not deterministic")
		}
		if c1[i] != c3[i] {
			diff++
		}
		if c1[i] == 1 {
			same++
		}
	}
	// Balanced (~50% ones) and seed-sensitive.
	if same < 1800 || same > 2300 {
		t.Errorf("ones count %d, want ~2048", same)
	}
	if diff < 1800 || diff > 2300 {
		t.Errorf("cross-seed difference %d, want ~2048", diff)
	}
}

func TestScramblerInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bits := randBits(rng, 1000)
	orig := append([]byte(nil), bits...)
	s := NewScrambler(ScrambleInit(100, 0, 4, 7), 1000)
	s.Apply(bits)
	changed := 0
	for i := range bits {
		if bits[i] != orig[i] {
			changed++
		}
	}
	if changed < 400 {
		t.Errorf("scrambler changed only %d/1000 bits", changed)
	}
	s2 := NewScrambler(ScrambleInit(100, 0, 4, 7), 1000)
	s2.Apply(bits)
	for i := range bits {
		if bits[i] != orig[i] {
			t.Fatal("descrambling failed")
		}
	}
}

func TestScramblerLLRSigns(t *testing.T) {
	llr := []int16{100, -50, 30, -20, 10, 5, -5, 60}
	s := NewScrambler(ScrambleInit(1, 0, 0, 1), len(llr))
	bits := make([]byte, len(llr))
	s.Apply(bits) // bits now hold the sequence
	s2 := NewScrambler(ScrambleInit(1, 0, 0, 1), len(llr))
	got := s2.ApplyLLR(append([]int16(nil), llr...))
	for i := range llr {
		want := llr[i]
		if bits[i] == 1 {
			want = -want
		}
		if got[i] != want {
			t.Errorf("LLR %d: got %d, want %d", i, got[i], want)
		}
	}
}

func TestModulationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, m := range []Modulation{QPSK, QAM16, QAM64} {
		bits := randBits(rng, 240*m.BitsPerSymbol()/2*2)
		bits = bits[:240/m.BitsPerSymbol()*m.BitsPerSymbol()]
		syms, err := Modulate(bits, m)
		if err != nil {
			t.Fatal(err)
		}
		// Unit average energy.
		var e float64
		for _, s := range syms {
			e += s.I*s.I + s.Q*s.Q
		}
		e /= float64(len(syms))
		if math.Abs(e-1) > 0.15 {
			t.Errorf("%v: average symbol energy %.3f, want ~1", m, e)
		}
		// Noiseless demod recovers the bits.
		d := Demodulator{M: m, NoiseVar: 0.1, Scale: 16}
		llr := d.Demodulate(syms)
		for i, b := range bits {
			got := byte(0)
			if llr[i] < 0 {
				got = 1
			}
			if got != b {
				t.Fatalf("%v: bit %d wrong after noiseless demod", m, i)
			}
		}
	}
}

func TestModulateLengthValidation(t *testing.T) {
	if _, err := Modulate(make([]byte, 3), QPSK); err == nil {
		t.Error("expected length error")
	}
}

func TestSubBlockInterleaverCoverage(t *testing.T) {
	for _, d := range []int{40, 132, 512, 6144 + 12} {
		for _, f := range []func(int) []int{subBlockInterleave, subBlockInterleave2} {
			out := f(d)
			seen := make([]bool, d)
			dummies := 0
			for _, idx := range out {
				if idx == dummy {
					dummies++
					continue
				}
				if seen[idx] {
					t.Fatalf("D=%d: index %d emitted twice", d, idx)
				}
				seen[idx] = true
			}
			for i, s := range seen {
				if !s {
					t.Fatalf("D=%d: index %d never emitted", d, i)
				}
			}
			if dummies != len(out)-d {
				t.Fatalf("D=%d: dummy count %d, want %d", d, dummies, len(out)-d)
			}
		}
	}
}

func TestRateMatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := 132
	rm := NewRateMatcher(d)
	s0, s1, s2 := randBits(rng, d), randBits(rng, d), randBits(rng, d)
	// With E = 3*D*2 every bit is transmitted at least once.
	e := 3 * d * 2
	tx, err := rm.Match(s0, s1, s2, e, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tx) != e {
		t.Fatalf("rate matcher emitted %d bits, want %d", len(tx), e)
	}
	llr := make([]int16, e)
	for i, b := range tx {
		if b == 0 {
			llr[i] = 8
		} else {
			llr[i] = -8
		}
	}
	d0, d1, d2 := rm.Dematch(llr, 0)
	check := func(name string, want []byte, got []int16) {
		for i := range want {
			sign := byte(0)
			if got[i] < 0 {
				sign = 1
			}
			if got[i] == 0 || sign != want[i] {
				t.Fatalf("%s[%d]: llr %d vs bit %d", name, i, got[i], want[i])
			}
		}
	}
	check("d0", s0, d0)
	check("d1", s1, d1)
	check("d2", s2, d2)
}

func TestRateMatchPuncturing(t *testing.T) {
	d := 132
	rm := NewRateMatcher(d)
	s := make([]byte, d)
	// Fewer bits than the buffer: some positions must stay punctured
	// (zero LLR) after dematching.
	tx, err := rm.Match(s, s, s, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	llr := make([]int16, len(tx))
	for i := range llr {
		llr[i] = 8
	}
	d0, d1, d2 := rm.Dematch(llr, 0)
	zeros := 0
	for _, buf := range [][]int16{d0, d1, d2} {
		for _, v := range buf {
			if v == 0 {
				zeros++
			}
		}
	}
	if zeros != 2*d {
		t.Errorf("punctured positions = %d, want %d", zeros, 2*d)
	}
}

func TestRateMatchSoftCombining(t *testing.T) {
	d := 40
	rm := NewRateMatcher(d)
	s := make([]byte, d)
	e := 3 * d * 3 // each bit repeated ~3 times
	tx, _ := rm.Match(s, s, s, e, 0)
	llr := make([]int16, len(tx))
	for i := range llr {
		llr[i] = 5
	}
	d0, _, _ := rm.Dematch(llr, 0)
	for i, v := range d0 {
		if v < 10 {
			t.Fatalf("d0[%d] = %d: repetition not combined", i, v)
		}
	}
}

func TestInterleaveTriples(t *testing.T) {
	out := InterleaveTriples([]int16{1, 2}, []int16{3, 4}, []int16{5, 6}, 2)
	want := []int16{1, 3, 5, 2, 4, 6}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("triple %d = %d, want %d", i, out[i], want[i])
		}
	}
}

func TestSegmentationSingleBlock(t *testing.T) {
	seg, err := Segment(1000)
	if err != nil {
		t.Fatal(err)
	}
	if seg.C != 1 {
		t.Fatalf("C = %d, want 1", seg.C)
	}
	rng := rand.New(rand.NewSource(5))
	bits := randBits(rng, 1000)
	blocks, err := seg.Split(bits)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 || len(blocks[0]) != seg.K {
		t.Fatal("bad split geometry")
	}
	back, ok, err := seg.Join(blocks)
	if err != nil || !ok {
		t.Fatal(err, ok)
	}
	for i := range bits {
		if back[i] != bits[i] {
			t.Fatal("join mismatch")
		}
	}
}

func TestSegmentationMultiBlock(t *testing.T) {
	b := 20000
	seg, err := Segment(b)
	if err != nil {
		t.Fatal(err)
	}
	if seg.C < 4 {
		t.Fatalf("C = %d, want >= 4 for B=%d", seg.C, b)
	}
	rng := rand.New(rand.NewSource(6))
	bits := randBits(rng, b)
	blocks, err := seg.Split(bits)
	if err != nil {
		t.Fatal(err)
	}
	for _, blk := range blocks {
		if len(blk) != seg.K {
			t.Fatalf("block length %d, want %d", len(blk), seg.K)
		}
		if !CheckCRC(blk, CRC24BPoly, 24) {
			t.Fatal("block CRC24B invalid")
		}
	}
	back, ok, err := seg.Join(blocks)
	if err != nil || !ok {
		t.Fatal(err, ok)
	}
	for i := range bits {
		if back[i] != bits[i] {
			t.Fatal("multi-block join mismatch")
		}
	}
	// Corrupt one block: Join must flag it.
	blocks[1][0] ^= 1
	_, ok, _ = seg.Join(blocks)
	if ok {
		t.Error("corrupted block CRC not flagged")
	}
}

func TestOFDMRoundTrip(t *testing.T) {
	o, err := NewOFDM(512, 300, 36)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	bits := randBits(rng, 600)
	syms, _ := Modulate(bits, QPSK)
	tx, err := o.Modulate(syms)
	if err != nil {
		t.Fatal(err)
	}
	if len(tx) != 512+36 {
		t.Fatalf("sample count %d, want 548", len(tx))
	}
	rx, err := o.Demodulate(tx)
	if err != nil {
		t.Fatal(err)
	}
	for i := range syms {
		if math.Abs(rx[i].I-syms[i].I) > 1e-9 || math.Abs(rx[i].Q-syms[i].Q) > 1e-9 {
			t.Fatalf("subcarrier %d: %v != %v", i, rx[i], syms[i])
		}
	}
}

func TestOFDMValidation(t *testing.T) {
	if _, err := NewOFDM(500, 300, 36); err == nil {
		t.Error("expected power-of-two error")
	}
	if _, err := NewOFDM(256, 300, 36); err == nil {
		t.Error("expected used<fft error")
	}
}

func TestOFDMThroughAWGN(t *testing.T) {
	o, _ := NewOFDM(512, 300, 36)
	ch := NewAWGNChannel(20, 1)
	rng := rand.New(rand.NewSource(8))
	bits := randBits(rng, 600)
	syms, _ := Modulate(bits, QPSK)
	tx, _ := o.Modulate(syms)
	rx, _ := o.Demodulate(ch.Apply(tx))
	d := Demodulator{M: QPSK, NoiseVar: o.SubcarrierNoiseVar(ch.NoiseVar()), Scale: 16}
	llr := d.Demodulate(rx)
	errs := 0
	for i, b := range bits {
		got := byte(0)
		if llr[i] < 0 {
			got = 1
		}
		if got != b {
			errs++
		}
	}
	if errs > 3 {
		t.Errorf("%d bit errors at 20 dB through OFDM", errs)
	}
}

func TestTBCCRoundTripNoiseless(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{16, 44, 70} {
		bits := randBits(rng, n)
		coded := TBCCEncode(bits)
		if len(coded) != 3*n {
			t.Fatalf("coded length %d, want %d", len(coded), 3*n)
		}
		llr := make([]int16, len(coded))
		for i, b := range coded {
			if b == 0 {
				llr[i] = 16
			} else {
				llr[i] = -16
			}
		}
		dec := &TBCCDecoder{}
		got, err := dec.Decode(llr, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range bits {
			if got[i] != bits[i] {
				t.Fatalf("n=%d: bit %d wrong", n, i)
			}
		}
	}
}

func TestTBCCTailBiting(t *testing.T) {
	// Encoding must be circularly consistent: encoding a rotated input
	// yields a rotated codeword (the defining tail-biting property).
	rng := rand.New(rand.NewSource(10))
	n := 24
	bits := randBits(rng, n)
	coded := TBCCEncode(bits)
	rot := append(append([]byte(nil), bits[1:]...), bits[0])
	codedRot := TBCCEncode(rot)
	for i := 0; i < 3*n; i++ {
		if codedRot[i] != coded[(i+3)%(3*n)] {
			t.Fatalf("tail-biting circularity broken at %d", i)
		}
	}
}

func TestDCIEncodeDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := DCI{Payload: randBits(rng, 31)}
	coded := EncodeDCI(d)
	llr := make([]int16, len(coded))
	for i, b := range coded {
		if b == 0 {
			llr[i] = 16
		} else {
			llr[i] = -16
		}
	}
	got, ok, err := DecodeDCI(llr, 31, &TBCCDecoder{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("DCI CRC failed on noiseless input")
	}
	for i := range d.Payload {
		if got.Payload[i] != d.Payload[i] {
			t.Fatal("DCI payload mismatch")
		}
	}
	// Corrupt heavily: CRC must flag it.
	for i := range llr {
		llr[i] = -llr[i]
	}
	_, ok, _ = DecodeDCI(llr, 31, &TBCCDecoder{})
	if ok {
		t.Error("inverted DCI accepted")
	}
}

func TestAWGNChannelStats(t *testing.T) {
	ch := NewAWGNChannel(0, 2) // 0 dB: noise var = signal power
	n := 20000
	samples := make([]IQ, n)
	ch.Apply(samples)
	var mean, varI float64
	for _, s := range samples {
		mean += s.I
	}
	mean /= float64(n)
	for _, s := range samples {
		varI += (s.I - mean) * (s.I - mean)
	}
	varI /= float64(n)
	if math.Abs(mean) > 0.02 {
		t.Errorf("noise mean %.4f, want ~0", mean)
	}
	if math.Abs(varI-0.5) > 0.05 {
		t.Errorf("per-dim variance %.3f, want 0.5 at 0 dB", varI)
	}
	if math.Abs(ch.NoiseVar()-1.0) > 0.01 {
		t.Errorf("NoiseVar %.3f, want 1.0 at 0 dB", ch.NoiseVar())
	}
}
