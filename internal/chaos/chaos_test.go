package chaos

import (
	"testing"
	"time"

	"vransim/internal/turbo"
)

// TestNilInjectorIsNoFault: every method on a nil *Injector must be the
// zero decision — the contract that lets the runtime thread the pointer
// unconditionally.
func TestNilInjectorIsNoFault(t *testing.T) {
	var in *Injector
	w := turbo.NewLLRWord(8)
	w.Sys[0] = 42
	if got := in.CorruptWord(w); got != w {
		t.Error("nil CorruptWord must return the input word itself")
	}
	if in.QueueOverflow() {
		t.Error("nil QueueOverflow fired")
	}
	if in.StallDuration() != 0 {
		t.Error("nil StallDuration nonzero")
	}
	if in.ForceCRCFail() {
		t.Error("nil ForceCRCFail fired")
	}
	if in.EvictPlans() {
		t.Error("nil EvictPlans fired")
	}
	if in.FailCompile() {
		t.Error("nil FailCompile fired")
	}
	if in.Counters() != nil {
		t.Error("nil Counters must be nil")
	}
	if in.Families() != nil {
		t.Error("nil Families must be nil")
	}
}

// TestRateBounds: rate 0 never fires (and does not even count a trial);
// rate 1 always fires.
func TestRateBounds(t *testing.T) {
	in := New(Config{Seed: 7, CRCRate: 1.0})
	for i := 0; i < 100; i++ {
		if !in.ForceCRCFail() {
			t.Fatal("rate-1 site failed to fire")
		}
		if in.QueueOverflow() {
			t.Fatal("rate-0 site fired")
		}
	}
	cs := counters(in)
	if cs[SiteCRC].Trials != 100 || cs[SiteCRC].Fires != 100 {
		t.Errorf("crc counters = %d/%d, want 100/100", cs[SiteCRC].Fires, cs[SiteCRC].Trials)
	}
	if cs[SiteQueue].Trials != 0 {
		t.Errorf("disabled site counted %d trials, want 0", cs[SiteQueue].Trials)
	}
}

// TestDeterministicPerSeed: two injectors with the same seed produce the
// same decision sequence at every site, and corrupted words are
// identical sample for sample. A different seed diverges.
func TestDeterministicPerSeed(t *testing.T) {
	cfg := Config{
		Seed: 3, CorruptRate: 0.5, CRCRate: 0.3, StallRate: 0.2,
		QueueRate: 0.1, EvictRate: 0.4, CompileRate: 0.6,
	}
	a, b := New(cfg), New(cfg)
	w := turbo.NewLLRWord(64)
	for i := range w.Sys {
		w.Sys[i] = 24
		w.P1[i] = -24
		w.P2[i] = 24
	}
	for i := 0; i < 200; i++ {
		wa, wb := a.CorruptWord(w), b.CorruptWord(w)
		if (wa == w) != (wb == w) {
			t.Fatalf("corrupt decision diverged at call %d", i)
		}
		if wa != w {
			for j := range wa.Sys {
				if wa.Sys[j] != wb.Sys[j] || wa.P1[j] != wb.P1[j] || wa.P2[j] != wb.P2[j] {
					t.Fatalf("corrupted samples diverged at call %d pos %d", i, j)
				}
			}
		}
		if a.ForceCRCFail() != b.ForceCRCFail() ||
			a.QueueOverflow() != b.QueueOverflow() ||
			a.StallDuration() != b.StallDuration() ||
			a.EvictPlans() != b.EvictPlans() ||
			a.FailCompile() != b.FailCompile() {
			t.Fatalf("decision diverged at call %d", i)
		}
	}
	// Site independence: a site's sequence depends only on its own call
	// order, not on interleaving across sites.
	c := New(cfg)
	var crcC []bool
	for i := 0; i < 50; i++ {
		crcC = append(crcC, c.ForceCRCFail())
	}
	d := New(cfg)
	for i := 0; i < 50; i++ {
		d.QueueOverflow() // extra traffic at another site
		if d.ForceCRCFail() != crcC[i] {
			t.Fatalf("crc sequence perturbed by queue-site traffic at call %d", i)
		}
	}
	diff := New(Config{Seed: 4, CRCRate: 0.3})
	same := true
	for i := 0; i < 50; i++ {
		if diff.ForceCRCFail() != crcC[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical crc sequences")
	}
}

// TestCorruptWordShape: the source word is never mutated, the copy stays
// within the decoder's channel-LLR range, and some position actually
// moved.
func TestCorruptWordShape(t *testing.T) {
	in := New(Config{Seed: 9, CorruptRate: 1.0, CorruptAmp: 300, CorruptFrac: 1.0})
	w := turbo.NewLLRWord(128)
	for i := range w.Sys {
		w.Sys[i] = turbo.LLRLimit - 1
		w.P1[i] = -(turbo.LLRLimit - 1)
	}
	orig := w.Clone()
	c := in.CorruptWord(w)
	if c == w {
		t.Fatal("rate-1 corrupt returned the original word")
	}
	changed := false
	for i := range w.Sys {
		if w.Sys[i] != orig.Sys[i] || w.P1[i] != orig.P1[i] || w.P2[i] != orig.P2[i] {
			t.Fatal("source word mutated")
		}
		if c.Sys[i] != orig.Sys[i] {
			changed = true
		}
		for _, v := range []int16{c.Sys[i], c.P1[i], c.P2[i]} {
			if v > turbo.LLRLimit-1 || v < -(turbo.LLRLimit-1) {
				t.Fatalf("corrupted sample %d out of LLR range", v)
			}
		}
	}
	if !changed {
		t.Error("full-rate full-frac corruption changed nothing")
	}
}

// TestShapeDefaults: zero config fields take documented defaults.
func TestShapeDefaults(t *testing.T) {
	in := New(Config{Seed: 1, StallRate: 1.0})
	if d := in.StallDuration(); d != 500*time.Microsecond {
		t.Errorf("default stall = %v, want 500µs", d)
	}
	if in.cfg.CorruptAmp != 96 || in.cfg.CorruptFrac != 0.25 {
		t.Errorf("corrupt defaults = %d/%.2f, want 96/0.25", in.cfg.CorruptAmp, in.cfg.CorruptFrac)
	}
}

// TestFamilies: the exposition carries both families with one sample per
// site, and values mirror Counters.
func TestFamilies(t *testing.T) {
	in := New(Config{Seed: 5, CRCRate: 1.0})
	for i := 0; i < 10; i++ {
		in.ForceCRCFail()
	}
	fams := in.Families()
	if len(fams) != 2 {
		t.Fatalf("got %d families, want 2", len(fams))
	}
	names := map[string]bool{}
	for _, f := range fams {
		names[f.Name] = true
		if len(f.Samples) != int(numSites) {
			t.Errorf("family %s has %d samples, want %d", f.Name, len(f.Samples), numSites)
		}
	}
	if !names["vran_chaos_trials_total"] || !names["vran_chaos_injected_total"] {
		t.Errorf("family names wrong: %v", names)
	}
	for _, f := range fams {
		if f.Name != "vran_chaos_injected_total" {
			continue
		}
		for _, s := range f.Samples {
			if s.Labels[0].Value == "crc" && s.Value != 10 {
				t.Errorf("crc injected sample = %v, want 10", s.Value)
			}
		}
	}
}

// TestNilInjectorLinkSites: the fronthaul link methods follow the same
// nil-safe contract as the original six sites.
func TestNilInjectorLinkSites(t *testing.T) {
	var in *Injector
	if in.DropFrame() {
		t.Error("nil DropFrame fired")
	}
	if in.DelayFrame() {
		t.Error("nil DelayFrame fired")
	}
	if in.PartitionFor() != 0 {
		t.Error("nil PartitionFor nonzero")
	}
}

// TestLinkSites: rate-1 link sites always fire, counters track them, and
// PartitionFor returns the configured (or default) window.
func TestLinkSites(t *testing.T) {
	in := New(Config{Seed: 11, LinkDropRate: 1.0, LinkDelayRate: 1.0, LinkPartRate: 1.0})
	for i := 0; i < 25; i++ {
		if !in.DropFrame() {
			t.Fatal("rate-1 DropFrame did not fire")
		}
		if !in.DelayFrame() {
			t.Fatal("rate-1 DelayFrame did not fire")
		}
		if d := in.PartitionFor(); d != 5*time.Millisecond {
			t.Fatalf("PartitionFor = %v, want default 5ms", d)
		}
	}
	cs := counters(in)
	for _, s := range []Site{SiteLinkDrop, SiteLinkDelay, SiteLinkPart} {
		if cs[s].Trials != 25 || cs[s].Fires != 25 {
			t.Errorf("%s counters = %d/%d, want 25/25", s, cs[s].Fires, cs[s].Trials)
		}
	}
	custom := New(Config{Seed: 11, LinkPartRate: 1.0, LinkPartFor: 250 * time.Microsecond})
	if d := custom.PartitionFor(); d != 250*time.Microsecond {
		t.Errorf("custom PartitionFor = %v, want 250µs", d)
	}
	off := New(Config{Seed: 11})
	if off.DropFrame() || off.DelayFrame() || off.PartitionFor() != 0 {
		t.Error("rate-0 link site fired")
	}
	if c := counters(off); c[SiteLinkDrop].Trials != 0 {
		t.Errorf("disabled link site counted %d trials, want 0", c[SiteLinkDrop].Trials)
	}
}

// TestLinkSitesDeterministic: same seed, same link decision sequence.
func TestLinkSitesDeterministic(t *testing.T) {
	cfg := Config{Seed: 21, LinkDropRate: 0.4, LinkDelayRate: 0.3, LinkPartRate: 0.1}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 200; i++ {
		if a.DropFrame() != b.DropFrame() ||
			a.DelayFrame() != b.DelayFrame() ||
			a.PartitionFor() != b.PartitionFor() {
			t.Fatalf("link decision diverged at call %d", i)
		}
	}
}

// counters indexes the Counters slice by site.
func counters(in *Injector) map[Site]SiteCounters {
	out := map[Site]SiteCounters{}
	for s := Site(0); s < numSites; s++ {
		out[s] = in.Counters()[int(s)]
	}
	return out
}
