// Package chaos is the fault-injection subsystem: seeded, deterministic
// fault points the serving runtime consults at the places real vRAN
// deployments actually fail — corrupted soft bits at the radio
// front-end, CRC failures after decode, stalled workers, ingress
// pressure, plan-cache eviction storms and compiler verification
// failures. Every site is driven by its own seeded generator, so the
// decision sequence at a site depends only on the seed and the call
// order at that site, never on interleaving across sites — the property
// the deterministic soak tests rest on.
//
// An Injector is nil-safe: every method on a nil *Injector is the
// no-fault fast path (returns the zero decision without locking), so
// production code threads the pointer through unconditionally and pays
// nothing when chaos is disabled.
package chaos

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"vransim/internal/telemetry"
	"vransim/internal/turbo"
)

// Site enumerates the fault-injection points.
type Site int

// Fault sites, in pipeline order.
const (
	// SiteCorrupt perturbs LLR words at submit (noisy reception).
	SiteCorrupt Site = iota
	// SiteQueue fakes ingress queue-overflow pressure at admission.
	SiteQueue
	// SiteStall delays a worker before a batch decode.
	SiteStall
	// SiteCRC forces a CRC failure verdict after a decode.
	SiteCRC
	// SiteEvict triggers a plan-cache eviction storm in a worker.
	SiteEvict
	// SiteCompile fails program compile-verify, forcing the interpreter.
	SiteCompile
	// SiteLinkDrop loses a fronthaul user-plane frame in flight.
	SiteLinkDrop
	// SiteLinkDelay holds a fronthaul frame past its successor (a
	// one-frame reorder — the jitter a switched fronthaul introduces).
	SiteLinkDelay
	// SiteLinkPart opens a partition window during which every
	// user-plane frame on the link is lost.
	SiteLinkPart
	numSites
)

// String names the site (the telemetry label value).
func (s Site) String() string {
	switch s {
	case SiteCorrupt:
		return "corrupt"
	case SiteQueue:
		return "queue"
	case SiteStall:
		return "stall"
	case SiteCRC:
		return "crc"
	case SiteEvict:
		return "evict"
	case SiteCompile:
		return "compile"
	case SiteLinkDrop:
		return "linkdrop"
	case SiteLinkDelay:
		return "linkdelay"
	case SiteLinkPart:
		return "linkpart"
	}
	return "unknown"
}

// Config sets the per-site fault rates (each a probability in [0, 1];
// zero disables the site) and the fault shapes.
type Config struct {
	// Seed derives every site's private generator.
	Seed int64

	// CorruptRate is the probability a submitted word is received
	// noisily; CorruptAmp is the peak LLR perturbation (default 96) and
	// CorruptFrac the fraction of positions hit (default 0.25).
	CorruptRate float64
	CorruptAmp  int16
	CorruptFrac float64

	// QueueRate fakes a full ingress queue at admission.
	QueueRate float64

	// StallRate delays a worker by StallFor (default 500µs) before a
	// batch decode — the noisy-neighbor / page-fault latency spike.
	StallRate float64
	StallFor  time.Duration

	// CRCRate forces a decode's CRC check to fail.
	CRCRate float64

	// EvictRate flushes a worker's whole plan cache before a batch.
	EvictRate float64

	// CompileRate fails a program's compile-time verification.
	CompileRate float64

	// LinkDropRate loses a fronthaul user-plane frame in flight (the
	// control plane rides the reliable management plane and is never
	// faulted).
	LinkDropRate float64

	// LinkDelayRate reorders a fronthaul frame behind its successor.
	LinkDelayRate float64

	// LinkPartRate opens a LinkPartFor-long partition (default 5ms)
	// during which the link drops every user-plane frame.
	LinkPartRate float64
	LinkPartFor  time.Duration
}

// site is one fault point's seeded generator plus its counters.
type site struct {
	mu  sync.Mutex
	rng *rand.Rand

	trials atomic.Uint64
	fires  atomic.Uint64
}

// Injector is the set of armed fault points. Construct with New; a nil
// Injector injects nothing.
type Injector struct {
	cfg   Config
	sites [numSites]site
}

// New builds an injector with every site seeded from cfg.Seed. Shape
// defaults are filled in for zero values.
func New(cfg Config) *Injector {
	if cfg.CorruptAmp <= 0 {
		cfg.CorruptAmp = 96
	}
	if cfg.CorruptFrac <= 0 {
		cfg.CorruptFrac = 0.25
	}
	if cfg.StallFor <= 0 {
		cfg.StallFor = 500 * time.Microsecond
	}
	if cfg.LinkPartFor <= 0 {
		cfg.LinkPartFor = 5 * time.Millisecond
	}
	in := &Injector{cfg: cfg}
	for i := range in.sites {
		// Distinct deterministic streams per site: the multiplier keeps
		// neighboring seeds from producing correlated sequences.
		in.sites[i].rng = rand.New(rand.NewSource(cfg.Seed + int64(i)*0x9E3779B9))
	}
	return in
}

// hit rolls site s against rate, counting the trial and any fire.
func (in *Injector) hit(s Site, rate float64) bool {
	if in == nil || rate <= 0 {
		return false
	}
	st := &in.sites[s]
	st.trials.Add(1)
	st.mu.Lock()
	fired := st.rng.Float64() < rate
	st.mu.Unlock()
	if fired {
		st.fires.Add(1)
	}
	return fired
}

// CorruptWord returns the word the runtime should treat as received: w
// itself on the no-fault path, or a perturbed private copy (the shared
// source word is never mutated). Perturbation adds uniform noise of up
// to ±CorruptAmp to ~CorruptFrac of the positions, clamped to the
// decoder's channel-LLR range — strong enough to defeat single decodes
// at times, weak enough that chase-combined retransmissions recover.
func (in *Injector) CorruptWord(w *turbo.LLRWord) *turbo.LLRWord {
	if in == nil || !in.hit(SiteCorrupt, in.cfg.CorruptRate) {
		return w
	}
	st := &in.sites[SiteCorrupt]
	c := w.Clone()
	st.mu.Lock()
	defer st.mu.Unlock()
	perturb := func(v []int16) {
		for i := range v {
			if st.rng.Float64() >= in.cfg.CorruptFrac {
				continue
			}
			n := int32(v[i]) + int32(st.rng.Intn(2*int(in.cfg.CorruptAmp)+1)) - int32(in.cfg.CorruptAmp)
			if n > turbo.LLRLimit-1 {
				n = turbo.LLRLimit - 1
			}
			if n < -(turbo.LLRLimit - 1) {
				n = -(turbo.LLRLimit - 1)
			}
			v[i] = int16(n)
		}
	}
	perturb(c.Sys)
	perturb(c.P1)
	perturb(c.P2)
	return c
}

// QueueOverflow reports whether admission should behave as if the cell
// queue were full.
func (in *Injector) QueueOverflow() bool {
	if in == nil {
		return false
	}
	return in.hit(SiteQueue, in.cfg.QueueRate)
}

// StallDuration returns how long a worker should stall before its next
// decode (0 on the no-fault path).
func (in *Injector) StallDuration() time.Duration {
	if in == nil {
		return 0
	}
	if in.hit(SiteStall, in.cfg.StallRate) {
		return in.cfg.StallFor
	}
	return 0
}

// ForceCRCFail reports whether a decode's CRC verdict should be forced
// to failure.
func (in *Injector) ForceCRCFail() bool {
	if in == nil {
		return false
	}
	return in.hit(SiteCRC, in.cfg.CRCRate)
}

// EvictPlans reports whether a worker should flush its plan cache.
func (in *Injector) EvictPlans() bool {
	if in == nil {
		return false
	}
	return in.hit(SiteEvict, in.cfg.EvictRate)
}

// FailCompile reports whether a program compilation should be rejected
// as if its verification had failed.
func (in *Injector) FailCompile() bool {
	if in == nil {
		return false
	}
	return in.hit(SiteCompile, in.cfg.CompileRate)
}

// DropFrame reports whether a fronthaul user-plane frame should be
// lost in flight.
func (in *Injector) DropFrame() bool {
	if in == nil {
		return false
	}
	return in.hit(SiteLinkDrop, in.cfg.LinkDropRate)
}

// DelayFrame reports whether a fronthaul frame should be held back past
// its successor (a one-frame reorder).
func (in *Injector) DelayFrame() bool {
	if in == nil {
		return false
	}
	return in.hit(SiteLinkDelay, in.cfg.LinkDelayRate)
}

// PartitionFor returns how long the link should black-hole user-plane
// frames (0 on the no-fault path).
func (in *Injector) PartitionFor() time.Duration {
	if in == nil {
		return 0
	}
	if in.hit(SiteLinkPart, in.cfg.LinkPartRate) {
		return in.cfg.LinkPartFor
	}
	return 0
}

// SiteCounters is one fault point's trial/fire view.
type SiteCounters struct {
	Site   string `json:"site"`
	Trials uint64 `json:"trials"`
	Fires  uint64 `json:"fires"`
}

// Counters snapshots every site's trial and fire counts.
func (in *Injector) Counters() []SiteCounters {
	if in == nil {
		return nil
	}
	out := make([]SiteCounters, 0, int(numSites))
	for s := Site(0); s < numSites; s++ {
		out = append(out, SiteCounters{
			Site:   s.String(),
			Trials: in.sites[s].trials.Load(),
			Fires:  in.sites[s].fires.Load(),
		})
	}
	return out
}

// Families renders the injector's counters in the vran_chaos_* metric
// families (nil-safe: a nil injector exposes nothing).
func (in *Injector) Families() []telemetry.Family {
	if in == nil {
		return nil
	}
	trials := telemetry.Family{Name: "vran_chaos_trials_total",
		Help: "Fault-point consultations, by site.", Type: telemetry.Counter}
	fires := telemetry.Family{Name: "vran_chaos_injected_total",
		Help: "Faults actually injected, by site.", Type: telemetry.Counter}
	for _, c := range in.Counters() {
		l := telemetry.L("site", c.Site)
		trials.Samples = append(trials.Samples, telemetry.Sample{
			Labels: []telemetry.Label{l}, Value: float64(c.Trials)})
		fires.Samples = append(fires.Samples, telemetry.Sample{
			Labels: []telemetry.Label{l}, Value: float64(c.Fires)})
	}
	return []telemetry.Family{trials, fires}
}
