package shard

import (
	"strconv"
	"testing"
	"time"

	"vransim/internal/chaos"
	"vransim/internal/ran"
)

// TestShardChaosSoak drives a two-shard fleet through link-level chaos
// (dropped, reordered and partition-windowed fronthaul frames) plus the
// runtime's own CRC/corruption faults, with a forced cell migration
// mid-run, and asserts the distributed acceptance criteria:
//
//   - exact conservation: fleet-wide, every accepted block reaches
//     exactly one terminal outcome — U-plane loss costs delivery, never
//     ledger integrity;
//   - recovery: ≥95 % of CRC-affected blocks come back via HARQ;
//   - the link fault sites actually fired;
//   - the migration lost zero captured blocks or soft buffers.
//
// Three fixed seeds, meant to run under -race.
func TestShardChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short")
	}
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run("seed"+strconv.FormatInt(seed, 10), func(t *testing.T) {
			shardSoak(t, seed)
		})
	}
}

func shardSoak(t *testing.T, seed int64) {
	const (
		cells  = 4
		shards = 2
		ttis   = 200
		perTTI = 8
	)
	pool := mustCRCPool(t, 64, 64, seed)
	base := fleetRuntime(cells, pool)

	// One injector per shard link (deterministic per seed) and one per
	// runtime; the link injectors own the fronthaul sites, the runtime
	// injectors the decode-path sites.
	linkInj := make([]*chaos.Injector, shards)
	for i := range linkInj {
		linkInj[i] = chaos.New(chaos.Config{
			Seed:          seed*100 + int64(i),
			LinkDropRate:  0.02,
			LinkDelayRate: 0.05,
			LinkPartRate:  0.002,
			LinkPartFor:   500 * time.Microsecond,
		})
	}
	f, err := NewFleet(FleetConfig{
		// Full-rate tracing under chaos: the span backchannel must never
		// perturb the ledger, and every surviving span must merge cleanly.
		Coordinator: Config{Cells: cells, Deadline: 30 * time.Second,
			Trace: TraceConfig{Sample: 1}},
		Runtime: func(i int) ran.Config {
			cfg := base(i)
			cfg.Chaos = chaos.New(chaos.Config{
				Seed:        seed*1000 + int64(i),
				CRCRate:     0.10,
				CorruptRate: 0.05,
				CorruptAmp:  16,
			})
			return cfg
		},
		Shards:    shards,
		LinkChaos: func(i int) *chaos.Injector { return linkInj[i] },
	})
	if err != nil {
		t.Fatal(err)
	}

	var offered uint64
	idx := 0
	for tti := 0; tti < ttis; tti++ {
		for j := 0; j < perTTI; j++ {
			cell := idx % cells
			w, _ := pool.Get(idx)
			// Per cell, cycle all 64 (UE, process) pairs so concurrently
			// live blocks never share a HARQ soft buffer.
			if err := f.Coord.Submit(cell, (idx/cells)%8, (idx/(cells*8))%8, pool.K, w); err != nil {
				t.Fatal(err)
			}
			offered++
			idx++
		}
		if tti == ttis/2 {
			// Mid-soak, move a live cell to the other shard.
			from := f.Coord.Route(0)
			if err := f.Coord.MigrateCell(0, 1-from, 5*time.Second); err != nil {
				t.Fatalf("mid-soak migration: %v", err)
			}
		}
		time.Sleep(50 * time.Microsecond)
	}
	// Release any reorder-held frames before settling the ledger.
	f.Coord.Stop()

	agg := settle(t, f.Coord, 30*time.Second, 0)
	snaps, serveErrs := f.Stop()
	for _, err := range serveErrs {
		t.Errorf("worker serve error: %v", err)
	}

	// -- conservation --------------------------------------------------
	var accepted, terminal, backlog, buffers, linkDropped, linkSent uint64
	for _, s := range snaps {
		accepted += s.Accepted
		terminal += s.Delivered + postDrops(s)
		backlog += s.Drops[ran.DropBacklog] + s.Drops[ran.DropAdmission]
		buffers += uint64(s.HARQBuffers)
	}
	for _, sh := range f.Coord.shards {
		st := sh.data.Stats()
		linkDropped += st.Dropped
		linkSent += st.Sent
	}
	// The queues are sized so nothing overflows — every accepted block
	// must reach exactly one post-admission terminal outcome.
	if backlog != 0 {
		t.Errorf("%d backlog/admission drops — queues undersized, ledger not exact", backlog)
	}
	if accepted != terminal {
		t.Errorf("fleet ledger broken: accepted %d != terminal %d", accepted, terminal)
	}
	if accepted+linkDropped > offered {
		t.Errorf("accepted %d + link-dropped %d exceeds offered %d — a frame was double-counted",
			accepted, linkDropped, offered)
	}
	if agg.RetryDepth != 0 || buffers != 0 {
		t.Errorf("residual state: retry %d at settle, %d soft buffers after stop", agg.RetryDepth, buffers)
	}
	if f.Coord.migrations.Load() != 1 {
		t.Errorf("migrations = %d, want 1", f.Coord.migrations.Load())
	}

	// -- recovery ------------------------------------------------------
	affected := agg.HARQRecovered + agg.Drops[ran.DropHARQ] + agg.Drops[ran.DropShutdown]
	if affected == 0 {
		t.Fatal("soak injected no CRC faults")
	}
	recovery := float64(agg.HARQRecovered) / float64(affected)
	t.Logf("seed %d: offered %d, accepted %d, delivered %d; link sent %d dropped %d; "+
		"migrated %d blocks + %d buffers; recovery %.1f%% of %d affected",
		seed, offered, accepted, agg.Delivered, linkSent, linkDropped,
		f.Coord.migratedBlocks.Load(), f.Coord.migratedBuffers.Load(), 100*recovery, affected)
	if recovery < 0.95 {
		t.Errorf("HARQ recovery %.1f%% below the 95%% acceptance bar", 100*recovery)
	}

	// -- tracing under chaos -------------------------------------------
	col := f.Coord.Collector()
	if col.SpanCount() == 0 {
		t.Error("full-rate tracing merged no spans through the chaos soak")
	}
	if col.badReports.Load() != 0 {
		t.Errorf("%d span reports failed to parse under chaos", col.badReports.Load())
	}
	// Spans ship only for blocks that reached a shard; the count can
	// never exceed accepted plus the migration span.
	if col.SpanCount() > accepted+1 {
		t.Errorf("collector merged %d spans for %d accepted blocks", col.SpanCount(), accepted)
	}

	// -- link fault sites fired ----------------------------------------
	fired := map[string]uint64{}
	for _, inj := range linkInj {
		for _, c := range inj.Counters() {
			fired[c.Site] += c.Trials
		}
	}
	for _, site := range []chaos.Site{chaos.SiteLinkDrop, chaos.SiteLinkDelay, chaos.SiteLinkPart} {
		if fired[site.String()] == 0 {
			t.Errorf("link site %s never consulted", site)
		}
	}
	if linkDropped == 0 {
		t.Error("no frames lost under 2% drop chaos")
	}
}
