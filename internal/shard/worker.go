// Package shard is the distributed serving layer above internal/ran: a
// coordinator (the DU side) owns the cell→shard map and routes
// submitted blocks over fronthaul links to shard workers (the RU side),
// each wrapping one ran.Runtime. The coordinator aggregates every
// shard's vran_* metric families into one fleet view, rebalances cells
// under sustained load skew, and drain-and-migrates a cell between live
// shards without losing a single in-flight block or HARQ soft buffer.
package shard

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"vransim/internal/fronthaul"
	"vransim/internal/phy"
	"vransim/internal/ran"
)

// DefaultDrainTimeout bounds a migration drain when the coordinator
// does not specify one.
const DefaultDrainTimeout = 5 * time.Second

// Worker is the RU side of one shard: a ran.Runtime fed by fronthaul
// frames. One Worker may serve several connections concurrently (the
// coordinator opens a data conn and a control conn per shard).
type Worker struct {
	rt *ran.Runtime

	// shipper batches the runtime's completed traced spans back to the
	// coordinator over the last link that carried data traffic.
	shipper *spanShipper

	mu sync.Mutex
	// pending stages migrate-state frames per cell between the first
	// TypeMigrateState and the TypeMigrateCommit that installs them.
	pending map[int]*ran.CellState
}

// NewWorker wraps a runtime. The runtime should be configured with the
// fleet-wide cell count: cell ids are global, and every runtime carries
// queues for all of them (idle queues are cheap, and migration needs no
// id remapping).
func NewWorker(rt *ran.Runtime) *Worker {
	w := &Worker{rt: rt, pending: make(map[int]*ran.CellState), shipper: newSpanShipper()}
	rt.SetSpanSink(w.shipper.offer)
	return w
}

// Close stops the span shipper after a final flush. The runtime is the
// caller's to stop; spans recorded after Close are counted dropped.
func (w *Worker) Close() {
	w.shipper.close()
}

// Runtime exposes the wrapped runtime (tests and process mains need its
// Snapshot/Stop).
func (w *Worker) Runtime() *ran.Runtime { return w.rt }

// ServeConn reads frames off the link until EOF or a transport error,
// dispatching each one. Data frames are one-way (the U-plane);
// management frames get a lock-step response on the same link. Returns
// nil on clean peer close.
func (w *Worker) ServeConn(link *fronthaul.Link) error {
	for {
		f, err := link.ReadFrame()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := w.handle(link, f); err != nil {
			return err
		}
	}
}

// handle dispatches one frame. Malformed management requests answer
// with TypeError instead of killing the connection.
func (w *Worker) handle(link *fronthaul.Link, f *fronthaul.Frame) error {
	switch f.Type {
	case fronthaul.TypeData:
		recv := time.Now()
		word, err := f.DataWord()
		if err != nil {
			// A data frame that decoded as a frame but carries a bad
			// payload: drop it like the lossy fronthaul would.
			return nil
		}
		// Span reports flow back on whichever link the coordinator sends
		// data over — the Link is full-duplex (separate read/write locks).
		w.shipper.link.Store(link)
		// Admission is the runtime's job; a reject here is exactly a
		// reject on a single-process deployment (counted there).
		if f.Trace != nil {
			tc := spanContextFromWire(f.Trace, recv, time.Since(recv))
			w.rt.SubmitTraced(int(f.Cell), int(f.UE), int(f.Proc), int(f.K), word, tc)
		} else {
			w.rt.SubmitProcess(int(f.Cell), int(f.UE), int(f.Proc), int(f.K), word)
		}
		return nil

	case fronthaul.TypeSnapshotReq:
		body, err := json.Marshal(w.rt.Snapshot())
		if err != nil {
			return w.writeErr(link, err)
		}
		return link.WriteFrame(&fronthaul.Frame{Type: fronthaul.TypeSnapshotResp, Payload: body})

	case fronthaul.TypeMigrateStart:
		return w.serveDrain(link, f)

	case fronthaul.TypeMigrateState:
		return w.stageState(link, f)

	case fronthaul.TypeMigrateCommit:
		return w.commitImport(link, f)

	case fronthaul.TypeError:
		return fmt.Errorf("shard: peer error: %s", f.Payload)
	}
	// Unknown-but-valid frame types are a protocol error on the M-plane.
	return w.writeErr(link, fmt.Errorf("unexpected %s frame", f.Type))
}

// serveDrain is the source side of a migration: drain the cell and
// stream its state back — one MigrateState frame per block, one per
// soft buffer, then MigrateDone carrying the entry count.
func (w *Worker) serveDrain(link *fronthaul.Link, f *fronthaul.Frame) error {
	timeout := time.Duration(f.Aux)
	if timeout <= 0 {
		timeout = DefaultDrainTimeout
	}
	st, err := w.rt.DrainCell(int(f.Cell), timeout)
	if err != nil {
		return w.writeErr(link, err)
	}
	n := uint64(0)
	for _, b := range st.Blocks {
		flags, payload := fronthaul.EncodeState(b.Word, b.Tx, nil)
		if err := link.WriteFrame(&fronthaul.Frame{
			Type: fronthaul.TypeMigrateState, Flags: flags,
			Cell: f.Cell, UE: uint32(b.UE), Proc: uint32(b.Proc),
			K: uint32(b.K), Attempt: uint32(b.Attempt),
			Payload: payload,
		}); err != nil {
			return err
		}
		n++
	}
	for _, b := range st.Buffers {
		flags, payload := fronthaul.EncodeState(nil, nil, b.Word)
		if err := link.WriteFrame(&fronthaul.Frame{
			Type: fronthaul.TypeMigrateState, Flags: flags,
			Cell: f.Cell, UE: uint32(b.UE), Proc: uint32(b.Proc),
			K: uint32(b.K), Aux: uint64(b.Attempts),
			Payload: payload,
		}); err != nil {
			return err
		}
		n++
	}
	return link.WriteFrame(&fronthaul.Frame{Type: fronthaul.TypeMigrateDone, Cell: f.Cell, Aux: n})
}

// stageState is the target side of the state stream: decode and stage
// one entry; the coordinator's MigrateCommit installs the batch.
func (w *Worker) stageState(link *fronthaul.Link, f *fronthaul.Frame) error {
	word, tx, soft, err := fronthaul.DecodeState(int(f.K), f.Flags, f.Payload)
	if err != nil {
		return w.writeErr(link, err)
	}
	cell := int(f.Cell)
	w.mu.Lock()
	defer w.mu.Unlock()
	st := w.pending[cell]
	if st == nil {
		st = &ran.CellState{Cell: cell}
		w.pending[cell] = st
	}
	if word != nil {
		if tx == nil {
			tx = word
		}
		st.Blocks = append(st.Blocks, ran.MigratedBlock{
			UE: int(f.UE), Proc: int(f.Proc), K: int(f.K),
			Attempt: int(f.Attempt), Word: word, Tx: tx,
		})
	}
	if soft != nil {
		st.Buffers = append(st.Buffers, phy.ProcState{
			UE: int(f.UE), Proc: int(f.Proc), K: int(f.K),
			Attempts: int(f.Aux), Word: soft,
		})
	}
	return nil
}

// commitImport installs the staged state for a cell and acks with the
// number of blocks that re-entered the decode path.
func (w *Worker) commitImport(link *fronthaul.Link, f *fronthaul.Frame) error {
	cell := int(f.Cell)
	w.mu.Lock()
	st := w.pending[cell]
	delete(w.pending, cell)
	w.mu.Unlock()
	if st == nil {
		st = &ran.CellState{Cell: cell}
	}
	if want := int(f.Aux); want != len(st.Blocks)+len(st.Buffers) {
		return w.writeErr(link, fmt.Errorf("migration state incomplete: staged %d entries, commit expects %d",
			len(st.Blocks)+len(st.Buffers), want))
	}
	moved, err := w.rt.ImportCell(st)
	if err != nil {
		return w.writeErr(link, err)
	}
	return link.WriteFrame(&fronthaul.Frame{Type: fronthaul.TypeMigrateAck, Cell: f.Cell, Aux: uint64(moved)})
}

func (w *Worker) writeErr(link *fronthaul.Link, err error) error {
	return link.WriteFrame(&fronthaul.Frame{Type: fronthaul.TypeError, Payload: []byte(err.Error())})
}
