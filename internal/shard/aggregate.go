package shard

// Aggregate folds per-shard runtime snapshots into one fleet-wide view.
// Counters sum; cell rows sum elementwise (every shard carries the full
// fleet cell range, idle cells contribute zeros); rate-like gauges are
// weighted means where a sensible weight exists, otherwise the
// conservative bound (max) is taken.

import (
	"time"

	"vransim/internal/ran"
	"vransim/internal/telemetry"
)

// Aggregate combines shard snapshots. Nil entries are skipped; a nil or
// all-nil input yields an empty snapshot.
func Aggregate(snaps []*ran.Snapshot) *ran.Snapshot {
	out := &ran.Snapshot{}
	var (
		laneWeighted   float64 // Σ occupancy·batches
		decodeWeighted float64 // Σ avg-cost·decoded-blocks
		utilSum        float64
		allocSum       float64
		utilN, allocN  int
	)
	for _, s := range snaps {
		if s == nil {
			continue
		}
		if len(s.Cells) > len(out.Cells) {
			out.Cells = append(out.Cells, make([]ran.CellSnapshot, len(s.Cells)-len(out.Cells))...)
		}
		for i, c := range s.Cells {
			o := &out.Cells[i]
			o.Accepted += c.Accepted
			o.Delivered += c.Delivered
			for d := range c.Drops {
				o.Drops[d] += c.Drops[d]
			}
			o.QueueDepth += c.QueueDepth
			o.Mbps += c.Mbps
		}
		out.Accepted += s.Accepted
		out.Delivered += s.Delivered
		for d := range s.Drops {
			out.Drops[d] += s.Drops[d]
		}
		out.Batches += s.Batches
		out.DecodedBlocks += s.DecodedBlocks
		out.GoodputMbps += s.GoodputMbps
		out.ProgramHits += s.ProgramHits
		out.ProgramMisses += s.ProgramMisses
		out.ProgramCompiles += s.ProgramCompiles
		out.CompileSeconds += s.CompileSeconds
		out.CompiledPlans += s.CompiledPlans
		out.CRCFailures += s.CRCFailures
		out.HARQRetries += s.HARQRetries
		out.HARQRecovered += s.HARQRecovered
		out.HARQCombines += s.HARQCombines
		out.HARQEvictions += s.HARQEvictions
		out.HARQBuffers += s.HARQBuffers
		out.RetryDepth += s.RetryDepth
		out.DegradedBatches += s.DegradedBatches
		out.Steals += s.Steals
		out.ReservedWorkers += s.ReservedWorkers
		if s.ShedLevel > out.ShedLevel {
			out.ShedLevel = s.ShedLevel
		}
		for c := range s.Classes {
			ks, ok := &s.Classes[c], &out.Classes[c]
			ok.Accepted += ks.Accepted
			ok.Delivered += ks.Delivered
			for d := range ks.Drops {
				ok.Drops[d] += ks.Drops[d]
			}
			ok.QueueDepth += ks.QueueDepth
			// Class percentiles reconstruct from merged buckets below; the
			// max-fold is the no-buckets fallback, as for the global ones.
			ok.LatencyBuckets = telemetry.MergeBuckets(ok.LatencyBuckets, ks.LatencyBuckets)
			ok.LatencyP50 = maxDur(ok.LatencyP50, ks.LatencyP50)
			ok.LatencyP90 = maxDur(ok.LatencyP90, ks.LatencyP90)
			ok.LatencyP99 = maxDur(ok.LatencyP99, ks.LatencyP99)
		}
		// Predictor rows key on cell: each cell is owned by exactly one
		// shard at a time, so rows concatenate rather than merge (a
		// migrated cell keeps both shards' rows; readers key on the
		// freshest windows count).
		out.Predict = append(out.Predict, s.Predict...)

		laneWeighted += s.LaneOccupancy * float64(s.Batches)
		decodeWeighted += s.AvgDecodeUs * float64(s.DecodedBlocks)
		utilSum += s.WorkerUtilization
		utilN++
		if s.DecodeAllocsPerOp >= 0 {
			allocSum += s.DecodeAllocsPerOp
			allocN++
		}

		out.Elapsed = maxDur(out.Elapsed, s.Elapsed)
		// Percentiles do not compose across shards — merge the raw
		// histogram buckets and reconstruct below. The max-fold is only
		// the fallback for snapshots predating LatencyBuckets.
		out.LatencyBuckets = telemetry.MergeBuckets(out.LatencyBuckets, s.LatencyBuckets)
		out.LatencyP50 = maxDur(out.LatencyP50, s.LatencyP50)
		out.LatencyP90 = maxDur(out.LatencyP90, s.LatencyP90)
		out.LatencyP99 = maxDur(out.LatencyP99, s.LatencyP99)
		if s.DegradeLevel > out.DegradeLevel {
			out.DegradeLevel = s.DegradeLevel
		}
	}
	if len(out.LatencyBuckets) > 0 {
		out.LatencyP50 = telemetry.PercentileFromBuckets(out.LatencyBuckets, 0.50)
		out.LatencyP90 = telemetry.PercentileFromBuckets(out.LatencyBuckets, 0.90)
		out.LatencyP99 = telemetry.PercentileFromBuckets(out.LatencyBuckets, 0.99)
	}
	for c := range out.Classes {
		ok := &out.Classes[c]
		if len(ok.LatencyBuckets) > 0 {
			ok.LatencyP50 = telemetry.PercentileFromBuckets(ok.LatencyBuckets, 0.50)
			ok.LatencyP90 = telemetry.PercentileFromBuckets(ok.LatencyBuckets, 0.90)
			ok.LatencyP99 = telemetry.PercentileFromBuckets(ok.LatencyBuckets, 0.99)
		}
	}
	if out.Batches > 0 {
		out.LaneOccupancy = laneWeighted / float64(out.Batches)
	}
	if out.DecodedBlocks > 0 {
		out.AvgDecodeUs = decodeWeighted / float64(out.DecodedBlocks)
	}
	if utilN > 0 {
		out.WorkerUtilization = utilSum / float64(utilN)
	}
	if allocN > 0 {
		out.DecodeAllocsPerOp = allocSum / float64(allocN)
	} else {
		out.DecodeAllocsPerOp = -1
	}
	if n := out.ProgramHits + out.ProgramMisses; n > 0 {
		out.CompiledRatio = float64(out.ProgramHits) / float64(n)
	}
	return out
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
