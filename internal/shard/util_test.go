package shard

import (
	"io"
	"net/http"
	"testing"
)

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}
