package shard

import (
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vransim/internal/core"
	"vransim/internal/ran"
	"vransim/internal/simd"
)

// fleetRuntime is the shard-test runtime shape: fleet-global cell
// count, generous deadline (the tests are about routing and state
// movement, not the clock), content-based CRC so verdicts survive the
// fronthaul serialization boundary.
func fleetRuntime(cells int, pool *CRCPool) func(int) ran.Config {
	return func(int) ran.Config {
		cfg := ran.DefaultConfig(simd.W256, core.StrategyAPCM)
		cfg.Cells = cells
		cfg.Workers = 2
		// Deep enough that the soak never overflows a cell queue, even
		// under -race — keeps DropBacklog out of the ledger, so the
		// conservation assertions can demand exact equality.
		cfg.QueueDepth = 1024
		cfg.BatchWindow = 200 * time.Microsecond
		cfg.Deadline = 30 * time.Second
		cfg.AdmissionGuard = false
		cfg.CheckCRC = pool.CheckCRC()
		return cfg
	}
}

// postDrops totals the drop causes a block can only reach after being
// accepted (the terminal side of the runtime's ledger).
func postDrops(s *ran.Snapshot) uint64 {
	return s.Drops[ran.DropExpired] + s.Drops[ran.DropLate] +
		s.Drops[ran.DropHARQ] + s.Drops[ran.DropShutdown]
}

func mustCRCPool(t *testing.T, k, n int, seed int64) *CRCPool {
	t.Helper()
	p, err := NewCRCPool(k, n, 24, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// settle polls the fleet until at least minAccepted blocks are
// accepted, every accepted block is terminal, the retry queues are
// empty, and the picture holds still across several consecutive polls —
// the stability requirement covers frames still draining out of the
// pipe buffers and blocks transiting the migration handshake (which are
// momentarily un-accepted everywhere).
func settle(t *testing.T, c *Coordinator, maxWait time.Duration, minAccepted uint64) *ran.Snapshot {
	t.Helper()
	deadline := time.Now().Add(maxWait)
	stable := 0
	var last uint64
	for {
		agg, _, err := c.FleetSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		// Post-admission drops only: submit-path backlog/admission drops
		// count blocks that were never accepted.
		term := agg.Delivered + postDrops(agg)
		if term >= agg.Accepted && agg.RetryDepth == 0 && agg.Accepted >= minAccepted {
			if agg.Accepted == last {
				stable++
				if stable >= 5 {
					return agg
				}
			} else {
				stable = 0
			}
			last = agg.Accepted
		} else {
			stable = 0
		}
		if time.Now().After(deadline) {
			_, per, _ := c.FleetSnapshot()
			for i, s := range per {
				if s == nil {
					continue
				}
				t.Logf("shard %d: accepted %d delivered %d drops %v retry %d harqbuf %d", i,
					s.Accepted, s.Delivered, s.DropsByCause(), s.RetryDepth, s.HARQBuffers)
				for cl, cs := range s.Cells {
					if cs.Accepted+cs.Delivered != 0 || cs.QueueDepth != 0 {
						t.Logf("  cell %d: accepted %d delivered %d queue %d", cl, cs.Accepted, cs.Delivered, cs.QueueDepth)
					}
				}
			}
			t.Fatalf("fleet did not settle: accepted %d (want ≥ %d), terminal %d, retry %d",
				agg.Accepted, minAccepted, term, agg.RetryDepth)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestFleetRoutesAndAggregates: blocks submitted through the
// coordinator land on the shard owning their cell, and the aggregated
// snapshot's families sum exactly to the per-shard values.
func TestFleetRoutesAndAggregates(t *testing.T) {
	const cells, n = 4, 48
	pool := mustCRCPool(t, 64, 32, 1)
	f, err := NewFleet(FleetConfig{
		Coordinator: Config{Cells: cells, Deadline: 30 * time.Second},
		Runtime:     fleetRuntime(cells, pool),
		Shards:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		w, _ := pool.Get(i)
		if err := f.Coord.Submit(i%cells, i%8, i, pool.K, w); err != nil {
			t.Fatal(err)
		}
	}
	agg := settle(t, f.Coord, 10*time.Second, n)
	if agg.Accepted != n || agg.Delivered != n {
		t.Errorf("aggregate accepted/delivered = %d/%d, want %d/%d", agg.Accepted, agg.Delivered, n, n)
	}

	// The aggregate equals the per-shard sum, counter by counter.
	_, per, err := f.Coord.FleetSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	var accepted, delivered, dropped uint64
	for _, s := range per {
		accepted += s.Accepted
		delivered += s.Delivered
		dropped += s.Dropped()
	}
	if agg2 := Aggregate(per); agg2.Accepted != accepted || agg2.Delivered != delivered || agg2.Dropped() != dropped {
		t.Errorf("aggregate %d/%d/%d != per-shard sums %d/%d/%d",
			agg2.Accepted, agg2.Delivered, agg2.Dropped(), accepted, delivered, dropped)
	}
	// Each shard decoded only its routed cells.
	for i, s := range per {
		for cell := 0; cell < cells; cell++ {
			if f.Coord.Route(cell) != i && s.Cells[cell].Accepted != 0 {
				t.Errorf("shard %d accepted %d blocks of cell %d it does not own",
					i, s.Cells[cell].Accepted, cell)
			}
		}
	}

	// The coordinator /metrics exposition carries both the aggregated
	// vran_* families and the vran_shard_* overlay.
	srv := httptest.NewServer(f.Coord.MountAdmin("127.0.0.1:0").Handler())
	defer srv.Close()
	body := httpGet(t, srv.URL+"/metrics")
	for _, want := range []string{
		"vran_accepted_total", "vran_delivered_total",
		"vran_shard_routed_total", "vran_shard_cells", "vran_shard_migrations_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing family %s", want)
		}
	}

	snaps, serveErrs := f.Stop()
	for _, err := range serveErrs {
		t.Errorf("worker serve error: %v", err)
	}
	var routed uint64
	for i := range snaps {
		routed += f.Coord.shards[i].routed.Load()
	}
	if routed != n {
		t.Errorf("routed %d frames, want %d", routed, n)
	}
}

// TestAggregateGauges: the weighted and max-folded gauges behave.
func TestAggregateGauges(t *testing.T) {
	a := &ran.Snapshot{Batches: 10, LaneOccupancy: 1.0, DecodedBlocks: 10, AvgDecodeUs: 4,
		WorkerUtilization: 0.5, DecodeAllocsPerOp: -1, ProgramHits: 8, ProgramMisses: 2,
		LatencyP99: 5 * time.Millisecond, DegradeLevel: 1}
	b := &ran.Snapshot{Batches: 30, LaneOccupancy: 0.5, DecodedBlocks: 30, AvgDecodeUs: 8,
		WorkerUtilization: 0.7, DecodeAllocsPerOp: 2, ProgramHits: 0, ProgramMisses: 10,
		LatencyP99: 9 * time.Millisecond}
	agg := Aggregate([]*ran.Snapshot{a, nil, b})
	if got, want := agg.LaneOccupancy, (1.0*10+0.5*30)/40; got != want {
		t.Errorf("lane occupancy %v, want %v", got, want)
	}
	if got, want := agg.AvgDecodeUs, (4.0*10+8.0*30)/40; got != want {
		t.Errorf("decode cost %v, want %v", got, want)
	}
	if got := agg.WorkerUtilization; got < 0.59 || got > 0.61 {
		t.Errorf("utilization %v, want 0.6", got)
	}
	if agg.DecodeAllocsPerOp != 2 {
		t.Errorf("allocs/op %v, want 2 (unsampled shard excluded)", agg.DecodeAllocsPerOp)
	}
	if got, want := agg.CompiledRatio, 8.0/20.0; got != want {
		t.Errorf("compiled ratio %v, want %v", got, want)
	}
	if agg.LatencyP99 != 9*time.Millisecond || agg.DegradeLevel != 1 {
		t.Errorf("max folds: p99 %v degrade %d", agg.LatencyP99, agg.DegradeLevel)
	}
	if empty := Aggregate(nil); empty.DecodeAllocsPerOp != -1 {
		t.Errorf("empty aggregate allocs/op %v, want -1", empty.DecodeAllocsPerOp)
	}
}

// TestCRCPool: encoded words decode to bits whose CRC24B suffix
// verifies; a corrupted payload fails the check.
func TestCRCPool(t *testing.T) {
	pool := mustCRCPool(t, 64, 4, 2)
	check := pool.CheckCRC()
	for i := 0; i < pool.Len(); i++ {
		_, bits := pool.Get(i)
		if !check(nil, bits) {
			t.Errorf("true payload %d fails its own CRC", i)
		}
		bad := append([]byte(nil), bits...)
		bad[3] ^= 1
		if check(nil, bad) {
			t.Errorf("corrupted payload %d passes CRC", i)
		}
	}
	if _, err := NewCRCPool(24, 1, 24, rand.New(rand.NewSource(1))); err == nil {
		t.Error("k ≤ 24 pool accepted")
	}
}
