package shard

// Fleet-wide distributed tracing: the coordinator stamps sampled data
// frames with a fronthaul.TraceCtx, shard runtimes accumulate their
// local stages onto the propagated context, and a per-shard spanShipper
// batches the completed spans back over the (full-duplex) data link as
// TypeSpanReport frames. The coordinator's SpanCollector merges them
// into per-hop histograms, deadline-budget attribution and SLO burn
// rates — the cross-process answer to "where did this block's deadline
// budget go?".
//
// Span shipping is bounded and lossy by design: the shipper buffer
// never blocks the decode path, overflow increments a dropped counter
// that rides every report frame (Aux), and the collector exposes it as
// vran_trace_ship_dropped_total. Timing truth is never distorted —
// only visibility degrades under pressure.

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"

	"vransim/internal/fronthaul"
	"vransim/internal/telemetry"
)

// TraceConfig shapes the coordinator's distributed tracing.
type TraceConfig struct {
	// Sample traces every Nth submitted block (1 = every block, 0
	// disables trace propagation entirely). Untraced blocks carry no
	// trace context on the wire and cost nothing anywhere.
	Sample int
	// Ring and SlowestN size the collector's exemplar tracer
	// (defaults 512 recent spans, 8 slowest per hop).
	Ring, SlowestN int
	// SLO shapes the burn-rate tracker; a zero Target defaults to the
	// coordinator's deadline.
	SLO telemetry.SLOConfig
}

// spanShipper is the shard-side half: a bounded span buffer flushed as
// TypeSpanReport frames on whatever link last carried data traffic.
type spanShipper struct {
	mu  sync.Mutex
	buf []telemetry.Span

	link    atomic.Pointer[fronthaul.Link]
	dropped atomic.Uint64 // spans lost to buffer overflow or write errors
	shipped atomic.Uint64

	kick chan struct{}
	stop chan struct{}
	done chan struct{}
}

const (
	shipBufCap     = 8192
	shipBatch      = 256
	shipFlushEvery = 2 * time.Millisecond
)

func newSpanShipper() *spanShipper {
	s := &spanShipper{
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go s.run()
	return s
}

// offer enqueues one completed span; it never blocks the caller (a
// worker goroutine on the decode path) — past the cap the span is
// counted dropped.
func (s *spanShipper) offer(sp telemetry.Span) {
	s.mu.Lock()
	if len(s.buf) >= shipBufCap {
		s.mu.Unlock()
		s.dropped.Add(1)
		return
	}
	s.buf = append(s.buf, sp)
	n := len(s.buf)
	s.mu.Unlock()
	if n >= shipBatch {
		select {
		case s.kick <- struct{}{}:
		default:
		}
	}
}

func (s *spanShipper) run() {
	defer close(s.done)
	t := time.NewTicker(shipFlushEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			s.flush()
			return
		case <-s.kick:
		case <-t.C:
		}
		s.flush()
	}
}

// flush ships the buffered spans in one report frame. With no link
// registered yet the spans stay buffered (bounded by offer); a write
// error counts the batch dropped — the backchannel is best-effort.
func (s *spanShipper) flush() {
	link := s.link.Load()
	if link == nil {
		return
	}
	s.mu.Lock()
	batch := s.buf
	s.buf = nil
	s.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	payload, err := json.Marshal(batch)
	if err != nil {
		s.dropped.Add(uint64(len(batch)))
		return
	}
	f := &fronthaul.Frame{
		Type:    fronthaul.TypeSpanReport,
		Aux:     s.dropped.Load(),
		Payload: payload,
	}
	if err := link.WriteFrame(f); err != nil {
		s.dropped.Add(uint64(len(batch)))
		return
	}
	s.shipped.Add(uint64(len(batch)))
}

// close stops the flusher after one final flush.
func (s *spanShipper) close() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
}

// spanContextFromWire rebases a received frame's trace context onto the
// local clock. Upstream stage dwells are monotonic offsets and fold in
// verbatim; only the link stage compares wall clocks (receive instant
// vs the sender's stamp) and it is clamped at zero, so cross-host skew
// can never produce a negative stage. The reconstructed Start is the
// local receive instant minus everything already paid upstream —
// origin-hop time expressed in this host's clock domain.
func spanContextFromWire(tc *fronthaul.TraceCtx, recv time.Time, ingest time.Duration) telemetry.SpanContext {
	var up [telemetry.NumStages]time.Duration
	up[telemetry.SpanRoute] = time.Duration(tc.RouteNs)
	up[telemetry.SpanEncodeWire] = time.Duration(tc.EncodeNs)
	up[telemetry.SpanPark] = time.Duration(tc.ParkNs)
	if tc.SentUnixNs > 0 {
		if link := recv.Sub(time.Unix(0, tc.SentUnixNs)); link > 0 {
			up[telemetry.SpanLink] = link
		}
	}
	if ingest > 0 {
		up[telemetry.SpanIngest] = ingest
	}
	var upstream time.Duration
	for _, d := range up {
		upstream += d
	}
	return telemetry.SpanContext{
		TraceID:  tc.TraceID,
		Parent:   tc.ParentID,
		Start:    recv.Add(ingest - upstream),
		Upstream: up,
	}
}

// SpanCollector is the coordinator-side fleet span sink: exemplar
// tracer (recent ring + slowest-N per hop), per-hop histograms, an
// end-to-end histogram and the SLO tracker.
type SpanCollector struct {
	tracer *telemetry.Tracer
	slo    *telemetry.SLOTracker
	hops   [telemetry.NumStages]telemetry.Hist
	e2e    telemetry.Hist

	spans      atomic.Uint64 // spans merged
	reports    atomic.Uint64 // report frames ingested
	badReports atomic.Uint64 // report frames that failed to parse
}

func newSpanCollector(cfg TraceConfig, deadline time.Duration) *SpanCollector {
	slo := cfg.SLO
	if slo.Target <= 0 {
		slo.Target = deadline
	}
	ring := cfg.Ring
	if ring <= 0 {
		ring = 512
	}
	return &SpanCollector{
		tracer: telemetry.NewTracer(ring, cfg.SlowestN),
		slo:    telemetry.NewSLOTracker(slo),
	}
}

// Record merges one completed span into the fleet aggregates.
// Migration spans (outcome "migrated"/"migrate_failed") feed the hop
// histograms but not the SLO — they are control-plane events, not
// served blocks.
func (sc *SpanCollector) Record(sp telemetry.Span) {
	sc.tracer.Record(sp)
	for st := telemetry.Stage(0); st < telemetry.NumStages; st++ {
		if sp.Stages[st] > 0 {
			sc.hops[st].Observe(sp.Stages[st])
		}
	}
	total := sp.Total()
	sc.spans.Add(1)
	switch sp.Outcome {
	case "migrated", "migrate_failed":
	default:
		sc.e2e.Observe(total)
		sc.slo.Observe(total, sp.Outcome == "delivered")
	}
}

// ingest parses one TypeSpanReport frame from shard origin.
func (sc *SpanCollector) ingest(origin string, payload []byte) {
	sc.reports.Add(1)
	var spans []telemetry.Span
	if err := json.Unmarshal(payload, &spans); err != nil {
		sc.badReports.Add(1)
		return
	}
	for i := range spans {
		spans[i].Origin = origin
		sc.Record(spans[i])
	}
}

// SpanCount reports how many spans the collector has merged.
func (sc *SpanCollector) SpanCount() uint64 { return sc.spans.Load() }

// SLO exposes the collector's burn-rate tracker.
func (sc *SpanCollector) SLO() *telemetry.SLOTracker { return sc.slo }

// Tracer exposes the exemplar tracer (recent ring, slowest-N per hop).
func (sc *SpanCollector) Tracer() *telemetry.Tracer { return sc.tracer }

// HopSummaries renders every hop's aggregate in pipeline order.
func (sc *SpanCollector) HopSummaries() []telemetry.StageSummary {
	out := make([]telemetry.StageSummary, 0, int(telemetry.NumStages))
	for st := telemetry.Stage(0); st < telemetry.NumStages; st++ {
		h := &sc.hops[st]
		out = append(out, telemetry.StageSummary{
			Stage: st.Name(),
			Count: h.Count(),
			Mean:  h.Mean(),
			P50:   h.Percentile(0.50),
			P90:   h.Percentile(0.90),
			P99:   h.Percentile(0.99),
		})
	}
	return out
}

// Families renders the collector as vran_hop_* / vran_trace_* / SLO
// series. Every hop is always emitted (count may be zero) so scrapers
// and CI greps see a stable schema.
func (sc *SpanCollector) Families(shipDropped uint64) []telemetry.Family {
	hopSeconds := telemetry.Family{Name: "vran_hop_seconds", Type: telemetry.Gauge,
		Help: "Per-hop stage latency quantiles across the fronthaul split."}
	hopSpans := telemetry.Family{Name: "vran_hop_spans_total", Type: telemetry.Counter,
		Help: "Spans that paid each hop stage."}
	hopBudget := telemetry.Family{Name: "vran_hop_budget_fraction", Type: telemetry.Gauge,
		Help: "Fraction of the mean end-to-end latency attributed to each hop."}
	var meanSum float64
	means := make([]float64, int(telemetry.NumStages))
	for st := telemetry.Stage(0); st < telemetry.NumStages; st++ {
		means[st] = sc.hops[st].Mean().Seconds() // mean over spans that paid the stage
		if n := sc.hops[st].Count(); n > 0 {
			// Weight by how often the stage was paid, so a rare-but-huge
			// stage (a HARQ retry) is attributed by its true share.
			means[st] *= float64(n) / float64(maxU64(sc.spans.Load(), 1))
		}
		meanSum += means[st]
	}
	for st := telemetry.Stage(0); st < telemetry.NumStages; st++ {
		h := &sc.hops[st]
		lbl := telemetry.L("hop", st.Name())
		for _, q := range [...]struct {
			name string
			v    float64
		}{{"0.5", 0.50}, {"0.9", 0.90}, {"0.99", 0.99}} {
			hopSeconds.Samples = append(hopSeconds.Samples, telemetry.Sample{
				Labels: []telemetry.Label{lbl, telemetry.L("quantile", q.name)},
				Value:  h.Percentile(q.v).Seconds(),
			})
		}
		hopSpans.Samples = append(hopSpans.Samples, telemetry.Sample{
			Labels: []telemetry.Label{lbl}, Value: float64(h.Count())})
		frac := 0.0
		if meanSum > 0 {
			frac = means[st] / meanSum
		}
		hopBudget.Samples = append(hopBudget.Samples, telemetry.Sample{
			Labels: []telemetry.Label{lbl}, Value: frac})
	}
	e2e := telemetry.Family{Name: "vran_trace_e2e_seconds", Type: telemetry.Gauge,
		Help: "End-to-end traced-block latency quantiles (sum of hop stages)."}
	for _, q := range [...]struct {
		name string
		v    float64
	}{{"0.5", 0.50}, {"0.9", 0.90}, {"0.99", 0.99}} {
		e2e.Samples = append(e2e.Samples, telemetry.Sample{
			Labels: []telemetry.Label{telemetry.L("quantile", q.name)},
			Value:  sc.e2e.Percentile(q.v).Seconds(),
		})
	}
	fams := []telemetry.Family{
		hopSeconds, hopSpans, hopBudget, e2e,
		telemetry.F("vran_trace_spans_total", "Completed spans merged into the fleet collector.",
			telemetry.Counter, float64(sc.spans.Load())),
		telemetry.F("vran_trace_reports_total", "Span report frames ingested from shards.",
			telemetry.Counter, float64(sc.reports.Load())),
		telemetry.F("vran_trace_bad_reports_total", "Span report frames that failed to parse.",
			telemetry.Counter, float64(sc.badReports.Load())),
		telemetry.F("vran_trace_ship_dropped_total", "Spans shards dropped before shipping (buffer overflow or link error).",
			telemetry.Counter, float64(shipDropped)),
	}
	return append(fams, sc.slo.Families()...)
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
