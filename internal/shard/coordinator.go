package shard

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vransim/internal/fronthaul"
	"vransim/internal/ran"
	"vransim/internal/telemetry"
	"vransim/internal/turbo"
)

// maxHeldFrames bounds the frames the coordinator parks for a cell
// while its migration handshake is in flight; past it, frames are
// counted dropped (exactly what a real DU buffer overflow would do).
const maxHeldFrames = 1 << 16

// RebalanceConfig shapes the coordinator's load rebalancer. The policy
// is deliberately conservative: a cell moves only after the backlog gap
// between the busiest and idlest shard stays at or above Skew for
// Streak consecutive polls — sustained skew, not a transient burst.
type RebalanceConfig struct {
	// Every is the snapshot poll period; 0 disables rebalancing.
	Every time.Duration
	// Skew is the minimum backlog gap (blocks: queued + retrying)
	// between the busiest and idlest shard to count a poll toward the
	// streak. Default 32.
	Skew int
	// Streak is how many consecutive skewed polls trigger a move.
	// Default 3.
	Streak int
	// Cooldown is how long a just-moved cell is ineligible for another
	// move (default 50×Every). Backlog follows the cell it came with, so
	// without hysteresis the rebalancer thrashes a hot cell between
	// shards faster than the new owner can work the backlog down.
	Cooldown time.Duration
	// DrainTimeout bounds each migration drain (default 5s).
	DrainTimeout time.Duration
}

func (c RebalanceConfig) withDefaults() RebalanceConfig {
	if c.Skew <= 0 {
		c.Skew = 32
	}
	if c.Streak <= 0 {
		c.Streak = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 50 * c.Every
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = DefaultDrainTimeout
	}
	return c
}

// Config parameterizes a Coordinator.
type Config struct {
	// Cells is the fleet-wide cell count; cell ids are global.
	Cells int
	// Deadline is the per-block budget hint stamped into data frames.
	Deadline time.Duration
	// Rebalance shapes the automatic load rebalancer.
	Rebalance RebalanceConfig
	// Trace shapes distributed tracing and SLO accounting (Sample 0
	// disables trace propagation; the collector still exists so the
	// metric schema is stable).
	Trace TraceConfig
}

// ShardConn is one shard's pair of fronthaul links: Data carries the
// one-way U-plane (may be chaos-faulted), Ctrl the lock-step M-plane
// RPCs (reliable).
type ShardConn struct {
	Name       string
	Data, Ctrl *fronthaul.Link
}

// shardLink is the coordinator's per-shard state.
type shardLink struct {
	name   string
	data   *fronthaul.Link
	ctrl   *fronthaul.Link
	ctrlMu sync.Mutex // serializes lock-step RPC exchanges
	routed atomic.Uint64
	// shipDropped mirrors the shard's cumulative dropped-span count
	// (carried on every span report frame's Aux).
	shipDropped atomic.Uint64
}

// heldFrame is one data frame parked during a migration handshake,
// with its park instant so the trace context can account the dwell.
type heldFrame struct {
	f  *fronthaul.Frame
	at time.Time
}

// Coordinator is the DU side: it owns the cell→shard route, streams
// data frames to shard workers, aggregates their snapshots, and runs
// the migration protocol.
type Coordinator struct {
	cfg    Config
	shards []*shardLink

	// route maps cell → shard index.
	route []atomic.Int32

	// holdCell is the cell whose frames are parked while its migration
	// handshake runs (-1 otherwise); held is the parking buffer.
	holdCell atomic.Int64
	holdMu   sync.Mutex
	held     []heldFrame

	// collector merges shipped shard spans into the fleet trace view;
	// traceSeq/traceBase generate sampled trace IDs.
	collector *SpanCollector
	traceSeq  atomic.Uint64
	traceBase uint64
	readerWG  sync.WaitGroup

	// migMu serializes migrations (one cell moves at a time).
	migMu sync.Mutex

	routeErrors     atomic.Uint64
	heldFlushed     atomic.Uint64
	heldDropped     atomic.Uint64
	migrations      atomic.Uint64
	migratedBlocks  atomic.Uint64
	migratedBuffers atomic.Uint64
	rebalChecks     atomic.Uint64
	rebalMoves      atomic.Uint64

	stopRebal chan struct{}
	rebalDone chan struct{}
}

// NewCoordinator routes cells round-robin across the given shards and,
// when cfg.Rebalance.Every > 0, starts the rebalancer goroutine.
func NewCoordinator(cfg Config, conns []*ShardConn) (*Coordinator, error) {
	if cfg.Cells <= 0 {
		return nil, fmt.Errorf("shard: coordinator needs cells")
	}
	if len(conns) == 0 {
		return nil, fmt.Errorf("shard: coordinator needs at least one shard")
	}
	c := &Coordinator{
		cfg:       cfg,
		route:     make([]atomic.Int32, cfg.Cells),
		collector: newSpanCollector(cfg.Trace, cfg.Deadline),
		traceBase: uint64(time.Now().UnixNano()) << 20,
		stopRebal: make(chan struct{}),
		rebalDone: make(chan struct{}),
	}
	c.holdCell.Store(-1)
	for i, sc := range conns {
		name := sc.Name
		if name == "" {
			name = fmt.Sprintf("shard%d", i)
		}
		sh := &shardLink{name: name, data: sc.Data, ctrl: sc.Ctrl}
		c.shards = append(c.shards, sh)
		// One reader per data link drains the shard→coordinator
		// direction (span reports). The link is full-duplex; the writer
		// side (Submit) never contends with this read loop.
		c.readerWG.Add(1)
		go c.readSpans(sh)
	}
	for cell := 0; cell < cfg.Cells; cell++ {
		c.route[cell].Store(int32(cell % len(c.shards)))
	}
	if cfg.Rebalance.Every > 0 {
		go c.rebalance()
	} else {
		close(c.rebalDone)
	}
	return c, nil
}

// readSpans is the per-shard backchannel reader: it drains span report
// frames off the data link into the collector until the link dies
// (shutdown, or a real transport failure — either way the backchannel
// just ends; it is best-effort by design).
func (c *Coordinator) readSpans(sh *shardLink) {
	defer c.readerWG.Done()
	for {
		f, err := sh.data.ReadFrame()
		if err != nil {
			return
		}
		if f.Type != fronthaul.TypeSpanReport {
			continue
		}
		sh.shipDropped.Store(f.Aux)
		c.collector.ingest(sh.name, f.Payload)
	}
}

// Collector exposes the fleet span collector.
func (c *Coordinator) Collector() *SpanCollector { return c.collector }

// nextTraceID decides whether this submission is traced (every
// cfg.Trace.Sample-th one) and returns its fleet-unique trace ID, or 0
// for untraced. IDs are the coordinator start stamp high bits OR a
// monotonic sequence, so concurrent coordinators in one fleet cannot
// collide in practice.
func (c *Coordinator) nextTraceID() uint64 {
	n := c.cfg.Trace.Sample
	if n <= 0 {
		return 0
	}
	seq := c.traceSeq.Add(1)
	if n > 1 && seq%uint64(n) != 0 {
		return 0
	}
	return c.traceBase | (seq & (1<<20 - 1))
}

// Route reports which shard currently owns a cell.
func (c *Coordinator) Route(cell int) int {
	return int(c.route[cell].Load())
}

// Shards reports the shard count.
func (c *Coordinator) Shards() int { return len(c.shards) }

// Submit routes one block's data frame to the owning shard. During the
// cell's migration handshake the frame is parked and flushed to the new
// owner after the route flips. A nil error does not mean delivery — the
// U-plane is lossy by design; it means the frame was routed.
func (c *Coordinator) Submit(cell, ue, proc, k int, word *turbo.LLRWord) error {
	t0 := time.Now()
	if cell < 0 || cell >= c.cfg.Cells {
		c.routeErrors.Add(1)
		return fmt.Errorf("shard: unknown cell %d", cell)
	}
	id := c.nextTraceID()
	tEnc := time.Now()
	f := fronthaul.DataFrame(cell, ue, proc, k, word, uint64(c.cfg.Deadline))
	if id != 0 {
		// Route = admission + routing decision; encode-wire = packing
		// the soft word. Both are monotonic local offsets; the send
		// stamp (the link stage's base) is taken in send(), as late as
		// possible.
		f.Trace = &fronthaul.TraceCtx{
			TraceID: id, ParentID: id,
			RouteNs:  fronthaul.SatNs32(tEnc.Sub(t0).Nanoseconds()),
			EncodeNs: fronthaul.SatNs32(time.Since(tEnc).Nanoseconds()),
		}
	}
	if c.holdCell.Load() == int64(cell) {
		c.holdMu.Lock()
		if c.holdCell.Load() == int64(cell) {
			if len(c.held) >= maxHeldFrames {
				c.holdMu.Unlock()
				c.heldDropped.Add(1)
				return nil
			}
			c.held = append(c.held, heldFrame{f: f, at: time.Now()})
			c.holdMu.Unlock()
			return nil
		}
		c.holdMu.Unlock()
	}
	return c.send(c.Route(cell), f)
}

func (c *Coordinator) send(shard int, f *fronthaul.Frame) error {
	sh := c.shards[shard]
	if f.Trace != nil {
		f.Trace.SentUnixNs = time.Now().UnixNano()
	}
	if err := sh.data.WriteFrame(f); err != nil {
		c.routeErrors.Add(1)
		return err
	}
	sh.routed.Add(1)
	return nil
}

// ShardSnapshot fetches one shard's metrics snapshot over its control
// link (a lock-step RPC).
func (c *Coordinator) ShardSnapshot(i int) (*ran.Snapshot, error) {
	sh := c.shards[i]
	sh.ctrlMu.Lock()
	defer sh.ctrlMu.Unlock()
	if err := sh.ctrl.WriteFrame(&fronthaul.Frame{Type: fronthaul.TypeSnapshotReq}); err != nil {
		return nil, err
	}
	f, err := sh.ctrl.ReadFrame()
	if err != nil {
		return nil, err
	}
	if f.Type == fronthaul.TypeError {
		return nil, fmt.Errorf("shard: %s snapshot: %s", sh.name, f.Payload)
	}
	if f.Type != fronthaul.TypeSnapshotResp {
		return nil, fmt.Errorf("shard: %s snapshot: unexpected %s frame", sh.name, f.Type)
	}
	var s ran.Snapshot
	if err := json.Unmarshal(f.Payload, &s); err != nil {
		return nil, fmt.Errorf("shard: %s snapshot: %w", sh.name, err)
	}
	return &s, nil
}

// FleetSnapshot fetches every shard's snapshot and the aggregate view.
func (c *Coordinator) FleetSnapshot() (*ran.Snapshot, []*ran.Snapshot, error) {
	per := make([]*ran.Snapshot, len(c.shards))
	for i := range c.shards {
		s, err := c.ShardSnapshot(i)
		if err != nil {
			return nil, nil, err
		}
		per[i] = s
	}
	return Aggregate(per), per, nil
}

// MigrateCell drains cell from its current shard and installs its state
// on shard `to`, flipping the route and flushing any frames parked
// during the handshake. In-flight blocks and HARQ soft buffers move
// losslessly; blocks the fronthaul dropped before the drain are simply
// gone, as on any lossy link.
func (c *Coordinator) MigrateCell(cell, to int, drainTimeout time.Duration) error {
	if cell < 0 || cell >= c.cfg.Cells {
		return fmt.Errorf("shard: unknown cell %d", cell)
	}
	if to < 0 || to >= len(c.shards) {
		return fmt.Errorf("shard: unknown shard %d", to)
	}
	if drainTimeout <= 0 {
		drainTimeout = DefaultDrainTimeout
	}
	c.migMu.Lock()
	defer c.migMu.Unlock()
	from := c.Route(cell)
	if from == to {
		return nil
	}

	// Park new frames for the cell while the handshake runs.
	holdStart := time.Now()
	c.holdMu.Lock()
	c.holdCell.Store(int64(cell))
	c.holdMu.Unlock()
	unholdTo := from // on failure, flush back to the old owner
	var drainDur, installDur time.Duration
	outcome := "migrate_failed"
	defer func() {
		c.holdMu.Lock()
		c.holdCell.Store(-1)
		held := c.held
		c.held = nil
		c.holdMu.Unlock()
		now := time.Now()
		for _, h := range held {
			if h.f.Trace != nil {
				// The park dwell rides the frame's trace context so the
				// block's final span accounts time spent in the hold
				// buffer — measured on this host's clock.
				parked := h.f.Trace.ParkNs + fronthaul.SatNs32(now.Sub(h.at).Nanoseconds())
				if parked < h.f.Trace.ParkNs { // saturate on wrap
					parked = ^uint32(0)
				}
				h.f.Trace.ParkNs = parked
			}
			if c.send(unholdTo, h.f) == nil {
				c.heldFlushed.Add(1)
			}
		}
		// The migration itself is a coordinator-local trace: park window
		// plus the drain and install RPC legs, visible in /spans and the
		// drain/install hop histograms.
		sp := telemetry.Span{
			Cell: cell, TraceID: c.traceBase | (1<<20 - 1), Origin: "coordinator",
			Start: holdStart, Outcome: outcome,
		}
		sp.Stages[telemetry.SpanPark] = now.Sub(holdStart) - drainDur - installDur
		if sp.Stages[telemetry.SpanPark] < 0 {
			sp.Stages[telemetry.SpanPark] = 0
		}
		sp.Stages[telemetry.SpanDrain] = drainDur
		sp.Stages[telemetry.SpanInstall] = installDur
		c.collector.Record(sp)
	}()

	// Source: drain the cell, collecting the state stream.
	src := c.shards[from]
	drainT0 := time.Now()
	src.ctrlMu.Lock()
	var state []*fronthaul.Frame
	err := func() error {
		if err := src.ctrl.WriteFrame(&fronthaul.Frame{
			Type: fronthaul.TypeMigrateStart, Cell: uint32(cell), Aux: uint64(drainTimeout),
		}); err != nil {
			return err
		}
		for {
			f, err := src.ctrl.ReadFrame()
			if err != nil {
				return err
			}
			switch f.Type {
			case fronthaul.TypeMigrateState:
				state = append(state, f)
			case fronthaul.TypeMigrateDone:
				if int(f.Aux) != len(state) {
					return fmt.Errorf("shard: %s drain announced %d entries, streamed %d", src.name, f.Aux, len(state))
				}
				return nil
			case fronthaul.TypeError:
				return fmt.Errorf("shard: %s drain: %s", src.name, f.Payload)
			default:
				return fmt.Errorf("shard: %s drain: unexpected %s frame", src.name, f.Type)
			}
		}
	}()
	src.ctrlMu.Unlock()
	drainDur = time.Since(drainT0)
	if err != nil {
		return err
	}

	// Target: forward the state verbatim, then commit.
	dst := c.shards[to]
	installT0 := time.Now()
	dst.ctrlMu.Lock()
	err = func() error {
		for _, f := range state {
			if err := dst.ctrl.WriteFrame(f); err != nil {
				return err
			}
		}
		if err := dst.ctrl.WriteFrame(&fronthaul.Frame{
			Type: fronthaul.TypeMigrateCommit, Cell: uint32(cell), Aux: uint64(len(state)),
		}); err != nil {
			return err
		}
		f, err := dst.ctrl.ReadFrame()
		if err != nil {
			return err
		}
		if f.Type == fronthaul.TypeError {
			return fmt.Errorf("shard: %s import: %s", dst.name, f.Payload)
		}
		if f.Type != fronthaul.TypeMigrateAck {
			return fmt.Errorf("shard: %s import: unexpected %s frame", dst.name, f.Type)
		}
		return nil
	}()
	dst.ctrlMu.Unlock()
	installDur = time.Since(installT0)
	if err != nil {
		// The cell's state now lives on the target's staging (or was
		// rejected); the source cell stays sealed. Surface the failure —
		// the operator decides, nothing is silently lost.
		return err
	}

	c.route[cell].Store(int32(to))
	unholdTo = to
	outcome = "migrated"
	c.migrations.Add(1)
	for _, f := range state {
		if f.Flags&fronthaul.FlagHasWord != 0 {
			c.migratedBlocks.Add(1)
		}
		if f.Flags&fronthaul.FlagHasSoft != 0 {
			c.migratedBuffers.Add(1)
		}
	}
	return nil
}

// rebalance is the coordinator's skew watcher: every cfg.Rebalance.Every
// it polls shard snapshots, computes each shard's backlog (queued blocks
// of its routed cells plus its retry depth), and after Streak
// consecutive polls with a gap ≥ Skew moves the busiest cell from the
// busiest shard to the idlest.
func (c *Coordinator) rebalance() {
	defer close(c.rebalDone)
	cfg := c.cfg.Rebalance.withDefaults()
	ticker := time.NewTicker(cfg.Every)
	defer ticker.Stop()
	streak := 0
	cooling := make(map[int]time.Time) // cell → moved-at
	for {
		select {
		case <-c.stopRebal:
			return
		case <-ticker.C:
		}
		c.rebalChecks.Add(1)
		_, per, err := c.FleetSnapshot()
		if err != nil {
			continue
		}
		backlog := make([]int, len(c.shards))
		for i, s := range per {
			backlog[i] = s.RetryDepth
		}
		for cell := 0; cell < c.cfg.Cells; cell++ {
			sh := c.Route(cell)
			if s := per[sh]; cell < len(s.Cells) {
				backlog[sh] += s.Cells[cell].QueueDepth
			}
		}
		busiest, idlest := 0, 0
		for i, b := range backlog {
			if b > backlog[busiest] {
				busiest = i
			}
			if b < backlog[idlest] {
				idlest = i
			}
		}
		if backlog[busiest]-backlog[idlest] < cfg.Skew {
			streak = 0
			continue
		}
		streak++
		if streak < cfg.Streak {
			continue
		}
		streak = 0
		// Move the busiest eligible cell off the busiest shard; cells
		// still in their post-move cooldown are left where they are.
		now := time.Now()
		cell, depth := -1, -1
		for cl := 0; cl < c.cfg.Cells; cl++ {
			if c.Route(cl) != busiest {
				continue
			}
			if at, ok := cooling[cl]; ok && now.Sub(at) < cfg.Cooldown {
				continue
			}
			if s := per[busiest]; cl < len(s.Cells) && s.Cells[cl].QueueDepth > depth {
				cell, depth = cl, s.Cells[cl].QueueDepth
			}
		}
		if cell < 0 {
			continue
		}
		if err := c.MigrateCell(cell, idlest, cfg.DrainTimeout); err == nil {
			c.rebalMoves.Add(1)
			cooling[cell] = now
		}
	}
}

// Stop halts the rebalancer and flushes reorder-held link frames. It
// does not stop the shard runtimes — the caller owns those.
func (c *Coordinator) Stop() {
	select {
	case <-c.stopRebal:
	default:
		close(c.stopRebal)
	}
	<-c.rebalDone
	for _, sh := range c.shards {
		_ = sh.data.Flush()
	}
}
