package shard

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vransim/internal/ran"
)

// TestMigrateCellMidTraffic runs the full coordinator migration
// protocol while traffic keeps flowing into the moving cell: shard 0's
// CRC always fails (so cell 0's blocks cycle in the HARQ retry path —
// deterministically in flight), shard 1 decodes normally. The move must
// carry every in-flight block and soft buffer across, the fleet ledger
// must stay exact (each accepted block terminal exactly once), and the
// migrated blocks must deliver on the target.
func TestMigrateCellMidTraffic(t *testing.T) {
	const cells = 2
	pool := mustCRCPool(t, 64, 32, 11)
	base := fleetRuntime(cells, pool)
	f, err := NewFleet(FleetConfig{
		Coordinator: Config{Cells: cells, Deadline: 30 * time.Second},
		Runtime: func(i int) ran.Config {
			cfg := base(i)
			cfg.HARQ = ran.HARQConfig{MaxRetries: 1 << 20, Processes: 8}
			if i == 0 {
				cfg.CheckCRC = func(*ran.Block, []byte) bool { return false }
			}
			return cfg
		},
		Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Traffic: a generator keeps offering cell-0 blocks before, during
	// and after the migration.
	var offered atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			w, _ := pool.Get(i)
			// Distinct (UE, process) per in-flight block: two live blocks
			// sharing a HARQ process would chase-combine each other's
			// words into garbage (stop-and-wait forbids that in real LTE).
			if err := f.Coord.Submit(0, i%8, (i/8)%8, pool.K, w); err != nil {
				t.Error(err)
				return
			}
			offered.Add(1)
			time.Sleep(100 * time.Microsecond)
		}
	}()

	// Wait until shard 0 demonstrably holds in-flight state (its CRC
	// never passes, so accepted blocks stay non-terminal).
	waitUntil := time.Now().Add(5 * time.Second)
	for {
		s, err := f.Coord.ShardSnapshot(0)
		if err != nil {
			t.Fatal(err)
		}
		if s.Accepted >= 20 {
			break
		}
		if time.Now().After(waitUntil) {
			t.Fatalf("shard 0 never built up in-flight state (accepted %d)", s.Accepted)
		}
		time.Sleep(time.Millisecond)
	}
	if err := f.Coord.MigrateCell(0, 1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := f.Coord.Route(0); got != 1 {
		t.Fatalf("cell 0 routed to shard %d after migration, want 1", got)
	}
	time.Sleep(5 * time.Millisecond) // post-move traffic lands on shard 1
	close(stop)
	wg.Wait()

	agg := settle(t, f.Coord, 10*time.Second, 0)
	moved := f.Coord.migratedBlocks.Load()
	if f.Coord.migrations.Load() != 1 || moved == 0 {
		t.Fatalf("migrations=%d migratedBlocks=%d, want 1 and > 0",
			f.Coord.migrations.Load(), moved)
	}
	if f.Coord.migratedBuffers.Load() == 0 {
		t.Error("no HARQ soft buffers migrated despite blocks cycling in retry")
	}
	_ = agg

	snaps, serveErrs := f.Stop()
	for _, err := range serveErrs {
		t.Errorf("worker serve error: %v", err)
	}

	// Exact conservation: fleet-wide, every accepted block reached
	// exactly one terminal outcome — across the move, nothing was lost
	// and nothing double-counted.
	var accepted, terminal uint64
	for _, s := range snaps {
		accepted += s.Accepted
		terminal += s.Delivered + postDrops(s)
		if b := s.Drops[ran.DropBacklog] + s.Drops[ran.DropAdmission]; b != 0 {
			t.Errorf("%d backlog/admission drops — queues undersized, ledger not exact", b)
		}
	}
	if accepted != terminal {
		t.Errorf("fleet ledger broken: accepted %d != terminal %d", accepted, terminal)
	}
	if accepted > offered.Load() {
		t.Errorf("accepted %d exceeds offered %d", accepted, offered.Load())
	}
	// Zero in-flight loss: everything the drain captured delivered on
	// the target (its CRC passes and the deadline is generous). The
	// source delivered nothing — its CRC never passed.
	if snaps[0].Delivered != 0 {
		t.Errorf("source delivered %d blocks with an always-fail CRC", snaps[0].Delivered)
	}
	if snaps[1].Cells[0].Delivered < moved {
		t.Errorf("target delivered %d cell-0 blocks, want ≥ %d migrated",
			snaps[1].Cells[0].Delivered, moved)
	}
	if snaps[0].HARQBuffers != 0 || snaps[1].HARQBuffers != 0 {
		t.Errorf("soft buffers leaked: src %d dst %d", snaps[0].HARQBuffers, snaps[1].HARQBuffers)
	}
	// The frames parked during the handshake reached the new owner.
	if f.Coord.heldDropped.Load() != 0 {
		t.Errorf("%d held frames dropped during the handshake", f.Coord.heldDropped.Load())
	}
}

// TestMigrateValidation: bad arguments and no-op moves.
func TestMigrateValidation(t *testing.T) {
	pool := mustCRCPool(t, 64, 4, 3)
	f, err := NewFleet(FleetConfig{
		Coordinator: Config{Cells: 2, Deadline: time.Second},
		Runtime:     fleetRuntime(2, pool),
		Shards:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Stop()
	if err := f.Coord.MigrateCell(7, 1, time.Second); err == nil {
		t.Error("unknown cell accepted")
	}
	if err := f.Coord.MigrateCell(0, 9, time.Second); err == nil {
		t.Error("unknown shard accepted")
	}
	if err := f.Coord.MigrateCell(0, 0, time.Second); err != nil {
		t.Errorf("same-shard move should be a no-op, got %v", err)
	}
	if f.Coord.migrations.Load() != 0 {
		t.Error("no-op move counted as a migration")
	}
}

// TestRebalanceMovesSkewedCell: sustained backlog skew makes the
// rebalancer migrate the hot cell to the idle shard, after which the
// blocks (undecodable on shard 0) deliver on shard 1.
func TestRebalanceMovesSkewedCell(t *testing.T) {
	const cells = 2
	pool := mustCRCPool(t, 64, 32, 17)
	base := fleetRuntime(cells, pool)
	f, err := NewFleet(FleetConfig{
		Coordinator: Config{
			Cells:    cells,
			Deadline: 30 * time.Second,
			Rebalance: RebalanceConfig{
				Every: 2 * time.Millisecond, Skew: 8, Streak: 2,
				// Long cooldown: once moved, cell 0 stays put while the
				// target works the backlog down.
				Cooldown:     30 * time.Second,
				DrainTimeout: 5 * time.Second,
			},
		},
		Runtime: func(i int) ran.Config {
			cfg := base(i)
			cfg.HARQ = ran.HARQConfig{MaxRetries: 1 << 20, Processes: 8}
			if i == 0 {
				cfg.CheckCRC = func(*ran.Block, []byte) bool { return false }
			}
			return cfg
		},
		Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	for i := 0; i < n; i++ {
		w, _ := pool.Get(i)
		// All 64 blocks are concurrently live on the always-fail shard, so
		// each needs its own (UE, process) — 8 UEs × 8 HARQ processes.
		if err := f.Coord.Submit(0, i%8, (i/8)%8, pool.K, w); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for f.Coord.Route(0) != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("rebalancer never moved cell 0 (checks=%d moves=%d)",
				f.Coord.rebalChecks.Load(), f.Coord.rebalMoves.Load())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if f.Coord.rebalMoves.Load() == 0 {
		t.Error("route flipped without a recorded rebalance move")
	}
	settle(t, f.Coord, 10*time.Second, n)
	snaps, _ := f.Stop()
	var accepted, terminal uint64
	for _, s := range snaps {
		accepted += s.Accepted
		terminal += s.Delivered + postDrops(s)
	}
	if accepted != terminal {
		t.Errorf("fleet ledger broken after rebalance: accepted %d != terminal %d", accepted, terminal)
	}
	if snaps[1].Cells[0].Delivered == 0 {
		t.Error("no cell-0 deliveries on the shard the rebalancer moved it to")
	}
}
