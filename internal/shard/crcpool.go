package shard

import (
	"fmt"
	"math/rand"

	"vransim/internal/phy"
	"vransim/internal/ran"
	"vransim/internal/turbo"
)

// CRCPool pre-encodes random blocks whose payload carries a real CRC24B
// suffix, so the decode check is content-based: any correctly decoded
// block verifies, wherever it decodes. The in-process WordPool keys
// truth by word pointer identity, which cannot survive serialization
// over the fronthaul — a migrated or re-framed word is a different
// allocation. Corrupted decodes still fail with probability ~1−2⁻²⁴.
type CRCPool struct {
	K     int
	words []*turbo.LLRWord
	truth [][]byte
}

// NewCRCPool encodes n random blocks of k bits (k−24 payload bits plus
// the CRC24B suffix) at LLR amplitude amp.
func NewCRCPool(k, n int, amp int16, rng *rand.Rand) (*CRCPool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shard: crc pool needs n > 0")
	}
	if k <= 24 {
		return nil, fmt.Errorf("shard: crc pool needs k > 24, got %d", k)
	}
	c, err := turbo.NewCode(k)
	if err != nil {
		return nil, err
	}
	p := &CRCPool{K: k}
	for i := 0; i < n; i++ {
		msg := make([]byte, k-24)
		for j := range msg {
			msg[j] = byte(rng.Intn(2))
		}
		bits := phy.AppendCRC(msg, phy.CRC24BPoly, 24)
		cw, err := c.Encode(bits)
		if err != nil {
			return nil, err
		}
		w := turbo.NewLLRWord(k)
		w.FromHard(cw, amp)
		p.words = append(p.words, w)
		p.truth = append(p.truth, bits)
	}
	return p, nil
}

// Get returns word i (mod pool size) and its true payload bits.
func (p *CRCPool) Get(i int) (*turbo.LLRWord, []byte) {
	j := i % len(p.words)
	return p.words[j], p.truth[j]
}

// Len reports the pool size.
func (p *CRCPool) Len() int { return len(p.words) }

// CheckCRC returns a ran.Config.CheckCRC hook that validates the CRC24B
// suffix of the decoded bits — no lookup table, so it works across
// process and serialization boundaries.
func (p *CRCPool) CheckCRC() func(*ran.Block, []byte) bool {
	return ContentCRC24B()
}

// ContentCRC24B is the fleet-standard decode check: a decoded payload
// is accepted iff its CRC24B suffix verifies. Shard workers use it
// directly — unlike the in-process WordPool they never see the truth
// table, only the bits that arrived over the fronthaul.
func ContentCRC24B() func(*ran.Block, []byte) bool {
	return func(_ *ran.Block, bits []byte) bool {
		return phy.CheckCRC(bits, phy.CRC24BPoly, 24)
	}
}
