package shard

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vransim/internal/chaos"
	"vransim/internal/fronthaul"
	"vransim/internal/ran"
	"vransim/internal/telemetry"
)

// TestSpanContextFromWire: the wire context rebases onto the local
// clock — upstream monotonic offsets fold in verbatim, the link dwell
// comes from the wall-clock delta clamped at zero, and the
// reconstructed Start backs off by exactly the accumulated upstream
// time.
func TestSpanContextFromWire(t *testing.T) {
	recv := time.Now()
	tc := &fronthaul.TraceCtx{
		TraceID: 42, ParentID: 7,
		SentUnixNs: recv.Add(-3 * time.Millisecond).UnixNano(),
		RouteNs:    1000, EncodeNs: 2000, ParkNs: 4000,
	}
	ingest := 5 * time.Microsecond
	sc := spanContextFromWire(tc, recv, ingest)
	if sc.TraceID != 42 || sc.Parent != 7 {
		t.Errorf("identity %d/%d not carried", sc.TraceID, sc.Parent)
	}
	if sc.Upstream[telemetry.SpanRoute] != time.Microsecond ||
		sc.Upstream[telemetry.SpanEncodeWire] != 2*time.Microsecond ||
		sc.Upstream[telemetry.SpanPark] != 4*time.Microsecond {
		t.Errorf("upstream offsets not folded: %v", sc.Upstream)
	}
	link := sc.Upstream[telemetry.SpanLink]
	if link < 2900*time.Microsecond || link > 3100*time.Microsecond {
		t.Errorf("link dwell %v, want ~3ms", link)
	}
	if sc.Upstream[telemetry.SpanIngest] != ingest {
		t.Errorf("ingest %v, want %v", sc.Upstream[telemetry.SpanIngest], ingest)
	}
	var upstream time.Duration
	for _, d := range sc.Upstream {
		upstream += d
	}
	if got := recv.Add(ingest).Sub(sc.Start); got != upstream {
		t.Errorf("start backed off %v, want the upstream sum %v", got, upstream)
	}
}

// TestSpanContextFromWireSkew: a sender clock ahead of ours (the frame
// appears to arrive before it was sent) must clamp the link dwell to
// zero, never go negative — satellite fix for the cross-host tracer.
func TestSpanContextFromWireSkew(t *testing.T) {
	recv := time.Now()
	tc := &fronthaul.TraceCtx{
		TraceID:    1,
		SentUnixNs: recv.Add(10 * time.Second).UnixNano(), // future sender clock
		RouteNs:    500,
	}
	sc := spanContextFromWire(tc, recv, time.Microsecond)
	if sc.Upstream[telemetry.SpanLink] != 0 {
		t.Errorf("skewed link dwell %v, want clamped 0", sc.Upstream[telemetry.SpanLink])
	}
	for st, d := range sc.Upstream {
		if d < 0 {
			t.Errorf("stage %s negative under skew: %v", telemetry.Stage(st).Name(), d)
		}
	}
	// Unknown sender stamp (0) also means no link attribution.
	sc = spanContextFromWire(&fronthaul.TraceCtx{TraceID: 2}, recv, 0)
	if sc.Upstream[telemetry.SpanLink] != 0 {
		t.Error("zero SentUnixNs must not fabricate a link dwell")
	}
}

// TestFleetTraceEndToEnd: with Sample=1 every remote-decoded block
// yields exactly one trace at the coordinator whose hop durations sum
// to the block's end-to-end latency, and the fleet view exposes the
// hop histograms, SLO gauges and span exemplars over the admin server.
func TestFleetTraceEndToEnd(t *testing.T) {
	const cells, n = 4, 48
	pool := mustCRCPool(t, 64, 32, 1)
	f, err := NewFleet(FleetConfig{
		Coordinator: Config{Cells: cells, Deadline: 30 * time.Second,
			Trace: TraceConfig{Sample: 1}},
		Runtime: fleetRuntime(cells, pool),
		Shards:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	for i := 0; i < n; i++ {
		w, _ := pool.Get(i)
		if err := f.Coord.Submit(i%cells, i%8, i, pool.K, w); err != nil {
			t.Fatal(err)
		}
	}
	agg := settle(t, f.Coord, 10*time.Second, n)
	if agg.Delivered != n {
		t.Fatalf("delivered %d of %d", agg.Delivered, n)
	}
	col := f.Coord.Collector()
	// The shipper flushes every 2ms; give the tail batch a moment.
	deadline := time.Now().Add(5 * time.Second)
	for col.SpanCount() < n && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	elapsed := time.Since(t0)
	if col.SpanCount() != n {
		t.Fatalf("collector merged %d spans, want %d", col.SpanCount(), n)
	}

	seen := map[uint64]bool{}
	for _, sp := range col.Tracer().Recent() {
		if sp.TraceID == 0 {
			t.Fatal("merged span without a trace id")
		}
		if seen[sp.TraceID] {
			t.Fatalf("trace %d merged twice", sp.TraceID)
		}
		seen[sp.TraceID] = true
		if sp.Origin == "" {
			t.Error("shipped span lost its origin shard")
		}
		if sp.Outcome != "delivered" {
			t.Errorf("trace %d outcome %q", sp.TraceID, sp.Outcome)
		}
		// Every fronthaul hop was paid: the coordinator stamped route +
		// encode-wire, the worker ingest, the runtime queue + decode.
		for _, st := range []telemetry.Stage{
			telemetry.SpanRoute, telemetry.SpanEncodeWire,
			telemetry.SpanIngest, telemetry.SpanQueue, telemetry.SpanDecode,
		} {
			if sp.Stages[st] <= 0 {
				t.Errorf("trace %d missing hop %s", sp.TraceID, st.Name())
			}
		}
		// The acceptance criterion: hop durations sum to the observed
		// end-to-end latency. Everything ran in-process on one clock, so
		// the sum is bounded by the wall time of the whole run and is at
		// least the shard-observed service time of the fastest block.
		total := sp.Total()
		if total <= 0 || total > elapsed {
			t.Errorf("trace %d hop sum %v outside (0, %v]", sp.TraceID, total, elapsed)
		}
	}

	// The trace e2e distribution must sit at or above the shard-local
	// latency distribution (it adds the fronthaul hops to the same
	// blocks) — within histogram bucket resolution.
	hops := map[string]telemetry.StageSummary{}
	for _, h := range col.HopSummaries() {
		hops[h.Stage] = h
	}
	if hops[telemetry.StageDecode].Count != n {
		t.Errorf("decode hop count %d, want %d", hops[telemetry.StageDecode].Count, n)
	}
	if hops[telemetry.StageLink].Count == 0 {
		t.Error("no link dwell recorded crossing the pipe fronthaul")
	}

	// Admin exposition: the CI-grepped families and the /spans view.
	srv := httptest.NewServer(f.Coord.MountAdmin("127.0.0.1:0").Handler())
	defer srv.Close()
	metrics := httpGet(t, srv.URL+"/metrics")
	for _, want := range []string{
		`vran_hop_seconds{hop="decode",quantile="0.99"}`,
		`vran_hop_seconds{hop="link",quantile="0.5"}`,
		`vran_hop_budget_fraction{hop="decode"}`,
		`vran_trace_spans_total`,
		`vran_trace_e2e_seconds{quantile="0.99"}`,
		`vran_slo_burn_rate{window="fast"}`,
		`vran_slo_budget_remaining{window="slow"}`,
		`vran_slo_observed_total{verdict="good"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	spansBody := httpGet(t, srv.URL+"/spans")
	for _, want := range []string{`"recent"`, `"slowest"`, `"hops"`, `"decode"`} {
		if !strings.Contains(spansBody, want) {
			t.Errorf("/spans missing %s", want)
		}
	}

	// SLO: every block was delivered well inside the 30s target.
	good, bad := col.SLO().Totals()
	if good != n || bad != 0 {
		t.Errorf("SLO verdicts %d/%d, want %d/0", good, bad, n)
	}
	if _, errs := f.Stop(); len(errs) != 0 {
		t.Errorf("serve errors: %v", errs)
	}
}

// TestTraceSampling: Sample=4 traces one block in four; untraced
// blocks must not reach the collector.
func TestTraceSampling(t *testing.T) {
	const cells, n = 2, 32
	pool := mustCRCPool(t, 64, 32, 2)
	f, err := NewFleet(FleetConfig{
		Coordinator: Config{Cells: cells, Deadline: 30 * time.Second,
			Trace: TraceConfig{Sample: 4}},
		Runtime: fleetRuntime(cells, pool),
		Shards:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		w, _ := pool.Get(i)
		if err := f.Coord.Submit(i%cells, i%8, i, pool.K, w); err != nil {
			t.Fatal(err)
		}
	}
	settle(t, f.Coord, 10*time.Second, n)
	col := f.Coord.Collector()
	deadline := time.Now().Add(5 * time.Second)
	for col.SpanCount() < n/4 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := col.SpanCount(); got != n/4 {
		t.Errorf("collector merged %d spans, want %d (every 4th block)", got, n/4)
	}
	f.Stop()
}

// TestTraceSurvivesLinkChaos: trace contexts ride the lossy U-plane;
// faulted frames lose their trace with the block (by design), but every
// span that does come back parses and stays non-negative.
func TestTraceSurvivesLinkChaos(t *testing.T) {
	const cells, n = 4, 200
	pool := mustCRCPool(t, 64, 64, 3)
	f, err := NewFleet(FleetConfig{
		Coordinator: Config{Cells: cells, Deadline: 30 * time.Second,
			Trace: TraceConfig{Sample: 1}},
		Runtime: fleetRuntime(cells, pool),
		Shards:  2,
		LinkChaos: func(i int) *chaos.Injector {
			return chaos.New(chaos.Config{
				Seed:          400 + int64(i),
				LinkDropRate:  0.05,
				LinkDelayRate: 0.10,
				LinkPartRate:  0.002,
				LinkPartFor:   500 * time.Microsecond,
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		w, _ := pool.Get(i)
		if err := f.Coord.Submit(i%cells, i%8, (i/32)%8, pool.K, w); err != nil {
			t.Fatal(err)
		}
	}
	f.Coord.Stop() // release reorder-held frames before settling
	agg := settle(t, f.Coord, 30*time.Second, 0)
	col := f.Coord.Collector()
	deadline := time.Now().Add(5 * time.Second)
	for col.SpanCount() < agg.Accepted && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	snaps, _ := f.Stop()
	_ = snaps
	if col.SpanCount() != agg.Accepted {
		t.Errorf("spans %d != blocks that survived the link %d", col.SpanCount(), agg.Accepted)
	}
	if col.SpanCount() == n {
		t.Logf("note: chaos dropped no frames this run")
	}
	if col.badReports.Load() != 0 {
		t.Errorf("%d span reports failed to parse", col.badReports.Load())
	}
	for _, sp := range col.Tracer().Recent() {
		for st := telemetry.Stage(0); st < telemetry.NumStages; st++ {
			if sp.Stages[st] < 0 {
				t.Errorf("trace %d stage %s negative under chaos", sp.TraceID, telemetry.Stage(st).Name())
			}
		}
	}
}

// TestAggregateMergesLatencyBuckets: the fleet aggregate reconstructs
// percentiles from pooled histogram buckets — the satellite fix for
// the old max-fold, which reported the worst shard's percentile as the
// fleet's.
func TestAggregateMergesLatencyBuckets(t *testing.T) {
	var fast, slow telemetry.Hist
	for i := 0; i < 900; i++ {
		fast.Observe(time.Millisecond)
	}
	for i := 0; i < 100; i++ {
		slow.Observe(100 * time.Millisecond)
	}
	mk := func(h *telemetry.Hist) *ran.Snapshot {
		return &ran.Snapshot{
			LatencyBuckets: h.Buckets(),
			LatencyP50:     h.Percentile(0.50),
			LatencyP90:     h.Percentile(0.90),
			LatencyP99:     h.Percentile(0.99),
		}
	}
	agg := Aggregate([]*ran.Snapshot{mk(&fast), mk(&slow)})
	// Old behavior: p50 = max(1ms, 100ms) = 100ms. Pooled truth: 90% of
	// blocks are ~1ms, so p50 must be the fast mode.
	if agg.LatencyP50 > 10*time.Millisecond {
		t.Errorf("fleet p50 %v — still max-folding per-shard percentiles", agg.LatencyP50)
	}
	// The tail is real: pooled p99 is the slow shard's mode.
	if agg.LatencyP99 < 80*time.Millisecond {
		t.Errorf("fleet p99 %v lost the slow tail", agg.LatencyP99)
	}
	// Snapshots predating LatencyBuckets still fall back to max-fold.
	legacy := Aggregate([]*ran.Snapshot{
		{LatencyP50: 2 * time.Millisecond},
		{LatencyP50: 8 * time.Millisecond},
	})
	if legacy.LatencyP50 != 8*time.Millisecond {
		t.Errorf("legacy fallback p50 %v, want max-fold 8ms", legacy.LatencyP50)
	}
}
