package shard

import (
	"fmt"
	"sync"

	"vransim/internal/chaos"
	"vransim/internal/fronthaul"
	"vransim/internal/ran"
)

// FleetConfig assembles an in-process fleet: N shard runtimes wired to
// one coordinator over fronthaul pipes (the same frames that cross TCP
// between vrancoord and vranshard processes, minus the sockets).
type FleetConfig struct {
	// Coordinator carries the fleet cell count, deadline hint and
	// rebalance policy.
	Coordinator Config
	// Runtime builds shard i's ran.Config. It must keep Cells equal to
	// Coordinator.Cells — cell ids are fleet-global.
	Runtime func(i int) ran.Config
	// Shards is the shard count.
	Shards int
	// LinkChaos optionally returns a fault injector for shard i's data
	// link (nil = clean link). The control link is never faulted: the
	// M-plane is the reliable side of the split.
	LinkChaos func(i int) *chaos.Injector
}

// Fleet is a running in-process shard deployment.
type Fleet struct {
	Coord    *Coordinator
	Workers  []*Worker
	Runtimes []*ran.Runtime

	closers []func()
	wg      sync.WaitGroup
	serveMu sync.Mutex
	serve   []error
}

// NewFleet builds and starts the fleet: runtimes, workers, pipe pairs
// and the coordinator (with its rebalancer, if configured).
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("shard: fleet needs shards > 0")
	}
	f := &Fleet{}
	fail := func(err error) (*Fleet, error) {
		f.close()
		for _, rt := range f.Runtimes {
			rt.Stop()
		}
		return nil, err
	}
	conns := make([]*ShardConn, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		rcfg := cfg.Runtime(i)
		if rcfg.Cells != cfg.Coordinator.Cells {
			return fail(fmt.Errorf("shard: runtime %d has %d cells, coordinator expects %d (cell ids are fleet-global)",
				i, rcfg.Cells, cfg.Coordinator.Cells))
		}
		rt, err := ran.New(rcfg)
		if err != nil {
			return fail(err)
		}
		f.Runtimes = append(f.Runtimes, rt)
		w := NewWorker(rt)
		f.Workers = append(f.Workers, w)

		var inj *chaos.Injector
		if cfg.LinkChaos != nil {
			inj = cfg.LinkChaos(i)
		}
		dataC, dataW := fronthaul.Pipe()
		ctrlC, ctrlW := fronthaul.Pipe()
		f.closers = append(f.closers, func() { dataC.Close(); ctrlC.Close() })
		conns[i] = &ShardConn{
			Name: fmt.Sprintf("shard%d", i),
			Data: fronthaul.NewLink(dataC, inj),
			Ctrl: fronthaul.NewLink(ctrlC, nil),
		}
		for _, end := range []*fronthaul.PipeEnd{dataW, ctrlW} {
			link := fronthaul.NewLink(end, nil)
			f.wg.Add(1)
			go func() {
				defer f.wg.Done()
				if err := w.ServeConn(link); err != nil {
					f.serveMu.Lock()
					f.serve = append(f.serve, err)
					f.serveMu.Unlock()
				}
			}()
		}
	}
	coord, err := NewCoordinator(cfg.Coordinator, conns)
	if err != nil {
		return fail(err)
	}
	f.Coord = coord
	return f, nil
}

func (f *Fleet) close() {
	for _, fn := range f.closers {
		fn()
	}
	f.closers = nil
	f.wg.Wait()
}

// Stop tears the fleet down — rebalancer, runtimes, span shippers,
// links — and returns each runtime's final snapshot plus any worker
// serve errors (EOF on clean close is not an error). Runtimes stop
// before the links close so the shutdown-drain spans still ship to the
// collector; workers close before the links so the final flush lands.
func (f *Fleet) Stop() ([]*ran.Snapshot, []error) {
	if f.Coord != nil {
		f.Coord.Stop()
	}
	snaps := make([]*ran.Snapshot, len(f.Runtimes))
	for i, rt := range f.Runtimes {
		snaps[i] = rt.Stop()
	}
	for _, w := range f.Workers {
		w.Close()
	}
	f.close()
	if f.Coord != nil {
		// The pipes are closed, so the span readers see EOF; wait them
		// out so nothing touches the collector after Stop returns.
		f.Coord.readerWG.Wait()
	}
	return snaps, f.serve
}
