package shard

import (
	"vransim/internal/telemetry"
)

// Families renders the coordinator's own counters in the vran_shard_*
// naming scheme — the fleet-level view layered over the per-shard
// vran_* families.
func (c *Coordinator) Families() []telemetry.Family {
	routed := telemetry.Family{Name: "vran_shard_routed_total",
		Help: "Data frames routed to each shard.", Type: telemetry.Counter}
	cells := telemetry.Family{Name: "vran_shard_cells",
		Help: "Cells currently routed to each shard.", Type: telemetry.Gauge}
	sent := telemetry.Family{Name: "vran_shard_link_sent_total",
		Help: "Frames written to each shard's data link.", Type: telemetry.Counter}
	dropped := telemetry.Family{Name: "vran_shard_link_dropped_total",
		Help: "Data frames lost to injected fronthaul faults.", Type: telemetry.Counter}
	reordered := telemetry.Family{Name: "vran_shard_link_reordered_total",
		Help: "Data frames delivered behind a successor.", Type: telemetry.Counter}
	owned := make([]int, len(c.shards))
	for cell := 0; cell < c.cfg.Cells; cell++ {
		owned[c.Route(cell)]++
	}
	for i, sh := range c.shards {
		lbl := []telemetry.Label{telemetry.L("shard", sh.name)}
		st := sh.data.Stats()
		routed.Samples = append(routed.Samples, telemetry.Sample{Labels: lbl, Value: float64(sh.routed.Load())})
		cells.Samples = append(cells.Samples, telemetry.Sample{Labels: lbl, Value: float64(owned[i])})
		sent.Samples = append(sent.Samples, telemetry.Sample{Labels: lbl, Value: float64(st.Sent)})
		dropped.Samples = append(dropped.Samples, telemetry.Sample{Labels: lbl, Value: float64(st.Dropped)})
		reordered.Samples = append(reordered.Samples, telemetry.Sample{Labels: lbl, Value: float64(st.Reordered)})
	}
	var shipDropped uint64
	for _, sh := range c.shards {
		shipDropped += sh.shipDropped.Load()
	}
	fams := []telemetry.Family{
		routed, cells, sent, dropped, reordered,
		telemetry.F("vran_shard_route_errors_total", "Submissions that failed to route (bad cell or link write error).",
			telemetry.Counter, float64(c.routeErrors.Load())),
		telemetry.F("vran_shard_migrations_total", "Completed cell migrations.",
			telemetry.Counter, float64(c.migrations.Load())),
		telemetry.F("vran_shard_migrated_blocks_total", "In-flight blocks moved across shards by migrations.",
			telemetry.Counter, float64(c.migratedBlocks.Load())),
		telemetry.F("vran_shard_migrated_buffers_total", "HARQ soft buffers moved across shards by migrations.",
			telemetry.Counter, float64(c.migratedBuffers.Load())),
		telemetry.F("vran_shard_rebalance_checks_total", "Rebalancer skew polls.",
			telemetry.Counter, float64(c.rebalChecks.Load())),
		telemetry.F("vran_shard_rebalance_moves_total", "Migrations triggered by the rebalancer.",
			telemetry.Counter, float64(c.rebalMoves.Load())),
		telemetry.F("vran_shard_held_flushed_total", "Parked frames flushed to the new owner after a migration.",
			telemetry.Counter, float64(c.heldFlushed.Load())),
		telemetry.F("vran_shard_held_dropped_total", "Parked frames dropped when the migration hold buffer overflowed.",
			telemetry.Counter, float64(c.heldDropped.Load())),
	}
	// The fleet trace view: per-hop latency/budget attribution, trace
	// counters and the SLO burn-rate gauges.
	return append(fams, c.collector.Families(shipDropped)...)
}

// MountAdmin builds an admin server (not yet started) whose /metrics
// exposition is the fleet aggregate of every shard's vran_* families
// plus the coordinator's own vran_shard_* counters. If a shard snapshot
// RPC fails mid-scrape, the scrape degrades to coordinator counters
// only rather than erroring the whole exposition.
func (c *Coordinator) MountAdmin(addr string) *telemetry.AdminServer {
	return telemetry.NewAdmin(telemetry.AdminConfig{
		Addr: addr,
		Metrics: func() []telemetry.Family {
			fams := c.Families()
			if agg, _, err := c.FleetSnapshot(); err == nil {
				fams = append(agg.Families(), fams...)
			}
			return fams
		},
		Snapshot: func() any {
			agg, per, err := c.FleetSnapshot()
			if err != nil {
				return map[string]string{"error": err.Error()}
			}
			return map[string]any{
				"fleet":  agg,
				"shards": per,
				"hops":   c.collector.HopSummaries(),
			}
		},
		Spans: func() any {
			tr := c.collector.Tracer()
			slowest := map[string][]telemetry.Span{}
			for st := telemetry.Stage(0); st < telemetry.NumStages; st++ {
				slowest[st.Name()] = tr.Slowest(st)
			}
			return map[string]any{
				"recent":  tr.Recent(),
				"slowest": slowest,
				"hops":    c.collector.HopSummaries(),
			}
		},
	})
}
