package bench

import (
	"vransim/internal/cache"
	"vransim/internal/core"
	"vransim/internal/simd"
	"vransim/internal/trace"
	"vransim/internal/uarch"
)

// KernelKind identifies a microbenchmark instruction stream: the
// representative kernels of the paper's Figure 7 instruction-class
// characterization.
type KernelKind int

// The Figure 7 kernel set.
const (
	KernelPAdds KernelKind = iota
	KernelPSubs
	KernelPMax
	KernelPExtract
	KernelScalarOFDM
)

// String names the kernel the way the paper does.
func (k KernelKind) String() string {
	switch k {
	case KernelPAdds:
		return "_mm_adds"
	case KernelPSubs:
		return "_mm_subs"
	case KernelPMax:
		return "_mm_max"
	case KernelPExtract:
		return "_mm_extract"
	case KernelScalarOFDM:
		return "do_OFDM(scalar)"
	}
	return "?"
}

// lcg is a deterministic address scrambler for cache-pressure kernels.
type lcg struct{ s uint64 }

func (l *lcg) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s >> 16
}

// BuildKernel emits a kernel trace of roughly n µop groups at width w,
// touching a working set of wsBytes with a pseudo-random blocked access
// pattern (prefetcher-resistant, so the cache capacity contrast between
// platforms shows, as in the paper's wimpy/beefy comparison).
func BuildKernel(kind KernelKind, w simd.Width, n int, wsBytes int) []trace.Inst {
	mem := simd.NewMemory(wsBytes + 4096)
	e := simd.NewEngine(w, mem, trace.NewRecorder(n*8))
	rng := lcg{s: uint64(kind)*977 + uint64(w)}
	addr := func() int64 {
		return int64(rng.next()%uint64(wsBytes-int(w))) &^ 1
	}
	a, b, c, d := e.NewVec(), e.NewVec(), e.NewVec(), e.NewVec()

	switch kind {
	case KernelPAdds, KernelPSubs:
		// The well-organized OAI pattern: load once, compute a batch of
		// independent operations in registers, store occasionally.
		// Vector-ALU-port bound near the port ceiling of 3 (the paper
		// measures 2.8/2.7).
		op := e.PAddSW
		if kind == KernelPSubs {
			op = e.PSubSW
		}
		bank := make([]*simd.Vec, 10)
		for j := range bank {
			bank[j] = e.NewVec()
		}
		for i := 0; i < n; i++ {
			// Two operand loads per batch: enough memory traffic that a
			// node whose caches can't hold the working set shows memory
			// bound, while the batch stays vector-ALU-port bound.
			e.LoadVec(a, addr())
			e.LoadVec(b, addr())
			for j := range bank {
				src := a
				if j%2 == 1 {
					src = b
				}
				op(bank[j], src, d)
			}
			if i%8 == 7 {
				e.StoreVec(addr(), bank[0])
				e.EmitBranch("jnz")
			}
		}
	case KernelPMax:
		// The decoding max has unavoidable data dependencies (the
		// running maximum threads through every group), capping IPC
		// below the other calculation instructions (the paper measures
		// ~2.2).
		m := e.NewVec()
		for i := 0; i < n; i++ {
			e.LoadVec(a, addr())
			// One running maximum updated four times in a row: a
			// 4-cycle serial floor per group.
			e.PMaxSW(m, m, a)
			e.PMaxSW(m, m, b)
			e.PMaxSW(m, m, c)
			e.PMaxSW(m, m, d)
			// Plus independent work that fills the other ports.
			e.PMaxSW(c, a, b)
			e.PMaxSW(d, a, b)
			e.PAddSW(b, a, a)
			e.PAddSW(c, a, a)
			if i%8 == 7 {
				e.StoreVec(addr(), m)
				e.EmitBranch("jnz")
			}
		}
	case KernelPExtract:
		// The data-movement pattern: one wide load, then 16-bit pextrw
		// stores of every lane — the arrangement's inner loop.
		lanes := w.Lanes16()
		for i := 0; i < n; i++ {
			base := addr()
			e.LoadVec(a, base)
			dst := addr()
			for l := 0; l < lanes && l < 8; l++ {
				e.PExtrWToMem(dst+int64(2*l), a, l)
			}
			e.EmitScalar("add", 1)
			if i%4 == 3 {
				e.EmitBranch("jnz")
			}
		}
	case KernelScalarOFDM:
		// Butterfly-like scalar FP stream: wide independent issue.
		for i := 0; i < n; i++ {
			e.EmitScalarLoad("mov", addr(), 8)
			e.EmitScalar("fmul", 3)
			e.EmitScalar("fadd", 3)
			e.EmitScalarStore("mov", addr(), 8)
			if i%8 == 7 {
				e.EmitBranch("jnz")
			}
		}
	}
	return e.Recorder().Insts()
}

// SimKernel runs a kernel on a platform with warm caches: a first pass
// primes the hierarchy, the measured pass reports steady-state behaviour
// (cold first-touch misses would otherwise dominate short kernels).
func SimKernel(insts []trace.Inst, p uarch.Platform) uarch.Result {
	sim := uarch.NewSimulator(p.Core, cache.NewHierarchy(p.Caches))
	sim.Run(insts)
	return sim.Run(insts)
}

// SimKernelCold is SimKernel without the warm-up pass.
func SimKernelCold(insts []trace.Inst, p uarch.Platform) uarch.Result {
	return uarch.NewSimulator(p.Core, cache.NewHierarchy(p.Caches)).Run(insts)
}

// ArrangeWorkload builds an n-triple interleaved LLR stream and runs the
// given arrangement strategy over it, returning the trace.
func ArrangeWorkload(s core.Strategy, w simd.Width, n int) []trace.Inst {
	ar := core.ByStrategy(s)
	lay := ar.Layout(w)
	mem := simd.NewMemory(core.InterleavedBytes(n) + 3*lay.DstBytes(n) + 4096)
	e := simd.NewEngine(w, mem, trace.NewRecorder(n*8))
	src := mem.Alloc(core.InterleavedBytes(n), 64)
	sv := make([]int16, n)
	p1 := make([]int16, n)
	p2 := make([]int16, n)
	rng := lcg{s: uint64(n)}
	for i := 0; i < n; i++ {
		sv[i] = int16(rng.next())
		p1[i] = int16(rng.next())
		p2[i] = int16(rng.next())
	}
	core.WriteInterleaved(mem, src, sv, p1, p2)
	dst := core.Dest{
		S:  mem.Alloc(lay.DstBytes(n), 64),
		P1: mem.Alloc(lay.DstBytes(n), 64),
		P2: mem.Alloc(lay.DstBytes(n), 64),
	}
	ar.Arrange(e, src, dst, n)
	return e.Recorder().Insts()
}
