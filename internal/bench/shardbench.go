// Machine-readable distributed-path benchmark: the harness behind
// cmd/vranbench -shardjson and the committed BENCH_shard.json. It runs
// the same saturating block load through an in-process shard fleet —
// coordinator, fronthaul pipes, frame codec, shard workers — at one and
// two shards, reporting fleet goodput and delivered p99 per row, so the
// perf trajectory covers the fronthaul serialization and routing
// overhead, not just the raw decode.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"vransim/internal/core"
	"vransim/internal/ran"
	"vransim/internal/shard"
	"vransim/internal/simd"
)

// ShardBenchRow is one fleet-size measurement.
type ShardBenchRow struct {
	Shards    int    `json:"shards"`
	Cells     int    `json:"cells"`
	Offered   uint64 `json:"offered_blocks"`
	Delivered uint64 `json:"delivered_blocks"`
	Dropped   uint64 `json:"dropped_blocks"`
	// GoodputMbps sums the per-shard delivered-bit rates (emulated
	// decode — rows compare fleet sizes, not hardware).
	GoodputMbps  float64 `json:"goodput_mbps"`
	LatencyP99Us float64 `json:"latency_p99_us"`
	ElapsedMs    float64 `json:"elapsed_ms"`
}

// ShardBenchReport is the BENCH_shard.json shape.
type ShardBenchReport struct {
	GoVersion string          `json:"go_version"`
	GOARCH    string          `json:"goarch"`
	K         int             `json:"k"`
	Blocks    int             `json:"blocks"`
	Workers   int             `json:"workers_per_shard"`
	Rows      []ShardBenchRow `json:"rows"`
}

// RunShardBench measures the 1-shard and 2-shard fleets over the
// in-process pipe transport. quick shrinks the block count for CI.
func RunShardBench(quick bool) (*ShardBenchReport, error) {
	const (
		k       = 512
		cells   = 4
		workers = 2
	)
	blocks := 8192
	if quick {
		blocks = 2048
	}
	rep := &ShardBenchReport{
		GoVersion: runtime.Version(), GOARCH: runtime.GOARCH,
		K: k, Blocks: blocks, Workers: workers,
	}
	for _, shards := range []int{1, 2} {
		row, err := runShardCell(shards, cells, workers, k, blocks)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// runShardCell drives one fleet size with a saturating load.
func runShardCell(shards, cells, workers, k, blocks int) (ShardBenchRow, error) {
	pool, err := shard.NewCRCPool(k, 64, 24, rand.New(rand.NewSource(7)))
	if err != nil {
		return ShardBenchRow{}, err
	}
	f, err := shard.NewFleet(shard.FleetConfig{
		Coordinator: shard.Config{Cells: cells, Deadline: 30 * time.Second},
		Runtime: func(int) ran.Config {
			cfg := ran.DefaultConfig(simd.W256, core.StrategyAPCM)
			cfg.Cells = cells
			cfg.Workers = workers
			// Deep queues: the load is saturating by design, and backlog
			// drops would turn the goodput row into a drop-rate row.
			cfg.QueueDepth = blocks
			cfg.BatchWindow = 200 * time.Microsecond
			cfg.Deadline = 30 * time.Second
			cfg.AdmissionGuard = false
			cfg.CheckCRC = shard.ContentCRC24B()
			return cfg
		},
		Shards: shards,
	})
	if err != nil {
		return ShardBenchRow{}, err
	}
	for i := 0; i < blocks; i++ {
		cell := i % cells
		w, _ := pool.Get(i)
		// Distinct (UE, process) per concurrently-live block of a cell.
		if err := f.Coord.Submit(cell, (i/cells)%8, (i/(cells*8))%8, pool.K, w); err != nil {
			f.Stop()
			return ShardBenchRow{}, err
		}
	}
	// Settle: every offered block terminal (delivered or dropped) and
	// stable — pipe buffers may still be draining when Submit returns.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		agg, _, err := f.Coord.FleetSnapshot()
		if err != nil {
			f.Stop()
			return ShardBenchRow{}, err
		}
		if agg.Delivered+agg.Dropped() >= uint64(blocks) && agg.RetryDepth == 0 {
			break
		}
		if time.Now().After(deadline) {
			f.Stop()
			return ShardBenchRow{}, fmt.Errorf("bench: %d-shard fleet did not drain %d blocks", shards, blocks)
		}
		time.Sleep(2 * time.Millisecond)
	}
	snaps, serveErrs := f.Stop()
	for _, err := range serveErrs {
		return ShardBenchRow{}, err
	}
	agg := shard.Aggregate(snaps)
	return ShardBenchRow{
		Shards: shards, Cells: cells,
		Offered: uint64(blocks), Delivered: agg.Delivered, Dropped: agg.Dropped(),
		GoodputMbps:  agg.GoodputMbps,
		LatencyP99Us: float64(agg.LatencyP99.Nanoseconds()) / 1e3,
		ElapsedMs:    float64(agg.Elapsed.Nanoseconds()) / 1e6,
	}, nil
}

// WriteShardBenchJSON runs the shard benchmark and writes the report.
func WriteShardBenchJSON(w io.Writer, quick bool) error {
	rep, err := RunShardBench(quick)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
