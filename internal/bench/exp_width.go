package bench

import (
	"fmt"
	"io"
	"math/rand"

	"vransim/internal/cache"
	"vransim/internal/core"
	"vransim/internal/simd"
	"vransim/internal/trace"
	"vransim/internal/turbo"
	"vransim/internal/uarch"
)

// Phases holds per-decoder-phase attributed times.
type Phases struct {
	order  []string
	cycles map[string]int64
	us     map[string]float64
	insts  map[string]int
	// Total is the whole-decode simulation.
	Total uarch.Result
}

// Us returns the attributed time of a phase in microseconds.
func (p *Phases) Us(name string) float64 { return p.us[name] }

// Cycles returns the attributed cycles of a phase.
func (p *Phases) Cycles(name string) int64 { return p.cycles[name] }

// Names returns the phases in first-appearance order.
func (p *Phases) Names() []string { return p.order }

// TotalUs sums every attributed phase.
func (p *Phases) TotalUs() float64 {
	var t float64
	for _, n := range p.order {
		t += p.us[n]
	}
	return t
}

// DecodePhases runs one lane-parallel SIMD turbo decode (arrangement
// included; BlocksPerRegister(w) blocks fill the lanes, and every
// attribution is divided by the block count) on noiseless blocks of size
// k and attributes cycles per decoder phase on the wimpy platform.
func DecodePhases(s core.Strategy, w simd.Width, k, iters int) (*Phases, error) {
	return decodePhasesPolicy(s, w, k, iters, true)
}

// decodePhasesPolicy is DecodePhases with an explicit rearrangement
// policy (the abl-rearrange experiment).
func decodePhasesPolicy(s core.Strategy, w simd.Width, k, iters int, rearrange bool) (*Phases, error) {
	c, err := turbo.NewCode(k)
	if err != nil {
		return nil, err
	}
	nb := turbo.BlocksPerRegister(w)
	rng := rand.New(rand.NewSource(int64(k) + int64(w)))
	words := make([]*turbo.LLRWord, nb)
	for b := 0; b < nb; b++ {
		bits := make([]byte, k)
		for i := range bits {
			bits[i] = byte(rng.Intn(2))
		}
		cw, err := c.Encode(bits)
		if err != nil {
			return nil, err
		}
		words[b] = turbo.NewLLRWord(k)
		words[b].FromHard(cw, 32)
	}

	mem := simd.NewMemory(64 << 20)
	e := simd.NewEngine(w, mem, trace.NewRecorder(1<<18))
	d := turbo.NewMultiSIMDDecoder(c)
	d.MaxIters = iters
	d.EarlyExit = false
	d.RearrangePerHalfIter = rearrange
	if _, _, err := d.Decode(e, core.ByStrategy(s), words); err != nil {
		return nil, err
	}

	p := uarch.WimpyPlatform()
	insts := e.Recorder().Insts()
	ph := &Phases{cycles: map[string]int64{}, us: map[string]float64{}, insts: map[string]int{}}
	inv := 1.0 / float64(nb)
	for _, m := range d.Marks {
		if m.Hi <= m.Lo {
			continue
		}
		win := trace.Window(insts, m.Lo, m.Hi)
		r := uarch.NewSimulator(p.Core, cache.NewHierarchy(p.Caches)).Run(win)
		if _, ok := ph.cycles[m.Name]; !ok {
			ph.order = append(ph.order, m.Name)
		}
		ph.cycles[m.Name] += int64(float64(r.Cycles) * inv)
		ph.us[m.Name] += r.Microseconds() * inv
		ph.insts[m.Name] += len(win) / nb
	}
	ph.Total = uarch.NewSimulator(p.Core, cache.NewHierarchy(p.Caches)).Run(insts)
	return ph, nil
}

func init() {
	register(Experiment{
		ID:    "fig9",
		Title: "SIMD decoder submodule processing time under SSE128/AVX256/AVX512 (Figure 9)",
		Run: func(w io.Writer, o Options) error {
			k, iters := 2048, 1
			if o.Quick {
				k = 512
			}
			t := newTable("width", "mechanism", "arrangement", "gamma", "alpha", "beta+ext", "ext", "interleave", "arr share")
			for _, s := range []core.Strategy{core.StrategyExtract, core.StrategyAPCM} {
				for _, width := range simd.Widths {
					ph, err := DecodePhases(s, width, k, iters)
					if err != nil {
						return err
					}
					tot := ph.TotalUs()
					cell := func(name string) string {
						return fmt.Sprintf("%.1fus", ph.Us(name))
					}
					t.add(width.String(), core.ByStrategy(s).Name(),
						cell("arrangement"), cell("gamma"), cell("alpha"),
						cell("beta+ext"), cell("ext"), cell("interleave"),
						pct(ph.Us("arrangement")/tot))
				}
			}
			t.write(w)
			fmt.Fprintln(w, "  (paper: arrangement share 13/17/19.5% original -> 4.7/3.4/1.8% APCM;")
			fmt.Fprintln(w, "   note: our alpha/beta recursions stay 8-state xmm kernels at every width,")
			fmt.Fprintln(w, "   so the calculation side scales less with width than the paper's — see EXPERIMENTS.md)")
			return nil
		},
	})
}
