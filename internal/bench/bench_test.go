package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"vransim/internal/core"
	"vransim/internal/simd"
	"vransim/internal/uarch"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig13", "fig14", "fig15", "fig16",
		"abl-variants", "abl-ports", "abl-rearrange", "abl-cache",
		"decode-alloc"}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) < len(want) {
		t.Errorf("registry has %d experiments, want >= %d", len(All()), len(want))
	}
}

func TestKernelIPCOrdering(t *testing.T) {
	// The Figure 7 hierarchy: scalar > padds/psubs > pmax > pextrw.
	p := uarch.WimpyPlatform()
	// L1-resident working set so port structure (not cache misses)
	// decides the ordering, as on the paper's beefy node.
	ipc := func(k KernelKind) float64 {
		return SimKernel(BuildKernel(k, simd.W128, 3000, 32<<10), p).IPC()
	}
	scalar := ipc(KernelScalarOFDM)
	adds := ipc(KernelPAdds)
	max := ipc(KernelPMax)
	extract := ipc(KernelPExtract)
	if !(scalar > adds && adds > max && max > extract) {
		t.Errorf("IPC ordering violated: scalar=%.2f adds=%.2f max=%.2f extract=%.2f",
			scalar, adds, max, extract)
	}
	if scalar < 3.3 {
		t.Errorf("scalar IPC %.2f, want near 4", scalar)
	}
	if extract > 2.0 {
		t.Errorf("extract IPC %.2f, want below the movement-port ceiling 2", extract)
	}
}

func TestArrangeWorkloadHeadline(t *testing.T) {
	// The headline claims at kernel level, every width: IPC up, backend
	// bound down, bandwidth up by >= 3x.
	p := uarch.WimpyPlatform()
	for _, w := range simd.Widths {
		o := SimKernel(ArrangeWorkload(core.StrategyExtract, w, 4096), p)
		a := SimKernel(ArrangeWorkload(core.StrategyAPCM, w, 4096), p)
		if a.IPC() < 2.5*o.IPC() {
			t.Errorf("%v: IPC gain %.2f -> %.2f below 2.5x", w, o.IPC(), a.IPC())
		}
		if a.TopDown.BackendBound > 0.25 || o.TopDown.BackendBound < 0.4 {
			t.Errorf("%v: backend bound %.2f -> %.2f, want high -> low",
				w, o.TopDown.BackendBound, a.TopDown.BackendBound)
		}
		gain := a.StoreBitsPerCycle() / o.StoreBitsPerCycle()
		if gain < 3 {
			t.Errorf("%v: bandwidth gain %.1fx, want >= 3x", w, gain)
		}
	}
}

func TestBandwidthGainGrowsWithWidth(t *testing.T) {
	// The 4X-16X claim: wider registers widen the gap.
	p := uarch.WimpyPlatform()
	gain := func(w simd.Width) float64 {
		o := SimKernel(ArrangeWorkload(core.StrategyExtract, w, 4096), p)
		a := SimKernel(ArrangeWorkload(core.StrategyAPCM, w, 4096), p)
		return a.StoreBitsPerCycle() / o.StoreBitsPerCycle()
	}
	g128, g256, g512 := gain(simd.W128), gain(simd.W256), gain(simd.W512)
	if !(g128 < g256 && g256 < g512) {
		t.Errorf("bandwidth gains not monotone with width: %.1f, %.1f, %.1f", g128, g256, g512)
	}
	if g512 < 8 {
		t.Errorf("AVX512 bandwidth gain %.1fx, want large (paper: ~16x)", g512)
	}
}

func TestDecodePhasesShares(t *testing.T) {
	// Arrangement share of decode: substantial under the original
	// mechanism, small under APCM (the Figure 9 contrast).
	po, err := DecodePhases(core.StrategyExtract, simd.W128, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := DecodePhases(core.StrategyAPCM, simd.W128, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	so := po.Us("arrangement") / po.TotalUs()
	sa := pa.Us("arrangement") / pa.TotalUs()
	if so < 0.05 {
		t.Errorf("original arrangement share %.1f%%, want substantial", 100*so)
	}
	if sa > so/2 {
		t.Errorf("APCM arrangement share %.1f%% not well below original %.1f%%", 100*sa, 100*so)
	}
}

func TestQuickExperimentsRun(t *testing.T) {
	// Smoke: the cheap experiments run end to end and emit tables.
	for _, id := range []string{"table1", "fig8", "fig15", "abl-variants", "abl-ports", "abl-cache"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		var buf bytes.Buffer
		if err := RunOne(&buf, e, Options{Quick: true}); err != nil {
			t.Errorf("%s: %v", id, err)
		}
		if !strings.Contains(buf.String(), "==") || buf.Len() < 100 {
			t.Errorf("%s: implausibly small output", id)
		}
	}
}

func TestFig13Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline sweep")
	}
	e, _ := ByID("fig13")
	var buf bytes.Buffer
	if err := RunOne(&buf, e, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "reduction") {
		t.Error("fig13 output missing reduction column")
	}
}

// TestDecodeBenchQuick: the machine-readable decode benchmark produces a
// complete, self-consistent report in quick mode — every (mode, width, K)
// cell present, steady-state allocations within the CI budget, and the
// JSON round-trips.
func TestDecodeBenchQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs testing.Benchmark cells")
	}
	var buf bytes.Buffer
	if err := WriteDecodeBenchJSON(&buf, true); err != nil {
		t.Fatal(err)
	}
	var rep DecodeBenchReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if len(rep.Rows) != 5*3*2 { // modes x widths x quick Ks
		t.Fatalf("report has %d rows, want 30", len(rep.Rows))
	}
	perOp := map[string]float64{} // mode/width/K -> ns/op
	for _, r := range rep.Rows {
		if r.NsPerOp <= 0 || r.Iterations <= 0 || r.GoodputMbps <= 0 {
			t.Errorf("%s/%s/K=%d: degenerate row %+v", r.Mode, r.Width, r.K, r)
		}
		if (r.Mode == "scheduled" || r.Mode == "packed" || r.Mode == "steady" || r.Mode == "compiled") && r.AllocsOp > 8 {
			t.Errorf("%s/K=%d %s: %d allocs/op over budget 8", r.Width, r.K, r.Mode, r.AllocsOp)
		}
		if r.Mode == "scheduled" {
			if r.SimIPCAfter <= r.SimIPCBefore || r.SimIPCBefore <= 0 {
				t.Errorf("%s/K=%d scheduled: simulated IPC not improved (%.4f -> %.4f, %s)",
					r.Width, r.K, r.SimIPCBefore, r.SimIPCAfter, r.SchedHeuristic)
			}
			if r.SchedHeuristic == "" || r.SchedHeuristic == "original" {
				t.Errorf("%s/K=%d scheduled: heuristic %q — packed steady segment should adopt a reorder", r.Width, r.K, r.SchedHeuristic)
			}
		}
		if r.Mode == "fresh" && r.AllocsOp <= 8 {
			t.Errorf("%s/K=%d fresh: %d allocs/op — baseline mode is not rebuilding per op", r.Width, r.K, r.AllocsOp)
		}
		perOp[fmt.Sprintf("%s/%s/%d", r.Mode, r.Width, r.K)] = r.NsPerOp
	}
	// The compiled replay must beat the interpreter on every cell large
	// enough for the measurement to be stable (the quick pass includes
	// K=512 at every width).
	for _, w := range []string{"SSE128", "AVX256", "AVX512"} {
		c, s := perOp["compiled/"+w+"/512"], perOp["steady/"+w+"/512"]
		if c == 0 || s == 0 {
			t.Fatalf("missing compiled/steady K=512 rows for %s (rows: %v)", w, perOp)
		}
		if c >= s {
			t.Errorf("%s K=512: compiled %.0f ns/op not faster than interpreted %.0f", w, c, s)
		}
	}
	// Cross-block SoA packing must beat the per-block compiled path in
	// the small-K band on the widest registers (4 blocks per register).
	for _, k := range []string{"104", "512"} {
		p, c := perOp["packed/AVX512/"+k], perOp["compiled/AVX512/"+k]
		if p == 0 || c == 0 {
			t.Fatalf("missing packed/compiled K=%s rows for AVX512 (rows: %v)", k, perOp)
		}
		if p >= c {
			t.Errorf("AVX512 K=%s: packed %.0f ns/op not faster than per-block compiled %.0f", k, p, c)
		}
	}
}
