// Package bench is the experiment harness: one generator per table and
// figure of the paper's evaluation, each printing the rows/series the
// paper reports (shape reproduction; see EXPERIMENTS.md for the
// paper-vs-measured record). The cmd/vranbench binary dispatches into
// this registry.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Options tune experiment cost.
type Options struct {
	// Quick shrinks workloads (shorter blocks, fewer packet sizes) for
	// CI-speed runs; the shapes survive, absolute numbers shift.
	Quick bool
}

// Experiment is one reproducible artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, o Options) error
}

var registry []Experiment

// register adds an experiment at init time.
func register(e Experiment) { registry = append(registry, e) }

// All returns the experiments sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment in ID order.
func RunAll(w io.Writer, o Options) error {
	for _, e := range All() {
		if err := RunOne(w, e, o); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}

// RunOne executes a single experiment with its banner.
func RunOne(w io.Writer, e Experiment, o Options) error {
	fmt.Fprintf(w, "\n== %s: %s ==\n", e.ID, e.Title)
	return e.Run(w, o)
}

// table is a minimal fixed-width table printer.
type table struct {
	header []string
	rows   [][]string
}

func newTable(cols ...string) *table { return &table{header: cols} }

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) addf(format string, args ...interface{}) {
	t.add(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
