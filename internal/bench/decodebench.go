// Machine-readable steady-state decode benchmark: the harness behind
// cmd/vranbench -decodejson and the committed BENCH_decode.json. It
// drives testing.Benchmark over the packed (cross-block SoA + replay),
// compiled (per-block plan cache + trace-replay program), steady (plan
// cache, interpreter pinned) and fresh (pre-refactor replica) decode
// paths for every width × a spread of K, reporting ns/op, B/op,
// allocs/op and emulated goodput per row. The compiled/steady row pairs
// are the replay compiler's speedup evidence (CI gates their ratio at
// W512 K=6144); the packed/compiled pairs are the SoA packing's
// small-K evidence (CI gates W512 K=512).
package bench

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"vransim/internal/core"
	"vransim/internal/simd"
	"vransim/internal/simd/program"
	"vransim/internal/turbo"
)

// benchFlagsOnce registers the testing package's flags exactly once so
// testing.Benchmark honours -test.benchtime in a non-test binary
// (vranbench). Safe in test binaries too: Init is idempotent there and
// Set works after Parse.
var benchFlagsOnce sync.Once

func flagSet(name, value string) error {
	benchFlagsOnce.Do(func() {
		if flag.Lookup("test.benchtime") == nil {
			testing.Init()
		}
	})
	return flag.Set(name, value)
}

// DecodeBenchRow is one (mode, width, K) measurement.
type DecodeBenchRow struct {
	// Mode is "scheduled" (pooled, cross-block SoA replay compiled
	// through the port-aware scheduling pass), "packed" (pooled,
	// cross-block SoA stream replayed as one compiled program per
	// iteration), "compiled" (pooled, replaying the per-block compiled
	// program), "steady" (pooled, interpreter pinned via Compile=false)
	// or "fresh" (decoder and working set rebuilt every op).
	Mode     string  `json:"mode"`
	Width    string  `json:"width"`
	K        int     `json:"k"`
	Lanes    int     `json:"lanes"` // blocks per decode
	NsPerOp  float64 `json:"ns_per_op"`
	BPerOp   int64   `json:"bytes_per_op"`
	AllocsOp int64   `json:"allocs_per_op"`
	// GoodputMbps is decoded information bits over wall-clock time
	// (emulated decode — the number compares modes, not hardware).
	GoodputMbps float64 `json:"goodput_mbps"`
	Iterations  int     `json:"benchmark_iterations"`
	// SimIPCBefore/After are the scheduling pass's cost-model IPCs of
	// the steady segment (recorded vs adopted order) and SchedHeuristic
	// the winning policy — scheduled mode only.
	SimIPCBefore   float64 `json:"sim_ipc_before,omitempty"`
	SimIPCAfter    float64 `json:"sim_ipc_after,omitempty"`
	SchedHeuristic string  `json:"sched_heuristic,omitempty"`
}

// DecodeBenchReport is the BENCH_decode.json shape.
type DecodeBenchReport struct {
	GoVersion string           `json:"go_version"`
	GOARCH    string           `json:"goarch"`
	MaxIters  int              `json:"turbo_max_iters"`
	BenchTime string           `json:"bench_time"`
	Rows      []DecodeBenchRow `json:"rows"`
}

// decodeBenchKs is the block-size spread of the JSON artifact: the
// smallest LTE size, the small-K band where cross-block packing pays
// (104, 208, 512), a mid size and the largest.
var decodeBenchKs = []int{40, 104, 208, 512, 2048, 6144}

const decodeBenchIters = 4

// benchWords builds nb noiseless full-amplitude words for code c.
func benchWords(c *turbo.Code, nb int, seed int64) ([]*turbo.LLRWord, error) {
	rng := rand.New(rand.NewSource(seed))
	words := make([]*turbo.LLRWord, nb)
	for b := 0; b < nb; b++ {
		bits := make([]byte, c.K)
		for i := range bits {
			bits[i] = byte(rng.Intn(2))
		}
		cw, err := c.Encode(bits)
		if err != nil {
			return nil, err
		}
		w := turbo.NewLLRWord(c.K)
		w.FromHard(cw, 32)
		words[b] = w
	}
	return words, nil
}

// RunDecodeBench measures every (mode, width, K) cell. quick shrinks
// the K spread and the per-cell bench time for CI.
func RunDecodeBench(quick bool) (*DecodeBenchReport, error) {
	ks := decodeBenchKs
	benchtime := "200ms"
	if quick {
		ks = []int{104, 512}
		benchtime = "50ms"
	}
	rep := &DecodeBenchReport{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		MaxIters:  decodeBenchIters,
		BenchTime: benchtime,
	}
	if err := flagSet("test.benchtime", benchtime); err != nil {
		return nil, err
	}
	for _, w := range []simd.Width{simd.W128, simd.W256, simd.W512} {
		for _, k := range ks {
			for _, mode := range []string{"scheduled", "packed", "compiled", "steady", "fresh"} {
				row, err := runDecodeCell(mode, w, k)
				if err != nil {
					return nil, err
				}
				rep.Rows = append(rep.Rows, row)
			}
		}
	}
	return rep, nil
}

// runDecodeCell benchmarks one (mode, width, K) combination.
func runDecodeCell(mode string, w simd.Width, k int) (DecodeBenchRow, error) {
	nb := turbo.BlocksPerRegister(w)
	c, err := turbo.NewCode(k)
	if err != nil {
		return DecodeBenchRow{}, err
	}
	words, err := benchWords(c, nb, 7)
	if err != nil {
		return DecodeBenchRow{}, err
	}
	var inner error
	var res testing.BenchmarkResult
	var sched *turbo.BatchDecoder
	switch mode {
	case "scheduled", "packed", "compiled", "steady":
		bd := turbo.NewBatchDecoder(w, core.StrategyAPCM, 32<<20)
		sched = bd
		bd.MaxIters = decodeBenchIters
		// "scheduled" and "packed" keep the cross-block SoA stream
		// (differing only in the scheduling pass, so the pair isolates
		// the reorder's wall-clock cost); "compiled" and "steady" pin
		// Packed=false so they stay the per-block baseline the packing
		// is measured against. "steady" additionally pins the
		// interpreter so the compiled/steady pair isolates exactly the
		// replay win over the same cache.
		bd.Packed = mode == "packed" || mode == "scheduled"
		bd.Compile = mode != "steady"
		bd.Schedule = mode == "scheduled"
		// Two warm-ups: plan build, then (compiling modes) the
		// recording decode; the measured loop starts on the hot path.
		for i := 0; i < 2; i++ {
			if _, _, err := bd.Decode(k, words); err != nil {
				return DecodeBenchRow{}, err
			}
		}
		if bd.Compile && bd.ProgramStats().CompiledPlans == 0 {
			return DecodeBenchRow{}, fmt.Errorf("bench: warm-up did not compile a program for K=%d at %v", k, w)
		}
		res = testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := bd.Decode(k, words); err != nil {
					inner = err
					b.Fatal(err)
				}
			}
		})
	case "fresh":
		eng := simd.NewEngine(w, simd.NewMemory(32<<20), nil)
		ar := core.ByStrategy(core.StrategyAPCM)
		res = testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng.Mem.AllocReset()
				d := turbo.NewMultiSIMDDecoder(c)
				d.MaxIters = decodeBenchIters
				if _, _, err := d.Decode(eng, ar, words); err != nil {
					inner = err
					b.Fatal(err)
				}
			}
		})
	default:
		return DecodeBenchRow{}, fmt.Errorf("bench: unknown decode mode %q", mode)
	}
	if inner != nil {
		return DecodeBenchRow{}, inner
	}
	row := DecodeBenchRow{
		Mode: mode, Width: w.String(), K: k, Lanes: nb,
		NsPerOp:    float64(res.T.Nanoseconds()) / float64(res.N),
		BPerOp:     res.AllocedBytesPerOp(),
		AllocsOp:   res.AllocsPerOp(),
		Iterations: res.N,
	}
	if mode == "scheduled" {
		if prog := sched.PlanProgram(k, true); prog != nil {
			info := prog.Sched()
			row.SimIPCBefore = info.IPCBefore[program.SegSteady]
			row.SimIPCAfter = info.IPCAfter[program.SegSteady]
			row.SchedHeuristic = info.Heuristic[program.SegSteady]
		}
	}
	if row.NsPerOp > 0 {
		// Mb of decoded information bits per second of wall-clock.
		row.GoodputMbps = float64(k*nb) / (row.NsPerOp / 1e3)
	}
	return row, nil
}

// WriteDecodeBenchJSON runs the decode benchmark and writes the report.
func WriteDecodeBenchJSON(w io.Writer, quick bool) error {
	rep, err := RunDecodeBench(quick)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func init() {
	register(Experiment{
		ID:    "decode-alloc",
		Title: "Steady-state decode: pooled plan cache vs per-batch rebuild (ns/op, allocs/op)",
		Run: func(w io.Writer, o Options) error {
			rep, err := RunDecodeBench(o.Quick)
			if err != nil {
				return err
			}
			t := newTable("mode", "width", "K", "ns/op", "B/op", "allocs/op", "goodput Mb/s", "sim IPC")
			for _, r := range rep.Rows {
				ipc := ""
				if r.SimIPCAfter > 0 {
					ipc = fmt.Sprintf("%.4f->%.4f (%s)", r.SimIPCBefore, r.SimIPCAfter, r.SchedHeuristic)
				}
				t.addf("%s|%s|%d|%.0f|%d|%d|%.2f|%s",
					r.Mode, r.Width, r.K, r.NsPerOp, r.BPerOp, r.AllocsOp, r.GoodputMbps, ipc)
			}
			t.write(w)
			return nil
		},
	})
}
