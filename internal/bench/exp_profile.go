package bench

import (
	"fmt"
	"io"

	"vransim/internal/core"
	"vransim/internal/pipeline"
	"vransim/internal/simd"
	"vransim/internal/transport"
	"vransim/internal/uarch"
)

// moduleOf maps a pipeline stage to the module labels of Figures 3-6.
func moduleOf(stage string) string {
	switch stage {
	case "arrangement", "gamma", "alpha", "beta+ext", "ext", "interleave", "init":
		return "Turbo Decoding"
	case "turboenc":
		return "Turbo Encoding"
	case "descramble", "scramble":
		return "Scrambling"
	case "ratematch":
		return "Rate Matching"
	case "dci":
		return "DCI"
	case "ofdm":
		return "OFDM"
	case "demod", "mod":
		return "Modulation"
	case "l2", "gtp":
		return "L2+EPC"
	}
	return stage
}

// moduleStat is the per-module aggregate of Figures 3-6.
type moduleStat struct {
	name   string
	insts  int
	cycles int64
	td     uarch.TopDown
}

func aggregateModules(stages []pipeline.StageTime) []moduleStat {
	order := []string{}
	agg := map[string]*moduleStat{}
	for _, st := range stages {
		name := moduleOf(st.Name)
		m, ok := agg[name]
		if !ok {
			m = &moduleStat{name: name}
			agg[name] = m
			order = append(order, name)
		}
		w := float64(st.Cycles)
		tot := float64(m.cycles) + w
		if tot > 0 {
			blend := func(old, add float64) float64 {
				return (old*float64(m.cycles) + add*w) / tot
			}
			m.td = uarch.TopDown{
				Retiring:      blend(m.td.Retiring, st.TD.Retiring),
				FrontendBound: blend(m.td.FrontendBound, st.TD.FrontendBound),
				BadSpec:       blend(m.td.BadSpec, st.TD.BadSpec),
				BackendBound:  blend(m.td.BackendBound, st.TD.BackendBound),
				CoreBound:     blend(m.td.CoreBound, st.TD.CoreBound),
				MemoryBound:   blend(m.td.MemoryBound, st.TD.MemoryBound),
			}
		}
		m.insts += st.Insts
		m.cycles += st.Cycles
	}
	out := make([]moduleStat, 0, len(order))
	for _, n := range order {
		out = append(out, *agg[n])
	}
	return out
}

func profileConfig(o Options) (int, int) {
	if o.Quick {
		return 128, 1 // packet bytes, iterations
	}
	return 512, 2
}

func runProfile(w io.Writer, o Options, downlink bool) error {
	bytes, iters := profileConfig(o)
	cfg := pipeline.DefaultConfig(simd.W128, core.StrategyExtract, transport.UDP, bytes)
	cfg.Iters = iters
	var res *pipeline.Result
	var err error
	if downlink {
		res, err = pipeline.RunDownlink(cfg)
	} else {
		res, err = pipeline.RunUplink(cfg)
	}
	if err != nil {
		return err
	}
	mods := aggregateModules(res.Stages)
	var total int64
	for _, m := range mods {
		total += m.cycles
	}
	t := newTable("module", "CPU time", "IPC", "retiring", "frontend", "bad-spec", "backend")
	for _, m := range mods {
		ipc := 0.0
		if m.cycles > 0 {
			ipc = float64(m.insts) / float64(m.cycles)
		}
		t.add(m.name, pct(float64(m.cycles)/float64(total)), fmt.Sprintf("%.2f", ipc),
			pct(m.td.Retiring), pct(m.td.FrontendBound), pct(m.td.BadSpec), pct(m.td.BackendBound))
	}
	t.write(w)
	fmt.Fprintf(w, "  (packet=%dB, iters=%d, %s, original mechanism, total %d cycles)\n",
		bytes, iters, simd.W128, total)
	return nil
}

func init() {
	register(Experiment{
		ID:    "fig3",
		Title: "CPU utilization and IPC per module, uplink (Figure 3)",
		Run: func(w io.Writer, o Options) error {
			return runProfile(w, o, false)
		},
	})
	register(Experiment{
		ID:    "fig4",
		Title: "CPU utilization and IPC per module, downlink (Figure 4)",
		Run: func(w io.Writer, o Options) error {
			return runProfile(w, o, true)
		},
	})
	register(Experiment{
		ID:    "fig5",
		Title: "Top-down micro-architecture breakdown per module, uplink (Figure 5)",
		Run: func(w io.Writer, o Options) error {
			return runTopDown(w, o, false)
		},
	})
	register(Experiment{
		ID:    "fig6",
		Title: "Top-down micro-architecture breakdown per module, downlink (Figure 6)",
		Run: func(w io.Writer, o Options) error {
			return runTopDown(w, o, true)
		},
	})
}

func runTopDown(w io.Writer, o Options, downlink bool) error {
	bytes, iters := profileConfig(o)
	cfg := pipeline.DefaultConfig(simd.W128, core.StrategyExtract, transport.UDP, bytes)
	cfg.Iters = iters
	var res *pipeline.Result
	var err error
	if downlink {
		res, err = pipeline.RunDownlink(cfg)
	} else {
		res, err = pipeline.RunUplink(cfg)
	}
	if err != nil {
		return err
	}
	t := newTable("module", "retiring", "frontend", "bad-spec", "backend", "core-bound", "mem-bound")
	for _, m := range aggregateModules(res.Stages) {
		t.add(m.name, pct(m.td.Retiring), pct(m.td.FrontendBound), pct(m.td.BadSpec),
			pct(m.td.BackendBound), pct(m.td.CoreBound), pct(m.td.MemoryBound))
	}
	t.write(w)
	return nil
}
