package bench

import (
	"fmt"
	"io"

	"vransim/internal/core"
	"vransim/internal/simd"
	"vransim/internal/uarch"
)

// arrangeN picks the arrangement-kernel workload size.
func arrangeN(o Options) int {
	if o.Quick {
		return 2048
	}
	return 8192
}

func init() {
	register(Experiment{
		ID:    "fig8",
		Title: "Register<->L1 memory bandwidth utilization of the data arrangement (Figure 8b)",
		Run: func(w io.Writer, o Options) error {
			n := arrangeN(o)
			p := uarch.WimpyPlatform()
			t := newTable("width", "mechanism", "store BW (bits/cyc)", "peak (bits)", "utilization", "gain vs original")
			for _, width := range simd.Widths {
				var base float64
				for _, s := range []core.Strategy{core.StrategyExtract, core.StrategyAPCM} {
					r := SimKernel(ArrangeWorkload(s, width, n), p)
					bw := r.StoreBitsPerCycle()
					gain := "1.0x"
					if s == core.StrategyExtract {
						base = bw
					} else if base > 0 {
						gain = fmt.Sprintf("%.1fx", bw/base)
					}
					t.add(width.String(), core.ByStrategy(s).Name(),
						fmt.Sprintf("%.1f", bw), fmt.Sprintf("%d", width.Bits()),
						pct(r.BandwidthUtilization(width.Bits())), gain)
				}
			}
			t.write(w)
			fmt.Fprintln(w, "  (paper: ~16 bits/cycle original at every width; 67/134/270 bits/cycle under APCM => 4X-16X)")
			return nil
		},
	})

	register(Experiment{
		ID:    "fig15",
		Title: "Micro-architecture breakdown and IPC of the arrangement, original vs APCM (Figure 15)",
		Run: func(w io.Writer, o Options) error {
			n := arrangeN(o)
			p := uarch.WimpyPlatform()
			t := newTable("width", "mechanism", "IPC", "retiring", "backend", "core-bound", "mem-bound")
			for _, width := range simd.Widths {
				for _, s := range []core.Strategy{core.StrategyExtract, core.StrategyAPCM} {
					r := SimKernel(ArrangeWorkload(s, width, n), p)
					t.add(width.String(), core.ByStrategy(s).Name(),
						fmt.Sprintf("%.2f", r.IPC()), pct(r.TopDown.Retiring),
						pct(r.TopDown.BackendBound), pct(r.TopDown.CoreBound),
						pct(r.TopDown.MemoryBound))
				}
			}
			t.write(w)
			fmt.Fprintln(w, "  (paper: retiring 55.6/52/48% -> 97/96/95%; backend 44.4/48.2/52% -> 3/4/5%; IPC 1.2/1.1/1.05 -> 3.6/3.5/3.3)")
			return nil
		},
	})

	register(Experiment{
		ID:    "fig14",
		Title: "Arrangement vs calculation processing time at the 1500B workload (Figure 14)",
		Run: func(w io.Writer, o Options) error {
			k, iters := 6144, 1
			if o.Quick {
				k = 1024
			}
			t := newTable("width", "mechanism", "arrangement us", "calculation us", "arr share", "arr vs SSE128-orig")
			var baseArr [2]float64 // per mechanism at W128
			for _, width := range simd.Widths {
				for mi, s := range []core.Strategy{core.StrategyExtract, core.StrategyAPCM} {
					phases, err := DecodePhases(s, width, k, iters)
					if err != nil {
						return err
					}
					arrUs := phases.Us("arrangement")
					calcUs := phases.Us("gamma") + phases.Us("alpha") + phases.Us("beta+ext") + phases.Us("ext")
					if width == simd.W128 {
						baseArr[mi] = arrUs
					}
					rel := "1.00x"
					if baseArr[mi] > 0 {
						rel = fmt.Sprintf("%.2fx", arrUs/baseArr[mi])
					}
					t.add(width.String(), core.ByStrategy(s).Name(),
						fmt.Sprintf("%.1f", arrUs), fmt.Sprintf("%.1f", calcUs),
						pct(arrUs/(arrUs+calcUs)), rel)
				}
			}
			t.write(w)
			fmt.Fprintln(w, "  (paper: APCM cuts arrangement time 67/82/92%; original *degrades* +2.2% on ymm, +6.4% on zmm; APCM scales -49%/-51%)")
			// Direct reduction summary.
			for _, width := range simd.Widths {
				po, err := DecodePhases(core.StrategyExtract, width, k, iters)
				if err != nil {
					return err
				}
				pa, err := DecodePhases(core.StrategyAPCM, width, k, iters)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "  %s: arrangement CPU time reduction %.0f%%\n",
					width, 100*(1-pa.Us("arrangement")/po.Us("arrangement")))
			}
			return nil
		},
	})
}
