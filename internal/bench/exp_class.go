package bench

import (
	"fmt"
	"io"

	"vransim/internal/cache"
	"vransim/internal/simd"
	"vransim/internal/uarch"
)

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Cache size and frequency in wimpy and beefy node (Table 1)",
		Run: func(w io.Writer, o Options) error {
			t := newTable("", "Wimpy Node", "Beefy Node")
			wn, bn := cache.WimpyNode, cache.BeefyNode
			t.add("L1 cache", fmt.Sprintf("%dKB", wn.L1Size>>10), fmt.Sprintf("%dKB", bn.L1Size>>10))
			t.add("L2 cache", fmt.Sprintf("%dKB", wn.L2Size>>10), fmt.Sprintf("%dKB", bn.L2Size>>10))
			t.add("L3 cache", fmt.Sprintf("%dKB", wn.L3Size>>10), fmt.Sprintf("%dKB", bn.L3Size>>10))
			t.add("frequency", fmt.Sprintf("%.1fGHz", uarch.WimpyPlatform().Core.FrequencyGHz),
				fmt.Sprintf("%.1fGHz", uarch.BeefyPlatform().Core.FrequencyGHz))
			t.write(w)
			return nil
		},
	})

	register(Experiment{
		ID:    "fig7",
		Title: "IPC, memory bound and core bound per instruction class, wimpy vs beefy (Figure 7)",
		Run: func(w io.Writer, o Options) error {
			// The touched working set (~2 cache lines per group for the
			// calculation kernels) sits between the two nodes' L2
			// capacities: the wimpy node serves it from L3 through its
			// ten MSHRs (memory bound), the beefy node from its big L2
			// (hidden) — the Table 1 contrast of Figure 7.
			n := 40_000
			ws := 4 << 20
			if o.Quick {
				n, ws = 20_000, 4<<20
			}
			kinds := []KernelKind{KernelPAdds, KernelPSubs, KernelPMax, KernelPExtract, KernelScalarOFDM}
			t := newTable("kernel", "node", "IPC", "retiring", "backend", "core-bound", "mem-bound")
			for _, k := range kinds {
				insts := BuildKernel(k, simd.W128, n, ws)
				for _, p := range []uarch.Platform{uarch.WimpyPlatform(), uarch.BeefyPlatform()} {
					// Warm pass then measured pass on the same
					// hierarchy: steady-state working-set behaviour.
					h := cache.NewHierarchy(p.Caches)
					sim := uarch.NewSimulator(p.Core, h)
					sim.Run(insts)
					r := sim.Run(insts)
					t.add(k.String(), p.Caches.Name, fmt.Sprintf("%.2f", r.IPC()),
						pct(r.TopDown.Retiring), pct(r.TopDown.BackendBound),
						pct(r.TopDown.CoreBound), pct(r.TopDown.MemoryBound))
				}
			}
			t.write(w)
			fmt.Fprintf(w, "  (touched working set spills the wimpy caches, fits the beefy node; arena %d KB)\n", ws>>10)
			return nil
		},
	})
}
