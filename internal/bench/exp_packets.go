package bench

import (
	"fmt"
	"io"
	"math"

	"vransim/internal/core"
	"vransim/internal/pipeline"
	"vransim/internal/simd"
	"vransim/internal/transport"
)

func init() {
	register(Experiment{
		ID:    "fig13",
		Title: "Per-packet processing time vs packet size, UDP and TCP, original vs APCM (Figure 13)",
		Run: func(w io.Writer, o Options) error {
			sizes := transport.StandardPacketSizes
			protos := []transport.Proto{transport.UDP, transport.TCP}
			iters := 2
			if o.Quick {
				sizes = []int{256, 1024}
				protos = []transport.Proto{transport.UDP}
				iters = 1
			}
			t := newTable("proto", "packet", "original us", "apcm us", "reduction")
			for _, proto := range protos {
				for _, size := range sizes {
					var us [2]float64
					for i, s := range []core.Strategy{core.StrategyExtract, core.StrategyAPCM} {
						cfg := pipeline.DefaultConfig(simd.W128, s, proto, size)
						cfg.Iters = iters
						res, err := pipeline.RunUplink(cfg)
						if err != nil {
							return err
						}
						if !res.PayloadOK {
							return fmt.Errorf("fig13: %v %dB payload corrupted", proto, size)
						}
						us[i] = res.TotalUs
					}
					t.add(proto.String(), fmt.Sprintf("%dB", size),
						fmt.Sprintf("%.1f", us[0]), fmt.Sprintf("%.1f", us[1]),
						pct(1-us[1]/us[0]))
				}
			}
			t.write(w)

			// Width sweep at the largest size: the paper's "12%
			// (SSE128) to 20% (AVX512)" claim.
			widths := simd.Widths
			size := sizes[len(sizes)-1]
			t2 := newTable("width", "original us", "apcm us", "reduction")
			for _, width := range widths {
				var us [2]float64
				for i, s := range []core.Strategy{core.StrategyExtract, core.StrategyAPCM} {
					cfg := pipeline.DefaultConfig(width, s, transport.UDP, size)
					cfg.Iters = iters
					res, err := pipeline.RunUplink(cfg)
					if err != nil {
						return err
					}
					us[i] = res.TotalUs
				}
				t2.add(width.String(), fmt.Sprintf("%.1f", us[0]), fmt.Sprintf("%.1f", us[1]), pct(1-us[1]/us[0]))
			}
			fmt.Fprintf(w, "\n  width sweep at %dB:\n", size)
			t2.write(w)
			fmt.Fprintln(w, "  (paper: APCM reduces e2e processing 12% at SSE128 up to 20% at AVX512)")
			return nil
		},
	})

	register(Experiment{
		ID:    "fig16",
		Title: "Bandwidth per core and cores required for 300 Mbps (Figure 16)",
		Run: func(w io.Writer, o Options) error {
			size := 1500
			iters := 2
			if o.Quick {
				size, iters = 512, 1
			}
			const targetMbps = 300.0
			t := newTable("width", "mechanism", "Mbps/core", "cores for 300 Mbps")
			for _, width := range simd.Widths {
				for _, s := range []core.Strategy{core.StrategyExtract, core.StrategyAPCM} {
					cfg := pipeline.DefaultConfig(width, s, transport.UDP, size)
					cfg.Iters = iters
					res, err := pipeline.RunUplink(cfg)
					if err != nil {
						return err
					}
					mbps := float64(size*8) / res.TotalUs // bits/us == Mbps
					t.add(width.String(), core.ByStrategy(s).Name(),
						fmt.Sprintf("%.1f", mbps), fmt.Sprintf("%d", int(math.Ceil(targetMbps/mbps))))
				}
			}
			t.write(w)
			fmt.Fprintln(w, "  (paper: 16.4->18.5, 21.6->26.0, 25.5->32.9 Mbps/core; 18->16, 14->12, 12->9 cores)")
			return nil
		},
	})
}
