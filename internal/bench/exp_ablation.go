package bench

import (
	"fmt"
	"io"

	"vransim/internal/cache"
	"vransim/internal/core"
	"vransim/internal/simd"
	"vransim/internal/trace"
	"vransim/internal/uarch"
)

func init() {
	register(Experiment{
		ID:    "abl-variants",
		Title: "Ablation: APCM rotate-mimic vs explicit rotate vs natural-order shuffle",
		Run: func(w io.Writer, o Options) error {
			n := arrangeN(o)
			p := uarch.WimpyPlatform()
			t := newTable("width", "variant", "cycles", "IPC", "store BW (bits/cyc)")
			for _, width := range simd.Widths {
				for _, s := range []core.Strategy{
					core.StrategyExtract, core.StrategyAPCM,
					core.StrategyAPCMRotate, core.StrategyAPCMShuffle,
					core.StrategyShuffle,
				} {
					r := SimKernel(ArrangeWorkload(s, width, n), p)
					t.add(width.String(), core.ByStrategy(s).Name(),
						fmt.Sprintf("%d", r.Cycles), fmt.Sprintf("%.2f", r.IPC()),
						fmt.Sprintf("%.1f", r.StoreBitsPerCycle()))
				}
			}
			t.write(w)
			fmt.Fprintln(w, "  (the Figure 12 mimic costs c extra 2-byte stores per group;")
			fmt.Fprintln(w, "   an explicit lane-rotate or vpermw would trade them for shuffle-port µops)")
			return nil
		},
	})

	register(Experiment{
		ID:    "abl-ports",
		Title: "Ablation: port-count sensitivity of both mechanisms",
		Run: func(w io.Writer, o Options) error {
			n := arrangeN(o)
			base := uarch.SkylakeServer()
			commit2 := base
			commit2.StoreCommitPerCycle = 2
			vALU1 := base.WithPorts(trace.VecALU, []int{0}).WithPorts(trace.VecShuffle, []int{0})
			wide := base
			wide.IssueWidth = 6
			wide.PortsByClass[trace.VecALU] = []int{0, 1, 2, 3}
			wide.PortsByClass[trace.VecShuffle] = []int{0, 1, 2, 3}
			configs := []struct {
				name string
				cfg  uarch.Config
			}{
				{"paper model", base},
				{"2 L1 store commits/cycle", commit2},
				{"1 vector-ALU port", vALU1},
				{"6-wide issue, 4 vALU ports", wide},
			}
			t := newTable("core config", "mechanism", "cycles (W128)", "IPC")
			for _, c := range configs {
				for _, s := range []core.Strategy{core.StrategyExtract, core.StrategyAPCM} {
					insts := ArrangeWorkload(s, simd.W128, n)
					h := cache.NewHierarchy(cache.WimpyNode)
					r := uarch.NewSimulator(c.cfg, h).Run(insts)
					t.add(c.name, core.ByStrategy(s).Name(),
						fmt.Sprintf("%d", r.Cycles), fmt.Sprintf("%.2f", r.IPC()))
				}
			}
			t.write(w)
			fmt.Fprintln(w, "  (the original mechanism responds only to the store/L1-commit path; APCM only")
			fmt.Fprintln(w, "   to vector-ALU/issue resources — the paper's diagnosis, inverted as a test)")
			return nil
		},
	})

	register(Experiment{
		ID:    "abl-rearrange",
		Title: "Ablation: arrangement per MAP call vs one-shot arrangement",
		Run: func(w io.Writer, o Options) error {
			k := 1024
			if o.Quick {
				k = 512
			}
			t := newTable("policy", "mechanism", "arrangement us", "decode total us", "arr share")
			for _, s := range []core.Strategy{core.StrategyExtract, core.StrategyAPCM} {
				for _, per := range []bool{true, false} {
					ph, err := decodePhasesPolicy(s, simd.W128, k, 2, per)
					if err != nil {
						return err
					}
					policy := "one-shot"
					if per {
						policy = "per half-iter"
					}
					arr := ph.Us("arrangement")
					t.add(policy, core.ByStrategy(s).Name(),
						fmt.Sprintf("%.1f", arr), fmt.Sprintf("%.1f", ph.TotalUs()),
						pct(arr/ph.TotalUs()))
				}
			}
			t.write(w)
			return nil
		},
	})

	register(Experiment{
		ID:    "abl-cache",
		Title: "Ablation: both mechanisms on the wimpy vs beefy hierarchy",
		Run: func(w io.Writer, o Options) error {
			n := arrangeN(o)
			t := newTable("node", "mechanism", "cycles", "IPC", "mem-bound")
			for _, p := range []uarch.Platform{uarch.WimpyPlatform(), uarch.BeefyPlatform()} {
				for _, s := range []core.Strategy{core.StrategyExtract, core.StrategyAPCM} {
					r := SimKernel(ArrangeWorkload(s, simd.W128, n), p)
					t.add(p.Caches.Name, core.ByStrategy(s).Name(),
						fmt.Sprintf("%d", r.Cycles), fmt.Sprintf("%.2f", r.IPC()),
						pct(r.TopDown.MemoryBound))
				}
			}
			t.write(w)
			fmt.Fprintln(w, "  (arrangement is core bound, so bigger caches barely help — the Section 4.1 finding)")
			return nil
		},
	})
}
