// Trace-overhead benchmark: the harness behind cmd/vranbench
// -tracejson and the committed BENCH_trace.json. It drives the same
// saturating block load through a two-shard pipe fleet with tracing
// off and with every block traced (Sample=1, the worst case), and
// reports the elapsed-time overhead the trace path adds — frame
// extension encode/decode, span accumulation, the shipping
// backchannel and the coordinator-side merge. The reps interleave
// traced/untraced and the min elapsed per arm is compared, so a
// one-off scheduler stall cannot fake (or mask) an overhead.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"vransim/internal/core"
	"vransim/internal/ran"
	"vransim/internal/shard"
	"vransim/internal/simd"
)

// TraceBenchArm is one measurement arm (traced or untraced).
type TraceBenchArm struct {
	Traced       bool    `json:"traced"`
	Reps         int     `json:"reps"`
	MinElapsedMs float64 `json:"min_elapsed_ms"`
	Delivered    uint64  `json:"delivered_blocks"`
	GoodputMbps  float64 `json:"goodput_mbps"`
	// Spans/ShipDropped only populate on the traced arm.
	Spans       uint64 `json:"spans,omitempty"`
	ShipDropped uint64 `json:"ship_dropped,omitempty"`
}

// TraceHopRow is one hop's aggregate from the traced arm's last rep.
type TraceHopRow struct {
	Hop    string  `json:"hop"`
	Spans  uint64  `json:"spans"`
	MeanUs float64 `json:"mean_us"`
	P99Us  float64 `json:"p99_us"`
}

// TraceBenchReport is the BENCH_trace.json shape.
type TraceBenchReport struct {
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`
	K         int    `json:"k"`
	Blocks    int    `json:"blocks"`
	Shards    int    `json:"shards"`
	Workers   int    `json:"workers_per_shard"`

	Untraced TraceBenchArm `json:"untraced"`
	Traced   TraceBenchArm `json:"traced"`
	// OverheadPct compares the min elapsed of each arm:
	// 100 * (traced - untraced) / untraced.
	OverheadPct float64       `json:"overhead_pct"`
	Hops        []TraceHopRow `json:"hops"`
}

// RunTraceBench measures the tracing overhead on a two-shard fleet.
// quick shrinks blocks and reps for CI.
func RunTraceBench(quick bool) (*TraceBenchReport, error) {
	const (
		k       = 512
		cells   = 4
		shards  = 2
		workers = 2
	)
	blocks, reps := 8192, 5
	if quick {
		blocks, reps = 2048, 3
	}
	rep := &TraceBenchReport{
		GoVersion: runtime.Version(), GOARCH: runtime.GOARCH,
		K: k, Blocks: blocks, Shards: shards, Workers: workers,
		Untraced: TraceBenchArm{Reps: reps},
		Traced:   TraceBenchArm{Traced: true, Reps: reps},
	}
	// Interleave the arms so ambient machine noise hits both equally.
	for i := 0; i < reps; i++ {
		for _, traced := range [...]bool{false, true} {
			res, err := runTraceRep(traced, shards, cells, workers, k, blocks)
			if err != nil {
				return nil, err
			}
			arm := &rep.Untraced
			if traced {
				arm = &rep.Traced
			}
			if arm.MinElapsedMs == 0 || res.elapsedMs < arm.MinElapsedMs {
				arm.MinElapsedMs = res.elapsedMs
				arm.Delivered = res.delivered
				arm.GoodputMbps = res.goodput
			}
			if traced {
				arm.Spans = res.spans
				arm.ShipDropped = res.shipDropped
				rep.Hops = res.hops
			}
		}
	}
	if rep.Untraced.MinElapsedMs > 0 {
		rep.OverheadPct = 100 * (rep.Traced.MinElapsedMs - rep.Untraced.MinElapsedMs) / rep.Untraced.MinElapsedMs
	}
	return rep, nil
}

type traceRepResult struct {
	elapsedMs   float64
	delivered   uint64
	goodput     float64
	spans       uint64
	shipDropped uint64
	hops        []TraceHopRow
}

// runTraceRep drives one rep of the block load through a fresh fleet.
func runTraceRep(traced bool, shards_, cells, workers, k, blocks int) (traceRepResult, error) {
	pool, err := shard.NewCRCPool(k, 64, 24, rand.New(rand.NewSource(7)))
	if err != nil {
		return traceRepResult{}, err
	}
	ccfg := shard.Config{Cells: cells, Deadline: 30 * time.Second}
	if traced {
		ccfg.Trace = shard.TraceConfig{Sample: 1}
	}
	f, err := shard.NewFleet(shard.FleetConfig{
		Coordinator: ccfg,
		Runtime: func(int) ran.Config {
			cfg := ran.DefaultConfig(simd.W256, core.StrategyAPCM)
			cfg.Cells = cells
			cfg.Workers = workers
			cfg.QueueDepth = blocks
			cfg.BatchWindow = 200 * time.Microsecond
			cfg.Deadline = 30 * time.Second
			cfg.AdmissionGuard = false
			cfg.CheckCRC = shard.ContentCRC24B()
			return cfg
		},
		Shards: shards_,
	})
	if err != nil {
		return traceRepResult{}, err
	}
	start := time.Now()
	for i := 0; i < blocks; i++ {
		cell := i % cells
		w, _ := pool.Get(i)
		if err := f.Coord.Submit(cell, (i/cells)%8, (i/(cells*8))%8, pool.K, w); err != nil {
			f.Stop()
			return traceRepResult{}, err
		}
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		agg, _, err := f.Coord.FleetSnapshot()
		if err != nil {
			f.Stop()
			return traceRepResult{}, err
		}
		if agg.Delivered+agg.Dropped() >= uint64(blocks) && agg.RetryDepth == 0 {
			break
		}
		if time.Now().After(deadline) {
			f.Stop()
			return traceRepResult{}, fmt.Errorf("bench: trace rep (traced=%v) did not drain %d blocks", traced, blocks)
		}
		time.Sleep(2 * time.Millisecond)
	}
	elapsed := time.Since(start)
	res := traceRepResult{elapsedMs: float64(elapsed.Nanoseconds()) / 1e6}
	if traced {
		col := f.Coord.Collector()
		// Give the 2ms shipper flush a moment to land the tail batch
		// before the teardown snapshot.
		waitFor := time.Now().Add(time.Second)
		for col.SpanCount() < uint64(blocks) && time.Now().Before(waitFor) {
			time.Sleep(2 * time.Millisecond)
		}
		res.spans = col.SpanCount()
		for _, h := range col.HopSummaries() {
			if h.Count == 0 {
				continue
			}
			res.hops = append(res.hops, TraceHopRow{
				Hop: h.Stage, Spans: h.Count,
				MeanUs: float64(h.Mean.Nanoseconds()) / 1e3,
				P99Us:  float64(h.P99.Nanoseconds()) / 1e3,
			})
		}
	}
	snaps, serveErrs := f.Stop()
	for _, err := range serveErrs {
		return traceRepResult{}, err
	}
	agg := shard.Aggregate(snaps)
	res.delivered = agg.Delivered
	res.goodput = agg.GoodputMbps
	return res, nil
}

// WriteTraceBenchJSON runs the trace benchmark and writes the report.
// When gatePct > 0 the run fails if the measured overhead exceeds it —
// the CI guard keeping full tracing within its latency budget.
func WriteTraceBenchJSON(w io.Writer, quick bool, gatePct float64) error {
	rep, err := RunTraceBench(quick)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if gatePct > 0 && rep.OverheadPct > gatePct {
		return fmt.Errorf("bench: trace overhead %.2f%% exceeds gate %.2f%% (untraced %.1fms, traced %.1fms)",
			rep.OverheadPct, gatePct, rep.Untraced.MinElapsedMs, rep.Traced.MinElapsedMs)
	}
	return nil
}
