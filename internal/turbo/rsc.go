// Package turbo implements the LTE-shaped rate-1/3 parallel concatenated
// convolutional code (turbo code): two 8-state recursive systematic
// convolutional encoders with transfer function G(D) = [1, g1(D)/g0(D)],
// g0(D) = 1 + D² + D³ (octal 13) and g1(D) = 1 + D + D³ (octal 15),
// coupled by a quadratic permutation polynomial (QPP) interleaver, plus
// max-log-MAP decoders in two builds: a plain-Go scalar reference and a
// SIMD-engine implementation whose gamma inputs come from the data
// arrangement process of internal/core — the code path the paper
// optimizes.
//
// Turbo decoding is the vRAN module the paper identifies as consuming
// more than 50% of pipeline CPU time, with the data arrangement feeding
// its gamma/alpha/beta/extrinsic kernels.
package turbo

// NumStates is the number of trellis states of each constituent encoder.
const NumStates = 8

// rscStep advances one constituent-encoder step: given the 3-bit state
// and the information bit u, it returns the next state and the parity
// bit. The recursion follows g0 = 1+D²+D³ (feedback taps on the last two
// registers) and g1 = 1+D+D³.
func rscStep(state, u int) (next, parity int) {
	d1, d2, d3 := (state>>2)&1, (state>>1)&1, state&1
	a := u ^ d2 ^ d3         // feedback: u XOR (D² + D³) taps
	parity = a ^ d1 ^ d3     // g1 = 1 + D + D³
	next = a<<2 | d1<<1 | d2 // shift register advance
	return next, parity
}

// rscFeedback returns the feedback bit of state: feeding u = feedback
// drives the register input a to zero, which is how the trellis is
// terminated.
func rscFeedback(state int) int {
	return (state>>1)&1 ^ state&1
}

// Trellis tabulates the branch structure used by the decoders. Branches
// are indexed by the *information bit* u.
type Trellis struct {
	// Next[s][u] is the successor of state s for information bit u.
	Next [NumStates][2]int
	// Parity[s][u] is the parity bit emitted on that branch.
	Parity [NumStates][2]int
	// Prev[s'][u] is the predecessor of s' reached with bit u; every
	// state has exactly one u=0 and one u=1 predecessor.
	Prev [NumStates][2]int
}

// NewTrellis builds the branch tables for the LTE constituent code.
func NewTrellis() *Trellis {
	t := &Trellis{}
	for s := 0; s < NumStates; s++ {
		for u := 0; u < 2; u++ {
			next, p := rscStep(s, u)
			t.Next[s][u] = next
			t.Parity[s][u] = p
			t.Prev[next][u] = s
		}
	}
	return t
}

// EncodeRSC runs one constituent encoder over bits (in-order), returning
// the parity sequence and, after trellis termination, the three
// (systematic, parity) tail bit pairs. The final state is always zero.
func EncodeRSC(bits []byte) (parity []byte, tailSys, tailPar [3]byte) {
	parity = make([]byte, len(bits))
	state := 0
	for i, u := range bits {
		var p int
		state, p = rscStep(state, int(u))
		parity[i] = byte(p)
	}
	for i := 0; i < 3; i++ {
		u := rscFeedback(state)
		var p int
		state, p = rscStep(state, u)
		tailSys[i] = byte(u)
		tailPar[i] = byte(p)
	}
	if state != 0 {
		panic("turbo: termination failed to reach state 0")
	}
	return parity, tailSys, tailPar
}
