package turbo

import (
	"math/rand"
	"testing"

	"vransim/internal/core"
	"vransim/internal/simd"
	"vransim/internal/trace"
)

func TestBlocksPerRegister(t *testing.T) {
	if BlocksPerRegister(simd.W128) != 1 || BlocksPerRegister(simd.W256) != 2 || BlocksPerRegister(simd.W512) != 4 {
		t.Error("blocks-per-register wrong")
	}
}

// buildWords encodes nb random blocks and returns their noisy LLR words
// plus the true payloads.
func buildWords(t testing.TB, c *Code, nb int, seed int64, noiseless bool) ([]*LLRWord, [][]byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	words := make([]*LLRWord, nb)
	truth := make([][]byte, nb)
	for b := 0; b < nb; b++ {
		bits := randomBits(rng, c.K)
		cw, err := c.Encode(bits)
		if err != nil {
			t.Fatal(err)
		}
		w := NewLLRWord(c.K)
		if noiseless {
			w.FromHard(cw, 32)
		} else {
			addAWGN(rng, w, cw, 2.0)
			clampWord(w, LLRLimit-1)
		}
		words[b] = w
		truth[b] = bits
	}
	return words, truth
}

func TestMultiDecodeNoiseless(t *testing.T) {
	for _, w := range simd.Widths {
		nb := BlocksPerRegister(w)
		c, err := NewCode(104)
		if err != nil {
			t.Fatal(err)
		}
		words, truth := buildWords(t, c, nb, 7, true)
		mem := simd.NewMemory(32 << 20)
		e := simd.NewEngine(w, mem, nil)
		d := NewMultiSIMDDecoder(c)
		d.MaxIters = 4
		got, _, err := d.Decode(e, core.ByStrategy(core.StrategyAPCM), words)
		if err != nil {
			t.Fatal(err)
		}
		for b := 0; b < nb; b++ {
			if !equalBits(got[b], truth[b]) {
				t.Errorf("%v block %d: noiseless multi-decode failed", w, b)
			}
		}
	}
}

// TestMultiMatchesSingle is the lane-independence property: decoding nb
// blocks in parallel lanes must produce exactly the bits the
// single-block SIMD decoder produces per block.
func TestMultiMatchesSingle(t *testing.T) {
	for _, w := range []simd.Width{simd.W256, simd.W512} {
		nb := BlocksPerRegister(w)
		c, err := NewCode(64)
		if err != nil {
			t.Fatal(err)
		}
		words, _ := buildWords(t, c, nb, 99, false)

		mem := simd.NewMemory(32 << 20)
		e := simd.NewEngine(w, mem, nil)
		md := NewMultiSIMDDecoder(c)
		md.MaxIters, md.EarlyExit = 3, false
		multi, _, err := md.Decode(e, core.ByStrategy(core.StrategyAPCM), words)
		if err != nil {
			t.Fatal(err)
		}

		for b := 0; b < nb; b++ {
			memS := simd.NewMemory(32 << 20)
			eS := simd.NewEngine(w, memS, nil)
			sd := NewSIMDDecoder(c)
			sd.MaxIters, sd.EarlyExit = 3, false
			in := sd.PrepareInput(eS, core.ByStrategy(core.StrategyAPCM), words[b])
			single, _, err := sd.Decode(eS, in)
			if err != nil {
				t.Fatal(err)
			}
			if !equalBits(multi[b], single) {
				t.Errorf("%v block %d: multi and single decoders disagree", w, b)
			}
		}
	}
}

func TestMultiDecodeValidation(t *testing.T) {
	c, _ := NewCode(40)
	d := NewMultiSIMDDecoder(c)
	e := simd.NewEngine(simd.W256, simd.NewMemory(1<<20), nil)
	three := []*LLRWord{NewLLRWord(40), NewLLRWord(40), NewLLRWord(40)}
	if _, _, err := d.Decode(e, core.ByStrategy(core.StrategyAPCM), three); err == nil {
		t.Error("expected too-many-blocks error")
	}
	if _, _, err := d.Decode(e, core.ByStrategy(core.StrategyAPCM), nil); err == nil {
		t.Error("expected empty-batch error")
	}
}

// TestMultiPartialBatch: a half-filled AVX512 batch still decodes its
// real blocks correctly.
func TestMultiPartialBatch(t *testing.T) {
	c, err := NewCode(64)
	if err != nil {
		t.Fatal(err)
	}
	words, truth := buildWords(t, c, 2, 3, true)
	e := simd.NewEngine(simd.W512, simd.NewMemory(32<<20), nil)
	d := NewMultiSIMDDecoder(c)
	d.MaxIters = 4
	got, _, err := d.Decode(e, core.ByStrategy(core.StrategyAPCM), words)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("returned %d blocks, want 2", len(got))
	}
	for b := range got {
		if !equalBits(got[b], truth[b]) {
			t.Errorf("partial batch block %d wrong", b)
		}
	}
}

// TestMultiAmortizesRecursion: the whole point — per-block µop count of
// the recursion phases must shrink as width grows.
func TestMultiAmortizesRecursion(t *testing.T) {
	perBlockRecursion := func(w simd.Width) float64 {
		nb := BlocksPerRegister(w)
		c, err := NewCode(104)
		if err != nil {
			t.Fatal(err)
		}
		words, _ := buildWords(t, c, nb, 5, true)
		mem := simd.NewMemory(32 << 20)
		e := simd.NewEngine(w, mem, trace.NewRecorder(1<<16))
		d := NewMultiSIMDDecoder(c)
		d.MaxIters, d.EarlyExit = 1, false
		if _, _, err := d.Decode(e, core.ByStrategy(core.StrategyAPCM), words); err != nil {
			t.Fatal(err)
		}
		var rec int
		for _, m := range d.Marks {
			if m.Name == "alpha" || m.Name == "beta+ext" {
				rec += m.Hi - m.Lo
			}
		}
		return float64(rec) / float64(nb)
	}
	u128 := perBlockRecursion(simd.W128)
	u256 := perBlockRecursion(simd.W256)
	u512 := perBlockRecursion(simd.W512)
	if !(u512 < u256 && u256 < u128) {
		t.Errorf("per-block recursion µops not decreasing with width: %.0f, %.0f, %.0f", u128, u256, u512)
	}
}
