package turbo

import (
	"fmt"

	"vransim/internal/core"
	"vransim/internal/simd"
	"vransim/internal/simd/program"
)

// This file is the warm-start side of the offline auto-tuner
// (internal/tune, cmd/vrantune): a tuned process installs serialized
// replay programs into the plan cache instead of recording, compiling
// and searching in-process, so a restart skips both the compile and the
// schedule search entirely. Compiled programs embed absolute arena
// addresses, so installation is only sound when this decoder's arena
// allocation replays the tuner's byte for byte — the per-plan arena
// cursor check below is the guard, and the program deserializer
// bounds-checks every access against the arena on top of it.

// Width reports the register width the decoder's engine runs at.
func (bd *BatchDecoder) Width() simd.Width { return bd.eng.W }

// Strategy reports the arrangement strategy the decoder was built with.
func (bd *BatchDecoder) Strategy() core.Strategy { return bd.ar.Strategy() }

// ArenaSize reports the engine arena's capacity in bytes. Plans tuned
// against a different arena size embed incompatible addresses, so
// warm-start compatibility checks it alongside width and strategy.
func (bd *BatchDecoder) ArenaSize() int { return bd.eng.Mem.Size() }

// ArenaOffset reports the arena's bump-allocation cursor — the value a
// tuner records after building each plan's state, and the value
// InstallPlan verifies before trusting a serialized program's embedded
// addresses.
func (bd *BatchDecoder) ArenaOffset() int64 { return bd.eng.Mem.AllocOffset() }

// PlanProgram returns the compiled replay program cached for
// (k, packed), or nil — introspection for tests and the tuner (the
// fuzz target reorders a real plan's segments through it).
func (bd *BatchDecoder) PlanProgram(k int, packed bool) *program.Program {
	if p, ok := bd.plans[planKey{k: k, packed: packed}]; ok {
		return p.prog
	}
	return nil
}

// InstallPlan builds the decode state for (k, packed) and installs a
// serialized replay program for it, verifying first that the arena
// cursor after the state build equals wantArena — the cursor the tuner
// recorded at the same point — and that the program passes structural
// and bounds validation for this arena. On any mismatch the plan stays
// uncompiled (the next Decode records and compiles in-process as
// usual) and an error describes what diverged.
//
// Plans must be installed in the order the tuner built them (the order
// its cache file lists), or the cursor check fails by design. If the
// arena cannot hold the grid, the mid-install eviction bumps
// Evictions and wipes earlier installs — callers must treat any
// Evictions delta across a warm-start as a full warm-start failure.
func (bd *BatchDecoder) InstallPlan(k int, packed bool, progBytes []byte, wantArena int64) error {
	p, err := bd.plan(planKey{k: k, packed: packed})
	if err != nil {
		return err
	}
	if p.st == nil && p.pst == nil {
		if err := bd.buildState(p, packed); err != nil {
			return err
		}
	}
	if got := bd.ArenaOffset(); got != wantArena {
		return fmt.Errorf("turbo: arena cursor %d after K=%d packed=%v state build, tuner recorded %d — allocation sequences diverged",
			got, k, packed, wantArena)
	}
	prog, err := program.UnmarshalProgram(progBytes, int64(bd.eng.Mem.Size()))
	if err != nil {
		return fmt.Errorf("turbo: plan K=%d packed=%v: %w", k, packed, err)
	}
	if prog.Width() != bd.eng.W {
		return fmt.Errorf("turbo: plan K=%d compiled for %v, decoder runs %v", k, prog.Width(), bd.eng.W)
	}
	p.prog = prog
	p.noCompile = false
	bd.warmPlans++
	return nil
}
