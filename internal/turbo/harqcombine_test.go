package turbo

import (
	"math/rand"
	"testing"

	"vransim/internal/core"
	"vransim/internal/simd"
)

// TestAccumulateBasics: element-wise saturating add over every stream,
// and a K mismatch is an error that leaves the destination untouched.
func TestAccumulateBasics(t *testing.T) {
	a := NewLLRWord(4)
	b := NewLLRWord(4)
	for i := 0; i < 4; i++ {
		a.Sys[i], b.Sys[i] = 10, 20
		a.P1[i], b.P1[i] = -10, -20
		a.P2[i], b.P2[i] = 5, -5
	}
	for i := 0; i < 3; i++ {
		a.TailSys[i], b.TailSys[i] = 100, 200
		a.TailP1[i], b.TailP1[i] = -100, -200
	}
	if err := a.Accumulate(b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if a.Sys[i] != 30 || a.P1[i] != -30 || a.P2[i] != 0 {
			t.Fatalf("pos %d: got %d/%d/%d, want 30/-30/0", i, a.Sys[i], a.P1[i], a.P2[i])
		}
	}
	for i := 0; i < 3; i++ {
		if a.TailSys[i] != LLRLimit-1 {
			t.Errorf("tail sys %d = %d, want saturated %d", i, a.TailSys[i], LLRLimit-1)
		}
		if a.TailP1[i] != -(LLRLimit - 1) {
			t.Errorf("tail p1 %d = %d, want saturated %d", i, a.TailP1[i], -(LLRLimit - 1))
		}
	}
	snap := a.Clone()
	if err := a.Accumulate(NewLLRWord(8)); err == nil {
		t.Fatal("K-mismatch accumulate accepted")
	}
	for i := range a.Sys {
		if a.Sys[i] != snap.Sys[i] {
			t.Fatal("failed accumulate mutated the destination")
		}
	}
}

// TestAccumulateStaysInRange: any sequence of accumulations of in-range
// words stays within ±(LLRLimit-1) — the channel-LLR bound every decoder
// build (SIMD and scalar) assumes of its input, which is what keeps
// combined-word decodes bit-identical across widths.
func TestAccumulateStaysInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	acc := randomWord(rng, 64)
	for n := 0; n < 8; n++ {
		if err := acc.Accumulate(randomWord(rng, 64)); err != nil {
			t.Fatal(err)
		}
	}
	check := func(v int16) {
		if v > LLRLimit-1 || v < -(LLRLimit-1) {
			t.Fatalf("accumulated sample %d out of channel-LLR range", v)
		}
	}
	for i := range acc.Sys {
		check(acc.Sys[i])
		check(acc.P1[i])
		check(acc.P2[i])
	}
	for i := 0; i < 3; i++ {
		check(acc.TailSys[i])
		check(acc.TailP1[i])
	}
}

// TestClone: the copy is deep — mutating it never reaches the source.
func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := randomWord(rng, 16)
	c := w.Clone()
	orig := w.Sys[0]
	c.Sys[0] = orig + 1
	c.TailSys[0] = w.TailSys[0] + 1
	if w.Sys[0] != orig {
		t.Error("clone aliases Sys")
	}
}

// combinedWords builds nb HARQ-combined words: each is the accumulation
// of `receptions` independent noisy receptions of one encoded block —
// the exact input the serving runtime's retry path re-enqueues.
func combinedWords(t *testing.T, c *Code, nb int, receptions int, seed int64) ([]*LLRWord, [][]byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	words := make([]*LLRWord, nb)
	truth := make([][]byte, nb)
	for b := 0; b < nb; b++ {
		bits := randomBits(rng, c.K)
		cw, err := c.Encode(bits)
		if err != nil {
			t.Fatal(err)
		}
		var acc *LLRWord
		for r := 0; r < receptions; r++ {
			w := NewLLRWord(c.K)
			addAWGN(rng, w, cw, 0.8) // low per-reception SNR
			clampWord(w, LLRLimit-1)
			if acc == nil {
				acc = w.Clone()
			} else if err := acc.Accumulate(w); err != nil {
				t.Fatal(err)
			}
		}
		words[b] = acc
		truth[b] = bits
	}
	return words, truth
}

// TestCombinedDecodeDifferential is the satellite differential test for
// the HARQ combine path: a chase-combined retransmission must decode
// bit-identically through the compiled replay, the interpreted SIMD
// decoder and the scalar reference, at every width.
func TestCombinedDecodeDifferential(t *testing.T) {
	for _, w := range simd.Widths {
		for _, k := range []int{40, 104, 512} {
			c, err := NewCode(k)
			if err != nil {
				t.Fatal(err)
			}
			nb := BlocksPerRegister(w)
			for _, receptions := range []int{2, 4} {
				words, _ := combinedWords(t, c, nb, receptions, int64(100*k+receptions))
				label := w.String() + "/K" + itoa(k) + "/rx" + itoa(receptions)
				decodeThreeWay(t, w, k, words, 4, label)
			}
		}
	}
}

// TestCombinedDecodeRecovers: receptions individually too noisy to
// decode recover after chase combining — the physical property the HARQ
// retry path banks on.
func TestCombinedDecodeRecovers(t *testing.T) {
	const k = 104
	c, err := NewCode(k)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	bits := randomBits(rng, k)
	cw, err := c.Encode(bits)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(c)
	dec.MaxIters = 8
	var acc *LLRWord
	combinedOK := false
	singleFails := 0
	const receptions = 6
	for r := 0; r < receptions; r++ {
		w := NewLLRWord(k)
		addAWGN(rng, w, cw, 0.35)
		clampWord(w, LLRLimit-1)
		if got, _, err := dec.Decode(w); err != nil {
			t.Fatal(err)
		} else if !equalBits(got, bits) {
			singleFails++
		}
		if acc == nil {
			acc = w.Clone()
		} else if err := acc.Accumulate(w); err != nil {
			t.Fatal(err)
		}
		if got, _, err := dec.Decode(acc); err != nil {
			t.Fatal(err)
		} else if equalBits(got, bits) && r > 0 {
			combinedOK = true
		}
	}
	if singleFails == 0 {
		t.Skip("every single reception decoded; channel too kind for the test")
	}
	if !combinedOK {
		t.Errorf("%d chase-combined receptions never decoded (%d/%d singles failed)",
			receptions, singleFails, receptions)
	}
}

// TestItersOverride: the degradation knob clamps the effective budget
// without touching MaxIters, never raises it, and releases cleanly.
// EarlyExit is off so the iteration count equals the budget exactly.
func TestItersOverride(t *testing.T) {
	const k = 104
	bd := NewBatchDecoder(simd.W128, core.StrategyAPCM, 32<<20)
	bd.MaxIters = 5
	bd.EarlyExit = false
	c, err := bd.Code(k)
	if err != nil {
		t.Fatal(err)
	}
	words, truth := buildWords(t, c, bd.Lanes(), 91, true)
	for _, tc := range []struct {
		override, want int
	}{
		{0, 5},  // disengaged: full budget
		{2, 2},  // clamped
		{9, 5},  // never raises above MaxIters
		{1, 1},  // floor
		{0, 5},  // released
	} {
		bd.ItersOverride = tc.override
		bits, iters, err := bd.Decode(k, words)
		if err != nil {
			t.Fatal(err)
		}
		if iters != tc.want {
			t.Errorf("override=%d: ran %d iterations, want %d", tc.override, iters, tc.want)
		}
		for b := range words {
			if !equalBits(bits[b], truth[b]) {
				t.Errorf("override=%d block %d: wrong bits", tc.override, b)
			}
		}
	}
	if bd.MaxIters != 5 {
		t.Errorf("override mutated MaxIters to %d", bd.MaxIters)
	}
}

// TestEvictAll: the explicit flush discards every plan's state and
// compiled program, counts an eviction, and the next decode of each K
// transparently rebuilds and recompiles with identical results.
func TestEvictAll(t *testing.T) {
	const k = 104
	bd := NewBatchDecoder(simd.W128, core.StrategyAPCM, 32<<20)
	bd.MaxIters = 4
	c, err := bd.Code(k)
	if err != nil {
		t.Fatal(err)
	}
	words, truth := buildWords(t, c, bd.Lanes(), 93, true)
	for i := 0; i < 2; i++ {
		if _, _, err := bd.Decode(k, words); err != nil {
			t.Fatal(err)
		}
	}
	if s := bd.ProgramStats(); s.CompiledPlans != 1 {
		t.Fatalf("expected a compiled plan before eviction: %+v", s)
	}
	bd.EvictAll()
	if s := bd.ProgramStats(); s.CompiledPlans != 0 {
		t.Errorf("EvictAll left %d compiled plans", s.CompiledPlans)
	}
	if bd.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", bd.Evictions)
	}
	bits, _, err := bd.Decode(k, words)
	if err != nil {
		t.Fatal(err)
	}
	for b := range words {
		if !equalBits(bits[b], truth[b]) {
			t.Errorf("post-eviction block %d: wrong bits", b)
		}
	}
	if s := bd.ProgramStats(); s.Compiles != 2 {
		t.Errorf("post-eviction decode did not recompile: %+v", s)
	}
}

// TestCompileGate: a rejecting gate forces the interpreter exactly like
// a verify failure — no program, noCompile latched, decodes still
// correct; an accepting gate changes nothing.
func TestCompileGate(t *testing.T) {
	const k = 104
	bd := NewBatchDecoder(simd.W128, core.StrategyAPCM, 32<<20)
	bd.MaxIters = 4
	gated := 0
	bd.CompileGate = func(gk int) bool {
		if gk != k {
			t.Errorf("gate consulted for K=%d, want %d", gk, k)
		}
		gated++
		return false
	}
	c, err := bd.Code(k)
	if err != nil {
		t.Fatal(err)
	}
	words, truth := buildWords(t, c, bd.Lanes(), 95, true)
	for i := 0; i < 3; i++ {
		bits, _, err := bd.Decode(k, words)
		if err != nil {
			t.Fatal(err)
		}
		for b := range words {
			if !equalBits(bits[b], truth[b]) {
				t.Errorf("decode %d block %d: wrong bits on gated fallback", i, b)
			}
		}
	}
	if gated != 1 {
		t.Errorf("gate consulted %d times, want 1 (noCompile must latch)", gated)
	}
	s := bd.ProgramStats()
	if s.Compiles != 0 || s.CompiledPlans != 0 || s.Hits != 0 {
		t.Errorf("rejected compilation still produced a program: %+v", s)
	}
	if s.Misses != 3 {
		t.Errorf("want 3 interpreter misses, got %+v", s)
	}

	ok := NewBatchDecoder(simd.W128, core.StrategyAPCM, 32<<20)
	ok.MaxIters = 4
	ok.CompileGate = func(int) bool { return true }
	for i := 0; i < 2; i++ {
		if _, _, err := ok.Decode(k, words); err != nil {
			t.Fatal(err)
		}
	}
	if s := ok.ProgramStats(); s.Compiles != 1 || s.Hits != 1 {
		t.Errorf("accepting gate perturbed compilation: %+v", s)
	}
}

// FuzzCombinedDecode extends the differential fuzz target over the HARQ
// combine path: accumulate 2..5 random receptions, then require the
// compiled and interpreted decodes of the combined word to agree bit for
// bit.
func FuzzCombinedDecode(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0), uint8(2))
	f.Add(int64(2), uint8(1), uint8(1), uint8(3))
	f.Add(int64(3), uint8(2), uint8(2), uint8(5))
	ks := []int{40, 104, 512}
	f.Fuzz(func(t *testing.T, seed int64, wIdx, kIdx, rx uint8) {
		w := simd.Widths[int(wIdx)%len(simd.Widths)]
		k := ks[int(kIdx)%len(ks)]
		receptions := 2 + int(rx)%4
		rng := rand.New(rand.NewSource(seed))
		nb := BlocksPerRegister(w)
		words := make([]*LLRWord, nb)
		for b := range words {
			acc := randomWord(rng, k)
			for r := 1; r < receptions; r++ {
				if err := acc.Accumulate(randomWord(rng, k)); err != nil {
					t.Fatal(err)
				}
			}
			words[b] = acc
		}

		comp := NewBatchDecoder(w, core.StrategyAPCM, 32<<20)
		comp.MaxIters = 4
		if _, _, err := comp.Decode(k, words); err != nil {
			t.Fatal(err)
		}
		got, gotIters, err := comp.Decode(k, words)
		if err != nil {
			t.Fatal(err)
		}
		if comp.ProgramStats().Hits == 0 {
			t.Fatal("second decode did not hit the compiled program")
		}

		interp := NewBatchDecoder(w, core.StrategyAPCM, 32<<20)
		interp.Compile = false
		interp.MaxIters = 4
		want, wantIters, err := interp.Decode(k, words)
		if err != nil {
			t.Fatal(err)
		}
		if gotIters != wantIters {
			t.Errorf("compiled %d iters, interpreted %d", gotIters, wantIters)
		}
		for b := range words {
			if !equalBits(got[b], want[b]) {
				t.Errorf("block %d: compiled and interpreted decisions differ on combined word", b)
			}
		}
	})
}
