package turbo

import (
	"fmt"
	"sort"
)

// QPP is a quadratic permutation polynomial interleaver:
// Π(i) = (f1·i + f2·i²) mod K.
//
// 3GPP 36.212 fixes (f1, f2) per block size in a table this offline
// build cannot consult, so parameters are instead found by a
// deterministic search over odd f1 and even f2, validated for
// bijectivity (see DESIGN.md: any valid QPP exercises the same decoder
// data flow). The search is reproducible: the same K always yields the
// same polynomial.
type QPP struct {
	K      int
	F1, F2 int
	fwd    []int // fwd[i] = Π(i)
	inv    []int // inv[Π(i)] = i
}

// BlockSizes lists the supported information block lengths, following
// the 3GPP granularity: 40..512 step 8, 528..1024 step 16, 1056..2048
// step 32, 2112..6144 step 64.
var BlockSizes = buildBlockSizes()

func buildBlockSizes() []int {
	var ks []int
	for k := 40; k <= 512; k += 8 {
		ks = append(ks, k)
	}
	for k := 528; k <= 1024; k += 16 {
		ks = append(ks, k)
	}
	for k := 1056; k <= 2048; k += 32 {
		ks = append(ks, k)
	}
	for k := 2112; k <= 6144; k += 64 {
		ks = append(ks, k)
	}
	return ks
}

// ValidBlockSize reports whether k is a supported block length.
func ValidBlockSize(k int) bool {
	i := sort.SearchInts(BlockSizes, k)
	return i < len(BlockSizes) && BlockSizes[i] == k
}

// NearestBlockSize returns the smallest supported block length >= k, or
// the largest size if k exceeds it.
func NearestBlockSize(k int) int {
	i := sort.SearchInts(BlockSizes, k)
	if i >= len(BlockSizes) {
		return BlockSizes[len(BlockSizes)-1]
	}
	return BlockSizes[i]
}

// NewQPP finds a valid interleaver for block size k.
func NewQPP(k int) (*QPP, error) {
	if k < 8 {
		return nil, fmt.Errorf("turbo: block size %d too small", k)
	}
	// Search order favors small coefficients away from degenerate
	// identity-like permutations (f1=1, f2=0 would be no interleaving;
	// spread is what gives the turbo code its distance).
	for _, f2 := range candidateF2(k) {
		for f1 := 3; f1 < k; f1 += 2 {
			q := &QPP{K: k, F1: f1, F2: f2}
			if q.build() {
				return q, nil
			}
		}
	}
	return nil, fmt.Errorf("turbo: no QPP found for K=%d", k)
}

// candidateF2 yields even quadratic coefficients to try, starting near
// K/8 for good spreading.
func candidateF2(k int) []int {
	seen := map[int]bool{}
	var out []int
	add := func(v int) {
		if v > 0 && v < k && v%2 == 0 && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	base := k / 8
	if base%2 == 1 {
		base++
	}
	add(base)
	for d := 2; d <= k; d += 2 {
		add(base + d)
		add(base - d)
	}
	return out
}

// build materializes the permutation, reporting whether it is bijective.
func (q *QPP) build() bool {
	fwd := make([]int, q.K)
	seen := make([]bool, q.K)
	for i := 0; i < q.K; i++ {
		// (f1*i + f2*i*i) mod K without overflow for K <= 6144.
		p := (q.F1*i%q.K + (q.F2*i%q.K)*i%q.K) % q.K
		if seen[p] {
			return false
		}
		seen[p] = true
		fwd[i] = p
	}
	q.fwd = fwd
	q.inv = make([]int, q.K)
	for i, p := range fwd {
		q.inv[p] = i
	}
	return true
}

// Interleave writes dst[i] = src[Π(i)] for the decoder's second
// constituent, which reads the systematic stream in permuted order.
func (q *QPP) Interleave(dst, src []int16) {
	for i := 0; i < q.K; i++ {
		dst[i] = src[q.fwd[i]]
	}
}

// Deinterleave is the inverse: dst[Π(i)] = src[i].
func (q *QPP) Deinterleave(dst, src []int16) {
	for i := 0; i < q.K; i++ {
		dst[q.fwd[i]] = src[i]
	}
}

// InterleaveBits permutes a bit sequence: out[i] = src[Π(i)].
func (q *QPP) InterleaveBits(src []byte) []byte {
	out := make([]byte, q.K)
	for i := 0; i < q.K; i++ {
		out[i] = src[q.fwd[i]]
	}
	return out
}

// Perm returns Π(i).
func (q *QPP) Perm(i int) int { return q.fwd[i] }

// InvPerm returns Π⁻¹(i).
func (q *QPP) InvPerm(i int) int { return q.inv[i] }
