package turbo

import (
	"testing"
	"time"

	"vransim/internal/core"
	"vransim/internal/simd"
)

// TestBatchDecoderReuse checks the serving-side entry point: repeated
// decodes on one decoder (arena rewound per call, per-K code cache)
// stay bit-correct across batches and block sizes.
func TestBatchDecoderReuse(t *testing.T) {
	bd := NewBatchDecoder(simd.W512, core.StrategyAPCM, 32<<20)
	bd.MaxIters = 4
	for round, k := range []int{40, 104, 40} {
		c, err := bd.Code(k)
		if err != nil {
			t.Fatal(err)
		}
		words, truth := buildWords(t, c, bd.Lanes(), int64(10+round), true)
		bits, iters, err := bd.Decode(k, words)
		if err != nil {
			t.Fatal(err)
		}
		if iters < 1 {
			t.Errorf("round %d: %d iterations", round, iters)
		}
		for b := range words {
			if !equalBits(bits[b], truth[b]) {
				t.Errorf("round %d block %d: decode failed", round, b)
			}
		}
	}
	if bd.Plans() != 2 {
		t.Errorf("plan cache has %d entries, want 2", bd.Plans())
	}
	if bd.Evictions != 0 {
		t.Errorf("arena evicted %d times in a 32 MiB arena", bd.Evictions)
	}
}

// TestBatchDecoderOnDecodeHook: the telemetry timing hook must fire
// once per successful decode with the decode's shape and a positive
// wall-clock measurement, and must not fire on a failed decode.
func TestBatchDecoderOnDecodeHook(t *testing.T) {
	bd := NewBatchDecoder(simd.W256, core.StrategyAPCM, 32<<20)
	bd.MaxIters = 4
	type call struct {
		k, blocks, iters int
		elapsed          time.Duration
	}
	var calls []call
	bd.OnDecode = func(k, blocks, iters int, elapsed time.Duration) {
		calls = append(calls, call{k, blocks, iters, elapsed})
	}
	c, err := bd.Code(40)
	if err != nil {
		t.Fatal(err)
	}
	words, _ := buildWords(t, c, bd.Lanes(), 21, true)
	if _, iters, err := bd.Decode(40, words); err != nil {
		t.Fatal(err)
	} else if len(calls) != 1 {
		t.Fatalf("hook fired %d times, want 1", len(calls))
	} else {
		got := calls[0]
		if got.k != 40 || got.blocks != bd.Lanes() || got.iters != iters {
			t.Errorf("hook saw %+v, want k=40 blocks=%d iters=%d", got, bd.Lanes(), iters)
		}
		if got.elapsed <= 0 {
			t.Error("hook measured non-positive decode time")
		}
	}
	// Failed decode (invalid K) must not fire the hook.
	if _, _, err := bd.Decode(41, words); err == nil {
		t.Fatal("decode of invalid K succeeded")
	}
	if len(calls) != 1 {
		t.Errorf("hook fired on failed decode")
	}
	// Empty batch likewise.
	if _, _, err := bd.Decode(40, nil); err == nil {
		t.Fatal("empty batch decode succeeded")
	}
	if len(calls) != 1 {
		t.Errorf("hook fired on empty batch")
	}
}
