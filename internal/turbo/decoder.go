package turbo

import "fmt"

// negInf is the metric used for impossible states. Small enough to never
// overflow int32 when a handful of branch metrics are added.
const negInf = int32(-1 << 24)

// extClamp bounds extrinsic values so iterated feedback stays inside the
// int16 dynamic range the SIMD decoder uses.
const extClamp = 8192

// clampExt saturates x into [-extClamp, extClamp].
func clampExt(x int32) int16 {
	if x > extClamp {
		return extClamp
	}
	if x < -extClamp {
		return -extClamp
	}
	return int16(x)
}

// branchMetric returns the unscaled max-log branch metric
// su·(Ls+La) + sp·Lp with sign +1 for bit 0. Every decoder build in this
// package (scalar and SIMD) uses exactly this formula so their outputs
// are bit-identical.
func branchMetric(u, p int, sysPlusApriori, par int32) int32 {
	m := sysPlusApriori
	if u == 1 {
		m = -m
	}
	if p == 1 {
		m -= par
	} else {
		m += par
	}
	return m
}

// maxLogMAP runs one constituent (half-iteration) max-log-MAP pass.
//
// sys/par/apriori have length K (in the constituent's own bit order).
// If terminated, tailSys/tailPar carry the three termination steps and
// the backward recursion starts from state 0; otherwise it starts
// equiprobable. ext receives the extrinsic output, post the full
// posterior LLR (>0 ⇒ bit 0).
func maxLogMAP(tr *Trellis, sys, par, apriori []int16, tailSys, tailPar []int16, terminated bool, ext []int16, post []int32) {
	k := len(sys)
	steps := k
	if terminated {
		steps += len(tailSys)
	}

	// Branch inputs per step: Ls+La and Lp (tail steps have no
	// a-priori and are not information-bearing).
	sa := make([]int32, steps)
	pp := make([]int32, steps)
	for i := 0; i < k; i++ {
		sa[i] = int32(sys[i]) + int32(apriori[i])
		pp[i] = int32(par[i])
	}
	for i := k; i < steps; i++ {
		sa[i] = int32(tailSys[i-k])
		pp[i] = int32(tailPar[i-k])
	}

	// Forward recursion with per-step max-normalization (the scalar
	// reference mirrors the SIMD build's normalization exactly).
	alpha := make([]int32, (steps+1)*NumStates)
	for s := 1; s < NumStates; s++ {
		alpha[s] = negInf
	}
	for i := 0; i < steps; i++ {
		cur := alpha[i*NumStates : (i+1)*NumStates]
		nxt := alpha[(i+1)*NumStates : (i+2)*NumStates]
		for s := 0; s < NumStates; s++ {
			nxt[s] = negInf
		}
		for s := 0; s < NumStates; s++ {
			if cur[s] <= negInf {
				continue
			}
			for u := 0; u < 2; u++ {
				m := cur[s] + branchMetric(u, tr.Parity[s][u], sa[i], pp[i])
				n := tr.Next[s][u]
				if m > nxt[n] {
					nxt[n] = m
				}
			}
		}
		normalize(nxt)
	}

	// Backward recursion.
	beta := make([]int32, (steps+1)*NumStates)
	last := beta[steps*NumStates:]
	if terminated {
		for s := 1; s < NumStates; s++ {
			last[s] = negInf
		}
	}
	for i := steps - 1; i >= 0; i-- {
		cur := beta[i*NumStates : (i+1)*NumStates]
		nxt := beta[(i+1)*NumStates : (i+2)*NumStates]
		for s := 0; s < NumStates; s++ {
			cur[s] = negInf
			for u := 0; u < 2; u++ {
				b := nxt[tr.Next[s][u]]
				if b <= negInf {
					continue
				}
				m := b + branchMetric(u, tr.Parity[s][u], sa[i], pp[i])
				if m > cur[s] {
					cur[s] = m
				}
			}
		}
		normalize(cur)
	}

	// Extrinsic / posterior for the K information steps.
	for i := 0; i < k; i++ {
		a := alpha[i*NumStates : (i+1)*NumStates]
		b := beta[(i+1)*NumStates : (i+2)*NumStates]
		max0, max1 := negInf, negInf
		for s := 0; s < NumStates; s++ {
			if a[s] <= negInf {
				continue
			}
			for u := 0; u < 2; u++ {
				m := a[s] + branchMetric(u, tr.Parity[s][u], sa[i], pp[i]) + b[tr.Next[s][u]]
				if u == 0 {
					if m > max0 {
						max0 = m
					}
				} else if m > max1 {
					max1 = m
				}
			}
		}
		d := max0 - max1 // = 2·(Ls + La + Le) in this unscaled metric
		if post != nil {
			post[i] = d
		}
		if ext != nil {
			ext[i] = clampExt(d>>1 - sa[i])
		}
	}
}

// normalize subtracts the state-0 metric from every state, bounding the
// dynamic range with exactly the rule the SIMD build applies (a lane-0
// broadcast and subtract). State 0 is always reachable in both
// recursions, so v[0] is never the unreachable marker.
func normalize(v []int32) {
	m := v[0]
	for i := range v {
		if v[i] > negInf {
			v[i] -= m
		}
	}
}

// Decoder is the iterative scalar turbo decoder, the functional
// reference for the SIMD build.
type Decoder struct {
	code *Code
	// MaxIters bounds the number of full iterations (default 6).
	MaxIters int
	// EarlyExit stops when hard decisions are stable across a full
	// iteration.
	EarlyExit bool
}

// NewDecoder builds a decoder for code c.
func NewDecoder(c *Code) *Decoder {
	return &Decoder{code: c, MaxIters: 6, EarlyExit: true}
}

// Decode runs iterative decoding and returns the hard-decision bits and
// the number of full iterations performed.
func (d *Decoder) Decode(w *LLRWord) ([]byte, int, error) {
	k := d.code.K
	if len(w.Sys) != k || len(w.P1) != k || len(w.P2) != k {
		return nil, 0, fmt.Errorf("turbo: LLR word length mismatch (K=%d)", k)
	}
	qpp := d.code.qpp
	tr := d.code.trellis

	la1 := make([]int16, k)
	la2 := make([]int16, k)
	ext1 := make([]int16, k)
	ext2 := make([]int16, k)
	sysPerm := make([]int16, k)
	qpp.Interleave(sysPerm, w.Sys)
	post := make([]int32, k)
	tailSys := []int16{w.TailSys[0], w.TailSys[1], w.TailSys[2]}
	tailP1 := []int16{w.TailP1[0], w.TailP1[1], w.TailP1[2]}

	bits := make([]byte, k)
	prev := make([]byte, k)
	iters := 0
	for it := 0; it < d.MaxIters; it++ {
		iters++
		maxLogMAP(tr, w.Sys, w.P1, la1, tailSys, tailP1, true, ext1, nil)
		qpp.Interleave(la2, ext1)
		maxLogMAP(tr, sysPerm, w.P2, la2, nil, nil, false, ext2, post)
		qpp.Deinterleave(la1, ext2)

		for i := 0; i < k; i++ {
			if post[i] < 0 {
				bits[qpp.Perm(i)] = 1
			} else {
				bits[qpp.Perm(i)] = 0
			}
		}
		if d.EarlyExit && it > 0 && equalBits(bits, prev) {
			break
		}
		copy(prev, bits)
	}
	return bits, iters, nil
}

func equalBits(a, b []byte) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
