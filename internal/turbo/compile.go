package turbo

import (
	"fmt"
	"time"

	"vransim/internal/core"
	"vransim/internal/simd/program"
)

// This file is the BatchDecoder side of the trace-replay compiler: the
// first interpreted decode of a (K, width, strategy) records the exact
// engine op stream, internal/simd/program compiles it into a fused
// replay program, and runCompiled drives that program through the same
// iteration/early-exit protocol as MultiSIMDDecoder.run — producing
// bit-identical outputs without per-µop interpretation.
//
// The split of responsibilities mirrors what is and is not
// input-dependent in a decode:
//
//   - The op stream (instructions, arena addresses, index tables) is a
//     pure function of (K, width, strategy, batch lanes) — compiled once
//     and replayed.
//   - The input copy-in (WriteInterleaved), the tail branch metrics
//     (values derived from the block's tail LLRs) and the hard-decision
//     bit scan are data-dependent *values* at fixed addresses — the Go
//     driver below performs them around each replay, exactly as run()
//     interleaves them with the engine ops.

// ProgramStats is a snapshot of the decoder's program-cache counters.
type ProgramStats struct {
	// Hits counts Decodes served by compiled replay; Misses counts
	// Decodes served by the interpreter while compilation was enabled
	// (the recording decode itself, and plans that failed to compile).
	Hits, Misses uint64
	// Compiles counts successful program compilations; CompileTime is
	// their cumulative wall-clock cost.
	Compiles    uint64
	CompileTime time.Duration
	// CompiledPlans is the number of cached plans currently holding a
	// replay program; ScheduledPlans counts the subset whose program
	// the scheduling pass reordered.
	CompiledPlans  int
	ScheduledPlans int
	// SchedHits counts Decodes served by a scheduled program; WarmPlans
	// counts programs installed from a tuner plan cache (InstallPlan)
	// rather than compiled in-process.
	SchedHits uint64
	WarmPlans uint64
	// SimIPCBefore/After are the cost-model IPCs of the steady segment
	// averaged over the currently cached scheduled plans (recorded
	// order vs adopted order); 0 when no scheduled plan is cached.
	SimIPCBefore float64
	SimIPCAfter  float64
}

// ProgramStats reports the compiled-program cache counters.
func (bd *BatchDecoder) ProgramStats() ProgramStats {
	s := ProgramStats{
		Hits:        bd.progHits,
		Misses:      bd.progMisses,
		Compiles:    bd.compiles,
		CompileTime: time.Duration(bd.compileNs),
		SchedHits:   bd.schedHits,
		WarmPlans:   bd.warmPlans,
	}
	for _, p := range bd.plans {
		if p.prog == nil {
			continue
		}
		s.CompiledPlans++
		if info := p.prog.Sched(); p.prog.Scheduled() {
			s.ScheduledPlans++
			s.SimIPCBefore += info.IPCBefore[program.SegSteady]
			s.SimIPCAfter += info.IPCAfter[program.SegSteady]
		}
	}
	if s.ScheduledPlans > 0 {
		s.SimIPCBefore /= float64(s.ScheduledPlans)
		s.SimIPCAfter /= float64(s.ScheduledPlans)
	}
	return s
}

// recordAndCompile runs one interpreted decode with the semantic
// recorder attached and compiles the recorded stream into p's replay
// program. The decode's results are returned either way; a failed
// compilation (too few iterations, unstable stream, unsupported op)
// latches noCompile and the plan stays interpreted. Both decode paths
// record the same way — per-block early exit freezes blocks only in
// the Go-side extraction, so the op stream stays identical across
// iterations and the builder's stability check holds no matter when
// individual blocks converge.
func (bd *BatchDecoder) recordAndCompile(p *decodePlan, packed bool, words []*LLRWord) ([][]byte, int, error) {
	b := program.NewBuilder()
	bd.eng.SetProgSink(b)
	var (
		bits  [][]byte
		iters int
		err   error
	)
	if packed {
		bits, iters, err = p.dec.runPacked(p.pst, words)
	} else {
		bits, iters, err = p.dec.run(p.st, words)
	}
	bd.eng.SetProgSink(nil)
	if err != nil {
		return nil, 0, err
	}
	opts := bd.SchedOptions
	opts.Schedule = bd.Schedule
	start := time.Now()
	prog, cerr := b.CompileOpts(bd.eng.W, opts)
	elapsed := time.Since(start)
	if cerr != nil {
		p.noCompile = true
		return bits, iters, nil
	}
	if bd.CompileGate != nil && !bd.CompileGate(p.code.K) {
		// Rejected post-compilation: indistinguishable from a verify
		// failure downstream — the plan latches onto the interpreter.
		p.noCompile = true
		return bits, iters, nil
	}
	p.prog = prog
	bd.compiles++
	bd.compileNs += elapsed.Nanoseconds()
	if bd.OnCompile != nil {
		bd.OnCompile(p.code.K, elapsed)
	}
	return bits, iters, nil
}

// runCompiled is the replay counterpart of MultiSIMDDecoder.run: same
// padding, same iteration loop, same early-exit protocol, but each
// iteration's engine work is one Program.Run over the arena. The
// returned slices alias p.st.bits exactly like run()'s.
func (bd *BatchDecoder) runCompiled(p *decodePlan, words []*LLRWord) ([][]byte, int, error) {
	st := p.st
	d := p.dec
	nb := st.nb
	if len(words) < 1 || len(words) > nb {
		return nil, 0, fmt.Errorf("turbo: got %d blocks, state decodes 1..%d at once", len(words), nb)
	}
	requested := len(words)
	st.words = append(st.words[:0], words...)
	for len(st.words) < nb {
		st.words = append(st.words, words[0])
	}
	mem := bd.eng.Mem

	for b := 0; b < nb; b++ {
		w := st.words[b]
		core.WriteInterleaved(mem, st.in[b].Src, w.Sys, w.P1, w.P2)
		st.in[b].TailSys = w.TailSys
		st.in[b].TailP1 = w.TailP1
		st.writeTailGammas(b)
	}

	resetConv(st.conv, st.itersB, requested)
	iters := 0
	for it := 0; it < d.MaxIters; it++ {
		iters++
		seg := program.SegSteady
		if it == 0 {
			seg = program.SegFirst
		}
		p.prog.Run(mem, seg)
		if st.extractBits(d.EarlyExit, it) {
			break
		}
	}
	stampIters(st.itersB, iters)
	return st.bits[:requested], iters, nil
}

// runCompiledPacked is the replay driver for the packed path: the same
// copy-in, tail-quad writes, iteration loop and per-block early-exit
// protocol as MultiSIMDDecoder.runPacked, with each iteration's engine
// work replaced by one Program.Run over the arena.
func (bd *BatchDecoder) runCompiledPacked(p *decodePlan, words []*LLRWord) ([][]byte, int, error) {
	st := p.pst
	d := p.dec
	requested := len(words)
	if err := st.loadWordsPacked(words); err != nil {
		return nil, 0, err
	}
	st.writeTailQuads()

	resetConv(st.conv, st.itersB, requested)
	iters := 0
	for it := 0; it < d.MaxIters; it++ {
		iters++
		seg := program.SegSteady
		if it == 0 {
			seg = program.SegFirst
		}
		p.prog.Run(bd.eng.Mem, seg)
		if st.extractPacked(d.EarlyExit, it) {
			break
		}
	}
	stampIters(st.itersB, iters)
	return st.bits[:requested], iters, nil
}
