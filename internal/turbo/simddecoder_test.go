package turbo

import (
	"math/rand"
	"testing"

	"vransim/internal/core"
	"vransim/internal/simd"
	"vransim/internal/trace"
)

// simdDecodeOnce runs arrangement + SIMD decode for one random block and
// returns the decoded bits, the true bits, and the engine.
func simdDecodeOnce(t *testing.T, k int, w simd.Width, strat core.Strategy, snrNoiseless bool, seed int64, iters int) (got, want []byte, e *simd.Engine, d *SIMDDecoder) {
	t.Helper()
	c, err := NewCode(k)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	bits := randomBits(rng, k)
	cw, err := c.Encode(bits)
	if err != nil {
		t.Fatal(err)
	}
	word := NewLLRWord(k)
	if snrNoiseless {
		word.FromHard(cw, 32)
	} else {
		addAWGN(rng, word, cw, 3.0)
		clampWord(word, LLRLimit-1)
	}

	mem := simd.NewMemory(8 << 20)
	e = simd.NewEngine(w, mem, trace.NewRecorder(1<<16))
	d = NewSIMDDecoder(c)
	d.MaxIters = iters
	in := d.PrepareInput(e, core.ByStrategy(strat), word)
	got, _, err = d.Decode(e, in)
	if err != nil {
		t.Fatal(err)
	}
	return got, bits, e, d
}

func clampWord(w *LLRWord, lim int16) {
	cl := func(xs []int16) {
		for i := range xs {
			if xs[i] > lim {
				xs[i] = lim
			}
			if xs[i] < -lim {
				xs[i] = -lim
			}
		}
	}
	cl(w.Sys)
	cl(w.P1)
	cl(w.P2)
	for i := 0; i < 3; i++ {
		if w.TailSys[i] > lim {
			w.TailSys[i] = lim
		}
		if w.TailSys[i] < -lim {
			w.TailSys[i] = -lim
		}
		if w.TailP1[i] > lim {
			w.TailP1[i] = lim
		}
		if w.TailP1[i] < -lim {
			w.TailP1[i] = -lim
		}
	}
}

func TestSIMDDecodeNoiseless(t *testing.T) {
	for _, w := range simd.Widths {
		for _, strat := range []core.Strategy{core.StrategyExtract, core.StrategyAPCM} {
			got, want, _, _ := simdDecodeOnce(t, 40, w, strat, true, 11, 4)
			if !equalBits(got, want) {
				t.Errorf("%v/%v: noiseless SIMD decode failed", w, strat)
			}
		}
	}
}

// TestSIMDMatchesScalar is the central functional equivalence check: the
// SIMD decoder (through either arrangement mechanism) and the scalar
// reference must produce identical hard decisions on noisy input.
func TestSIMDMatchesScalar(t *testing.T) {
	for _, w := range simd.Widths {
		for _, strat := range []core.Strategy{core.StrategyExtract, core.StrategyAPCM, core.StrategyAPCMShuffle} {
			for seed := int64(0); seed < 3; seed++ {
				k := 104
				c, err := NewCode(k)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(1000 + seed))
				bits := randomBits(rng, k)
				cw, _ := c.Encode(bits)
				word := NewLLRWord(k)
				addAWGN(rng, word, cw, 1.0)
				clampWord(word, LLRLimit-1)

				sc := NewDecoder(c)
				sc.MaxIters, sc.EarlyExit = 4, false
				scalarBits, _, err := sc.Decode(word)
				if err != nil {
					t.Fatal(err)
				}

				mem := simd.NewMemory(8 << 20)
				e := simd.NewEngine(w, mem, nil) // functional only
				sd := NewSIMDDecoder(c)
				sd.MaxIters, sd.EarlyExit = 4, false
				in := sd.PrepareInput(e, core.ByStrategy(strat), word)
				simdBits, _, err := sd.Decode(e, in)
				if err != nil {
					t.Fatal(err)
				}
				if !equalBits(simdBits, scalarBits) {
					diff := 0
					for i := range simdBits {
						if simdBits[i] != scalarBits[i] {
							diff++
						}
					}
					t.Errorf("%v/%v seed %d: SIMD and scalar decisions differ in %d/%d bits",
						w, strat, seed, diff, k)
				}
			}
		}
	}
}

func TestSIMDDecodeAWGNRecovers(t *testing.T) {
	got, want, _, _ := simdDecodeOnce(t, 104, simd.W128, core.StrategyAPCM, false, 5, 6)
	if !equalBits(got, want) {
		t.Error("SIMD decode at 3 dB failed to recover the block")
	}
}

func TestSIMDPhaseMarks(t *testing.T) {
	_, _, e, d := simdDecodeOnce(t, 40, simd.W128, core.StrategyAPCM, true, 3, 2)
	names := map[string]bool{}
	last := 0
	for _, m := range d.Marks {
		if m.Lo > m.Hi {
			t.Errorf("mark %q has Lo %d > Hi %d", m.Name, m.Lo, m.Hi)
		}
		if m.Lo < last {
			t.Errorf("mark %q overlaps previous (Lo %d < %d)", m.Name, m.Lo, last)
		}
		last = m.Hi
		names[m.Name] = true
	}
	for _, want := range []string{"arrangement", "gamma", "alpha", "beta+ext", "ext", "interleave", "init"} {
		if !names[want] {
			t.Errorf("missing phase mark %q", want)
		}
	}
	if last > e.TraceLen() {
		t.Errorf("marks extend past trace end (%d > %d)", last, e.TraceLen())
	}
}

// TestSIMDGammaUsesCalcInstructions checks the instruction-class claim of
// the paper's Figure 7/8: the gamma phase is built from SIMD calculation
// instructions (padds/psubs) and full-width memory traffic.
func TestSIMDGammaUsesCalcInstructions(t *testing.T) {
	_, _, e, d := simdDecodeOnce(t, 512, simd.W256, core.StrategyAPCM, true, 9, 1)
	insts := e.Recorder().Insts()
	var calc, smallStores int
	for _, m := range d.Marks {
		if m.Name != "gamma" {
			continue
		}
		for _, in := range insts[m.Lo:m.Hi] {
			switch {
			case in.Class == trace.VecALU && (in.Mnemonic == "padds" || in.Mnemonic == "psubs"):
				calc++
			case in.Class == trace.Store && in.Bytes == 2:
				smallStores++
			}
		}
	}
	if calc == 0 {
		t.Error("gamma phase emitted no padds/psubs")
	}
	if smallStores > 0 {
		t.Errorf("gamma phase emitted %d 2-byte stores; should be full-width", smallStores)
	}
}

func TestSIMDLayoutWidthMismatch(t *testing.T) {
	c, _ := NewCode(40)
	d := NewSIMDDecoder(c)
	mem := simd.NewMemory(1 << 20)
	e := simd.NewEngine(simd.W256, mem, nil)
	in := ArrangedInput{Lay: core.ByStrategy(core.StrategyAPCM).Layout(simd.W128)}
	if _, _, err := d.Decode(e, in); err == nil {
		t.Error("expected width-mismatch error")
	}
}
