package turbo

import (
	"math/rand"
	"testing"
	"time"

	"vransim/internal/core"
	"vransim/internal/simd"
	"vransim/internal/trace"
)

// decodeThreeWay decodes the same batch through the compiled replay
// path, the interpreted MultiSIMDDecoder path and the scalar reference,
// and fails the test on any hard-decision or iteration-count mismatch.
func decodeThreeWay(t *testing.T, w simd.Width, k int, words []*LLRWord, maxIters int, label string) {
	t.Helper()
	comp := NewBatchDecoder(w, core.StrategyAPCM, 32<<20)
	comp.MaxIters = maxIters
	// First decode records + compiles (and is itself interpreted);
	// decode twice so the checked result comes from the replay path.
	if _, _, err := comp.Decode(k, words); err != nil {
		t.Fatalf("%s: warm-up: %v", label, err)
	}
	if comp.ProgramStats().CompiledPlans != 1 {
		t.Fatalf("%s: first decode did not compile a program", label)
	}
	got, gotIters, err := comp.Decode(k, words)
	if err != nil {
		t.Fatalf("%s: compiled: %v", label, err)
	}

	interp := NewBatchDecoder(w, core.StrategyAPCM, 32<<20)
	interp.MaxIters = maxIters
	interp.Compile = false
	want, wantIters, err := interp.Decode(k, words)
	if err != nil {
		t.Fatalf("%s: interpreted: %v", label, err)
	}
	if s := interp.ProgramStats(); s.CompiledPlans != 0 || s.Compiles != 0 {
		t.Fatalf("%s: Compile=false decoder compiled anyway: %+v", label, s)
	}

	if gotIters != wantIters {
		t.Errorf("%s: compiled ran %d iterations, interpreted %d", label, gotIters, wantIters)
	}
	c, err := comp.Code(k)
	if err != nil {
		t.Fatal(err)
	}
	for b := range words {
		if !equalBits(got[b], want[b]) {
			t.Errorf("%s block %d: compiled and interpreted decisions differ", label, b)
		}
		sc := NewDecoder(c)
		sc.MaxIters = maxIters
		scalarBits, _, err := sc.Decode(words[b])
		if err != nil {
			t.Fatalf("%s block %d: scalar: %v", label, b, err)
		}
		if !equalBits(got[b], scalarBits) {
			t.Errorf("%s block %d: compiled and scalar decisions differ", label, b)
		}
	}
}

// TestCompiledMatchesInterpretedAndScalar is the satellite differential
// property test: over widths, block sizes, clean and noisy channels and
// partial batch fills, the compiled replay must produce exactly the bits
// of the interpreted SIMD decoder and of the scalar reference.
func TestCompiledMatchesInterpretedAndScalar(t *testing.T) {
	for _, w := range simd.Widths {
		for _, k := range []int{40, 104, 512} {
			c, err := NewCode(k)
			if err != nil {
				t.Fatal(err)
			}
			nb := BlocksPerRegister(w)
			for _, tc := range []struct {
				name      string
				fill      int
				seed      int64
				noiseless bool
			}{
				{"clean/full", nb, 11, true},
				{"noisy/full", nb, 12, false},
				{"noisy/one", 1, 13, false},
			} {
				words, _ := buildWords(t, c, tc.fill, tc.seed, tc.noiseless)
				label := w.String() + "/K" + itoa(k) + "/" + tc.name
				decodeThreeWay(t, w, k, words, 4, label)
			}
		}
	}
}

func itoa(k int) string {
	if k == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for k > 0 {
		i--
		b[i] = byte('0' + k%10)
		k /= 10
	}
	return string(b[i:])
}

// TestCompiledRespectsConfigChanges: MaxIters and EarlyExit live on the
// BatchDecoder and apply per call — the compiled program fixes only the
// per-iteration op stream, so tightening MaxIters after compilation must
// change behavior exactly as it does on the interpreter.
func TestCompiledRespectsConfigChanges(t *testing.T) {
	const k = 104
	bd := NewBatchDecoder(simd.W256, core.StrategyAPCM, 32<<20)
	bd.MaxIters = 6
	c, err := bd.Code(k)
	if err != nil {
		t.Fatal(err)
	}
	words, _ := buildWords(t, c, bd.Lanes(), 21, false)
	if _, _, err := bd.Decode(k, words); err != nil { // records at 6 iters
		t.Fatal(err)
	}
	if bd.ProgramStats().CompiledPlans != 1 {
		t.Fatal("expected a compiled plan")
	}

	for _, cfg := range []struct {
		maxIters  int
		earlyExit bool
	}{{2, false}, {3, true}, {6, true}} {
		bd.MaxIters, bd.EarlyExit = cfg.maxIters, cfg.earlyExit
		got, gotIters, err := bd.Decode(k, words)
		if err != nil {
			t.Fatal(err)
		}
		ref := NewBatchDecoder(simd.W256, core.StrategyAPCM, 32<<20)
		ref.Compile = false
		ref.MaxIters, ref.EarlyExit = cfg.maxIters, cfg.earlyExit
		want, wantIters, err := ref.Decode(k, words)
		if err != nil {
			t.Fatal(err)
		}
		if gotIters != wantIters {
			t.Errorf("maxIters=%d earlyExit=%v: compiled %d iters, interpreted %d",
				cfg.maxIters, cfg.earlyExit, gotIters, wantIters)
		}
		for b := range words {
			if !equalBits(got[b], want[b]) {
				t.Errorf("maxIters=%d earlyExit=%v block %d: decisions differ",
					cfg.maxIters, cfg.earlyExit, b)
			}
		}
	}
}

// TestCompileNeedsTwoIterations: a MaxIters=1 recording cannot separate
// the first-iteration segment from the steady segment, so compilation
// must fail gracefully — the plan latches noCompile, stays interpreted
// and keeps decoding correctly.
func TestCompileNeedsTwoIterations(t *testing.T) {
	const k = 40
	bd := NewBatchDecoder(simd.W128, core.StrategyAPCM, 32<<20)
	bd.MaxIters = 1
	c, err := bd.Code(k)
	if err != nil {
		t.Fatal(err)
	}
	words, truth := buildWords(t, c, bd.Lanes(), 31, true)
	for round := 0; round < 3; round++ {
		bits, iters, err := bd.Decode(k, words)
		if err != nil {
			t.Fatal(err)
		}
		if iters != 1 {
			t.Fatalf("round %d: %d iterations at MaxIters=1", round, iters)
		}
		for b := range words {
			if !equalBits(bits[b], truth[b]) {
				t.Errorf("round %d block %d: wrong bits on interpreter fallback", round, b)
			}
		}
	}
	s := bd.ProgramStats()
	if s.CompiledPlans != 0 || s.Compiles != 0 {
		t.Errorf("one-iteration recording compiled anyway: %+v", s)
	}
	if !bd.plans[planKey{k: k, packed: bd.Packed}].noCompile {
		t.Error("failed compilation did not latch noCompile")
	}
	if s.Misses != 3 || s.Hits != 0 {
		t.Errorf("want 3 misses, 0 hits; got %+v", s)
	}
}

// TestCompiledEvictionRecompiles: arena eviction must discard compiled
// programs with their plans (they embed absolute arena addresses) and
// later decodes of the same K must transparently recompile.
func TestCompiledEvictionRecompiles(t *testing.T) {
	bd := NewBatchDecoder(simd.W512, core.StrategyAPCM, 2<<20)
	bd.MaxIters = 4
	ks := []int{6144, 5056, 6144, 4096, 5056, 6144}
	for round, k := range ks {
		c, err := bd.Code(k)
		if err != nil {
			t.Fatal(err)
		}
		words, truth := buildWords(t, c, bd.Lanes(), int64(700+round), true)
		bits, _, err := bd.Decode(k, words)
		if err != nil {
			t.Fatalf("round %d (K=%d): %v", round, k, err)
		}
		for b := range words {
			if !equalBits(bits[b], truth[b]) {
				t.Errorf("round %d (K=%d) block %d: wrong bits", round, k, b)
			}
		}
		if bd.plans[planKey{k: k, packed: bd.Packed}].prog == nil {
			t.Errorf("round %d (K=%d): current plan not compiled", round, k)
		}
	}
	if bd.Evictions == 0 {
		t.Fatal("2 MiB arena fit three K=4096..6144 W512 plans without evicting")
	}
	// Three distinct Ks but more compilations than that: eviction dropped
	// programs and later rounds transparently recompiled them.
	if s := bd.ProgramStats(); s.Compiles <= 3 {
		t.Errorf("want >3 compilations (recompiles after eviction), got %d", s.Compiles)
	}
}

// TestProgramStatsCounters pins the hit/miss/compile accounting that the
// serving metrics export.
func TestProgramStatsCounters(t *testing.T) {
	const k = 104
	bd := NewBatchDecoder(simd.W128, core.StrategyAPCM, 32<<20)
	bd.MaxIters = 4
	c, err := bd.Code(k)
	if err != nil {
		t.Fatal(err)
	}
	var hooked int
	bd.OnCompile = func(hk int, elapsed time.Duration) {
		if hk != k {
			t.Errorf("OnCompile K=%d, want %d", hk, k)
		}
		hooked++
	}
	words, _ := buildWords(t, c, bd.Lanes(), 51, true)
	for i := 0; i < 4; i++ {
		if _, _, err := bd.Decode(k, words); err != nil {
			t.Fatal(err)
		}
	}
	s := bd.ProgramStats()
	if s.Misses != 1 || s.Hits != 3 || s.Compiles != 1 || s.CompiledPlans != 1 {
		t.Errorf("after 4 decodes: %+v, want 1 miss / 3 hits / 1 compile / 1 plan", s)
	}
	if s.CompileTime <= 0 {
		t.Error("compile time not accounted")
	}
	if hooked != 1 {
		t.Errorf("OnCompile fired %d times, want 1", hooked)
	}
}

// TestTracedEngineStaysInterpreted: replay emits no µops, so a decoder
// whose engine carries a trace recorder must never take the compiled
// path — otherwise experiment traces would silently lose their decode
// instruction stream.
func TestTracedEngineStaysInterpreted(t *testing.T) {
	const k = 104
	bd := &BatchDecoder{
		eng:       simd.NewEngine(simd.W128, simd.NewMemory(32<<20), trace.NewRecorder(1 << 20)),
		ar:        core.ByStrategy(core.StrategyAPCM),
		plans:     make(map[planKey]*decodePlan),
		codes:     make(map[int]*Code),
		MaxIters:  4,
		EarlyExit: true,
		Packed:    true,
		Compile:   true,
	}
	c, err := bd.Code(k)
	if err != nil {
		t.Fatal(err)
	}
	words, truth := buildWords(t, c, bd.Lanes(), 61, true)
	before := bd.eng.TraceLen()
	for round := 0; round < 3; round++ {
		bits, _, err := bd.Decode(k, words)
		if err != nil {
			t.Fatal(err)
		}
		after := bd.eng.TraceLen()
		if after <= before {
			t.Fatalf("round %d: traced decode emitted no µops (%d -> %d)", round, before, after)
		}
		before = after
		for b := range words {
			if !equalBits(bits[b], truth[b]) {
				t.Errorf("round %d block %d: wrong bits", round, b)
			}
		}
	}
	s := bd.ProgramStats()
	if s.Compiles != 0 || s.CompiledPlans != 0 || s.Hits != 0 {
		t.Errorf("traced engine took the compiled path: %+v", s)
	}
}

// randomWord fills an LLRWord with arbitrary in-range LLRs — not
// necessarily a plausible codeword, which is exactly the point: replay
// must match the interpreter on any input, not just decodable ones.
func randomWord(rng *rand.Rand, k int) *LLRWord {
	w := NewLLRWord(k)
	r16 := func() int16 { return int16(rng.Intn(2*int(LLRLimit)-1)) - (LLRLimit - 1) }
	for i := 0; i < k; i++ {
		w.Sys[i], w.P1[i], w.P2[i] = r16(), r16(), r16()
	}
	for i := 0; i < 3; i++ {
		w.TailSys[i], w.TailP1[i] = r16(), r16()
	}
	return w
}

// FuzzCompiledDecode is the satellite fuzz target: random K (from the
// supported LTE sizes), random batch fill and fully random LLR payloads
// must decode bit- and iteration-identically through the compiled and
// interpreted paths.
func FuzzCompiledDecode(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0), uint8(1))
	f.Add(int64(2), uint8(1), uint8(1), uint8(2))
	f.Add(int64(3), uint8(2), uint8(3), uint8(255))
	ks := []int{40, 104, 208, 512}
	f.Fuzz(func(t *testing.T, seed int64, wIdx, kIdx, fill uint8) {
		w := simd.Widths[int(wIdx)%len(simd.Widths)]
		k := ks[int(kIdx)%len(ks)]
		rng := rand.New(rand.NewSource(seed))
		nb := BlocksPerRegister(w)
		n := 1 + int(fill)%nb
		words := make([]*LLRWord, n)
		for b := range words {
			words[b] = randomWord(rng, k)
		}

		comp := NewBatchDecoder(w, core.StrategyAPCM, 32<<20)
		comp.MaxIters = 4
		if _, _, err := comp.Decode(k, words); err != nil {
			t.Fatal(err)
		}
		got, gotIters, err := comp.Decode(k, words)
		if err != nil {
			t.Fatal(err)
		}
		if comp.ProgramStats().Hits == 0 {
			t.Fatal("second decode did not hit the compiled program")
		}

		interp := NewBatchDecoder(w, core.StrategyAPCM, 32<<20)
		interp.Compile = false
		interp.MaxIters = 4
		want, wantIters, err := interp.Decode(k, words)
		if err != nil {
			t.Fatal(err)
		}
		if gotIters != wantIters {
			t.Errorf("compiled %d iters, interpreted %d", gotIters, wantIters)
		}
		for b := range words {
			if !equalBits(got[b], want[b]) {
				t.Errorf("block %d: compiled and interpreted decisions differ", b)
			}
		}
	})
}
