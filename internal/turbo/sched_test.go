package turbo

import (
	"math/rand"
	"testing"

	"vransim/internal/core"
	"vransim/internal/simd"
	"vransim/internal/simd/program"
)

// newSchedDecoder builds a BatchDecoder with the scheduling pass on.
func newSchedDecoder(w simd.Width, packed bool, maxIters int) *BatchDecoder {
	bd := NewBatchDecoder(w, core.StrategyAPCM, 32<<20)
	bd.MaxIters = maxIters
	bd.Packed = packed
	bd.Schedule = true
	return bd
}

// TestScheduledMatchesAllPaths is the satellite differential property:
// scheduled replay vs unscheduled replay vs the interpreter vs the
// scalar reference, bit- and iteration-identical across widths × K ×
// batch fill × packed/per-block. The scheduler may only reorder mops
// inside dependency constraints, so all four must agree exactly.
func TestScheduledMatchesAllPaths(t *testing.T) {
	const maxIters = 4
	for _, w := range simd.Widths {
		for _, k := range []int{40, 104, 512} {
			c, err := NewCode(k)
			if err != nil {
				t.Fatal(err)
			}
			nb := BlocksPerRegister(w)
			for _, packed := range []bool{true, false} {
				for _, fill := range []int{1, nb} {
					label := w.String() + "/K" + itoa(k) + "/packed=" + itoa(boolInt(packed)) + "/fill" + itoa(fill)
					words, _ := buildWords(t, c, fill, int64(k)+int64(fill), false)

					sched := newSchedDecoder(w, packed, maxIters)
					if _, _, err := sched.Decode(k, words); err != nil {
						t.Fatalf("%s: scheduled warm-up: %v", label, err)
					}
					got, gotIters, err := sched.Decode(k, words)
					if err != nil {
						t.Fatalf("%s: scheduled: %v", label, err)
					}
					st := sched.ProgramStats()
					if st.CompiledPlans != 1 {
						t.Fatalf("%s: scheduled decoder did not compile", label)
					}

					plain := NewBatchDecoder(w, core.StrategyAPCM, 32<<20)
					plain.MaxIters = maxIters
					plain.Packed = packed
					if _, _, err := plain.Decode(k, words); err != nil {
						t.Fatalf("%s: unscheduled warm-up: %v", label, err)
					}
					unsched, unschedIters, err := plain.Decode(k, words)
					if err != nil {
						t.Fatalf("%s: unscheduled: %v", label, err)
					}

					interp := NewBatchDecoder(w, core.StrategyAPCM, 32<<20)
					interp.MaxIters = maxIters
					interp.Packed = packed
					interp.Compile = false
					want, wantIters, err := interp.Decode(k, words)
					if err != nil {
						t.Fatalf("%s: interpreted: %v", label, err)
					}

					if gotIters != wantIters || unschedIters != wantIters {
						t.Errorf("%s: iterations diverged: scheduled=%d unscheduled=%d interpreted=%d",
							label, gotIters, unschedIters, wantIters)
					}
					for b := range words {
						if !equalBits(got[b], want[b]) {
							t.Errorf("%s block %d: scheduled and interpreted decisions differ", label, b)
						}
						if !equalBits(got[b], unsched[b]) {
							t.Errorf("%s block %d: scheduled and unscheduled decisions differ", label, b)
						}
					}
					// Scalar reference on the first block only (the
					// three-way per-block comparison lives in
					// TestCompiledMatchesInterpretedAndScalar).
					sc := NewDecoder(c)
					sc.MaxIters = maxIters
					scalarBits, _, err := sc.Decode(words[0])
					if err != nil {
						t.Fatalf("%s: scalar: %v", label, err)
					}
					if !equalBits(got[0], scalarBits) {
						t.Errorf("%s: scheduled and scalar decisions differ", label)
					}
				}
			}
		}
	}
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TestScheduledStatsAndHits pins the new counters: scheduled decodes
// count as SchedHits, the plan shows up in ScheduledPlans, and the
// steady-segment simulated IPC is reported improved (the packed W512
// steady segment has enough independent work that the pass must find a
// better order — the ISSUE's perf gate in miniature).
func TestScheduledStatsAndHits(t *testing.T) {
	const k = 512
	bd := newSchedDecoder(simd.W512, true, 4)
	c, err := bd.Code(k)
	if err != nil {
		t.Fatal(err)
	}
	words, _ := buildWords(t, c, bd.Lanes(), 7, false)
	for i := 0; i < 3; i++ {
		if _, _, err := bd.Decode(k, words); err != nil {
			t.Fatal(err)
		}
	}
	s := bd.ProgramStats()
	if s.CompiledPlans != 1 || s.ScheduledPlans != 1 {
		t.Fatalf("plans: %+v", s)
	}
	if s.SchedHits != 2 || s.Hits != 2 {
		t.Fatalf("hits: %+v", s)
	}
	if s.SimIPCAfter <= s.SimIPCBefore {
		t.Errorf("steady-segment simulated IPC did not improve: %.3f -> %.3f",
			s.SimIPCBefore, s.SimIPCAfter)
	}
	p := bd.PlanProgram(k, true)
	if p == nil || !p.Scheduled() {
		t.Fatalf("plan program missing or unscheduled")
	}
}

// TestInstallPlanWarmStart: serialize a tuned plan out of one decoder
// and install it into a fresh one — the fresh decoder must serve every
// decode from the warm program (zero compiles, zero misses) with
// bit-identical output.
func TestInstallPlanWarmStart(t *testing.T) {
	const k = 104
	words := func(t *testing.T, bd *BatchDecoder, fill int) []*LLRWord {
		c, err := bd.Code(k)
		if err != nil {
			t.Fatal(err)
		}
		w, _ := buildWords(t, c, fill, 5, false)
		return w
	}

	tuner := newSchedDecoder(simd.W512, true, 4)
	ws := words(t, tuner, tuner.Lanes())
	if _, _, err := tuner.Decode(k, ws); err != nil {
		t.Fatal(err)
	}
	prog := tuner.PlanProgram(k, true)
	if prog == nil {
		t.Fatal("tuner decoder did not compile")
	}
	blob, err := prog.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	arena := tuner.ArenaOffset()

	fresh := newSchedDecoder(simd.W512, true, 4)
	if err := fresh.InstallPlan(k, true, blob, arena); err != nil {
		t.Fatalf("install: %v", err)
	}
	got, gotIters, err := fresh.Decode(k, ws)
	if err != nil {
		t.Fatal(err)
	}
	s := fresh.ProgramStats()
	if s.Compiles != 0 || s.Misses != 0 || s.Hits != 1 || s.WarmPlans != 1 {
		t.Fatalf("warm decoder did not skip compile+search: %+v", s)
	}

	interp := NewBatchDecoder(simd.W512, core.StrategyAPCM, 32<<20)
	interp.MaxIters = 4
	interp.Compile = false
	want, wantIters, err := interp.Decode(k, ws)
	if err != nil {
		t.Fatal(err)
	}
	if gotIters != wantIters {
		t.Errorf("warm %d iters, interpreted %d", gotIters, wantIters)
	}
	for b := range ws {
		if !equalBits(got[b], want[b]) {
			t.Errorf("block %d: warm-started and interpreted decisions differ", b)
		}
	}
}

// TestInstallPlanRejectsMismatch: a wrong arena cursor and a wrong
// width must both refuse installation and leave the plan uncompiled.
func TestInstallPlanRejectsMismatch(t *testing.T) {
	const k = 104
	tuner := newSchedDecoder(simd.W512, true, 4)
	c, err := tuner.Code(k)
	if err != nil {
		t.Fatal(err)
	}
	ws, _ := buildWords(t, c, tuner.Lanes(), 5, false)
	if _, _, err := tuner.Decode(k, ws); err != nil {
		t.Fatal(err)
	}
	blob, err := tuner.PlanProgram(k, true).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	arena := tuner.ArenaOffset()

	// Arena cursor mismatch.
	fresh := newSchedDecoder(simd.W512, true, 4)
	if err := fresh.InstallPlan(k, true, blob, arena+64); err == nil {
		t.Error("cursor mismatch accepted")
	}
	if fresh.PlanProgram(k, true) != nil {
		t.Error("rejected install left a program behind")
	}
	// The plan still decodes (in-process compile path intact).
	if _, _, err := fresh.Decode(k, ws); err != nil {
		t.Errorf("decode after rejected install: %v", err)
	}

	// Width mismatch: install a W512 plan into a W256 decoder at that
	// decoder's true post-build cursor, so the width check is what
	// fires.
	narrow := newSchedDecoder(simd.W256, true, 4)
	narrow.Compile = false
	wsN, _ := buildWords(t, c, narrow.Lanes(), 5, false)
	if _, _, err := narrow.Decode(k, wsN); err != nil {
		t.Fatal(err)
	}
	if err := narrow.InstallPlan(k, true, blob, narrow.ArenaOffset()); err == nil {
		t.Error("width mismatch accepted")
	}

	// Corrupt bytes at the right cursor.
	fresh2 := newSchedDecoder(simd.W512, true, 4)
	if err := fresh2.InstallPlan(k, true, blob[:len(blob)/3], arena); err == nil {
		t.Error("truncated plan accepted")
	}
}

// FuzzTopoReorder is the satellite fuzz target: take a real compiled
// decode plan, permute both of its segments into a random legal
// topological order of their dependency DAGs, and assert the replay
// still matches the interpreter bit for bit on random inputs. Any
// legal reorder of a fused program must replay identically.
func FuzzTopoReorder(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0), uint8(1), true)
	f.Add(int64(2), uint8(1), uint8(1), uint8(2), false)
	f.Add(int64(3), uint8(2), uint8(2), uint8(255), true)
	ks := []int{40, 104, 512}
	f.Fuzz(func(t *testing.T, seed int64, wIdx, kIdx, fill uint8, packed bool) {
		w := simd.Widths[int(wIdx)%len(simd.Widths)]
		k := ks[int(kIdx)%len(ks)]
		rng := rand.New(rand.NewSource(seed))
		nb := BlocksPerRegister(w)
		n := 1 + int(fill)%nb
		words := make([]*LLRWord, n)
		for b := range words {
			words[b] = randomWord(rng, k)
		}

		comp := NewBatchDecoder(w, core.StrategyAPCM, 32<<20)
		comp.MaxIters = 4
		comp.Packed = packed
		if _, _, err := comp.Decode(k, words); err != nil {
			t.Fatal(err)
		}
		prog := comp.PlanProgram(k, packed)
		if prog == nil {
			t.Fatal("first decode did not compile")
		}
		for seg := range [2]int{program.SegFirst, program.SegSteady} {
			if err := prog.ReorderRandom(seg, seed^int64(seg)<<7); err != nil {
				t.Fatalf("seg %d: %v", seg, err)
			}
		}
		got, gotIters, err := comp.Decode(k, words)
		if err != nil {
			t.Fatal(err)
		}

		interp := NewBatchDecoder(w, core.StrategyAPCM, 32<<20)
		interp.Compile = false
		interp.MaxIters = 4
		interp.Packed = packed
		want, wantIters, err := interp.Decode(k, words)
		if err != nil {
			t.Fatal(err)
		}
		if gotIters != wantIters {
			t.Errorf("reordered replay %d iters, interpreted %d", gotIters, wantIters)
		}
		for b := range words {
			if !equalBits(got[b], want[b]) {
				t.Errorf("block %d: reordered replay and interpreter decisions differ", b)
			}
		}
	})
}
