package turbo

import (
	"fmt"

	"vransim/internal/core"
	"vransim/internal/simd"
)

// MultiSIMDDecoder decodes several equal-size code blocks *in parallel
// lanes*: the 8 trellis states of block b occupy lanes 8b..8b+7, so an
// AVX256 register carries two blocks' recursions and an AVX512 register
// four. This is the natural way wider SIMD accelerates the
// calculation-heavy recursions (a transport block is segmented into
// same-K code blocks precisely so they can be decoded together), and it
// makes the decoder's calculation time scale with register width as in
// the paper's Figure 9.
//
// Functionally each lane group is independent, so the result is
// bit-identical to running SIMDDecoder on each block (tested).
type MultiSIMDDecoder struct {
	Code                 *Code
	MaxIters             int
	EarlyExit            bool
	RearrangePerHalfIter bool

	// Marks accumulates per-phase trace attribution like SIMDDecoder.
	// It stays empty on an untraced engine (there is no µop stream to
	// attribute, and the serving path must not allocate per decode).
	Marks []PhaseMark
}

// NewMultiSIMDDecoder builds a lane-parallel decoder for code c.
func NewMultiSIMDDecoder(c *Code) *MultiSIMDDecoder {
	return &MultiSIMDDecoder{Code: c, MaxIters: 6, EarlyExit: true, RearrangePerHalfIter: true}
}

// BlocksPerRegister returns how many code blocks width w decodes at
// once.
func BlocksPerRegister(w simd.Width) int { return w.Lanes16() / NumStates }

// multiState is the decoder's working set, split the way a production
// decoder splits it: everything below is derived only from
// (K, width, strategy) — arena regions, index tables, constant-register
// patterns, output buffers — so one multiState built by newMultiState
// can serve an unbounded stream of run() calls without a single
// steady-state heap allocation. MultiSIMDDecoder.Decode builds a
// transient one per call (the traced experiment path); BatchDecoder
// caches one per K (the serving path).
type multiState struct {
	e    *simd.Engine
	ar   core.Arranger
	code *Code
	lay  core.Layout
	nb   int // blocks in flight

	// Per-block arranged arrays and inputs (arena addresses, fixed for
	// the state's lifetime).
	in    []ArrangedInput
	sPerm []int64
	la1   []int64
	la2   []int64
	ext   []int64
	g0    []int64
	g1    []int64
	dPost []int64
	tailG []int64

	alpha int64 // shared history: one full-width register per step

	// constReady guards the one-time constant-register initialization:
	// on a reused state the constant registers still hold their values,
	// so initConstants runs once per state, not once per decode.
	constReady bool

	zero *simd.Vec
	// Masks replicated across the nb blocks.
	maskAlphaU0, maskAlphaU0N *simd.Vec
	maskAlphaU1, maskAlphaU1N *simd.Vec
	maskCurU0, maskCurU0N     *simd.Vec
	maskCurU1, maskCurU1N     *simd.Vec
	// blockMask[b] selects the lanes of lane group b (gamma packing).
	blockMask []*simd.Vec
	// Scratch registers for the gamma packing.
	packT, packA *simd.Vec
	// Permutation index tables, replicated per block.
	prevIdx0, prevIdx1 []int
	nextIdx0, nextIdx1 []int
	lane0Idx           []int
	hmaxIdx            [3][]int
	// negInfInit is the recursion-init lane pattern (state 0 reachable,
	// the rest at negInf16), shared by the alpha and beta phases.
	negInfInit []int16

	// Reusable Go-side buffers: per-block hard decisions, per-block
	// convergence masks and iterations-to-converge, and the lane-padding
	// scratch for under-filled batches.
	bits   [][]byte
	conv   []bool
	itersB []int
	words  []*LLRWord
}

// resetConv arms per-block convergence masks for a new decode: padded
// lane groups (b >= requested) start converged — their results are
// discarded and they must never influence the exit decision — and real
// blocks start live with no recorded iteration count.
func resetConv(conv []bool, itersB []int, requested int) {
	for b := range conv {
		conv[b] = b >= requested
		itersB[b] = 0
	}
}

// stampIters records the final iteration count on every block that
// never froze (including padded blocks, whose count is unreported).
func stampIters(itersB []int, iters int) {
	for b := range itersB {
		if itersB[b] == 0 {
			itersB[b] = iters
		}
	}
}

// extractBits scans the posterior array for every still-live block,
// updating bits in place and tracking a dirty flag per block — the
// former O(k) equalBits re-compare folded into the extraction itself.
// A block whose iteration left its bits unchanged (it > 0) freezes: its
// bits stop updating, exactly like the scalar reference exiting that
// block's decode loop. Returns true when every block has frozen. This
// is a pure Go pass: it emits no engine ops, so the recorded op stream
// stays identical across iterations regardless of which blocks froze.
func (st *multiState) extractBits(earlyExit bool, it int) bool {
	qpp := st.code.qpp
	mem := st.e.Mem
	done := true
	for b := 0; b < st.nb; b++ {
		if st.conv[b] {
			continue
		}
		dirty := false
		bits := st.bits[b]
		for i := 0; i < st.code.K; i++ {
			var v byte
			if mem.ReadI16(st.elemAddr(st.dPost[b], i)) < 0 {
				v = 1
			}
			if p := qpp.Perm(i); bits[p] != v {
				bits[p] = v
				dirty = true
			}
		}
		if earlyExit && it > 0 && !dirty {
			st.conv[b] = true
			st.itersB[b] = it + 1
		} else {
			done = false
		}
	}
	return done
}

func (st *multiState) elemAddr(base int64, k int) int64 {
	g, jj := k/st.lay.GroupLanes, k%st.lay.GroupLanes
	return base + 2*int64(g*st.lay.StrideLanes+st.lay.LanePos[jj])
}

func (st *multiState) vecAddr(base int64, g, rot int) int64 {
	return base + 2*int64(g*st.lay.StrideLanes+rot)
}

// multiStateBytes bounds the arena bytes newMultiState will consume for
// code c at nb blocks (each Alloc is 64-aligned, hence the per-call
// padding allowance). BatchDecoder checks it against Memory.Remaining
// before building a cached state.
func multiStateBytes(c *Code, lay core.Layout, w simd.Width, nb int) int64 {
	k := c.K
	arrBytes := int64(lay.DstBytes(k))
	perBlock := int64(core.InterleavedBytes(k)) + 11*arrBytes + 12
	allocs := int64(nb)*12 + 1
	return int64(nb)*perBlock + int64(int(w))*int64(k+4) + allocs*64
}

// newMultiState allocates the full working set for decoding nb blocks of
// code c on engine e with arrangement ar. The arena allocation order
// matches the historical per-call order exactly, so traced runs see the
// same addresses (and therefore the same cache behaviour) as before the
// plan/scratch split.
func newMultiState(e *simd.Engine, ar core.Arranger, c *Code, nb int) *multiState {
	k := c.K
	lay := ar.Layout(e.W)
	st := &multiState{e: e, ar: ar, code: c, lay: lay, nb: nb}
	arrBytes := lay.DstBytes(k)
	st.in = make([]ArrangedInput, nb)
	st.sPerm = make([]int64, nb)
	st.la1 = make([]int64, nb)
	st.la2 = make([]int64, nb)
	st.ext = make([]int64, nb)
	st.g0 = make([]int64, nb)
	st.g1 = make([]int64, nb)
	st.dPost = make([]int64, nb)
	st.tailG = make([]int64, nb)
	for b := 0; b < nb; b++ {
		src := e.Mem.Alloc(core.InterleavedBytes(k), 64)
		dst := core.Dest{
			S:  e.Mem.Alloc(arrBytes, 64),
			P1: e.Mem.Alloc(arrBytes, 64),
			P2: e.Mem.Alloc(arrBytes, 64),
		}
		st.in[b] = ArrangedInput{
			Lay: lay, S: dst.S, P1: dst.P1, P2: dst.P2,
			Src: src, Arr: ar,
		}
		st.sPerm[b] = e.Mem.Alloc(arrBytes, 64)
		st.la1[b] = e.Mem.Alloc(arrBytes, 64)
		st.la2[b] = e.Mem.Alloc(arrBytes, 64)
		st.ext[b] = e.Mem.Alloc(arrBytes, 64)
		st.g0[b] = e.Mem.Alloc(arrBytes, 64)
		st.g1[b] = e.Mem.Alloc(arrBytes, 64)
		st.dPost[b] = e.Mem.Alloc(arrBytes, 64)
		st.tailG[b] = e.Mem.Alloc(12, 64)
	}
	st.alpha = e.Mem.Alloc(int(e.W)*(k+4), 64)

	st.bits = make([][]byte, nb)
	for b := 0; b < nb; b++ {
		st.bits[b] = make([]byte, k)
	}
	st.conv = make([]bool, nb)
	st.itersB = make([]int, nb)
	st.words = make([]*LLRWord, 0, nb)
	return st
}

// Decode decodes words (one per lane group, at most BlocksPerRegister)
// with arrangement mechanism ar, returning the per-block hard decisions.
// A partially filled batch pads the remaining lane groups with copies of
// the first block (their results are discarded) — wasting lanes, exactly
// as real lane-parallel decoders do on the tail of a transport block.
//
// Decode builds a fresh working set per call (every experiment gets a
// clean arena region and trace); the serving path reuses a cached one
// via BatchDecoder. The returned bit slices are owned by the caller.
func (d *MultiSIMDDecoder) Decode(e *simd.Engine, ar core.Arranger, words []*LLRWord) ([][]byte, int, error) {
	nb := BlocksPerRegister(e.W)
	if nb < 1 {
		return nil, 0, fmt.Errorf("turbo: width %v too narrow for lane-parallel decode", e.W)
	}
	if len(words) < 1 || len(words) > nb {
		return nil, 0, fmt.Errorf("turbo: got %d blocks, %v decodes 1..%d at once", len(words), e.W, nb)
	}
	st := newMultiState(e, ar, d.Code, nb)
	return d.run(st, words)
}

// run executes one lane-parallel decode over a prepared state. It is
// the steady-state entry point: beyond the first call on a state it
// performs no heap allocation. The returned slices alias st.bits and
// are valid until the next run on the same state; Decode hands them
// straight to the caller (transient state), BatchDecoder copies them
// out.
func (d *MultiSIMDDecoder) run(st *multiState, words []*LLRWord) ([][]byte, int, error) {
	nb := st.nb
	if len(words) < 1 || len(words) > nb {
		return nil, 0, fmt.Errorf("turbo: got %d blocks, state decodes 1..%d at once", len(words), nb)
	}
	if st.code.K != d.Code.K {
		return nil, 0, fmt.Errorf("turbo: state built for K=%d, decoder configured for K=%d", st.code.K, d.Code.K)
	}
	requested := len(words)
	st.words = append(st.words[:0], words...)
	for len(st.words) < nb {
		st.words = append(st.words, words[0])
	}
	words = st.words
	e := st.e
	k := st.code.K
	qpp := st.code.qpp
	tr := st.code.trellis
	ar := st.ar
	lay := st.lay

	d.Marks = d.Marks[:0]

	// Arrangement per block (the arrangement process is per-stream;
	// lane parallelism accelerates the recursions, not the packing).
	for b := 0; b < nb; b++ {
		core.WriteInterleaved(e.Mem, st.in[b].Src, words[b].Sys, words[b].P1, words[b].P2)
		st.in[b].TailSys = words[b].TailSys
		st.in[b].TailP1 = words[b].TailP1
		m := d.mark(e, "arrangement")
		ar.Arrange(e, st.in[b].Src, core.Dest{S: st.in[b].S, P1: st.in[b].P1, P2: st.in[b].P2}, k)
		d.setHi(m, e)
	}
	if !st.constReady {
		d.initConstants(st, tr)
		st.constReady = true
	}

	// One-time interleaved systematic gather, per block.
	m := d.mark(e, "interleave")
	for b := 0; b < nb; b++ {
		for i := 0; i < k; i++ {
			e.CopyI16(st.elemAddr(st.sPerm[b], i),
				lay.ElementAddr(st.in[b].S, core.ClusterS, qpp.Perm(i)))
		}
	}
	d.setHi(m, e)

	m = d.mark(e, "init")
	groups := (k + lay.GroupLanes - 1) / lay.GroupLanes
	for b := 0; b < nb; b++ {
		for g := 0; g < groups; g++ {
			e.StoreVec(st.vecAddr(st.la1[b], g, 0), st.zero)
		}
	}
	d.setHi(m, e)

	firstArrange := true
	rearrange := func() {
		if !d.RearrangePerHalfIter {
			return
		}
		if firstArrange {
			firstArrange = false
			return
		}
		mm := d.mark(e, "arrangement")
		for b := 0; b < nb; b++ {
			ar.Arrange(e, st.in[b].Src, core.Dest{S: st.in[b].S, P1: st.in[b].P1, P2: st.in[b].P2}, k)
		}
		d.setHi(mm, e)
	}

	resetConv(st.conv, st.itersB, requested)
	iters := 0
	for it := 0; it < d.MaxIters; it++ {
		iters++
		// Each iteration is one replay unit for the program compiler:
		// the ops between consecutive marks are identical for every
		// iteration after the first (which skips the rearrange).
		e.ProgMark("iteration")
		// Half 1: natural order, terminated.
		rearrange()
		for b := 0; b < nb; b++ {
			d.gamma(st, b, st.in[b].S, st.in[b].P1, core.ClusterP1, st.la1[b], k)
			d.tails(st, b)
		}
		d.alpha(st, k, true)
		d.betaExt(st, k, true)
		for b := 0; b < nb; b++ {
			d.extFin(st, b, st.in[b].S, st.la1[b], k)
		}
		m = d.mark(e, "interleave")
		for b := 0; b < nb; b++ {
			for i := 0; i < k; i++ {
				e.CopyI16(st.elemAddr(st.la2[b], i), st.elemAddr(st.ext[b], qpp.Perm(i)))
			}
		}
		d.setHi(m, e)

		// Half 2: interleaved order, unterminated.
		rearrange()
		for b := 0; b < nb; b++ {
			d.gamma(st, b, st.sPerm[b], st.in[b].P2, core.ClusterP2, st.la2[b], k)
		}
		d.alpha(st, k, false)
		d.betaExt(st, k, false)
		for b := 0; b < nb; b++ {
			d.extFin(st, b, st.sPerm[b], st.la2[b], k)
		}
		m = d.mark(e, "interleave")
		for b := 0; b < nb; b++ {
			for i := 0; i < k; i++ {
				e.CopyI16(st.elemAddr(st.la1[b], qpp.Perm(i)), st.elemAddr(st.ext[b], i))
				e.EmitScalarLoad("mov", st.elemAddr(st.dPost[b], i), 2)
			}
		}
		d.setHi(m, e)

		if st.extractBits(d.EarlyExit, it) {
			break
		}
	}
	stampIters(st.itersB, iters)
	return st.bits[:requested], iters, nil
}

// mark opens a phase mark, or reports -1 on an untraced engine (no µop
// stream to attribute — and the serving path must not grow Marks per
// call).
func (d *MultiSIMDDecoder) mark(e *simd.Engine, name string) int {
	if e.Recorder() == nil {
		return -1
	}
	d.Marks = append(d.Marks, PhaseMark{Name: name, Lo: e.TraceLen()})
	return len(d.Marks) - 1
}

// setHi closes a mark opened by mark (no-op for the untraced -1).
func (d *MultiSIMDDecoder) setHi(m int, e *simd.Engine) {
	if m >= 0 {
		d.Marks[m].Hi = e.TraceLen()
	}
}

// initConstants mirrors SIMDDecoder's constants, replicated across the
// nb lane groups. It runs once per multiState: the constant registers
// and index tables are immutable for the state's lifetime.
func (d *MultiSIMDDecoder) initConstants(st *multiState, tr *Trellis) {
	e := st.e
	nb := st.nb
	lanes := e.W.Lanes16()
	st.zero = e.NewVec()
	e.PXor(st.zero, st.zero, st.zero)

	pattern := func(sel func(lane int) bool) (m, n *simd.Vec) {
		p := make([]int16, lanes)
		q := make([]int16, lanes)
		for b := 0; b < nb; b++ {
			for s := 0; s < NumStates; s++ {
				if sel(s) {
					p[b*NumStates+s] = -1
				} else {
					q[b*NumStates+s] = -1
				}
			}
		}
		m, n = e.NewVec(), e.NewVec()
		e.SetImm(m, p)
		e.SetImm(n, q)
		return m, n
	}
	st.maskAlphaU0, st.maskAlphaU0N = pattern(func(s int) bool { return tr.Parity[tr.Prev[s][0]][0] == 0 })
	st.maskAlphaU1, st.maskAlphaU1N = pattern(func(s int) bool { return tr.Parity[tr.Prev[s][1]][1] == 0 })
	st.maskCurU0, st.maskCurU0N = pattern(func(s int) bool { return tr.Parity[s][0] == 0 })
	st.maskCurU1, st.maskCurU1N = pattern(func(s int) bool { return tr.Parity[s][1] == 0 })

	rep := func(f func(s int) int) []int {
		idx := make([]int, lanes)
		for b := 0; b < nb; b++ {
			for s := 0; s < NumStates; s++ {
				idx[b*NumStates+s] = b*NumStates + f(s)
			}
		}
		return idx
	}
	st.prevIdx0 = rep(func(s int) int { return tr.Prev[s][0] })
	st.prevIdx1 = rep(func(s int) int { return tr.Prev[s][1] })
	st.nextIdx0 = rep(func(s int) int { return tr.Next[s][0] })
	st.nextIdx1 = rep(func(s int) int { return tr.Next[s][1] })
	st.lane0Idx = rep(func(s int) int { return 0 })
	st.blockMask = make([]*simd.Vec, nb)
	for b := 0; b < nb; b++ {
		pat := make([]int16, lanes)
		for s := 0; s < NumStates; s++ {
			pat[b*NumStates+s] = -1
		}
		st.blockMask[b] = e.NewVec()
		e.SetImm(st.blockMask[b], pat)
	}
	st.packT, st.packA = e.NewVec(), e.NewVec()
	st.hmaxIdx[0] = rep(func(s int) int { return (s + 4) % 8 })
	st.hmaxIdx[1] = rep(func(s int) int { return s ^ 2 })
	st.hmaxIdx[2] = rep(func(s int) int { return s ^ 1 })
	st.negInfInit = make([]int16, lanes)
	for b := 0; b < nb; b++ {
		for s := 1; s < NumStates; s++ {
			st.negInfInit[b*NumStates+s] = negInf16
		}
	}
}

// gamma runs the vectorized per-block gamma phase (identical to the
// single-block decoder: the gamma computation is elementwise over each
// block's arranged arrays and already uses the full register width).
func (d *MultiSIMDDecoder) gamma(st *multiState, b int, sysBase, parBase int64, parC core.Cluster, laBase int64, k int) {
	e := st.e
	m := d.mark(e, "gamma")
	L := st.lay.GroupLanes
	groups := k / L
	s, p, la, t, g0, g1 := e.AcquireVec(), e.AcquireVec(), e.AcquireVec(), e.AcquireVec(), e.AcquireVec(), e.AcquireVec()
	for g := 0; g < groups; g++ {
		e.LoadVec(s, st.vecAddr(sysBase, g, st.lay.Rot[core.ClusterS]))
		e.LoadVec(p, st.vecAddr(parBase, g, st.lay.Rot[parC]))
		e.LoadVec(la, st.vecAddr(laBase, g, 0))
		e.PAddSW(t, s, la)
		e.PAddSW(g0, t, p)
		e.PSubSW(g1, t, p)
		e.StoreVec(st.vecAddr(st.g0[b], g, 0), g0)
		e.StoreVec(st.vecAddr(st.g1[b], g, 0), g1)
	}
	for i := groups * L; i < k; i++ {
		e.ScalarGammaPoint(st.elemAddr(st.g0[b], i), st.elemAddr(st.g1[b], i),
			st.lay.ElementAddr(sysBase, core.ClusterS, i),
			st.lay.ElementAddr(parBase, parC, i),
			st.elemAddr(laBase, i))
	}
	e.ReleaseVec(s, p, la, t, g0, g1)
	d.setHi(m, e)
}

func (d *MultiSIMDDecoder) tails(st *multiState, b int) {
	e := st.e
	m := d.mark(e, "gamma")
	st.writeTailGammas(b)
	for i := 0; i < 3; i++ {
		e.EmitScalar("add", 2)
		e.EmitScalarStore("mov", st.tailG[b]+int64(4*i), 4)
	}
	d.setHi(m, e)
}

// writeTailGammas stores block b's three termination-step branch
// metrics. The values depend only on the block's tail inputs (not on
// the iteration), so the compiled-replay driver writes them once per
// decode up front; the interpreted path keeps calling it from tails()
// every iteration, with identical results.
func (st *multiState) writeTailGammas(b int) {
	w := st.in[b]
	for i := 0; i < 3; i++ {
		sa, pp := int32(w.TailSys[i]), int32(w.TailP1[i])
		st.e.Mem.WriteI16(st.tailG[b]+int64(4*i), sat16(sa+pp))
		st.e.Mem.WriteI16(st.tailG[b]+int64(4*i+2), sat16(sa-pp))
	}
}

func (st *multiState) gammaAddrs(b, k, blockK int) (int64, int64) {
	if k < blockK {
		return st.elemAddr(st.g0[b], k), st.elemAddr(st.g1[b], k)
	}
	t := int64(4 * (k - blockK))
	return st.tailG[b] + t, st.tailG[b] + t + 2
}

// packGammas assembles the per-block g0[k] (and g1[k]) branch-metric
// values into full-width registers: each block's value is broadcast from
// memory (independent loads), masked to its lane group and OR-combined —
// the step that amortizes the recursion over blocks without a serial
// partial-register merge chain.
func (d *MultiSIMDDecoder) packGammas(st *multiState, k, blockK int, bg0, bg1 *simd.Vec) {
	e := st.e
	for gi, dst := range [2]*simd.Vec{bg0, bg1} {
		for b := 0; b < st.nb; b++ {
			a0, a1 := st.gammaAddrs(b, k, blockK)
			addr := a0
			if gi == 1 {
				addr = a1
			}
			if st.nb == 1 {
				e.Broadcast16FromMem(dst, addr)
				continue
			}
			e.Broadcast16FromMem(st.packA, addr)
			if b == 0 {
				e.PAnd(dst, st.packA, st.blockMask[b])
			} else {
				e.PAnd(st.packT, st.packA, st.blockMask[b])
				e.POr(dst, dst, st.packT)
			}
		}
	}
}

func (st *multiState) bmVecs(bg0, bg1, ng0, ng1, t1, t2, bm0, bm1 *simd.Vec, m0, m0n, m1, m1n *simd.Vec) {
	e := st.e
	e.PAnd(t1, bg0, m0)
	e.PAnd(t2, bg1, m0n)
	e.POr(bm0, t1, t2)
	e.PAnd(t1, ng1, m1)
	e.PAnd(t2, ng0, m1n)
	e.POr(bm1, t1, t2)
}

// alpha runs the forward recursion for all blocks at once; steps is the
// longest trellis (terminated blocks include 3 tail steps; the shared
// loop runs them for every lane group, and unterminated halves ignore
// the tail lanes — tail steps only exist when terminated is true, which
// applies to every block simultaneously since they share K).
func (d *MultiSIMDDecoder) alpha(st *multiState, blockK int, terminated bool) {
	e := st.e
	m := d.mark(e, "alpha")
	steps := blockK
	if terminated {
		steps += 3
	}

	alpha := e.AcquireVec()
	e.SetImm(alpha, st.negInfInit)
	e.StoreVec(st.alpha, alpha)

	bg0, bg1 := e.AcquireVec(), e.AcquireVec()
	ng0, ng1 := e.AcquireVec(), e.AcquireVec()
	t1, t2, bm0, bm1 := e.AcquireVec(), e.AcquireVec(), e.AcquireVec(), e.AcquireVec()
	a0, a1, c0, c1, norm := e.AcquireVec(), e.AcquireVec(), e.AcquireVec(), e.AcquireVec(), e.AcquireVec()

	for k := 0; k < steps; k++ {
		d.packGammas(st, k, blockK, bg0, bg1)
		e.PSubSW(ng0, st.zero, bg0)
		e.PSubSW(ng1, st.zero, bg1)
		st.bmVecs(bg0, bg1, ng0, ng1, t1, t2, bm0, bm1,
			st.maskAlphaU0, st.maskAlphaU0N, st.maskAlphaU1, st.maskAlphaU1N)
		e.PermuteW(a0, alpha, st.prevIdx0)
		e.PermuteW(a1, alpha, st.prevIdx1)
		e.PAddSW(c0, a0, bm0)
		e.PAddSW(c1, a1, bm1)
		e.PMaxSW(alpha, c0, c1)
		e.PermuteW(norm, alpha, st.lane0Idx)
		e.PSubSW(alpha, alpha, norm)
		e.StoreVec(st.alpha+int64(int(e.W))*int64(k+1), alpha)
	}
	e.ReleaseVec(alpha, bg0, bg1, ng0, ng1, t1, t2, bm0, bm1, a0, a1, c0, c1, norm)
	d.setHi(m, e)
}

// betaExt runs the fused backward recursion + posterior extraction for
// all blocks.
func (d *MultiSIMDDecoder) betaExt(st *multiState, blockK int, terminated bool) {
	e := st.e
	m := d.mark(e, "beta+ext")
	steps := blockK
	beta := e.AcquireVec()
	if terminated {
		steps += 3
		e.SetImm(beta, st.negInfInit)
	} else {
		e.PXor(beta, beta, beta)
	}

	bg0, bg1 := e.AcquireVec(), e.AcquireVec()
	ng0, ng1 := e.AcquireVec(), e.AcquireVec()
	t1, t2, bm0, bm1 := e.AcquireVec(), e.AcquireVec(), e.AcquireVec(), e.AcquireVec()
	b0, b1, v0, v1 := e.AcquireVec(), e.AcquireVec(), e.AcquireVec(), e.AcquireVec()
	alpha, e0, e1, m0, m1, dv, norm := e.AcquireVec(), e.AcquireVec(), e.AcquireVec(), e.AcquireVec(), e.AcquireVec(), e.AcquireVec(), e.AcquireVec()

	for k := steps - 1; k >= 0; k-- {
		d.packGammas(st, k, blockK, bg0, bg1)
		e.PSubSW(ng0, st.zero, bg0)
		e.PSubSW(ng1, st.zero, bg1)
		st.bmVecs(bg0, bg1, ng0, ng1, t1, t2, bm0, bm1,
			st.maskCurU0, st.maskCurU0N, st.maskCurU1, st.maskCurU1N)
		e.PermuteW(b0, beta, st.nextIdx0)
		e.PermuteW(b1, beta, st.nextIdx1)
		e.PAddSW(v0, b0, bm0)
		e.PAddSW(v1, b1, bm1)

		if k < blockK {
			e.LoadVec(alpha, st.alpha+int64(int(e.W))*int64(k))
			e.PAddSW(e0, alpha, v0)
			e.PAddSW(e1, alpha, v1)
			d.hmaxBlocks(st, e0, m0, t1)
			d.hmaxBlocks(st, e1, m1, t1)
			e.PSubSW(dv, m0, m1)
			for b := 0; b < st.nb; b++ {
				e.PExtrWToMem(st.elemAddr(st.dPost[b], k), dv, b*NumStates)
			}
		}

		e.PMaxSW(beta, v0, v1)
		e.PermuteW(norm, beta, st.lane0Idx)
		e.PSubSW(beta, beta, norm)
	}
	e.ReleaseVec(beta, bg0, bg1, ng0, ng1, t1, t2, bm0, bm1, b0, b1, v0, v1,
		alpha, e0, e1, m0, m1, dv, norm)
	d.setHi(m, e)
}

// hmaxBlocks reduces the maximum within each 8-lane block group.
func (d *MultiSIMDDecoder) hmaxBlocks(st *multiState, v, dst, tmp *simd.Vec) {
	e := st.e
	e.PermuteW(tmp, v, st.hmaxIdx[0])
	e.PMaxSW(dst, v, tmp)
	e.PermuteW(tmp, dst, st.hmaxIdx[1])
	e.PMaxSW(dst, dst, tmp)
	e.PermuteW(tmp, dst, st.hmaxIdx[2])
	e.PMaxSW(dst, dst, tmp)
}

// extFin is the per-block vectorized extrinsic finalization.
func (d *MultiSIMDDecoder) extFin(st *multiState, b int, sysBase, laBase int64, k int) {
	e := st.e
	m := d.mark(e, "ext")
	L := st.lay.GroupLanes
	groups := k / L
	dvec, s, la, t, half, lim, nlim := e.AcquireVec(), e.AcquireVec(), e.AcquireVec(), e.AcquireVec(), e.AcquireVec(), e.AcquireVec(), e.AcquireVec()
	e.Broadcast16(lim, extClamp)
	e.Broadcast16(nlim, -extClamp)
	for g := 0; g < groups; g++ {
		e.LoadVec(dvec, st.vecAddr(st.dPost[b], g, 0))
		e.LoadVec(s, st.vecAddr(sysBase, g, st.lay.Rot[core.ClusterS]))
		e.LoadVec(la, st.vecAddr(laBase, g, 0))
		e.PAddSW(t, s, la)
		e.PSraW(half, dvec, 1)
		e.PSubSW(half, half, t)
		e.PMinSW(half, half, lim)
		e.PMaxSW(half, half, nlim)
		e.StoreVec(st.vecAddr(st.ext[b], g, 0), half)
	}
	for i := groups * L; i < k; i++ {
		e.ScalarExtPoint(st.elemAddr(st.ext[b], i),
			st.lay.ElementAddr(sysBase, core.ClusterS, i),
			st.elemAddr(laBase, i),
			st.elemAddr(st.dPost[b], i), extClamp)
	}
	e.ReleaseVec(dvec, s, la, t, half, lim, nlim)
	d.setHi(m, e)
}
