package turbo

import (
	"fmt"

	"vransim/internal/core"
	"vransim/internal/simd"
)

// negInf16 marks unreachable trellis states in the SIMD build. It is far
// enough below any reachable metric (inputs are bounded by LLRLimit) that
// unreachable states can never win a max, yet far enough above the int16
// saturation floor that saturating subtracts keep the ordering.
const negInf16 = -12288

// LLRLimit bounds the channel LLR magnitude accepted by the SIMD
// decoder; within it the int16 saturating arithmetic is exact and the
// SIMD build matches the int32 scalar reference bit for bit.
const LLRLimit = 256

// PhaseMark labels a half-open µop range [Lo, Hi) of the engine trace
// with the decoder submodule that produced it; the experiment harness
// uses the marks to attribute cycles to arrangement / gamma / alpha /
// beta / extrinsic, as the paper's Figures 9 and 14 do.
type PhaseMark struct {
	Name   string
	Lo, Hi int
}

// ArrangedInput is the decoder's view of the arranged LLR arrays living
// in engine memory.
type ArrangedInput struct {
	Lay     core.Layout
	S       int64 // systematic, natural bit order
	P1      int64 // parity 1, natural order
	P2      int64 // parity 2, interleaved order
	TailSys [3]int16
	TailP1  [3]int16

	// Src is the interleaved [S P1 P2] stream and Arr the arranger that
	// produced the arrays above; set by PrepareInput so Decode can
	// re-run the arrangement per half-iteration (RearrangePerHalfIter).
	// With Arr nil the arrays are used as-is.
	Src int64
	Arr core.Arranger
}

// SIMDDecoder is the max-log-MAP turbo decoder built on the emulated
// SIMD engine. Its gamma stage is vectorized at the full engine width
// over the arranged arrays (reading yparity at the rotate-mimic offsets)
// and its alpha/beta/extrinsic recursions run state-parallel on 8 lanes,
// mirroring the structure of the OAI decoder the paper profiles.
type SIMDDecoder struct {
	Code      *Code
	MaxIters  int
	EarlyExit bool

	// RearrangePerHalfIter re-runs the data arrangement before each
	// constituent (MAP) invocation, matching the OAI structure the
	// paper profiles, where the arrangement "generates the input values
	// systematic1, yparity1 and yparity2 for the gamma, alpha, beta and
	// ext calculations" on every decoder call. This is what makes the
	// arrangement 13-19.5% of decode time (Figure 9); disable it for
	// the one-shot-arrangement ablation.
	RearrangePerHalfIter bool

	// Marks accumulates the per-phase trace attribution of the last
	// Decode call.
	Marks []PhaseMark
}

// NewSIMDDecoder builds a SIMD decoder for code c.
func NewSIMDDecoder(c *Code) *SIMDDecoder {
	return &SIMDDecoder{Code: c, MaxIters: 6, EarlyExit: true, RearrangePerHalfIter: true}
}

// PrepareInput writes w as an interleaved [S P1 P2] stream into engine
// memory and runs arranger ar over it (emitting the arrangement µops, so
// the returned marks-to-come include the arrangement phase), yielding the
// decoder input.
func (d *SIMDDecoder) PrepareInput(e *simd.Engine, ar core.Arranger, w *LLRWord) ArrangedInput {
	k := d.Code.K
	src := e.Mem.Alloc(core.InterleavedBytes(k), 64)
	core.WriteInterleaved(e.Mem, src, w.Sys, w.P1, w.P2)
	lay := ar.Layout(e.W)
	dst := core.Dest{
		S:  e.Mem.Alloc(lay.DstBytes(k), 64),
		P1: e.Mem.Alloc(lay.DstBytes(k), 64),
		P2: e.Mem.Alloc(lay.DstBytes(k), 64),
	}
	lo := e.TraceLen()
	ar.Arrange(e, src, dst, k)
	d.Marks = append(d.Marks[:0], PhaseMark{Name: "arrangement", Lo: lo, Hi: e.TraceLen()})
	return ArrangedInput{
		Lay: lay, S: dst.S, P1: dst.P1, P2: dst.P2,
		TailSys: w.TailSys, TailP1: w.TailP1,
		Src: src, Arr: ar,
	}
}

// decodeState bundles the memory regions and constant registers one
// Decode call works with.
type decodeState struct {
	e   *simd.Engine
	lay core.Layout

	// arranged-layout arrays (element addressing via elemAddr)
	sPerm, la1, la2, ext, g0, g1, dPost int64
	// tail gammas for the terminated first constituent, natural order
	tailG int64
	// alpha history, 16 bytes per trellis step
	alpha int64

	zero               *simd.Vec
	maskAlphaU0        *simd.Vec // parity==0 pattern over next-state lanes, u=0
	maskAlphaU0N       *simd.Vec
	maskAlphaU1        *simd.Vec
	maskAlphaU1N       *simd.Vec
	maskCurU0          *simd.Vec // parity==0 pattern over current-state lanes
	maskCurU0N         *simd.Vec
	maskCurU1          *simd.Vec
	maskCurU1N         *simd.Vec
	prevIdx0, prevIdx1 []int
	nextIdx0, nextIdx1 []int
	lane0Idx           []int
}

// elemAddr returns the address of element k of an arranged-layout array
// based at base (rot-0 view: the lane order shared by every derived
// array).
func (st *decodeState) elemAddr(base int64, k int) int64 {
	g, jj := k/st.lay.GroupLanes, k%st.lay.GroupLanes
	return base + 2*int64(g*st.lay.StrideLanes+st.lay.LanePos[jj])
}

// vecAddr returns the address for a full-width vector access to group g
// of an array based at base, at lane offset rot (the rotate-mimic read).
func (st *decodeState) vecAddr(base int64, g, rot int) int64 {
	return base + 2*int64(g*st.lay.StrideLanes+rot)
}

// Decode runs iterative SIMD decoding over in, returning hard bits and
// iterations used. The µop stream is appended to e's trace and Marks is
// rebuilt (keeping any arrangement mark from PrepareInput).
func (d *SIMDDecoder) Decode(e *simd.Engine, in ArrangedInput) ([]byte, int, error) {
	k := d.Code.K
	tr := d.Code.trellis
	qpp := d.Code.qpp
	lay := in.Lay
	if lay.GroupLanes != e.W.Lanes16() {
		return nil, 0, fmt.Errorf("turbo: layout lanes %d != engine width lanes %d", lay.GroupLanes, e.W.Lanes16())
	}

	st := &decodeState{e: e, lay: lay}
	arrBytes := lay.DstBytes(k)
	st.sPerm = e.Mem.Alloc(arrBytes, 64)
	st.la1 = e.Mem.Alloc(arrBytes, 64)
	st.la2 = e.Mem.Alloc(arrBytes, 64)
	st.ext = e.Mem.Alloc(arrBytes, 64)
	st.g0 = e.Mem.Alloc(arrBytes, 64)
	st.g1 = e.Mem.Alloc(arrBytes, 64)
	st.dPost = e.Mem.Alloc(arrBytes, 64)
	st.tailG = e.Mem.Alloc(2*2*3, 64)
	st.alpha = e.Mem.Alloc(16*(k+4), 64)
	d.initConstants(st, tr)

	// The second constituent reads the systematic stream interleaved:
	// a one-time scalar gather (matching the OAI code structure).
	mark := d.markFrom(e, "interleave")
	for i := 0; i < k; i++ {
		src := in.Lay.ElementAddr(in.S, core.ClusterS, qpp.Perm(i))
		dstA := st.elemAddr(st.sPerm, i)
		e.Mem.WriteI16(dstA, e.Mem.ReadI16(src))
		e.EmitScalarLoad("movzx", src, 2)
		e.EmitScalarStore("mov", dstA, 2)
	}
	d.closeMark(e, mark)

	// Zero the a-priori array for the first half-iteration.
	mark = d.markFrom(e, "init")
	zeroGroups := (k + lay.GroupLanes - 1) / lay.GroupLanes
	for g := 0; g < zeroGroups; g++ {
		e.StoreVec(st.vecAddr(st.la1, g, 0), st.zero)
	}
	d.closeMark(e, mark)

	// rearrange re-runs the data arrangement over the interleaved
	// source, refreshing the S/P1/P2 arrays (idempotent functionally;
	// its µop stream is what the paper's Figure 9/14 measure).
	firstArrange := true
	rearrange := func() {
		if !d.RearrangePerHalfIter || in.Arr == nil {
			return
		}
		if firstArrange {
			// PrepareInput already arranged once for this call.
			firstArrange = false
			return
		}
		m := d.markFrom(e, "arrangement")
		in.Arr.Arrange(e, in.Src, core.Dest{S: in.S, P1: in.P1, P2: in.P2}, k)
		d.closeMark(e, m)
	}

	bits := make([]byte, k)
	prev := make([]byte, k)
	iters := 0
	for it := 0; it < d.MaxIters; it++ {
		iters++
		// Half-iteration 1: natural order, terminated.
		rearrange()
		d.gammaPhase(st, in.S, core.ClusterS, in.P1, core.ClusterP1, st.la1, k)
		d.tailGammas(st, in.TailSys, in.TailP1)
		d.alphaPhase(st, tr, k, true)
		d.betaExtPhase(st, tr, k, true)
		d.extFinalize(st, in.S, core.ClusterS, st.la1, k)
		// ext -> la2, interleaved.
		mark = d.markFrom(e, "interleave")
		for i := 0; i < k; i++ {
			src := st.elemAddr(st.ext, qpp.Perm(i))
			dstA := st.elemAddr(st.la2, i)
			e.Mem.WriteI16(dstA, e.Mem.ReadI16(src))
			e.EmitScalarLoad("movzx", src, 2)
			e.EmitScalarStore("mov", dstA, 2)
		}
		d.closeMark(e, mark)

		// Half-iteration 2: interleaved order, unterminated.
		rearrange()
		d.gammaPhase(st, st.sPerm, core.ClusterS, in.P2, core.ClusterP2, st.la2, k)
		d.alphaPhase(st, tr, k, false)
		d.betaExtPhase(st, tr, k, false)
		d.extFinalize(st, st.sPerm, core.ClusterS, st.la2, k)
		// ext -> la1, deinterleaved; decisions from the posterior.
		mark = d.markFrom(e, "interleave")
		for i := 0; i < k; i++ {
			src := st.elemAddr(st.ext, i)
			dstA := st.elemAddr(st.la1, qpp.Perm(i))
			e.Mem.WriteI16(dstA, e.Mem.ReadI16(src))
			e.EmitScalarLoad("movzx", src, 2)
			e.EmitScalarStore("mov", dstA, 2)
			dAddr := st.elemAddr(st.dPost, i)
			e.EmitScalarLoad("mov", dAddr, 2)
			if e.Mem.ReadI16(dAddr) < 0 {
				bits[qpp.Perm(i)] = 1
			} else {
				bits[qpp.Perm(i)] = 0
			}
		}
		d.closeMark(e, mark)

		if d.EarlyExit && it > 0 && equalBits(bits, prev) {
			break
		}
		copy(prev, bits)
	}
	return bits, iters, nil
}

// markFrom opens a phase mark; closeMark completes it.
func (d *SIMDDecoder) markFrom(e *simd.Engine, name string) int {
	d.Marks = append(d.Marks, PhaseMark{Name: name, Lo: e.TraceLen()})
	return len(d.Marks) - 1
}

func (d *SIMDDecoder) closeMark(e *simd.Engine, idx int) {
	d.Marks[idx].Hi = e.TraceLen()
}

// initConstants loads the zero register, the trellis mask constants and
// the permutation index tables.
func (d *SIMDDecoder) initConstants(st *decodeState, tr *Trellis) {
	e := st.e
	st.zero = e.NewVec()
	e.PXor(st.zero, st.zero, st.zero)

	pattern := func(sel func(lane int) bool) (m, n *simd.Vec) {
		p := make([]int16, 8)
		q := make([]int16, 8)
		for l := 0; l < 8; l++ {
			if sel(l) {
				p[l] = -1
			} else {
				q[l] = -1
			}
		}
		m, n = e.NewVec(), e.NewVec()
		e.SetImm(m, p)
		e.SetImm(n, q)
		return m, n
	}
	// Alpha-side masks are indexed by the *next* state lane.
	st.maskAlphaU0, st.maskAlphaU0N = pattern(func(s int) bool { return tr.Parity[tr.Prev[s][0]][0] == 0 })
	st.maskAlphaU1, st.maskAlphaU1N = pattern(func(s int) bool { return tr.Parity[tr.Prev[s][1]][1] == 0 })
	// Beta/ext-side masks are indexed by the *current* state lane.
	st.maskCurU0, st.maskCurU0N = pattern(func(s int) bool { return tr.Parity[s][0] == 0 })
	st.maskCurU1, st.maskCurU1N = pattern(func(s int) bool { return tr.Parity[s][1] == 0 })

	st.prevIdx0 = make([]int, 8)
	st.prevIdx1 = make([]int, 8)
	st.nextIdx0 = make([]int, 8)
	st.nextIdx1 = make([]int, 8)
	st.lane0Idx = make([]int, e.W.Lanes16())
	for s := 0; s < 8; s++ {
		st.prevIdx0[s] = tr.Prev[s][0]
		st.prevIdx1[s] = tr.Prev[s][1]
		st.nextIdx0[s] = tr.Next[s][0]
		st.nextIdx1[s] = tr.Next[s][1]
	}
}

// gammaPhase computes g0[k] = (sys+la)+par and g1[k] = (sys+la)-par for
// all k, vectorized at the full engine width over the arranged arrays —
// the SIMD calculation stage whose inputs the arrangement feeds.
func (d *SIMDDecoder) gammaPhase(st *decodeState, sysBase int64, sysC core.Cluster, parBase int64, parC core.Cluster, laBase int64, k int) {
	e := st.e
	mark := d.markFrom(e, "gamma")
	L := st.lay.GroupLanes
	groups := k / L
	s, p, la, t, g0, g1 := e.NewVec(), e.NewVec(), e.NewVec(), e.NewVec(), e.NewVec(), e.NewVec()
	for g := 0; g < groups; g++ {
		e.LoadVec(s, st.vecAddr(sysBase, g, st.lay.Rot[sysC]))
		e.LoadVec(p, st.vecAddr(parBase, g, st.lay.Rot[parC]))
		e.LoadVec(la, st.vecAddr(laBase, g, 0))
		e.PAddSW(t, s, la)
		e.PAddSW(g0, t, p)
		e.PSubSW(g1, t, p)
		e.StoreVec(st.vecAddr(st.g0, g, 0), g0)
		e.StoreVec(st.vecAddr(st.g1, g, 0), g1)
	}
	// Tail of the block (k not a multiple of the group size): scalar.
	lay := st.lay
	for i := groups * L; i < k; i++ {
		sv := e.Mem.ReadI16(lay.ElementAddr(sysBase, sysC, i))
		pv := e.Mem.ReadI16(lay.ElementAddr(parBase, parC, i))
		lv := e.Mem.ReadI16(st.elemAddr(laBase, i))
		sa := int32(sv) + int32(lv)
		e.Mem.WriteI16(st.elemAddr(st.g0, i), sat16(sa+int32(pv)))
		e.Mem.WriteI16(st.elemAddr(st.g1, i), sat16(sa-int32(pv)))
		e.EmitScalar("add", 2)
		e.EmitScalarLoad("mov", lay.ElementAddr(sysBase, sysC, i), 2)
		e.EmitScalarLoad("mov", lay.ElementAddr(parBase, parC, i), 2)
		e.EmitScalarLoad("mov", st.elemAddr(laBase, i), 2)
		e.EmitScalarStore("mov", st.elemAddr(st.g0, i), 2)
		e.EmitScalarStore("mov", st.elemAddr(st.g1, i), 2)
	}
	d.closeMark(e, mark)
}

func sat16(x int32) int16 {
	if x > 32767 {
		return 32767
	}
	if x < -32768 {
		return -32768
	}
	return int16(x)
}

// tailGammas writes the three termination-step gammas for the first
// constituent (scalar: three elements).
func (d *SIMDDecoder) tailGammas(st *decodeState, tailSys, tailP1 [3]int16) {
	e := st.e
	mark := d.markFrom(e, "gamma")
	for i := 0; i < 3; i++ {
		sa, pp := int32(tailSys[i]), int32(tailP1[i])
		e.Mem.WriteI16(st.tailG+int64(4*i), sat16(sa+pp))
		e.Mem.WriteI16(st.tailG+int64(4*i+2), sat16(sa-pp))
		e.EmitScalar("add", 2)
		e.EmitScalarStore("mov", st.tailG+int64(4*i), 4)
	}
	d.closeMark(e, mark)
}

// gammaAddrs returns the addresses of g0[k], g1[k], covering the tail
// region of the terminated constituent.
func (st *decodeState) gammaAddrs(k, blockK int) (a0, a1 int64) {
	if k < blockK {
		return st.elemAddr(st.g0, k), st.elemAddr(st.g1, k)
	}
	t := int64(4 * (k - blockK))
	return st.tailG + t, st.tailG + t + 2
}

// bmVecs builds the two branch-metric vectors for one trellis step from
// the broadcast g0/g1 registers: bm0 selects +g0/+g1 by the u=0 parity
// mask, bm1 selects -g1/-g0 by the u=1 parity mask.
func (st *decodeState) bmVecs(bg0, bg1, ng0, ng1, t1, t2, bm0, bm1 *simd.Vec, m0, m0n, m1, m1n *simd.Vec) {
	e := st.e
	e.PAnd(t1, bg0, m0)
	e.PAnd(t2, bg1, m0n)
	e.POr(bm0, t1, t2)
	e.PAnd(t1, ng1, m1)
	e.PAnd(t2, ng0, m1n)
	e.POr(bm1, t1, t2)
}

// alphaPhase runs the forward recursion over steps trellis steps,
// storing each normalized alpha vector (8 int16 states, one xmm) to the
// alpha history.
func (d *SIMDDecoder) alphaPhase(st *decodeState, tr *Trellis, blockK int, terminated bool) {
	e := st.e
	mark := d.markFrom(e, "alpha")
	steps := blockK
	if terminated {
		steps += 3
	}

	alpha := e.NewVec()
	init := make([]int16, 8)
	for s := 1; s < 8; s++ {
		init[s] = negInf16
	}
	e.SetImm(alpha, init)
	e.StoreVec128(st.alpha, alpha)

	bg0, bg1 := e.NewVec(), e.NewVec()
	ng0, ng1 := e.NewVec(), e.NewVec()
	t1, t2, bm0, bm1 := e.NewVec(), e.NewVec(), e.NewVec(), e.NewVec()
	a0, a1, c0, c1, norm := e.NewVec(), e.NewVec(), e.NewVec(), e.NewVec(), e.NewVec()

	for k := 0; k < steps; k++ {
		g0a, g1a := st.gammaAddrs(k, blockK)
		e.Broadcast16FromMem(bg0, g0a)
		e.Broadcast16FromMem(bg1, g1a)
		e.PSubSW(ng0, st.zero, bg0)
		e.PSubSW(ng1, st.zero, bg1)
		st.bmVecs(bg0, bg1, ng0, ng1, t1, t2, bm0, bm1,
			st.maskAlphaU0, st.maskAlphaU0N, st.maskAlphaU1, st.maskAlphaU1N)
		e.PermuteW(a0, alpha, st.prevIdx0)
		e.PermuteW(a1, alpha, st.prevIdx1)
		e.PAddSW(c0, a0, bm0)
		e.PAddSW(c1, a1, bm1)
		e.PMaxSW(alpha, c0, c1)
		// Normalize by state 0 (lane-0 broadcast + subtract), the same
		// rule the scalar reference applies.
		e.PermuteW(norm, alpha, st.lane0Idx)
		e.PSubSW(alpha, alpha, norm)
		e.StoreVec128(st.alpha+16*int64(k+1), alpha)
	}
	d.closeMark(e, mark)
}

// betaExtPhase runs the backward recursion and, fused with it, the
// extrinsic/posterior computation: at step k it has beta[k+1] in a
// register, computes the branch sums v_u = bm_u + beta[next], derives
// beta[k] = max_u v_u, and for information steps loads alpha[k] to form
// the posterior difference D[k] = max(alpha+v0) - max(alpha+v1).
func (d *SIMDDecoder) betaExtPhase(st *decodeState, tr *Trellis, blockK int, terminated bool) {
	e := st.e
	markBeta := d.markFrom(e, "beta+ext")
	steps := blockK
	beta := e.NewVec()
	if terminated {
		steps += 3
		init := make([]int16, 8)
		for s := 1; s < 8; s++ {
			init[s] = negInf16
		}
		e.SetImm(beta, init)
	} else {
		e.PXor(beta, beta, beta)
	}

	bg0, bg1 := e.NewVec(), e.NewVec()
	ng0, ng1 := e.NewVec(), e.NewVec()
	t1, t2, bm0, bm1 := e.NewVec(), e.NewVec(), e.NewVec(), e.NewVec()
	b0, b1, v0, v1 := e.NewVec(), e.NewVec(), e.NewVec(), e.NewVec()
	alpha, e0, e1, m0, m1, dv, norm := e.NewVec(), e.NewVec(), e.NewVec(), e.NewVec(), e.NewVec(), e.NewVec(), e.NewVec()

	for k := steps - 1; k >= 0; k-- {
		g0a, g1a := st.gammaAddrs(k, blockK)
		e.Broadcast16FromMem(bg0, g0a)
		e.Broadcast16FromMem(bg1, g1a)
		e.PSubSW(ng0, st.zero, bg0)
		e.PSubSW(ng1, st.zero, bg1)
		st.bmVecs(bg0, bg1, ng0, ng1, t1, t2, bm0, bm1,
			st.maskCurU0, st.maskCurU0N, st.maskCurU1, st.maskCurU1N)
		e.PermuteW(b0, beta, st.nextIdx0)
		e.PermuteW(b1, beta, st.nextIdx1)
		e.PAddSW(v0, b0, bm0)
		e.PAddSW(v1, b1, bm1)

		if k < blockK {
			// Posterior for the information step.
			e.LoadVec128(alpha, st.alpha+16*int64(k))
			e.PAddSW(e0, alpha, v0)
			e.PAddSW(e1, alpha, v1)
			hmax(e, e0, m0, t1)
			hmax(e, e1, m1, t1)
			e.PSubSW(dv, m0, m1)
			e.PExtrWToMem(st.elemAddr(st.dPost, k), dv, 0)
		}

		e.PMaxSW(beta, v0, v1)
		e.PermuteW(norm, beta, st.lane0Idx)
		e.PSubSW(beta, beta, norm)
	}
	d.closeMark(e, markBeta)
}

// hmax's three shuffle rounds, hoisted so the hot loop does not
// re-materialize the literal index slices on every call.
var (
	hmaxRound0 = []int{4, 5, 6, 7, 0, 1, 2, 3}
	hmaxRound1 = []int{2, 3, 0, 1, 6, 7, 4, 5}
	hmaxRound2 = []int{1, 0, 3, 2, 5, 4, 7, 6}
)

// hmax reduces the maximum of lanes 0-7 of v into every one of its low 8
// lanes (3 shuffle+max rounds), leaving the result in dst. tmp is
// scratch.
func hmax(e *simd.Engine, v, dst, tmp *simd.Vec) {
	e.PermuteW(tmp, v, hmaxRound0)
	e.PMaxSW(dst, v, tmp)
	e.PermuteW(tmp, dst, hmaxRound1)
	e.PMaxSW(dst, dst, tmp)
	e.PermuteW(tmp, dst, hmaxRound2)
	e.PMaxSW(dst, dst, tmp)
}

// extFinalize converts the stored posteriors into clamped extrinsics:
// ext[k] = clamp(D[k]>>1 - (sys[k]+la[k])), vectorized at full width.
func (d *SIMDDecoder) extFinalize(st *decodeState, sysBase int64, sysC core.Cluster, laBase int64, k int) {
	e := st.e
	mark := d.markFrom(e, "ext")
	L := st.lay.GroupLanes
	groups := k / L
	dvec, s, la, t, half, lim, nlim := e.NewVec(), e.NewVec(), e.NewVec(), e.NewVec(), e.NewVec(), e.NewVec(), e.NewVec()
	e.Broadcast16(lim, extClamp)
	e.Broadcast16(nlim, -extClamp)
	for g := 0; g < groups; g++ {
		e.LoadVec(dvec, st.vecAddr(st.dPost, g, 0))
		e.LoadVec(s, st.vecAddr(sysBase, g, st.lay.Rot[sysC]))
		e.LoadVec(la, st.vecAddr(laBase, g, 0))
		e.PAddSW(t, s, la)
		e.PSraW(half, dvec, 1)
		e.PSubSW(half, half, t)
		e.PMinSW(half, half, lim)
		e.PMaxSW(half, half, nlim)
		e.StoreVec(st.vecAddr(st.ext, g, 0), half)
	}
	for i := groups * L; i < k; i++ {
		dAddr := st.elemAddr(st.dPost, i)
		sv := e.Mem.ReadI16(st.lay.ElementAddr(sysBase, sysC, i))
		lv := e.Mem.ReadI16(st.elemAddr(laBase, i))
		dV := e.Mem.ReadI16(dAddr)
		e.Mem.WriteI16(st.elemAddr(st.ext, i), clampExt(int32(dV>>1)-int32(sv)-int32(lv)))
		e.EmitScalar("sub", 2)
		e.EmitScalarLoad("mov", dAddr, 2)
		e.EmitScalarStore("mov", st.elemAddr(st.ext, i), 2)
	}
	d.closeMark(e, mark)
}
