package turbo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRSCStepTermination(t *testing.T) {
	// Feeding the feedback bit must zero the register input: from any
	// state, three termination steps reach state 0.
	for s := 0; s < NumStates; s++ {
		state := s
		for i := 0; i < 3; i++ {
			state, _ = rscStep(state, rscFeedback(state))
		}
		if state != 0 {
			t.Errorf("termination from state %d ended at %d", s, state)
		}
	}
}

func TestTrellisStructure(t *testing.T) {
	tr := NewTrellis()
	// Every state has exactly two successors and two predecessors, and
	// Prev inverts Next.
	var inDeg [NumStates]int
	for s := 0; s < NumStates; s++ {
		if tr.Next[s][0] == tr.Next[s][1] {
			t.Errorf("state %d: both inputs lead to %d", s, tr.Next[s][0])
		}
		for u := 0; u < 2; u++ {
			n := tr.Next[s][u]
			inDeg[n]++
			if tr.Prev[n][u] != s {
				t.Errorf("Prev[%d][%d] = %d, want %d", n, u, tr.Prev[n][u], s)
			}
		}
	}
	for s, d := range inDeg {
		if d != 2 {
			t.Errorf("state %d has in-degree %d, want 2", s, d)
		}
	}
}

func TestEncodeRSCKnownVector(t *testing.T) {
	// All-zero input keeps the encoder in state 0 with zero parity.
	par, tailSys, tailPar := EncodeRSC(make([]byte, 16))
	for i, p := range par {
		if p != 0 {
			t.Errorf("parity[%d] = %d for all-zero input", i, p)
		}
	}
	if tailSys != [3]byte{} || tailPar != [3]byte{} {
		t.Error("nonzero tail for all-zero input")
	}
	// A single 1 excites the recursive encoder: the parity stream must
	// not die out (IIR response).
	bits := make([]byte, 16)
	bits[0] = 1
	par, _, _ = EncodeRSC(bits)
	ones := 0
	for _, p := range par {
		ones += int(p)
	}
	if ones < 4 {
		t.Errorf("impulse response weight %d, want recursive (>=4)", ones)
	}
}

func TestQPPBijective(t *testing.T) {
	for _, k := range []int{40, 64, 104, 512, 1024, 2048, 6144} {
		q, err := NewQPP(k)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		seen := make([]bool, k)
		for i := 0; i < k; i++ {
			p := q.Perm(i)
			if seen[p] {
				t.Fatalf("K=%d: Π not injective at %d", k, i)
			}
			seen[p] = true
			if q.InvPerm(p) != i {
				t.Fatalf("K=%d: InvPerm broken at %d", k, i)
			}
		}
		if q.F1%2 != 1 || q.F2%2 != 0 {
			t.Errorf("K=%d: f1=%d f2=%d, want odd/even", k, q.F1, q.F2)
		}
	}
}

func TestQPPDeterministic(t *testing.T) {
	a, err1 := NewQPP(256)
	b, err2 := NewQPP(256)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if a.F1 != b.F1 || a.F2 != b.F2 {
		t.Errorf("QPP search not deterministic: (%d,%d) vs (%d,%d)", a.F1, a.F2, b.F1, b.F2)
	}
}

func TestQPPInterleaveRoundTrip(t *testing.T) {
	q, _ := NewQPP(104)
	src := make([]int16, 104)
	for i := range src {
		src[i] = int16(i * 3)
	}
	tmp := make([]int16, 104)
	back := make([]int16, 104)
	q.Interleave(tmp, src)
	q.Deinterleave(back, tmp)
	for i := range src {
		if back[i] != src[i] {
			t.Fatalf("roundtrip broken at %d", i)
		}
	}
}

func TestBlockSizes(t *testing.T) {
	if BlockSizes[0] != 40 || BlockSizes[len(BlockSizes)-1] != 6144 {
		t.Errorf("block size range [%d, %d], want [40, 6144]", BlockSizes[0], BlockSizes[len(BlockSizes)-1])
	}
	if !ValidBlockSize(40) || !ValidBlockSize(6144) || ValidBlockSize(41) {
		t.Error("ValidBlockSize misclassifies")
	}
	if NearestBlockSize(41) != 48 || NearestBlockSize(7000) != 6144 {
		t.Error("NearestBlockSize misclassifies")
	}
}

func TestEncodeValidation(t *testing.T) {
	c, err := NewCode(40)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Encode(make([]byte, 39)); err == nil {
		t.Error("expected length error")
	}
	if _, err := c.Encode(append(make([]byte, 39), 2)); err == nil {
		t.Error("expected non-binary error")
	}
	if _, err := NewCode(41); err == nil {
		t.Error("expected unsupported-size error")
	}
}

func randomBits(rng *rand.Rand, k int) []byte {
	bits := make([]byte, k)
	for i := range bits {
		bits[i] = byte(rng.Intn(2))
	}
	return bits
}

func TestDecodeNoiseless(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, k := range []int{40, 104, 512} {
		c, err := NewCode(k)
		if err != nil {
			t.Fatal(err)
		}
		d := NewDecoder(c)
		for trial := 0; trial < 3; trial++ {
			bits := randomBits(rng, k)
			cw, err := c.Encode(bits)
			if err != nil {
				t.Fatal(err)
			}
			w := NewLLRWord(k)
			w.FromHard(cw, 32)
			got, iters, err := d.Decode(w)
			if err != nil {
				t.Fatal(err)
			}
			if !equalBits(got, bits) {
				t.Fatalf("K=%d trial %d: noiseless decode failed", k, trial)
			}
			if iters > 3 {
				t.Errorf("K=%d: noiseless decode took %d iterations", k, iters)
			}
		}
	}
}

// addAWGN converts bits to BPSK LLRs with Gaussian noise at the given
// Es/N0 (dB) and LLR amplitude scaling.
func addAWGN(rng *rand.Rand, w *LLRWord, cw *Codeword, snrDB float64) {
	sigma := math.Sqrt(0.5 * math.Pow(10, -snrDB/10))
	scale := 16.0
	ch := func(b byte) int16 {
		x := 1.0
		if b == 1 {
			x = -1.0
		}
		v := (x + rng.NormFloat64()*sigma) * scale * 2 / (sigma * sigma) / 8
		if v > 255 {
			v = 255
		}
		if v < -255 {
			v = -255
		}
		return int16(v)
	}
	for i := range cw.Sys {
		w.Sys[i] = ch(cw.Sys[i])
		w.P1[i] = ch(cw.P1[i])
		w.P2[i] = ch(cw.P2[i])
	}
	for i := 0; i < 3; i++ {
		w.TailSys[i] = ch(cw.TailSys[i])
		w.TailP1[i] = ch(cw.TailP1[i])
	}
}

func TestDecodeAWGN(t *testing.T) {
	// At a comfortable SNR the turbo decoder must recover every block;
	// at very low SNR it must fail sometimes (sanity that the channel
	// is actually noisy and the test has teeth).
	rng := rand.New(rand.NewSource(42))
	k := 512
	c, err := NewCode(k)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(c)
	d.MaxIters = 8
	okHigh, okLow := 0, 0
	const trials = 8
	for trial := 0; trial < trials; trial++ {
		bits := randomBits(rng, k)
		cw, _ := c.Encode(bits)
		w := NewLLRWord(k)
		addAWGN(rng, w, cw, 3.0)
		if got, _, _ := d.Decode(w); equalBits(got, bits) {
			okHigh++
		}
		addAWGN(rng, w, cw, -7.0)
		if got, _, _ := d.Decode(w); equalBits(got, bits) {
			okLow++
		}
	}
	if okHigh != trials {
		t.Errorf("3 dB: decoded %d/%d blocks, want all", okHigh, trials)
	}
	if okLow == trials {
		t.Errorf("-7 dB: decoded all blocks; channel model suspect")
	}
}

// Property: decoding is better than chance even at moderate noise, and
// the decoder never panics across random payloads.
func TestDecodeProperty(t *testing.T) {
	c, err := NewCode(64)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(c)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bits := randomBits(rng, 64)
		cw, err := c.Encode(bits)
		if err != nil {
			return false
		}
		w := NewLLRWord(64)
		addAWGN(rng, w, cw, 4.0)
		got, _, err := d.Decode(w)
		if err != nil {
			return false
		}
		errs := 0
		for i := range bits {
			if got[i] != bits[i] {
				errs++
			}
		}
		return errs <= 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCodewordBits(t *testing.T) {
	c, _ := NewCode(40)
	cw, _ := c.Encode(make([]byte, 40))
	if got := cw.Bits(); got != 126 {
		t.Errorf("Bits() = %d, want 126 (3*40+6)", got)
	}
}

func TestClampExt(t *testing.T) {
	cases := []struct {
		in   int32
		want int16
	}{{0, 0}, {8192, 8192}, {8193, 8192}, {-9000, -8192}, {100, 100}}
	for _, cse := range cases {
		if got := clampExt(cse.in); got != cse.want {
			t.Errorf("clampExt(%d) = %d, want %d", cse.in, got, cse.want)
		}
	}
}
