package turbo

import (
	"fmt"
	"time"

	"vransim/internal/core"
	"vransim/internal/simd"
)

// BatchDecoder is the serving-side entry point for lane-parallel
// decoding: it owns one untraced engine (and its memory arena) and a
// per-K code cache, so a long-lived worker can decode an unbounded
// stream of batches without re-allocating the emulator state. Each
// Decode call rewinds the arena, making the decoder safe to reuse
// indefinitely; it is NOT safe for concurrent use — give each worker
// goroutine its own BatchDecoder.
type BatchDecoder struct {
	eng   *simd.Engine
	ar    core.Arranger
	codes map[int]*Code

	// MaxIters and EarlyExit configure every decode (defaults: 6, true).
	MaxIters  int
	EarlyExit bool

	// OnDecode, when non-nil, is called synchronously after every
	// successful Decode with the block size, batch fill, iteration count
	// and the measured wall-clock decode time — the telemetry hook that
	// lets a serving worker attribute decode cost without wrapping the
	// call in its own clock. Like the decoder itself it is used from one
	// goroutine only.
	OnDecode func(k, blocks, iters int, elapsed time.Duration)
}

// NewBatchDecoder builds a decoder for width w and arrangement strategy
// s with a memBytes emulated-memory arena (32 MiB comfortably fits the
// largest supported K at W512).
func NewBatchDecoder(w simd.Width, s core.Strategy, memBytes int) *BatchDecoder {
	return &BatchDecoder{
		eng:       simd.NewEngine(w, simd.NewMemory(memBytes), nil),
		ar:        core.ByStrategy(s),
		codes:     make(map[int]*Code),
		MaxIters:  6,
		EarlyExit: true,
	}
}

// Lanes returns how many same-K blocks one Decode call carries.
func (bd *BatchDecoder) Lanes() int { return BlocksPerRegister(bd.eng.W) }

// Code returns the cached turbo code for block size k.
func (bd *BatchDecoder) Code(k int) (*Code, error) {
	if c, ok := bd.codes[k]; ok {
		return c, nil
	}
	c, err := NewCode(k)
	if err != nil {
		return nil, err
	}
	bd.codes[k] = c
	return c, nil
}

// Decode lane-decodes 1..Lanes() same-K words and returns the per-block
// hard decisions plus the iteration count. Results are bit-identical to
// single-block decoding of each word.
func (bd *BatchDecoder) Decode(k int, words []*LLRWord) ([][]byte, int, error) {
	if len(words) == 0 {
		return nil, 0, fmt.Errorf("turbo: empty batch")
	}
	c, err := bd.Code(k)
	if err != nil {
		return nil, 0, err
	}
	bd.eng.Mem.AllocReset()
	d := NewMultiSIMDDecoder(c)
	d.MaxIters = bd.MaxIters
	d.EarlyExit = bd.EarlyExit
	start := time.Now()
	bits, iters, err := d.Decode(bd.eng, bd.ar, words)
	if err == nil && bd.OnDecode != nil {
		bd.OnDecode(k, len(words), iters, time.Since(start))
	}
	return bits, iters, err
}
