package turbo

import (
	"fmt"
	"time"

	"vransim/internal/core"
	"vransim/internal/simd"
	"vransim/internal/simd/program"
)

// decodePlan is the cached per-K decode state: the immutable plan
// (code tables, constant registers, permutation indices — everything
// initConstants derives from (K, width, strategy)) together with the
// reusable scratch arena regions and output buffers, and — the third
// stage — the compiled replay program recorded from this plan's first
// interpreted decode. Building one is the expensive cold path;
// afterwards every Decode for this K rewinds and rewrites the same
// memory, allocating nothing.
type decodePlan struct {
	code *Code
	// Exactly one of st/pst is populated, matching the plan key's
	// packing: st is the per-block working set, pst the cross-block
	// SoA-packed one.
	st  *multiState
	pst *packedState
	dec *MultiSIMDDecoder

	// prog is the compiled replay program (nil until the first decode
	// of this K records and compiles one; see BatchDecoder.Compile).
	// It embeds absolute arena addresses, so eviction must discard it
	// with the state.
	prog *program.Program
	// noCompile latches a failed compilation so the plan does not
	// re-record on every decode; eviction resets it with the state.
	noCompile bool
}

// planKey identifies one cached decode plan. Width and strategy are
// fixed per BatchDecoder (one engine, one arranger), so the key space
// a decoder manages is (K, packing): the same K decoded packed and
// unpacked yields two independent plans with disjoint arena regions
// and programs.
type planKey struct {
	k      int
	packed bool
}

// BatchDecoder is the serving-side entry point for lane-parallel
// decoding: it owns one untraced engine (and its memory arena) and a
// per-K plan cache, so a long-lived worker can decode an unbounded
// stream of batches with ~zero steady-state heap allocation. The first
// Decode of a block size builds that size's plan (arena regions,
// constant registers, index tables); subsequent Decodes of the same K
// reuse it, rewriting the scratch in place. If the arena cannot fit a
// new K's plan, all cached plans are evicted and the arena rewound.
// It is NOT safe for concurrent use — give each worker goroutine its
// own BatchDecoder.
type BatchDecoder struct {
	eng   *simd.Engine
	ar    core.Arranger
	plans map[planKey]*decodePlan
	// codes caches the (packing-independent) code tables per K, shared
	// by the packed and unpacked plan of the same block size.
	codes map[int]*Code

	// lastIters holds the per-block iterations-to-converge of the most
	// recent successful Decode (reused backing array; see BlockIters).
	lastIters []int

	// MaxIters and EarlyExit configure every decode (defaults: 6, true).
	MaxIters  int
	EarlyExit bool

	// Packed selects the cross-block SoA-packed decode path (default
	// true): the K-indexed phases — gamma, extrinsic finalize, the QPP
	// interleave, hard decisions — run once per iteration for all
	// in-flight blocks instead of once per block, and the interleave is
	// vector gather programs instead of per-element copies. Outputs are
	// bit-identical to the per-block path (and the scalar reference) at
	// every fill level. Flipping it mid-stream is safe: the two paths
	// cache independent plans.
	Packed bool

	// ItersOverride, when positive, clamps the effective iteration
	// budget to min(MaxIters, ItersOverride) without touching the
	// configured MaxIters — the graceful-degradation knob a serving
	// worker turns under overload and releases (set 0) when the backlog
	// clears. It never raises the budget above MaxIters.
	ItersOverride int

	// CompileGate, when non-nil, is consulted before each program
	// compilation is accepted; returning false discards the compiled
	// program as if verification had failed, latching the plan onto the
	// interpreter (the chaos hook for compile-verify failures). Same
	// single-goroutine rules as OnDecode.
	CompileGate func(k int) bool

	// Compile enables the plan -> scratch -> program third stage: the
	// first Decode for a K runs interpreted with the engine's semantic
	// recorder attached, the recorded stream is compiled into a fused
	// replay program, and every later Decode for that K replays it
	// directly over the arena (bit-identical, no per-µop dispatch).
	// Defaults to true; engines with a trace recorder attached always
	// stay interpreted (replay emits no µops, which would silently
	// starve the timing model).
	Compile bool

	// OnCompile, when non-nil, is called synchronously after each
	// successful program compilation with the block size and the
	// wall-clock compile time (the telemetry hook for the compile
	// span). Same single-goroutine rules as OnDecode.
	OnCompile func(k int, elapsed time.Duration)

	// Schedule routes compilations through the port-aware scheduling
	// pass (program.CompileOptions.Schedule): candidate mop orderings
	// of each segment are priced on the uarch cost model and the
	// best-IPC one is kept. Replay stays bit-identical — only the op
	// order changes. SchedOptions carries the rest of the options
	// (heuristic subset, simulation budget, cost-model core); its
	// Schedule field is overridden by this flag.
	Schedule     bool
	SchedOptions program.CompileOptions

	// Evictions counts how many times the arena filled up and the plan
	// cache was flushed (a serving gauge; 0 in any sane configuration).
	Evictions uint64

	// Program-cache counters (see ProgramStats).
	progHits, progMisses, compiles uint64
	compileNs                      int64
	// schedHits counts Decodes served by a *scheduled* program;
	// warmPlans counts programs installed from a tuner cache instead
	// of compiled in-process.
	schedHits, warmPlans uint64

	// OnDecode, when non-nil, is called synchronously after every
	// successful Decode with the block size, batch fill, iteration count
	// and the measured wall-clock decode time — the telemetry hook that
	// lets a serving worker attribute decode cost without wrapping the
	// call in its own clock. When nil, Decode skips the clock reads
	// entirely. Like the decoder itself it is used from one goroutine
	// only.
	OnDecode func(k, blocks, iters int, elapsed time.Duration)
}

// DefaultMaxIters is the iteration budget a fresh BatchDecoder uses.
const DefaultMaxIters = 6

// NewBatchDecoder builds a decoder for width w and arrangement strategy
// s with a memBytes emulated-memory arena (32 MiB comfortably fits the
// largest supported K at W512).
func NewBatchDecoder(w simd.Width, s core.Strategy, memBytes int) *BatchDecoder {
	return &BatchDecoder{
		eng:       simd.NewEngine(w, simd.NewMemory(memBytes), nil),
		ar:        core.ByStrategy(s),
		plans:     make(map[planKey]*decodePlan),
		codes:     make(map[int]*Code),
		MaxIters:  DefaultMaxIters,
		EarlyExit: true,
		Packed:    true,
		Compile:   true,
	}
}

// Lanes returns how many same-K blocks one Decode call carries.
func (bd *BatchDecoder) Lanes() int { return BlocksPerRegister(bd.eng.W) }

// Plans returns how many per-K decode plans are currently cached.
func (bd *BatchDecoder) Plans() int { return len(bd.plans) }

// Code returns the cached turbo code for block size k (building the
// code alone, without any decode state, if k has not been decoded yet).
func (bd *BatchDecoder) Code(k int) (*Code, error) {
	if c, ok := bd.codes[k]; ok {
		return c, nil
	}
	c, err := NewCode(k)
	if err != nil {
		return nil, err
	}
	bd.codes[k] = c
	return c, nil
}

// BlockIters reports the per-block iterations-to-converge of the most
// recent successful Decode, one entry per submitted word: a block that
// froze via per-block early exit records the iteration that latched it,
// the rest record the batch's total iteration count. The slice is
// reused across Decodes — read it before the next call.
func (bd *BatchDecoder) BlockIters() []int { return bd.lastIters }

// plan returns the cached plan for key, creating it (code only — the
// decode state is built lazily on first Decode, when the batch width is
// known to matter) on miss.
func (bd *BatchDecoder) plan(key planKey) (*decodePlan, error) {
	if p, ok := bd.plans[key]; ok {
		return p, nil
	}
	c, err := bd.Code(key.k)
	if err != nil {
		return nil, err
	}
	p := &decodePlan{code: c}
	bd.plans[key] = p
	return p, nil
}

// EvictAll flushes every cached plan's decode state, scratch and
// compiled program and rewinds the arena — the same reset an
// arena-pressure eviction performs, but driven explicitly (the chaos
// injector's eviction-storm hook, and a recovery lever after a
// suspected arena corruption). The next Decode of each K rebuilds its
// plan from the cached code tables; results are unaffected.
func (bd *BatchDecoder) EvictAll() {
	for _, q := range bd.plans {
		q.st = nil
		q.pst = nil
		q.dec = nil
		q.prog = nil
		q.noCompile = false
	}
	bd.eng.Mem.AllocReset()
	bd.Evictions++
}

// effIters is the iteration budget decodes actually run under:
// MaxIters clamped by ItersOverride when the override is engaged.
func (bd *BatchDecoder) effIters() int {
	if bd.ItersOverride > 0 && bd.ItersOverride < bd.MaxIters {
		return bd.ItersOverride
	}
	return bd.MaxIters
}

// buildState allocates plan p's decode state (per-block or packed,
// matching the key it was cached under), evicting every cached state
// and rewinding the arena if the remaining arena space cannot hold it.
// Scratch contents are rewritten on every decode, so eviction never
// affects results — it only costs the rebuild.
func (bd *BatchDecoder) buildState(p *decodePlan, packed bool) error {
	nb := bd.Lanes()
	lay := bd.ar.Layout(bd.eng.W)
	need := multiStateBytes(p.code, lay, bd.eng.W, nb)
	if packed {
		need = packedStateBytes(p.code, lay, bd.eng.W, nb)
	}
	if bd.eng.Mem.Remaining() < need {
		for _, q := range bd.plans {
			q.st = nil
			q.pst = nil
			q.dec = nil
			// Compiled programs address the evicted arena regions
			// directly; replaying one after the reset would corrupt
			// whatever the arena now holds.
			q.prog = nil
			q.noCompile = false
		}
		bd.eng.Mem.AllocReset()
		bd.Evictions++
		if bd.eng.Mem.Remaining() < need {
			return fmt.Errorf("turbo: arena too small for K=%d at %v (need %d bytes)", p.code.K, bd.eng.W, need)
		}
	}
	if packed {
		p.pst = newPackedState(bd.eng, bd.ar, p.code, nb)
	} else {
		p.st = newMultiState(bd.eng, bd.ar, p.code, nb)
	}
	p.dec = NewMultiSIMDDecoder(p.code)
	return nil
}

// Decode lane-decodes 1..Lanes() same-K words and returns the per-block
// hard decisions plus the iteration count. Results are bit-identical to
// single-block decoding of each word. The returned slices are owned by
// the caller (they are fresh copies, safe to retain across Decodes).
func (bd *BatchDecoder) Decode(k int, words []*LLRWord) ([][]byte, int, error) {
	if len(words) == 0 {
		return nil, 0, fmt.Errorf("turbo: empty batch")
	}
	packed := bd.Packed
	p, err := bd.plan(planKey{k: k, packed: packed})
	if err != nil {
		return nil, 0, err
	}
	if p.st == nil && p.pst == nil {
		if err := bd.buildState(p, packed); err != nil {
			return nil, 0, err
		}
	}
	p.dec.MaxIters = bd.effIters()
	p.dec.EarlyExit = bd.EarlyExit
	var start time.Time
	if bd.OnDecode != nil {
		start = time.Now()
	}
	var bits [][]byte
	var iters int
	switch {
	case p.prog != nil:
		bd.progHits++
		if p.prog.Scheduled() {
			bd.schedHits++
		}
		if packed {
			bits, iters, err = bd.runCompiledPacked(p, words)
		} else {
			bits, iters, err = bd.runCompiled(p, words)
		}
	case bd.Compile && !p.noCompile && bd.eng.Recorder() == nil:
		bd.progMisses++
		bits, iters, err = bd.recordAndCompile(p, packed, words)
	default:
		if bd.Compile && bd.eng.Recorder() == nil {
			bd.progMisses++
		}
		if packed {
			bits, iters, err = p.dec.runPacked(p.pst, words)
		} else {
			bits, iters, err = p.dec.run(p.st, words)
		}
	}
	if err != nil {
		return nil, 0, err
	}
	var itersB []int
	if packed {
		itersB = p.pst.itersB
	} else {
		itersB = p.st.itersB
	}
	bd.lastIters = append(bd.lastIters[:0], itersB[:len(words)]...)
	if bd.OnDecode != nil {
		bd.OnDecode(k, len(words), iters, time.Since(start))
	}
	// The state's bit buffers are rewritten by the next decode of this K;
	// hand the caller stable copies (the only steady-state allocations of
	// the entire call: len(words)+1 small objects).
	out := make([][]byte, len(bits))
	for i, b := range bits {
		out[i] = append([]byte(nil), b...)
	}
	return out, iters, nil
}
