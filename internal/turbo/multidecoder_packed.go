package turbo

import (
	"fmt"

	"vransim/internal/core"
	"vransim/internal/simd"
)

// This file is the cross-block SoA-packed decode path. The per-block
// path (multidecoder.go) packs the nb in-flight blocks across lanes for
// the alpha/beta recursions only; every K-indexed phase — arrangement,
// gamma, extrinsic finalize, the QPP interleave, hard-decision
// extraction — still runs once per block. Here the blocks are packed at
// the *element* level instead: element i of blocks 0..nb-1 occupy
// adjacent positions of one shared stream (packed index ip = i*nb+b),
// so each K-indexed phase runs once per iteration over nb*K elements.
// Since every 3GPP block size is a multiple of 8 and nb*8 = L, the
// packed arrays have no scalar tails at any width — the interleave
// becomes pure vector gather programs and the hard decisions one
// vector sign-extract sweep.
//
// The recursions read their branch metrics from a quad layout written
// by the packed gamma: one register group per trellis step holding
// [g0, g1, -g0, -g1] per block in lanes b*4+v (the upper half of the
// register is zero). One load plus two constant-table permutes replace
// the per-block broadcast/mask/merge chain and the mask-select of the
// per-block path — and give the replay compiler a fixed 11-op step
// shape it fuses into a single-pass op (see program/fuse.go).

// packedState is the packed counterpart of multiState: everything is
// derived from (K, width, strategy), built once per plan and reused for
// an unbounded stream of decodes with no steady-state allocation.
type packedState struct {
	e    *simd.Engine
	ar   core.Arranger
	code *Code
	lay  core.Layout
	nb   int // blocks in flight
	n    int // nb*K packed elements

	// Packed interleaved input and its arranged clusters.
	src     int64
	s       int64
	p1, p2  int64
	tailSys [][3]int16
	tailP1  [][3]int16

	// Packed per-element working arrays (arranged layout, rot 0).
	sPerm int64
	la1   int64
	la2   int64
	ext   int64
	dPost int64
	hdec  int64

	// quad is the branch-metric quad array: one full-width group per
	// trellis step (k+3 steps incl. tails), lane b*4+v holding block
	// b's [g0, g1, -g0, -g1]; lanes >= 4*nb are zero.
	quad int64
	// alpha is the recursion history, one group per step.
	alpha int64

	constReady bool
	zero       *simd.Vec
	negInfInit []int16
	// Recursion permute tables (replicated per block, as in multiState).
	prevIdx0, prevIdx1 []int
	nextIdx0, nextIdx1 []int
	lane0Idx           []int
	hmaxIdx            [3][]int
	// Quad-read tables: bm0/bm1 of the alpha and beta recursions as one
	// permute each over the step's quad group.
	bmA0, bmA1 []int
	bmB0, bmB1 []int
	// Quad-write scatter tables: for step offset si within a source
	// group and variant v, where each block's value lands in the quad
	// group (dst lane b*4+v from source lane LanePos[si*nb+b]).
	scat [8][4][]int
	// Interleave gather programs (per destination group, the list of
	// contributing source groups with their permute tables).
	gSPerm [][]gatherSrc
	gLa2   [][]gatherSrc
	gLa1   [][]gatherSrc

	// Go-side reusable buffers: hard decisions, per-block convergence
	// masks and iterations-to-converge, and the padding scratch.
	bits   [][]byte
	conv   []bool
	itersB []int
	words  []*LLRWord
}

// gatherSrc is one source group's contribution to a gather destination
// group: load the source group, permute by Idx, OR into the
// accumulator. Idx is pointer-stable for the state's lifetime (the
// replay builder interns permute tables by the slice's backing array).
type gatherSrc struct {
	Group int
	Idx   []int
}

func (st *packedState) elemAddr(base int64, ip int) int64 {
	g, jj := ip/st.lay.GroupLanes, ip%st.lay.GroupLanes
	return base + 2*int64(g*st.lay.StrideLanes+st.lay.LanePos[jj])
}

func (st *packedState) vecAddr(base int64, g, rot int) int64 {
	return base + 2*int64(g*st.lay.StrideLanes+rot)
}

func (st *packedState) quadAddr(step int) int64 {
	return st.quad + int64(step)*int64(int(st.e.W))
}

func (st *packedState) alphaAddr(step int) int64 {
	return st.alpha + int64(step)*int64(int(st.e.W))
}

// packedStateBytes bounds the arena bytes newPackedState consumes for
// code c at nb blocks (64-byte alignment padding per Alloc).
func packedStateBytes(c *Code, lay core.Layout, w simd.Width, nb int) int64 {
	n := nb * c.K
	arrBytes := int64(lay.DstBytes(n))
	wb := int64(int(w))
	// src + 9 packed arrays + quad + alpha histories.
	return int64(core.InterleavedBytes(n)) + 9*arrBytes + 2*wb*int64(c.K+4) + 13*64
}

// newPackedState allocates the packed working set for nb blocks of
// code c on engine e with arrangement ar.
func newPackedState(e *simd.Engine, ar core.Arranger, c *Code, nb int) *packedState {
	k := c.K
	lay := ar.Layout(e.W)
	n := nb * k
	st := &packedState{e: e, ar: ar, code: c, lay: lay, nb: nb, n: n}
	arrBytes := lay.DstBytes(n)
	wb := int64(int(e.W))
	st.src = e.Mem.Alloc(core.InterleavedBytes(n), 64)
	st.s = e.Mem.Alloc(arrBytes, 64)
	st.p1 = e.Mem.Alloc(arrBytes, 64)
	st.p2 = e.Mem.Alloc(arrBytes, 64)
	st.sPerm = e.Mem.Alloc(arrBytes, 64)
	st.la1 = e.Mem.Alloc(arrBytes, 64)
	st.la2 = e.Mem.Alloc(arrBytes, 64)
	st.ext = e.Mem.Alloc(arrBytes, 64)
	st.dPost = e.Mem.Alloc(arrBytes, 64)
	st.hdec = e.Mem.Alloc(arrBytes, 64)
	st.quad = e.Mem.Alloc(int(wb)*(k+4), 64)
	st.alpha = e.Mem.Alloc(int(wb)*(k+4), 64)

	st.tailSys = make([][3]int16, nb)
	st.tailP1 = make([][3]int16, nb)
	st.bits = make([][]byte, nb)
	for b := 0; b < nb; b++ {
		st.bits[b] = make([]byte, k)
	}
	st.conv = make([]bool, nb)
	st.itersB = make([]int, nb)
	st.words = make([]*LLRWord, 0, nb)
	return st
}

// initPackedConstants builds the constant registers and permute tables.
// Runs once per state (constReady), like initConstants.
func (d *MultiSIMDDecoder) initPackedConstants(st *packedState, tr *Trellis) {
	e := st.e
	nb := st.nb
	lanes := e.W.Lanes16()
	st.zero = e.NewVec()
	e.PXor(st.zero, st.zero, st.zero)

	rep := func(f func(s int) int) []int {
		idx := make([]int, lanes)
		for b := 0; b < nb; b++ {
			for s := 0; s < NumStates; s++ {
				idx[b*NumStates+s] = b*NumStates + f(s)
			}
		}
		return idx
	}
	st.prevIdx0 = rep(func(s int) int { return tr.Prev[s][0] })
	st.prevIdx1 = rep(func(s int) int { return tr.Prev[s][1] })
	st.nextIdx0 = rep(func(s int) int { return tr.Next[s][0] })
	st.nextIdx1 = rep(func(s int) int { return tr.Next[s][1] })
	st.lane0Idx = rep(func(s int) int { return 0 })
	st.hmaxIdx[0] = rep(func(s int) int { return (s + 4) % 8 })
	st.hmaxIdx[1] = rep(func(s int) int { return s ^ 2 })
	st.hmaxIdx[2] = rep(func(s int) int { return s ^ 1 })
	st.negInfInit = make([]int16, lanes)
	for b := 0; b < nb; b++ {
		for s := 1; s < NumStates; s++ {
			st.negInfInit[b*NumStates+s] = negInf16
		}
	}

	// Quad-read tables. The per-block path selects branch metrics with
	// masks: alpha bm0 = g0 where Parity[Prev[s][0]][0]==0 else g1,
	// alpha bm1 = -g1 where Parity[Prev[s][1]][1]==0 else -g0; the beta
	// forms test Parity[s][u] instead. In the quad layout those four
	// choices are lanes b*4+{0,1,3,2} of the step's group.
	quadSel := func(v0 func(s int) int, v1 func(s int) int) (t0, t1 []int) {
		t0 = make([]int, lanes)
		t1 = make([]int, lanes)
		for b := 0; b < nb; b++ {
			for s := 0; s < NumStates; s++ {
				t0[b*NumStates+s] = b*4 + v0(s)
				t1[b*NumStates+s] = b*4 + v1(s)
			}
		}
		return t0, t1
	}
	st.bmA0, st.bmA1 = quadSel(
		func(s int) int {
			if tr.Parity[tr.Prev[s][0]][0] == 0 {
				return 0
			}
			return 1
		},
		func(s int) int {
			if tr.Parity[tr.Prev[s][1]][1] == 0 {
				return 3
			}
			return 2
		})
	st.bmB0, st.bmB1 = quadSel(
		func(s int) int {
			if tr.Parity[s][0] == 0 {
				return 0
			}
			return 1
		},
		func(s int) int {
			if tr.Parity[s][1] == 0 {
				return 3
			}
			return 2
		})

	// Quad-write scatter tables: source registers hold the arranged
	// aligned view (read lane l = packed element with LanePos == l), so
	// variant v of block b at step offset si permutes source lane
	// LanePos[si*nb+b] into dst lane b*4+v; every other lane reads -1
	// (out of range -> 0), which zeroes the upper half deterministically.
	for si := 0; si < 8; si++ {
		for v := 0; v < 4; v++ {
			t := make([]int, lanes)
			for j := range t {
				t[j] = -1
			}
			for b := 0; b < nb; b++ {
				t[b*4+v] = st.lay.LanePos[(si*nb+b)%st.lay.GroupLanes]
			}
			st.scat[si][v] = t
		}
	}

	// Interleave gather programs.
	qpp := st.code.qpp
	st.gSPerm = st.buildGather(func(i int) int { return qpp.Perm(i) })
	st.gLa2 = st.gSPerm // same permutation, different arrays
	st.gLa1 = st.buildGather(func(i int) int { return qpp.InvPerm(i) })
}

// buildGather compiles dst[i*nb+b] = src[f(i)*nb+b] into per-dst-group
// source lists: for each destination group, each contributing source
// group appears once with a permute table mapping its aligned-view
// lanes to the destination lanes it feeds (-1 elsewhere). Every packed
// element has exactly one source, so the OR-merge of the contributions
// is exact.
func (st *packedState) buildGather(f func(i int) int) [][]gatherSrc {
	L := st.lay.GroupLanes
	groups := st.n / L
	out := make([][]gatherSrc, groups)
	for gd := 0; gd < groups; gd++ {
		var srcs []gatherSrc
		find := func(gs int) *gatherSrc {
			for i := range srcs {
				if srcs[i].Group == gs {
					return &srcs[i]
				}
			}
			t := make([]int, L)
			for j := range t {
				t[j] = -1
			}
			srcs = append(srcs, gatherSrc{Group: gs, Idx: t})
			return &srcs[len(srcs)-1]
		}
		for jj := 0; jj < L; jj++ {
			ip := gd*L + jj
			i, b := ip/st.nb, ip%st.nb
			sp := f(i)*st.nb + b
			g := find(sp / L)
			g.Idx[st.lay.LanePos[jj]] = st.lay.LanePos[sp%L]
		}
		out[gd] = srcs
	}
	return out
}

// gather emits one vectorized gather program: per destination group,
// load each contributing source group (aligned view at rot srcRot),
// permute its lanes into place and OR-merge, then store the assembled
// group. This replaces the per-block path's k scalar CopyI16 calls per
// interleave direction.
func (st *packedState) gather(prog [][]gatherSrc, dstBase, srcBase int64, srcRot int) {
	e := st.e
	src, acc, tmp := e.AcquireVec(), e.AcquireVec(), e.AcquireVec()
	for gd, srcs := range prog {
		for i, gs := range srcs {
			e.LoadVec(src, st.vecAddr(srcBase, gs.Group, srcRot))
			if i == 0 {
				e.PermuteW(acc, src, gs.Idx)
				continue
			}
			e.PermuteW(tmp, src, gs.Idx)
			e.POr(acc, acc, tmp)
		}
		e.StoreVec(st.vecAddr(dstBase, gd, 0), acc)
	}
	e.ReleaseVec(src, acc, tmp)
}

// writeTailQuads stores the three termination-step quad groups. The
// values depend only on the blocks' tail inputs, not the iteration, so
// both drivers (interpreted and replay) write them once per decode, up
// front; the first-half gamma only writes groups 0..k-1, so they
// persist, and the unterminated second half never reads them.
func (st *packedState) writeTailQuads() {
	wb := int64(int(st.e.W))
	for i := 0; i < 3; i++ {
		base := st.quadAddr(st.code.K + i)
		// Zero the whole group first (upper lanes stay deterministic).
		for l := int64(0); l < wb; l += 2 {
			st.e.Mem.WriteI16(base+l, 0)
		}
		for b := 0; b < st.nb; b++ {
			sa, pp := int32(st.tailSys[b][i]), int32(st.tailP1[b][i])
			g0 := sat16(sa + pp)
			g1 := sat16(sa - pp)
			o := base + int64(8*b)
			st.e.Mem.WriteI16(o, g0)
			st.e.Mem.WriteI16(o+2, g1)
			st.e.Mem.WriteI16(o+4, sat16(-int32(g0)))
			st.e.Mem.WriteI16(o+6, sat16(-int32(g1)))
		}
	}
}

// gammaPacked computes branch metrics for all blocks at once and
// scatters them into the quad layout: per source group, one elementwise
// g0/g1 (+ negations) over nb*GroupLanes/L packed steps, then four
// permutes + three ORs + one store per step's quad group.
func (d *MultiSIMDDecoder) gammaPacked(st *packedState, sysBase int64, sysRot int, parBase int64, parC core.Cluster, laBase int64) {
	e := st.e
	m := d.mark(e, "gamma")
	L := st.lay.GroupLanes
	groups := st.n / L
	stepsPerGroup := L / st.nb
	s, p, la, t := e.AcquireVec(), e.AcquireVec(), e.AcquireVec(), e.AcquireVec()
	g0, g1, n0, n1 := e.AcquireVec(), e.AcquireVec(), e.AcquireVec(), e.AcquireVec()
	acc, tmp := e.AcquireVec(), e.AcquireVec()
	for g := 0; g < groups; g++ {
		e.LoadVec(s, st.vecAddr(sysBase, g, sysRot))
		e.LoadVec(p, st.vecAddr(parBase, g, st.lay.Rot[parC]))
		e.LoadVec(la, st.vecAddr(laBase, g, 0))
		e.PAddSW(t, s, la)
		e.PAddSW(g0, t, p)
		e.PSubSW(g1, t, p)
		e.PSubSW(n0, st.zero, g0)
		e.PSubSW(n1, st.zero, g1)
		for si := 0; si < stepsPerGroup; si++ {
			e.PermuteW(acc, g0, st.scat[si][0])
			e.PermuteW(tmp, g1, st.scat[si][1])
			e.POr(acc, acc, tmp)
			e.PermuteW(tmp, n0, st.scat[si][2])
			e.POr(acc, acc, tmp)
			e.PermuteW(tmp, n1, st.scat[si][3])
			e.POr(acc, acc, tmp)
			e.StoreVec(st.quadAddr(g*stepsPerGroup+si), acc)
		}
	}
	e.ReleaseVec(s, p, la, t, g0, g1, n0, n1, acc, tmp)
	d.setHi(m, e)
}

// alphaPacked is the forward recursion over the quad layout: one load
// and two constant permutes produce both branch-metric vectors — the
// fixed 11-op step the replay compiler fuses into a single pass.
func (d *MultiSIMDDecoder) alphaPacked(st *packedState, blockK int, terminated bool) {
	e := st.e
	m := d.mark(e, "alpha")
	steps := blockK
	if terminated {
		steps += 3
	}
	alpha := e.AcquireVec()
	e.SetImm(alpha, st.negInfInit)
	e.StoreVec(st.alpha, alpha)

	quad, bm0, bm1 := e.AcquireVec(), e.AcquireVec(), e.AcquireVec()
	a0, a1, c0, c1, norm := e.AcquireVec(), e.AcquireVec(), e.AcquireVec(), e.AcquireVec(), e.AcquireVec()
	for j := 0; j < steps; j++ {
		e.LoadVec(quad, st.quadAddr(j))
		e.PermuteW(bm0, quad, st.bmA0)
		e.PermuteW(bm1, quad, st.bmA1)
		e.PermuteW(a0, alpha, st.prevIdx0)
		e.PermuteW(a1, alpha, st.prevIdx1)
		e.PAddSW(c0, a0, bm0)
		e.PAddSW(c1, a1, bm1)
		e.PMaxSW(alpha, c0, c1)
		e.PermuteW(norm, alpha, st.lane0Idx)
		e.PSubSW(alpha, alpha, norm)
		e.StoreVec(st.alphaAddr(j+1), alpha)
	}
	e.ReleaseVec(alpha, quad, bm0, bm1, a0, a1, c0, c1, norm)
	d.setHi(m, e)
}

// betaExtPacked is the fused backward recursion + posterior extraction
// over the quad layout.
func (d *MultiSIMDDecoder) betaExtPacked(st *packedState, blockK int, terminated bool) {
	e := st.e
	m := d.mark(e, "beta+ext")
	steps := blockK
	beta := e.AcquireVec()
	if terminated {
		steps += 3
		e.SetImm(beta, st.negInfInit)
	} else {
		e.PXor(beta, beta, beta)
	}
	quad, bm0, bm1 := e.AcquireVec(), e.AcquireVec(), e.AcquireVec()
	b0, b1, v0, v1 := e.AcquireVec(), e.AcquireVec(), e.AcquireVec(), e.AcquireVec()
	alpha, e0, e1, m0, m1, dv, tmp, norm := e.AcquireVec(), e.AcquireVec(), e.AcquireVec(), e.AcquireVec(), e.AcquireVec(), e.AcquireVec(), e.AcquireVec(), e.AcquireVec()
	for j := steps - 1; j >= 0; j-- {
		e.LoadVec(quad, st.quadAddr(j))
		e.PermuteW(bm0, quad, st.bmB0)
		e.PermuteW(bm1, quad, st.bmB1)
		e.PermuteW(b0, beta, st.nextIdx0)
		e.PermuteW(b1, beta, st.nextIdx1)
		e.PAddSW(v0, b0, bm0)
		e.PAddSW(v1, b1, bm1)
		if j < blockK {
			e.LoadVec(alpha, st.alphaAddr(j))
			e.PAddSW(e0, alpha, v0)
			e.PAddSW(e1, alpha, v1)
			d.hmaxPacked(st, e0, m0, tmp)
			d.hmaxPacked(st, e1, m1, tmp)
			e.PSubSW(dv, m0, m1)
			for b := 0; b < st.nb; b++ {
				e.PExtrWToMem(st.elemAddr(st.dPost, j*st.nb+b), dv, b*NumStates)
			}
		}
		e.PMaxSW(beta, v0, v1)
		e.PermuteW(norm, beta, st.lane0Idx)
		e.PSubSW(beta, beta, norm)
	}
	e.ReleaseVec(beta, quad, bm0, bm1, b0, b1, v0, v1, alpha, e0, e1, m0, m1, dv, tmp, norm)
	d.setHi(m, e)
}

func (d *MultiSIMDDecoder) hmaxPacked(st *packedState, v, dst, tmp *simd.Vec) {
	e := st.e
	e.PermuteW(tmp, v, st.hmaxIdx[0])
	e.PMaxSW(dst, v, tmp)
	e.PermuteW(tmp, dst, st.hmaxIdx[1])
	e.PMaxSW(dst, dst, tmp)
	e.PermuteW(tmp, dst, st.hmaxIdx[2])
	e.PMaxSW(dst, dst, tmp)
}

// extFinPacked finalizes the extrinsic for all blocks in one sweep over
// the packed arrays (same op shape as the per-block extFin, nb times
// fewer dispatch rounds and no scalar tail).
func (d *MultiSIMDDecoder) extFinPacked(st *packedState, sysBase int64, sysRot int, laBase int64) {
	e := st.e
	m := d.mark(e, "ext")
	L := st.lay.GroupLanes
	groups := st.n / L
	dvec, s, la, t, half, lim, nlim := e.AcquireVec(), e.AcquireVec(), e.AcquireVec(), e.AcquireVec(), e.AcquireVec(), e.AcquireVec(), e.AcquireVec()
	e.Broadcast16(lim, extClamp)
	e.Broadcast16(nlim, -extClamp)
	for g := 0; g < groups; g++ {
		e.LoadVec(dvec, st.vecAddr(st.dPost, g, 0))
		e.LoadVec(s, st.vecAddr(sysBase, g, sysRot))
		e.LoadVec(la, st.vecAddr(laBase, g, 0))
		e.PAddSW(t, s, la)
		e.PSraW(half, dvec, 1)
		e.PSubSW(half, half, t)
		e.PMinSW(half, half, lim)
		e.PMaxSW(half, half, nlim)
		e.StoreVec(st.vecAddr(st.ext, g, 0), half)
	}
	e.ReleaseVec(dvec, s, la, t, half, lim, nlim)
	d.setHi(m, e)
}

// hdecPacked extracts hard decisions by vector compare: an arithmetic
// right shift by 15 turns each posterior into an all-ones (bit 1) or
// all-zeros (bit 0) lane, stored packed for the Go-side bit scan.
func (d *MultiSIMDDecoder) hdecPacked(st *packedState) {
	e := st.e
	m := d.mark(e, "interleave")
	groups := st.n / st.lay.GroupLanes
	v, h := e.AcquireVec(), e.AcquireVec()
	for g := 0; g < groups; g++ {
		e.LoadVec(v, st.vecAddr(st.dPost, g, 0))
		e.PSraW(h, v, 15)
		e.StoreVec(st.vecAddr(st.hdec, g, 0), h)
	}
	e.ReleaseVec(v, h)
	d.setHi(m, e)
}

// iterPacked emits one full decode iteration's engine ops. The stream
// is identical for every iteration and independent of the convergence
// masks (frozen blocks are skipped only in the Go-side extraction), so
// the replay compiler's stability check always holds.
func (d *MultiSIMDDecoder) iterPacked(st *packedState) {
	// Half 1: natural order, terminated.
	d.gammaPacked(st, st.s, st.lay.Rot[core.ClusterS], st.p1, core.ClusterP1, st.la1)
	d.alphaPacked(st, st.code.K, true)
	d.betaExtPacked(st, st.code.K, true)
	d.extFinPacked(st, st.s, st.lay.Rot[core.ClusterS], st.la1)
	m := d.mark(st.e, "interleave")
	st.gather(st.gLa2, st.la2, st.ext, 0)
	d.setHi(m, st.e)

	// Half 2: interleaved order, unterminated.
	d.gammaPacked(st, st.sPerm, 0, st.p2, core.ClusterP2, st.la2)
	d.alphaPacked(st, st.code.K, false)
	d.betaExtPacked(st, st.code.K, false)
	d.extFinPacked(st, st.sPerm, 0, st.la2)
	m = d.mark(st.e, "interleave")
	st.gather(st.gLa1, st.la1, st.ext, 0)
	d.hdecPacked(st)
	d.setHi(m, st.e)
}

// loadWordsPacked pads the batch, copies the packed interleaved input
// in and records the tail LLRs. Shared by the interpreted and replay
// drivers (plain memory writes, no ops).
func (st *packedState) loadWordsPacked(words []*LLRWord) error {
	if len(words) < 1 || len(words) > st.nb {
		return fmt.Errorf("turbo: got %d blocks, state decodes 1..%d at once", len(words), st.nb)
	}
	st.words = append(st.words[:0], words...)
	for len(st.words) < st.nb {
		st.words = append(st.words, words[0])
	}
	for b, w := range st.words {
		core.WriteInterleavedPacked(st.e.Mem, st.src, b, st.nb, w.Sys, w.P1, w.P2)
		st.tailSys[b] = w.TailSys
		st.tailP1[b] = w.TailP1
	}
	return nil
}

// extractPacked scans the hard-decision array for every still-live
// block, updating bits in place and tracking a dirty flag per block —
// the O(k) equalBits re-compare of the per-block path folded into the
// extraction itself. A block whose iteration left its bits unchanged
// (it > 0) freezes: its bits stop updating, exactly like the scalar
// reference exiting that block's loop. Returns true when every real
// block has frozen.
func (st *packedState) extractPacked(earlyExit bool, it int) bool {
	qpp := st.code.qpp
	mem := st.e.Mem
	done := true
	for b := 0; b < st.nb; b++ {
		if st.conv[b] {
			continue
		}
		dirty := false
		bits := st.bits[b]
		for i := 0; i < st.code.K; i++ {
			var v byte
			if mem.ReadI16(st.elemAddr(st.hdec, i*st.nb+b)) != 0 {
				v = 1
			}
			if p := qpp.Perm(i); bits[p] != v {
				bits[p] = v
				dirty = true
			}
		}
		if earlyExit && it > 0 && !dirty {
			st.conv[b] = true
			st.itersB[b] = it + 1
		} else {
			done = false
		}
	}
	return done
}

// runPacked executes one packed decode over a prepared state: the
// interpreted counterpart of the compiled replay driver, and the
// recording target the replay program is compiled from.
func (d *MultiSIMDDecoder) runPacked(st *packedState, words []*LLRWord) ([][]byte, int, error) {
	if st.code.K != d.Code.K {
		return nil, 0, fmt.Errorf("turbo: state built for K=%d, decoder configured for K=%d", st.code.K, d.Code.K)
	}
	requested := len(words)
	if err := st.loadWordsPacked(words); err != nil {
		return nil, 0, err
	}
	e := st.e
	d.Marks = d.Marks[:0]

	m := d.mark(e, "arrangement")
	st.ar.Arrange(e, st.src, core.Dest{S: st.s, P1: st.p1, P2: st.p2}, st.n)
	d.setHi(m, e)
	if !st.constReady {
		d.initPackedConstants(st, st.code.trellis)
		st.constReady = true
	}
	st.writeTailQuads()

	// One-time interleaved systematic gather and la1 zero-init.
	m = d.mark(e, "interleave")
	st.gather(st.gSPerm, st.sPerm, st.s, st.lay.Rot[core.ClusterS])
	d.setHi(m, e)
	m = d.mark(e, "init")
	groups := st.n / st.lay.GroupLanes
	for g := 0; g < groups; g++ {
		e.StoreVec(st.vecAddr(st.la1, g, 0), st.zero)
	}
	d.setHi(m, e)

	resetConv(st.conv, st.itersB, requested)
	iters := 0
	for it := 0; it < d.MaxIters; it++ {
		iters++
		e.ProgMark("iteration")
		d.iterPacked(st)
		if st.extractPacked(d.EarlyExit, it) {
			break
		}
	}
	stampIters(st.itersB, iters)
	return st.bits[:requested], iters, nil
}
