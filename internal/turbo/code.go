package turbo

import "fmt"

// Code is a configured turbo code: block size plus interleaver.
type Code struct {
	K       int
	qpp     *QPP
	trellis *Trellis
}

// NewCode builds the turbo code for information block length k (which
// must be a supported block size; see BlockSizes).
func NewCode(k int) (*Code, error) {
	if !ValidBlockSize(k) {
		return nil, fmt.Errorf("turbo: unsupported block size %d (nearest: %d)", k, NearestBlockSize(k))
	}
	q, err := NewQPP(k)
	if err != nil {
		return nil, err
	}
	return &Code{K: k, qpp: q, trellis: NewTrellis()}, nil
}

// QPP exposes the interleaver.
func (c *Code) QPP() *QPP { return c.qpp }

// Trellis exposes the branch tables.
func (c *Code) Trellis() *Trellis { return c.trellis }

// Codeword is the encoder output: the three K-bit streams plus the
// termination tail of the first constituent encoder. (The second
// constituent is left unterminated and the decoder initializes its
// backward recursion equiprobably — a standard simplification that
// avoids the 3GPP tail-bit multiplexing; see DESIGN.md.)
type Codeword struct {
	Sys     []byte // systematic bits, length K
	P1      []byte // parity of encoder 1 (natural order), length K
	P2      []byte // parity of encoder 2 (interleaved order), length K
	TailSys [3]byte
	TailP1  [3]byte
}

// Bits returns the total number of transmitted bits.
func (cw *Codeword) Bits() int { return 3*len(cw.Sys) + 6 }

// Encode produces the codeword for K information bits (values 0/1).
func (c *Code) Encode(bits []byte) (*Codeword, error) {
	if len(bits) != c.K {
		return nil, fmt.Errorf("turbo: got %d bits, code expects %d", len(bits), c.K)
	}
	for i, b := range bits {
		if b > 1 {
			return nil, fmt.Errorf("turbo: bit %d has non-binary value %d", i, b)
		}
	}
	cw := &Codeword{Sys: append([]byte(nil), bits...)}
	var p1 []byte
	p1, cw.TailSys, cw.TailP1 = EncodeRSC(bits)
	cw.P1 = p1
	perm := c.qpp.InterleaveBits(bits)
	cw.P2, _, _ = EncodeRSC(perm)
	return cw, nil
}

// EncodeTraced encodes like Encode and additionally emits a
// representative scalar µop stream into e: per information bit, each of
// the two constituent encoders performs a handful of table lookups,
// XORs and stores, plus the interleaver's address computation. Turbo
// encoding is one of the high-retiring scalar modules of the downlink
// profile (Figure 4/6).
func (c *Code) EncodeTraced(e interface {
	EmitScalar(string, int)
	EmitScalarLoad(string, int64, int)
	EmitScalarStore(string, int64, int)
	EmitBranch(string)
}, bits []byte) (*Codeword, error) {
	cw, err := c.Encode(bits)
	if err != nil {
		return nil, err
	}
	for i := range bits {
		e.EmitScalar("xor", 4)
		e.EmitScalarLoad("mov", int64(i*2%4096), 2)
		e.EmitScalarStore("mov", int64(i*2%4096), 2)
		if i%8 == 7 {
			e.EmitBranch("jnz")
		}
	}
	return cw, nil
}

// LLRWord carries the received soft values, one int16 LLR per
// transmitted bit, with the convention LLR > 0 ⇒ bit 0 more likely.
type LLRWord struct {
	Sys     []int16
	P1      []int16
	P2      []int16
	TailSys [3]int16
	TailP1  [3]int16
}

// NewLLRWord allocates an LLR word for block size k.
func NewLLRWord(k int) *LLRWord {
	return &LLRWord{
		Sys: make([]int16, k),
		P1:  make([]int16, k),
		P2:  make([]int16, k),
	}
}

// FromHard fills the word with noiseless LLRs of amplitude amp for the
// given codeword — the decoder's easiest input, used by tests.
func (w *LLRWord) FromHard(cw *Codeword, amp int16) {
	conv := func(dst []int16, src []byte) {
		for i, b := range src {
			if b == 0 {
				dst[i] = amp
			} else {
				dst[i] = -amp
			}
		}
	}
	conv(w.Sys, cw.Sys)
	conv(w.P1, cw.P1)
	conv(w.P2, cw.P2)
	for i := 0; i < 3; i++ {
		w.TailSys[i] = hardLLR(cw.TailSys[i], amp)
		w.TailP1[i] = hardLLR(cw.TailP1[i], amp)
	}
}

func hardLLR(bit byte, amp int16) int16 {
	if bit == 0 {
		return amp
	}
	return -amp
}

// Clone returns an independent copy of the word.
func (w *LLRWord) Clone() *LLRWord {
	c := &LLRWord{
		Sys:     append([]int16(nil), w.Sys...),
		P1:      append([]int16(nil), w.P1...),
		P2:      append([]int16(nil), w.P2...),
		TailSys: w.TailSys,
		TailP1:  w.TailP1,
	}
	return c
}

// Accumulate saturating-adds src's soft values into w — HARQ chase
// combining in the LLR-word domain. Repeated receptions of the same
// codeword add coherently (the signal doubles) while independent noise
// adds in quadrature, which is why a combined retransmission decodes
// where each reception alone did not. Both words must belong to the
// same block size. Sums saturate at ±(LLRLimit-1): the combined word
// stays inside the channel-LLR range every decoder build accepts, so
// SIMD and scalar decodes of it remain bit-identical.
func (w *LLRWord) Accumulate(src *LLRWord) error {
	if len(w.Sys) != len(src.Sys) {
		return fmt.Errorf("turbo: combine K mismatch: %d vs %d", len(w.Sys), len(src.Sys))
	}
	acc := func(dst, s []int16) {
		for i := range dst {
			dst[i] = satAddLLR(dst[i], s[i])
		}
	}
	acc(w.Sys, src.Sys)
	acc(w.P1, src.P1)
	acc(w.P2, src.P2)
	for i := 0; i < 3; i++ {
		w.TailSys[i] = satAddLLR(w.TailSys[i], src.TailSys[i])
		w.TailP1[i] = satAddLLR(w.TailP1[i], src.TailP1[i])
	}
	return nil
}

// satAddLLR adds two channel LLRs saturating at ±(LLRLimit-1).
func satAddLLR(a, b int16) int16 {
	s := int32(a) + int32(b)
	if s > LLRLimit-1 {
		s = LLRLimit - 1
	}
	if s < -(LLRLimit - 1) {
		s = -(LLRLimit - 1)
	}
	return int16(s)
}
