package turbo

import (
	"fmt"
	"sync"
	"testing"

	"vransim/internal/core"
	"vransim/internal/simd"
)

// TestBatchDecoderSteadyStateBitExact drives one pooled decoder through
// an interleaved mixed-K, mixed-fill sequence and checks every batch
// against a fresh decoder built for that batch alone: plan reuse,
// scratch rewind and arena sharing must be invisible in the output.
func TestBatchDecoderSteadyStateBitExact(t *testing.T) {
	for _, w := range []simd.Width{simd.W128, simd.W256, simd.W512} {
		pooled := NewBatchDecoder(w, core.StrategyAPCM, 32<<20)
		pooled.MaxIters = 4
		seq := []struct {
			k    int
			fill int
		}{
			{40, pooled.Lanes()}, {104, 1}, {40, 1}, {208, pooled.Lanes()},
			{104, pooled.Lanes()}, {40, pooled.Lanes()}, {208, 1},
		}
		for round, s := range seq {
			c, err := pooled.Code(s.k)
			if err != nil {
				t.Fatal(err)
			}
			words, truth := buildWords(t, c, s.fill, int64(100+round), true)
			got, _, err := pooled.Decode(s.k, words)
			if err != nil {
				t.Fatalf("%v round %d: %v", w, round, err)
			}

			fresh := NewBatchDecoder(w, core.StrategyAPCM, 32<<20)
			fresh.MaxIters = 4
			want, _, err := fresh.Decode(s.k, words)
			if err != nil {
				t.Fatalf("%v round %d fresh: %v", w, round, err)
			}
			for b := range words {
				if !equalBits(got[b], want[b]) {
					t.Errorf("%v round %d (K=%d fill=%d) block %d: pooled decode differs from fresh",
						w, round, s.k, s.fill, b)
				}
				if !equalBits(got[b], truth[b]) {
					t.Errorf("%v round %d (K=%d fill=%d) block %d: wrong bits",
						w, round, s.k, s.fill, b)
				}
			}
		}
	}
}

// TestBatchDecoderSteadyStateAllocs is the tentpole's acceptance gate:
// after warm-up, a full-batch decode on a pooled decoder allocates only
// the caller-owned output copies (1 + Lanes() small objects), for every
// width. The pre-refactor decoder allocated hundreds of objects per
// batch here.
func TestBatchDecoderSteadyStateAllocs(t *testing.T) {
	const k = 104
	for _, w := range []simd.Width{simd.W128, simd.W256, simd.W512} {
		bd := NewBatchDecoder(w, core.StrategyAPCM, 32<<20)
		bd.MaxIters = 4
		c, err := bd.Code(k)
		if err != nil {
			t.Fatal(err)
		}
		words, _ := buildWords(t, c, bd.Lanes(), 7, true)
		if _, _, err := bd.Decode(k, words); err != nil { // warm-up: build the plan
			t.Fatal(err)
		}
		avg := testing.AllocsPerRun(10, func() {
			if _, _, err := bd.Decode(k, words); err != nil {
				t.Fatal(err)
			}
		})
		budget := float64(1 + bd.Lanes())
		if avg > budget {
			t.Errorf("%v: steady-state Decode allocates %.1f objects/op, budget %.0f", w, avg, budget)
		}
		if avg > 8 {
			t.Errorf("%v: steady-state Decode allocates %.1f objects/op, ISSUE budget 8", w, avg)
		}
	}
}

// TestBatchDecoderPlanEviction forces the arena-full path with a tiny
// arena: cycling through more block sizes than it holds must evict and
// rebuild — and stay bit-correct throughout.
func TestBatchDecoderPlanEviction(t *testing.T) {
	bd := NewBatchDecoder(simd.W512, core.StrategyAPCM, 2<<20)
	bd.MaxIters = 4
	ks := []int{6144, 5056, 6144, 4096, 5056, 6144}
	for round, k := range ks {
		c, err := bd.Code(k)
		if err != nil {
			t.Fatal(err)
		}
		words, truth := buildWords(t, c, bd.Lanes(), int64(300+round), true)
		bits, _, err := bd.Decode(k, words)
		if err != nil {
			t.Fatalf("round %d (K=%d): %v", round, k, err)
		}
		for b := range words {
			if !equalBits(bits[b], truth[b]) {
				t.Errorf("round %d (K=%d) block %d: wrong bits after eviction", round, k, b)
			}
		}
	}
	if bd.Evictions == 0 {
		t.Error("2 MiB arena fit three K=4096..6144 W512 plans without evicting — Remaining() check is dead")
	}
}

// TestBatchDecoderConcurrentWorkers runs two workers with separate
// pooled decoders under -race: per-worker decoders must share no
// scratch (the package-level tables they do share are read-only).
func TestBatchDecoderConcurrentWorkers(t *testing.T) {
	const k = 104
	var wg sync.WaitGroup
	for wkr := 0; wkr < 2; wkr++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			bd := NewBatchDecoder(simd.W512, core.StrategyAPCM, 32<<20)
			bd.MaxIters = 4
			c, err := bd.Code(k)
			if err != nil {
				t.Error(err)
				return
			}
			for round := 0; round < 8; round++ {
				words, truth := buildWords(t, c, bd.Lanes(), seed+int64(round), true)
				bits, _, err := bd.Decode(k, words)
				if err != nil {
					t.Error(err)
					return
				}
				for b := range words {
					if !equalBits(bits[b], truth[b]) {
						t.Errorf("worker seed %d round %d block %d: wrong bits", seed, round, b)
					}
				}
			}
		}(int64(1000 * (wkr + 1)))
	}
	wg.Wait()
}

// TestBatchDecoderOutputStable: returned bit slices must be caller-owned
// — a later Decode on the same decoder must not mutate them.
func TestBatchDecoderOutputStable(t *testing.T) {
	const k = 40
	bd := NewBatchDecoder(simd.W256, core.StrategyAPCM, 32<<20)
	bd.MaxIters = 4
	c, err := bd.Code(k)
	if err != nil {
		t.Fatal(err)
	}
	w1, truth1 := buildWords(t, c, bd.Lanes(), 41, true)
	first, _, err := bd.Decode(k, w1)
	if err != nil {
		t.Fatal(err)
	}
	w2, _ := buildWords(t, c, bd.Lanes(), 42, true)
	if _, _, err := bd.Decode(k, w2); err != nil {
		t.Fatal(err)
	}
	for b := range w1 {
		if !equalBits(first[b], truth1[b]) {
			t.Errorf("block %d: first batch's result mutated by second decode", b)
		}
	}
}

// BenchmarkBatchDecodeSteadyState is the tentpole's headline benchmark:
// full-batch pooled decode, per width and per execution mode, at a fixed
// mid-size K plus the largest LTE K at W512. "packed" is the serving
// default — the cross-block SoA-packed stream compiled to a fused replay
// program; "compiled" replays the per-block path's program and
// "interpreted" pins Compile=false on the per-block path, so the packed
// win and the compile win stay separately measurable. Run with
// -benchmem; CI gates allocs/op on it, the compiled/interpreted ratio at
// W512 K=6144, and the packed/compiled ratio at W512 K=512.
func BenchmarkBatchDecodeSteadyState(b *testing.B) {
	cases := []struct {
		w simd.Width
		k int
	}{
		{simd.W128, 512}, {simd.W256, 512}, {simd.W512, 104}, {simd.W512, 512}, {simd.W512, 6144},
	}
	for _, tc := range cases {
		for _, mode := range []string{"packed", "compiled", "interpreted"} {
			b.Run(fmt.Sprintf("%v/K%d/%s", tc.w, tc.k, mode), func(b *testing.B) {
				bd := NewBatchDecoder(tc.w, core.StrategyAPCM, 32<<20)
				bd.Packed = mode == "packed"
				bd.Compile = mode != "interpreted"
				c, err := bd.Code(tc.k)
				if err != nil {
					b.Fatal(err)
				}
				words, _ := buildWords(b, c, bd.Lanes(), 7, true)
				// Two warm-ups: the first builds the plan and (in compiled
				// modes) records + compiles the program; the second confirms
				// the steady path is reached before the clock starts.
				for i := 0; i < 2; i++ {
					if _, _, err := bd.Decode(tc.k, words); err != nil {
						b.Fatal(err)
					}
				}
				if bd.Compile && bd.ProgramStats().CompiledPlans == 0 {
					b.Fatal("warm-up did not compile a replay program")
				}
				b.SetBytes(int64(tc.k * bd.Lanes()))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := bd.Decode(tc.k, words); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkBatchDecodeFresh replicates the pre-refactor per-batch path
// (arena rewound, decoder and working set rebuilt every call) so the
// plan-cache win is measurable from one binary.
func BenchmarkBatchDecodeFresh(b *testing.B) {
	const k = 512
	for _, w := range []simd.Width{simd.W128, simd.W256, simd.W512} {
		b.Run(w.String(), func(b *testing.B) {
			eng := simd.NewEngine(w, simd.NewMemory(32<<20), nil)
			ar := core.ByStrategy(core.StrategyAPCM)
			c, err := NewCode(k)
			if err != nil {
				b.Fatal(err)
			}
			nb := BlocksPerRegister(w)
			words, _ := buildWords(b, c, nb, 7, true)
			b.SetBytes(int64(k * nb))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Mem.AllocReset()
				d := NewMultiSIMDDecoder(c)
				if _, _, err := d.Decode(eng, ar, words); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
