package turbo

import (
	"math/rand"
	"testing"

	"vransim/internal/core"
	"vransim/internal/simd"
)

// decodeFourWay decodes the same batch through the packed compiled
// replay, the packed interpreter, the per-block (unpacked) path and the
// scalar reference, failing on any hard-decision or iteration-count
// mismatch. It is the packed path's bit-exactness oracle: the SoA
// layout, the quad branch-metric scatter, the gather-program interleave
// and the fused replay steps must all be invisible in the output.
func decodeFourWay(t *testing.T, w simd.Width, k int, words []*LLRWord, maxIters int, label string) {
	t.Helper()
	packed := NewBatchDecoder(w, core.StrategyAPCM, 32<<20)
	packed.MaxIters = maxIters
	// Decode twice so the checked result comes from the replay path.
	if _, _, err := packed.Decode(k, words); err != nil {
		t.Fatalf("%s: packed warm-up: %v", label, err)
	}
	if packed.ProgramStats().CompiledPlans != 1 {
		t.Fatalf("%s: packed stream did not compile", label)
	}
	got, gotIters, err := packed.Decode(k, words)
	if err != nil {
		t.Fatalf("%s: packed compiled: %v", label, err)
	}
	gotPer := append([]int(nil), packed.BlockIters()...)

	pInterp := NewBatchDecoder(w, core.StrategyAPCM, 32<<20)
	pInterp.MaxIters = maxIters
	pInterp.Compile = false
	wantI, wantIIters, err := pInterp.Decode(k, words)
	if err != nil {
		t.Fatalf("%s: packed interpreted: %v", label, err)
	}

	unpacked := NewBatchDecoder(w, core.StrategyAPCM, 32<<20)
	unpacked.MaxIters = maxIters
	unpacked.Packed = false
	wantU, wantUIters, err := unpacked.Decode(k, words)
	if err != nil {
		t.Fatalf("%s: unpacked: %v", label, err)
	}
	unpackedPer := append([]int(nil), unpacked.BlockIters()...)

	if gotIters != wantIIters || gotIters != wantUIters {
		t.Errorf("%s: iterations diverge: packed-compiled %d, packed-interpreted %d, unpacked %d",
			label, gotIters, wantIIters, wantUIters)
	}
	c, err := packed.Code(k)
	if err != nil {
		t.Fatal(err)
	}
	for b := range words {
		if !equalBits(got[b], wantI[b]) {
			t.Errorf("%s block %d: packed compiled and interpreted decisions differ", label, b)
		}
		if !equalBits(got[b], wantU[b]) {
			t.Errorf("%s block %d: packed and per-block decisions differ", label, b)
		}
		if gotPer[b] != unpackedPer[b] {
			t.Errorf("%s block %d: packed converged in %d iterations, per-block in %d",
				label, b, gotPer[b], unpackedPer[b])
		}
		sc := NewDecoder(c)
		sc.MaxIters = maxIters
		scalarBits, _, err := sc.Decode(words[b])
		if err != nil {
			t.Fatalf("%s block %d: scalar: %v", label, b, err)
		}
		if !equalBits(got[b], scalarBits) {
			t.Errorf("%s block %d: packed and scalar decisions differ", label, b)
		}
	}
}

// TestPackedMatchesAllPaths is the tentpole's differential property
// test: across widths, block sizes (including the largest fused-program
// sizes the other differential tests skip), clean and noisy channels
// and partial fills, the packed path must be bit- and iteration-
// identical to the per-block path and the scalar reference.
// K=104 and K=512 get the same treatment in
// TestCompiledMatchesInterpretedAndScalar, which runs the packed
// default on both sides of its comparison.
func TestPackedMatchesAllPaths(t *testing.T) {
	for _, w := range simd.Widths {
		for _, k := range []int{40, 208, 2048} {
			c, err := NewCode(k)
			if err != nil {
				t.Fatal(err)
			}
			nb := BlocksPerRegister(w)
			for _, tc := range []struct {
				name      string
				fill      int
				seed      int64
				noiseless bool
			}{
				{"clean/full", nb, 811, true},
				{"noisy/full", nb, 812, false},
				{"noisy/one", 1, 813, false},
			} {
				words, _ := buildWords(t, c, tc.fill, tc.seed, tc.noiseless)
				label := w.String() + "/K" + itoa(k) + "/" + tc.name
				decodeFourWay(t, w, k, words, 4, label)
			}
		}
	}
}

// TestPackedPaddedLanesInvariant is the under-filled-batch regression
// test: a batch of n < Lanes() real words pads the remaining lanes with
// copies of the first word, and those padded lanes must be completely
// invisible — every real block's hard decisions AND its per-block
// convergence iteration must equal what decoding that word alone
// produces, at every fill level, on both the compiled and interpreted
// packed paths.
func TestPackedPaddedLanesInvariant(t *testing.T) {
	const k = 104
	for _, compile := range []bool{true, false} {
		for _, w := range []simd.Width{simd.W256, simd.W512} {
			nb := BlocksPerRegister(w)
			c, err := NewCode(k)
			if err != nil {
				t.Fatal(err)
			}
			// Noisy words so blocks genuinely converge at different
			// iterations — the interesting case for early-exit masking.
			words, _ := buildWords(t, c, nb, 831, false)

			// Solo reference: each word decoded alone.
			soloBits := make([][]byte, nb)
			soloIters := make([]int, nb)
			for b := 0; b < nb; b++ {
				solo := NewBatchDecoder(w, core.StrategyAPCM, 32<<20)
				solo.MaxIters = 6
				solo.Compile = compile
				bits, _, err := solo.Decode(k, words[b:b+1])
				if err != nil {
					t.Fatal(err)
				}
				soloBits[b] = bits[0]
				soloIters[b] = solo.BlockIters()[0]
			}

			for fill := 1; fill <= nb; fill++ {
				bd := NewBatchDecoder(w, core.StrategyAPCM, 32<<20)
				bd.MaxIters = 6
				bd.Compile = compile
				var bits [][]byte
				// Two decodes when compiling, so the checked batch runs
				// through the replay program.
				rounds := 1
				if compile {
					rounds = 2
				}
				for i := 0; i < rounds; i++ {
					bits, _, err = bd.Decode(k, words[:fill])
					if err != nil {
						t.Fatal(err)
					}
				}
				if len(bits) != fill {
					t.Fatalf("%v fill=%d: got %d result blocks", w, fill, len(bits))
				}
				per := bd.BlockIters()
				if len(per) != fill {
					t.Fatalf("%v fill=%d: BlockIters has %d entries", w, fill, len(per))
				}
				for b := 0; b < fill; b++ {
					if !equalBits(bits[b], soloBits[b]) {
						t.Errorf("%v compile=%v fill=%d block %d: batched decisions differ from solo decode",
							w, compile, fill, b)
					}
					if per[b] != soloIters[b] {
						t.Errorf("%v compile=%v fill=%d block %d: batched block converged in %d iterations, solo in %d",
							w, compile, fill, b, per[b], soloIters[b])
					}
				}
			}
		}
	}
}

// TestPackedMidStreamKChange drives one packed decoder through
// interleaved block sizes and fills — every (K, packed) plan change,
// program recompile and scratch rewind mid-stream must stay bit-exact
// against fresh single-K decoders.
func TestPackedMidStreamKChange(t *testing.T) {
	bd := NewBatchDecoder(simd.W512, core.StrategyAPCM, 32<<20)
	bd.MaxIters = 4
	seq := []struct {
		k    int
		fill int
	}{
		{104, 4}, {512, 1}, {104, 2}, {2048, 4}, {512, 4}, {104, 4}, {2048, 1},
	}
	for round, s := range seq {
		c, err := bd.Code(s.k)
		if err != nil {
			t.Fatal(err)
		}
		words, truth := buildWords(t, c, s.fill, int64(850+round), true)
		bits, _, err := bd.Decode(s.k, words)
		if err != nil {
			t.Fatalf("round %d (K=%d): %v", round, s.k, err)
		}
		for b := range words {
			if !equalBits(bits[b], truth[b]) {
				t.Errorf("round %d (K=%d fill=%d) block %d: wrong bits", round, s.k, s.fill, b)
			}
		}
	}
	if got := bd.ProgramStats().CompiledPlans; got != 3 {
		t.Errorf("want 3 compiled packed plans after the sequence, got %d", got)
	}
}

// TestPackedPlanEviction forces arena-pressure eviction with packed
// plans (which carry a larger working set than per-block plans) and
// checks correctness through the evict/rebuild/recompile cycle.
func TestPackedPlanEviction(t *testing.T) {
	bd := NewBatchDecoder(simd.W512, core.StrategyAPCM, 2<<20)
	bd.MaxIters = 4
	ks := []int{6144, 5056, 6144, 4096, 5056, 6144}
	for round, k := range ks {
		c, err := bd.Code(k)
		if err != nil {
			t.Fatal(err)
		}
		words, truth := buildWords(t, c, bd.Lanes(), int64(870+round), true)
		bits, _, err := bd.Decode(k, words)
		if err != nil {
			t.Fatalf("round %d (K=%d): %v", round, k, err)
		}
		for b := range words {
			if !equalBits(bits[b], truth[b]) {
				t.Errorf("round %d (K=%d) block %d: wrong bits after eviction", round, k, b)
			}
		}
		if bd.plans[planKey{k: k, packed: true}].prog == nil {
			t.Errorf("round %d (K=%d): current packed plan not compiled", round, k)
		}
	}
	if bd.Evictions == 0 {
		t.Fatal("2 MiB arena fit three K=4096..6144 W512 packed plans without evicting")
	}
	if s := bd.ProgramStats(); s.Compiles <= 3 {
		t.Errorf("want >3 compilations (recompiles after eviction), got %d", s.Compiles)
	}
}

// TestPackedToggleMidStream flips Packed back and forth on one decoder:
// the two paths cache independent plans under (K, packed) keys, so
// toggling mid-stream must neither corrupt state nor change results.
func TestPackedToggleMidStream(t *testing.T) {
	const k = 208
	bd := NewBatchDecoder(simd.W512, core.StrategyAPCM, 32<<20)
	bd.MaxIters = 4
	c, err := bd.Code(k)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 6; round++ {
		bd.Packed = round%2 == 0
		words, truth := buildWords(t, c, bd.Lanes(), int64(890+round), true)
		bits, _, err := bd.Decode(k, words)
		if err != nil {
			t.Fatalf("round %d (packed=%v): %v", round, bd.Packed, err)
		}
		for b := range words {
			if !equalBits(bits[b], truth[b]) {
				t.Errorf("round %d (packed=%v) block %d: wrong bits", round, bd.Packed, b)
			}
		}
	}
	if bd.Plans() != 2 {
		t.Errorf("want 2 plans (packed and per-block), got %d", bd.Plans())
	}
	if got := bd.ProgramStats().CompiledPlans; got != 2 {
		t.Errorf("want both plans compiled, got %d", got)
	}
}

// FuzzPackedDecode is the packed path's fuzz target: random width,
// block size, fill and fully random (not necessarily decodable) LLR
// payloads must decode bit- and iteration-identically through the
// packed compiled, packed interpreted and per-block paths.
func FuzzPackedDecode(f *testing.F) {
	f.Add(int64(7), uint8(2), uint8(0), uint8(0))
	f.Add(int64(8), uint8(1), uint8(2), uint8(1))
	f.Add(int64(9), uint8(0), uint8(3), uint8(255))
	ks := []int{40, 104, 208, 512}
	f.Fuzz(func(t *testing.T, seed int64, wIdx, kIdx, fill uint8) {
		w := simd.Widths[int(wIdx)%len(simd.Widths)]
		k := ks[int(kIdx)%len(ks)]
		rng := rand.New(rand.NewSource(seed))
		nb := BlocksPerRegister(w)
		n := 1 + int(fill)%nb
		words := make([]*LLRWord, n)
		for b := range words {
			words[b] = randomWord(rng, k)
		}

		packed := NewBatchDecoder(w, core.StrategyAPCM, 32<<20)
		packed.MaxIters = 4
		if _, _, err := packed.Decode(k, words); err != nil {
			t.Fatal(err)
		}
		got, gotIters, err := packed.Decode(k, words)
		if err != nil {
			t.Fatal(err)
		}
		if packed.ProgramStats().Hits == 0 {
			t.Fatal("second decode did not hit the compiled packed program")
		}
		gotPer := append([]int(nil), packed.BlockIters()...)

		pInterp := NewBatchDecoder(w, core.StrategyAPCM, 32<<20)
		pInterp.MaxIters = 4
		pInterp.Compile = false
		wantI, wantIIters, err := pInterp.Decode(k, words)
		if err != nil {
			t.Fatal(err)
		}

		unpacked := NewBatchDecoder(w, core.StrategyAPCM, 32<<20)
		unpacked.MaxIters = 4
		unpacked.Packed = false
		wantU, wantUIters, err := unpacked.Decode(k, words)
		if err != nil {
			t.Fatal(err)
		}

		if gotIters != wantIIters || gotIters != wantUIters {
			t.Errorf("iterations diverge: packed-compiled %d, packed-interpreted %d, unpacked %d",
				gotIters, wantIIters, wantUIters)
		}
		unpackedPer := unpacked.BlockIters()
		for b := range words {
			if !equalBits(got[b], wantI[b]) {
				t.Errorf("block %d: packed compiled and interpreted decisions differ", b)
			}
			if !equalBits(got[b], wantU[b]) {
				t.Errorf("block %d: packed and per-block decisions differ", b)
			}
			if gotPer[b] != unpackedPer[b] {
				t.Errorf("block %d: packed block iterations %d, per-block %d", b, gotPer[b], unpackedPer[b])
			}
		}
	})
}
