// Package tune is the offline auto-tuner behind cmd/vrantune: for each
// (K, packed) plan of one decoder configuration it records, compiles
// and schedule-searches a replay program (heuristic subset chosen by a
// deterministic seeded budget), verifies the result bit-for-bit against
// the interpreter, and persists the winners — serialized programs plus
// the arena cursors that anchor them — to a versioned on-disk cache. A
// serving process warm-starts by installing the cached plans into a
// fresh BatchDecoder, skipping both the recording compile and the
// schedule search entirely (the CI tune-smoke job asserts the restart
// performs zero compiles).
package tune

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"sort"

	"vransim/internal/core"
	"vransim/internal/simd"
	"vransim/internal/simd/program"
	"vransim/internal/turbo"
)

// FormatVersion is the cache file format version. It participates in
// the config hash together with program.WireVersion, so either kind of
// format drift invalidates old caches instead of misreading them.
const FormatVersion = 1

// Options configures one tuning run. Width, Strategy, MemBytes and the
// plan grid identify the decoder configuration; Seed and Budget make
// the heuristic search deterministic and bounded.
type Options struct {
	Width    simd.Width
	Strategy core.Strategy
	// MemBytes is the decoder arena size. Compiled programs embed
	// absolute arena addresses, so the warm-starting decoder must use
	// the same size (checked by WarmStart).
	MemBytes int
	// Ks is the block-size grid, tuned (and later installed) in
	// ascending order; Packed selects which decode paths to tune for
	// each K.
	Ks     []int
	Packed []bool
	// MaxIters bounds decode iterations during recording (0 = decoder
	// default).
	MaxIters int
	// Seed drives the per-plan heuristic-subset shuffle; the same seed
	// reproduces the same search (and byte-identical plans).
	Seed int64
	// Budget caps how many schedule heuristics are tried per plan
	// (0 = all). The recorded order is always priced as the baseline
	// candidate on top of this.
	Budget int
	// SimBudget caps simulated µops per candidate segment
	// (0 = program.DefaultSimBudget).
	SimBudget int
}

// Plan is one tuned (K, packed) entry: the serialized replay program,
// the arena cursor InstallPlan must observe after building the plan's
// state, and the search outcome for reporting and gating.
type Plan struct {
	K      int  `json:"k"`
	Packed bool `json:"packed"`
	// ArenaNext is the arena bump-allocation cursor after this plan's
	// state build — plans must be installed in file order for the
	// cursors to replay.
	ArenaNext int64 `json:"arena_next"`
	// Heuristic names the winning schedule per segment ("original"
	// when the recorded order won); the IPCs are the cost-model scores
	// of the recorded and adopted orders.
	Heuristic    [2]string  `json:"heuristic"`
	SimIPCBefore [2]float64 `json:"sim_ipc_before"`
	SimIPCAfter  [2]float64 `json:"sim_ipc_after"`
	Moved        [2]int     `json:"moved"`
	// Candidates and SimulatedUops are the per-plan search cost:
	// orderings priced (baselines included) and µops fed to the
	// cost-model simulator.
	Candidates    int    `json:"candidates"`
	SimulatedUops int64  `json:"simulated_uops"`
	Program       []byte `json:"program"`
}

// Cache is the persisted tuning result for one decoder configuration.
type Cache struct {
	Version int    `json:"version"`
	Hash    uint64 `json:"hash"`
	// Decoder configuration the plans were tuned against.
	WidthBits int    `json:"width_bits"`
	Strategy  string `json:"strategy"`
	MemBytes  int    `json:"mem_bytes"`
	MaxIters  int    `json:"max_iters"`
	// Search configuration (part of the hash so a cache file is
	// traceable to the exact run that produced it).
	Seed      int64 `json:"seed"`
	Budget    int   `json:"budget"`
	SimBudget int   `json:"sim_budget"`
	// Plans in build order.
	Plans []Plan `json:"plans"`
}

// ConfigHash fingerprints everything that determines a tuning run's
// output: both format versions, the decoder configuration and the
// search configuration (including the grid, in canonical form). Two
// runs with equal hashes produce byte-identical caches.
func ConfigHash(o *Options) uint64 {
	ks, pt, pf := canonGrid(o.Ks, o.Packed)
	iters := o.MaxIters
	if iters <= 0 {
		iters = turbo.DefaultMaxIters
	}
	return gridHash(FormatVersion, o.Width.Bits(), o.Strategy.String(), o.MemBytes,
		iters, o.Seed, o.Budget, o.SimBudget, ks, pt, pf)
}

// canonGrid sorts and dedupes the K grid and reduces the packed list
// to presence flags — the canonical grid identity shared by option
// hashing and loaded-cache hashing.
func canonGrid(ks []int, packed []bool) (outKs []int, pt, pf bool) {
	outKs = append([]int(nil), ks...)
	sort.Ints(outKs)
	j := 0
	for i, k := range outKs {
		if i == 0 || k != outKs[j-1] {
			outKs[j] = k
			j++
		}
	}
	outKs = outKs[:j]
	if len(packed) == 0 {
		packed = []bool{true}
	}
	for _, p := range packed {
		if p {
			pt = true
		} else {
			pf = true
		}
	}
	return outKs, pt, pf
}

func gridHash(version, widthBits int, strategy string, memBytes, maxIters int, seed int64, budget, simBudget int, ks []int, pt, pf bool) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "fmt%d|wire%d|w%d|%s|mem%d|iters%d|seed%d|budget%d|sim%d|",
		version, program.WireVersion, widthBits, strategy, memBytes,
		maxIters, seed, budget, simBudget)
	for _, k := range ks {
		fmt.Fprintf(h, "k%d|", k)
	}
	if pt {
		fmt.Fprintf(h, "ptrue|")
	}
	if pf {
		fmt.Fprintf(h, "pfalse|")
	}
	return h.Sum64()
}

// DefaultDir is the default cache directory: the user cache dir's
// vrantune subdirectory (or ./vrantune-cache if the platform reports
// no cache dir).
func DefaultDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return "vrantune-cache"
	}
	return filepath.Join(base, "vrantune")
}

// CachePath names the cache file for one configuration inside dir.
func CachePath(dir string, o *Options) string {
	return filepath.Join(dir, fmt.Sprintf("vrantune-%016x.json", ConfigHash(o)))
}

// Save writes the cache atomically (temp file + rename in the target
// directory, which is created if missing).
func Save(path string, c *Cache) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(c, "", " ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".vrantune-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Load reads a cache file and verifies its integrity: the format
// version must match and the stored hash must equal the hash recomputed
// from the stored configuration — a version bump (of the cache format
// or the program wire format) or an edited config field invalidates the
// cache instead of installing stale plans.
func Load(path string) (*Cache, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c Cache
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("tune: %s: %w", path, err)
	}
	if c.Version != FormatVersion {
		return nil, fmt.Errorf("tune: %s: format version %d, this build reads %d", path, c.Version, FormatVersion)
	}
	if got := c.configHash(); got != c.Hash {
		return nil, fmt.Errorf("tune: %s: config hash %016x does not match stored %016x (stale or edited cache)", path, got, c.Hash)
	}
	return &c, nil
}

// configHash recomputes the hash from a loaded cache's stored fields,
// deriving the grid from the plan list. Strategy is kept as its string
// form — the hash must not depend on enum numbering.
func (c *Cache) configHash() uint64 {
	ks := make([]int, 0, len(c.Plans))
	packed := make([]bool, 0, len(c.Plans))
	for _, p := range c.Plans {
		ks = append(ks, p.K)
		packed = append(packed, p.Packed)
	}
	cks, pt, pf := canonGrid(ks, packed)
	return gridHash(c.Version, c.WidthBits, c.Strategy, c.MemBytes,
		c.MaxIters, c.Seed, c.Budget, c.SimBudget, cks, pt, pf)
}

// heuristicSubset picks the deterministic per-plan heuristic search
// order: a seeded shuffle of all heuristics, truncated to the budget.
// Different plans get different (but reproducible) subsets, so a small
// budget still explores the whole space across the grid.
func heuristicSubset(seed int64, k int, packed bool, budget int) []program.Heuristic {
	hs := program.AllHeuristics()
	mix := seed ^ int64(k)<<20
	if packed {
		mix ^= 1 << 40
	}
	rng := rand.New(rand.NewSource(mix))
	rng.Shuffle(len(hs), func(i, j int) { hs[i], hs[j] = hs[j], hs[i] })
	if budget > 0 && budget < len(hs) {
		hs = hs[:budget]
	}
	return hs
}

// tuneWords builds a deterministic batch of random LLR words for the
// recording decode. Content does not influence the compiled program
// (the op stream is a pure function of K, width and strategy), but
// random payloads keep the decode from converging before the builder
// has seen both segments.
func tuneWords(seed int64, k, n int) []*turbo.LLRWord {
	rng := rand.New(rand.NewSource(seed ^ int64(k)))
	words := make([]*turbo.LLRWord, n)
	for b := range words {
		w := turbo.NewLLRWord(k)
		r16 := func() int16 { return int16(rng.Intn(2*int(turbo.LLRLimit)-1)) - (turbo.LLRLimit - 1) }
		for i := 0; i < k; i++ {
			w.Sys[i], w.P1[i], w.P2[i] = r16(), r16(), r16()
		}
		for i := 0; i < 3; i++ {
			w.TailSys[i], w.TailP1[i] = r16(), r16()
		}
		words[b] = w
	}
	return words
}

// Tune runs the full grid: for each (K, packed) plan it records and
// compiles a replay program with the scheduling pass on (heuristic
// subset from the seeded budget), verifies the compiled plan decodes
// bit- and iteration-identically to the interpreter, and serializes
// the program with its arena cursor. Any eviction, failed compile or
// verification mismatch aborts the run — a cache is all-or-nothing.
func Tune(o Options) (*Cache, error) {
	if len(o.Ks) == 0 {
		return nil, fmt.Errorf("tune: empty K grid")
	}
	ks, pt, pf := canonGrid(o.Ks, o.Packed)
	o.Ks = ks
	o.Packed = nil
	if pt {
		o.Packed = append(o.Packed, true)
	}
	if pf {
		o.Packed = append(o.Packed, false)
	}

	bd := turbo.NewBatchDecoder(o.Width, o.Strategy, o.MemBytes)
	bd.Schedule = true
	if o.MaxIters > 0 {
		bd.MaxIters = o.MaxIters
	}
	ref := turbo.NewBatchDecoder(o.Width, o.Strategy, o.MemBytes)
	ref.Compile = false
	ref.MaxIters = bd.MaxIters

	c := &Cache{
		Version:   FormatVersion,
		WidthBits: o.Width.Bits(),
		Strategy:  o.Strategy.String(),
		MemBytes:  o.MemBytes,
		MaxIters:  bd.MaxIters,
		Seed:      o.Seed,
		Budget:    o.Budget,
		SimBudget: o.SimBudget,
	}
	for _, k := range o.Ks {
		for _, packed := range o.Packed {
			bd.Packed = packed
			ref.Packed = packed
			bd.SchedOptions = program.CompileOptions{
				Heuristics: heuristicSubset(o.Seed, k, packed, o.Budget),
				SimBudget:  o.SimBudget,
			}
			words := tuneWords(o.Seed, k, bd.Lanes())
			if _, _, err := bd.Decode(k, words); err != nil {
				return nil, fmt.Errorf("tune: K=%d packed=%v: record: %w", k, packed, err)
			}
			prog := bd.PlanProgram(k, packed)
			if prog == nil {
				return nil, fmt.Errorf("tune: K=%d packed=%v: plan did not compile", k, packed)
			}
			got, gotIters, err := bd.Decode(k, words)
			if err != nil {
				return nil, fmt.Errorf("tune: K=%d packed=%v: replay: %w", k, packed, err)
			}
			want, wantIters, err := ref.Decode(k, words)
			if err != nil {
				return nil, fmt.Errorf("tune: K=%d packed=%v: reference: %w", k, packed, err)
			}
			if gotIters != wantIters {
				return nil, fmt.Errorf("tune: K=%d packed=%v: tuned plan took %d iters, interpreter %d", k, packed, gotIters, wantIters)
			}
			for b := range words {
				if !bitsEqual(got[b], want[b]) {
					return nil, fmt.Errorf("tune: K=%d packed=%v: tuned plan decisions diverge from interpreter on block %d", k, packed, b)
				}
			}
			blob, err := prog.MarshalBinary()
			if err != nil {
				return nil, fmt.Errorf("tune: K=%d packed=%v: %w", k, packed, err)
			}
			info := prog.Sched()
			c.Plans = append(c.Plans, Plan{
				K:             k,
				Packed:        packed,
				ArenaNext:     bd.ArenaOffset(),
				Heuristic:     info.Heuristic,
				SimIPCBefore:  info.IPCBefore,
				SimIPCAfter:   info.IPCAfter,
				Moved:         info.Moved,
				Candidates:    info.Candidates,
				SimulatedUops: info.SimulatedUops,
				Program:       blob,
			})
		}
	}
	if bd.Evictions != 0 {
		return nil, fmt.Errorf("tune: grid overflowed the %d-byte arena (%d evictions) — cursors are not replayable; shrink the grid or grow -mem", o.MemBytes, bd.Evictions)
	}
	c.Hash = c.configHash()
	return c, nil
}

// WarmStart installs every cached plan into bd in build order,
// returning how many were installed. The decoder must match the
// cache's width, strategy and arena size; any install failure or
// arena eviction during installation aborts (earlier installs remain
// usable, later plans fall back to in-process compilation).
func WarmStart(bd *turbo.BatchDecoder, c *Cache) (int, error) {
	if got := bd.Width().Bits(); got != c.WidthBits {
		return 0, fmt.Errorf("tune: cache tuned for %d-bit registers, decoder runs %d-bit", c.WidthBits, got)
	}
	if got := bd.Strategy().String(); got != c.Strategy {
		return 0, fmt.Errorf("tune: cache tuned for strategy %q, decoder runs %q", c.Strategy, got)
	}
	if got := bd.ArenaSize(); got != c.MemBytes {
		return 0, fmt.Errorf("tune: cache tuned against a %d-byte arena, decoder has %d bytes", c.MemBytes, got)
	}
	ev := bd.Evictions
	for i := range c.Plans {
		p := &c.Plans[i]
		if err := bd.InstallPlan(p.K, p.Packed, p.Program, p.ArenaNext); err != nil {
			return i, fmt.Errorf("tune: plan %d/%d: %w", i+1, len(c.Plans), err)
		}
		if bd.Evictions != ev {
			return i, fmt.Errorf("tune: plan %d/%d (K=%d) evicted earlier installs — arena too small for the grid", i+1, len(c.Plans), p.K)
		}
	}
	return len(c.Plans), nil
}

func bitsEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
