package tune

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"vransim/internal/core"
	"vransim/internal/simd"
	"vransim/internal/turbo"
)

func testOptions() Options {
	return Options{
		Width:    simd.W128,
		Strategy: core.StrategyAPCM,
		MemBytes: 16 << 20,
		Ks:       []int{40, 104},
		Packed:   []bool{true, false},
		MaxIters: 4,
		Seed:     1,
	}
}

// TestTuneSaveLoadWarmStart is the end-to-end tuner property: tune a
// grid, persist it, load it back in a "fresh process" and warm-start a
// new decoder — every grid decode must then be served with zero
// compiles and zero misses, bit-identical to the interpreter.
func TestTuneSaveLoadWarmStart(t *testing.T) {
	o := testOptions()
	c, err := Tune(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Plans) != 4 {
		t.Fatalf("tuned %d plans, want 4", len(c.Plans))
	}
	path := CachePath(t.TempDir(), &o)
	if err := Save(path, c); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded, c) {
		t.Fatal("cache did not survive the save/load round trip")
	}

	bd := turbo.NewBatchDecoder(o.Width, o.Strategy, o.MemBytes)
	bd.MaxIters = o.MaxIters
	n, err := WarmStart(bd, loaded)
	if err != nil {
		t.Fatalf("warm start: %v", err)
	}
	if n != len(c.Plans) {
		t.Fatalf("installed %d plans, want %d", n, len(c.Plans))
	}

	ref := turbo.NewBatchDecoder(o.Width, o.Strategy, o.MemBytes)
	ref.Compile = false
	ref.MaxIters = o.MaxIters
	for _, p := range loaded.Plans {
		bd.Packed = p.Packed
		ref.Packed = p.Packed
		words := tuneWords(99, p.K, bd.Lanes())
		got, gotIters, err := bd.Decode(p.K, words)
		if err != nil {
			t.Fatalf("K=%d packed=%v: %v", p.K, p.Packed, err)
		}
		want, wantIters, err := ref.Decode(p.K, words)
		if err != nil {
			t.Fatal(err)
		}
		if gotIters != wantIters {
			t.Errorf("K=%d packed=%v: warm %d iters, interpreted %d", p.K, p.Packed, gotIters, wantIters)
		}
		for b := range words {
			if !bitsEqual(got[b], want[b]) {
				t.Errorf("K=%d packed=%v block %d: warm-started and interpreted decisions differ", p.K, p.Packed, b)
			}
		}
	}
	s := bd.ProgramStats()
	if s.Compiles != 0 || s.Misses != 0 {
		t.Fatalf("warm decoder compiled in-process: %+v", s)
	}
	if s.WarmPlans != uint64(len(c.Plans)) {
		t.Fatalf("WarmPlans = %d, want %d", s.WarmPlans, len(c.Plans))
	}
}

// TestTuneDeterministic: same options, byte-identical cache — the
// seeded search has no hidden nondeterminism.
func TestTuneDeterministic(t *testing.T) {
	o := testOptions()
	a, err := Tune(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Tune(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two tuning runs with the same seed diverged")
	}
}

// TestBudgetLimitsCandidates: the search budget caps per-plan
// candidates deterministically (1 baseline + budget candidates per
// segment).
func TestBudgetLimitsCandidates(t *testing.T) {
	o := testOptions()
	o.Ks = []int{40}
	o.Packed = []bool{true}
	o.Budget = 1
	c, err := Tune(o)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Plans[0].Candidates; got != 4 {
		t.Errorf("budget 1: %d candidates, want 4 (baseline+1 per segment)", got)
	}
	o.Budget = 0
	c, err = Tune(o)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Plans[0].Candidates; got != 6 {
		t.Errorf("budget 0 (all): %d candidates, want 6", got)
	}
}

// TestLoadRejectsDrift: edited config fields and format-version bumps
// must invalidate the cache rather than load it.
func TestLoadRejectsDrift(t *testing.T) {
	o := testOptions()
	o.Ks = []int{40}
	o.Packed = []bool{true}
	c, err := Tune(o)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	edited := *c
	edited.MemBytes += 64
	path := filepath.Join(dir, "edited.json")
	if err := Save(path, &edited); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("edited cache loaded")
	}

	old := *c
	old.Version = FormatVersion + 1
	path = filepath.Join(dir, "old.json")
	if err := Save(path, &old); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("future-versioned cache loaded")
	}

	path = filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("garbage cache loaded")
	}
}

// TestWarmStartRejectsMismatchedDecoder: a decoder with a different
// width, strategy or arena size must refuse the cache up front.
func TestWarmStartRejectsMismatchedDecoder(t *testing.T) {
	o := testOptions()
	o.Ks = []int{40}
	o.Packed = []bool{true}
	c, err := Tune(o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WarmStart(turbo.NewBatchDecoder(simd.W256, o.Strategy, o.MemBytes), c); err == nil {
		t.Error("width mismatch accepted")
	}
	if _, err := WarmStart(turbo.NewBatchDecoder(o.Width, core.StrategyExtract, o.MemBytes), c); err == nil {
		t.Error("strategy mismatch accepted")
	}
	if _, err := WarmStart(turbo.NewBatchDecoder(o.Width, o.Strategy, o.MemBytes/2), c); err == nil {
		t.Error("arena size mismatch accepted")
	}
}
