package fronthaul

import (
	"io"
	"testing"
	"time"

	"vransim/internal/chaos"
)

// TestLinkRoundTrip: frames written on one pipe end arrive decoded and
// in order on the other, across both planes.
func TestLinkRoundTrip(t *testing.T) {
	a, b := Pipe()
	tx, rx := NewLink(a, nil), NewLink(b, nil)
	w := testWord(40, 2)
	frames := []*Frame{
		DataFrame(0, 1, 2, 40, w, 500),
		{Type: TypeSnapshotReq},
		DataFrame(1, 0, 0, 40, w, 0),
		{Type: TypeError, Payload: []byte("nope")},
	}
	done := make(chan error, 1)
	go func() {
		for _, f := range frames {
			if err := tx.WriteFrame(f); err != nil {
				done <- err
				return
			}
		}
		done <- a.Close()
	}()
	for i, want := range frames {
		got, err := rx.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.Cell != want.Cell {
			t.Fatalf("frame %d: got type %s cell %d, want %s %d", i, got.Type, got.Cell, want.Type, want.Cell)
		}
	}
	if _, err := rx.ReadFrame(); err != io.EOF {
		t.Fatalf("after close: err = %v, want EOF", err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if s := tx.Stats(); s.Sent != 4 || s.Dropped != 0 {
		t.Errorf("stats = %+v, want 4 sent 0 dropped", s)
	}
}

// TestLinkChaosDrop: a rate-1 drop site loses every data frame but no
// management frame, and the counters say so.
func TestLinkChaosDrop(t *testing.T) {
	a, b := Pipe()
	inj := chaos.New(chaos.Config{Seed: 1, LinkDropRate: 1.0})
	tx, rx := NewLink(a, inj), NewLink(b, nil)
	w := testWord(40, 1)
	for i := 0; i < 5; i++ {
		if err := tx.WriteFrame(DataFrame(0, 0, 0, 40, w, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.WriteFrame(&Frame{Type: TypeSnapshotReq}); err != nil {
		t.Fatal(err)
	}
	got, err := rx.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypeSnapshotReq {
		t.Fatalf("first delivered frame is %s, want snapshot_req", got.Type)
	}
	if s := tx.Stats(); s.Dropped != 5 || s.Sent != 1 {
		t.Errorf("stats = %+v, want 5 dropped 1 sent", s)
	}
}

// TestLinkChaosReorder: a delayed frame comes out behind its successor,
// and Flush releases a frame with no successor.
func TestLinkChaosReorder(t *testing.T) {
	a, b := Pipe()
	inj := chaos.New(chaos.Config{Seed: 1, LinkDelayRate: 1.0})
	tx, rx := NewLink(a, inj), NewLink(b, nil)
	w := testWord(40, 1)
	// Frame 0 is held (rate-1 delay); frame 1 is also eligible but the
	// one-frame hold slot is occupied, so it goes straight out, flushing
	// frame 0 behind it.
	if err := tx.WriteFrame(DataFrame(0, 0, 0, 40, w, 0)); err != nil {
		t.Fatal(err)
	}
	if err := tx.WriteFrame(DataFrame(0, 1, 0, 40, w, 0)); err != nil {
		t.Fatal(err)
	}
	first, _ := rx.ReadFrame()
	second, _ := rx.ReadFrame()
	if first == nil || second == nil || first.UE != 1 || second.UE != 0 {
		t.Fatalf("order = %v, %v; want UE 1 then UE 0", first, second)
	}
	if s := tx.Stats(); s.Reordered != 1 {
		t.Errorf("reordered = %d, want 1", s.Reordered)
	}
	// A held frame with no successor is released by Flush.
	if err := tx.WriteFrame(DataFrame(0, 2, 0, 40, w, 0)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := rx.ReadFrame()
	if err != nil || got.UE != 2 {
		t.Fatalf("flushed frame = %v (%v), want UE 2", got, err)
	}
}

// TestLinkChaosPartition: a partition window black-holes data frames
// until it expires.
func TestLinkChaosPartition(t *testing.T) {
	a, b := Pipe()
	inj := chaos.New(chaos.Config{Seed: 1, LinkPartRate: 1.0, LinkPartFor: 20 * time.Millisecond})
	// Only the first write rolls the partition site; once the window is
	// open, subsequent frames drop without consulting chaos.
	tx, rx := NewLink(a, inj), NewLink(b, nil)
	w := testWord(40, 1)
	for i := 0; i < 3; i++ {
		if err := tx.WriteFrame(DataFrame(0, uint32ToInt(uint32(i)), 0, 40, w, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if s := tx.Stats(); s.Dropped != 3 || s.Sent != 0 {
		t.Fatalf("in-window stats = %+v, want 3 dropped 0 sent", s)
	}
	// After the window (plus the rate-1 site re-opening it each write we
	// avoid by a zero-rate injector), frames flow again.
	time.Sleep(25 * time.Millisecond)
	tx.chaos = nil
	if err := tx.WriteFrame(DataFrame(0, 9, 0, 40, w, 0)); err != nil {
		t.Fatal(err)
	}
	got, err := rx.ReadFrame()
	if err != nil || got.UE != 9 {
		t.Fatalf("post-partition frame = %v (%v), want UE 9", got, err)
	}
}

func uint32ToInt(v uint32) int { return int(v) }

// TestLinkBadWire: garbage length prefixes error instead of allocating
// or hanging.
func TestLinkBadWire(t *testing.T) {
	a, b := Pipe()
	rx := NewLink(b, nil)
	a.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := rx.ReadFrame(); err == nil {
		t.Error("oversized length prefix accepted")
	}
	a2, b2 := Pipe()
	rx2 := NewLink(b2, nil)
	a2.Write([]byte{0, 0, 0, 40, Version, byte(TypeSnapshotReq)}) // promises 40, delivers 2
	a2.Close()
	if _, err := rx2.ReadFrame(); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated body err = %v, want unexpected EOF", err)
	}
}
