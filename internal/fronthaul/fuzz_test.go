package fronthaul

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame hardens the frame parser: arbitrary bytes must never
// panic, and any frame DecodeFrame accepts must survive an
// encode/decode round trip with identical fields. Malformed headers,
// truncated payloads and bad versions error out before any payload
// interpretation.
func FuzzDecodeFrame(f *testing.F) {
	w := testWord(40, 5)
	f.Add(AppendFrame(nil, DataFrame(1, 2, 3, 40, w, 1000))[4:])
	flags, payload := EncodeState(w, w, nil)
	f.Add(AppendFrame(nil, &Frame{Type: TypeMigrateState, Flags: flags, K: 40, Aux: 2, Payload: payload})[4:])
	f.Add(AppendFrame(nil, &Frame{Type: TypeSnapshotReq})[4:])
	f.Add(AppendFrame(nil, &Frame{Type: TypeError, Payload: []byte("boom")})[4:])
	traced := DataFrame(1, 2, 3, 40, w, 1000)
	traced.Trace = &TraceCtx{TraceID: 0xabcd, ParentID: 1, SentUnixNs: 1 << 40,
		RouteNs: 100, EncodeNs: 200, ParkNs: 300}
	f.Add(AppendFrame(nil, traced)[4:])
	f.Add(AppendFrame(nil, &Frame{Type: TypeSpanReport, Aux: 9,
		Trace: &TraceCtx{TraceID: 1}, Payload: []byte(`[]`)})[4:])
	// The trace flag truncated mid-extension, and on the legacy version.
	f.Add(AppendFrame(nil, traced)[4 : 4+HeaderLen+TraceCtxLen/2])
	v1flag := AppendFrame(nil, traced)[4:]
	v1flag[0] = VersionNoTrace
	f.Add(v1flag)
	f.Add([]byte{})
	f.Add([]byte{Version})
	f.Add(bytes.Repeat([]byte{0xff}, HeaderLen))
	f.Fuzz(func(t *testing.T, body []byte) {
		fr, err := DecodeFrame(body)
		if err != nil {
			return
		}
		re := AppendFrame(nil, fr)
		fr2, err := DecodeFrame(re[4:])
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if fr2.Type != fr.Type || fr2.Flags != fr.Flags || fr2.Cell != fr.Cell ||
			fr2.UE != fr.UE || fr2.Proc != fr.Proc || fr2.K != fr.K ||
			fr2.Attempt != fr.Attempt || fr2.Aux != fr.Aux ||
			!bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatal("frame fields changed across encode/decode round trip")
		}
		if (fr2.Trace == nil) != (fr.Trace == nil) {
			t.Fatal("trace extension presence changed across round trip")
		}
		if fr.Trace != nil && *fr2.Trace != *fr.Trace {
			t.Fatal("trace extension fields changed across round trip")
		}
	})
}
