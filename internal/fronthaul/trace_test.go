package fronthaul

import (
	"bytes"
	"strings"
	"testing"
)

// TestTraceCtxRoundTrip: a frame carrying the trace extension must come
// back with identical trace fields, an untouched payload and the flag
// bit already consumed (Trace non-nil stands in for it).
func TestTraceCtxRoundTrip(t *testing.T) {
	w := testWord(40, 9)
	f := DataFrame(3, 1, 2, 40, w, 5_000_000)
	f.Trace = &TraceCtx{
		TraceID: 0xfeedbeefcafe, ParentID: 77,
		SentUnixNs: 1_700_000_000_123_456_789,
		RouteNs:    1500, EncodeNs: 2500, ParkNs: 42,
	}
	got, err := DecodeFrame(AppendFrame(nil, f)[4:])
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace == nil {
		t.Fatal("trace extension lost across the round trip")
	}
	if *got.Trace != *f.Trace {
		t.Errorf("trace ctx = %+v, want %+v", *got.Trace, *f.Trace)
	}
	if got.Flags&FlagTraceCtx != 0 {
		t.Error("FlagTraceCtx should be consumed by decode")
	}
	word, err := got.DataWord()
	if err != nil {
		t.Fatalf("payload after trace extension: %v", err)
	}
	if !wordsEqual(word, w) {
		t.Error("payload samples changed when the trace extension was present")
	}
}

// TestTraceCtxUntracedUnchanged: frames without a trace context encode
// byte-compatibly with what a v1 decoder expects after the version
// byte — the extension is strictly opt-in.
func TestTraceCtxUntracedUnchanged(t *testing.T) {
	f := &Frame{Type: TypeSnapshotReq}
	body := AppendFrame(nil, f)[4:]
	if body[0] != Version {
		t.Fatalf("version byte %d, want %d", body[0], Version)
	}
	got, err := DecodeFrame(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace != nil {
		t.Error("untraced frame decoded with a trace context")
	}
	if len(body) != HeaderLen {
		t.Errorf("untraced header-only frame is %d bytes, want %d", len(body), HeaderLen)
	}
}

// TestDecodeFrameV1Compat: a version-1 frame (the pre-trace format) must
// decode cleanly on a version-2 runtime — the rolling-upgrade contract.
func TestDecodeFrameV1Compat(t *testing.T) {
	w := testWord(512, 4)
	body := AppendFrame(nil, DataFrame(1, 2, 3, 512, w, 9000))[4:]
	body[0] = VersionNoTrace // what a v1 peer would have written
	f, err := DecodeFrame(body)
	if err != nil {
		t.Fatalf("v1 frame rejected: %v", err)
	}
	if f.Trace != nil {
		t.Error("v1 frame decoded with a trace context")
	}
	word, err := f.DataWord()
	if err != nil {
		t.Fatal(err)
	}
	if !wordsEqual(word, w) {
		t.Error("v1 payload changed across decode")
	}
}

// TestDecodeFrameV1TraceFlagRejected: the trace flag is not legal on a
// version-1 frame; a corrupted or confused peer must be rejected, not
// misparsed.
func TestDecodeFrameV1TraceFlagRejected(t *testing.T) {
	f := DataFrame(0, 0, 0, 40, testWord(40, 1), 0)
	f.Trace = &TraceCtx{TraceID: 1}
	body := AppendFrame(nil, f)[4:]
	body[0] = VersionNoTrace
	if _, err := DecodeFrame(body); err == nil {
		t.Fatal("v1 frame with FlagTraceCtx decoded; want error")
	} else if !strings.Contains(err.Error(), "trace-context") {
		t.Errorf("unexpected error: %v", err)
	}
}

// TestDecodeFrameTruncatedTraceCtx: the flag set with fewer than
// TraceCtxLen bytes after the header must error, never slice out of
// range.
func TestDecodeFrameTruncatedTraceCtx(t *testing.T) {
	f := &Frame{Type: TypeSnapshotReq, Trace: &TraceCtx{TraceID: 5}}
	body := AppendFrame(nil, f)[4:]
	for cut := 1; cut <= TraceCtxLen; cut++ {
		if _, err := DecodeFrame(body[:len(body)-cut]); err == nil {
			t.Fatalf("frame truncated %d bytes into the trace extension decoded", cut)
		}
	}
}

// TestSatNs32 covers the saturating nanosecond conversion the stamp
// path uses.
func TestSatNs32(t *testing.T) {
	for _, tc := range []struct {
		in   int64
		want uint32
	}{
		{-5, 0}, {0, 0}, {1500, 1500},
		{int64(^uint32(0)), ^uint32(0)},
		{int64(^uint32(0)) + 1, ^uint32(0)},
		{1 << 60, ^uint32(0)},
	} {
		if got := SatNs32(tc.in); got != tc.want {
			t.Errorf("SatNs32(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestSpanReportFrame: span report frames carry an opaque payload and
// the cumulative drop counter in Aux; the codec must not interpret the
// body.
func TestSpanReportFrame(t *testing.T) {
	payload := []byte(`[{"Outcome":"delivered"}]`)
	f := &Frame{Type: TypeSpanReport, Aux: 17, Payload: payload}
	got, err := DecodeFrame(AppendFrame(nil, f)[4:])
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypeSpanReport || got.Aux != 17 || !bytes.Equal(got.Payload, payload) {
		t.Errorf("span report round trip: %+v", got)
	}
	if got.Type.String() != "span_report" {
		t.Errorf("type name %q", got.Type.String())
	}
}
