// Package fronthaul implements the framed DU↔RU link of the O-RAN-style
// split: a length-prefixed, versioned binary frame format carrying
// packed LLR payloads between the coordinator (the DU-side router) and
// shard workers (the RU-side decode runtimes). The same codec runs over
// a real net.Conn and over the in-process pipe the tests and benchmarks
// use, so the distributed path is exercised byte-identically either way.
//
// Two planes share the frame format but not the fault model: user-plane
// Data frames ride the lossy fronthaul (the chaos injector may drop,
// reorder or black-hole them), while management-plane frames (snapshot
// and migration RPCs) model the reliable control channel and are never
// faulted — mirroring how O-RAN separates the U-plane from the
// M-plane.
//
// Data frames quantize LLRs to int8 (the fronthaul compression shape:
// channel LLRs fit once clamped to ±127), but migration-state frames
// pack int16 losslessly: HARQ-combined soft buffers saturate at
// ±(LLRLimit−1) = ±255, which int8 would destroy — and a migrated
// process must decode bit-identically on the target shard.
package fronthaul

import (
	"encoding/binary"
	"fmt"

	"vransim/internal/turbo"
)

// Version is the frame format version this build emits. Version 2
// added the optional trace-context header extension (FlagTraceCtx);
// version-1 frames (no extension) are still accepted, so a v1 peer can
// feed a v2 runtime across a rolling upgrade.
const Version = 2

// VersionNoTrace is the pre-trace frame format still accepted on
// decode.
const VersionNoTrace = 1

// HeaderLen is the fixed frame header size in bytes (excluding the
// 4-byte length prefix).
const HeaderLen = 32

// MaxBody bounds a frame body (header + payload); a length prefix
// beyond it is rejected before any allocation.
const MaxBody = 1 << 20

// Type discriminates frame kinds.
type Type uint8

// Frame types. Data is the user plane; everything else is the
// management plane.
const (
	// TypeData carries one code block's int8-packed soft word.
	TypeData Type = 1 + iota
	// TypeSnapshotReq asks a shard for its metrics snapshot.
	TypeSnapshotReq
	// TypeSnapshotResp returns the JSON-encoded ran.Snapshot.
	TypeSnapshotResp
	// TypeMigrateStart tells the source shard to drain a cell.
	TypeMigrateStart
	// TypeMigrateState carries one in-flight block or HARQ soft buffer
	// (int16-packed, per the Flag* bits) out of the draining shard.
	TypeMigrateState
	// TypeMigrateDone ends the source's state stream (Aux = entry count).
	TypeMigrateDone
	// TypeMigrateCommit asks the target shard to install the staged
	// state for a cell (Aux = expected entry count).
	TypeMigrateCommit
	// TypeMigrateAck confirms a commit (Aux = entries installed).
	TypeMigrateAck
	// TypeError reports a management-plane failure (payload = message).
	TypeError
	// TypeSpanReport ships a batch of completed telemetry spans from a
	// shard back to the coordinator's fleet collector (payload = JSON
	// []telemetry.Span, Aux = the shard's cumulative dropped-span
	// count). It rides the data link in the shard→coordinator direction
	// but is management-plane for the fault model: the chaos injector
	// never touches it.
	TypeSpanReport
	maxType
)

// String names the type.
func (t Type) String() string {
	switch t {
	case TypeData:
		return "data"
	case TypeSnapshotReq:
		return "snapshot_req"
	case TypeSnapshotResp:
		return "snapshot_resp"
	case TypeMigrateStart:
		return "migrate_start"
	case TypeMigrateState:
		return "migrate_state"
	case TypeMigrateDone:
		return "migrate_done"
	case TypeMigrateCommit:
		return "migrate_commit"
	case TypeMigrateAck:
		return "migrate_ack"
	case TypeError:
		return "error"
	case TypeSpanReport:
		return "span_report"
	}
	return "unknown"
}

// MigrateState payload flags: which int16-packed words follow, in this
// order.
const (
	// FlagHasWord: the in-flight received word (possibly HARQ-combined).
	FlagHasWord uint16 = 1 << iota
	// FlagHasTx: the originally transmitted reference word.
	FlagHasTx
	// FlagHasSoft: the HARQ process's soft combining buffer.
	FlagHasSoft
)

// FlagTraceCtx marks a version-2 frame that carries the TraceCtxLen
// trace-context extension between the fixed header and the payload.
// It lives in the top flag bit, far from the migrate-state bits, and is
// only legal on version >= 2 frames.
const FlagTraceCtx uint16 = 1 << 15

// TraceCtxLen is the wire size of the trace-context header extension.
const TraceCtxLen = 40

// TraceCtx is the frame header's trace-context extension: the fleet
// trace identity plus the stage dwell the block accumulated before it
// hit the wire. Durations are monotonic offsets measured on the
// sender's clock (uint32 nanoseconds, saturating at ~4.29s — far past
// any serving deadline); only SentUnixNs is a wall-clock stamp, and the
// receiver clamps the derived link dwell at zero so clock skew can
// never produce a negative stage.
type TraceCtx struct {
	// TraceID is the fleet-unique trace; ParentID the sending hop's
	// span.
	TraceID, ParentID uint64
	// SentUnixNs is the sender's wall clock at write time (0 = unknown).
	SentUnixNs int64
	// RouteNs, EncodeNs and ParkNs are the upstream stage dwells:
	// routing decision, wire serialization, and migration-hold parking.
	RouteNs, EncodeNs, ParkNs uint32
}

// SatNs32 saturates a duration into the uint32 nanosecond wire fields.
func SatNs32(d int64) uint32 {
	if d <= 0 {
		return 0
	}
	if d > int64(^uint32(0)) {
		return ^uint32(0)
	}
	return uint32(d)
}

// appendTraceCtx appends the TraceCtxLen wire encoding of tc.
func appendTraceCtx(dst []byte, tc *TraceCtx) []byte {
	dst = binary.BigEndian.AppendUint64(dst, tc.TraceID)
	dst = binary.BigEndian.AppendUint64(dst, tc.ParentID)
	dst = binary.BigEndian.AppendUint64(dst, uint64(tc.SentUnixNs))
	dst = binary.BigEndian.AppendUint32(dst, tc.RouteNs)
	dst = binary.BigEndian.AppendUint32(dst, tc.EncodeNs)
	dst = binary.BigEndian.AppendUint32(dst, tc.ParkNs)
	return binary.BigEndian.AppendUint32(dst, 0) // reserved
}

// decodeTraceCtx parses a TraceCtxLen extension.
func decodeTraceCtx(b []byte) *TraceCtx {
	return &TraceCtx{
		TraceID:    binary.BigEndian.Uint64(b),
		ParentID:   binary.BigEndian.Uint64(b[8:]),
		SentUnixNs: int64(binary.BigEndian.Uint64(b[16:])),
		RouteNs:    binary.BigEndian.Uint32(b[24:]),
		EncodeNs:   binary.BigEndian.Uint32(b[28:]),
		ParkNs:     binary.BigEndian.Uint32(b[32:]),
	}
}

// Frame is one decoded fronthaul frame. Aux is per-type: the deadline
// budget hint in nanoseconds on Data frames, the soft-buffer attempt
// count on MigrateState frames, entry counts on the migrate handshake.
type Frame struct {
	Type    Type
	Flags   uint16
	Cell    uint32
	UE      uint32
	Proc    uint32
	K       uint32
	Attempt uint32
	Aux     uint64
	// Trace, when non-nil, is encoded as the version-2 header extension
	// (and sets FlagTraceCtx on the wire). Frames decoded from v1 peers
	// always leave it nil.
	Trace   *TraceCtx
	Payload []byte
}

// Word8Len is the byte length of an int8-packed word for block size k.
func Word8Len(k int) int { return 3*k + 6 }

// Word16Len is the byte length of an int16-packed word for block size k.
func Word16Len(k int) int { return 2 * (3*k + 6) }

// clamp8 saturates a channel LLR into int8 range — the fronthaul
// quantization. Channel LLRs already fit (±255 only after combining,
// which never crosses the user plane), so this is defensive.
func clamp8(v int16) int8 {
	if v > 127 {
		return 127
	}
	if v < -127 {
		return -127
	}
	return int8(v)
}

// AppendWord8 appends the int8 packing of w (Sys, P1, P2, TailSys,
// TailP1) to dst.
func AppendWord8(dst []byte, w *turbo.LLRWord) []byte {
	for _, s := range [][]int16{w.Sys, w.P1, w.P2} {
		for _, v := range s {
			dst = append(dst, byte(clamp8(v)))
		}
	}
	for _, v := range w.TailSys {
		dst = append(dst, byte(clamp8(v)))
	}
	for _, v := range w.TailP1 {
		dst = append(dst, byte(clamp8(v)))
	}
	return dst
}

// UnpackWord8 decodes an int8-packed word of block size k.
func UnpackWord8(k int, b []byte) (*turbo.LLRWord, error) {
	if len(b) != Word8Len(k) {
		return nil, fmt.Errorf("fronthaul: word8 payload %d bytes, want %d for K=%d", len(b), Word8Len(k), k)
	}
	w := turbo.NewLLRWord(k)
	for _, s := range [][]int16{w.Sys, w.P1, w.P2} {
		for i := range s {
			s[i] = int16(int8(b[0]))
			b = b[1:]
		}
	}
	for i := range w.TailSys {
		w.TailSys[i] = int16(int8(b[i]))
	}
	b = b[3:]
	for i := range w.TailP1 {
		w.TailP1[i] = int16(int8(b[i]))
	}
	return w, nil
}

// AppendWord16 appends the lossless int16 big-endian packing of w to
// dst — the migration-state encoding.
func AppendWord16(dst []byte, w *turbo.LLRWord) []byte {
	for _, s := range [][]int16{w.Sys, w.P1, w.P2} {
		for _, v := range s {
			dst = binary.BigEndian.AppendUint16(dst, uint16(v))
		}
	}
	for _, v := range w.TailSys {
		dst = binary.BigEndian.AppendUint16(dst, uint16(v))
	}
	for _, v := range w.TailP1 {
		dst = binary.BigEndian.AppendUint16(dst, uint16(v))
	}
	return dst
}

// UnpackWord16 decodes an int16-packed word of block size k.
func UnpackWord16(k int, b []byte) (*turbo.LLRWord, error) {
	if len(b) != Word16Len(k) {
		return nil, fmt.Errorf("fronthaul: word16 payload %d bytes, want %d for K=%d", len(b), Word16Len(k), k)
	}
	w := turbo.NewLLRWord(k)
	for _, s := range [][]int16{w.Sys, w.P1, w.P2} {
		for i := range s {
			s[i] = int16(binary.BigEndian.Uint16(b))
			b = b[2:]
		}
	}
	for i := range w.TailSys {
		w.TailSys[i] = int16(binary.BigEndian.Uint16(b[2*i:]))
	}
	b = b[6:]
	for i := range w.TailP1 {
		w.TailP1[i] = int16(binary.BigEndian.Uint16(b[2*i:]))
	}
	return w, nil
}

// EncodeState builds the Flags and payload of a MigrateState frame from
// the (optional) in-flight word, tx reference and soft buffer. At least
// one must be non-nil.
func EncodeState(word, tx, soft *turbo.LLRWord) (uint16, []byte) {
	var flags uint16
	var payload []byte
	if word != nil {
		flags |= FlagHasWord
		payload = AppendWord16(payload, word)
	}
	if tx != nil {
		flags |= FlagHasTx
		payload = AppendWord16(payload, tx)
	}
	if soft != nil {
		flags |= FlagHasSoft
		payload = AppendWord16(payload, soft)
	}
	return flags, payload
}

// DecodeState splits a MigrateState payload back into its words per the
// flags.
func DecodeState(k int, flags uint16, payload []byte) (word, tx, soft *turbo.LLRWord, err error) {
	n := 0
	for _, f := range []uint16{FlagHasWord, FlagHasTx, FlagHasSoft} {
		if flags&f != 0 {
			n++
		}
	}
	if n == 0 {
		return nil, nil, nil, fmt.Errorf("fronthaul: migrate_state with no word flags")
	}
	wl := Word16Len(k)
	if len(payload) != n*wl {
		return nil, nil, nil, fmt.Errorf("fronthaul: migrate_state payload %d bytes, want %d (%d words of K=%d)", len(payload), n*wl, n, k)
	}
	next := func() (*turbo.LLRWord, error) {
		w, err := UnpackWord16(k, payload[:wl])
		payload = payload[wl:]
		return w, err
	}
	if flags&FlagHasWord != 0 {
		if word, err = next(); err != nil {
			return nil, nil, nil, err
		}
	}
	if flags&FlagHasTx != 0 {
		if tx, err = next(); err != nil {
			return nil, nil, nil, err
		}
	}
	if flags&FlagHasSoft != 0 {
		if soft, err = next(); err != nil {
			return nil, nil, nil, err
		}
	}
	return word, tx, soft, nil
}

// AppendFrame appends the wire encoding of f (length prefix + header +
// payload) to dst.
func AppendFrame(dst []byte, f *Frame) []byte {
	flags := f.Flags &^ FlagTraceCtx
	ext := 0
	if f.Trace != nil {
		flags |= FlagTraceCtx
		ext = TraceCtxLen
	}
	body := HeaderLen + ext + len(f.Payload)
	dst = binary.BigEndian.AppendUint32(dst, uint32(body))
	dst = append(dst, Version, byte(f.Type))
	dst = binary.BigEndian.AppendUint16(dst, flags)
	dst = binary.BigEndian.AppendUint32(dst, f.Cell)
	dst = binary.BigEndian.AppendUint32(dst, f.UE)
	dst = binary.BigEndian.AppendUint32(dst, f.Proc)
	dst = binary.BigEndian.AppendUint32(dst, f.K)
	dst = binary.BigEndian.AppendUint32(dst, f.Attempt)
	dst = binary.BigEndian.AppendUint64(dst, f.Aux)
	if f.Trace != nil {
		dst = appendTraceCtx(dst, f.Trace)
	}
	return append(dst, f.Payload...)
}

// DecodeFrame parses one frame body (everything after the length
// prefix). It validates the version, type and the per-type payload
// shape; it never panics on malformed input — the fuzz target's
// contract. The returned frame's Payload aliases body.
func DecodeFrame(body []byte) (*Frame, error) {
	if len(body) < HeaderLen {
		return nil, fmt.Errorf("fronthaul: frame body %d bytes, need %d header", len(body), HeaderLen)
	}
	ver := body[0]
	if ver != Version && ver != VersionNoTrace {
		return nil, fmt.Errorf("fronthaul: version %d, want %d or %d", ver, VersionNoTrace, Version)
	}
	f := &Frame{
		Type:    Type(body[1]),
		Flags:   binary.BigEndian.Uint16(body[2:]),
		Cell:    binary.BigEndian.Uint32(body[4:]),
		UE:      binary.BigEndian.Uint32(body[8:]),
		Proc:    binary.BigEndian.Uint32(body[12:]),
		K:       binary.BigEndian.Uint32(body[16:]),
		Attempt: binary.BigEndian.Uint32(body[20:]),
		Aux:     binary.BigEndian.Uint64(body[24:]),
		Payload: body[HeaderLen:],
	}
	if f.Type < TypeData || f.Type >= maxType {
		return nil, fmt.Errorf("fronthaul: unknown frame type %d", body[1])
	}
	if f.Flags&FlagTraceCtx != 0 {
		if ver < Version {
			return nil, fmt.Errorf("fronthaul: trace-context flag on version-%d frame", ver)
		}
		if len(f.Payload) < TraceCtxLen {
			return nil, fmt.Errorf("fronthaul: frame body %d bytes, need %d trace extension", len(body), HeaderLen+TraceCtxLen)
		}
		f.Trace = decodeTraceCtx(f.Payload)
		f.Payload = f.Payload[TraceCtxLen:]
		f.Flags &^= FlagTraceCtx
	}
	switch f.Type {
	case TypeData:
		k := int(f.K)
		if !turbo.ValidBlockSize(k) {
			return nil, fmt.Errorf("fronthaul: data frame with invalid K=%d", k)
		}
		if len(f.Payload) != Word8Len(k) {
			return nil, fmt.Errorf("fronthaul: data payload %d bytes, want %d for K=%d", len(f.Payload), Word8Len(k), k)
		}
	case TypeMigrateState:
		k := int(f.K)
		if !turbo.ValidBlockSize(k) {
			return nil, fmt.Errorf("fronthaul: migrate_state with invalid K=%d", k)
		}
		if _, _, _, err := DecodeState(k, f.Flags, f.Payload); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// DataFrame packs one submitted block as a user-plane frame.
func DataFrame(cell, ue, proc, k int, word *turbo.LLRWord, deadlineNs uint64) *Frame {
	return &Frame{
		Type: TypeData,
		Cell: uint32(cell), UE: uint32(ue), Proc: uint32(proc), K: uint32(k),
		Aux:     deadlineNs,
		Payload: AppendWord8(nil, word),
	}
}

// DataWord unpacks a Data frame's payload.
func (f *Frame) DataWord() (*turbo.LLRWord, error) {
	if f.Type != TypeData {
		return nil, fmt.Errorf("fronthaul: DataWord on %s frame", f.Type)
	}
	return UnpackWord8(int(f.K), f.Payload)
}
