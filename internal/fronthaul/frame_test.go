package fronthaul

import (
	"bytes"
	"testing"

	"vransim/internal/turbo"
)

// testWord fills a word with a deterministic channel-LLR pattern.
func testWord(k int, seed int16) *turbo.LLRWord {
	w := turbo.NewLLRWord(k)
	for i := range w.Sys {
		w.Sys[i] = int16((i*7+int(seed))%200 - 100)
		w.P1[i] = int16((i*13+int(seed))%200 - 100)
		w.P2[i] = int16((i*29+int(seed))%200 - 100)
	}
	for i := 0; i < 3; i++ {
		w.TailSys[i] = int16(40 + i + int(seed))
		w.TailP1[i] = int16(-40 - i - int(seed))
	}
	return w
}

func wordsEqual(a, b *turbo.LLRWord) bool {
	if len(a.Sys) != len(b.Sys) {
		return false
	}
	for i := range a.Sys {
		if a.Sys[i] != b.Sys[i] || a.P1[i] != b.P1[i] || a.P2[i] != b.P2[i] {
			return false
		}
	}
	return a.TailSys == b.TailSys && a.TailP1 == b.TailP1
}

// TestWord8RoundTrip: channel-range LLRs survive the int8 packing
// exactly; out-of-range values clamp to ±127.
func TestWord8RoundTrip(t *testing.T) {
	for _, k := range []int{40, 512, 6144} {
		w := testWord(k, 3)
		got, err := UnpackWord8(k, AppendWord8(nil, w))
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if !wordsEqual(got, w) {
			t.Fatalf("K=%d: word8 round trip changed samples", k)
		}
	}
	w := turbo.NewLLRWord(40)
	w.Sys[0] = 255
	w.Sys[1] = -255
	got, err := UnpackWord8(40, AppendWord8(nil, w))
	if err != nil {
		t.Fatal(err)
	}
	if got.Sys[0] != 127 || got.Sys[1] != -127 {
		t.Errorf("clamp = %d/%d, want 127/-127", got.Sys[0], got.Sys[1])
	}
}

// TestWord16RoundTrip: the migration packing is lossless over the full
// combined-LLR range (±255, beyond int8).
func TestWord16RoundTrip(t *testing.T) {
	w := testWord(104, 1)
	w.Sys[0] = turbo.LLRLimit - 1
	w.Sys[1] = -(turbo.LLRLimit - 1)
	got, err := UnpackWord16(104, AppendWord16(nil, w))
	if err != nil {
		t.Fatal(err)
	}
	if !wordsEqual(got, w) {
		t.Fatal("word16 round trip changed samples")
	}
	if _, err := UnpackWord16(104, make([]byte, 10)); err == nil {
		t.Error("short word16 payload accepted")
	}
}

// TestDataFrameRoundTrip: a data frame survives encode/decode with all
// header fields and payload intact.
func TestDataFrameRoundTrip(t *testing.T) {
	w := testWord(256, 9)
	f := DataFrame(2, 17, 5, 256, w, 3_000_000)
	body := AppendFrame(nil, f)
	got, err := DecodeFrame(body[4:])
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypeData || got.Cell != 2 || got.UE != 17 || got.Proc != 5 ||
		got.K != 256 || got.Attempt != 0 || got.Aux != 3_000_000 {
		t.Fatalf("header fields changed: %+v", got)
	}
	if !bytes.Equal(got.Payload, f.Payload) {
		t.Fatal("payload changed")
	}
	dw, err := got.DataWord()
	if err != nil {
		t.Fatal(err)
	}
	if !wordsEqual(dw, w) {
		t.Fatal("data word changed across the wire")
	}
}

// TestStateRoundTrip: every flag combination of the migrate-state
// payload round-trips losslessly.
func TestStateRoundTrip(t *testing.T) {
	k := 88
	word, tx, soft := testWord(k, 1), testWord(k, 2), testWord(k, 3)
	soft.Sys[0] = 255 // combined-range value int8 would destroy
	cases := []struct{ w, t, s *turbo.LLRWord }{
		{word, nil, nil}, {nil, nil, soft}, {word, tx, nil}, {word, tx, soft},
	}
	for i, c := range cases {
		flags, payload := EncodeState(c.w, c.t, c.s)
		gw, gt, gs, err := DecodeState(k, flags, payload)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		check := func(want, got *turbo.LLRWord, name string) {
			if (want == nil) != (got == nil) {
				t.Fatalf("case %d: %s presence changed", i, name)
			}
			if want != nil && !wordsEqual(want, got) {
				t.Fatalf("case %d: %s samples changed", i, name)
			}
		}
		check(c.w, gw, "word")
		check(c.t, gt, "tx")
		check(c.s, gs, "soft")
	}
	if _, _, _, err := DecodeState(k, 0, nil); err == nil {
		t.Error("flagless state accepted")
	}
	if _, _, _, err := DecodeState(k, FlagHasWord, make([]byte, 4)); err == nil {
		t.Error("truncated state accepted")
	}
}

// TestDecodeFrameRejects: the malformed shapes the fuzz target guards
// must all error (and clearly, not panic).
func TestDecodeFrameRejects(t *testing.T) {
	w := testWord(40, 1)
	good := AppendFrame(nil, DataFrame(0, 0, 0, 40, w, 0))[4:]
	cases := map[string][]byte{
		"short header": good[:HeaderLen-1],
		"bad version":  append([]byte{9}, good[1:]...),
		"bad type":     overwrite(good, 1, byte(maxType)),
		"zero type":    overwrite(good, 1, 0),
		"truncated":    good[:len(good)-1],
		"bad K":        overwriteK(good, 41),
	}
	for name, body := range cases {
		if _, err := DecodeFrame(body); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := DecodeFrame(good); err != nil {
		t.Errorf("good frame rejected: %v", err)
	}
	// Management frames carry free-form payloads.
	snap := AppendFrame(nil, &Frame{Type: TypeSnapshotResp, Payload: []byte(`{"x":1}`)})[4:]
	if _, err := DecodeFrame(snap); err != nil {
		t.Errorf("snapshot frame rejected: %v", err)
	}
}

func overwrite(b []byte, i int, v byte) []byte {
	c := append([]byte(nil), b...)
	c[i] = v
	return c
}

func overwriteK(b []byte, k uint32) []byte {
	c := append([]byte(nil), b...)
	c[16] = byte(k >> 24)
	c[17] = byte(k >> 16)
	c[18] = byte(k >> 8)
	c[19] = byte(k)
	return c
}
