package fronthaul

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"vransim/internal/chaos"
)

// LinkStats is a link's frame accounting. Sent counts frames that
// actually hit the wire; Dropped counts user-plane frames the chaos
// injector lost (drop site or partition window); Reordered counts
// frames delivered behind their successor.
type LinkStats struct {
	Sent      uint64 `json:"sent"`
	Dropped   uint64 `json:"dropped"`
	Reordered uint64 `json:"reordered"`
}

// Link frames an io.ReadWriter (a net.Conn, or the in-process Pipe) with
// the fronthaul codec. Writes and reads are each serialized by their own
// mutex, so one goroutine may stream frames while another reads.
//
// A chaos injector, when armed, faults only user-plane Data frames:
// drops, one-frame reorders, and partition windows during which every
// data frame is black-holed. Management-plane frames always go through
// in order — the reliable M-plane contract the migration protocol
// depends on.
type Link struct {
	rw io.ReadWriter

	wmu sync.Mutex
	// held is an encoded data frame the delay site pulled behind its
	// successor; it goes out right after the next write (or Flush).
	held []byte
	// partUntil is the end of the current chaos partition window.
	partUntil time.Time
	chaos     *chaos.Injector

	rmu  sync.Mutex
	lbuf [4]byte
	rbuf []byte

	sent      atomic.Uint64
	dropped   atomic.Uint64
	reordered atomic.Uint64
}

// NewLink wraps rw. A nil injector means a perfectly reliable link.
func NewLink(rw io.ReadWriter, inj *chaos.Injector) *Link {
	return &Link{rw: rw, chaos: inj}
}

// WriteFrame encodes and sends f. Data frames pass the chaos sites and
// may be silently lost (the caller sees nil — exactly what a lossy
// fronthaul looks like to the DU); management frames bypass chaos.
// A write error is always reported.
func (l *Link) WriteFrame(f *Frame) error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	if f.Type == TypeData {
		now := time.Now()
		if now.Before(l.partUntil) {
			l.dropped.Add(1)
			return nil
		}
		if d := l.chaos.PartitionFor(); d > 0 {
			l.partUntil = now.Add(d)
			l.dropped.Add(1)
			return nil
		}
		if l.chaos.DropFrame() {
			l.dropped.Add(1)
			return nil
		}
		if l.held == nil && l.chaos.DelayFrame() {
			l.held = AppendFrame(nil, f)
			l.reordered.Add(1)
			return nil
		}
	}
	buf := AppendFrame(nil, f)
	if err := l.writeAll(buf); err != nil {
		return err
	}
	return l.flushHeldLocked()
}

// Flush sends any reorder-held frame. Call before closing the
// underlying conn so a delayed frame is late, not lost.
func (l *Link) Flush() error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	return l.flushHeldLocked()
}

func (l *Link) flushHeldLocked() error {
	if l.held == nil {
		return nil
	}
	buf := l.held
	l.held = nil
	return l.writeAll(buf)
}

func (l *Link) writeAll(buf []byte) error {
	if _, err := l.rw.Write(buf); err != nil {
		return err
	}
	l.sent.Add(1)
	return nil
}

// ReadFrame blocks for the next frame. io.EOF means the peer closed
// cleanly between frames; a truncated frame is an ErrUnexpectedEOF.
func (l *Link) ReadFrame() (*Frame, error) {
	l.rmu.Lock()
	defer l.rmu.Unlock()
	if _, err := io.ReadFull(l.rw, l.lbuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(l.lbuf[:])
	if n < HeaderLen || n > MaxBody {
		return nil, fmt.Errorf("fronthaul: frame length %d outside [%d, %d]", n, HeaderLen, MaxBody)
	}
	if cap(l.rbuf) < int(n) {
		l.rbuf = make([]byte, n)
	}
	body := l.rbuf[:n]
	if _, err := io.ReadFull(l.rw, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	f, err := DecodeFrame(body)
	if err != nil {
		return nil, err
	}
	// The payload aliases the read buffer; copy so the next ReadFrame
	// cannot scribble over a frame the caller still holds.
	f.Payload = append([]byte(nil), f.Payload...)
	return f, nil
}

// Stats snapshots the link counters.
func (l *Link) Stats() LinkStats {
	return LinkStats{
		Sent:      l.sent.Load(),
		Dropped:   l.dropped.Load(),
		Reordered: l.reordered.Load(),
	}
}

// ------------------------------------------------------- in-proc pipe

// pipeBuf is one direction of the in-process pipe: an unbounded byte
// queue with blocking reads.
type pipeBuf struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []byte
	closed bool
}

func newPipeBuf() *pipeBuf {
	b := &pipeBuf{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *pipeBuf) write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0, io.ErrClosedPipe
	}
	b.buf = append(b.buf, p...)
	b.cond.Broadcast()
	return len(p), nil
}

func (b *pipeBuf) read(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.buf) == 0 {
		if b.closed {
			return 0, io.EOF
		}
		b.cond.Wait()
	}
	n := copy(p, b.buf)
	b.buf = b.buf[n:]
	return n, nil
}

func (b *pipeBuf) close() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// PipeEnd is one side of an in-process fronthaul pipe. Unlike net.Pipe,
// writes never block — the buffer is unbounded — so lock-step RPC and
// streaming traffic cannot deadlock in tests.
type PipeEnd struct {
	in, out *pipeBuf
}

// Read implements io.Reader (blocks until data or peer close).
func (p *PipeEnd) Read(b []byte) (int, error) { return p.in.read(b) }

// Write implements io.Writer.
func (p *PipeEnd) Write(b []byte) (int, error) { return p.out.write(b) }

// Close closes both directions; the peer's reads drain then EOF.
func (p *PipeEnd) Close() error {
	p.in.close()
	p.out.close()
	return nil
}

// Pipe returns the two ends of an in-process bidirectional byte stream.
func Pipe() (*PipeEnd, *PipeEnd) {
	ab, ba := newPipeBuf(), newPipeBuf()
	return &PipeEnd{in: ba, out: ab}, &PipeEnd{in: ab, out: ba}
}
