package cache

import (
	"testing"
	"testing/quick"
)

func TestLevelHitAfterMiss(t *testing.T) {
	l := NewLevel("L1", 1024, 2, 64, 4)
	if l.Access(0) {
		t.Error("cold access should miss")
	}
	if !l.Access(0) {
		t.Error("second access should hit")
	}
	if !l.Access(63) {
		t.Error("same-line access should hit")
	}
	if l.Access(64) {
		t.Error("next line should miss")
	}
	if l.Hits() != 2 || l.Misses() != 2 {
		t.Errorf("hits=%d misses=%d, want 2/2", l.Hits(), l.Misses())
	}
	if got := l.HitRate(); got != 0.5 {
		t.Errorf("hit rate = %f, want 0.5", got)
	}
}

func TestLevelLRUEviction(t *testing.T) {
	// 2-way, 64B lines, 2 sets (256 bytes). Lines 0, 2, 4 map to set 0.
	l := NewLevel("L1", 256, 2, 64, 4)
	l.Access(0 * 64)
	l.Access(2 * 64)
	l.Access(0 * 64) // 0 is now MRU, 2 is LRU
	l.Access(4 * 64) // evicts 2
	if !l.Access(0 * 64) {
		t.Error("line 0 should have survived")
	}
	if l.Access(2 * 64) {
		t.Error("line 2 should have been evicted")
	}
}

func TestLevelReset(t *testing.T) {
	l := NewLevel("L1", 1024, 2, 64, 4)
	l.Access(0)
	l.Reset()
	if l.Hits() != 0 || l.Misses() != 0 {
		t.Error("reset did not clear stats")
	}
	if l.Access(0) {
		t.Error("reset did not clear contents")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(Config{
		Name:   "test",
		L1Size: 1 << 10, L1Assoc: 2,
		L2Size: 8 << 10, L2Assoc: 2,
		L3Size: 64 << 10, L3Assoc: 4,
		LineSize:  64,
		L1Latency: 4, L2Latency: 12, L3Latency: 40, MemLatency: 200,
	})
	if got := h.Load(0); got != 200 {
		t.Errorf("cold load latency = %d, want 200 (memory)", got)
	}
	if got := h.Load(0); got != 4 {
		t.Errorf("warm load latency = %d, want 4 (L1)", got)
	}
	// Thrash L1 (16 lines) but stay inside L2 (128 lines).
	for i := int64(1); i <= 32; i++ {
		h.Load(i * 64)
	}
	if got := h.Load(0); got != 12 {
		t.Errorf("L1-evicted load latency = %d, want 12 (L2)", got)
	}
}

func TestHierarchyStoreInstalls(t *testing.T) {
	h := NewHierarchy(WimpyNode)
	if got := h.Store(4096); got != WimpyNode.MemLatency {
		t.Errorf("cold store = %d, want %d", got, WimpyNode.MemLatency)
	}
	if got := h.Load(4096); got != WimpyNode.L1Latency {
		t.Errorf("load after store = %d, want L1 hit %d", got, WimpyNode.L1Latency)
	}
}

func TestWimpyVsBeefyCapacity(t *testing.T) {
	// A working set larger than wimpy L2 but inside beefy L2 must show a
	// better hit profile on the beefy node: this is the Table 1 contrast.
	const lines = 40000 // 2.5 MB working set
	run := func(cfg Config) (l2Hit float64) {
		h := NewHierarchy(cfg)
		for pass := 0; pass < 4; pass++ {
			for i := int64(0); i < lines; i++ {
				h.Load(i * 64)
			}
		}
		return h.L2.HitRate()
	}
	wimpy := run(WimpyNode)
	beefy := run(BeefyNode)
	if beefy <= wimpy {
		t.Errorf("beefy L2 hit rate %.3f should exceed wimpy %.3f on a 2.5MB working set", beefy, wimpy)
	}
}

func TestTable1Sizes(t *testing.T) {
	// The exact Table 1 numbers.
	if WimpyNode.L1Size != 384<<10 || WimpyNode.L2Size != 1536<<10 || WimpyNode.L3Size != 12288<<10 {
		t.Error("wimpy node sizes do not match Table 1")
	}
	if BeefyNode.L1Size != 1152<<10 || BeefyNode.L2Size != 18432<<10 || BeefyNode.L3Size != 25344<<10 {
		t.Error("beefy node sizes do not match Table 1")
	}
}

// Property: access latency is always one of the four configured values,
// and repeating any single address immediately always yields an L1 hit.
func TestHierarchyLatencyDomain(t *testing.T) {
	h := NewHierarchy(WimpyNode)
	valid := map[int]bool{
		WimpyNode.L1Latency: true, WimpyNode.L2Latency: true,
		WimpyNode.L3Latency: true, WimpyNode.MemLatency: true,
	}
	f := func(addr uint32) bool {
		a := int64(addr)
		if !valid[h.Load(a)] {
			return false
		}
		return h.Load(a) == WimpyNode.L1Latency
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHierarchyString(t *testing.T) {
	s := NewHierarchy(BeefyNode).String()
	if s == "" {
		t.Error("empty description")
	}
}
