// Package cache models a three-level set-associative data-cache hierarchy
// with LRU replacement. The timing simulator replays the Load/Store µops
// of a trace through a Hierarchy to decide each access's latency and to
// split backend stalls into core-bound vs memory-bound, reproducing the
// wimpy-node / beefy-node comparison of the paper's Table 1 and Figure 7.
package cache

import "fmt"

// Level simulates one set-associative cache level.
type Level struct {
	name      string
	sizeBytes int
	assoc     int
	lineSize  int
	numSets   int
	latency   int       // cycles on hit at this level
	sets      [][]int64 // per-set LRU stack of line tags, most recent first
	hits      int64
	misses    int64
}

// NewLevel builds a cache level. size must be a multiple of assoc*lineSize.
func NewLevel(name string, sizeBytes, assoc, lineSize, latency int) *Level {
	numSets := sizeBytes / (assoc * lineSize)
	if numSets < 1 {
		numSets = 1
	}
	sets := make([][]int64, numSets)
	for i := range sets {
		sets[i] = make([]int64, 0, assoc)
	}
	return &Level{
		name:      name,
		sizeBytes: sizeBytes,
		assoc:     assoc,
		lineSize:  lineSize,
		numSets:   numSets,
		latency:   latency,
		sets:      sets,
	}
}

// Name returns the level's label (e.g. "L1").
func (l *Level) Name() string { return l.name }

// Size returns the capacity in bytes.
func (l *Level) Size() int { return l.sizeBytes }

// Latency returns the hit latency in cycles.
func (l *Level) Latency() int { return l.latency }

// Hits and Misses report the access statistics so far.
func (l *Level) Hits() int64   { return l.hits }
func (l *Level) Misses() int64 { return l.misses }

// HitRate returns hits/(hits+misses), or 1 when no accesses occurred.
func (l *Level) HitRate() float64 {
	total := l.hits + l.misses
	if total == 0 {
		return 1
	}
	return float64(l.hits) / float64(total)
}

// Access looks up the line containing addr, updating LRU state, and
// reports whether it hit. On miss the line is installed (allocate on
// read and write alike).
func (l *Level) Access(addr int64) bool {
	line := addr / int64(l.lineSize)
	set := l.sets[line%int64(l.numSets)]
	for i, tag := range set {
		if tag == line {
			// Move to MRU position.
			copy(set[1:i+1], set[:i])
			set[0] = line
			l.hits++
			return true
		}
	}
	l.misses++
	if len(set) < l.assoc {
		set = append(set, 0)
	}
	copy(set[1:], set[:len(set)-1])
	set[0] = line
	l.sets[line%int64(l.numSets)] = set
	return false
}

// Contains reports whether the line holding addr is present, without
// updating LRU state or statistics.
func (l *Level) Contains(addr int64) bool {
	line := addr / int64(l.lineSize)
	for _, tag := range l.sets[line%int64(l.numSets)] {
		if tag == line {
			return true
		}
	}
	return false
}

// Install inserts the line containing addr without touching the hit/miss
// statistics; the hierarchy's prefetcher uses it.
func (l *Level) Install(addr int64) {
	line := addr / int64(l.lineSize)
	set := l.sets[line%int64(l.numSets)]
	for i, tag := range set {
		if tag == line {
			copy(set[1:i+1], set[:i])
			set[0] = line
			return
		}
	}
	if len(set) < l.assoc {
		set = append(set, 0)
	}
	copy(set[1:], set[:len(set)-1])
	set[0] = line
	l.sets[line%int64(l.numSets)] = set
}

// Reset clears contents and statistics.
func (l *Level) Reset() {
	for i := range l.sets {
		l.sets[i] = l.sets[i][:0]
	}
	l.hits, l.misses = 0, 0
}

// Config describes a full hierarchy. Sizes are bytes.
type Config struct {
	Name       string
	L1Size     int
	L1Assoc    int
	L2Size     int
	L2Assoc    int
	L3Size     int
	L3Assoc    int
	LineSize   int
	L1Latency  int // cycles
	L2Latency  int
	L3Latency  int
	MemLatency int // cycles on full miss
	// PrefetchDegree is how many successor lines (plus one predecessor
	// line) the hardware stream prefetcher installs on every access.
	// Modern Intel cores prefetch ascending and descending streams;
	// without this, the streaming kernels that dominate vRAN would
	// look memory bound, which contradicts the paper's measurements.
	PrefetchDegree int
}

// The two platforms of the paper's Table 1. Cache sizes are the totals
// reported there (the paper lists socket totals; the model treats them as
// the capacity visible to the measured core, which preserves the
// wimpy-vs-beefy contrast that drives Figure 7). Latencies are typical
// Skylake-generation figures.
var (
	// WimpyNode models the Core i7-8700 vRAN host.
	WimpyNode = Config{
		Name:   "wimpy",
		L1Size: 384 << 10, L1Assoc: 8,
		L2Size: 1536 << 10, L2Assoc: 4,
		L3Size: 12288 << 10, L3Assoc: 16,
		LineSize:  64,
		L1Latency: 4, L2Latency: 12, L3Latency: 38, MemLatency: 180,
		PrefetchDegree: 2,
	}
	// BeefyNode models the Xeon W2195 host.
	BeefyNode = Config{
		Name:   "beefy",
		L1Size: 1152 << 10, L1Assoc: 8,
		L2Size: 18432 << 10, L2Assoc: 16,
		L3Size: 25344 << 10, L3Assoc: 11,
		LineSize:  64,
		L1Latency: 4, L2Latency: 14, L3Latency: 44, MemLatency: 180,
		PrefetchDegree: 2,
	}
)

// Hierarchy glues three Levels together.
type Hierarchy struct {
	cfg Config
	L1  *Level
	L2  *Level
	L3  *Level
}

// NewHierarchy builds the three levels described by cfg.
func NewHierarchy(cfg Config) *Hierarchy {
	return &Hierarchy{
		cfg: cfg,
		L1:  NewLevel("L1", cfg.L1Size, cfg.L1Assoc, cfg.LineSize, cfg.L1Latency),
		L2:  NewLevel("L2", cfg.L2Size, cfg.L2Assoc, cfg.LineSize, cfg.L2Latency),
		L3:  NewLevel("L3", cfg.L3Size, cfg.L3Assoc, cfg.LineSize, cfg.L3Latency),
	}
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Load returns the latency in cycles to read the line containing addr,
// walking the hierarchy and installing the line at every level it missed
// (inclusive fill). The stream prefetcher then installs the neighboring
// lines so sequential sweeps in either direction hit.
func (h *Hierarchy) Load(addr int64) int {
	lat := h.cfg.MemLatency
	switch {
	case h.L1.Access(addr):
		lat = h.cfg.L1Latency
	case h.L2.Access(addr):
		lat = h.cfg.L2Latency
	case h.L3.Access(addr):
		lat = h.cfg.L3Latency
	}
	line := int64(h.cfg.LineSize)
	for d := 1; d <= h.cfg.PrefetchDegree; d++ {
		h.install(addr + int64(d)*line)
	}
	if h.cfg.PrefetchDegree > 0 {
		h.install(addr - line)
	}
	return lat
}

// install pushes a prefetched line into every level without counting it
// in the demand hit/miss statistics.
func (h *Hierarchy) install(addr int64) {
	if addr < 0 {
		return
	}
	h.L1.Install(addr)
	h.L2.Install(addr)
	h.L3.Install(addr)
}

// WouldMissL1 reports whether a load of addr would miss the L1, without
// performing the access (the core model uses it to gate dispatch on MSHR
// availability).
func (h *Hierarchy) WouldMissL1(addr int64) bool { return !h.L1.Contains(addr) }

// Store models a write access. With a write-back write-allocate policy
// the line must be owned locally, so the lookup walk matches Load; the
// returned latency is what a dependent operation would observe.
func (h *Hierarchy) Store(addr int64) int { return h.Load(addr) }

// Reset clears all levels.
func (h *Hierarchy) Reset() {
	h.L1.Reset()
	h.L2.Reset()
	h.L3.Reset()
}

// String summarizes the hierarchy's geometry.
func (h *Hierarchy) String() string {
	return fmt.Sprintf("%s: L1=%dKB L2=%dKB L3=%dKB line=%dB",
		h.cfg.Name, h.cfg.L1Size>>10, h.cfg.L2Size>>10, h.cfg.L3Size>>10, h.cfg.LineSize)
}
