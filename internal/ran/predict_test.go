package ran

import (
	"math/rand"
	"testing"
	"time"

	"vransim/internal/transport"
)

// TestPredictorConvergesOnBursty drives the estimator with a
// transport.BurstyProcess whose ON/OFF rates and dwells are known, and
// judges it against the process's own state ground truth:
//
//   - state agreement well above chance after warmup;
//   - every long ON dwell detected, within a bounded lag;
//   - the learned per-state rates separate toward the true means.
func TestPredictorConvergesOnBursty(t *testing.T) {
	const (
		burstMean = 8.0
		idleMean  = 1.0
		dwell     = 50.0
		ttis      = 4000
		warmup    = 200
		maxLag    = 10 // windows from true ON start to declared burst
	)
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		proc := transport.NewBurstyProcess(burstMean, idleMean, dwell, dwell, rng)
		p := NewPredictor(PredictConfig{})

		agree, scored := 0, 0
		var onStart int // window index the current true ON dwell began
		detected := true
		longDwells, missed := 0, 0
		prevOn := proc.On()
		for i := 0; i < ttis; i++ {
			n := proc.Next()
			on := proc.On()
			if on && !prevOn {
				onStart, detected = i, false
			}
			if !on && prevOn {
				// Dwell ended: a dwell long enough to be detectable (the
				// confirm streak plus EWMA ramp) must have been flagged.
				// Dwells starting before warmup don't count — the process
				// opens mid-burst, and with no prior baseline a cold-start
				// burst is undetectable by construction.
				if i-onStart >= maxLag && onStart >= warmup {
					longDwells++
					if !detected {
						missed++
					}
				}
			}
			prevOn = on
			p.Tick(n)
			if p.Burst() {
				detected = true
			}
			if i >= warmup {
				scored++
				if p.Burst() == on {
					agree++
				}
			}
		}
		frac := float64(agree) / float64(scored)
		s := p.snapshot(0)
		t.Logf("seed %d: agreement %.1f%%, transitions %d, rateOn %.2f rateOff %.2f (true %v/%v per window: on %.1f off %.1f)",
			seed, 100*frac, s.Transitions, s.RateOn*time.Millisecond.Seconds(), s.RateOff*time.Millisecond.Seconds(),
			p.cfg.Window, p.cfg.Window, burstMean, idleMean)
		if frac < 0.75 {
			t.Errorf("seed %d: state agreement %.1f%% below 75%%", seed, 100*frac)
		}
		if s.Transitions == 0 {
			t.Errorf("seed %d: predictor never transitioned on MMPP input", seed)
		}
		if longDwells == 0 {
			t.Fatalf("seed %d: trace produced no long ON dwells (bad test setup)", seed)
		}
		if missed > 0 {
			t.Errorf("seed %d: %d of %d long ON dwells never detected", seed, missed, longDwells)
		}
		// Learned per-state rates (blocks per window) must separate
		// toward the generating means.
		rateOn := s.RateOn * p.cfg.Window.Seconds()
		rateOff := s.RateOff * p.cfg.Window.Seconds()
		if rateOn < burstMean/3 {
			t.Errorf("seed %d: learned ON rate %.2f, want >= %.1f (true %.1f)", seed, rateOn, burstMean/3, burstMean)
		}
		if rateOff > 2.5*idleMean {
			t.Errorf("seed %d: learned OFF rate %.2f, want <= %.1f (true %.1f)", seed, rateOff, 2.5*idleMean, idleMean)
		}
		if rateOn < 2*rateOff {
			t.Errorf("seed %d: learned rates do not separate: on %.2f vs off %.2f", seed, rateOn, rateOff)
		}
	}
}

// TestPredictorStillOnPoisson feeds stationary Poisson streams across a
// range of means — including the noise-sensitive regime near MinRate —
// and requires zero state transitions: the hysteresis (confirm streak +
// noise-sigma guard) must keep the estimator still when there is no
// modulation to detect.
func TestPredictorStillOnPoisson(t *testing.T) {
	for _, mean := range []float64{0.5, 1, 2, 4, 8} {
		for _, seed := range []int64{1, 2, 3} {
			rng := rand.New(rand.NewSource(seed))
			proc := transport.NewPoissonProcess(mean, rng)
			p := NewPredictor(PredictConfig{})
			for i := 0; i < 5000; i++ {
				p.Tick(proc.Next())
			}
			s := p.snapshot(0)
			if s.Transitions != 0 {
				t.Errorf("mean %.1f seed %d: %d transitions on stationary Poisson, want 0", mean, seed, s.Transitions)
			}
			if s.Burst {
				t.Errorf("mean %.1f seed %d: burst declared on stationary Poisson", mean, seed)
			}
			// The fast estimate tracks the true mean (blocks per window).
			// At small means the EWMA of an integer stream is noisy, so
			// the tolerance has an absolute floor of one block.
			fast := s.Rate * p.cfg.Window.Seconds()
			tol := mean
			if tol < 1 {
				tol = 1
			}
			if fast < mean-tol || fast > mean+tol {
				t.Errorf("mean %.1f seed %d: rate estimate %.2f outside [%.2f, %.2f]", mean, seed, fast, mean-tol, mean+tol)
			}
		}
	}
}

// TestPredictorObserveWindows exercises the wall-clock entry: arrivals
// spread across real window boundaries close the right number of
// windows, and a long silence re-anchors instead of replaying
// unbounded history.
func TestPredictorObserveWindows(t *testing.T) {
	p := NewPredictor(PredictConfig{Window: time.Millisecond, MaxCatchUp: 8})
	base := time.Now()
	p.Observe(base, 3) // opens window [base, base+1ms)
	if w := p.snapshot(0).Windows; w != 0 {
		t.Fatalf("windows closed before any boundary: %d", w)
	}
	p.Observe(base.Add(time.Millisecond), 2) // closes one window (count 3)
	if w := p.snapshot(0).Windows; w != 1 {
		t.Fatalf("windows after one boundary = %d, want 1", w)
	}
	// A silence of 1000 windows is truncated at MaxCatchUp.
	p.Observe(base.Add(1001*time.Millisecond), 1)
	if w := p.snapshot(0).Windows; w > 1+8 {
		t.Errorf("windows after long silence = %d, want <= %d (MaxCatchUp)", w, 1+8)
	}
}

// TestPredictorDefaultsValidated: zero/nonsense configs resolve to the
// documented defaults, and the hysteresis invariant OffFactor <
// OnFactor always holds.
func TestPredictorDefaultsValidated(t *testing.T) {
	c := PredictConfig{}.withDefaults()
	if c.Window != time.Millisecond || c.FastAlpha != 0.3 || c.SlowAlpha != 0.03 {
		t.Errorf("default window/alphas wrong: %+v", c)
	}
	if c.OnFactor != 1.8 || c.OffFactor != 1.2 || c.Confirm != 2 || c.MinRate != 1 {
		t.Errorf("default thresholds wrong: %+v", c)
	}
	if c.NoiseSigmas != 4 {
		t.Errorf("default noise guard %v, want 4", c.NoiseSigmas)
	}
	c = PredictConfig{OnFactor: 1.1, OffFactor: 5}.withDefaults()
	if c.OffFactor >= c.OnFactor {
		t.Errorf("hysteresis inverted after defaulting: on %.2f off %.2f", c.OnFactor, c.OffFactor)
	}
}
