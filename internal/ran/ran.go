// Package ran is the concurrent multi-cell serving runtime: the layer
// that turns the repo's lane-parallel SIMD decoder into something that
// serves traffic instead of answering an analytic model's question
// (pipeline.TTIConfig).
//
// Transport blocks arrive per cell and are sharded across per-cell
// bounded ingress queues with deadline-aware admission: a block whose
// HARQ deadline is already infeasible is rejected at the door, and a
// full queue pushes back instead of buffering without bound. A single
// dispatcher drains the cells round-robin into a lane-fill batcher that
// aggregates same-K code blocks across UEs and cells — the point is to
// fill all width/128 lane groups of turbo.MultiSIMDDecoder, because an
// AVX512 register carrying one block wastes three quarters of the
// silicon the paper's APCM mechanism fought to feed. Batches go to a
// worker pool where every worker owns its own simd.Engine (engines are
// not goroutine-safe, and per-worker state is what makes the pool scale
// without locks). An atomic metrics layer counts everything: per-cell
// goodput, drops by cause, lane occupancy, latency percentiles, worker
// utilization.
package ran

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vransim/internal/chaos"
	"vransim/internal/core"
	"vransim/internal/phy"
	"vransim/internal/simd"
	"vransim/internal/telemetry"
	"vransim/internal/tune"
	"vransim/internal/turbo"
)

// Block is one code block travelling through the runtime.
type Block struct {
	// Cell and UE identify the source (Cell indexes Config.Cells).
	Cell, UE int
	// Process is the HARQ process id the block's soft buffer is keyed
	// by (wrapped modulo HARQConfig.Processes).
	Process int
	// K is the turbo information block size; blocks batch only with
	// equal K.
	K int
	// Word is the received soft information: the submitted word, a
	// chaos-corrupted copy of it, or — on a retry — the HARQ-combined
	// snapshot of every reception so far.
	Word *turbo.LLRWord
	// Attempt counts HARQ retransmissions: 0 for the first decode
	// attempt, up to HARQConfig.MaxRetries.
	Attempt int
	// Arrived and Deadline are stamped by Submit.
	Arrived  time.Time
	Deadline time.Time

	// tx is the originally submitted word — the reference a
	// retransmission is regenerated from (see Submitted).
	tx *turbo.LLRWord

	// dequeued and batched are span-tracing stamps: when the dispatcher
	// drained the block out of its cell queue, and when it entered the
	// lane-fill batcher. Zero when tracing never saw the block.
	dequeued time.Time
	batched  time.Time

	// Distributed-trace state (zero traceID = untraced). acc carries
	// the stage dwell accumulated before this runtime saw the block
	// (upstream fronthaul hops) plus any earlier HARQ attempts here;
	// origin is the trace start reconstructed on the LOCAL clock;
	// hopArrived is the local arrival of the CURRENT attempt — the
	// monotonic base all of this host's stage stamps measure from, so a
	// skewed origin wall clock can never make a stage negative.
	traceID     uint64
	traceParent uint64
	origin      time.Time
	acc         [telemetry.NumStages]time.Duration
	hopArrived  time.Time
}

// Admit is the outcome of Submit.
type Admit int

// Submit outcomes.
const (
	// Admitted: the block entered its cell's queue.
	Admitted Admit = iota
	// RejectedBacklog: the cell queue was full (backpressure).
	RejectedBacklog
	// RejectedDeadline: the deadline was infeasible at admission.
	RejectedDeadline
	// RejectedStopped: the runtime is shut down.
	RejectedStopped
	// RejectedSealed: the cell is sealed for migration — it no longer
	// (or does not yet) live on this runtime.
	RejectedSealed
)

// Config parameterizes a Runtime.
type Config struct {
	// Cells is the number of served cells (each gets its own queue).
	Cells int
	// QueueDepth bounds each cell's ingress queue.
	QueueDepth int
	// Workers sizes the decode pool; each worker owns an engine.
	Workers int
	// Width and Strategy configure the per-worker decoder build.
	Width    simd.Width
	Strategy core.Strategy
	// MaxIters is the turbo iteration budget.
	MaxIters int
	// BatchWindow is how long the batcher waits for lane co-travelers
	// before dispatching an under-filled batch.
	BatchWindow time.Duration
	// Deadline is the per-block HARQ processing budget; blocks older
	// than this are dropped, not decoded.
	Deadline time.Duration
	// AdmissionGuard enables the deadline feasibility check at Submit:
	// reject immediately when the remaining slack cannot cover the batch
	// window plus the measured decode cost, so hopeless blocks don't
	// occupy queue space. Off, they are still dropped later as expired.
	AdmissionGuard bool
	// MemBytes sizes each worker's emulated memory arena (default 32 MiB).
	MemBytes int
	// Schedule routes each worker's program compilations through the
	// port-aware scheduling pass (candidate mop orderings priced on the
	// uarch cost model; replay stays bit-identical).
	Schedule bool
	// TuneCache, when non-nil, warm-starts every worker's decoder from
	// a vrantune plan cache: tuned programs are installed up front and
	// the worker performs zero compiles and zero schedule searches for
	// the cached grid. A failed warm start is counted
	// (vran_decode_warm_failures_total) and the worker falls back to
	// in-process compilation.
	TuneCache *tune.Cache
	// OnDecoded, when non-nil, is called from worker goroutines with
	// every decoded block and its hard decisions (including blocks that
	// finished past deadline). It must be safe for concurrent use.
	OnDecoded func(b *Block, bits []byte)
	// Tracer, when non-nil, records one telemetry span per block that
	// reaches the decode pool (delivered, late or expired), attributing
	// queue wait, batch wait and decode time separately. Nil disables
	// tracing with zero hot-path cost.
	Tracer *telemetry.Tracer
	// CheckCRC, when non-nil, is the post-decode transport-block
	// acceptance check (the CRC attachment of a real stack): return
	// false to declare the decode failed and route the block into the
	// HARQ retransmission path. Called from worker goroutines; must be
	// safe for concurrent use. Nil means every in-deadline decode
	// passes (unless a chaos injector forces a failure).
	CheckCRC func(b *Block, bits []byte) bool
	// HARQ configures the retransmission/soft-combining path.
	HARQ HARQConfig
	// Chaos, when non-nil, arms fault injection at the runtime's fault
	// sites (submit corruption, queue pressure, worker stalls, forced
	// CRC failures, plan evictions, compile-verify failures). Nil
	// injects nothing at zero hot-path cost.
	Chaos *chaos.Injector
}

// DefaultConfig returns an LTE-shaped serving configuration.
func DefaultConfig(w simd.Width, s core.Strategy) Config {
	return Config{
		Cells:          3,
		QueueDepth:     64,
		Workers:        4,
		Width:          w,
		Strategy:       s,
		MaxIters:       4,
		BatchWindow:    500 * time.Microsecond,
		Deadline:       3 * time.Millisecond,
		AdmissionGuard: true,
		HARQ:           HARQConfig{MaxRetries: 3, Processes: 8},
	}
}

// Runtime is the serving runtime. Construct with New, feed with Submit,
// finish with Stop.
type Runtime struct {
	cfg    Config
	met    *Metrics
	queues []*cellQueue

	// harq holds the soft combining buffers (nil when the retry path is
	// disabled); retryq carries CRC-failed blocks back to the
	// dispatcher.
	harq   *phy.ProcessSet
	retryq *retryQueue

	notify   chan struct{}
	batches  chan batch
	stop     chan struct{}
	dispDone chan struct{}
	workerWG sync.WaitGroup
	// recDone closes after Stop's retry reconciliation, so racing Stop
	// callers never snapshot before the shutdown drops are counted.
	recDone chan struct{}

	// Cell-migration state: sealed cells reject new submissions,
	// migrating is the one cell currently draining (-1 otherwise), and
	// migq collects its diverted in-flight blocks (see migrate.go).
	sealed    []atomic.Bool
	migrating atomic.Int64
	migq      *retryQueue

	// spanSink, when set, receives every terminal-outcome span of a
	// traced block (shard-side span shipping). Stored as a
	// func(telemetry.Span) in an atomic.Value so SetSpanSink can race
	// the workers safely.
	spanSink atomic.Value

	stopped atomic.Bool
	// degrade is the current graceful-degradation level (0 = full
	// iteration budget), recomputed by the dispatcher from queue
	// pressure and read by every worker per batch.
	degrade atomic.Int32
	// estDecodeNs is an EWMA of per-block decode cost, feeding the
	// admission guard.
	estDecodeNs atomic.Int64
}

// New validates cfg and starts the dispatcher and worker goroutines.
func New(cfg Config) (*Runtime, error) {
	if cfg.Cells <= 0 || cfg.Workers <= 0 || cfg.QueueDepth <= 0 {
		return nil, fmt.Errorf("ran: config needs cells, workers and queue depth")
	}
	if cfg.Deadline <= 0 {
		return nil, fmt.Errorf("ran: config needs a positive deadline")
	}
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = 4
	}
	if cfg.MemBytes <= 0 {
		cfg.MemBytes = 32 << 20
	}
	if turbo.BlocksPerRegister(cfg.Width) < 1 {
		return nil, fmt.Errorf("ran: width %v too narrow for lane-parallel decode", cfg.Width)
	}
	if cfg.HARQ.MaxRetries > 0 {
		cfg.HARQ = cfg.HARQ.withDefaults(cfg.Cells, cfg.QueueDepth)
	}
	r := &Runtime{
		cfg:      cfg,
		met:      NewMetrics(cfg.Cells),
		queues:   make([]*cellQueue, cfg.Cells),
		retryq:   &retryQueue{},
		migq:     &retryQueue{},
		sealed:   make([]atomic.Bool, cfg.Cells),
		notify:   make(chan struct{}, 1),
		batches:  make(chan batch, 2*cfg.Workers),
		stop:     make(chan struct{}),
		dispDone: make(chan struct{}),
		recDone:  make(chan struct{}),
	}
	r.migrating.Store(-1)
	if cfg.HARQ.MaxRetries > 0 {
		r.harq = phy.NewProcessSet(cfg.HARQ.Processes, cfg.HARQ.BufferCap)
	}
	for i := range r.queues {
		r.queues[i] = newCellQueue(cfg.QueueDepth)
	}
	go r.dispatch()
	r.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go r.worker()
	}
	return r, nil
}

// Lanes returns the batch width (blocks per decode) of this build.
func (r *Runtime) Lanes() int { return turbo.BlocksPerRegister(r.cfg.Width) }

// Submit offers one block for cell/UE with soft input word on HARQ
// process 0. It stamps arrival and deadline, runs admission, and
// returns the outcome. Safe for concurrent use; callers must stop
// submitting before Stop.
func (r *Runtime) Submit(cell, ue, k int, word *turbo.LLRWord) Admit {
	return r.SubmitProcess(cell, ue, 0, k, word)
}

// SubmitProcess is Submit with an explicit HARQ process id: blocks on
// the same (cell, ue, proc) share one soft combining buffer across
// retransmissions, so callers multiplexing several in-flight transport
// blocks per UE must cycle the process id (as LTE's 8-process
// stop-and-wait does).
func (r *Runtime) SubmitProcess(cell, ue, proc, k int, word *turbo.LLRWord) Admit {
	return r.SubmitTraced(cell, ue, proc, k, word, telemetry.SpanContext{})
}

// SubmitTraced is SubmitProcess for a block that crossed the fronthaul
// with a live trace: tc carries the trace identity and the stage dwell
// already paid upstream, which the block's final span folds in so its
// stages sum to the true end-to-end latency. A zero tc is exactly
// SubmitProcess.
func (r *Runtime) SubmitTraced(cell, ue, proc, k int, word *turbo.LLRWord, tc telemetry.SpanContext) Admit {
	if r.stopped.Load() {
		return RejectedStopped
	}
	if cell < 0 || cell >= r.cfg.Cells {
		return RejectedStopped
	}
	if r.sealed[cell].Load() {
		return RejectedSealed
	}
	now := time.Now()
	// A chaos injector may hand back a corrupted private copy — the
	// noisy reception; the submitted word stays untouched as tx.
	b := &Block{
		Cell: cell, UE: ue, Process: proc, K: k,
		Word: r.cfg.Chaos.CorruptWord(word), tx: word,
		Arrived:    now,
		Deadline:   now.Add(r.cfg.Deadline),
		hopArrived: now,
	}
	if tc.Valid() {
		b.traceID, b.traceParent, b.acc = tc.TraceID, tc.Parent, tc.Upstream
		b.origin = tc.Start
	}
	if r.cfg.AdmissionGuard {
		// Feasibility: the block must survive the batch window plus one
		// decode. The estimate is the workers' own EWMA; before the
		// first measurement (est==0) everything is feasible.
		need := r.cfg.BatchWindow + time.Duration(r.estDecodeNs.Load())
		if r.cfg.Deadline < need {
			r.met.drop(cell, DropAdmission)
			return RejectedDeadline
		}
	}
	if r.cfg.Chaos.QueueOverflow() || !r.queues[cell].offer(b) {
		r.met.drop(cell, DropBacklog)
		return RejectedBacklog
	}
	r.met.accept(cell)
	r.kick()
	return Admitted
}

// kick nudges the dispatcher without blocking (the notify channel is a
// one-slot edge trigger).
func (r *Runtime) kick() {
	select {
	case r.notify <- struct{}{}:
	default:
	}
}

// Stop flushes pending work, waits for the workers to drain, and
// returns the final metrics snapshot. Blocks already admitted are still
// decoded (or dropped against their deadline); Submit calls racing Stop
// may be rejected.
func (r *Runtime) Stop() *Snapshot {
	if !r.stopped.CompareAndSwap(false, true) {
		<-r.recDone
		return r.Snapshot()
	}
	close(r.stop)
	<-r.dispDone
	r.workerWG.Wait()
	// Workers may have requeued HARQ retries after the dispatcher's
	// final sweep; nothing will decode them now. Count every one as a
	// shutdown drop so block accounting stays conserved — a requeued
	// block is never silently lost.
	now := time.Now()
	for _, b := range r.retryq.closeAndDrain() {
		r.met.drop(b.Cell, DropShutdown)
		r.recordSpan(b, now, 0, 0, "harq_shutdown")
		r.harqRelease(b)
	}
	// Likewise blocks parked for a migration that never completed: they
	// were diverted out of the decode path and nothing will move them
	// now. Shutdown drops keep the conservation ledger exact.
	for _, b := range r.migq.closeAndDrain() {
		r.met.drop(b.Cell, DropShutdown)
		r.recordSpan(b, now, 0, 0, "migrate_shutdown")
		r.harqRelease(b)
	}
	close(r.recDone)
	return r.Snapshot()
}

// Snapshot returns the current metrics view.
func (r *Runtime) Snapshot() *Snapshot {
	depths := make([]int, len(r.queues))
	for i, q := range r.queues {
		depths[i] = q.depth()
	}
	s := r.met.snapshot(depths, r.cfg.Workers)
	// Runtime-owned HARQ/degradation state rides on top of the counter
	// view (the metrics layer has no handle on the process set).
	s.RetryDepth = r.retryq.depth()
	s.DegradeLevel = int(r.degrade.Load())
	if r.harq != nil {
		s.HARQCombines, s.HARQEvictions = r.harq.Stats()
		s.HARQBuffers = r.harq.Len()
	}
	return s
}

// dispatch is the single goroutine that moves blocks from the cell
// queues into the lane-fill batcher and full/due batches to the worker
// channel. Single ownership of the batcher is what keeps the lane
// accounting lock-free.
func (r *Runtime) dispatch() {
	defer close(r.dispDone)
	lb := newLaneBatcher(r.Lanes(), r.cfg.BatchWindow)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	timerArmed := false
	for {
		// Arm the flush timer for the oldest pending group.
		if timerArmed {
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timerArmed = false
		}
		var timerC <-chan time.Time
		if due, ok := lb.nextDue(); ok {
			d := time.Until(due)
			if d < 0 {
				d = 0
			}
			timer.Reset(d)
			timerArmed = true
			timerC = timer.C
		}
		select {
		case <-r.stop:
			// Final sweep: queued blocks still get their chance.
			r.sweep(lb)
			for _, bt := range lb.flushDue(time.Now(), true) {
				r.batches <- bt
			}
			close(r.batches)
			return
		case <-r.notify:
		case <-timerC:
			timerArmed = false
		}
		r.sweep(lb)
		for _, bt := range lb.flushDue(time.Now(), false) {
			r.batches <- bt
		}
	}
}

// sweep drains the retry queue and every cell queue round-robin into
// the batcher, forwarding batches as they fill. It first recomputes
// the degradation level from the backlog it is about to drain —
// pressure the workers respond to one batch later.
func (r *Runtime) sweep(lb *laneBatcher) {
	r.updateDegrade()
	// A draining cell's blocks are diverted into the migration queue
	// instead of the batcher — they will decode on the target shard.
	mig := r.migrating.Load()
	route := func(b *Block) {
		if mig >= 0 && int64(b.Cell) == mig {
			if !r.migq.offer(b) {
				r.met.drop(b.Cell, DropShutdown)
				r.recordSpan(b, time.Now(), 0, 0, "migrate_shutdown")
				r.harqRelease(b)
			}
			return
		}
		if bt, full := lb.add(b, time.Now()); full {
			r.batches <- bt
		}
	}
	for _, b := range r.retryq.drain() {
		route(b)
	}
	for _, q := range r.queues {
		for _, b := range q.drain() {
			route(b)
		}
	}
}

// worker pulls batches, drops expired blocks, decodes the rest on its
// private engine, and records the outcome. The decoder's plan cache
// makes the steady state allocation-free, so the worker also keeps its
// own words slice across batches; every ~64th decode is wrapped in a
// heap-allocation sample feeding the vran_decode_allocs_per_op gauge.
func (r *Runtime) worker() {
	defer r.workerWG.Done()
	bd := turbo.NewBatchDecoder(r.cfg.Width, r.cfg.Strategy, r.cfg.MemBytes)
	bd.MaxIters = r.cfg.MaxIters
	bd.Schedule = r.cfg.Schedule
	if r.cfg.TuneCache != nil {
		if _, err := tune.WarmStart(bd, r.cfg.TuneCache); err != nil {
			r.met.warmStartFailed()
		}
	}
	if r.cfg.Chaos != nil {
		// Chaos compile-verify failures: a rejected program latches the
		// plan onto the interpreter, exactly like a real verify failure.
		bd.CompileGate = func(int) bool { return !r.cfg.Chaos.FailCompile() }
	}
	// The decoder's own timing hook is the decode-stage attribution
	// source: it measures exactly the lane-parallel decode (and reports
	// the iteration count), excluding the worker's bookkeeping around it.
	var decodeDur time.Duration
	var decodeIters int
	bd.OnDecode = func(k, blocks, iters int, d time.Duration) {
		decodeDur, decodeIters = d, iters
	}
	// Each successful program compilation becomes a compile-stage span:
	// it is the one-time cost a block size pays before its decodes go
	// through compiled replay, and it shows up in /spans like any other
	// stage outlier.
	if r.cfg.Tracer != nil {
		bd.OnCompile = func(k int, elapsed time.Duration) {
			sp := telemetry.Span{K: k, Start: time.Now().Add(-elapsed), Outcome: "compiled"}
			sp.Stages[telemetry.SpanCompile] = elapsed
			r.cfg.Tracer.Record(sp)
		}
	}
	// Program-cache counters are per-decoder; fold them into the
	// runtime metrics as per-batch deltas.
	var lastPS turbo.ProgramStats
	reportProgram := func() {
		ps := bd.ProgramStats()
		r.met.programDelta(
			ps.Hits-lastPS.Hits, ps.Misses-lastPS.Misses, ps.Compiles-lastPS.Compiles,
			int64(ps.CompileTime-lastPS.CompileTime), ps.CompiledPlans-lastPS.CompiledPlans)
		r.met.scheduleDelta(
			ps.SchedHits-lastPS.SchedHits, ps.ScheduledPlans-lastPS.ScheduledPlans,
			ps.WarmPlans-lastPS.WarmPlans, ps.SimIPCBefore, ps.SimIPCAfter)
		lastPS = ps
	}
	// Surface warm-installed plans immediately — a restarted fleet's
	// vran_decode_warm_plans gauge must be non-zero before traffic.
	reportProgram()
	lanes := bd.Lanes()
	words := make([]*turbo.LLRWord, 0, lanes)
	var sampler allocSampler
	var batchNo uint64
	for bt := range r.batches {
		now := time.Now()
		live := bt.blocks[:0]
		for _, b := range bt.blocks {
			if now.After(b.Deadline) {
				r.met.drop(b.Cell, DropExpired)
				r.recordSpan(b, now, 0, 0, "expired")
				r.harqRelease(b)
				continue
			}
			live = append(live, b)
		}
		if len(live) == 0 {
			continue
		}
		// Chaos worker faults: a latency-spike stall, and plan-cache
		// eviction storms (the decoder rebuilds evicted plans on the
		// next decode; results are unaffected, only cost).
		if d := r.cfg.Chaos.StallDuration(); d > 0 {
			time.Sleep(d)
		}
		if r.cfg.Chaos.EvictPlans() {
			bd.EvictAll()
		}
		// Graceful degradation: under backlog pressure the dispatcher
		// raises the level and every worker clamps its iteration budget
		// (never below one iteration) until the backlog clears.
		if lvl := int(r.degrade.Load()); lvl > 0 {
			over := r.cfg.MaxIters - lvl
			if over < 1 {
				over = 1
			}
			bd.ItersOverride = over
			r.met.degradedBatch()
		} else {
			bd.ItersOverride = 0
		}
		words = words[:0]
		for _, b := range live {
			words = append(words, b.Word)
		}
		// Skip batch 0: the gauge is about the steady state, and the
		// first decode of a K pays the one-time plan build.
		sampling := batchNo > 0 && batchNo%allocSampleEvery == 0
		batchNo++
		if sampling {
			sampler.begin()
		}
		t0 := time.Now()
		decodeDur, decodeIters = 0, 0
		bits, _, err := bd.Decode(bt.k, words)
		if sampling {
			r.met.allocSample(sampler.end())
		}
		busy := decodeDur
		if busy <= 0 {
			busy = time.Since(t0)
		}
		reportProgram()
		r.met.batchDone(len(live), lanes, busy)
		if err == nil {
			// Per-block convergence histogram and packed-path fill: the
			// decoder reports each block's own early-exit latch iteration.
			r.met.observeIters(bd.BlockIters())
			if bd.Packed {
				r.met.packedBatch(len(live), lanes)
			}
		}
		r.updateEstimate(busy, len(live))
		if err != nil {
			// A decode error (bad K reaching the pool) wastes the whole
			// batch; account it as expired-equivalent drops.
			for _, b := range live {
				r.met.drop(b.Cell, DropExpired)
				r.recordSpan(b, time.Now(), 0, 0, "expired")
				r.harqRelease(b)
			}
			continue
		}
		end := time.Now()
		for i, b := range live {
			if end.After(b.Deadline) {
				r.met.drop(b.Cell, DropLate)
				r.recordSpan(b, end, busy, decodeIters, "late")
				r.harqRelease(b)
			} else if !r.checkBlock(b, bits[i]) {
				// CRC failure: the HARQ path either re-enqueues a
				// soft-combined retransmission or terminates the block
				// with a drop. Failed decisions never reach OnDecoded.
				r.met.crcFail()
				r.retryOrDrop(b, end, busy, decodeIters)
				continue
			} else {
				if b.Attempt > 0 {
					r.met.harqRecover()
				}
				r.met.deliver(b.Cell, b.K, end.Sub(b.Arrived))
				r.recordSpan(b, end, busy, decodeIters, "delivered")
				r.harqRelease(b)
			}
			if r.cfg.OnDecoded != nil {
				r.cfg.OnDecoded(b, bits[i])
			}
		}
	}
}

// SetSpanSink installs fn as the receiver of every terminal span of a
// traced block (delivered, late, expired, or HARQ-terminated — not the
// intermediate harq_retry records, whose dwell the final span already
// folds in). The shard worker uses it to ship completed spans back to
// the coordinator's fleet collector. fn must be safe for concurrent
// use; nil-safe to never set.
func (r *Runtime) SetSpanSink(fn func(telemetry.Span)) {
	r.spanSink.Store(fn)
}

// recordSpan attributes a finished block's life to the tracing stages:
// queue wait (Submit → dispatcher drain), batch wait (batcher entry →
// decode start) and the decode itself, on top of whatever the block
// already accumulated upstream (fronthaul hops, earlier HARQ attempts).
// The whole batch decode cost is attributed to each of its blocks —
// they occupied lanes of the same register, so each one's wall-clock
// decode time really is the batch's.
//
// Every local stage measures from hopArrived — the current attempt's
// LOCAL arrival stamp — never from a propagated wall-clock time, so a
// skewed origin clock cannot make a cross-host stage negative.
func (r *Runtime) recordSpan(b *Block, end time.Time, decode time.Duration, iters int, outcome string) {
	tr := r.cfg.Tracer
	sink, _ := r.spanSink.Load().(func(telemetry.Span))
	shipping := sink != nil && b.traceID != 0 && outcome != "harq_retry"
	if tr == nil && !shipping {
		return
	}
	sp := telemetry.Span{
		Cell: b.Cell, UE: b.UE, K: b.K,
		TraceID: b.traceID, Parent: b.traceParent,
		Start: b.Arrived, Iters: iters, Outcome: outcome,
	}
	if b.traceID != 0 && !b.origin.IsZero() {
		sp.Start = b.origin
	}
	start := b.hopArrived
	if start.IsZero() {
		start = b.Arrived
	}
	dq := b.dequeued
	if dq.IsZero() {
		dq = end
	}
	bt := b.batched
	if bt.IsZero() {
		bt = dq
	}
	sp.Stages = b.acc
	sp.Stages[telemetry.SpanQueue] += clampDur(dq.Sub(start))
	sp.Stages[telemetry.SpanBatch] += clampDur(end.Sub(bt) - decode)
	sp.Stages[telemetry.SpanDecode] += decode
	tr.Record(sp)
	if shipping {
		sink(sp)
	}
}

func clampDur(d time.Duration) time.Duration {
	if d < 0 {
		return 0
	}
	return d
}

// updateEstimate folds a measured batch cost into the per-block EWMA
// the admission guard consults.
func (r *Runtime) updateEstimate(busy time.Duration, blocks int) {
	per := busy.Nanoseconds() / int64(blocks)
	old := r.estDecodeNs.Load()
	if old == 0 {
		r.estDecodeNs.Store(per)
		return
	}
	// 1/8 EWMA; a stale CAS just means another worker's sample won.
	r.estDecodeNs.CompareAndSwap(old, old+(per-old)/8)
}
