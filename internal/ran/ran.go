// Package ran is the concurrent multi-cell serving runtime: the layer
// that turns the repo's lane-parallel SIMD decoder into something that
// serves traffic instead of answering an analytic model's question
// (pipeline.TTIConfig).
//
// Transport blocks arrive per cell and are sharded across per-cell
// bounded ingress queues with deadline-aware admission: a block whose
// HARQ deadline is already infeasible is rejected at the door, and a
// full queue pushes back instead of buffering without bound. A single
// dispatcher drains the cells round-robin into a lane-fill batcher that
// aggregates same-K code blocks across UEs and cells — the point is to
// fill all width/128 lane groups of turbo.MultiSIMDDecoder, because an
// AVX512 register carrying one block wastes three quarters of the
// silicon the paper's APCM mechanism fought to feed. Batches go to a
// worker pool where every worker owns its own simd.Engine (engines are
// not goroutine-safe, and per-worker state is what makes the pool scale
// without locks). An atomic metrics layer counts everything: per-cell
// goodput, drops by cause, lane occupancy, latency percentiles, worker
// utilization.
package ran

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vransim/internal/chaos"
	"vransim/internal/core"
	"vransim/internal/phy"
	"vransim/internal/simd"
	"vransim/internal/telemetry"
	"vransim/internal/tune"
	"vransim/internal/turbo"
)

// Block is one code block travelling through the runtime.
type Block struct {
	// Cell and UE identify the source (Cell indexes Config.Cells).
	Cell, UE int
	// Process is the HARQ process id the block's soft buffer is keyed
	// by (wrapped modulo HARQConfig.Processes).
	Process int
	// K is the turbo information block size; blocks batch only with
	// equal K.
	K int
	// Class is the block's SLA traffic class, stamped at Submit from
	// the cell's configured class (sla.go). It decides dispatch
	// priority, shed eligibility and the degradation clamp exposure.
	Class Class
	// Word is the received soft information: the submitted word, a
	// chaos-corrupted copy of it, or — on a retry — the HARQ-combined
	// snapshot of every reception so far.
	Word *turbo.LLRWord
	// Attempt counts HARQ retransmissions: 0 for the first decode
	// attempt, up to HARQConfig.MaxRetries.
	Attempt int
	// Arrived and Deadline are stamped by Submit.
	Arrived  time.Time
	Deadline time.Time

	// tx is the originally submitted word — the reference a
	// retransmission is regenerated from (see Submitted).
	tx *turbo.LLRWord

	// dequeued and batched are span-tracing stamps: when the dispatcher
	// drained the block out of its cell queue, and when it entered the
	// lane-fill batcher. Zero when tracing never saw the block.
	dequeued time.Time
	batched  time.Time

	// Distributed-trace state (zero traceID = untraced). acc carries
	// the stage dwell accumulated before this runtime saw the block
	// (upstream fronthaul hops) plus any earlier HARQ attempts here;
	// origin is the trace start reconstructed on the LOCAL clock;
	// hopArrived is the local arrival of the CURRENT attempt — the
	// monotonic base all of this host's stage stamps measure from, so a
	// skewed origin wall clock can never make a stage negative.
	traceID     uint64
	traceParent uint64
	origin      time.Time
	acc         [telemetry.NumStages]time.Duration
	hopArrived  time.Time
}

// Admit is the outcome of Submit.
type Admit int

// Submit outcomes.
const (
	// Admitted: the block entered its cell's queue.
	Admitted Admit = iota
	// RejectedBacklog: the cell queue was full (backpressure).
	RejectedBacklog
	// RejectedDeadline: the deadline was infeasible at admission.
	RejectedDeadline
	// RejectedStopped: the runtime is shut down.
	RejectedStopped
	// RejectedSealed: the cell is sealed for migration — it no longer
	// (or does not yet) live on this runtime.
	RejectedSealed
	// RejectedShed: the class-aware overload controller shed this
	// (eMBB-class) arrival to protect the tighter class (sla.go).
	RejectedShed
)

// Config parameterizes a Runtime.
type Config struct {
	// Cells is the number of served cells (each gets its own queue).
	Cells int
	// QueueDepth bounds each cell's ingress queue.
	QueueDepth int
	// Workers sizes the decode pool; each worker owns an engine.
	Workers int
	// Width and Strategy configure the per-worker decoder build.
	Width    simd.Width
	Strategy core.Strategy
	// MaxIters is the turbo iteration budget.
	MaxIters int
	// BatchWindow is how long the batcher waits for lane co-travelers
	// before dispatching an under-filled batch.
	BatchWindow time.Duration
	// Deadline is the per-block HARQ processing budget; blocks older
	// than this are dropped, not decoded.
	Deadline time.Duration
	// AdmissionGuard enables the deadline feasibility check at Submit:
	// reject immediately when the remaining slack cannot cover the batch
	// window plus the measured decode cost, so hopeless blocks don't
	// occupy queue space. Off, they are still dropped later as expired.
	AdmissionGuard bool
	// MemBytes sizes each worker's emulated memory arena (default 32 MiB).
	MemBytes int
	// Schedule routes each worker's program compilations through the
	// port-aware scheduling pass (candidate mop orderings priced on the
	// uarch cost model; replay stays bit-identical).
	Schedule bool
	// TuneCache, when non-nil, warm-starts every worker's decoder from
	// a vrantune plan cache: tuned programs are installed up front and
	// the worker performs zero compiles and zero schedule searches for
	// the cached grid. A failed warm start is counted
	// (vran_decode_warm_failures_total) and the worker falls back to
	// in-process compilation.
	TuneCache *tune.Cache
	// OnDecoded, when non-nil, is called from worker goroutines with
	// every decoded block and its hard decisions (including blocks that
	// finished past deadline). It must be safe for concurrent use.
	OnDecoded func(b *Block, bits []byte)
	// Tracer, when non-nil, records one telemetry span per block that
	// reaches the decode pool (delivered, late or expired), attributing
	// queue wait, batch wait and decode time separately. Nil disables
	// tracing with zero hot-path cost.
	Tracer *telemetry.Tracer
	// CheckCRC, when non-nil, is the post-decode transport-block
	// acceptance check (the CRC attachment of a real stack): return
	// false to declare the decode failed and route the block into the
	// HARQ retransmission path. Called from worker goroutines; must be
	// safe for concurrent use. Nil means every in-deadline decode
	// passes (unless a chaos injector forces a failure).
	CheckCRC func(b *Block, bits []byte) bool
	// HARQ configures the retransmission/soft-combining path.
	HARQ HARQConfig
	// SLA configures per-cell traffic classes and the class-aware shed
	// ladder (sla.go). The zero value is class-blind: every cell is
	// eMBB and nothing sheds.
	SLA SLAConfig
	// Predict arms one MMPP burst predictor per cell (predict.go); the
	// shed ladder consults it to start shedding eMBB when a burst
	// begins instead of when the backlog crosses a threshold.
	Predict PredictConfig
	// Chaos, when non-nil, arms fault injection at the runtime's fault
	// sites (submit corruption, queue pressure, worker stalls, forced
	// CRC failures, plan evictions, compile-verify failures). Nil
	// injects nothing at zero hot-path cost.
	Chaos *chaos.Injector
}

// DefaultConfig returns an LTE-shaped serving configuration.
func DefaultConfig(w simd.Width, s core.Strategy) Config {
	return Config{
		Cells:          3,
		QueueDepth:     64,
		Workers:        4,
		Width:          w,
		Strategy:       s,
		MaxIters:       4,
		BatchWindow:    500 * time.Microsecond,
		Deadline:       3 * time.Millisecond,
		AdmissionGuard: true,
		HARQ:           HARQConfig{MaxRetries: 3, Processes: 8},
	}
}

// Runtime is the serving runtime. Construct with New, feed with Submit,
// finish with Stop.
type Runtime struct {
	cfg Config
	met *Metrics
	// queues holds one bounded ingress queue per (cell, class), indexed
	// by qi(cell, class) — the per-class split is what lets the
	// dispatcher drain every cell's URLLC backlog before any cell's
	// eMBB, and the shed ladder watch per-class pressure.
	queues []*cellQueue

	// harq holds the soft combining buffers (nil when the retry path is
	// disabled); retryq carries CRC-failed blocks back to the
	// dispatcher.
	harq   *phy.ProcessSet
	retryq *retryQueue

	notify chan struct{}
	// batchesHi carries URLLC batches, batchesLo everything else; a
	// worker always drains Hi first, so an idle worker steals another
	// cell's URLLC work before serving its own class's eMBB backlog.
	batchesHi chan batch
	batchesLo chan batch
	stop      chan struct{}
	dispDone  chan struct{}
	workerWG  sync.WaitGroup
	// recDone closes after Stop's retry reconciliation, so racing Stop
	// callers never snapshot before the shutdown drops are counted.
	recDone chan struct{}

	// Cell-migration state: sealed cells reject new submissions,
	// migrating is the one cell currently draining (-1 otherwise), and
	// migq collects its diverted in-flight blocks (see migrate.go).
	sealed    []atomic.Bool
	migrating atomic.Int64
	migq      *retryQueue

	// spanSink, when set, receives every terminal-outcome span of a
	// traced block (shard-side span shipping). Stored as a
	// func(telemetry.Span) in an atomic.Value so SetSpanSink can race
	// the workers safely.
	spanSink atomic.Value

	stopped atomic.Bool
	// degrade is the current graceful-degradation level (0 = full
	// iteration budget), recomputed by the dispatcher from queue
	// pressure and read by every worker per batch.
	degrade atomic.Int32
	// estDecodeNs is an EWMA of per-block decode cost, feeding the
	// admission guard.
	estDecodeNs atomic.Int64

	// SLA-class overload state (sla.go / predict.go): slaActive latches
	// whether any cell carries the URLLC class; shed is the current
	// shed-ladder level, raised by the dispatcher and read at every
	// Submit; shedCalm is the dispatcher-private de-escalation streak;
	// preds holds one burst predictor per cell when Predict is armed.
	// degradeU is the URLLC-only iteration-clamp level, computed from
	// the URLLC queues alone so an eMBB burst's backlog can never cost
	// URLLC decode iterations (harq.go updateDegrade).
	degradeU  atomic.Int32
	slaActive bool
	shed      atomic.Int32
	shedCalm  int
	preds     []*Predictor
	// reserved is how many workers serve only the URLLC batch channel
	// (resolveReserve over SLA.ReserveWorkers; 0 when class-blind).
	reserved int
}

// New validates cfg and starts the dispatcher and worker goroutines.
func New(cfg Config) (*Runtime, error) {
	if cfg.Cells <= 0 || cfg.Workers <= 0 || cfg.QueueDepth <= 0 {
		return nil, fmt.Errorf("ran: config needs cells, workers and queue depth")
	}
	if cfg.Deadline <= 0 {
		return nil, fmt.Errorf("ran: config needs a positive deadline")
	}
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = 4
	}
	if cfg.MemBytes <= 0 {
		cfg.MemBytes = 32 << 20
	}
	if turbo.BlocksPerRegister(cfg.Width) < 1 {
		return nil, fmt.Errorf("ran: width %v too narrow for lane-parallel decode", cfg.Width)
	}
	if cfg.HARQ.MaxRetries > 0 {
		cfg.HARQ = cfg.HARQ.withDefaults(cfg.Cells, cfg.QueueDepth)
	}
	cfg.SLA = cfg.SLA.withDefaults(cfg.BatchWindow)
	r := &Runtime{
		cfg:       cfg,
		met:       NewMetrics(cfg.Cells),
		queues:    make([]*cellQueue, cfg.Cells*int(NumClasses)),
		retryq:    &retryQueue{},
		migq:      &retryQueue{},
		sealed:    make([]atomic.Bool, cfg.Cells),
		notify:    make(chan struct{}, 1),
		batchesHi: make(chan batch, 2*cfg.Workers),
		batchesLo: make(chan batch, 2*cfg.Workers),
		stop:      make(chan struct{}),
		dispDone:  make(chan struct{}),
		recDone:   make(chan struct{}),
		slaActive: cfg.SLA.hasURLLC(),
	}
	r.migrating.Store(-1)
	if cfg.HARQ.MaxRetries > 0 {
		r.harq = phy.NewProcessSet(cfg.HARQ.Processes, cfg.HARQ.BufferCap)
	}
	for i := range r.queues {
		r.queues[i] = newCellQueue(cfg.QueueDepth)
	}
	if cfg.Predict.Enabled {
		r.preds = make([]*Predictor, cfg.Cells)
		for i := range r.preds {
			r.preds[i] = NewPredictor(cfg.Predict)
		}
	}
	go r.dispatch()
	r.reserved = resolveReserve(r.slaActive, cfg.SLA.ReserveWorkers, cfg.Workers)
	r.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go r.worker(i < r.reserved)
	}
	return r, nil
}

// Lanes returns the batch width (blocks per decode) of this build.
func (r *Runtime) Lanes() int { return turbo.BlocksPerRegister(r.cfg.Width) }

// Submit offers one block for cell/UE with soft input word on HARQ
// process 0. It stamps arrival and deadline, runs admission, and
// returns the outcome. Safe for concurrent use; callers must stop
// submitting before Stop.
func (r *Runtime) Submit(cell, ue, k int, word *turbo.LLRWord) Admit {
	return r.SubmitProcess(cell, ue, 0, k, word)
}

// SubmitProcess is Submit with an explicit HARQ process id: blocks on
// the same (cell, ue, proc) share one soft combining buffer across
// retransmissions, so callers multiplexing several in-flight transport
// blocks per UE must cycle the process id (as LTE's 8-process
// stop-and-wait does).
func (r *Runtime) SubmitProcess(cell, ue, proc, k int, word *turbo.LLRWord) Admit {
	return r.SubmitTraced(cell, ue, proc, k, word, telemetry.SpanContext{})
}

// SubmitTraced is SubmitProcess for a block that crossed the fronthaul
// with a live trace: tc carries the trace identity and the stage dwell
// already paid upstream, which the block's final span folds in so its
// stages sum to the true end-to-end latency. A zero tc is exactly
// SubmitProcess.
func (r *Runtime) SubmitTraced(cell, ue, proc, k int, word *turbo.LLRWord, tc telemetry.SpanContext) Admit {
	if r.stopped.Load() {
		return RejectedStopped
	}
	if cell < 0 || cell >= r.cfg.Cells {
		return RejectedStopped
	}
	if r.sealed[cell].Load() {
		return RejectedSealed
	}
	now := time.Now()
	class := r.cfg.SLA.ClassOf(cell)
	// The predictor observes every arrival — including ones about to be
	// shed or bounced — because it estimates the offered process, not
	// the admitted one.
	if r.preds != nil {
		r.preds[cell].Observe(now, 1)
	}
	if r.shouldShed(cell, class) {
		r.met.drop(cell, class, DropShed)
		return RejectedShed
	}
	deadline := r.classDeadline(class)
	// A chaos injector may hand back a corrupted private copy — the
	// noisy reception; the submitted word stays untouched as tx.
	b := &Block{
		Cell: cell, UE: ue, Process: proc, K: k, Class: class,
		Word: r.cfg.Chaos.CorruptWord(word), tx: word,
		Arrived:    now,
		Deadline:   now.Add(deadline),
		hopArrived: now,
	}
	if tc.Valid() {
		b.traceID, b.traceParent, b.acc = tc.TraceID, tc.Parent, tc.Upstream
		b.origin = tc.Start
	}
	if r.cfg.AdmissionGuard {
		// Feasibility: the block must survive the batch window plus one
		// decode. The estimate is the workers' own EWMA; before the
		// first measurement (est==0) everything is feasible.
		need := r.cfg.BatchWindow + time.Duration(r.estDecodeNs.Load())
		if deadline < need {
			r.met.drop(cell, class, DropAdmission)
			return RejectedDeadline
		}
	}
	if r.cfg.Chaos.QueueOverflow() || !r.queues[r.qi(cell, class)].offer(b) {
		r.met.drop(cell, class, DropBacklog)
		return RejectedBacklog
	}
	r.met.accept(cell, class)
	r.kick()
	return Admitted
}

// kick nudges the dispatcher without blocking (the notify channel is a
// one-slot edge trigger).
func (r *Runtime) kick() {
	select {
	case r.notify <- struct{}{}:
	default:
	}
}

// Stop flushes pending work, waits for the workers to drain, and
// returns the final metrics snapshot. Blocks already admitted are still
// decoded (or dropped against their deadline); Submit calls racing Stop
// may be rejected.
func (r *Runtime) Stop() *Snapshot {
	if !r.stopped.CompareAndSwap(false, true) {
		<-r.recDone
		return r.Snapshot()
	}
	close(r.stop)
	<-r.dispDone
	r.workerWG.Wait()
	// Workers may have requeued HARQ retries after the dispatcher's
	// final sweep; nothing will decode them now. Count every one as a
	// shutdown drop so block accounting stays conserved — a requeued
	// block is never silently lost.
	now := time.Now()
	for _, b := range r.retryq.closeAndDrain() {
		r.met.drop(b.Cell, b.Class, DropShutdown)
		r.recordSpan(b, now, 0, 0, "harq_shutdown")
		r.harqRelease(b)
	}
	// Likewise blocks parked for a migration that never completed: they
	// were diverted out of the decode path and nothing will move them
	// now. Shutdown drops keep the conservation ledger exact.
	for _, b := range r.migq.closeAndDrain() {
		r.met.drop(b.Cell, b.Class, DropShutdown)
		r.recordSpan(b, now, 0, 0, "migrate_shutdown")
		r.harqRelease(b)
	}
	close(r.recDone)
	return r.Snapshot()
}

// Snapshot returns the current metrics view.
func (r *Runtime) Snapshot() *Snapshot {
	depths := make([]int, r.cfg.Cells)
	var classDepths [NumClasses]int
	for cell := 0; cell < r.cfg.Cells; cell++ {
		for c := Class(0); c < NumClasses; c++ {
			d := r.queues[r.qi(cell, c)].depth()
			depths[cell] += d
			classDepths[c] += d
		}
	}
	s := r.met.snapshot(depths, classDepths, r.cfg.Workers)
	// Runtime-owned HARQ/degradation/SLA state rides on top of the
	// counter view (the metrics layer has no handle on the process set
	// or the predictors).
	s.RetryDepth = r.retryq.depth()
	s.DegradeLevel = int(r.degrade.Load())
	s.ShedLevel = int(r.shed.Load())
	s.ReservedWorkers = r.reserved
	if r.harq != nil {
		s.HARQCombines, s.HARQEvictions = r.harq.Stats()
		s.HARQBuffers = r.harq.Len()
	}
	if r.preds != nil {
		s.Predict = make([]PredictSnapshot, len(r.preds))
		for i, p := range r.preds {
			s.Predict[i] = p.snapshot(i)
		}
	}
	return s
}

// dispatch is the single goroutine that moves blocks from the cell
// queues into the per-class lane-fill batchers and full/due batches to
// the priority worker channels. Single ownership of the batchers is
// what keeps the lane accounting lock-free.
func (r *Runtime) dispatch() {
	defer close(r.dispDone)
	// One batcher per class: the URLLC batcher runs a tighter flush
	// window (a tight-deadline block should not wait long for lane
	// co-travelers), and keeping the classes apart is what lets the
	// workers drain URLLC batches first.
	var lbs [NumClasses]*laneBatcher
	lbs[ClassEMBB] = newLaneBatcher(r.Lanes(), r.cfg.BatchWindow)
	lbs[ClassURLLC] = newLaneBatcher(r.Lanes(), r.cfg.SLA.URLLCWindow)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	timerArmed := false
	nextDue := func() (time.Time, bool) {
		var due time.Time
		found := false
		for _, lb := range lbs {
			if d, ok := lb.nextDue(); ok && (!found || d.Before(due)) {
				due, found = d, true
			}
		}
		return due, found
	}
	flush := func(force bool) {
		now := time.Now()
		for c := NumClasses; c > 0; c-- {
			class := c - 1 // URLLC flushes first
			for _, bt := range lbs[class].flushDue(now, force) {
				bt.class = class
				r.forward(bt)
			}
		}
	}
	for {
		// Arm the flush timer for the oldest pending group.
		if timerArmed {
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timerArmed = false
		}
		var timerC <-chan time.Time
		if due, ok := nextDue(); ok {
			d := time.Until(due)
			if d < 0 {
				d = 0
			}
			timer.Reset(d)
			timerArmed = true
			timerC = timer.C
		}
		select {
		case <-r.stop:
			// Final sweep: queued blocks still get their chance.
			r.sweep(&lbs)
			flush(true)
			close(r.batchesHi)
			close(r.batchesLo)
			return
		case <-r.notify:
		case <-timerC:
			timerArmed = false
		}
		r.sweep(&lbs)
		flush(false)
	}
}

// forward hands one batch to the worker pool on its class's priority
// channel.
func (r *Runtime) forward(bt batch) {
	if bt.class == ClassURLLC {
		r.batchesHi <- bt
	} else {
		r.batchesLo <- bt
	}
}

// sweep drains the retry queue and every cell queue into the class
// batchers, forwarding batches as they fill — URLLC queues across ALL
// cells first, then eMBB, so one cell's burst can never starve another
// cell's tight-deadline traffic of dispatch order. It first recomputes
// the degradation and shed levels from the backlog it is about to
// drain — pressure the workers and the admission gate respond to one
// batch later.
func (r *Runtime) sweep(lbs *[NumClasses]*laneBatcher) {
	r.updateDegrade()
	r.updateShed()
	// A draining cell's blocks are diverted into the migration queue
	// instead of the batcher — they will decode on the target shard.
	mig := r.migrating.Load()
	route := func(b *Block) {
		if mig >= 0 && int64(b.Cell) == mig {
			if !r.migq.offer(b) {
				r.met.drop(b.Cell, b.Class, DropShutdown)
				r.recordSpan(b, time.Now(), 0, 0, "migrate_shutdown")
				r.harqRelease(b)
			}
			return
		}
		if bt, full := lbs[b.Class].add(b, time.Now()); full {
			bt.class = b.Class
			r.forward(bt)
		}
	}
	for _, b := range r.retryq.drain() {
		route(b)
	}
	for c := NumClasses; c > 0; c-- {
		class := c - 1
		for cell := 0; cell < r.cfg.Cells; cell++ {
			for _, b := range r.queues[r.qi(cell, class)].drain() {
				route(b)
			}
		}
	}
}

// worker pulls batches, drops expired blocks, decodes the rest on its
// private engine, and records the outcome. A reserved worker consumes
// only the URLLC priority channel, so the tight-deadline class always
// has decode capacity no eMBB batch can occupy — without it, stealing
// only helps at batch boundaries and a fleet of workers mid-way
// through full-lane eMBB batches blocks URLLC for a whole service
// time. The decoder's plan cache makes the steady state
// allocation-free, so the worker also keeps its own words slice across
// batches; every ~64th decode is wrapped in a heap-allocation sample
// feeding the vran_decode_allocs_per_op gauge.
func (r *Runtime) worker(reserved bool) {
	defer r.workerWG.Done()
	bd := turbo.NewBatchDecoder(r.cfg.Width, r.cfg.Strategy, r.cfg.MemBytes)
	bd.MaxIters = r.cfg.MaxIters
	bd.Schedule = r.cfg.Schedule
	if r.cfg.TuneCache != nil {
		if _, err := tune.WarmStart(bd, r.cfg.TuneCache); err != nil {
			r.met.warmStartFailed()
		}
	}
	if r.cfg.Chaos != nil {
		// Chaos compile-verify failures: a rejected program latches the
		// plan onto the interpreter, exactly like a real verify failure.
		bd.CompileGate = func(int) bool { return !r.cfg.Chaos.FailCompile() }
	}
	// The decoder's own timing hook is the decode-stage attribution
	// source: it measures exactly the lane-parallel decode (and reports
	// the iteration count), excluding the worker's bookkeeping around it.
	var decodeDur time.Duration
	var decodeIters int
	bd.OnDecode = func(k, blocks, iters int, d time.Duration) {
		decodeDur, decodeIters = d, iters
	}
	// Each successful program compilation becomes a compile-stage span:
	// it is the one-time cost a block size pays before its decodes go
	// through compiled replay, and it shows up in /spans like any other
	// stage outlier.
	if r.cfg.Tracer != nil {
		bd.OnCompile = func(k int, elapsed time.Duration) {
			sp := telemetry.Span{K: k, Start: time.Now().Add(-elapsed), Outcome: "compiled"}
			sp.Stages[telemetry.SpanCompile] = elapsed
			r.cfg.Tracer.Record(sp)
		}
	}
	// Program-cache counters are per-decoder; fold them into the
	// runtime metrics as per-batch deltas.
	var lastPS turbo.ProgramStats
	reportProgram := func() {
		ps := bd.ProgramStats()
		r.met.programDelta(
			ps.Hits-lastPS.Hits, ps.Misses-lastPS.Misses, ps.Compiles-lastPS.Compiles,
			int64(ps.CompileTime-lastPS.CompileTime), ps.CompiledPlans-lastPS.CompiledPlans)
		r.met.scheduleDelta(
			ps.SchedHits-lastPS.SchedHits, ps.ScheduledPlans-lastPS.ScheduledPlans,
			ps.WarmPlans-lastPS.WarmPlans, ps.SimIPCBefore, ps.SimIPCAfter)
		lastPS = ps
	}
	// Surface warm-installed plans immediately — a restarted fleet's
	// vran_decode_warm_plans gauge must be non-zero before traffic.
	reportProgram()
	lanes := bd.Lanes()
	words := make([]*turbo.LLRWord, 0, lanes)
	var sampler allocSampler
	var batchNo uint64
	hi, lo := r.batchesHi, r.batchesLo
	if reserved {
		// nextBatch treats a nil lo as already-drained: the worker
		// blocks on hi alone and exits when it closes.
		lo = nil
	}
	for {
		bt, ok := nextBatch(&hi, &lo, &r.met.steals)
		if !ok {
			return
		}
		now := time.Now()
		live := bt.blocks[:0]
		for _, b := range bt.blocks {
			if now.After(b.Deadline) {
				r.met.drop(b.Cell, b.Class, DropExpired)
				r.recordSpan(b, now, 0, 0, "expired")
				r.harqRelease(b)
				continue
			}
			live = append(live, b)
		}
		if len(live) == 0 {
			continue
		}
		// Chaos worker faults: a latency-spike stall, and plan-cache
		// eviction storms (the decoder rebuilds evicted plans on the
		// next decode; results are unaffected, only cost).
		if d := r.cfg.Chaos.StallDuration(); d > 0 {
			time.Sleep(d)
		}
		if r.cfg.Chaos.EvictPlans() {
			bd.EvictAll()
		}
		// Graceful degradation: under backlog pressure the dispatcher
		// raises the level and every worker clamps its iteration budget
		// (never below one iteration) until the backlog clears. With SLA
		// classes active, eMBB batches absorb the clamp first — URLLC
		// reads its class-private level (its own queues' backlog, so an
		// eMBB burst cannot cost it iterations) and even that clamps
		// only at the last level (sla.go).
		lvl := int(r.degrade.Load())
		if r.slaActive && bt.class == ClassURLLC {
			lvl = int(r.degradeU.Load())
		}
		if lvl > 0 && r.clampClass(bt.class, lvl) {
			over := r.cfg.MaxIters - lvl
			if over < 1 {
				over = 1
			}
			bd.ItersOverride = over
			r.met.degradedBatch()
		} else {
			bd.ItersOverride = 0
		}
		words = words[:0]
		for _, b := range live {
			words = append(words, b.Word)
		}
		// Skip batch 0: the gauge is about the steady state, and the
		// first decode of a K pays the one-time plan build.
		sampling := batchNo > 0 && batchNo%allocSampleEvery == 0
		batchNo++
		if sampling {
			sampler.begin()
		}
		t0 := time.Now()
		decodeDur, decodeIters = 0, 0
		bits, _, err := bd.Decode(bt.k, words)
		if sampling {
			r.met.allocSample(sampler.end())
		}
		busy := decodeDur
		if busy <= 0 {
			busy = time.Since(t0)
		}
		reportProgram()
		r.met.batchDone(len(live), lanes, busy)
		if err == nil {
			// Per-block convergence histogram and packed-path fill: the
			// decoder reports each block's own early-exit latch iteration.
			r.met.observeIters(bd.BlockIters())
			if bd.Packed {
				r.met.packedBatch(len(live), lanes)
			}
		}
		r.updateEstimate(busy, len(live))
		if err != nil {
			// A decode error (bad K reaching the pool) wastes the whole
			// batch; account it as expired-equivalent drops.
			for _, b := range live {
				r.met.drop(b.Cell, b.Class, DropExpired)
				r.recordSpan(b, time.Now(), 0, 0, "expired")
				r.harqRelease(b)
			}
			continue
		}
		end := time.Now()
		for i, b := range live {
			if end.After(b.Deadline) {
				r.met.drop(b.Cell, b.Class, DropLate)
				r.recordSpan(b, end, busy, decodeIters, "late")
				r.harqRelease(b)
			} else if !r.checkBlock(b, bits[i]) {
				// CRC failure: the HARQ path either re-enqueues a
				// soft-combined retransmission or terminates the block
				// with a drop. Failed decisions never reach OnDecoded.
				r.met.crcFail()
				r.retryOrDrop(b, end, busy, decodeIters)
				continue
			} else {
				if b.Attempt > 0 {
					r.met.harqRecover()
				}
				r.met.deliver(b.Cell, b.Class, b.K, end.Sub(b.Arrived))
				r.recordSpan(b, end, busy, decodeIters, "delivered")
				r.harqRelease(b)
			}
			if r.cfg.OnDecoded != nil {
				r.cfg.OnDecoded(b, bits[i])
			}
		}
	}
}

// nextBatch pulls the worker's next unit of work, URLLC batches
// strictly first: the non-blocking probe of the high-priority channel
// means a worker about to serve eMBB "steals" any cell's pending URLLC
// batch instead — cross-cell work stealing through the shared priority
// pool. Taking URLLC work while eMBB batches wait is counted as a
// steal. A closed channel is parked (set nil in the caller's slot) so
// the worker drains the survivor and exits when both are gone.
func nextBatch(hi, lo *chan batch, steals *atomic.Uint64) (batch, bool) {
	for {
		if *hi != nil {
			select {
			case bt, ok := <-*hi:
				if ok {
					if len(*lo) > 0 {
						steals.Add(1)
					}
					return bt, true
				}
				*hi = nil
			default:
			}
		}
		if *hi == nil && *lo == nil {
			return batch{}, false
		}
		if *hi == nil {
			bt, ok := <-*lo
			if !ok {
				*lo = nil
				continue
			}
			return bt, true
		}
		if *lo == nil {
			bt, ok := <-*hi
			if !ok {
				*hi = nil
				continue
			}
			return bt, true
		}
		select {
		case bt, ok := <-*hi:
			if !ok {
				*hi = nil
				continue
			}
			if len(*lo) > 0 {
				steals.Add(1)
			}
			return bt, true
		case bt, ok := <-*lo:
			if !ok {
				*lo = nil
				continue
			}
			return bt, true
		}
	}
}

// SetSpanSink installs fn as the receiver of every terminal span of a
// traced block (delivered, late, expired, or HARQ-terminated — not the
// intermediate harq_retry records, whose dwell the final span already
// folds in). The shard worker uses it to ship completed spans back to
// the coordinator's fleet collector. fn must be safe for concurrent
// use; nil-safe to never set.
func (r *Runtime) SetSpanSink(fn func(telemetry.Span)) {
	r.spanSink.Store(fn)
}

// recordSpan attributes a finished block's life to the tracing stages:
// queue wait (Submit → dispatcher drain), batch wait (batcher entry →
// decode start) and the decode itself, on top of whatever the block
// already accumulated upstream (fronthaul hops, earlier HARQ attempts).
// The whole batch decode cost is attributed to each of its blocks —
// they occupied lanes of the same register, so each one's wall-clock
// decode time really is the batch's.
//
// Every local stage measures from hopArrived — the current attempt's
// LOCAL arrival stamp — never from a propagated wall-clock time, so a
// skewed origin clock cannot make a cross-host stage negative.
func (r *Runtime) recordSpan(b *Block, end time.Time, decode time.Duration, iters int, outcome string) {
	tr := r.cfg.Tracer
	sink, _ := r.spanSink.Load().(func(telemetry.Span))
	shipping := sink != nil && b.traceID != 0 && outcome != "harq_retry"
	if tr == nil && !shipping {
		return
	}
	sp := telemetry.Span{
		Cell: b.Cell, UE: b.UE, K: b.K,
		TraceID: b.traceID, Parent: b.traceParent,
		Start: b.Arrived, Iters: iters, Outcome: outcome,
	}
	if b.traceID != 0 && !b.origin.IsZero() {
		sp.Start = b.origin
	}
	start := b.hopArrived
	if start.IsZero() {
		start = b.Arrived
	}
	dq := b.dequeued
	if dq.IsZero() {
		dq = end
	}
	bt := b.batched
	if bt.IsZero() {
		bt = dq
	}
	sp.Stages = b.acc
	sp.Stages[telemetry.SpanQueue] += clampDur(dq.Sub(start))
	sp.Stages[telemetry.SpanBatch] += clampDur(end.Sub(bt) - decode)
	sp.Stages[telemetry.SpanDecode] += decode
	tr.Record(sp)
	if shipping {
		sink(sp)
	}
}

func clampDur(d time.Duration) time.Duration {
	if d < 0 {
		return 0
	}
	return d
}

// updateEstimate folds a measured batch cost into the per-block EWMA
// the admission guard consults.
func (r *Runtime) updateEstimate(busy time.Duration, blocks int) {
	per := busy.Nanoseconds() / int64(blocks)
	old := r.estDecodeNs.Load()
	if old == 0 {
		r.estDecodeNs.Store(per)
		return
	}
	// 1/8 EWMA; a stale CAS just means another worker's sample won.
	r.estDecodeNs.CompareAndSwap(old, old+(per-old)/8)
}
