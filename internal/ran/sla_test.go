package ran

import (
	"testing"
	"time"

	"vransim/internal/core"
	"vransim/internal/simd"
)

// bareSLARuntime builds a Runtime with queues and metrics but no
// goroutines — the controller methods (updateDegrade, updateShed,
// shouldShed, clampClass) are pure functions of this state, so the
// table tests drive them directly instead of racing a live dispatcher.
func bareSLARuntime(cells, qdepth, maxIters int, sla SLAConfig, predict bool) *Runtime {
	cfg := DefaultConfig(simd.W512, core.StrategyAPCM)
	cfg.Cells = cells
	cfg.QueueDepth = qdepth
	cfg.MaxIters = maxIters
	cfg.SLA = sla.withDefaults(cfg.BatchWindow)
	r := &Runtime{
		cfg:       cfg,
		met:       NewMetrics(cells),
		queues:    make([]*cellQueue, cells*int(NumClasses)),
		retryq:    &retryQueue{},
		slaActive: cfg.SLA.hasURLLC(),
	}
	for i := range r.queues {
		r.queues[i] = newCellQueue(qdepth)
	}
	if predict {
		r.preds = make([]*Predictor, cells)
		for i := range r.preds {
			r.preds[i] = NewPredictor(cfg.Predict)
		}
	}
	return r
}

// fill sets a queue's depth to n blocks (dummy payloads; the controllers
// only read depth).
func fill(t *testing.T, q *cellQueue, n int) {
	t.Helper()
	for len(q.drain()) > 0 {
	}
	for i := 0; i < n; i++ {
		if !q.offer(&Block{}) {
			t.Fatalf("queue full at %d", i)
		}
	}
}

// TestDegradeLadderTransitions walks the reactive iteration-clamp
// ladder through its thresholds in both directions: worst backlog
// fraction 50/75/90% maps to levels 1/2/3, the level is clamped to
// MaxIters-1, and a drained queue restores level 0 (full budget, no
// ItersOverride clamp left behind).
func TestDegradeLadderTransitions(t *testing.T) {
	const qd = 100
	cases := []struct {
		name     string
		depth    int // worst queue depth out of qd
		maxIters int
		want     int
	}{
		{"idle", 0, 4, 0},
		{"under-half", 49, 4, 0},
		{"at-half", 50, 4, 1},
		{"under-three-quarters", 74, 4, 1},
		{"at-three-quarters", 75, 4, 2},
		{"under-ninety", 89, 4, 2},
		{"at-ninety", 90, 4, 3},
		{"full", 100, 4, 3},
		{"clamped-by-iters", 100, 3, 2},
		{"clamped-to-one", 100, 2, 1},
		{"single-iter-never-degrades", 100, 1, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := bareSLARuntime(2, qd, tc.maxIters, SLAConfig{}, false)
			fill(t, r.queues[r.qi(1, ClassEMBB)], tc.depth)
			r.updateDegrade()
			if got := int(r.degrade.Load()); got != tc.want {
				t.Errorf("depth %d/%d, MaxIters %d: level %d, want %d", tc.depth, qd, tc.maxIters, got, tc.want)
			}
			// Restore: draining the backlog returns the ladder to level 0
			// on the next sweep — no residual clamp.
			r.queues[r.qi(1, ClassEMBB)].drain()
			r.updateDegrade()
			if got := int(r.degrade.Load()); got != 0 {
				t.Errorf("level %d after drain, want 0", got)
			}
		})
	}
}

// TestDegradeWatchesEveryQueue: the ladder reacts to the worst queue
// across cells AND classes, and to the retry queue.
func TestDegradeWatchesEveryQueue(t *testing.T) {
	r := bareSLARuntime(3, 100, 4, SLAConfig{Classes: []Class{ClassURLLC, ClassEMBB, ClassEMBB}}, false)
	fill(t, r.queues[r.qi(0, ClassURLLC)], 80)
	r.updateDegrade()
	if got := int(r.degrade.Load()); got != 2 {
		t.Errorf("URLLC backlog: level %d, want 2", got)
	}
	r.queues[r.qi(0, ClassURLLC)].drain()
	for i := 0; i < 95; i++ {
		r.retryq.offer(&Block{})
	}
	r.updateDegrade()
	if got := int(r.degrade.Load()); got != 3 {
		t.Errorf("retry backlog: level %d, want 3", got)
	}
}

// TestShedLadderEscalation drives updateShed through its signal table:
// queue-pressure thresholds on each class and the predictor's burst
// state, asserting the level each combination lands on. Escalation is
// immediate (a single sweep).
func TestShedLadderEscalation(t *testing.T) {
	sla := SLAConfig{Classes: []Class{ClassURLLC, ClassEMBB}}
	const qd = 100
	cases := []struct {
		name       string
		embbDepth  int // eMBB queue depth on cell 1
		urllcDepth int // URLLC queue depth on cell 0
		burst      bool
		want       int
	}{
		{"calm", 0, 0, false, shedOff},
		{"embb-under-half", 49, 0, false, shedOff},
		{"embb-at-half", 50, 0, false, shedPressure},
		{"burst-predicted", 0, 0, true, shedPressure},
		{"embb-at-three-quarters", 75, 0, false, shedAll},
		{"urllc-at-half", 0, 50, false, shedAll},
		{"urllc-under-half", 0, 49, false, shedOff},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := bareSLARuntime(2, qd, 4, sla, tc.burst)
			fill(t, r.queues[r.qi(1, ClassEMBB)], tc.embbDepth)
			fill(t, r.queues[r.qi(0, ClassURLLC)], tc.urllcDepth)
			if tc.burst {
				// Force the predictor into a declared burst: a quiet
				// baseline, then a sustained jump.
				for i := 0; i < 50; i++ {
					r.preds[0].Tick(1)
				}
				for i := 0; i < 10; i++ {
					r.preds[0].Tick(20)
				}
				if !r.preds[0].Burst() {
					t.Fatal("predictor did not enter burst state")
				}
			}
			r.updateShed()
			if got := int(r.shed.Load()); got != tc.want {
				t.Errorf("level %d, want %d", got, tc.want)
			}
		})
	}
}

// TestShedLadderHysteresis: the ladder steps up immediately but waits
// DownHold consecutive calm sweeps per step down, and an escalation
// mid-descent resets the calm streak.
func TestShedLadderHysteresis(t *testing.T) {
	sla := SLAConfig{Classes: []Class{ClassURLLC, ClassEMBB}, DownHold: 4}
	r := bareSLARuntime(2, 100, 4, sla, false)
	embb := r.queues[r.qi(1, ClassEMBB)]

	fill(t, embb, 80) // >= 75% => shedAll, in one sweep
	r.updateShed()
	if got := int(r.shed.Load()); got != shedAll {
		t.Fatalf("escalation not immediate: level %d, want %d", got, shedAll)
	}

	embb.drain()
	for i := 1; i < 4; i++ {
		r.updateShed()
		if got := int(r.shed.Load()); got != shedAll {
			t.Fatalf("stepped down after only %d calm sweeps (DownHold 4): level %d", i, got)
		}
	}
	r.updateShed() // 4th calm sweep: one step down
	if got := int(r.shed.Load()); got != shedPressure {
		t.Fatalf("level %d after DownHold calm sweeps, want %d", got, shedPressure)
	}

	// Escalation mid-descent resets the calm streak.
	r.updateShed()
	r.updateShed() // 2 calm sweeps toward the next step
	fill(t, embb, 60)
	r.updateShed() // pressure again: back up... (already at pressure) streak reset
	embb.drain()
	for i := 1; i < 4; i++ {
		r.updateShed()
		if got := int(r.shed.Load()); got != shedPressure {
			t.Fatalf("calm streak not reset by re-escalation: level %d after %d sweeps", got, i)
		}
	}
	r.updateShed()
	if got := int(r.shed.Load()); got != shedOff {
		t.Fatalf("level %d after full descent, want %d", got, shedOff)
	}
}

// TestShouldShedPolicy: the admission gate's class policy — URLLC never
// sheds at any level; eMBB sheds everywhere at shedAll but only on
// pressured cells at shedPressure; a class-blind runtime never sheds.
func TestShouldShedPolicy(t *testing.T) {
	sla := SLAConfig{Classes: []Class{ClassURLLC, ClassEMBB, ClassEMBB}, ShedQueueFrac: 0.25}
	r := bareSLARuntime(3, 100, 4, sla, false)
	fill(t, r.queues[r.qi(1, ClassEMBB)], 30) // cell 1 pressured (>= 25%)

	r.shed.Store(shedOff)
	for cell := 0; cell < 3; cell++ {
		if r.shouldShed(cell, r.cfg.SLA.ClassOf(cell)) {
			t.Errorf("level 0 shed cell %d", cell)
		}
	}
	r.shed.Store(shedPressure)
	if r.shouldShed(0, ClassURLLC) {
		t.Error("URLLC shed at pressure level")
	}
	if !r.shouldShed(1, ClassEMBB) {
		t.Error("pressured eMBB cell not shed at pressure level")
	}
	if r.shouldShed(2, ClassEMBB) {
		t.Error("calm eMBB cell shed at pressure level")
	}
	r.shed.Store(shedAll)
	if r.shouldShed(0, ClassURLLC) {
		t.Error("URLLC shed at shedAll")
	}
	if !r.shouldShed(1, ClassEMBB) || !r.shouldShed(2, ClassEMBB) {
		t.Error("eMBB not shed at shedAll")
	}

	// Class-blind: no URLLC cells configured, the ladder never engages.
	blind := bareSLARuntime(2, 100, 4, SLAConfig{}, false)
	blind.shed.Store(shedAll) // even if the level were somehow raised
	if blind.shouldShed(0, ClassEMBB) {
		t.Error("class-blind runtime shed an arrival")
	}
	blind.updateShed() // and updateShed is a no-op without URLLC cells
	fill(t, blind.queues[blind.qi(0, ClassEMBB)], 90)
	blind.shed.Store(shedOff)
	blind.updateShed()
	if got := int(blind.shed.Load()); got != shedOff {
		t.Errorf("class-blind updateShed raised level to %d", got)
	}
}

// TestClampClassPolicy: the degradation ladder's iteration clamp is
// class-blind on a legacy runtime, but with SLA classes active eMBB
// absorbs the clamp first and URLLC stays at full budget until the
// last level.
func TestClampClassPolicy(t *testing.T) {
	slaAware := bareSLARuntime(2, 100, 4, SLAConfig{Classes: []Class{ClassURLLC, ClassEMBB}}, false)
	legacy := bareSLARuntime(2, 100, 4, SLAConfig{}, false)
	cases := []struct {
		class Class
		lvl   int
		aware bool // clamp applies on the class-aware runtime
	}{
		{ClassEMBB, 1, true},
		{ClassEMBB, 3, true},
		{ClassURLLC, 1, false},
		{ClassURLLC, 2, false},
		{ClassURLLC, 3, true},
	}
	for _, tc := range cases {
		if got := slaAware.clampClass(tc.class, tc.lvl); got != tc.aware {
			t.Errorf("class-aware clampClass(%v, %d) = %v, want %v", tc.class, tc.lvl, got, tc.aware)
		}
		if !legacy.clampClass(tc.class, tc.lvl) {
			t.Errorf("legacy clampClass(%v, %d) = false, want true (class-blind clamps all)", tc.class, tc.lvl)
		}
	}
}

// TestDegradeClassSignals: with SLA classes active, the iteration-clamp
// level a URLLC batch sees comes from the URLLC queues alone — a
// saturated eMBB queue raises the global (eMBB) level but leaves the
// URLLC level at 0, and vice versa the URLLC backlog raises both (the
// global level watches every queue).
func TestDegradeClassSignals(t *testing.T) {
	r := bareSLARuntime(2, 100, 4, SLAConfig{Classes: []Class{ClassURLLC, ClassEMBB}}, false)

	fill(t, r.queues[r.qi(1, ClassEMBB)], 95) // eMBB saturated
	r.updateDegrade()
	if got := int(r.degrade.Load()); got != 3 {
		t.Errorf("global level %d with saturated eMBB queue, want 3", got)
	}
	if got := int(r.degradeU.Load()); got != 0 {
		t.Errorf("URLLC level %d with only eMBB backed up, want 0", got)
	}

	r.queues[r.qi(1, ClassEMBB)].drain()
	fill(t, r.queues[r.qi(0, ClassURLLC)], 80) // URLLC at 80%
	r.updateDegrade()
	if got := int(r.degrade.Load()); got != 2 {
		t.Errorf("global level %d with URLLC at 80%%, want 2", got)
	}
	if got := int(r.degradeU.Load()); got != 2 {
		t.Errorf("URLLC level %d with its own queue at 80%%, want 2", got)
	}
}

// TestResolveReserve covers the URLLC worker-reservation defaulting:
// auto = Workers/4 (min 1) when URLLC cells exist, explicit values are
// clamped to leave at least one general worker, negative disables, and
// class-blind runtimes never reserve.
func TestResolveReserve(t *testing.T) {
	cases := []struct {
		active  bool
		want    int
		workers int
		out     int
	}{
		{false, 0, 4, 0}, // class-blind: no reservation regardless
		{false, 3, 4, 0}, // even explicit asks are ignored without URLLC
		{true, 0, 4, 1},  // auto: Workers/4
		{true, 0, 8, 2},  // auto scales with the pool
		{true, 0, 2, 1},  // auto floor: min 1
		{true, 0, 1, 0},  // a single worker can't be split
		{true, 2, 4, 2},  // explicit honored
		{true, 9, 4, 3},  // clamped: one general worker always remains
		{true, -1, 4, 0}, // negative disables
		{true, 4, 1, 0},  // clamp floor: never negative
	}
	for _, tc := range cases {
		if got := resolveReserve(tc.active, tc.want, tc.workers); got != tc.out {
			t.Errorf("resolveReserve(%v, %d, %d) = %d, want %d", tc.active, tc.want, tc.workers, got, tc.out)
		}
	}
}

// TestParseClassList covers the cycling expansion and error paths.
func TestParseClassList(t *testing.T) {
	got, err := ParseClassList("urllc,embb,embb", 7)
	if err != nil {
		t.Fatal(err)
	}
	want := []Class{ClassURLLC, ClassEMBB, ClassEMBB, ClassURLLC, ClassEMBB, ClassEMBB, ClassURLLC}
	if len(got) != len(want) {
		t.Fatalf("len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("cell %d = %v, want %v", i, got[i], want[i])
		}
	}
	if cs, err := ParseClassList("", 4); err != nil || cs != nil {
		t.Errorf("empty list: got %v, %v; want nil, nil", cs, err)
	}
	if _, err := ParseClassList("urllc,premium", 4); err == nil {
		t.Error("unknown class accepted")
	}
	if c, err := ParseClass(" URLLC "); err != nil || c != ClassURLLC {
		t.Errorf("case/space-insensitive parse failed: %v, %v", c, err)
	}
	if ClassURLLC.String() != "urllc" || ClassEMBB.String() != "embb" || Class(9).String() != "unknown" {
		t.Error("class names wrong")
	}
}

// TestClassDeadline: URLLC gets its own budget when configured, both
// classes share Config.Deadline otherwise.
func TestClassDeadline(t *testing.T) {
	r := bareSLARuntime(2, 64, 4, SLAConfig{Classes: []Class{ClassURLLC, ClassEMBB}, URLLCDeadline: time.Millisecond}, false)
	r.cfg.Deadline = 10 * time.Millisecond
	if d := r.classDeadline(ClassURLLC); d != time.Millisecond {
		t.Errorf("URLLC deadline %v, want 1ms", d)
	}
	if d := r.classDeadline(ClassEMBB); d != 10*time.Millisecond {
		t.Errorf("eMBB deadline %v, want 10ms", d)
	}
	r.cfg.SLA.URLLCDeadline = 0
	if d := r.classDeadline(ClassURLLC); d != 10*time.Millisecond {
		t.Errorf("unset URLLC deadline %v, want the shared 10ms", d)
	}
}
