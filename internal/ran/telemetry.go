package ran

import (
	"fmt"
	"strconv"
	"sync"

	"vransim/internal/telemetry"
	"vransim/internal/uarch"
)

// Families renders the snapshot in the vran_* metric naming scheme:
// per-cell counters (accepted/delivered/dropped-by-cause, queue depth,
// goodput) and runtime-wide gauges (lane occupancy, worker utilization,
// latency quantiles). The same families back both the Prometheus text
// and JSON expositions.
func (s *Snapshot) Families() []telemetry.Family {
	accepted := telemetry.Family{Name: "vran_accepted_total",
		Help: "Blocks admitted into the cell ingress queue.", Type: telemetry.Counter}
	delivered := telemetry.Family{Name: "vran_delivered_total",
		Help: "Blocks decoded and delivered within deadline.", Type: telemetry.Counter}
	dropped := telemetry.Family{Name: "vran_dropped_total",
		Help: "Blocks dropped, by cell and cause.", Type: telemetry.Counter}
	depth := telemetry.Family{Name: "vran_queue_depth",
		Help: "Current per-cell ingress queue backlog.", Type: telemetry.Gauge}
	cellMbps := telemetry.Family{Name: "vran_cell_goodput_mbps",
		Help: "Per-cell delivered information bits over elapsed time.", Type: telemetry.Gauge}
	for i := range s.Cells {
		c := &s.Cells[i]
		cell := telemetry.L("cell", strconv.Itoa(i))
		accepted.Samples = append(accepted.Samples, telemetry.Sample{
			Labels: []telemetry.Label{cell}, Value: float64(c.Accepted)})
		delivered.Samples = append(delivered.Samples, telemetry.Sample{
			Labels: []telemetry.Label{cell}, Value: float64(c.Delivered)})
		for d := DropCause(0); d < numDropCauses; d++ {
			dropped.Samples = append(dropped.Samples, telemetry.Sample{
				Labels: []telemetry.Label{cell, telemetry.L("cause", d.String())},
				Value:  float64(c.Drops[d])})
		}
		depth.Samples = append(depth.Samples, telemetry.Sample{
			Labels: []telemetry.Label{cell}, Value: float64(c.QueueDepth)})
		cellMbps.Samples = append(cellMbps.Samples, telemetry.Sample{
			Labels: []telemetry.Label{cell}, Value: c.Mbps})
	}
	iters := telemetry.Family{Name: "vran_decode_iters",
		Help: "Per-block decode iterations to converge (per-block early-exit latch; bucket 8+ absorbs the tail).",
		Type: telemetry.Counter}
	for i, n := range s.DecodeIters {
		lbl := strconv.Itoa(i + 1)
		if i == len(s.DecodeIters)-1 {
			lbl += "+"
		}
		iters.Samples = append(iters.Samples, telemetry.Sample{
			Labels: []telemetry.Label{telemetry.L("iters", lbl)}, Value: float64(n)})
	}
	lat := telemetry.Family{Name: "vran_latency_seconds",
		Help: "Delivered-block end-to-end latency quantiles.", Type: telemetry.Gauge}
	for _, q := range []struct {
		v float64
		s string
	}{{0.5, "0.5"}, {0.9, "0.9"}, {0.99, "0.99"}} {
		var d float64
		switch q.s {
		case "0.5":
			d = s.LatencyP50.Seconds()
		case "0.9":
			d = s.LatencyP90.Seconds()
		default:
			d = s.LatencyP99.Seconds()
		}
		lat.Samples = append(lat.Samples, telemetry.Sample{
			Labels: []telemetry.Label{telemetry.L("quantile", q.s)}, Value: d})
	}
	simIPC := telemetry.Family{Name: "vran_decode_sim_ipc",
		Help: "Cost-model steady-segment IPC of cached scheduled plans (stage=before: recorded order, stage=after: adopted order).",
		Type: telemetry.Gauge}
	for _, st := range []struct {
		label string
		v     float64
	}{{"before", s.SimIPCBefore}, {"after", s.SimIPCAfter}} {
		simIPC.Samples = append(simIPC.Samples, telemetry.Sample{
			Labels: []telemetry.Label{telemetry.L("stage", st.label)}, Value: st.v})
	}
	// SLA-class families: the per-class ledger mirrors the per-cell one,
	// plus class latency quantiles so a scraper can watch URLLC p99
	// directly without reconstructing it from cells.
	clsAccepted := telemetry.Family{Name: "vran_class_accepted_total",
		Help: "Blocks admitted, by SLA class.", Type: telemetry.Counter}
	clsDelivered := telemetry.Family{Name: "vran_class_delivered_total",
		Help: "Blocks delivered within deadline, by SLA class.", Type: telemetry.Counter}
	clsDropped := telemetry.Family{Name: "vran_class_dropped_total",
		Help: "Blocks dropped, by SLA class and cause.", Type: telemetry.Counter}
	clsDepth := telemetry.Family{Name: "vran_class_queue_depth",
		Help: "Current ingress backlog summed over cells, by SLA class.", Type: telemetry.Gauge}
	clsLat := telemetry.Family{Name: "vran_class_latency_seconds",
		Help: "Delivered-block latency quantiles, by SLA class.", Type: telemetry.Gauge}
	for c := Class(0); c < NumClasses; c++ {
		ks := &s.Classes[c]
		lbl := telemetry.L("class", c.String())
		clsAccepted.Samples = append(clsAccepted.Samples, telemetry.Sample{
			Labels: []telemetry.Label{lbl}, Value: float64(ks.Accepted)})
		clsDelivered.Samples = append(clsDelivered.Samples, telemetry.Sample{
			Labels: []telemetry.Label{lbl}, Value: float64(ks.Delivered)})
		for d := DropCause(0); d < numDropCauses; d++ {
			clsDropped.Samples = append(clsDropped.Samples, telemetry.Sample{
				Labels: []telemetry.Label{lbl, telemetry.L("cause", d.String())},
				Value:  float64(ks.Drops[d])})
		}
		clsDepth.Samples = append(clsDepth.Samples, telemetry.Sample{
			Labels: []telemetry.Label{lbl}, Value: float64(ks.QueueDepth)})
		for _, q := range []struct {
			s string
			d float64
		}{{"0.5", ks.LatencyP50.Seconds()}, {"0.9", ks.LatencyP90.Seconds()}, {"0.99", ks.LatencyP99.Seconds()}} {
			clsLat.Samples = append(clsLat.Samples, telemetry.Sample{
				Labels: []telemetry.Label{lbl, telemetry.L("quantile", q.s)}, Value: q.d})
		}
	}
	fams := []telemetry.Family{
		telemetry.F("vran_uptime_seconds", "Time since the metrics layer started.", telemetry.Gauge, s.Elapsed.Seconds()),
		accepted, delivered, dropped, depth, cellMbps,
		telemetry.F("vran_goodput_mbps", "Delivered information bits over elapsed time.", telemetry.Gauge, s.GoodputMbps),
		telemetry.F("vran_batches_total", "Decode batches dispatched to the worker pool.", telemetry.Counter, float64(s.Batches)),
		telemetry.F("vran_decoded_blocks_total", "Blocks decoded (delivered or late).", telemetry.Counter, float64(s.DecodedBlocks)),
		telemetry.F("vran_lane_occupancy", "Fraction of register lane groups carrying a real block.", telemetry.Gauge, s.LaneOccupancy),
		iters,
		telemetry.F("vran_decode_pack_fill", "Fraction of packed lane slots carrying a real block (cross-block SoA path; -1 before the first packed decode).", telemetry.Gauge, s.PackFill),
		telemetry.F("vran_worker_utilization", "Decode busy time over workers x elapsed.", telemetry.Gauge, s.WorkerUtilization),
		telemetry.F("vran_decode_cost_seconds", "Mean per-block decode cost.", telemetry.Gauge, s.AvgDecodeUs/1e6),
		telemetry.F("vran_decode_allocs_per_op", "Sampled heap objects allocated per batch decode (upper bound; -1 before first sample).", telemetry.Gauge, s.DecodeAllocsPerOp),
		telemetry.F("vran_decode_compiled_ratio", "Fraction of decodes served by compiled replay programs.", telemetry.Gauge, s.CompiledRatio),
		telemetry.F("vran_decode_program_hits_total", "Decodes served by a compiled replay program.", telemetry.Counter, float64(s.ProgramHits)),
		telemetry.F("vran_decode_program_misses_total", "Decodes served by the interpreter while compilation was enabled.", telemetry.Counter, float64(s.ProgramMisses)),
		telemetry.F("vran_decode_compiles_total", "Replay program compilations across workers.", telemetry.Counter, float64(s.ProgramCompiles)),
		telemetry.F("vran_decode_compile_seconds_total", "Cumulative wall-clock time spent compiling replay programs.", telemetry.Counter, s.CompileSeconds),
		telemetry.F("vran_decode_compiled_plans", "Cached decode plans currently holding a compiled program.", telemetry.Gauge, float64(s.CompiledPlans)),
		telemetry.F("vran_decode_scheduled_ratio", "Fraction of decodes served by a port-scheduled replay program.", telemetry.Gauge, s.ScheduledRatio),
		telemetry.F("vran_decode_sched_hits_total", "Decodes served by a port-scheduled replay program.", telemetry.Counter, float64(s.SchedHits)),
		telemetry.F("vran_decode_scheduled_plans", "Cached decode plans whose program the scheduling pass reordered.", telemetry.Gauge, float64(s.ScheduledPlans)),
		telemetry.F("vran_decode_warm_plans", "Plans installed from a vrantune cache instead of compiled in-process.", telemetry.Gauge, float64(s.WarmPlans)),
		telemetry.F("vran_decode_warm_failures_total", "Worker warm starts that failed (fell back to in-process compilation).", telemetry.Counter, float64(s.WarmFailures)),
		simIPC,
		telemetry.F("vran_crc_failures_total", "Decodes whose transport-block check failed (incl. chaos-forced).", telemetry.Counter, float64(s.CRCFailures)),
		telemetry.F("vran_harq_retries_total", "HARQ retransmissions requeued for another decode.", telemetry.Counter, float64(s.HARQRetries)),
		telemetry.F("vran_harq_recovered_total", "Blocks delivered by a soft-combined HARQ retry.", telemetry.Counter, float64(s.HARQRecovered)),
		telemetry.F("vran_harq_combines_total", "Receptions chase-combined into soft buffers.", telemetry.Counter, float64(s.HARQCombines)),
		telemetry.F("vran_harq_evictions_total", "Soft buffers evicted under capacity pressure.", telemetry.Counter, float64(s.HARQEvictions)),
		telemetry.F("vran_harq_buffers", "Live HARQ soft combining buffers.", telemetry.Gauge, float64(s.HARQBuffers)),
		telemetry.F("vran_harq_retry_depth", "Blocks waiting in the retry queue.", telemetry.Gauge, float64(s.RetryDepth)),
		telemetry.F("vran_degrade_level", "Current graceful-degradation iteration-clamp level (0 = full budget).", telemetry.Gauge, float64(s.DegradeLevel)),
		telemetry.F("vran_degraded_batches_total", "Batches decoded under a clamped iteration budget.", telemetry.Counter, float64(s.DegradedBatches)),
		lat,
		clsAccepted, clsDelivered, clsDropped, clsDepth, clsLat,
		telemetry.F("vran_class_steals_total", "URLLC batches a worker pulled while eMBB batches waited.", telemetry.Counter, float64(s.Steals)),
		telemetry.F("vran_class_shed_level", "Current class-aware shed ladder level (0 = admit all).", telemetry.Gauge, float64(s.ShedLevel)),
		telemetry.F("vran_class_reserved_workers", "Workers dedicated to URLLC batches (0 when class-blind).", telemetry.Gauge, float64(s.ReservedWorkers)),
	}
	if len(s.Predict) > 0 {
		state := telemetry.Family{Name: "vran_predict_state",
			Help: "Per-cell burst predictor state (1 = ON dwell declared).", Type: telemetry.Gauge}
		rate := telemetry.Family{Name: "vran_predict_rate",
			Help: "Per-cell predicted arrival rate, blocks/s (est=fast/on/off).", Type: telemetry.Gauge}
		trans := telemetry.Family{Name: "vran_predict_transitions_total",
			Help: "Per-cell predictor state flips.", Type: telemetry.Counter}
		var windows, burstCells float64
		for _, p := range s.Predict {
			cell := telemetry.L("cell", strconv.Itoa(p.Cell))
			v := 0.0
			if p.Burst {
				v, burstCells = 1, burstCells+1
			}
			state.Samples = append(state.Samples, telemetry.Sample{
				Labels: []telemetry.Label{cell}, Value: v})
			for _, e := range []struct {
				est string
				v   float64
			}{{"fast", p.Rate}, {"on", p.RateOn}, {"off", p.RateOff}} {
				rate.Samples = append(rate.Samples, telemetry.Sample{
					Labels: []telemetry.Label{cell, telemetry.L("est", e.est)}, Value: e.v})
			}
			trans.Samples = append(trans.Samples, telemetry.Sample{
				Labels: []telemetry.Label{cell}, Value: float64(p.Transitions)})
			windows += float64(p.Windows)
		}
		fams = append(fams, state, rate, trans,
			telemetry.F("vran_predict_windows_total", "Closed estimation windows across cell predictors.", telemetry.Counter, windows),
			telemetry.F("vran_predict_burst_cells", "Cells whose predictor currently declares a burst.", telemetry.Gauge, burstCells),
		)
	}
	return fams
}

// HealthPolicy sets the /healthz thresholds. Zero values take the
// defaults: unhealthy when more than 50 % of the interval's offered
// blocks were dropped, or when any cell queue is ≥ 90 % full.
type HealthPolicy struct {
	MaxDropRate  float64
	MaxQueueFrac float64
}

func (p HealthPolicy) withDefaults() HealthPolicy {
	if p.MaxDropRate <= 0 {
		p.MaxDropRate = 0.5
	}
	if p.MaxQueueFrac <= 0 {
		p.MaxQueueFrac = 0.9
	}
	return p
}

// Health returns a readiness check keyed on drop rate and queue
// saturation. Drop rate is computed over the interval since the
// previous call (the first call sees the whole run), so a recovered
// runtime goes healthy again without a counter reset.
func (r *Runtime) Health(pol HealthPolicy) func() telemetry.HealthStatus {
	pol = pol.withDefaults()
	var mu sync.Mutex
	var prevOffered, prevDropped uint64
	return func() telemetry.HealthStatus {
		s := r.Snapshot()
		offered := s.Accepted + s.Drops[DropBacklog] + s.Drops[DropAdmission]
		dropped := s.Dropped()

		mu.Lock()
		dOff := offered - prevOffered
		dDrop := dropped - prevDropped
		prevOffered, prevDropped = offered, dropped
		mu.Unlock()

		st := telemetry.HealthStatus{Healthy: true}
		if dOff > 0 {
			st.DropRate = float64(dDrop) / float64(dOff)
		}
		for _, c := range s.Cells {
			if f := float64(c.QueueDepth) / float64(r.cfg.QueueDepth); f > st.QueueFrac {
				st.QueueFrac = f
			}
		}
		if st.DropRate > pol.MaxDropRate {
			st.Healthy = false
			st.Reason = fmt.Sprintf("drop rate %.2f over threshold %.2f", st.DropRate, pol.MaxDropRate)
		} else if st.QueueFrac >= pol.MaxQueueFrac {
			st.Healthy = false
			st.Reason = fmt.Sprintf("queue %.0f%% full (threshold %.0f%%)", 100*st.QueueFrac, 100*pol.MaxQueueFrac)
		}
		return st
	}
}

// spansBody is the /spans JSON shape.
type spansBody struct {
	Recent  []telemetry.Span            `json:"recent"`
	Slowest map[string][]telemetry.Span `json:"slowest"`
}

// snapshotBody is the /snapshot JSON shape.
type snapshotBody struct {
	Snapshot     *Snapshot                `json:"snapshot"`
	DropsByCause map[string]uint64        `json:"drops_by_cause"`
	Stages       []telemetry.StageSummary `json:"stages,omitempty"`
}

// MountAdmin wires a runtime, an optional tracer and an optional uarch
// calibration result into an admin server on addr (not yet started).
// All endpoint bodies are built from live Snapshot/tracer state at
// request time. Extra family sources (e.g. a chaos injector's
// Families) are appended to every /metrics scrape.
func MountAdmin(rt *Runtime, tr *telemetry.Tracer, cal *uarch.Result, addr string, pol HealthPolicy, extra ...func() []telemetry.Family) *telemetry.AdminServer {
	return telemetry.NewAdmin(telemetry.AdminConfig{
		Addr: addr,
		Metrics: func() []telemetry.Family {
			fams := rt.Snapshot().Families()
			fams = append(fams, tr.Families()...)
			if cal != nil {
				fams = append(fams, telemetry.UarchFamilies(*cal, "calibration")...)
			}
			for _, fn := range extra {
				fams = append(fams, fn()...)
			}
			return fams
		},
		Snapshot: func() any {
			s := rt.Snapshot()
			return snapshotBody{Snapshot: s, DropsByCause: s.DropsByCause(), Stages: tr.Summaries()}
		},
		Spans: func() any {
			body := spansBody{Recent: tr.Recent(), Slowest: map[string][]telemetry.Span{}}
			for st := telemetry.Stage(0); st < telemetry.NumStages; st++ {
				body.Slowest[st.Name()] = tr.Slowest(st)
			}
			return body
		},
		Health: rt.Health(pol),
	})
}
