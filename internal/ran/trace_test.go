package ran

import (
	"sync"
	"testing"
	"time"

	"vransim/internal/simd"
	"vransim/internal/telemetry"
)

// spanTrap captures every span the runtime ships to its sink.
type spanTrap struct {
	mu    sync.Mutex
	spans []telemetry.Span
}

func (tr *spanTrap) sink(sp telemetry.Span) {
	tr.mu.Lock()
	tr.spans = append(tr.spans, sp)
	tr.mu.Unlock()
}

func (tr *spanTrap) all() []telemetry.Span {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]telemetry.Span(nil), tr.spans...)
}

// TestSubmitTracedShipsCompleteSpans: a propagated trace context folds
// the upstream hop dwells into the shipped span, the local stages come
// on top, and the stage sum equals the span's total — the invariant the
// fleet budget attribution is built on.
func TestSubmitTracedShipsCompleteSpans(t *testing.T) {
	const k, n = 40, 16
	cfg := testConfig(simd.W512)
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	trap := &spanTrap{}
	rt.SetSpanSink(trap.sink)
	pool := mustPool(t, k, n, 5)

	var up [telemetry.NumStages]time.Duration
	up[telemetry.SpanRoute] = 1500 * time.Nanosecond
	up[telemetry.SpanEncodeWire] = 2 * time.Microsecond
	up[telemetry.SpanLink] = 80 * time.Microsecond
	up[telemetry.SpanIngest] = 3 * time.Microsecond
	var upstream time.Duration
	for _, d := range up {
		upstream += d
	}
	for i := 0; i < n; i++ {
		w, _ := pool.Get(i)
		tc := telemetry.SpanContext{
			TraceID:  uint64(1000 + i),
			Parent:   7,
			Start:    time.Now().Add(-upstream),
			Upstream: up,
		}
		if rt.SubmitTraced(i%cfg.Cells, i, i, k, w, tc) != Admitted {
			t.Fatalf("submit %d rejected", i)
		}
	}
	waitSettle(t, rt, n)
	rt.Stop()

	spans := trap.all()
	if len(spans) != n {
		t.Fatalf("sink saw %d spans, want %d", len(spans), n)
	}
	seen := map[uint64]bool{}
	for _, sp := range spans {
		if sp.TraceID < 1000 || sp.TraceID >= 1000+n || sp.Parent != 7 {
			t.Fatalf("span identity %d/%d not propagated", sp.TraceID, sp.Parent)
		}
		if seen[sp.TraceID] {
			t.Fatalf("trace %d shipped twice", sp.TraceID)
		}
		seen[sp.TraceID] = true
		if sp.Outcome != "delivered" {
			t.Errorf("trace %d outcome %q", sp.TraceID, sp.Outcome)
		}
		for st := telemetry.Stage(0); st < telemetry.NumStages; st++ {
			if sp.Stages[st] < 0 {
				t.Errorf("trace %d stage %s negative: %v", sp.TraceID, st.Name(), sp.Stages[st])
			}
			if up[st] > 0 && sp.Stages[st] < up[st] {
				t.Errorf("trace %d stage %s = %v, upstream dwell %v lost", sp.TraceID, st.Name(), sp.Stages[st], up[st])
			}
		}
		if sp.Stages[telemetry.SpanDecode] <= 0 {
			t.Errorf("trace %d has no decode time", sp.TraceID)
		}
		// The acceptance invariant: the stage sum is the end-to-end
		// latency — everything upstream plus the local
		// queue+batch+decode, nothing double-counted, nothing lost.
		if total := sp.Total(); total < upstream+sp.Stages[telemetry.SpanDecode] {
			t.Errorf("trace %d total %v lost dwell (upstream %v + decode %v)",
				sp.TraceID, total, upstream, sp.Stages[telemetry.SpanDecode])
		} else if total > time.Minute {
			t.Errorf("trace %d total %v implausibly large", sp.TraceID, total)
		}
	}
}

// TestSubmitTracedSkewedOrigin: a trace context whose origin clock runs
// far ahead of ours (Start in the local future) must still produce
// non-negative local stages — the runtime measures queue/batch/decode
// from its own monotonic arrival instant, never from the propagated
// wall time.
func TestSubmitTracedSkewedOrigin(t *testing.T) {
	const k, n = 40, 8
	cfg := testConfig(simd.W512)
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	trap := &spanTrap{}
	rt.SetSpanSink(trap.sink)
	pool := mustPool(t, k, n, 6)
	for i := 0; i < n; i++ {
		w, _ := pool.Get(i)
		tc := telemetry.SpanContext{
			TraceID: uint64(1 + i),
			// An origin clock 10s ahead: without the monotonic rebase every
			// local stage would come out negative.
			Start: time.Now().Add(10 * time.Second),
		}
		if rt.SubmitTraced(i%cfg.Cells, i, i, k, w, tc) != Admitted {
			t.Fatalf("submit %d rejected", i)
		}
	}
	waitSettle(t, rt, n)
	rt.Stop()

	spans := trap.all()
	if len(spans) != n {
		t.Fatalf("sink saw %d spans, want %d", len(spans), n)
	}
	for _, sp := range spans {
		for st := telemetry.Stage(0); st < telemetry.NumStages; st++ {
			if sp.Stages[st] < 0 {
				t.Errorf("skewed trace %d stage %s negative: %v", sp.TraceID, st.Name(), sp.Stages[st])
			}
		}
		if sp.Stages[telemetry.SpanDecode] <= 0 {
			t.Errorf("skewed trace %d lost its decode time", sp.TraceID)
		}
		if sp.Total() < 0 {
			t.Errorf("skewed trace %d total negative: %v", sp.TraceID, sp.Total())
		}
	}
}

// TestSubmitTracedHARQRetryStage: when the first attempt fails CRC, the
// time that attempt consumed must surface as the harq-retry stage on
// the (single) terminal span — intermediate attempts never ship a span
// of their own.
func TestSubmitTracedHARQRetryStage(t *testing.T) {
	const k, n = 40, 16
	cfg := testConfig(simd.W512)
	cfg.CheckCRC = func(b *Block, bits []byte) bool { return b.Attempt > 0 }
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	trap := &spanTrap{}
	rt.SetSpanSink(trap.sink)
	pool := mustPool(t, k, n, 3)
	for i := 0; i < n; i++ {
		w, _ := pool.Get(i)
		tc := telemetry.SpanContext{TraceID: uint64(1 + i)}
		if rt.SubmitTraced(i%cfg.Cells, i, i, k, w, tc) != Admitted {
			t.Fatalf("submit %d rejected", i)
		}
	}
	waitSettle(t, rt, n)
	s := rt.Stop()
	if s.Delivered != n || s.HARQRecovered != n {
		t.Fatalf("delivered/recovered = %d/%d, want %d/%d", s.Delivered, s.HARQRecovered, n, n)
	}
	spans := trap.all()
	if len(spans) != n {
		t.Fatalf("sink saw %d spans for %d recovered blocks, want exactly one terminal span each", len(spans), n)
	}
	for _, sp := range spans {
		if sp.Outcome != "delivered" {
			t.Errorf("trace %d outcome %q, want delivered (intermediates must not ship)", sp.TraceID, sp.Outcome)
		}
		if sp.Stages[telemetry.SpanHARQRetry] <= 0 {
			t.Errorf("trace %d recovered via HARQ but has no harq-retry dwell", sp.TraceID)
		}
	}
}

// TestUntracedBlocksSkipSink: blocks without a trace context never
// reach the span sink even when one is installed.
func TestUntracedBlocksSkipSink(t *testing.T) {
	const k, n = 40, 8
	cfg := testConfig(simd.W512)
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	trap := &spanTrap{}
	rt.SetSpanSink(trap.sink)
	pool := mustPool(t, k, n, 9)
	for i := 0; i < n; i++ {
		w, _ := pool.Get(i)
		if rt.SubmitProcess(i%cfg.Cells, i, i, k, w) != Admitted {
			t.Fatalf("submit %d rejected", i)
		}
	}
	waitSettle(t, rt, n)
	rt.Stop()
	if got := trap.all(); len(got) != 0 {
		t.Errorf("untraced traffic shipped %d spans", len(got))
	}
}
