package ran

import (
	"testing"
	"time"

	"vransim/internal/simd"
)

// conserve asserts the block-accounting invariant every terminal path
// must preserve: accepted == delivered + every drop cause, with nothing
// left in a queue or soft buffer.
func conserve(t *testing.T, s *Snapshot, harqLen int) {
	t.Helper()
	// Backlog/admission drops reject blocks before acceptance; every
	// accepted block must end delivered or in a post-admission drop.
	post := s.Drops[DropExpired] + s.Drops[DropLate] + s.Drops[DropHARQ] + s.Drops[DropShutdown]
	if s.Accepted != s.Delivered+post {
		t.Errorf("accounting leak: accepted %d != delivered %d + post-admission drops %d (%v)",
			s.Accepted, s.Delivered, post, s.DropsByCause())
	}
	for i, c := range s.Cells {
		if c.QueueDepth != 0 {
			t.Errorf("cell %d queue depth %d after stop", i, c.QueueDepth)
		}
	}
	if s.RetryDepth != 0 {
		t.Errorf("retry queue depth %d after stop", s.RetryDepth)
	}
	if harqLen != 0 {
		t.Errorf("%d live HARQ buffers after stop", harqLen)
	}
}

// TestHARQRecoversFirstFailure: every block fails its first CRC check
// and passes on the retry — all blocks must be delivered via the
// combined retransmission, every delivery counted as a HARQ recovery.
func TestHARQRecoversFirstFailure(t *testing.T) {
	const k, n = 40, 64
	cfg := testConfig(simd.W512)
	cfg.CheckCRC = func(b *Block, bits []byte) bool { return b.Attempt > 0 }
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool := mustPool(t, k, 16, 3)
	for i := 0; i < n; i++ {
		w, _ := pool.Get(i)
		if rt.SubmitProcess(i%cfg.Cells, i, i, k, w) != Admitted {
			t.Fatalf("submit %d rejected", i)
		}
	}
	waitSettle(t, rt, n)
	s := rt.Stop()
	if s.Delivered != n {
		t.Errorf("delivered %d of %d (%v)", s.Delivered, n, s.DropsByCause())
	}
	if s.HARQRecovered != n {
		t.Errorf("HARQ recovered %d, want %d", s.HARQRecovered, n)
	}
	if s.HARQRetries != n || s.CRCFailures != n {
		t.Errorf("retries/crcFailures = %d/%d, want %d/%d", s.HARQRetries, s.CRCFailures, n, n)
	}
	if s.HARQCombines == 0 {
		t.Error("no combines recorded on the recovery path")
	}
	conserve(t, s, s.HARQBuffers)
}

// TestHARQExhaustsBudget: a CRC that never passes must terminate every
// block as a DropHARQ after exactly MaxRetries retransmissions — never
// deliver, never lose.
func TestHARQExhaustsBudget(t *testing.T) {
	const k, n = 40, 32
	cfg := testConfig(simd.W512)
	cfg.HARQ.MaxRetries = 2
	cfg.CheckCRC = func(*Block, []byte) bool { return false }
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool := mustPool(t, k, 16, 4)
	for i := 0; i < n; i++ {
		w, _ := pool.Get(i)
		if rt.SubmitProcess(i%cfg.Cells, i, i, k, w) != Admitted {
			t.Fatalf("submit %d rejected", i)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if s := rt.Snapshot(); s.Drops[DropHARQ] == n {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	s := rt.Stop()
	if s.Delivered != 0 {
		t.Errorf("delivered %d blocks that can never pass CRC", s.Delivered)
	}
	if s.Drops[DropHARQ] != n {
		t.Errorf("harq drops = %d, want %d (%v)", s.Drops[DropHARQ], n, s.DropsByCause())
	}
	// Each block: 1 first attempt + MaxRetries retries, all CRC-failed.
	want := uint64(n * (1 + cfg.HARQ.MaxRetries))
	if s.CRCFailures != want {
		t.Errorf("crc failures = %d, want %d", s.CRCFailures, want)
	}
	if s.HARQRetries != uint64(n*cfg.HARQ.MaxRetries) {
		t.Errorf("retries = %d, want %d", s.HARQRetries, n*cfg.HARQ.MaxRetries)
	}
	conserve(t, s, s.HARQBuffers)
}

// TestHARQDisabled: MaxRetries=0 turns CRC failures into immediate
// terminal drops — no retries, no soft buffers.
func TestHARQDisabled(t *testing.T) {
	const k, n = 40, 16
	cfg := testConfig(simd.W512)
	cfg.HARQ.MaxRetries = 0
	cfg.CheckCRC = func(*Block, []byte) bool { return false }
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool := mustPool(t, k, 8, 5)
	for i := 0; i < n; i++ {
		w, _ := pool.Get(i)
		rt.Submit(0, i, k, w)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if s := rt.Snapshot(); s.Drops[DropHARQ] == n {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	s := rt.Stop()
	if s.Drops[DropHARQ] != n || s.HARQRetries != 0 || s.HARQCombines != 0 {
		t.Errorf("disabled path: drops=%d retries=%d combines=%d, want %d/0/0",
			s.Drops[DropHARQ], s.HARQRetries, s.HARQCombines, n)
	}
	conserve(t, s, s.HARQBuffers)
}

// TestStopFlushesInflightRetries is the regression test for the
// Stop-vs-retry race: a burst of always-failing blocks is submitted and
// Stop is called immediately, so workers requeue retries while the
// runtime is tearing down. Every accepted block must end as a delivery
// or a counted drop — the seed behavior silently lost retries that were
// requeued after the dispatcher's final sweep.
func TestStopFlushesInflightRetries(t *testing.T) {
	const k = 40
	for round := 0; round < 5; round++ {
		cfg := testConfig(simd.W512)
		cfg.BatchWindow = 100 * time.Microsecond
		cfg.CheckCRC = func(*Block, []byte) bool { return false }
		rt, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pool := mustPool(t, k, 16, int64(round))
		const n = 128
		for i := 0; i < n; i++ {
			w, _ := pool.Get(i)
			rt.SubmitProcess(i%cfg.Cells, i, i, k, w)
		}
		// Stop while retries are in flight: whatever was still requeued
		// must surface as shutdown drops (possibly zero when the workers
		// happened to finish every retry first), never vanish.
		s := rt.Stop()
		conserve(t, s, s.HARQBuffers)
	}
}

// TestHARQKMismatchRejected: a process whose buffer holds K1 receiving a
// K2 retry is rejected as a DropHARQ without corrupting the buffer. The
// scenario is forced by submitting two block sizes onto the same
// process id with a CRC that always fails.
func TestHARQKMismatchRejected(t *testing.T) {
	cfg := testConfig(simd.W512)
	cfg.CheckCRC = func(*Block, []byte) bool { return false }
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p40 := mustPool(t, 40, 4, 6)
	p104 := mustPool(t, 104, 4, 7)
	// Same (cell, ue, proc): the first to fail claims the soft buffer;
	// the other K's failure must be rejected, not combined.
	w1, _ := p40.Get(0)
	w2, _ := p104.Get(0)
	rt.SubmitProcess(0, 0, 0, 40, w1)
	rt.SubmitProcess(0, 0, 0, 104, w2)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		s := rt.Snapshot()
		if s.Delivered+s.Drops[DropHARQ] >= 2 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	s := rt.Stop()
	if s.Drops[DropHARQ] != 2 {
		t.Errorf("harq drops = %d, want 2 (%v)", s.Drops[DropHARQ], s.DropsByCause())
	}
	conserve(t, s, s.HARQBuffers)
}

// TestDegradationClampsUnderBacklog: flooding the queues past the
// ladder's thresholds must clamp worker iteration budgets (visible as
// DegradedBatches) and release once drained.
func TestDegradationClampsUnderBacklog(t *testing.T) {
	const k = 512 // slow decodes keep the backlog alive
	cfg := testConfig(simd.W512)
	cfg.Workers = 1
	cfg.QueueDepth = 64
	cfg.BatchWindow = 100 * time.Microsecond
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool := mustPool(t, k, 8, 8)
	accepted := 0
	for i := 0; i < 4*cfg.QueueDepth; i++ {
		w, _ := pool.Get(i)
		if rt.SubmitProcess(i%cfg.Cells, i, i, k, w) == Admitted {
			accepted++
		}
	}
	waitSettle(t, rt, uint64(accepted))
	s := rt.Stop()
	if s.DegradedBatches == 0 {
		t.Errorf("no degraded batches across %d batches under %dx queue flood", s.Batches, 4)
	}
	if s.DegradeLevel != 0 {
		t.Errorf("degrade level %d after drain, want 0", s.DegradeLevel)
	}
	conserve(t, s, s.HARQBuffers)
}

// waitSettle polls until every accepted block reached a terminal state
// (delivered or dropped post-admission) and no retry is in flight.
func waitSettle(t *testing.T, rt *Runtime, _ uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		s := rt.Snapshot()
		term := s.Delivered + s.Drops[DropExpired] + s.Drops[DropLate] +
			s.Drops[DropHARQ] + s.Drops[DropShutdown]
		if term >= s.Accepted && s.RetryDepth == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Log("settle timeout; proceeding to Stop (conservation still checked)")
}
