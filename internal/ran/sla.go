package ran

import (
	"fmt"
	"strings"
	"time"
)

// This file is the SLA-class model and the class-aware overload
// controller: per-cell traffic classes (a URLLC-like tight-deadline
// class vs an eMBB-like throughput class), a shed ladder that drops the
// cheapest class first when the runtime is (or is about to be)
// overloaded, and the class-priority dispatch policy that lets an idle
// worker steal another cell's URLLC backlog before serving any cell's
// eMBB. The reactive degradation ladder (harq.go) stays; the shed
// ladder in front of it is what makes overload class-aware — and, with
// the predictor (predict.go) armed, anticipatory instead of reactive.

// Class is a cell's SLA traffic class.
type Class uint8

// Traffic classes, cheapest-to-shed first. ClassEMBB is the zero value
// so a class-blind configuration behaves exactly as before: every cell
// is throughput-class and no class machinery engages.
const (
	// ClassEMBB is the throughput class: loose deadline, sheddable
	// under overload (capacity spent here is the cheapest to reclaim).
	ClassEMBB Class = iota
	// ClassURLLC is the tight-deadline class: dispatched ahead of all
	// eMBB work, never shed at admission, and exempt from the iteration
	// clamp until the last degradation level.
	ClassURLLC
	// NumClasses sizes per-class arrays.
	NumClasses
)

// String names the class in metric labels and reports.
func (c Class) String() string {
	switch c {
	case ClassEMBB:
		return "embb"
	case ClassURLLC:
		return "urllc"
	}
	return "unknown"
}

// ParseClass resolves a class name ("embb" or "urllc").
func ParseClass(s string) (Class, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "embb", "":
		return ClassEMBB, nil
	case "urllc":
		return ClassURLLC, nil
	}
	return ClassEMBB, fmt.Errorf("ran: unknown traffic class %q (want urllc or embb)", s)
}

// ParseClassList expands a comma-separated class list ("urllc,embb")
// into a per-cell class slice: entry i classes cell i, and a list
// shorter than cells cycles (so "urllc,embb,embb" shapes any fleet 1/3
// URLLC). An empty list returns nil — the class-blind default.
func ParseClassList(csv string, cells int) ([]Class, error) {
	csv = strings.TrimSpace(csv)
	if csv == "" {
		return nil, nil
	}
	var entries []Class
	for _, tok := range strings.Split(csv, ",") {
		c, err := ParseClass(tok)
		if err != nil {
			return nil, err
		}
		entries = append(entries, c)
	}
	out := make([]Class, cells)
	for i := range out {
		out[i] = entries[i%len(entries)]
	}
	return out, nil
}

// SLAConfig shapes the class model on a Config. The zero value is
// class-blind: every cell is eMBB, nothing sheds, dispatch order is
// unchanged.
type SLAConfig struct {
	// Classes maps cell index to traffic class; nil (or a short slice)
	// defaults the remainder to ClassEMBB.
	Classes []Class
	// URLLCDeadline overrides Config.Deadline for URLLC-class blocks
	// (0: same deadline for both classes).
	URLLCDeadline time.Duration
	// URLLCWindow is the lane-fill batch window for URLLC blocks — a
	// tight-deadline class should not wait long for lane co-travelers.
	// 0 defaults to a quarter of Config.BatchWindow.
	URLLCWindow time.Duration
	// ShedQueueFrac is the per-cell eMBB backlog fraction at which shed
	// level 1 starts rejecting that cell's eMBB arrivals (default 0.25).
	ShedQueueFrac float64
	// DownHold is how many consecutive calm dispatcher sweeps the shed
	// ladder waits before stepping down one level — the hysteresis that
	// stops it flapping at a threshold (default 8).
	DownHold int
	// ReserveWorkers dedicates that many workers to URLLC batches only.
	// Work stealing keeps URLLC first in every worker's pull order, but
	// stealing happens at batch boundaries: once every worker is inside
	// a large eMBB batch, a URLLC batch waits a full service time. A
	// reserved worker can never be occupied by eMBB, which bounds URLLC
	// head-of-line blocking by its own class's service time. 0 resolves
	// to Workers/4 (min 1) when any cell is URLLC-class; negative
	// disables the reservation; values >= Workers are clamped so at
	// least one general worker always serves eMBB.
	ReserveWorkers int
}

func (s SLAConfig) withDefaults(window time.Duration) SLAConfig {
	if s.URLLCWindow <= 0 {
		s.URLLCWindow = window / 4
		if s.URLLCWindow <= 0 {
			s.URLLCWindow = window
		}
	}
	if s.ShedQueueFrac <= 0 {
		s.ShedQueueFrac = 0.25
	}
	if s.DownHold <= 0 {
		s.DownHold = 8
	}
	return s
}

// ClassOf returns the class of a cell (ClassEMBB beyond the configured
// slice).
func (s SLAConfig) ClassOf(cell int) Class {
	if cell < len(s.Classes) {
		return s.Classes[cell]
	}
	return ClassEMBB
}

// hasURLLC reports whether any cell carries the tight-deadline class —
// the condition for the shed ladder to engage (with a single class
// there is nothing cheaper to shed).
func (s SLAConfig) hasURLLC() bool {
	for _, c := range s.Classes {
		if c == ClassURLLC {
			return true
		}
	}
	return false
}

// resolveReserve turns the ReserveWorkers knob into the number of
// workers New actually dedicates to the URLLC channel. Class-blind
// runtimes never reserve (there is no URLLC work to wait for, so a
// hi-only worker would idle forever).
func resolveReserve(active bool, want, workers int) int {
	if !active || want < 0 {
		return 0
	}
	if want == 0 {
		want = workers / 4
		if want < 1 {
			want = 1
		}
	}
	if want >= workers {
		want = workers - 1
	}
	if want < 0 {
		want = 0
	}
	return want
}

// classDeadline is the per-class processing budget.
func (r *Runtime) classDeadline(c Class) time.Duration {
	if c == ClassURLLC && r.cfg.SLA.URLLCDeadline > 0 {
		return r.cfg.SLA.URLLCDeadline
	}
	return r.cfg.Deadline
}

// qi indexes the per-(cell, class) ingress queue.
func (r *Runtime) qi(cell int, c Class) int { return cell*int(NumClasses) + int(c) }

// Shed ladder levels. Level 0 admits everything; level 1 sheds eMBB
// arrivals whose own cell already has ShedQueueFrac of its eMBB queue
// backed up; level 2 sheds every eMBB arrival. URLLC is never shed at
// admission — its protection is the whole point of the ladder.
const (
	shedOff      = 0
	shedPressure = 1
	shedAll      = 2
)

// updateShed recomputes the shed level from the signals the controller
// watches: per-class worst backlog fractions, the burst predictor's
// state, and predicted demand against the measured decode capacity.
// Escalation is immediate; de-escalation needs DownHold consecutive
// calm sweeps (hysteresis). Called by the dispatcher each sweep, after
// updateDegrade.
func (r *Runtime) updateShed() {
	if !r.slaActive {
		return
	}
	var worstE, worstU float64
	for cell := 0; cell < r.cfg.Cells; cell++ {
		fE := float64(r.queues[r.qi(cell, ClassEMBB)].depth()) / float64(r.cfg.QueueDepth)
		fU := float64(r.queues[r.qi(cell, ClassURLLC)].depth()) / float64(r.cfg.QueueDepth)
		if fE > worstE {
			worstE = fE
		}
		if fU > worstU {
			worstU = fU
		}
	}
	burst := false
	demand := 0.0 // predicted fleet arrival rate, blocks/s
	for _, p := range r.preds {
		if p.Burst() {
			burst = true
		}
		demand += p.Rate()
	}
	// Measured service capacity, blocks/s (0 until the first decode).
	capacity := 0.0
	if est := r.estDecodeNs.Load(); est > 0 {
		capacity = float64(r.cfg.Workers) * 1e9 / float64(est)
	}
	want := shedOff
	if burst || worstE >= 0.5 {
		want = shedPressure
	}
	if worstU >= 0.5 || worstE >= 0.75 || (burst && capacity > 0 && demand > capacity) {
		want = shedAll
	}
	cur := int(r.shed.Load())
	switch {
	case want > cur:
		r.shed.Store(int32(want))
		r.shedCalm = 0
	case want < cur:
		r.shedCalm++
		if r.shedCalm >= r.cfg.SLA.DownHold {
			r.shed.Store(int32(cur - 1))
			r.shedCalm = 0
		}
	default:
		r.shedCalm = 0
	}
}

// shouldShed is the admission-time class gate: true when this arrival
// should be rejected to protect the tighter class. URLLC is never shed.
func (r *Runtime) shouldShed(cell int, c Class) bool {
	if !r.slaActive || c != ClassEMBB {
		return false
	}
	switch int(r.shed.Load()) {
	case shedAll:
		return true
	case shedPressure:
		f := float64(r.queues[r.qi(cell, ClassEMBB)].depth()) / float64(r.cfg.QueueDepth)
		return f >= r.cfg.SLA.ShedQueueFrac
	}
	return false
}

// clampClass reports whether the degradation ladder's iteration clamp
// applies to a batch of class c at level lvl: class-blind runtimes
// clamp everything (the legacy behavior); class-aware runtimes clamp
// eMBB first and exempt URLLC until the last level, so degradation is
// absorbed by the class that can afford it.
func (r *Runtime) clampClass(c Class, lvl int) bool {
	if !r.slaActive {
		return true
	}
	if c == ClassURLLC {
		return lvl >= 3
	}
	return true
}
