package ran

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vransim/internal/simd"
	"vransim/internal/telemetry"
)

// TestTracerSpansThroughRuntime drives traced traffic end to end and
// checks the span accounting: one span per block reaching the pool,
// stage dwell times populated, and outcomes matching the metrics.
func TestTracerSpansThroughRuntime(t *testing.T) {
	cfg := testConfig(simd.W512)
	tr := telemetry.NewTracer(64, 4)
	cfg.Tracer = tr
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool := mustPool(t, 40, 24, 7)
	for i := 0; i < pool.Len(); i++ {
		w, _ := pool.Get(i)
		if a := rt.Submit(i%cfg.Cells, i, pool.K, w); a != Admitted {
			t.Fatalf("block %d not admitted: %v", i, a)
		}
	}
	s := rt.Stop()
	if s.Delivered != uint64(pool.Len()) {
		t.Fatalf("delivered %d of %d", s.Delivered, pool.Len())
	}
	// One span per block, plus one compile span per program the decoder
	// compiled (one worker decoded everything here at a single K, but a
	// second worker may have won a batch too — so 1..Workers of them).
	compiled := tr.SpanCount() - uint64(pool.Len())
	if compiled < 1 || compiled > uint64(cfg.Workers) {
		t.Errorf("tracer saw %d spans for %d blocks: want 1..%d compile spans on top",
			tr.SpanCount(), pool.Len(), cfg.Workers)
	}
	for _, sp := range tr.Recent() {
		if sp.Outcome == "compiled" {
			if sp.Stages[telemetry.SpanCompile] <= 0 {
				t.Error("compile span has no compile time")
			}
			if sp.K != pool.K {
				t.Errorf("compile span K=%d, want %d", sp.K, pool.K)
			}
			continue
		}
		if sp.Outcome != "delivered" {
			t.Errorf("span outcome %q under infinite deadline", sp.Outcome)
		}
		if sp.Stages[telemetry.SpanDecode] <= 0 {
			t.Error("span has no decode time")
		}
		if sp.Iters <= 0 {
			t.Error("span has no iteration count")
		}
		if sp.K != pool.K {
			t.Errorf("span K=%d, want %d", sp.K, pool.K)
		}
	}
	sums := tr.Summaries()
	if sums[telemetry.SpanDecode].Count != uint64(pool.Len()) {
		t.Errorf("decode stage count %d, want %d", sums[telemetry.SpanDecode].Count, pool.Len())
	}
	// Queue and batch waits exist (blocks waited at least for the
	// dispatcher and the batch window machinery).
	if sums[telemetry.SpanQueue].Count == 0 {
		t.Error("no queue-wait observations")
	}
}

// TestAdminLiveExposition mounts the full admin stack over a live
// runtime and asserts the acceptance-level content of /metrics:
// per-cell accepted/dropped counters, per-stage latency quantiles, and
// a uarch-derived gauge from the calibration decode.
func TestAdminLiveExposition(t *testing.T) {
	cfg := testConfig(simd.W256)
	tr := telemetry.NewTracer(128, 4)
	cfg.Tracer = tr
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	pool := mustPool(t, 40, 16, 8)
	for i := 0; i < 32; i++ {
		w, _ := pool.Get(i)
		rt.Submit(i%cfg.Cells, i, pool.K, w)
	}
	cal, err := CalibrateUarch(cfg, 40)
	if err != nil {
		t.Fatal(err)
	}
	if cal.IPC() <= 0 {
		t.Fatalf("calibration produced no IPC: %+v", cal)
	}
	admin := MountAdmin(rt, tr, &cal, "127.0.0.1:0", HealthPolicy{})
	srv := httptest.NewServer(admin.Handler())
	defer srv.Close()

	// Wait for the runtime to drain so the scrape sees deliveries.
	deadline := time.Now().Add(5 * time.Second)
	for rt.Snapshot().Delivered < 32 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	body := httpGet(t, srv.URL+"/metrics")
	for _, want := range []string{
		`vran_accepted_total{cell="0"}`,
		`vran_dropped_total{cell="1",cause="backlog"}`,
		`vran_stage_latency_seconds{stage="queue",quantile="0.99"}`,
		`vran_stage_latency_seconds{stage="decode",quantile="0.5"}`,
		`vran_uarch_ipc{source="calibration"}`,
		`vran_uarch_port_utilization{source="calibration",port="0"}`,
		"# TYPE vran_latency_seconds gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	var snap struct {
		Snapshot struct {
			Delivered uint64 `json:"Delivered"`
		} `json:"snapshot"`
		DropsByCause map[string]uint64        `json:"drops_by_cause"`
		Stages       []telemetry.StageSummary `json:"stages"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL+"/snapshot")), &snap); err != nil {
		t.Fatalf("/snapshot not JSON: %v", err)
	}
	if snap.Snapshot.Delivered == 0 {
		t.Error("/snapshot shows nothing delivered")
	}
	if len(snap.Stages) != int(telemetry.NumStages) {
		t.Errorf("/snapshot has %d stages, want %d", len(snap.Stages), telemetry.NumStages)
	}
	if len(snap.DropsByCause) != int(numDropCauses) {
		t.Errorf("/snapshot drops_by_cause has %d causes", len(snap.DropsByCause))
	}

	var spans struct {
		Recent  []telemetry.Span            `json:"recent"`
		Slowest map[string][]telemetry.Span `json:"slowest"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL+"/spans")), &spans); err != nil {
		t.Fatalf("/spans not JSON: %v", err)
	}
	if len(spans.Recent) == 0 || len(spans.Slowest[telemetry.StageDecode]) == 0 {
		t.Error("/spans empty after traced deliveries")
	}
}

// TestProgramMetricsExposition drives enough same-K traffic through a
// runtime for its workers to compile replay programs and then checks the
// program-cache counters end to end: Snapshot fields, their /metrics
// families, and the compile stage in the shared stage vocabulary.
func TestProgramMetricsExposition(t *testing.T) {
	cfg := testConfig(simd.W512)
	cfg.Workers = 2
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool := mustPool(t, 104, 64, 17)
	for i := 0; i < pool.Len(); i++ {
		w, _ := pool.Get(i)
		if a := rt.Submit(i%cfg.Cells, i, pool.K, w); a != Admitted {
			t.Fatalf("block %d not admitted: %v", i, a)
		}
	}
	s := rt.Stop()

	if s.ProgramCompiles < 1 || s.ProgramCompiles > uint64(cfg.Workers) {
		t.Errorf("ProgramCompiles = %d, want 1..%d (one per worker that saw K)",
			s.ProgramCompiles, cfg.Workers)
	}
	if s.CompiledPlans < 1 || uint64(s.CompiledPlans) != s.ProgramCompiles {
		t.Errorf("CompiledPlans = %d, want one per compilation (%d)", s.CompiledPlans, s.ProgramCompiles)
	}
	if s.ProgramHits == 0 {
		t.Error("no decode was served by a compiled program")
	}
	if s.ProgramMisses != s.ProgramCompiles {
		t.Errorf("ProgramMisses = %d, want %d (only the recording decodes miss)",
			s.ProgramMisses, s.ProgramCompiles)
	}
	if s.CompiledRatio <= 0 || s.CompiledRatio >= 1 {
		t.Errorf("CompiledRatio = %v, want in (0, 1) after misses then hits", s.CompiledRatio)
	}
	if want := float64(s.ProgramHits) / float64(s.ProgramHits+s.ProgramMisses); s.CompiledRatio != want {
		t.Errorf("CompiledRatio = %v, want %v", s.CompiledRatio, want)
	}
	if s.CompileSeconds <= 0 {
		t.Error("CompileSeconds not accounted")
	}

	srv := httptest.NewServer(MountAdmin(rt, nil, nil, "", HealthPolicy{}).Handler())
	defer srv.Close()
	body := httpGet(t, srv.URL+"/metrics")
	for _, want := range []string{
		"# TYPE vran_decode_compiled_ratio gauge",
		"# TYPE vran_decode_program_hits_total counter",
		"vran_decode_program_misses_total",
		"vran_decode_compiles_total",
		"vran_decode_compile_seconds_total",
		"vran_decode_compiled_plans",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	found := false
	for _, st := range telemetry.ServeStages() {
		if st == telemetry.StageCompile {
			found = true
		}
	}
	if !found {
		t.Error("compile stage missing from ServeStages vocabulary")
	}
}

// TestHealthzFlipsUnderOverload reuses the overload-shedding harness:
// a healthy lightly-loaded runtime must report 200, and the same
// expensive-K flood that TestDeadlineDropsUnderOverload sheds must
// flip /healthz to 503 with a drop-rate reason.
func TestHealthzFlipsUnderOverload(t *testing.T) {
	// Healthy: infinite deadline, light load, everything delivered.
	cfg := testConfig(simd.W256)
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool := mustPool(t, 40, 8, 9)
	for i := 0; i < 8; i++ {
		w, _ := pool.Get(i)
		rt.Submit(i%cfg.Cells, i, pool.K, w)
	}
	srv := httptest.NewServer(MountAdmin(rt, nil, nil, "", HealthPolicy{}).Handler())
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthy runtime /healthz = %d, want 200", resp.StatusCode)
	}
	srv.Close()
	rt.Stop()

	// Overloaded: one worker, tiny queue, deadline far below capacity
	// (the TestDeadlineDropsUnderOverload harness).
	cfg = testConfig(simd.W256)
	cfg.Workers = 1
	cfg.QueueDepth = 8
	cfg.Deadline = 2 * time.Millisecond
	cfg.BatchWindow = 100 * time.Microsecond
	cfg.AdmissionGuard = true
	rt, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	big := mustPool(t, 512, 16, 3)
	for i := 0; i < 300; i++ {
		w, _ := big.Get(i)
		rt.Submit(i%cfg.Cells, i, big.K, w)
	}
	srv = httptest.NewServer(MountAdmin(rt, nil, nil, "", HealthPolicy{}).Handler())
	defer srv.Close()
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	rt.Stop()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded /healthz = %d, want 503 (body %s)", resp.StatusCode, body)
	}
	var st telemetry.HealthStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("/healthz body not JSON: %v", err)
	}
	if st.Healthy || st.Reason == "" {
		t.Errorf("unhealthy verdict malformed: %+v", st)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	return string(body)
}
