package ran

import (
	"sync"
	"time"
)

// cellQueue is one cell's bounded ingress queue. Admission control
// lives in Runtime.Submit; the queue itself only enforces the bound —
// an offer against a full queue fails immediately (backpressure to the
// radio front-end) instead of buffering without limit.
type cellQueue struct {
	mu  sync.Mutex
	buf []*Block
	max int
}

func newCellQueue(depth int) *cellQueue {
	return &cellQueue{max: depth}
}

// offer appends b unless the queue is at capacity.
func (q *cellQueue) offer(b *Block) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.buf) >= q.max {
		return false
	}
	q.buf = append(q.buf, b)
	return true
}

// drain removes and returns all queued blocks in arrival order, and
// stamps each block's dequeue instant — the end of the span tracer's
// queue-wait stage.
func (q *cellQueue) drain() []*Block {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.buf) == 0 {
		return nil
	}
	out := q.buf
	q.buf = nil
	now := time.Now()
	for _, b := range out {
		b.dequeued = now
	}
	return out
}

// depth reports the current backlog.
func (q *cellQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf)
}
