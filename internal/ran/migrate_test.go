package ran

import (
	"testing"
	"time"

	"vransim/internal/simd"
)

// migrateConfig builds a runtime whose CRC check always fails, so every
// submitted block keeps cycling through the HARQ retry path — a
// deterministic way to hold blocks in flight while a drain runs.
func migrateConfig(pass bool) Config {
	cfg := testConfig(simd.W256)
	cfg.HARQ = HARQConfig{MaxRetries: 1 << 20, Processes: 8}
	cfg.BatchWindow = 200 * time.Microsecond
	if !pass {
		cfg.CheckCRC = func(*Block, []byte) bool { return false }
	}
	return cfg
}

// TestDrainCellCapturesInflight: a drain pulls every non-terminal block
// of the cell out of the runtime, un-accepts them, exports the HARQ
// soft state, and leaves the cell sealed; the other cell is untouched.
func TestDrainCellCapturesInflight(t *testing.T) {
	rt, err := New(migrateConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	pool := mustPool(t, 40, 16, 3)
	const n0, n1 = 10, 4
	for i := 0; i < n0; i++ {
		w, _ := pool.Get(i)
		if rt.SubmitProcess(0, i, 0, pool.K, w) != Admitted {
			t.Fatal("submit to cell 0 rejected")
		}
	}
	for i := 0; i < n1; i++ {
		w, _ := pool.Get(n0 + i)
		if rt.SubmitProcess(1, i, 0, pool.K, w) != Admitted {
			t.Fatal("submit to cell 1 rejected")
		}
	}
	// Let the blocks cycle through a few failed decodes.
	time.Sleep(5 * time.Millisecond)

	st, err := rt.DrainCell(0, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Blocks) != n0 {
		t.Fatalf("drained %d blocks, want %d", len(st.Blocks), n0)
	}
	s := rt.Snapshot()
	if s.Cells[0].Accepted != 0 {
		t.Errorf("cell 0 accepted = %d after un-accept, want 0", s.Cells[0].Accepted)
	}
	if s.Cells[1].Accepted != n1 {
		t.Errorf("cell 1 accepted = %d, want %d", s.Cells[1].Accepted, n1)
	}
	if !rt.Sealed(0) {
		t.Error("drained cell is not sealed")
	}
	w, _ := pool.Get(0)
	if got := rt.Submit(0, 0, pool.K, w); got != RejectedSealed {
		t.Errorf("submit to sealed cell = %v, want RejectedSealed", got)
	}
	// Every block that failed at least once carries a soft buffer whose
	// attempt count is Attempt+1 (the first failure folds the initial
	// reception and the regenerated retransmission: two combines).
	bufs := map[[2]int]int{}
	for _, b := range st.Buffers {
		bufs[[2]int{b.UE, b.Proc}] = b.Attempts
	}
	for _, b := range st.Blocks {
		if b.Word == nil || b.Tx == nil {
			t.Fatal("migrated block lost its words")
		}
		if b.Attempt == 0 {
			continue
		}
		if got := bufs[[2]int{b.UE, b.Proc}]; got != b.Attempt+1 {
			t.Errorf("UE %d soft attempts = %d, want %d", b.UE, got, b.Attempt+1)
		}
	}
	if rt.harq.Len() > n1 {
		t.Errorf("source still holds %d soft buffers after export (cell 1 may own ≤ %d)", rt.harq.Len(), n1)
	}
}

// TestMigrateConservation: a cell moves between two live runtimes; the
// fleet ledger stays exact (each block accepted once, terminal once)
// and zero HARQ processes are lost — the blocks recover on the target.
func TestMigrateConservation(t *testing.T) {
	src, err := New(migrateConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	dst, err := New(migrateConfig(true)) // CRC passes on the target
	if err != nil {
		t.Fatal(err)
	}
	pool := mustPool(t, 40, 16, 7)
	const n = 12
	for i := 0; i < n; i++ {
		w, _ := pool.Get(i)
		if src.SubmitProcess(0, i, 0, pool.K, w) != Admitted {
			t.Fatal("submit rejected")
		}
	}
	time.Sleep(4 * time.Millisecond)

	st, err := src.DrainCell(0, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	moved, err := dst.ImportCell(st)
	if err != nil {
		t.Fatal(err)
	}
	if moved != len(st.Blocks) {
		t.Fatalf("imported %d of %d blocks", moved, len(st.Blocks))
	}

	// The target decodes them (its CRC passes); wait for the cell to
	// settle terminally.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s := dst.Snapshot()
		c := s.Cells[0]
		if c.Accepted > 0 && c.Delivered+c.Dropped() >= c.Accepted && s.RetryDepth == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	ss, ds := src.Stop(), dst.Stop()

	// Fleet conservation: n submissions were accepted exactly once
	// fleet-wide, and every one reached exactly one terminal outcome.
	fleetAccepted := ss.Cells[0].Accepted + ds.Cells[0].Accepted
	fleetTerminal := ss.Cells[0].Delivered + ss.Cells[0].Dropped() +
		ds.Cells[0].Delivered + ds.Cells[0].Dropped()
	if fleetAccepted != n {
		t.Errorf("fleet accepted = %d, want %d", fleetAccepted, n)
	}
	if fleetTerminal != n {
		t.Errorf("fleet terminal = %d, want %d", fleetTerminal, n)
	}
	// Zero HARQ loss: every migrated block delivered on the target (its
	// CRC passes and deadlines are generous), and retried blocks count
	// as HARQ recoveries there.
	if ds.Cells[0].Delivered != uint64(len(st.Blocks)) {
		t.Errorf("target delivered %d, want %d", ds.Cells[0].Delivered, len(st.Blocks))
	}
	if ds.HARQBuffers != 0 {
		t.Errorf("target still holds %d soft buffers after settle", ds.HARQBuffers)
	}
}

// TestDrainTimeoutAborts: an impossible drain deadline aborts cleanly —
// the cell unseals, its blocks re-enter the decode path, and accounting
// stays conserved through Stop.
func TestDrainTimeoutAborts(t *testing.T) {
	rt, err := New(migrateConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	pool := mustPool(t, 40, 8, 9)
	const n = 6
	for i := 0; i < n; i++ {
		w, _ := pool.Get(i)
		rt.SubmitProcess(0, i, 0, pool.K, w)
	}
	if _, err := rt.DrainCell(0, 0); err == nil {
		t.Fatal("zero-timeout drain of a busy cell succeeded")
	}
	if rt.Sealed(0) {
		t.Error("cell still sealed after aborted drain")
	}
	s := rt.Stop()
	c := s.Cells[0]
	if c.Accepted != n || c.Delivered+c.Dropped() != n {
		t.Errorf("conservation broken after abort: accepted %d, terminal %d, want %d",
			c.Accepted, c.Delivered+c.Dropped(), n)
	}
}

// TestImportBacklogOverflow: a target whose cell queue cannot hold the
// migrated blocks accounts the excess as backlog drops — accepted and
// terminal stay equal, nothing vanishes.
func TestImportBacklogOverflow(t *testing.T) {
	cfg := migrateConfig(true)
	cfg.QueueDepth = 4
	cfg.Workers = 1
	dst, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool := mustPool(t, 40, 16, 5)
	st := &CellState{Cell: 0}
	for i := 0; i < 12; i++ {
		w, _ := pool.Get(i)
		st.Blocks = append(st.Blocks, MigratedBlock{UE: i, K: pool.K, Word: w, Tx: w})
	}
	moved, err := dst.ImportCell(st)
	if err != nil {
		t.Fatal(err)
	}
	if moved >= 12 {
		t.Fatalf("moved = %d, want < 12 with queue depth 4", moved)
	}
	s := dst.Stop()
	c := s.Cells[0]
	if c.Accepted != 12 {
		t.Errorf("accepted = %d, want 12", c.Accepted)
	}
	if c.Delivered+c.Dropped() != 12 {
		t.Errorf("terminal = %d, want 12", c.Delivered+c.Dropped())
	}
	if c.Drops[DropBacklog] == 0 {
		t.Error("no backlog drops recorded for the overflow")
	}
}
