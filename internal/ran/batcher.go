package ran

import "time"

// batch is one unit of worker work: up to `lanes` same-K blocks decoded
// in parallel register lane groups. class is the SLA class of every
// block in it (the dispatcher runs one batcher per class), deciding
// which priority channel carries it to the workers.
type batch struct {
	k      int
	class  Class
	blocks []*Block
}

// laneBatcher aggregates same-K code blocks across UEs and cells until
// a batch fills every width/128 lane group of the decoder, or until the
// oldest pending block has waited `window` — whichever comes first.
// Filling lanes is what makes wide registers pay (an AVX512 register
// decoding one block wastes 3/4 of its lanes); the window bounds the
// latency cost of waiting for co-travelers.
//
// The batcher is owned by the single dispatcher goroutine and needs no
// locking.
type laneBatcher struct {
	lanes  int
	window time.Duration
	// pending holds under-filled groups by K; entered[k] is when the
	// oldest pending block of that K arrived at the batcher.
	pending map[int][]*Block
	entered map[int]time.Time
}

func newLaneBatcher(lanes int, window time.Duration) *laneBatcher {
	return &laneBatcher{
		lanes:   lanes,
		window:  window,
		pending: make(map[int][]*Block),
		entered: make(map[int]time.Time),
	}
}

// add stages b and returns a full batch if b completed one. The entry
// instant is stamped on the block: it opens the span tracer's
// batch-wait stage (closed when a worker starts the decode).
func (lb *laneBatcher) add(b *Block, now time.Time) (batch, bool) {
	b.batched = now
	p := lb.pending[b.K]
	if len(p) == 0 {
		lb.entered[b.K] = now
	}
	p = append(p, b)
	if len(p) >= lb.lanes {
		delete(lb.pending, b.K)
		delete(lb.entered, b.K)
		return batch{k: b.K, blocks: p}, true
	}
	lb.pending[b.K] = p
	return batch{}, false
}

// flushDue returns the under-filled batches whose oldest block has
// waited at least the window (all of them when force is set, e.g. at
// shutdown).
func (lb *laneBatcher) flushDue(now time.Time, force bool) []batch {
	var out []batch
	for k, p := range lb.pending {
		if force || now.Sub(lb.entered[k]) >= lb.window {
			out = append(out, batch{k: k, blocks: p})
			delete(lb.pending, k)
			delete(lb.entered, k)
		}
	}
	return out
}

// nextDue reports the earliest instant a pending group becomes
// flushable, if any group is pending.
func (lb *laneBatcher) nextDue() (time.Time, bool) {
	var due time.Time
	found := false
	for _, t := range lb.entered {
		d := t.Add(lb.window)
		if !found || d.Before(due) {
			due, found = d, true
		}
	}
	return due, found
}

// pendingBlocks counts staged blocks (for tests and shutdown checks).
func (lb *laneBatcher) pendingBlocks() int {
	n := 0
	for _, p := range lb.pending {
		n += len(p)
	}
	return n
}
