package ran

import (
	"runtime"
	"testing"
	"time"

	"vransim/internal/core"
	"vransim/internal/simd"
)

// TestSLAOverloadSoak is the SLA-class acceptance soak: a mixed
// urllc/embb fleet is driven twice with identical runtime configs —
// once at clean load (every cell stationary Poisson) to establish the
// URLLC latency baseline, then with the eMBB cells switched to a 2×
// mean MMPP burst process while the URLLC cells stay steady. The
// class-priority batching, work stealing, burst predictor and shed
// ladder together must hold the SLA:
//
//   - URLLC p99 under burst stays within 1.5× the clean-load value;
//   - zero URLLC admission rejects (no backlog, admission or shed
//     drops on the protected class — URLLC is never shed by policy
//     and its queues must never fill);
//   - eMBB absorbs the damage: ≥ 90% of all dropped volume in the
//     burst phase is eMBB;
//   - per-class accounting conserves in both phases;
//   - no goroutine leak across both runtimes.
//
// Run under -race (the CI sla-soak job does).
func TestSLAOverloadSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short")
	}
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run("seed"+itoa(int(seed)), func(t *testing.T) {
			slaSoak(t, seed)
		})
	}
}

func slaSoak(t *testing.T, seed int64) {
	const (
		k     = 40
		cells = 4
		// Burst-phase TTIs; the clean baseline runs 2× longer. Sized so
		// each phase delivers enough URLLC blocks (~640/~1280 at the
		// calibrated means) that its p99 is an order statistic over tens
		// of samples, not single digits — under -race, rare scheduler/GC
		// stalls of tens of ms land on whichever blocks are in flight,
		// and a thin tail turns those into coin-flip p99 estimates.
		ttis      = 800
		burstMult = 2.0 // the "2× MMPP burst": eMBB long-run mean doubles
		maxWait   = 60 * time.Second
	)
	baseline := runtime.NumGoroutine()
	pool := mustPool(t, k, 64, seed)

	classes, err := ParseClassList("urllc,embb", cells)
	if err != nil {
		t.Fatal(err)
	}

	// Calibrate the offered load to this machine and build mode: decode
	// runs ~10× slower under -race, so fixed per-TTI means would either
	// saturate a race run's clean phase or never overload a fast one.
	// The TTI is stretched until it holds ~4 blocks of measured service
	// capacity, then the clean phase runs at 50% of capacity and the
	// burst ON rate lands at ~2.4× capacity on the eMBB cells.
	capMs := measureCapacity(t, pool, cells, k)
	tti := time.Millisecond
	if capMs < 4 {
		tti = time.Duration(4 / capMs * float64(time.Millisecond))
	}
	capTTI := capMs * float64(tti) / float64(time.Millisecond)
	// URLLC carries 2×0.10 and eMBB 2×0.15 of capacity in the clean
	// phase (50% total): the URLLC share is deliberately the larger
	// per-class sampling knob, because the p99 comparison needs a thick
	// enough tail — log-bucketed percentiles quantize at ~1.2× steps
	// and scheduler jitter (especially under -race) lands a thin tail
	// a bucket away run to run.
	urllcMean := 0.10 * capTTI
	embbMean := 0.15 * capTTI
	t.Logf("seed %d: measured capacity %.2f blocks/ms; TTI %v (%.1f blocks), means urllc %.2f embb %.2f",
		seed, capMs, tti, capTTI, urllcMean, embbMean)

	run := func(burst bool, nTTIs int) *Snapshot {
		cfg := DefaultConfig(simd.W512, core.StrategyAPCM)
		cfg.Cells = cells
		cfg.Workers = 4
		cfg.QueueDepth = 32
		cfg.MaxIters = 4
		// Generous deadline (scaled with the calibrated TTI): the soak
		// is about class isolation under queue pressure, not the HARQ
		// clock — drops must come from backlog and shed, not expiry.
		cfg.Deadline = 25 * tti
		// No admission guard: rejects can only come from full queues or
		// the shed ladder, which is exactly what the class policy must
		// keep away from URLLC.
		cfg.AdmissionGuard = false
		cfg.CheckCRC = pool.CheckCRC()
		// Two of the four workers are reserved for URLLC: without the
		// reservation, stealing only helps at batch boundaries, and
		// under -race a full-lane eMBB batch occupies a worker for
		// ~100 ms — every burst dwell would block URLLC for a whole
		// eMBB service time and the p99 comparison below would measure
		// scheduler luck instead of the class policy.
		cfg.SLA = SLAConfig{Classes: classes, ReserveWorkers: 2}
		// The predictor's estimation window tracks the TTI so a burst's
		// per-window count clears the MinRate-floored baseline on slow
		// (race) builds too.
		cfg.Predict = PredictConfig{Enabled: true, Window: tti}

		rt, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		lc := LoadConfig{
			UEsPerCell: 4,
			TTI:        tti,
			TTIs:       nTTIs,
			Seed:       seed,
			CellMeans:  make([]float64, cells),
			CellBursty: make([]bool, cells),
			// On/off split: ON at 8× the cell mean 1/8 of the time, so
			// the burst-phase ON rate is burstMult*embbMean*8 ≈ 2.4×
			// measured capacity per eMBB cell — decisively past a
			// 32-deep queue within one dwell.
			BurstFactor: 8,
		}
		for c := 0; c < cells; c++ {
			if classes[c] == ClassURLLC {
				lc.CellMeans[c] = urllcMean
			} else if burst {
				lc.CellMeans[c] = burstMult * embbMean
				lc.CellBursty[c] = true
			} else {
				lc.CellMeans[c] = embbMean
			}
		}
		rep := OfferLoad(rt, pool, lc, true)

		// Settle: every accepted block terminal, no retry in flight.
		settleBy := time.Now().Add(maxWait)
		for time.Now().Before(settleBy) {
			s := rt.Snapshot()
			term := s.Delivered + s.Drops[DropExpired] + s.Drops[DropLate] +
				s.Drops[DropHARQ] + s.Drops[DropShutdown]
			if term >= s.Accepted && s.RetryDepth == 0 {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		s := rt.Stop()

		// Whole-run conservation: everything offered was admitted or
		// visibly rejected, and the per-class ledgers tile the totals.
		preDrops := s.Drops[DropBacklog] + s.Drops[DropAdmission] + s.Drops[DropShed]
		if uint64(rep.Offered) != s.Accepted+preDrops {
			t.Errorf("offered %d != accepted %d + pre-admission drops %d", rep.Offered, s.Accepted, preDrops)
		}
		var accSum, delSum uint64
		for c := Class(0); c < NumClasses; c++ {
			ks := &s.Classes[c]
			accSum += ks.Accepted
			delSum += ks.Delivered
			post := ks.Drops[DropExpired] + ks.Drops[DropLate] + ks.Drops[DropHARQ] + ks.Drops[DropShutdown]
			if ks.Accepted != ks.Delivered+post {
				t.Errorf("class %s accounting leak: accepted %d != delivered %d + post drops %d",
					c, ks.Accepted, ks.Delivered, post)
			}
		}
		if accSum != s.Accepted || delSum != s.Delivered {
			t.Errorf("class ledgers do not tile totals: accepted %d/%d, delivered %d/%d",
				accSum, s.Accepted, delSum, s.Delivered)
		}
		return s
	}

	// The clean phase runs 2× longer: it defines the p99 baseline the
	// burst phase is judged against, so its tail needs the most samples.
	clean := run(false, 2*ttis)
	burst := run(true, ttis)

	cleanP99 := clean.Classes[ClassURLLC].LatencyP99
	burstP99 := burst.Classes[ClassURLLC].LatencyP99
	if clean.Classes[ClassURLLC].Delivered == 0 || cleanP99 == 0 {
		t.Fatal("clean phase delivered no URLLC blocks — baseline undefined")
	}
	t.Logf("seed %d: URLLC p99 clean %v → burst %v (%.2fx); burst drops urllc %v embb %v; steals %d, shed level %d, reserved %d",
		seed, cleanP99, burstP99, float64(burstP99)/float64(cleanP99),
		classDropTotal(burst, ClassURLLC), classDropTotal(burst, ClassEMBB),
		burst.Steals, burst.ShedLevel, burst.ReservedWorkers)

	// 1. URLLC latency holds under the eMBB burst: p99 within 1.5× of
	// the clean baseline. Both p99s are reconstructed from log-bucketed
	// histograms whose boundaries step ~1.21–1.24×, so two identical
	// underlying distributions can still report p99s one bucket apart;
	// the bar carries a single-bucket (×1.25) quantization allowance on
	// top of the 1.5× criterion. On a race build the strict bar is
	// unmeasurable — instrumentation slows decode ~10× and the burst
	// phase saturates the CPU, so even the reserved URLLC workers get
	// descheduled and every wall-clock tail stretches with detector
	// contention, not queueing policy (measured: ratios up to ~2.7×
	// with the reservation active, from CPU-contention stalls alone).
	// Race runs instead assert a 4× sanity bound — one histogram
	// bucket above the measured contention ceiling, and low enough to
	// catch the failure mode the reservation exists for (URLLC parked
	// behind full-lane eMBB batches measured 4.3× before it). The CI
	// sla-soak job runs the soak natively as well, so the strict bar
	// stays enforced per commit.
	// The bar also carries an absolute slack floor of 6 TTIs: on a fast
	// native build the clean baseline lands near the batching + HARQ
	// retry jitter floor (~3 TTIs), where a single retry round-trip of
	// difference between two runs — noise, not queueing policy — already
	// reads as 2×. The floor dominates only in that small-baseline
	// regime; either way the tail stays far inside the 25-TTI deadline.
	mult := 1.5 * 1.25
	if raceEnabled {
		mult = 4.0
	}
	bar := time.Duration(mult * float64(cleanP99))
	if floor := cleanP99 + 6*tti; floor > bar {
		bar = floor
	}
	if burstP99 > bar {
		t.Errorf("URLLC p99 %v under burst exceeds 1.5× clean baseline %v (bar %v)",
			burstP99, cleanP99, bar)
	}

	// 2. Zero URLLC admission rejects: the protected class never hits a
	// full queue and the shed ladder never touches it.
	u := &burst.Classes[ClassURLLC]
	if rej := u.Drops[DropBacklog] + u.Drops[DropAdmission] + u.Drops[DropShed]; rej != 0 {
		t.Errorf("%d URLLC admission rejects under burst (backlog %d, admission %d, shed %d), want 0",
			rej, u.Drops[DropBacklog], u.Drops[DropAdmission], u.Drops[DropShed])
	}

	// 3. eMBB absorbs the degradation: ≥ 90% of dropped volume.
	uDrops, eDrops := classDropTotal(burst, ClassURLLC), classDropTotal(burst, ClassEMBB)
	total := uDrops + eDrops
	if total == 0 {
		t.Fatal("burst phase produced no drops — load too light to test shedding")
	}
	if share := float64(eDrops) / float64(total); share < 0.90 {
		t.Errorf("eMBB absorbed only %.1f%% of drop volume (%d of %d), want >= 90%%", 100*share, eDrops, total)
	}

	// 4. No goroutine leak across both runtimes.
	leakBy := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(leakBy) {
			t.Errorf("goroutines %d after both runs, baseline %d", runtime.NumGoroutine(), baseline)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// measureCapacity probes end-to-end decode throughput (blocks per
// 1 ms TTI) on this machine and build mode: it preloads a deep-queued
// runtime with a fixed block count, lets the pool drain it flat out,
// and divides. The soak scales its offered load from this so the same
// test overloads a fast native run and a 10×-slower -race run alike.
func measureCapacity(t *testing.T, pool *WordPool, cells, k int) float64 {
	t.Helper()
	cfg := DefaultConfig(simd.W512, core.StrategyAPCM)
	cfg.Cells = cells
	cfg.Workers = 4
	cfg.QueueDepth = 2048
	cfg.MaxIters = 4
	cfg.Deadline = time.Minute // nothing expires during the probe
	cfg.AdmissionGuard = false
	cfg.CheckCRC = pool.CheckCRC()
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	start := time.Now()
	for i := 0; i < n; i++ {
		w, _ := pool.Get(i)
		rt.SubmitProcess(i%cells, 0, i, k, w)
	}
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		s := rt.Snapshot()
		if s.Delivered+s.Drops[DropHARQ] >= n {
			break
		}
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start)
	s := rt.Stop()
	if s.Delivered == 0 {
		t.Fatal("capacity probe delivered nothing")
	}
	return float64(s.Delivered) / (float64(elapsed) / float64(time.Millisecond))
}

// classDropTotal sums every drop cause for one class.
func classDropTotal(s *Snapshot, c Class) uint64 {
	var n uint64
	for d := DropCause(0); d < numDropCauses; d++ {
		n += s.Classes[c].Drops[d]
	}
	return n
}
