package ran

import (
	"math/rand"

	"vransim/internal/core"
	"vransim/internal/simd"
	"vransim/internal/trace"
	"vransim/internal/turbo"
	"vransim/internal/uarch"
)

// CalibrateUarch runs one full-lane batch decode of block size k on a
// traced engine and simulates the trace on the wimpy platform,
// producing the microarchitectural counters (IPC, top-down split, port
// utilization, store bandwidth) the live /metrics exposition exports as
// calibration gauges. The serving workers themselves run untraced — a
// per-µop trace on the hot path would swamp the thing being measured —
// so this one-shot decode is how the runtime anchors its exposition to
// the paper's attribution methodology.
func CalibrateUarch(cfg Config, k int) (uarch.Result, error) {
	lanes := turbo.BlocksPerRegister(cfg.Width)
	if lanes < 1 {
		lanes = 1
	}
	iters := cfg.MaxIters
	if iters <= 0 {
		iters = 4
	}
	pool, err := NewWordPool(k, lanes, 24, rand.New(rand.NewSource(1)))
	if err != nil {
		return uarch.Result{}, err
	}
	c, err := turbo.NewCode(k)
	if err != nil {
		return uarch.Result{}, err
	}
	rec := trace.NewRecorder(1 << 20)
	eng := simd.NewEngine(cfg.Width, simd.NewMemory(64<<20), rec)
	dec := turbo.NewMultiSIMDDecoder(c)
	dec.MaxIters = iters
	words := make([]*turbo.LLRWord, lanes)
	for i := range words {
		words[i], _ = pool.Get(i)
	}
	if _, _, err := dec.Decode(eng, core.ByStrategy(cfg.Strategy), words); err != nil {
		return uarch.Result{}, err
	}
	p := uarch.WimpyPlatform()
	return uarch.Simulate(rec.Insts(), p.Core, &p.Caches), nil
}
