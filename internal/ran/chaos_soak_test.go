package ran

import (
	"runtime"
	"testing"
	"time"

	"vransim/internal/chaos"
	"vransim/internal/core"
	"vransim/internal/simd"
)

// TestChaosSoak drives the runtime through N simulated TTIs of traffic
// with a seeded fault injector firing at every site — forced CRC
// failures, noisy receptions, worker stalls, fake queue pressure, plan
// eviction storms and compile-verify failures — and asserts the
// properties the chaos harness exists to defend:
//
//   - no deadlock: the run settles and Stop returns;
//   - no goroutine leak: the count returns to its pre-runtime baseline;
//   - conserved accounting: every offered block is accepted or visibly
//     rejected, and every accepted block ends delivered or in a counted
//     post-admission drop — across three fixed seeds, under -race;
//   - recovery: ≥95 % of CRC-affected blocks come back via a
//     soft-combined HARQ retransmission within the retry budget.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short")
	}
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run("seed"+itoa(int(seed)), func(t *testing.T) {
			soak(t, seed)
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func soak(t *testing.T, seed int64) {
	const (
		k       = 40
		ttis    = 250
		perTTI  = 8 // blocks across all cells per simulated TTI
		maxWait = 60 * time.Second
	)
	baseline := runtime.NumGoroutine()

	inj := chaos.New(chaos.Config{
		Seed:        seed,
		CRCRate:     0.10, // the acceptance-criterion fault
		CorruptRate: 0.05,
		CorruptAmp:  64,
		StallRate:   0.02,
		StallFor:    200 * time.Microsecond,
		QueueRate:   0.02,
		EvictRate:   0.01,
		CompileRate: 0.05,
	})

	cfg := DefaultConfig(simd.W512, core.StrategyAPCM)
	cfg.Cells = 3
	cfg.Workers = 4
	cfg.QueueDepth = 256
	cfg.MaxIters = 4
	cfg.BatchWindow = 200 * time.Microsecond
	cfg.Deadline = 30 * time.Second // the soak is about faults, not the clock
	cfg.AdmissionGuard = false
	cfg.Chaos = inj

	pool := mustPool(t, k, 64, seed)
	cfg.CheckCRC = pool.CheckCRC()

	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var offered, admitted, rejected uint64
	idx := 0
	for tti := 0; tti < ttis; tti++ {
		for j := 0; j < perTTI; j++ {
			cell := idx % cfg.Cells
			ue := (idx / cfg.Cells) % 8
			w, _ := pool.Get(idx)
			offered++
			switch rt.SubmitProcess(cell, ue, idx, k, w) {
			case Admitted:
				admitted++
			default:
				rejected++
			}
			idx++
		}
		// Yield so the dispatcher interleaves with submission — the
		// simulated TTI clock, compressed.
		time.Sleep(50 * time.Microsecond)
	}

	// Settle: every accepted block terminal, no retry in flight.
	settleBy := time.Now().Add(maxWait)
	for time.Now().Before(settleBy) {
		s := rt.Snapshot()
		term := s.Delivered + s.Drops[DropExpired] + s.Drops[DropLate] +
			s.Drops[DropHARQ] + s.Drops[DropShutdown]
		if term >= s.Accepted && s.RetryDepth == 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	s := rt.Stop()

	// -- accounting ----------------------------------------------------
	if s.Accepted != admitted {
		t.Errorf("accepted %d, Submit admitted %d", s.Accepted, admitted)
	}
	preDrops := s.Drops[DropBacklog] + s.Drops[DropAdmission]
	if preDrops != rejected {
		t.Errorf("pre-admission drops %d, Submit rejected %d", preDrops, rejected)
	}
	if offered != admitted+rejected {
		t.Errorf("offered %d != admitted %d + rejected %d", offered, admitted, rejected)
	}
	post := s.Drops[DropExpired] + s.Drops[DropLate] + s.Drops[DropHARQ] + s.Drops[DropShutdown]
	if s.Accepted != s.Delivered+post {
		t.Errorf("accounting leak: accepted %d != delivered %d + post-admission drops %d (%v)",
			s.Accepted, s.Delivered, post, s.DropsByCause())
	}
	if s.RetryDepth != 0 {
		t.Errorf("retry queue depth %d after stop", s.RetryDepth)
	}
	if s.HARQBuffers != 0 {
		t.Errorf("%d live HARQ buffers after stop", s.HARQBuffers)
	}
	for i, c := range s.Cells {
		if c.QueueDepth != 0 {
			t.Errorf("cell %d queue depth %d after stop", i, c.QueueDepth)
		}
	}

	// -- recovery ------------------------------------------------------
	// Every CRC-affected block ends recovered (delivered on a retry) or
	// in a harq/shutdown drop; the acceptance bar is 95 % recovery.
	affected := s.HARQRecovered + s.Drops[DropHARQ] + s.Drops[DropShutdown]
	if affected == 0 {
		t.Fatalf("soak injected no CRC faults (crcFailures=%d)", s.CRCFailures)
	}
	recovery := float64(s.HARQRecovered) / float64(affected)
	t.Logf("seed %d: offered %d, delivered %d; %d CRC failures, %d retries, %d recovered (%.1f%% of %d affected); drops %v; chaos %v",
		seed, offered, s.Delivered, s.CRCFailures, s.HARQRetries, s.HARQRecovered,
		100*recovery, affected, s.DropsByCause(), siteSummary(inj))
	if recovery < 0.95 {
		t.Errorf("HARQ recovery %.1f%% below the 95%% acceptance bar", 100*recovery)
	}

	// -- fault sites actually fired ------------------------------------
	// Only the runtime's own sites: the fronthaul link sites fire on the
	// shard transport path, exercised by the shard package's soak.
	linkSites := map[string]bool{
		chaos.SiteLinkDrop.String(): true, chaos.SiteLinkDelay.String(): true,
		chaos.SiteLinkPart.String(): true,
	}
	for _, c := range inj.Counters() {
		if c.Trials == 0 && !linkSites[c.Site] {
			t.Errorf("site %s never consulted", c.Site)
		}
	}
	if s.CRCFailures == 0 {
		t.Error("no CRC failures under 10% forced-failure chaos")
	}

	// -- goroutine leak ------------------------------------------------
	leakBy := time.Now().Add(10 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline+2 {
			break
		}
		if time.Now().After(leakBy) {
			t.Errorf("goroutines %d after stop, baseline %d", runtime.NumGoroutine(), baseline)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func siteSummary(in *chaos.Injector) map[string]uint64 {
	out := map[string]uint64{}
	for _, c := range in.Counters() {
		if c.Fires > 0 {
			out[c.Site] = c.Fires
		}
	}
	return out
}
