package ran

import (
	"testing"
	"time"

	"vransim/internal/simd"
)

func mkBlock(k int) *Block { return &Block{K: k} }

func TestBatcherFillsLaneGroups(t *testing.T) {
	lb := newLaneBatcher(4, time.Second)
	now := time.Now()
	for i := 0; i < 3; i++ {
		if _, full := lb.add(mkBlock(104), now); full {
			t.Fatalf("batch full after %d of 4 blocks", i+1)
		}
	}
	bt, full := lb.add(mkBlock(104), now)
	if !full || len(bt.blocks) != 4 || bt.k != 104 {
		t.Fatalf("4th block should complete the batch, got full=%v len=%d", full, len(bt.blocks))
	}
	if lb.pendingBlocks() != 0 {
		t.Error("batch emission left blocks pending")
	}
}

func TestBatcherKeepsKsApart(t *testing.T) {
	lb := newLaneBatcher(2, time.Second)
	now := time.Now()
	lb.add(mkBlock(40), now)
	if _, full := lb.add(mkBlock(104), now); full {
		t.Fatal("different-K blocks must not share a batch")
	}
	bt, full := lb.add(mkBlock(40), now)
	if !full || bt.k != 40 {
		t.Fatalf("same-K pair should batch, got full=%v k=%d", full, bt.k)
	}
	if lb.pendingBlocks() != 1 {
		t.Errorf("the K=104 block should still be pending, have %d", lb.pendingBlocks())
	}
}

func TestBatcherFlushOnTimeout(t *testing.T) {
	lb := newLaneBatcher(4, 10*time.Millisecond)
	t0 := time.Now()
	lb.add(mkBlock(40), t0)

	if got := lb.flushDue(t0.Add(5*time.Millisecond), false); len(got) != 0 {
		t.Fatalf("flushed %d batches before the window elapsed", len(got))
	}
	due, ok := lb.nextDue()
	if !ok || due.Sub(t0) != 10*time.Millisecond {
		t.Fatalf("nextDue = %v after t0, want 10ms", due.Sub(t0))
	}
	got := lb.flushDue(t0.Add(11*time.Millisecond), false)
	if len(got) != 1 || len(got[0].blocks) != 1 {
		t.Fatalf("want one under-filled batch after the window, got %v", got)
	}
	if _, ok := lb.nextDue(); ok {
		t.Error("nextDue still set after flush")
	}
}

func TestBatcherForceFlush(t *testing.T) {
	lb := newLaneBatcher(4, time.Hour)
	now := time.Now()
	lb.add(mkBlock(40), now)
	lb.add(mkBlock(104), now)
	got := lb.flushDue(now, true)
	if len(got) != 2 {
		t.Fatalf("force flush returned %d batches, want 2", len(got))
	}
	if lb.pendingBlocks() != 0 {
		t.Error("force flush left blocks pending")
	}
}

// TestRuntimeFlushOnTimeout covers the wired-up path: a single block in
// a 4-lane build must still be decoded once the batch window elapses,
// with the waste showing up in the lane-occupancy metric.
func TestRuntimeFlushOnTimeout(t *testing.T) {
	cfg := testConfig(simd.W512)
	cfg.BatchWindow = 15 * time.Millisecond
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool := mustPool(t, 40, 1, 6)
	w, _ := pool.Get(0)
	if a := rt.Submit(0, 0, pool.K, w); a != Admitted {
		t.Fatalf("not admitted: %v", a)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if rt.Snapshot().Delivered == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	s := rt.Stop()
	if s.Delivered != 1 {
		t.Fatalf("lone block never flushed: delivered=%d", s.Delivered)
	}
	if s.Batches != 1 || s.LaneOccupancy > 0.26 {
		t.Errorf("batches=%d occupancy=%.2f, want one quarter-full batch", s.Batches, s.LaneOccupancy)
	}
}
