package ran

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"vransim/internal/transport"
	"vransim/internal/turbo"
)

// WordPool pre-encodes a set of random code blocks so the hot serving
// path hands out ready-made LLR words instead of paying the encoder per
// arrival. Words are read-only once built, so one pool safely feeds any
// number of generator goroutines and decode workers.
type WordPool struct {
	K     int
	words []*turbo.LLRWord
	truth [][]byte
	// byWord keys truth by word identity, for CheckCRC implementations
	// that verify decoded bits against the encoded payload.
	byWord map[*turbo.LLRWord][]byte
}

// NewWordPool encodes n random K-bit blocks at LLR amplitude amp using
// the caller's rng (explicit so concurrent pools never share a source).
func NewWordPool(k, n int, amp int16, rng *rand.Rand) (*WordPool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("ran: word pool needs n > 0")
	}
	c, err := turbo.NewCode(k)
	if err != nil {
		return nil, err
	}
	p := &WordPool{K: k, byWord: make(map[*turbo.LLRWord][]byte, n)}
	for i := 0; i < n; i++ {
		bits := make([]byte, k)
		for j := range bits {
			bits[j] = byte(rng.Intn(2))
		}
		cw, err := c.Encode(bits)
		if err != nil {
			return nil, err
		}
		w := turbo.NewLLRWord(k)
		w.FromHard(cw, 24)
		p.words = append(p.words, w)
		p.truth = append(p.truth, bits)
		p.byWord[w] = bits
	}
	return p, nil
}

// Lookup returns the encoded payload of a pool word (keyed by word
// identity) — the truth reference a CheckCRC hook compares decoded
// bits against. The word must be one the pool handed out via Get;
// look up a Block's Submitted() word, not its possibly corrupted or
// combined Word.
func (p *WordPool) Lookup(w *turbo.LLRWord) ([]byte, bool) {
	bits, ok := p.byWord[w]
	return bits, ok
}

// CheckCRC returns a Config.CheckCRC hook that verifies decoded bits
// against the pool's encoded payloads — the closed-loop stand-in for a
// real transport-block CRC. Unknown words pass (the hook only judges
// traffic it generated).
func (p *WordPool) CheckCRC() func(b *Block, bits []byte) bool {
	return func(b *Block, bits []byte) bool {
		truth, ok := p.Lookup(b.Submitted())
		if !ok {
			return true
		}
		if len(truth) != len(bits) {
			return false
		}
		for i := range truth {
			if truth[i] != bits[i] {
				return false
			}
		}
		return true
	}
}

// Get returns word i (mod pool size) and its true payload bits.
func (p *WordPool) Get(i int) (*turbo.LLRWord, []byte) {
	j := i % len(p.words)
	return p.words[j], p.truth[j]
}

// Len reports the pool size.
func (p *WordPool) Len() int { return len(p.words) }

// LoadConfig shapes the synthetic traffic the generator offers.
type LoadConfig struct {
	// UEsPerCell spreads arrivals across UE ids (round-robin).
	UEsPerCell int
	// TTI is the arrival clock period (LTE: 1 ms).
	TTI time.Duration
	// MeanPerTTI is the per-cell Poisson arrival mean.
	MeanPerTTI float64
	// Bursty switches each cell to a two-state on/off arrival process
	// with the same long-run mean but BurstFactor× the rate while on.
	Bursty      bool
	BurstFactor float64
	// CellMeans overrides MeanPerTTI per cell (0 entries and cells past
	// the slice keep the global mean) — how a soak offers steady URLLC
	// on some cells and a heavier mean on others.
	CellMeans []float64
	// CellBursty overrides Bursty per cell when non-nil, so one run can
	// mix MMPP-bursty eMBB cells with steady-Poisson URLLC cells.
	CellBursty []bool
	// TTIs is the run horizon.
	TTIs int
	// Seed derives one private rng per cell.
	Seed int64
}

// LoadReport summarizes what a generator run actually offered.
type LoadReport struct {
	// Offered counts Submit attempts; Arrivals records the per-TTI
	// aggregate arrival counts (for the analytic cross-check).
	Offered  int
	Arrivals []int
}

// OfferLoad drives rt with synthetic traffic from pool: one goroutine
// per cell, each with its own arrival process and rng, paced by the
// TTI clock. It blocks until the horizon elapses and returns what was
// offered. Pass paced=false to disable pacing (saturation mode: every
// cell submits its arrivals as fast as the runtime admits them).
func OfferLoad(rt *Runtime, pool *WordPool, cfg LoadConfig, paced bool) *LoadReport {
	nCells := rt.cfg.Cells
	if cfg.UEsPerCell <= 0 {
		cfg.UEsPerCell = 1
	}
	if cfg.TTI <= 0 {
		cfg.TTI = time.Millisecond
	}
	perCell := make([][]int, nCells)
	var wg sync.WaitGroup
	wg.Add(nCells)
	for cell := 0; cell < nCells; cell++ {
		go func(cell int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(cell)*7919))
			mean := cfg.MeanPerTTI
			if cell < len(cfg.CellMeans) && cfg.CellMeans[cell] > 0 {
				mean = cfg.CellMeans[cell]
			}
			bursty := cfg.Bursty
			if cfg.CellBursty != nil {
				bursty = cell < len(cfg.CellBursty) && cfg.CellBursty[cell]
			}
			var proc transport.ArrivalProcess
			if bursty {
				bf := cfg.BurstFactor
				if bf <= 1 {
					bf = 4
				}
				// On/off dwell split keeping the long-run mean at the
				// cell's mean: on 1/bf of the time at bf× the rate.
				proc = transport.NewBurstyProcess(bf*mean, 0, 8, 8*(bf-1), rng)
			} else {
				proc = transport.NewPoissonProcess(mean, rng)
			}
			arrivals := make([]int, cfg.TTIs)
			next := time.Now()
			wordIdx := cell // stagger pool starts across cells
			for t := 0; t < cfg.TTIs; t++ {
				n := proc.Next()
				arrivals[t] = n
				for j := 0; j < n; j++ {
					w, _ := pool.Get(wordIdx)
					// Cycle the HARQ process id so concurrent in-flight
					// blocks of one UE never share a soft buffer (the id
					// wraps modulo the runtime's process count).
					rt.SubmitProcess(cell, j%cfg.UEsPerCell, wordIdx, pool.K, w)
					wordIdx++
				}
				if paced {
					next = next.Add(cfg.TTI)
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
				}
			}
			perCell[cell] = arrivals
		}(cell)
	}
	wg.Wait()
	rep := &LoadReport{Arrivals: make([]int, cfg.TTIs)}
	for _, arr := range perCell {
		for t, n := range arr {
			rep.Arrivals[t] += n
			rep.Offered += n
		}
	}
	return rep
}
