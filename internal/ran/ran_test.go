package ran

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"vransim/internal/core"
	"vransim/internal/simd"
	"vransim/internal/turbo"
)

func testConfig(w simd.Width) Config {
	cfg := DefaultConfig(w, core.StrategyAPCM)
	cfg.Cells = 2
	cfg.Workers = 2
	cfg.QueueDepth = 256
	cfg.MaxIters = 4
	cfg.Deadline = 30 * time.Second // correctness tests never race the clock
	cfg.BatchWindow = 2 * time.Millisecond
	cfg.AdmissionGuard = false
	return cfg
}

func mustPool(t testing.TB, k, n int, seed int64) *WordPool {
	t.Helper()
	pool, err := NewWordPool(k, n, 24, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

// TestConcurrentSubmitConservation floods the runtime from many
// goroutines and checks the accounting invariants: every offered block
// is exactly one of {delivered, dropped-with-cause, rejected}.
func TestConcurrentSubmitConservation(t *testing.T) {
	cfg := testConfig(simd.W256)
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool := mustPool(t, 40, 32, 1)

	const goroutines = 8
	const perG = 25
	var wg sync.WaitGroup
	var rejected sync.Map // goroutine -> count
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			rej := 0
			for i := 0; i < perG; i++ {
				w, _ := pool.Get(g*perG + i)
				if rt.Submit(g%cfg.Cells, g, pool.K, w) != Admitted {
					rej++
				}
			}
			rejected.Store(g, rej)
		}(g)
	}
	wg.Wait()
	s := rt.Stop()

	totalRej := 0
	rejected.Range(func(_, v interface{}) bool { totalRej += v.(int); return true })
	offered := uint64(goroutines * perG)
	if s.Accepted+s.Drops[DropBacklog]+s.Drops[DropAdmission] != offered {
		t.Errorf("offered %d != accepted %d + backlog %d + admission %d",
			offered, s.Accepted, s.Drops[DropBacklog], s.Drops[DropAdmission])
	}
	if s.Accepted != s.Delivered+s.Drops[DropExpired]+s.Drops[DropLate] {
		t.Errorf("accepted %d != delivered %d + expired %d + late %d",
			s.Accepted, s.Delivered, s.Drops[DropExpired], s.Drops[DropLate])
	}
	if uint64(totalRej) != s.Drops[DropBacklog]+s.Drops[DropAdmission] {
		t.Errorf("caller saw %d rejections, metrics say %d", totalRej, s.Drops[DropBacklog]+s.Drops[DropAdmission])
	}
	if s.Delivered == 0 {
		t.Error("nothing delivered under a 30s deadline")
	}
}

// TestDecodeMatchesSingleAndTruth is the end-to-end lane-independence
// property: blocks decoded through the batching runtime must be
// bit-identical to per-block single decoding — and, for noiseless
// words, to the encoded payloads.
func TestDecodeMatchesSingleAndTruth(t *testing.T) {
	cfg := testConfig(simd.W512)
	pool := mustPool(t, 64, 24, 2)

	var mu sync.Mutex
	got := make(map[*Block][]byte)
	cfg.OnDecoded = func(b *Block, bits []byte) {
		mu.Lock()
		got[b] = append([]byte(nil), bits...)
		mu.Unlock()
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	type want struct {
		word  *turbo.LLRWord
		truth []byte
	}
	wants := make([]want, pool.Len())
	for i := 0; i < pool.Len(); i++ {
		w, truth := pool.Get(i)
		wants[i] = want{w, truth}
		if a := rt.Submit(i%cfg.Cells, i, pool.K, w); a != Admitted {
			t.Fatalf("block %d not admitted: %v", i, a)
		}
	}
	s := rt.Stop()
	if s.Delivered != uint64(pool.Len()) {
		t.Fatalf("delivered %d of %d", s.Delivered, pool.Len())
	}

	// Reference: single-block SIMD decode at the same width/settings.
	c, err := turbo.NewCode(pool.K)
	if err != nil {
		t.Fatal(err)
	}
	single := make(map[*turbo.LLRWord][]byte)
	for _, w := range wants {
		mem := simd.NewMemory(32 << 20)
		e := simd.NewEngine(simd.W512, mem, nil)
		sd := turbo.NewSIMDDecoder(c)
		sd.MaxIters = cfg.MaxIters
		in := sd.PrepareInput(e, core.ByStrategy(cfg.Strategy), w.word)
		bits, _, err := sd.Decode(e, in)
		if err != nil {
			t.Fatal(err)
		}
		single[w.word] = bits
	}

	mu.Lock()
	defer mu.Unlock()
	checked := 0
	for b, bits := range got {
		ref := single[b.Word]
		if !bitsEqual(bits, ref) {
			t.Errorf("runtime decode differs from single-block decode")
		}
		for _, w := range wants {
			if w.word == b.Word && !bitsEqual(bits, w.truth) {
				t.Errorf("runtime decode differs from encoded truth")
			}
		}
		checked++
	}
	if checked != pool.Len() {
		t.Errorf("OnDecoded saw %d blocks, want %d", checked, pool.Len())
	}
}

// TestDeadlineDropsUnderOverload drives an expensive-K flood at one
// worker with a deadline far below the service capacity: the runtime
// must shed load (by any cause) rather than deliver everything late,
// and must never deliver more than it accepted.
func TestDeadlineDropsUnderOverload(t *testing.T) {
	cfg := testConfig(simd.W256)
	cfg.Workers = 1
	cfg.QueueDepth = 8
	cfg.Deadline = 2 * time.Millisecond
	cfg.BatchWindow = 100 * time.Microsecond
	cfg.AdmissionGuard = true
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool := mustPool(t, 512, 16, 3)
	const offered = 300
	for i := 0; i < offered; i++ {
		w, _ := pool.Get(i)
		rt.Submit(i%cfg.Cells, i, pool.K, w)
	}
	s := rt.Stop()
	if s.Dropped() == 0 {
		t.Fatalf("no drops under 150x overload (delivered=%d accepted=%d)", s.Delivered, s.Accepted)
	}
	if s.Delivered+s.Dropped() != offered {
		t.Errorf("delivered %d + dropped %d != offered %d", s.Delivered, s.Dropped(), offered)
	}
	if s.Delivered > s.Accepted {
		t.Errorf("delivered %d > accepted %d", s.Delivered, s.Accepted)
	}
}

// TestGracefulShutdown checks Stop semantics: pending admitted work is
// drained (not leaked), repeated Stop is safe, and Submit after Stop is
// rejected.
func TestGracefulShutdown(t *testing.T) {
	cfg := testConfig(simd.W512)
	cfg.BatchWindow = time.Hour // nothing flushes on its own...
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool := mustPool(t, 40, 7, 4)
	for i := 0; i < pool.Len(); i++ {
		w, _ := pool.Get(i)
		if a := rt.Submit(0, i, pool.K, w); a != Admitted {
			t.Fatalf("block %d not admitted: %v", i, a)
		}
	}
	s := rt.Stop() // ...so Stop must force the partial batches out.
	if s.Delivered+s.Drops[DropExpired]+s.Drops[DropLate] != uint64(pool.Len()) {
		t.Errorf("shutdown leaked blocks: delivered %d, expired %d, late %d of %d",
			s.Delivered, s.Drops[DropExpired], s.Drops[DropLate], pool.Len())
	}
	if s.Delivered != uint64(pool.Len()) {
		t.Errorf("delivered %d of %d under infinite deadline", s.Delivered, pool.Len())
	}
	s2 := rt.Stop()
	if s2.Delivered != s.Delivered {
		t.Error("second Stop changed the snapshot")
	}
	w, _ := pool.Get(0)
	if a := rt.Submit(0, 0, pool.K, w); a != RejectedStopped {
		t.Errorf("Submit after Stop returned %v", a)
	}
}

// TestSaturatingLoadFillsLanes floods a W512 build and checks the lane
// batcher actually fills registers: occupancy must clear the 75% bar
// the serving layer is designed around.
func TestSaturatingLoadFillsLanes(t *testing.T) {
	cfg := testConfig(simd.W512)
	cfg.Cells = 4
	cfg.Workers = 2
	cfg.QueueDepth = 1024
	cfg.BatchWindow = 20 * time.Millisecond
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool := mustPool(t, 40, 64, 5)
	const offered = 480
	for i := 0; i < offered; i++ {
		w, _ := pool.Get(i)
		for rt.Submit(i%cfg.Cells, i, pool.K, w) == RejectedBacklog {
			time.Sleep(50 * time.Microsecond)
		}
	}
	s := rt.Stop()
	if s.LaneOccupancy <= 0.75 {
		t.Errorf("lane occupancy %.2f under saturating load, want > 0.75 (batches=%d)",
			s.LaneOccupancy, s.Batches)
	}
	if s.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
}

func bitsEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
