package ran

import "runtime"

// allocSampleEvery is the worker-side sampling period for the
// vran_decode_allocs_per_op gauge: one in every N batch decodes is
// bracketed by heap-allocation counter reads. The counter is
// process-wide, so a sample is an upper bound on the decode's own
// allocations (other goroutines' allocations land in it too), but at a
// 1/64 duty cycle the read cost is negligible and a pooled decoder's
// steady-state signal — single digits per op instead of hundreds — is
// unmistakable.
const allocSampleEvery = 64

// allocSampler brackets a region with cumulative heap-object counter
// reads. runtime.ReadMemStats (not runtime/metrics.Read) because only
// the former flushes per-P stat caches — metrics.Read can report a
// zero delta across a region that allocated a handful of objects. The
// flush is a brief stop-the-world, which the 1/64 duty cycle amortizes.
// The MemStats scratch lives in the struct so begin/end themselves
// allocate nothing.
type allocSampler struct {
	ms    runtime.MemStats
	start uint64
}

func (s *allocSampler) begin() {
	runtime.ReadMemStats(&s.ms)
	s.start = s.ms.Mallocs
}

// end returns the number of heap objects allocated process-wide since
// begin.
func (s *allocSampler) end() uint64 {
	runtime.ReadMemStats(&s.ms)
	return s.ms.Mallocs - s.start
}
