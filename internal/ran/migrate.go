package ran

import (
	"fmt"
	"time"

	"vransim/internal/phy"
	"vransim/internal/turbo"
)

// This file is the runtime side of cell drain-and-migrate: the shard
// coordinator moves a cell between two live runtimes without losing a
// single in-flight block or HARQ soft buffer.
//
// Protocol, from this runtime's point of view (the source):
//
//  1. DrainCell seals the cell — new submissions bounce with
//     RejectedSealed — and marks it migrating, which makes the
//     dispatcher's sweep divert the cell's blocks into the migration
//     queue instead of the decode path.
//  2. Blocks already past the sweep (batcher, workers) finish normally:
//     delivered, dropped, or CRC-failed into the retry queue, where the
//     next sweep diverts them. The drain loop waits until the migration
//     queue holds every non-terminal block of the cell.
//  3. The drained blocks are un-accepted (the target re-accepts them,
//     so the fleet ledger counts each exactly once) and returned with
//     the cell's exported HARQ soft buffers. The cell stays sealed.
//
// ImportCell is the target side: inject the soft buffers, re-accept and
// re-enqueue the blocks under fresh deadlines, unseal the cell.

// MigratedBlock is one in-flight block leaving a runtime.
type MigratedBlock struct {
	UE, Proc, K int
	// Attempt is the block's HARQ attempt counter.
	Attempt int
	// Word is the block's current soft input (a combined snapshot for
	// retries); Tx is the originally submitted reference word the HARQ
	// path regenerates retransmissions from.
	Word, Tx *turbo.LLRWord
}

// CellState is everything a cell owns inside a runtime: its in-flight
// blocks and HARQ soft buffers.
type CellState struct {
	Cell    int
	Blocks  []MigratedBlock
	Buffers []phy.ProcState
}

// Seal closes a cell for new submissions without draining it — the
// coordinator uses it to fence traffic while a migration handshake is
// in flight. Sealing an already-sealed cell is a no-op.
func (r *Runtime) Seal(cell int) {
	if cell >= 0 && cell < r.cfg.Cells {
		r.sealed[cell].Store(true)
	}
}

// Sealed reports whether a cell currently rejects submissions.
func (r *Runtime) Sealed(cell int) bool {
	return cell >= 0 && cell < r.cfg.Cells && r.sealed[cell].Load()
}

// DrainCell seals cell and extracts its complete state: every
// non-terminal block (wherever it was — queued, batching, decoding,
// awaiting retry) and every HARQ soft buffer. Blocks that reach a
// terminal outcome while the drain converges are counted normally on
// this runtime; everything else leaves with the state. At most one
// drain runs at a time. On timeout the drain aborts: the cell unseals
// and its blocks re-enter the decode path.
func (r *Runtime) DrainCell(cell int, timeout time.Duration) (*CellState, error) {
	if cell < 0 || cell >= r.cfg.Cells {
		return nil, fmt.Errorf("ran: drain of unknown cell %d", cell)
	}
	if r.stopped.Load() {
		return nil, fmt.Errorf("ran: drain during shutdown")
	}
	if !r.migrating.CompareAndSwap(-1, int64(cell)) {
		return nil, fmt.Errorf("ran: a migration is already in progress")
	}
	r.sealed[cell].Store(true)
	r.kick()
	deadline := time.Now().Add(timeout)
	for {
		// Read inflight before the queue depth: with the cell sealed the
		// accepted count is frozen, so inflight only overestimates and
		// the equality below is reached exactly when every non-terminal
		// block sits in the migration queue.
		in := r.met.inflight(cell)
		if uint64(r.migq.depth()) >= in {
			break
		}
		if time.Now().After(deadline) {
			r.abortDrain(cell)
			return nil, fmt.Errorf("ran: drain of cell %d timed out with %d blocks in flight", cell, in)
		}
		r.kick()
		time.Sleep(100 * time.Microsecond)
	}
	blocks := r.migq.drain()
	r.migrating.Store(-1)
	st := &CellState{Cell: cell}
	for _, b := range blocks {
		r.met.unaccept(cell, b.Class)
		st.Blocks = append(st.Blocks, MigratedBlock{
			UE: b.UE, Proc: b.Process, K: b.K, Attempt: b.Attempt,
			Word: b.Word, Tx: b.tx,
		})
	}
	if r.harq != nil {
		st.Buffers = r.harq.ExportCell(cell)
	}
	return st, nil
}

// abortDrain puts a timed-out drain's blocks back into the decode path
// and unseals the cell.
func (r *Runtime) abortDrain(cell int) {
	r.migrating.Store(-1)
	for _, b := range r.migq.drain() {
		if !r.retryq.offer(b) {
			r.met.drop(b.Cell, b.Class, DropShutdown)
			r.recordSpan(b, time.Now(), 0, 0, "migrate_shutdown")
			r.harqRelease(b)
		}
	}
	r.sealed[cell].Store(false)
	r.kick()
}

// ImportCell installs a drained cell's state on this runtime: HARQ soft
// buffers are injected, blocks are re-accepted and re-enqueued under
// fresh arrival stamps and deadlines (a migrated block is re-scheduled,
// and cross-process clocks make the original stamps meaningless), and
// the cell is unsealed. Returns how many blocks re-entered the decode
// path; a block the cell queue cannot hold is accounted as a backlog
// drop, so conservation stays exact even under an overloaded target.
func (r *Runtime) ImportCell(st *CellState) (int, error) {
	if st.Cell < 0 || st.Cell >= r.cfg.Cells {
		return 0, fmt.Errorf("ran: import of unknown cell %d", st.Cell)
	}
	if r.stopped.Load() {
		return 0, fmt.Errorf("ran: import during shutdown")
	}
	if r.harq != nil {
		for _, b := range st.Buffers {
			r.harq.Inject(st.Cell, b)
		}
	}
	now := time.Now()
	class := r.cfg.SLA.ClassOf(st.Cell)
	n := 0
	for _, mb := range st.Blocks {
		b := &Block{
			Cell: st.Cell, UE: mb.UE, Process: mb.Proc, K: mb.K, Class: class,
			Word: mb.Word, tx: mb.Tx, Attempt: mb.Attempt,
			Arrived:    now,
			Deadline:   now.Add(r.classDeadline(class)),
			hopArrived: now,
		}
		r.met.accept(st.Cell, class)
		if !r.queues[r.qi(st.Cell, class)].offer(b) {
			r.met.drop(st.Cell, class, DropBacklog)
			r.harqRelease(b)
			continue
		}
		n++
	}
	r.sealed[st.Cell].Store(false)
	r.kick()
	return n, nil
}
