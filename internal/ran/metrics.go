package ran

import (
	"math"
	"sync/atomic"
	"time"

	"vransim/internal/telemetry"
)

// DropCause enumerates why a block failed to be delivered.
type DropCause int

// Drop causes, in pipeline order: backlog (ingress queue full),
// admission (deadline infeasible on arrival), expired (deadline passed
// while queued or batching), late (decoded, but after the deadline),
// harq (CRC failed and the retry budget was exhausted, or a combine
// was rejected), shutdown (a requeued HARQ retry could not be decoded
// because the runtime was stopping), shed (the class-aware overload
// controller rejected an eMBB arrival at the door to protect URLLC —
// a pre-admission drop, like backlog and admission).
const (
	DropBacklog DropCause = iota
	DropAdmission
	DropExpired
	DropLate
	DropHARQ
	DropShutdown
	DropShed
	numDropCauses
)

// String names the cause.
func (c DropCause) String() string {
	switch c {
	case DropBacklog:
		return "backlog"
	case DropAdmission:
		return "admission"
	case DropExpired:
		return "expired"
	case DropLate:
		return "late"
	case DropHARQ:
		return "harq"
	case DropShutdown:
		return "shutdown"
	case DropShed:
		return "shed"
	}
	return "unknown"
}

// cellCounters is the per-cell slice of the metrics, all atomics so the
// hot path never takes a lock.
type cellCounters struct {
	accepted  atomic.Uint64
	delivered atomic.Uint64
	drops     [numDropCauses]atomic.Uint64
	bits      atomic.Uint64 // delivered information bits
}

// classCounters is the per-SLA-class view: the same ledger as a cell's,
// plus the class's own delivered-latency histogram so URLLC p99 is
// never diluted by eMBB deliveries.
type classCounters struct {
	accepted  atomic.Uint64
	delivered atomic.Uint64
	drops     [numDropCauses]atomic.Uint64
	latency   telemetry.Hist
}

// Metrics is the runtime's atomic-counter metrics layer. All methods
// are safe for concurrent use from any number of goroutines.
type Metrics struct {
	start   time.Time
	cells   []cellCounters
	classes [NumClasses]classCounters

	// steals counts worker pulls of a URLLC batch while eMBB batches
	// were waiting — the work-stealing priority bypass in action.
	steals atomic.Uint64

	laneSlotsUsed  atomic.Uint64 // lane groups carrying a real block
	laneSlotsTotal atomic.Uint64 // lane groups available across batches
	batches        atomic.Uint64

	// decodeIters is the per-block iterations-to-converge histogram:
	// fixed buckets 1..7 plus an 8+ overflow. Per-block early-exit
	// masking makes this per block, not per batch — a batch whose blocks
	// froze at different iterations contributes to several buckets.
	decodeIters [numIterBuckets]atomic.Uint64

	// Packed-path lane accounting (only batches decoded through the
	// cross-block SoA path): real blocks over packed capacity is the
	// vran_decode_pack_fill gauge.
	packSlotsUsed  atomic.Uint64
	packSlotsTotal atomic.Uint64

	decodedBlocks atomic.Uint64
	decodeBusyNs  atomic.Int64

	// Sampled heap-allocation accounting for the steady-state gauge:
	// every allocSampleEvery-th worker decode contributes one sample of
	// (decodes observed, heap objects allocated across them).
	allocSampleOps  atomic.Uint64
	allocSampleObjs atomic.Uint64

	// Program-cache counters, aggregated across workers by per-batch
	// deltas (each worker's BatchDecoder keeps its own ProgramStats).
	progHits      atomic.Uint64
	progMisses    atomic.Uint64
	progCompiles  atomic.Uint64
	progCompileNs atomic.Int64
	compiledPlans atomic.Int64 // signed: eviction shrinks it

	// Scheduling-pass counters: decodes served by a port-scheduled
	// program, plans holding a scheduled program, plans installed from
	// a tuner cache (and warm-start attempts that failed), and the
	// latest cost-model steady-segment IPC pair any worker reported
	// (stored as float bits).
	schedHits      atomic.Uint64
	scheduledPlans atomic.Int64 // signed: eviction shrinks it
	warmPlans      atomic.Uint64
	warmFailures   atomic.Uint64
	simIPCBefore   atomic.Uint64
	simIPCAfter    atomic.Uint64

	// HARQ/degradation counters: CRC-failed decodes, retransmissions
	// requeued, blocks recovered by a combined retry, and batches
	// decoded under a clamped iteration budget.
	crcFailures     atomic.Uint64
	harqRetries     atomic.Uint64
	harqRecovered   atomic.Uint64
	degradedBatches atomic.Uint64

	// latency is the delivered-block end-to-end latency histogram
	// (telemetry.Hist: lock-free log-bucketed, ≤12.5 % relative error on
	// reconstructed percentiles).
	latency telemetry.Hist
}

// NewMetrics builds a metrics layer for nCells cells.
func NewMetrics(nCells int) *Metrics {
	return &Metrics{start: time.Now(), cells: make([]cellCounters, nCells)}
}

func (m *Metrics) accept(cell int, class Class) {
	m.cells[cell].accepted.Add(1)
	m.classes[class].accepted.Add(1)
}

func (m *Metrics) drop(cell int, class Class, cause DropCause) {
	m.cells[cell].drops[cause].Add(1)
	m.classes[class].drops[cause].Add(1)
}

// unaccept removes one block from a cell's accepted count — the export
// side of a migration. The block is re-accepted on the target runtime,
// so the fleet-wide ledger counts it exactly once.
func (m *Metrics) unaccept(cell int, class Class) {
	m.cells[cell].accepted.Add(^uint64(0))
	m.classes[class].accepted.Add(^uint64(0))
}

// inflight estimates a cell's non-terminal block count (accepted minus
// delivered and drops). Terminal counters are read before accepted, so
// with a sealed cell (accepted frozen) the estimate never undercounts —
// the drain loop's convergence rests on that.
func (m *Metrics) inflight(cell int) uint64 {
	c := &m.cells[cell]
	term := c.delivered.Load()
	for d := DropCause(0); d < numDropCauses; d++ {
		term += c.drops[d].Load()
	}
	acc := c.accepted.Load()
	if acc <= term {
		return 0
	}
	return acc - term
}

func (m *Metrics) deliver(cell int, class Class, bits int, latency time.Duration) {
	c := &m.cells[cell]
	c.delivered.Add(1)
	c.bits.Add(uint64(bits))
	m.latency.Observe(latency)
	cc := &m.classes[class]
	cc.delivered.Add(1)
	cc.latency.Observe(latency)
}

func (m *Metrics) crcFail()       { m.crcFailures.Add(1) }
func (m *Metrics) harqRetry()     { m.harqRetries.Add(1) }
func (m *Metrics) harqRecover()   { m.harqRecovered.Add(1) }
func (m *Metrics) degradedBatch() { m.degradedBatches.Add(1) }

func (m *Metrics) allocSample(objs uint64) {
	m.allocSampleOps.Add(1)
	m.allocSampleObjs.Add(objs)
}

// programDelta folds one worker's program-cache counter movement since
// its last report into the runtime-wide totals.
func (m *Metrics) programDelta(hits, misses, compiles uint64, compileNs int64, plans int) {
	m.progHits.Add(hits)
	m.progMisses.Add(misses)
	m.progCompiles.Add(compiles)
	m.progCompileNs.Add(compileNs)
	m.compiledPlans.Add(int64(plans))
}

// scheduleDelta folds one worker's scheduling-pass counter movement
// into the runtime-wide totals. The simulated-IPC pair is a
// last-writer-wins gauge (workers of one runtime share width, strategy
// and plan grid, so their per-plan cost-model scores agree).
func (m *Metrics) scheduleDelta(schedHits uint64, scheduledPlans int, warmPlans uint64, simBefore, simAfter float64) {
	m.schedHits.Add(schedHits)
	m.scheduledPlans.Add(int64(scheduledPlans))
	m.warmPlans.Add(warmPlans)
	if simBefore > 0 {
		m.simIPCBefore.Store(math.Float64bits(simBefore))
	}
	if simAfter > 0 {
		m.simIPCAfter.Store(math.Float64bits(simAfter))
	}
}

// warmStartFailed counts a worker whose tuner-cache warm start did not
// complete (the worker still serves, compiling in-process).
func (m *Metrics) warmStartFailed() { m.warmFailures.Add(1) }

func (m *Metrics) batchDone(used, lanes int, busy time.Duration) {
	m.batches.Add(1)
	m.laneSlotsUsed.Add(uint64(used))
	m.laneSlotsTotal.Add(uint64(lanes))
	m.decodedBlocks.Add(uint64(used))
	m.decodeBusyNs.Add(busy.Nanoseconds())
}

// numIterBuckets sizes the iterations histogram: buckets 1..7 and 8+.
const numIterBuckets = 8

// observeIters folds one batch's per-block iterations-to-converge into
// the histogram.
func (m *Metrics) observeIters(itersB []int) {
	for _, it := range itersB {
		b := it - 1
		if b < 0 {
			b = 0
		}
		if b >= numIterBuckets {
			b = numIterBuckets - 1
		}
		m.decodeIters[b].Add(1)
	}
}

// packedBatch accounts one batch decoded through the packed path.
func (m *Metrics) packedBatch(used, lanes int) {
	m.packSlotsUsed.Add(uint64(used))
	m.packSlotsTotal.Add(uint64(lanes))
}

// CellSnapshot is one cell's view in a Snapshot.
type CellSnapshot struct {
	Accepted   uint64
	Delivered  uint64
	Drops      [numDropCauses]uint64
	QueueDepth int
	Mbps       float64
}

// Dropped totals the cell's drops across causes.
func (c CellSnapshot) Dropped() uint64 {
	var n uint64
	for _, d := range c.Drops {
		n += d
	}
	return n
}

// ClassSnapshot is one SLA class's view in a Snapshot: the class
// ledger, its aggregate queue backlog, and its own latency percentiles
// (plus the raw histogram buckets, so shard.Aggregate can reconstruct
// correct fleet-wide per-class percentiles).
type ClassSnapshot struct {
	Accepted   uint64
	Delivered  uint64
	Drops      [numDropCauses]uint64
	QueueDepth int

	LatencyP50 time.Duration
	LatencyP90 time.Duration
	LatencyP99 time.Duration

	LatencyBuckets []uint64
}

// Dropped totals the class's drops across causes.
func (c ClassSnapshot) Dropped() uint64 {
	var n uint64
	for _, d := range c.Drops {
		n += d
	}
	return n
}

// Snapshot is a consistent-enough point-in-time view of the metrics
// (individual counters are read atomically; cross-counter skew is at
// most one in-flight block).
type Snapshot struct {
	Elapsed time.Duration
	Cells   []CellSnapshot

	Accepted  uint64
	Delivered uint64
	Drops     [numDropCauses]uint64

	Batches       uint64
	DecodedBlocks uint64
	// LaneOccupancy is the fraction of register lane groups that carried
	// a real block (1.0 = every decode used the full width).
	LaneOccupancy float64
	// DecodeIters is the per-block iterations-to-converge histogram
	// (buckets 1..7 and 8+): per-block early-exit masking records each
	// block's own latch iteration, not the batch total.
	DecodeIters [numIterBuckets]uint64
	// PackFill is the fraction of packed lane slots that carried a real
	// block across batches decoded through the cross-block SoA path
	// (-1 until the first packed decode).
	PackFill float64
	// AvgDecodeUs is the mean per-block decode cost in microseconds.
	AvgDecodeUs float64
	// DecodeAllocsPerOp is the sampled mean of heap objects allocated per
	// batch decode (process-wide counter bracketing ~1/64 of decodes, so
	// an approximate upper bound). Near zero on a warmed-up worker; -1
	// when no sample has been taken yet.
	DecodeAllocsPerOp float64
	// WorkerUtilization is decode busy time over workers*elapsed.
	WorkerUtilization float64
	// GoodputMbps is delivered information bits over elapsed time.
	GoodputMbps float64

	// Program-cache view (the trace-replay compiler in
	// internal/simd/program): decodes served by compiled replay vs the
	// interpreter, program compilations and their cumulative cost, and
	// how many cached plans currently hold a program across workers.
	ProgramHits     uint64
	ProgramMisses   uint64
	ProgramCompiles uint64
	CompileSeconds  float64
	CompiledPlans   int
	// CompiledRatio is ProgramHits over all compile-eligible decodes
	// (hits+misses); 0 until the first decode.
	CompiledRatio float64

	// Scheduling-pass view (the port-aware scheduler and the vrantune
	// warm-start path): decodes served by a scheduled program, the
	// scheduled-over-all ratio, plans holding a scheduled program,
	// plans installed from a tuner cache, failed warm starts, and the
	// cost-model steady-segment IPC of the cached plans before/after
	// scheduling (0 until a scheduled plan exists).
	SchedHits      uint64
	ScheduledRatio float64
	ScheduledPlans int
	WarmPlans      uint64
	WarmFailures   uint64
	SimIPCBefore   float64
	SimIPCAfter    float64

	// HARQ retransmission view: CRC-failed decodes, retries requeued,
	// blocks recovered by a soft-combined retry, combine/eviction
	// counts and live soft buffers from the process set, and the
	// current retry backlog.
	CRCFailures   uint64
	HARQRetries   uint64
	HARQRecovered uint64
	HARQCombines  uint64
	HARQEvictions uint64
	HARQBuffers   int
	RetryDepth    int

	// Graceful-degradation view: the current iteration-clamp level
	// (0 = full budget) and how many batches decoded under a clamp.
	DegradeLevel    int
	DegradedBatches uint64

	// SLA-class view: per-class ledgers with their own latency
	// percentiles, the worker steal count (URLLC batches taken while
	// eMBB batches waited), the shed ladder's current level, and how
	// many workers are reserved for URLLC-only service.
	Classes         [NumClasses]ClassSnapshot
	Steals          uint64
	ShedLevel       int
	ReservedWorkers int

	// Predict holds one row per cell predictor; nil when the predictor
	// is not armed.
	Predict []PredictSnapshot

	LatencyP50 time.Duration
	LatencyP90 time.Duration
	LatencyP99 time.Duration

	// LatencyBuckets is the raw delivered-latency histogram (trimmed
	// telemetry.Hist bucket counters). Percentiles do not compose
	// across runtimes, bucket counts do — shard.Aggregate merges these
	// to reconstruct correct fleet-wide percentiles.
	LatencyBuckets []uint64
}

// Dropped totals drops across cells and causes.
func (s *Snapshot) Dropped() uint64 {
	var n uint64
	for _, d := range s.Drops {
		n += d
	}
	return n
}

// DropsByCause renders the drop breakdown as a name->count map.
func (s *Snapshot) DropsByCause() map[string]uint64 {
	out := make(map[string]uint64, int(numDropCauses))
	for c := DropCause(0); c < numDropCauses; c++ {
		out[c.String()] = s.Drops[c]
	}
	return out
}

// snapshot assembles the exported view. queueDepths (per cell),
// classDepths (per class) and workers come from the runtime (the
// metrics layer itself has no queue handle).
func (m *Metrics) snapshot(queueDepths []int, classDepths [NumClasses]int, workers int) *Snapshot {
	s := &Snapshot{
		Elapsed: time.Since(m.start),
		Cells:   make([]CellSnapshot, len(m.cells)),
	}
	elapsedUs := float64(s.Elapsed.Nanoseconds()) / 1e3
	var totalBits uint64
	for i := range m.cells {
		c := &m.cells[i]
		cs := CellSnapshot{
			Accepted:  c.accepted.Load(),
			Delivered: c.delivered.Load(),
		}
		for d := DropCause(0); d < numDropCauses; d++ {
			cs.Drops[d] = c.drops[d].Load()
			s.Drops[d] += cs.Drops[d]
		}
		if i < len(queueDepths) {
			cs.QueueDepth = queueDepths[i]
		}
		bits := c.bits.Load()
		totalBits += bits
		if elapsedUs > 0 {
			cs.Mbps = float64(bits) / elapsedUs
		}
		s.Accepted += cs.Accepted
		s.Delivered += cs.Delivered
		s.Cells[i] = cs
	}
	if elapsedUs > 0 {
		s.GoodputMbps = float64(totalBits) / elapsedUs
	}
	s.Batches = m.batches.Load()
	s.DecodedBlocks = m.decodedBlocks.Load()
	if tot := m.laneSlotsTotal.Load(); tot > 0 {
		s.LaneOccupancy = float64(m.laneSlotsUsed.Load()) / float64(tot)
	}
	for i := range s.DecodeIters {
		s.DecodeIters[i] = m.decodeIters[i].Load()
	}
	if tot := m.packSlotsTotal.Load(); tot > 0 {
		s.PackFill = float64(m.packSlotsUsed.Load()) / float64(tot)
	} else {
		s.PackFill = -1
	}
	if s.DecodedBlocks > 0 {
		s.AvgDecodeUs = float64(m.decodeBusyNs.Load()) / 1e3 / float64(s.DecodedBlocks)
	}
	if ops := m.allocSampleOps.Load(); ops > 0 {
		s.DecodeAllocsPerOp = float64(m.allocSampleObjs.Load()) / float64(ops)
	} else {
		s.DecodeAllocsPerOp = -1
	}
	if workers > 0 && s.Elapsed > 0 {
		s.WorkerUtilization = float64(m.decodeBusyNs.Load()) / (float64(workers) * float64(s.Elapsed.Nanoseconds()))
	}
	s.ProgramHits = m.progHits.Load()
	s.ProgramMisses = m.progMisses.Load()
	s.ProgramCompiles = m.progCompiles.Load()
	s.CompileSeconds = float64(m.progCompileNs.Load()) / 1e9
	s.CompiledPlans = int(m.compiledPlans.Load())
	if tot := s.ProgramHits + s.ProgramMisses; tot > 0 {
		s.CompiledRatio = float64(s.ProgramHits) / float64(tot)
	}
	s.SchedHits = m.schedHits.Load()
	s.ScheduledPlans = int(m.scheduledPlans.Load())
	s.WarmPlans = m.warmPlans.Load()
	s.WarmFailures = m.warmFailures.Load()
	s.SimIPCBefore = math.Float64frombits(m.simIPCBefore.Load())
	s.SimIPCAfter = math.Float64frombits(m.simIPCAfter.Load())
	if tot := s.ProgramHits + s.ProgramMisses; tot > 0 {
		s.ScheduledRatio = float64(s.SchedHits) / float64(tot)
	}
	s.CRCFailures = m.crcFailures.Load()
	s.HARQRetries = m.harqRetries.Load()
	s.HARQRecovered = m.harqRecovered.Load()
	s.DegradedBatches = m.degradedBatches.Load()
	s.LatencyP50 = m.latency.Percentile(0.50)
	s.LatencyP90 = m.latency.Percentile(0.90)
	s.LatencyP99 = m.latency.Percentile(0.99)
	s.LatencyBuckets = m.latency.Buckets()
	for c := Class(0); c < NumClasses; c++ {
		cc := &m.classes[c]
		ks := ClassSnapshot{
			Accepted:   cc.accepted.Load(),
			Delivered:  cc.delivered.Load(),
			QueueDepth: classDepths[c],
		}
		for d := DropCause(0); d < numDropCauses; d++ {
			ks.Drops[d] = cc.drops[d].Load()
		}
		ks.LatencyP50 = cc.latency.Percentile(0.50)
		ks.LatencyP90 = cc.latency.Percentile(0.90)
		ks.LatencyP99 = cc.latency.Percentile(0.99)
		ks.LatencyBuckets = cc.latency.Buckets()
		s.Classes[c] = ks
	}
	s.Steals = m.steals.Load()
	return s
}
