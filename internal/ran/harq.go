package ran

import (
	"sync"
	"time"

	"vransim/internal/telemetry"
	"vransim/internal/turbo"
)

// HARQConfig shapes the runtime's retransmission path. A decode whose
// CRC check fails (Config.CheckCRC, or a chaos-forced failure) is not
// dropped: its received word is chase-combined into the (cell, UE,
// process) soft buffer, a retransmission is received, and the combined
// word is re-enqueued for another decode — up to MaxRetries times, each
// retry under a fresh per-transmission deadline. Exhausting the budget
// (or a combine rejection) terminates the block as a DropHARQ.
type HARQConfig struct {
	// MaxRetries bounds the retransmissions after the first attempt.
	// 0 disables the retry path entirely: CRC failures drop immediately.
	MaxRetries int
	// Processes is the HARQ process count per (cell, UE); process ids
	// wrap modulo it (LTE FDD: 8). Default 8.
	Processes int
	// BufferCap bounds the live soft buffers across all processes
	// (default Cells*QueueDepth); beyond it the least-recently-combined
	// buffer is evicted and its block's recovery rests on later
	// retransmissions alone.
	BufferCap int
}

// withDefaults fills zero fields.
func (h HARQConfig) withDefaults(cells, queueDepth int) HARQConfig {
	if h.Processes <= 0 {
		h.Processes = 8
	}
	if h.BufferCap <= 0 {
		h.BufferCap = cells * queueDepth
	}
	return h
}

// retryQueue carries CRC-failed blocks from the workers back to the
// dispatcher. It is unbounded (its occupancy is already bounded by
// MaxRetries times the in-flight block count) so the requeue never
// blocks a worker, and it closes exactly once — at Stop, after the
// workers have drained — so every block is either decoded again or
// visible to the shutdown reconciliation. An offer against the closed
// queue fails, and the caller accounts the block as a shutdown drop.
type retryQueue struct {
	mu     sync.Mutex
	buf    []*Block
	closed bool
}

// offer enqueues b unless the queue is closed.
func (q *retryQueue) offer(b *Block) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.buf = append(q.buf, b)
	return true
}

// drain removes and returns all queued retries, stamping dequeue like a
// cell queue drain.
func (q *retryQueue) drain() []*Block {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.buf) == 0 {
		return nil
	}
	out := q.buf
	q.buf = nil
	now := time.Now()
	for _, b := range out {
		b.dequeued = now
	}
	return out
}

// depth reports the current retry backlog.
func (q *retryQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf)
}

// closeAndDrain marks the queue closed and returns whatever was still
// enqueued — the shutdown reconciliation path.
func (q *retryQueue) closeAndDrain() []*Block {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	out := q.buf
	q.buf = nil
	return out
}

// harqRelease frees the block's soft buffer after a terminal outcome
// (delivered or dropped for any cause).
func (r *Runtime) harqRelease(b *Block) {
	if r.harq != nil {
		r.harq.Release(b.Cell, b.UE, b.Process)
	}
}

// retryOrDrop is the worker-side failure path: called for a block whose
// decode finished in deadline but failed its CRC check. It either
// re-enqueues a soft-combined retransmission or terminates the block
// with a drop — exactly one of the two, so block accounting stays
// conserved.
func (r *Runtime) retryOrDrop(b *Block, now time.Time, busy time.Duration, iters int) {
	if r.harq == nil || b.Attempt >= r.cfg.HARQ.MaxRetries {
		r.met.drop(b.Cell, b.Class, DropHARQ)
		r.recordSpan(b, now, busy, iters, "harq_exhausted")
		r.harqRelease(b)
		return
	}
	if r.stopped.Load() {
		// The dispatcher is (or is about to be) gone; a requeued block
		// would never be decoded. Terminate it visibly instead.
		r.met.drop(b.Cell, b.Class, DropShutdown)
		r.recordSpan(b, now, busy, iters, "harq_shutdown")
		r.harqRelease(b)
		return
	}
	// Deadline-aware backoff: the retry lives under a fresh
	// per-transmission deadline; if that budget cannot even cover the
	// batch window plus one measured decode, requeuing is hopeless work.
	if r.cfg.AdmissionGuard {
		if need := r.cfg.BatchWindow + time.Duration(r.estDecodeNs.Load()); r.classDeadline(b.Class) < need {
			r.met.drop(b.Cell, b.Class, DropHARQ)
			r.recordSpan(b, now, busy, iters, "harq_exhausted")
			r.harqRelease(b)
			return
		}
	}
	// First failure: fold the first reception into the soft buffer.
	// Later attempts' words are combined snapshots — already in there.
	if b.Attempt == 0 {
		if _, _, err := r.harq.Combine(b.Cell, b.UE, b.Process, b.Word); err != nil {
			// K mismatch against a live buffer: reject, never corrupt.
			r.met.drop(b.Cell, b.Class, DropHARQ)
			r.recordSpan(b, now, busy, iters, "harq_reject")
			return
		}
	}
	// The retransmission: a fresh reception of the same transmitted
	// word (independently chaos-corrupted when an injector is armed),
	// chase-combined with every earlier reception of this block.
	rx := r.cfg.Chaos.CorruptWord(b.tx)
	comb, _, err := r.harq.Combine(b.Cell, b.UE, b.Process, rx)
	if err != nil {
		r.met.drop(b.Cell, b.Class, DropHARQ)
		r.recordSpan(b, now, busy, iters, "harq_reject")
		return
	}
	nb := &Block{
		Cell: b.Cell, UE: b.UE, Process: b.Process, K: b.K, Class: b.Class,
		Word: comb, tx: b.tx, Attempt: b.Attempt + 1,
		// Arrived stays the first transmission's arrival so delivered
		// latency covers the whole HARQ exchange; the deadline is per
		// transmission.
		Arrived:  b.Arrived,
		Deadline: now.Add(r.classDeadline(b.Class)),
		// The trace follows the retransmission: the failed attempt's
		// entire local dwell folds into the harq-retry stage, and the
		// successor's queue/batch/decode stages restart from its own
		// (monotonic, local) requeue instant — so the final span's
		// stages still sum to the block's end-to-end latency.
		traceID: b.traceID, traceParent: b.traceParent, origin: b.origin,
		acc:        b.acc,
		hopArrived: now,
	}
	prev := b.hopArrived
	if prev.IsZero() {
		prev = b.Arrived
	}
	nb.acc[telemetry.SpanHARQRetry] += clampDur(now.Sub(prev))
	if !r.retryq.offer(nb) {
		r.met.drop(b.Cell, b.Class, DropShutdown)
		r.recordSpan(b, now, busy, iters, "harq_shutdown")
		r.harqRelease(b)
		return
	}
	r.met.harqRetry()
	r.recordSpan(b, now, busy, iters, "harq_retry")
	r.kick()
}

// updateDegrade recomputes the graceful-degradation level from queue
// pressure: the worst cell (or retry) backlog fraction maps onto a
// ladder of iteration clamps the workers apply before the admission
// path starts shedding load. Levels: ≥50 % backlog → 1, ≥75 % → 2,
// ≥90 % → 3, clamped so the effective budget never drops below one
// iteration. Called by the dispatcher each sweep; lock cost is one
// mutex acquire per queue, which the sweep pays anyway.
func (r *Runtime) updateDegrade() {
	if r.cfg.MaxIters <= 1 {
		return
	}
	worst := 0.0
	for _, q := range r.queues {
		if f := float64(q.depth()) / float64(r.cfg.QueueDepth); f > worst {
			worst = f
		}
	}
	if f := float64(r.retryq.depth()) / float64(r.cfg.QueueDepth); f > worst {
		worst = f
	}
	r.degrade.Store(int32(r.degradeLadder(worst)))
	// Class-aware runtimes track a second level from the URLLC queues
	// alone. The global level above rises whenever ANY queue backs up —
	// during an eMBB burst that is every dwell — and clamping URLLC's
	// iteration budget because eMBB queues are full trades URLLC CRC
	// failures (and their HARQ retry-chain latency) for capacity that
	// shedding eMBB should reclaim instead. URLLC batches therefore
	// clamp only on their own class's backlog; eMBB keeps the global
	// signal (giving up eMBB iterations because URLLC is backed up is
	// the right direction).
	if r.slaActive {
		worstU := 0.0
		for cell := 0; cell < r.cfg.Cells; cell++ {
			if f := float64(r.queues[r.qi(cell, ClassURLLC)].depth()) / float64(r.cfg.QueueDepth); f > worstU {
				worstU = f
			}
		}
		r.degradeU.Store(int32(r.degradeLadder(worstU)))
	}
}

// degradeLadder maps a worst backlog fraction to an iteration-clamp
// level, capped so at least one iteration always remains.
func (r *Runtime) degradeLadder(worst float64) int {
	lvl := 0
	switch {
	case worst >= 0.9:
		lvl = 3
	case worst >= 0.75:
		lvl = 2
	case worst >= 0.5:
		lvl = 1
	}
	if maxLvl := r.cfg.MaxIters - 1; lvl > maxLvl {
		lvl = maxLvl
	}
	return lvl
}

// checkBlock runs the post-decode acceptance check for one block:
// the configured CRC check first, then any chaos-forced failure.
func (r *Runtime) checkBlock(b *Block, bits []byte) bool {
	if r.cfg.CheckCRC != nil && !r.cfg.CheckCRC(b, bits) {
		return false
	}
	if r.cfg.Chaos.ForceCRCFail() {
		return false
	}
	return true
}

// Submitted returns the originally submitted (transmitted) word for
// this block — the pre-corruption reference CheckCRC implementations
// key truth lookups on (Word may be a chaos-corrupted copy or a
// HARQ-combined snapshot).
func (b *Block) Submitted() *turbo.LLRWord { return b.tx }
