package ran

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"vransim/internal/core"
	"vransim/internal/simd"
	"vransim/internal/telemetry"
)

// BenchmarkServeThroughput is the serving-layer perf baseline: goodput
// (Mbps of delivered information bits) and p99 latency versus worker
// count under a saturating flood. Future PRs regress against these
// numbers; the 1-vs-8 ratio is the scalability acceptance check.
func BenchmarkServeThroughput(b *testing.B) {
	pool, err := NewWordPool(104, 64, 24, rand.New(rand.NewSource(11)))
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := DefaultConfig(simd.W512, core.StrategyAPCM)
			cfg.Cells = 4
			cfg.Workers = workers
			cfg.QueueDepth = 512
			cfg.MaxIters = 2
			cfg.Deadline = time.Hour // throughput, not shedding
			cfg.BatchWindow = 5 * time.Millisecond
			cfg.AdmissionGuard = false
			rt, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				w, _ := pool.Get(i)
				for rt.Submit(i%cfg.Cells, i, pool.K, w) == RejectedBacklog {
					runtime.Gosched()
				}
			}
			s := rt.Stop()
			elapsed := time.Since(start)
			b.StopTimer()
			if s.Delivered != uint64(b.N) {
				b.Fatalf("delivered %d of %d", s.Delivered, b.N)
			}
			mbps := float64(s.Delivered) * float64(pool.K) / float64(elapsed.Microseconds())
			b.ReportMetric(mbps, "Mbps")
			b.ReportMetric(float64(s.LatencyP99.Microseconds()), "p99-µs")
			b.ReportMetric(s.LaneOccupancy*100, "lane-%")
		})
	}
}

// BenchmarkServeTracingOverhead measures the span tracer's cost on the
// saturated serving path: the same flood with tracing off and on. The
// telemetry acceptance bar is <5% goodput loss with the tracer mounted
// (ring 512, slowest-16 — the vranserve -admin defaults).
func BenchmarkServeTracingOverhead(b *testing.B) {
	pool, err := NewWordPool(104, 64, 24, rand.New(rand.NewSource(11)))
	if err != nil {
		b.Fatal(err)
	}
	for _, traced := range []bool{false, true} {
		name := "trace=off"
		if traced {
			name = "trace=on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := DefaultConfig(simd.W512, core.StrategyAPCM)
			cfg.Cells = 4
			cfg.Workers = 4
			cfg.QueueDepth = 512
			cfg.MaxIters = 2
			cfg.Deadline = time.Hour
			cfg.BatchWindow = 5 * time.Millisecond
			cfg.AdmissionGuard = false
			if traced {
				cfg.Tracer = telemetry.NewTracer(512, 16)
			}
			rt, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				w, _ := pool.Get(i)
				for rt.Submit(i%cfg.Cells, i, pool.K, w) == RejectedBacklog {
					runtime.Gosched()
				}
			}
			s := rt.Stop()
			elapsed := time.Since(start)
			b.StopTimer()
			if s.Delivered != uint64(b.N) {
				b.Fatalf("delivered %d of %d", s.Delivered, b.N)
			}
			if traced && cfg.Tracer.SpanCount() != uint64(b.N) {
				b.Fatalf("tracer recorded %d spans of %d", cfg.Tracer.SpanCount(), b.N)
			}
			mbps := float64(s.Delivered) * float64(pool.K) / float64(elapsed.Microseconds())
			b.ReportMetric(mbps, "Mbps")
		})
	}
}
