package ran

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"vransim/internal/core"
	"vransim/internal/simd"
)

// fuzzPools caches one word pool per block size so the fuzzer does not
// pay the turbo encoder on every iteration.
var (
	fuzzPoolMu sync.Mutex
	fuzzPools  = map[int]*WordPool{}
)

func fuzzPool(t testing.TB, k int) *WordPool {
	fuzzPoolMu.Lock()
	defer fuzzPoolMu.Unlock()
	if p, ok := fuzzPools[k]; ok {
		return p
	}
	p, err := NewWordPool(k, 8, 24, rand.New(rand.NewSource(int64(k))))
	if err != nil {
		t.Fatal(err)
	}
	fuzzPools[k] = p
	return p
}

// fuzzKs are the block sizes the fuzzer cycles through — small enough
// to decode fast, spanning distinct trellis shapes.
var fuzzKs = [...]int{40, 64, 104}

// FuzzAdmission drives Runtime.Submit with fuzzer-chosen class maps,
// deadlines, block sizes and arrival patterns, and asserts the
// properties no input may break:
//
//   - the conservation ledger holds per class and in total: every
//     offer is admitted or visibly rejected, every admitted block ends
//     delivered or in a counted drop, and the per-class ledgers tile
//     the totals;
//   - no class starves: all accepted work reaches a terminal state
//     within a generous settle budget — a stuck queue or a batcher
//     that never serves one class fails here;
//   - nothing is left behind after Stop (queues, retry path).
//
// Each step byte encodes one submission burst: cell, HARQ process,
// burst size and an optional sub-TTI arrival gap.
func FuzzAdmission(f *testing.F) {
	f.Add(byte(0b01), uint16(3000), uint16(1000), byte(0), []byte{3, 1, 4, 1, 5, 9, 2, 6})
	f.Add(byte(0b10), uint16(500), uint16(0), byte(0x80), []byte{0xff, 0x00, 0x7f, 0x08, 0x88})
	f.Add(byte(0b11), uint16(1), uint16(1), byte(0xc1), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add(byte(0b00), uint16(60000), uint16(30000), byte(0x42), []byte{0x10, 0x20, 0x30, 0x40})
	f.Fuzz(func(t *testing.T, classSpec byte, deadlineUs, urllcUs uint16, mode byte, steps []byte) {
		if len(steps) > 64 {
			steps = steps[:64]
		}
		const cells = 3
		classes := make([]Class, cells)
		for c := 0; c < cells; c++ {
			if classSpec&(1<<c) != 0 {
				classes[c] = ClassURLLC
			}
		}
		k := fuzzKs[int(mode&0x3f)%len(fuzzKs)]
		pool := fuzzPool(t, k)

		cfg := DefaultConfig(simd.W512, core.StrategyAPCM)
		cfg.Cells = cells
		cfg.Workers = 2
		cfg.QueueDepth = 8 // small: the backlog reject path must fire under fuzz
		cfg.MaxIters = 4
		cfg.BatchWindow = 200 * time.Microsecond
		// Deadlines down to 1µs are legal inputs: hopeless blocks must be
		// rejected or expired, never lost.
		cfg.Deadline = time.Duration(deadlineUs) * time.Microsecond
		if cfg.Deadline <= 0 {
			cfg.Deadline = time.Microsecond
		}
		cfg.AdmissionGuard = mode&0x80 != 0
		cfg.CheckCRC = pool.CheckCRC()
		cfg.SLA = SLAConfig{
			Classes:       classes,
			URLLCDeadline: time.Duration(urllcUs) * time.Microsecond,
		}
		cfg.Predict = PredictConfig{Enabled: mode&0x40 != 0, Window: 500 * time.Microsecond}

		rt, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var admitted, rejected [NumClasses]uint64
		var ghosts uint64 // out-of-range cells: rejected outside the ledger
		idx := 0
		for _, b := range steps {
			cell := int(b & 0x07) // 0-7: cells 3-7 exercise the range guard
			n := 1 + int(b>>6)    // burst of 1-4 blocks
			for j := 0; j < n; j++ {
				w, _ := pool.Get(idx)
				verdict := rt.SubmitProcess(cell, idx%4, idx, k, w)
				idx++
				if cell >= cells {
					if verdict != RejectedStopped {
						t.Fatalf("out-of-range cell %d: verdict %v", cell, verdict)
					}
					ghosts++
					continue
				}
				switch verdict {
				case Admitted:
					admitted[classes[cell]]++
				default:
					rejected[classes[cell]]++
				}
			}
			if b&0x08 != 0 { // sub-TTI arrival gap
				time.Sleep(time.Duration(b&0x07) * 20 * time.Microsecond)
			}
		}

		// No class starves: every accepted block must reach a terminal
		// state without Stop's shutdown sweep helping it along.
		settleBy := time.Now().Add(10 * time.Second)
		settled := false
		for time.Now().Before(settleBy) {
			s := rt.Snapshot()
			term := s.Delivered + s.Drops[DropExpired] + s.Drops[DropLate] +
				s.Drops[DropHARQ] + s.Drops[DropShutdown]
			if term >= s.Accepted && s.RetryDepth == 0 {
				settled = true
				break
			}
			time.Sleep(time.Millisecond)
		}
		s := rt.Stop()
		if !settled {
			t.Errorf("accepted work never settled: %d accepted, %d delivered, drops %v",
				s.Accepted, s.Delivered, s.DropsByCause())
		}

		// Conservation, per class and in total.
		var accSum, delSum, preSum uint64
		for c := Class(0); c < NumClasses; c++ {
			ks := &s.Classes[c]
			accSum += ks.Accepted
			delSum += ks.Delivered
			if ks.Accepted != admitted[c] {
				t.Errorf("class %s: accepted %d, Submit admitted %d", c, ks.Accepted, admitted[c])
			}
			pre := ks.Drops[DropBacklog] + ks.Drops[DropAdmission] + ks.Drops[DropShed]
			preSum += pre
			if pre != rejected[c] {
				t.Errorf("class %s: ledger rejects %d, Submit rejected %d", c, pre, rejected[c])
			}
			post := ks.Drops[DropExpired] + ks.Drops[DropLate] + ks.Drops[DropHARQ] + ks.Drops[DropShutdown]
			if ks.Accepted != ks.Delivered+post {
				t.Errorf("class %s accounting leak: accepted %d != delivered %d + post drops %d",
					c, ks.Accepted, ks.Delivered, post)
			}
		}
		if accSum != s.Accepted || delSum != s.Delivered {
			t.Errorf("class ledgers do not tile totals: accepted %d/%d, delivered %d/%d",
				accSum, s.Accepted, delSum, s.Delivered)
		}
		if offered := uint64(idx); offered != accSum+preSum+ghosts {
			t.Errorf("offered %d != admitted %d + rejected %d + out-of-range %d",
				offered, accSum, preSum, ghosts)
		}
		if s.RetryDepth != 0 {
			t.Errorf("retry queue depth %d after stop", s.RetryDepth)
		}
		for i, c := range s.Cells {
			if c.QueueDepth != 0 {
				t.Errorf("cell %d queue depth %d after stop", i, c.QueueDepth)
			}
		}
	})
}
