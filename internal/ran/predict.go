package ran

import (
	"math"
	"sync"
	"time"
)

// This file is the MMPP-informed burst predictor: a two-state arrival
// rate estimator that watches one cell's observed arrival stream and
// decides — ahead of any queue filling — whether the cell is inside an
// ON (burst) dwell of the Markov-modulated process the traffic
// generator models (transport.BurstyProcess). The shed ladder (sla.go)
// consults it so eMBB shedding starts when a burst begins, not when the
// backlog already crossed a threshold.
//
// Mechanism: arrivals are counted into fixed windows (one TTI by
// default). Each closed window feeds two EWMAs — a fast one tracking
// the instantaneous rate and a slow one tracking the baseline (idle)
// rate; the slow EWMA is frozen while a burst is declared so a long ON
// dwell cannot erode its own detection threshold. The state flips to
// burst when the fast rate exceeds OnFactor x the baseline for Confirm
// consecutive windows, and back when it falls under OffFactor x the
// baseline for Confirm windows — the two-sided hysteresis that keeps
// the estimator still on stationary Poisson input. While in a state,
// the state's own rate EWMA (RateOn / RateOff) converges toward the
// generating process's true per-state mean — the cross-check the unit
// tests run against transport.BurstyProcess ground truth.

// PredictConfig parameterizes the per-cell burst predictors.
type PredictConfig struct {
	// Enabled arms one predictor per cell; false leaves the shed ladder
	// purely reactive and emits no vran_predict_* families.
	Enabled bool
	// Window is the rate-estimation window (default 1ms — one LTE TTI).
	Window time.Duration
	// FastAlpha and SlowAlpha are the EWMA weights of the instantaneous
	// and baseline rate trackers (defaults 0.3 and 0.03).
	FastAlpha, SlowAlpha float64
	// OnFactor and OffFactor are the hysteresis thresholds: burst when
	// fast >= OnFactor x baseline, clear when fast <= OffFactor x
	// baseline (defaults 1.8 and 1.2; OnFactor must exceed OffFactor).
	OnFactor, OffFactor float64
	// MinRate floors the baseline used for thresholding (in blocks per
	// window) so a silent cell does not flag its first arrival as a
	// burst (default 1).
	MinRate float64
	// Confirm is how many consecutive windows must agree before the
	// state flips, in either direction (default 2).
	Confirm int
	// NoiseSigmas is the Poisson-noise guard on the up transition: the
	// fast rate must also clear the baseline by this many standard
	// deviations of the fast EWMA under Poisson(baseline) arrivals
	// (sigma = sqrt(base*a/(2-a))). Without it, a stationary stream
	// with a mean near MinRate sits only ~2 sigma under OnFactor x base
	// and would flip state on noise alone (default 4).
	NoiseSigmas float64
	// MaxCatchUp bounds how many empty windows one Observe call rolls
	// forward after a long silence (default 64).
	MaxCatchUp int
}

func (c PredictConfig) withDefaults() PredictConfig {
	if c.Window <= 0 {
		c.Window = time.Millisecond
	}
	if c.FastAlpha <= 0 || c.FastAlpha > 1 {
		c.FastAlpha = 0.3
	}
	if c.SlowAlpha <= 0 || c.SlowAlpha > 1 {
		c.SlowAlpha = 0.03
	}
	if c.OnFactor <= 1 {
		c.OnFactor = 1.8
	}
	if c.OffFactor <= 0 || c.OffFactor >= c.OnFactor {
		c.OffFactor = 1.2
		if c.OffFactor >= c.OnFactor {
			c.OffFactor = (1 + c.OnFactor) / 2
		}
	}
	if c.MinRate <= 0 {
		c.MinRate = 1
	}
	if c.Confirm <= 0 {
		c.Confirm = 2
	}
	if c.NoiseSigmas <= 0 {
		c.NoiseSigmas = 4
	}
	if c.MaxCatchUp <= 0 {
		c.MaxCatchUp = 64
	}
	return c
}

// Predictor is one cell's burst estimator. Safe for concurrent use;
// the runtime calls Observe from every Submit, the shed controller
// reads Burst/Rate from the dispatcher, and tests drive Tick directly
// with synthetic per-window counts.
type Predictor struct {
	mu  sync.Mutex
	cfg PredictConfig

	windowEnd time.Time
	pending   float64 // arrivals in the open window

	seeded          bool
	offWindows      uint64  // non-burst windows folded into slow
	fast, slow      float64 // EWMA rates, blocks per window
	rateOn, rateOff float64 // learned per-state rates, blocks per window
	onSeen, offSeen bool

	burst              bool
	upStreak, downHold int
	transitions        uint64
	windows            uint64
}

// NewPredictor builds a predictor with cfg's zero fields defaulted.
func NewPredictor(cfg PredictConfig) *Predictor {
	return &Predictor{cfg: cfg.withDefaults()}
}

// Observe records n arrivals at wall-clock instant now, closing (and
// scoring) any windows that have fully elapsed since the last call.
// A silent stretch longer than MaxCatchUp windows is truncated — the
// estimator re-anchors instead of replaying unbounded history.
func (p *Predictor) Observe(now time.Time, n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.windowEnd.IsZero() {
		p.windowEnd = now.Add(p.cfg.Window)
		p.pending = float64(n)
		return
	}
	rolled := 0
	for !now.Before(p.windowEnd) {
		p.tick(p.pending)
		p.pending = 0
		p.windowEnd = p.windowEnd.Add(p.cfg.Window)
		if rolled++; rolled >= p.cfg.MaxCatchUp {
			p.windowEnd = now.Add(p.cfg.Window)
			break
		}
	}
	p.pending += float64(n)
}

// Tick closes one full window carrying count arrivals — the test and
// simulation entry point, bypassing the wall clock.
func (p *Predictor) Tick(count int) {
	p.mu.Lock()
	p.tick(float64(count))
	p.mu.Unlock()
}

// tick folds one closed window into the estimator. Callers hold mu.
func (p *Predictor) tick(count float64) {
	p.windows++
	if !p.seeded {
		p.seeded = true
		p.offWindows = 1
		p.fast, p.slow = count, count
	} else {
		p.fast += p.cfg.FastAlpha * (count - p.fast)
		if !p.burst {
			// The baseline only learns outside bursts: a long ON dwell
			// must not drag the threshold up under itself. Two further
			// guards keep it honest:
			//  - warming: for the first 1/SlowAlpha windows the weight is
			//    1/n, so the baseline is the running mean and settles
			//    immediately instead of anchoring on the first window;
			//  - outlier damping: a window already over the up-threshold
			//    is probably an undeclared burst (detection lag), so it
			//    feeds the baseline at 1/8 weight rather than dragging
			//    the threshold up under the next dwell.
			p.offWindows++
			a := p.cfg.SlowAlpha
			if w := 1 / float64(p.offWindows); w > a {
				a = w
			}
			// Outlier bound: a single Poisson(base) window has std
			// sqrt(base), so only counts beyond both the burst factor
			// and NoiseSigmas single-sample deviations are damped —
			// ordinary high draws must keep feeding the baseline or a
			// stationary stream biases its own threshold down.
			guard := p.slow
			if guard < p.cfg.MinRate {
				guard = p.cfg.MinRate
			}
			cut := p.cfg.OnFactor * guard
			if c := guard + p.cfg.NoiseSigmas*math.Sqrt(guard); c > cut {
				cut = c
			}
			if count > cut {
				a = p.cfg.SlowAlpha / 8
			}
			p.slow += a * (count - p.slow)
		}
	}
	base := p.slow
	if base < p.cfg.MinRate {
		base = p.cfg.MinRate
	}
	if !p.burst {
		// EWMA std under Poisson(base): sqrt(base * a/(2-a)).
		sigma := math.Sqrt(base * p.cfg.FastAlpha / (2 - p.cfg.FastAlpha))
		if p.fast >= p.cfg.OnFactor*base && p.fast >= base+p.cfg.NoiseSigmas*sigma {
			if p.upStreak++; p.upStreak >= p.cfg.Confirm {
				p.burst = true
				p.transitions++
				p.upStreak, p.downHold = 0, 0
			}
		} else {
			p.upStreak = 0
		}
	} else {
		if p.fast <= p.cfg.OffFactor*base {
			if p.downHold++; p.downHold >= p.cfg.Confirm {
				p.burst = false
				p.transitions++
				p.upStreak, p.downHold = 0, 0
			}
		} else {
			p.downHold = 0
		}
	}
	// Per-state rate learning — the MMPP ON/OFF mean estimates.
	const stateAlpha = 0.1
	if p.burst {
		if !p.onSeen {
			p.onSeen, p.rateOn = true, count
		} else {
			p.rateOn += stateAlpha * (count - p.rateOn)
		}
	} else {
		if !p.offSeen {
			p.offSeen, p.rateOff = true, count
		} else {
			p.rateOff += stateAlpha * (count - p.rateOff)
		}
	}
}

// Burst reports whether the predictor currently declares an ON dwell.
func (p *Predictor) Burst() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.burst
}

// Rate returns the fast (near-term) arrival-rate estimate in blocks
// per second.
func (p *Predictor) Rate() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fast / p.cfg.Window.Seconds()
}

// PredictSnapshot is one cell predictor's exported state.
type PredictSnapshot struct {
	Cell int
	// Burst is the current state; Rate / RateOn / RateOff are the fast
	// estimate and the learned per-state means, in blocks per second.
	Burst                 bool
	Rate, RateOn, RateOff float64
	// Transitions counts state flips; Windows counts closed estimation
	// windows.
	Transitions, Windows uint64
}

// snapshot exports the predictor state for the metrics layer.
func (p *Predictor) snapshot(cell int) PredictSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	sec := p.cfg.Window.Seconds()
	return PredictSnapshot{
		Cell:        cell,
		Burst:       p.burst,
		Rate:        p.fast / sec,
		RateOn:      p.rateOn / sec,
		RateOff:     p.rateOff / sec,
		Transitions: p.transitions,
		Windows:     p.windows,
	}
}
