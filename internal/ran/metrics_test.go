package ran

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"vransim/internal/core"
	"vransim/internal/simd"
	"vransim/internal/telemetry"
)

func TestDropCauseNames(t *testing.T) {
	want := map[DropCause]string{
		DropBacklog: "backlog", DropAdmission: "admission",
		DropExpired: "expired", DropLate: "late",
		DropHARQ: "harq", DropShutdown: "shutdown",
	}
	for c, name := range want {
		if c.String() != name {
			t.Errorf("cause %d named %q, want %q", c, c.String(), name)
		}
	}
	if DropCause(99).String() != "unknown" {
		t.Error("out-of-range cause should name itself unknown")
	}
}

// TestSnapshotPercentileReconstruction feeds a known latency population
// through the delivery path and asserts the log-bucketed histogram
// reproduces its quantiles within the documented relative-error bound
// of one 1/8-octave sub-bucket (12.5 %).
func TestSnapshotPercentileReconstruction(t *testing.T) {
	m := NewMetrics(1)
	// 1..1000 µs uniform: p50=500µs, p90=900µs, p99=990µs.
	for i := 1; i <= 1000; i++ {
		m.deliver(0, ClassEMBB, 40, time.Duration(i)*time.Microsecond)
	}
	s := m.snapshot([]int{0}, [NumClasses]int{}, 1)
	check := func(name string, got, want time.Duration) {
		t.Helper()
		relErr := math.Abs(float64(got-want)) / float64(want)
		if relErr > 0.125 {
			t.Errorf("%s = %v, want %v within 12.5%% (rel err %.1f%%)", name, got, want, 100*relErr)
		}
	}
	check("p50", s.LatencyP50, 500*time.Microsecond)
	check("p90", s.LatencyP90, 900*time.Microsecond)
	check("p99", s.LatencyP99, 990*time.Microsecond)
}

// TestSnapshotPercentileOverflowBucket drives the histogram into its
// top bucket and asserts the index/value round-trip: a reconstructed
// percentile of an enormous latency must come back as the
// representative value of the bucket that latency indexes into.
func TestSnapshotPercentileOverflowBucket(t *testing.T) {
	m := NewMetrics(1)
	huge := time.Duration(math.MaxInt64)
	for i := 0; i < 10; i++ {
		m.deliver(0, ClassEMBB, 40, huge)
	}
	s := m.snapshot([]int{0}, [NumClasses]int{}, 1)
	idx := telemetry.HistIndex(huge.Nanoseconds())
	if idx >= telemetry.HistBuckets {
		t.Fatalf("index %d out of range", idx)
	}
	want := time.Duration(telemetry.HistValue(idx))
	if s.LatencyP99 != want {
		t.Errorf("overflow p99 = %v, want bucket representative %v (idx %d)", s.LatencyP99, want, idx)
	}
	// Round-trip: the representative value must land back in its bucket.
	if back := telemetry.HistIndex(telemetry.HistValue(idx)); back != idx {
		t.Errorf("HistIndex(HistValue(%d)) = %d, want %d", idx, back, idx)
	}
}

// TestDropsAcrossAllCauses exercises every DropCause through both the
// per-cell and aggregate views: CellSnapshot.Dropped must total its
// causes, Snapshot.DropsByCause must name every cause exactly once.
func TestDropsAcrossAllCauses(t *testing.T) {
	m := NewMetrics(2)
	// Cell 0 gets c+1 drops of cause c; cell 1 gets 1 each.
	for c := DropCause(0); c < numDropCauses; c++ {
		for n := 0; n <= int(c); n++ {
			m.drop(0, ClassEMBB, c)
		}
		m.drop(1, ClassEMBB, c)
	}
	s := m.snapshot([]int{0, 0}, [NumClasses]int{}, 1)

	n := uint64(numDropCauses)
	cell0 := n * (n + 1) / 2 // 1+2+...+numDropCauses
	if got := s.Cells[0].Dropped(); got != cell0 {
		t.Errorf("cell 0 dropped %d, want %d", got, cell0)
	}
	if got := s.Cells[1].Dropped(); got != n {
		t.Errorf("cell 1 dropped %d, want %d", got, n)
	}
	if got := s.Dropped(); got != cell0+n {
		t.Errorf("total dropped %d, want %d", got, cell0+n)
	}
	byCause := s.DropsByCause()
	if len(byCause) != int(numDropCauses) {
		t.Fatalf("DropsByCause has %d entries, want %d: %v", len(byCause), numDropCauses, byCause)
	}
	for c := DropCause(0); c < numDropCauses; c++ {
		want := uint64(c) + 1 + 1 // cell 0 (c+1) + cell 1 (1)
		if byCause[c.String()] != want {
			t.Errorf("cause %s = %d, want %d", c, byCause[c.String()], want)
		}
	}
}

func TestSnapshotAggregation(t *testing.T) {
	m := NewMetrics(2)
	m.accept(0, ClassEMBB)
	m.accept(0, ClassEMBB)
	m.accept(1, ClassEMBB)
	m.drop(0, ClassEMBB, DropBacklog)
	m.drop(1, ClassEMBB, DropExpired)
	m.deliver(0, ClassEMBB, 104, 2*time.Millisecond)
	m.deliver(1, ClassEMBB, 104, 4*time.Millisecond)
	m.batchDone(2, 4, 300*time.Microsecond)

	s := m.snapshot([]int{3, 0}, [NumClasses]int{}, 2)
	if s.Accepted != 3 || s.Delivered != 2 {
		t.Errorf("accepted=%d delivered=%d, want 3/2", s.Accepted, s.Delivered)
	}
	if s.Drops[DropBacklog] != 1 || s.Drops[DropExpired] != 1 {
		t.Errorf("drop counters wrong: %v", s.DropsByCause())
	}
	if s.Cells[0].QueueDepth != 3 || s.Cells[1].QueueDepth != 0 {
		t.Error("queue depths not threaded through")
	}
	if s.LaneOccupancy != 0.5 {
		t.Errorf("lane occupancy %.2f, want 0.5", s.LaneOccupancy)
	}
	if s.DecodedBlocks != 2 || s.Batches != 1 {
		t.Errorf("decoded=%d batches=%d, want 2/1", s.DecodedBlocks, s.Batches)
	}
	if s.AvgDecodeUs < 149 || s.AvgDecodeUs > 151 {
		t.Errorf("avg decode %.1fus, want ~150", s.AvgDecodeUs)
	}
	if s.GoodputMbps <= 0 {
		t.Error("goodput should be positive")
	}
	if s.Cells[0].Dropped() != 1 {
		t.Errorf("cell 0 dropped %d, want 1", s.Cells[0].Dropped())
	}
}

// TestSnapshotFamilies checks the exposition rendering: every cell and
// cause appears, and headline gauges carry the snapshot's values.
func TestSnapshotFamilies(t *testing.T) {
	m := NewMetrics(2)
	m.accept(0, ClassEMBB)
	m.deliver(0, ClassEMBB, 104, time.Millisecond)
	m.drop(1, ClassEMBB, DropLate)
	s := m.snapshot([]int{1, 2}, [NumClasses]int{}, 2)
	fams := s.Families()
	byName := map[string]telemetry.Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if f, ok := byName["vran_dropped_total"]; !ok {
		t.Fatal("missing vran_dropped_total")
	} else if len(f.Samples) != 2*int(numDropCauses) {
		t.Errorf("dropped family has %d samples, want %d", len(f.Samples), 2*int(numDropCauses))
	}
	if f, ok := byName["vran_latency_seconds"]; !ok || len(f.Samples) != 3 {
		t.Error("latency quantile family missing or wrong arity")
	}
	if f, ok := byName["vran_queue_depth"]; !ok {
		t.Fatal("missing vran_queue_depth")
	} else if f.Samples[1].Value != 2 {
		t.Errorf("cell 1 queue depth sample = %v, want 2", f.Samples[1].Value)
	}
}

// TestDecodeAllocsGauge: the sampled allocs/op gauge must read -1 (no
// sample) on a fresh metrics layer, average recorded samples, and reach
// the exposition as vran_decode_allocs_per_op.
func TestDecodeAllocsGauge(t *testing.T) {
	m := NewMetrics(1)
	if s := m.snapshot(nil, [NumClasses]int{}, 1); s.DecodeAllocsPerOp != -1 {
		t.Errorf("unsampled gauge = %v, want -1", s.DecodeAllocsPerOp)
	}
	m.allocSample(6)
	m.allocSample(2)
	s := m.snapshot(nil, [NumClasses]int{}, 1)
	if s.DecodeAllocsPerOp != 4 {
		t.Errorf("sampled gauge = %v, want 4", s.DecodeAllocsPerOp)
	}
	var found bool
	for _, f := range s.Families() {
		if f.Name == "vran_decode_allocs_per_op" {
			found = true
			if len(f.Samples) != 1 || f.Samples[0].Value != 4 {
				t.Errorf("family samples = %+v, want single value 4", f.Samples)
			}
		}
	}
	if !found {
		t.Error("vran_decode_allocs_per_op missing from exposition")
	}
}

// TestWorkerAllocsPerOpSteadyState drives enough batches through a
// one-worker runtime to hit several alloc samples; a warmed-up pooled
// decoder must keep the sampled upper bound in the low tens (the
// pre-refactor path measured hundreds per batch).
func TestWorkerAllocsPerOpSteadyState(t *testing.T) {
	const k = 104
	cfg := DefaultConfig(simd.W512, core.StrategyAPCM)
	cfg.Cells = 1
	cfg.Workers = 1
	cfg.QueueDepth = 512
	cfg.MaxIters = 2
	cfg.Deadline = time.Minute // no drops: every submit must decode
	cfg.AdmissionGuard = false
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewWordPool(k, 16, 24, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	lanes := rt.Lanes()
	for i := 0; i < 160*lanes; i++ {
		w, _ := pool.Get(i)
		if rt.Submit(0, i, k, w) != Admitted {
			t.Fatalf("submit %d rejected", i)
		}
		if i%lanes == lanes-1 {
			time.Sleep(50 * time.Microsecond) // let the batcher drain
		}
	}
	s := rt.Stop()
	if s.DecodeAllocsPerOp < 0 {
		t.Fatalf("no alloc sample taken across %d batches", s.Batches)
	}
	// The gauge brackets a process-wide counter, so the submitter, the
	// dispatcher and the GC all leak into it — the budget is deliberately
	// loose. It still catches the pre-plan-cache regime, where every
	// batch rebuilt its working set and each PermuteW allocated its index
	// scratch (thousands of objects per decode).
	if s.DecodeAllocsPerOp > 2000 {
		t.Errorf("sampled decode allocs/op = %.1f, want steady-state (<2000)", s.DecodeAllocsPerOp)
	}
}
