package ran

import (
	"testing"
	"time"
)

func TestHistogramPercentiles(t *testing.T) {
	var h latencyHist
	// 100 observations: 1..100 ms.
	for i := 1; i <= 100; i++ {
		h.observe(time.Duration(i) * time.Millisecond)
	}
	check := func(q float64, want time.Duration) {
		got := h.percentile(q)
		lo, hi := want*85/100, want*115/100
		if got < lo || got > hi {
			t.Errorf("p%.0f = %v, want %v +/- 15%%", q*100, got, want)
		}
	}
	check(0.50, 50*time.Millisecond)
	check(0.90, 90*time.Millisecond)
	check(0.99, 99*time.Millisecond)
}

func TestHistogramEmpty(t *testing.T) {
	var h latencyHist
	if h.percentile(0.99) != 0 {
		t.Error("empty histogram should report 0")
	}
}

func TestDropCauseNames(t *testing.T) {
	want := map[DropCause]string{
		DropBacklog: "backlog", DropAdmission: "admission",
		DropExpired: "expired", DropLate: "late",
	}
	for c, name := range want {
		if c.String() != name {
			t.Errorf("cause %d named %q, want %q", c, c.String(), name)
		}
	}
}

func TestSnapshotAggregation(t *testing.T) {
	m := NewMetrics(2)
	m.accept(0)
	m.accept(0)
	m.accept(1)
	m.drop(0, DropBacklog)
	m.drop(1, DropExpired)
	m.deliver(0, 104, 2*time.Millisecond)
	m.deliver(1, 104, 4*time.Millisecond)
	m.batchDone(2, 4, 300*time.Microsecond)

	s := m.snapshot([]int{3, 0}, 2)
	if s.Accepted != 3 || s.Delivered != 2 {
		t.Errorf("accepted=%d delivered=%d, want 3/2", s.Accepted, s.Delivered)
	}
	if s.Drops[DropBacklog] != 1 || s.Drops[DropExpired] != 1 {
		t.Errorf("drop counters wrong: %v", s.DropsByCause())
	}
	if s.Cells[0].QueueDepth != 3 || s.Cells[1].QueueDepth != 0 {
		t.Error("queue depths not threaded through")
	}
	if s.LaneOccupancy != 0.5 {
		t.Errorf("lane occupancy %.2f, want 0.5", s.LaneOccupancy)
	}
	if s.DecodedBlocks != 2 || s.Batches != 1 {
		t.Errorf("decoded=%d batches=%d, want 2/1", s.DecodedBlocks, s.Batches)
	}
	if s.AvgDecodeUs < 149 || s.AvgDecodeUs > 151 {
		t.Errorf("avg decode %.1fus, want ~150", s.AvgDecodeUs)
	}
	if s.GoodputMbps <= 0 {
		t.Error("goodput should be positive")
	}
	if s.Cells[0].Dropped() != 1 {
		t.Errorf("cell 0 dropped %d, want 1", s.Cells[0].Dropped())
	}
}
