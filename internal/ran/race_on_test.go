//go:build race

package ran

// raceEnabled reports whether this test binary was built with the race
// detector. The SLA soak's latency criteria scale with it: race
// instrumentation slows decode ~10× and saturates the CPU under burst
// load, so wall-clock percentiles measure detector contention on a
// race build, not the class policy.
const raceEnabled = true
