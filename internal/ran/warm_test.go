package ran

import (
	"testing"

	"vransim/internal/core"
	"vransim/internal/simd"
	"vransim/internal/tune"
)

// TestScheduledWarmStartServing is the serving-side warm-start
// property the CI tune-smoke job checks end to end: a runtime whose
// workers warm-start from a vrantune cache serves the tuned grid with
// ZERO in-process compilations, every decode lands on a scheduled
// program, and the simulated-IPC gauges report the cost-model
// improvement.
func TestScheduledWarmStartServing(t *testing.T) {
	const k = 40
	const mem = 16 << 20
	o := tune.Options{
		Width: simd.W128, Strategy: core.StrategyAPCM, MemBytes: mem,
		Ks: []int{k}, Packed: []bool{true}, MaxIters: 4, Seed: 1,
	}
	c, err := tune.Tune(o)
	if err != nil {
		t.Fatal(err)
	}

	cfg := testConfig(simd.W128)
	cfg.MemBytes = mem
	cfg.Schedule = true
	cfg.TuneCache = c
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool := mustPool(t, k, 32, 1)
	const blocks = 24
	for i := 0; i < blocks; i++ {
		w, _ := pool.Get(i)
		if got := rt.Submit(i%cfg.Cells, i, pool.K, w); got != Admitted {
			t.Fatalf("block %d not admitted: %v", i, got)
		}
	}
	s := rt.Stop()

	if s.Delivered != blocks {
		t.Fatalf("delivered %d of %d blocks", s.Delivered, blocks)
	}
	if s.ProgramCompiles != 0 {
		t.Errorf("warm-started workers compiled %d programs in-process, want 0", s.ProgramCompiles)
	}
	if s.ProgramMisses != 0 {
		t.Errorf("%d interpreter decodes, want 0 (every decode should hit a warm plan)", s.ProgramMisses)
	}
	if s.WarmFailures != 0 {
		t.Errorf("%d warm-start failures", s.WarmFailures)
	}
	if s.WarmPlans == 0 {
		t.Error("no plans installed from the tuner cache")
	}
	if s.SchedHits == 0 || s.SchedHits != s.ProgramHits {
		t.Errorf("sched hits %d, program hits %d — every warm decode should be scheduled", s.SchedHits, s.ProgramHits)
	}
	if s.ScheduledRatio != 1 {
		t.Errorf("scheduled ratio %.3f, want 1.0", s.ScheduledRatio)
	}
	if s.SimIPCAfter <= s.SimIPCBefore || s.SimIPCBefore == 0 {
		t.Errorf("simulated IPC gauges did not report an improvement: %.4f -> %.4f", s.SimIPCBefore, s.SimIPCAfter)
	}
}

// TestWarmStartMismatchFallsBack: a cache tuned for a different arena
// size must not install, the failure must be counted, and the runtime
// must still serve by compiling in-process.
func TestWarmStartMismatchFallsBack(t *testing.T) {
	const k = 40
	o := tune.Options{
		Width: simd.W128, Strategy: core.StrategyAPCM, MemBytes: 8 << 20,
		Ks: []int{k}, Packed: []bool{true}, MaxIters: 4, Seed: 1,
	}
	c, err := tune.Tune(o)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(simd.W128)
	cfg.MemBytes = 16 << 20 // deliberately different from the cache
	cfg.Schedule = true
	cfg.TuneCache = c
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool := mustPool(t, k, 8, 1)
	const blocks = 8
	for i := 0; i < blocks; i++ {
		w, _ := pool.Get(i)
		if got := rt.Submit(i%cfg.Cells, i, pool.K, w); got != Admitted {
			t.Fatalf("block %d not admitted: %v", i, got)
		}
	}
	s := rt.Stop()
	if s.Delivered != blocks {
		t.Fatalf("delivered %d of %d blocks", s.Delivered, blocks)
	}
	if s.WarmFailures == 0 {
		t.Error("mismatched cache did not count a warm-start failure")
	}
	if s.WarmPlans != 0 {
		t.Errorf("%d plans installed from a mismatched cache", s.WarmPlans)
	}
	if s.ProgramCompiles == 0 {
		t.Error("fallback workers never compiled in-process")
	}
}
