package l2

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalRLC: arbitrary bytes must never panic; accepted PDUs
// round-trip through Marshal.
func FuzzUnmarshalRLC(f *testing.F) {
	r := NewRLC(16)
	for _, s := range r.Segment([]byte("some sdu payload that segments")) {
		f.Add(s.Marshal())
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		seg, err := UnmarshalRLC(data)
		if err != nil {
			return
		}
		if !bytes.Equal(seg.Marshal(), data) {
			t.Fatal("accepted RLC PDU does not round-trip")
		}
	})
}

// FuzzParseTB: a MAC transport block parser fed arbitrary bit patterns
// must never panic and never return PDUs that overrun the block.
func FuzzParseTB(f *testing.F) {
	m := NewMAC(64)
	tb, _ := m.BuildTB([][]byte{bytes.Repeat([]byte{0xab}, 20)})
	f.Add(BitsToBytes(tb.Bits))
	f.Add([]byte{0x01, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		rx := NewMAC(len(data))
		pdus, err := rx.ParseTB(TransportBlock{Bits: BytesToBits(data), Bytes: len(data)})
		if err != nil {
			return
		}
		total := 0
		for _, p := range pdus {
			total += MACHeaderLen + len(p)
		}
		if total > len(data) {
			t.Fatalf("parsed PDUs (%d bytes with headers) overrun the %d-byte TB", total, len(data))
		}
	})
}
