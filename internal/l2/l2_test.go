package l2

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPDCPRoundTrip(t *testing.T) {
	p := &PDCP{}
	sdu := []byte("hello vran world")
	pdu := p.Encapsulate(sdu)
	if len(pdu) != PDCPHeaderLen+len(sdu) {
		t.Fatalf("PDU length %d", len(pdu))
	}
	got, sn, err := (&PDCP{}).Decapsulate(pdu)
	if err != nil {
		t.Fatal(err)
	}
	if sn != 0 || !bytes.Equal(got, sdu) {
		t.Error("PDCP roundtrip mismatch")
	}
	// Sequence numbers advance.
	pdu2 := p.Encapsulate(sdu)
	_, sn2, _ := (&PDCP{}).Decapsulate(pdu2)
	if sn2 != 1 {
		t.Errorf("second SN = %d, want 1", sn2)
	}
}

func TestPDCPDetectsCorruption(t *testing.T) {
	p := &PDCP{}
	pdu := p.Encapsulate([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	pdu[PDCPHeaderLen+3] ^= 0xff
	if _, _, err := (&PDCP{}).Decapsulate(pdu); err == nil {
		t.Error("corrupted payload accepted")
	}
	if _, _, err := (&PDCP{}).Decapsulate([]byte{1, 2}); err == nil {
		t.Error("short PDU accepted")
	}
}

func TestRLCSegmentationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tx := NewRLC(100)
	rx := NewRLC(100)
	for trial := 0; trial < 10; trial++ {
		sdu := make([]byte, rng.Intn(900)+1)
		rng.Read(sdu)
		segs := tx.Segment(sdu)
		var got []byte
		for i, s := range segs {
			// Serialize/deserialize each PDU on the way.
			parsed, err := UnmarshalRLC(s.Marshal())
			if err != nil {
				t.Fatal(err)
			}
			out := rx.Deliver(parsed)
			if i < len(segs)-1 && out != nil {
				t.Fatal("SDU delivered before final segment")
			}
			if i == len(segs)-1 {
				got = out
			}
		}
		if !bytes.Equal(got, sdu) {
			t.Fatalf("trial %d: reassembly mismatch", trial)
		}
	}
}

func TestRLCOutOfOrderReassembly(t *testing.T) {
	tx := NewRLC(10)
	rx := NewRLC(10)
	sdu := []byte("0123456789abcdefghijklmnop")
	segs := tx.Segment(sdu)
	if len(segs) < 3 {
		t.Fatalf("want >=3 segments, got %d", len(segs))
	}
	// Deliver in reverse order.
	var got []byte
	for i := len(segs) - 1; i >= 0; i-- {
		got = rx.Deliver(segs[i])
	}
	if !bytes.Equal(got, sdu) {
		t.Error("out-of-order reassembly failed")
	}
}

func TestRLCEmptySDU(t *testing.T) {
	tx := NewRLC(10)
	segs := tx.Segment(nil)
	if len(segs) != 1 || segs[0].Flags != rlcFlagFirst|rlcFlagLast {
		t.Error("empty SDU should produce one first+last segment")
	}
}

func TestMACBuildParseTB(t *testing.T) {
	m := NewMAC(256)
	pdus := [][]byte{
		bytes.Repeat([]byte{0xaa}, 50),
		bytes.Repeat([]byte{0xbb}, 60),
		bytes.Repeat([]byte{0xcc}, 200), // won't fit
	}
	tb, used := m.BuildTB(pdus)
	if used != 2 {
		t.Fatalf("packed %d PDUs, want 2", used)
	}
	if tb.Bytes != 256 || len(tb.Bits) != 256*8 {
		t.Fatalf("TB size %d bytes / %d bits", tb.Bytes, len(tb.Bits))
	}
	got, err := m.ParseTB(tb)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !bytes.Equal(got[0], pdus[0]) || !bytes.Equal(got[1], pdus[1]) {
		t.Error("TB parse mismatch")
	}
}

func TestMACGrantTooSmall(t *testing.T) {
	m := NewMAC(8)
	tb, used := m.BuildTB([][]byte{bytes.Repeat([]byte{1}, 50)})
	if used != 0 || tb.Bytes != 0 {
		t.Error("oversized PDU should not be packed")
	}
}

func TestMACHARQ(t *testing.T) {
	m := NewMAC(64)
	tb1, _ := m.BuildTB(nil)
	tb2, _ := m.BuildTB(nil)
	if tb1.HARQ == tb2.HARQ {
		t.Error("HARQ processes should rotate")
	}
	m.NotifyHARQ(tb1.HARQ, false)
	m.NotifyHARQ(tb1.HARQ, true)
	if m.Retx[tb1.HARQ] != 1 {
		t.Errorf("retx count %d, want 1", m.Retx[tb1.HARQ])
	}
}

func TestBitsBytesRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		bits := BytesToBits(data)
		if len(bits) != 8*len(data) {
			return false
		}
		return bytes.Equal(BitsToBytes(bits), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSchedulerRoundRobin(t *testing.T) {
	s := &Scheduler{UEs: 3, TBSBytes: 100}
	var order []int
	for i := 0; i < 6; i++ {
		ue, tbs := s.NextGrant()
		if tbs != 100 {
			t.Fatal("bad grant size")
		}
		order = append(order, ue)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order %v", order)
		}
	}
	empty := &Scheduler{}
	if ue, _ := empty.NextGrant(); ue != -1 {
		t.Error("empty scheduler should return -1")
	}
}
