// Package l2 implements the vRAN layer-2 stack the OAI testbed runs
// above the physical layer: PDCP (sequence numbering and header
// protection), RLC unacknowledged-mode segmentation/reassembly, and a
// MAC layer that sizes transport blocks, multiplexes logical channels
// and runs a round-robin scheduler with a HARQ-lite retransmission
// register. The paper's end-to-end latency figures (Figure 13) traverse
// this stack in both directions.
package l2

import (
	"encoding/binary"
	"fmt"

	"vransim/internal/simd"
)

// ---------------------------------------------------------------- PDCP

// PDCPHeaderLen is the octet length of the PDCP header used here: one
// flag octet plus a 16-bit sequence number plus a 16-bit checksum.
const PDCPHeaderLen = 5

// PDCP applies sequence numbering and a header checksum to IP packets
// (integrity protection stands in for ciphering; see DESIGN.md).
type PDCP struct {
	txSN uint16
	rxSN uint16
	// Eng, when set, receives a small scalar µop stream per PDU.
	Eng *simd.Engine
}

// pdcpChecksum is a 16-bit ones'-complement-style sum over the payload.
func pdcpChecksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return uint16(^sum)
}

// Encapsulate prepends a PDCP header to an SDU.
func (p *PDCP) Encapsulate(sdu []byte) []byte {
	pdu := make([]byte, PDCPHeaderLen+len(sdu))
	pdu[0] = 0x80 // data PDU
	binary.BigEndian.PutUint16(pdu[1:], p.txSN)
	binary.BigEndian.PutUint16(pdu[3:], pdcpChecksum(sdu))
	copy(pdu[PDCPHeaderLen:], sdu)
	p.txSN++
	p.emit(len(sdu))
	return pdu
}

// Decapsulate strips and verifies the PDCP header, returning the SDU and
// the received sequence number.
func (p *PDCP) Decapsulate(pdu []byte) ([]byte, uint16, error) {
	if len(pdu) < PDCPHeaderLen {
		return nil, 0, fmt.Errorf("l2: PDCP PDU too short (%d)", len(pdu))
	}
	if pdu[0] != 0x80 {
		return nil, 0, fmt.Errorf("l2: not a PDCP data PDU")
	}
	sn := binary.BigEndian.Uint16(pdu[1:])
	sdu := pdu[PDCPHeaderLen:]
	if pdcpChecksum(sdu) != binary.BigEndian.Uint16(pdu[3:]) {
		return nil, sn, fmt.Errorf("l2: PDCP checksum mismatch at SN %d", sn)
	}
	p.rxSN = sn
	p.emit(len(sdu))
	return sdu, sn, nil
}

func (p *PDCP) emit(n int) {
	if p.Eng == nil {
		return
	}
	words := n/8 + 2
	for i := 0; i < words; i++ {
		p.Eng.EmitScalarLoad("mov", int64(i*8), 8)
		p.Eng.EmitScalar("add", 1)
	}
	p.Eng.EmitScalarStore("mov", 0, 8)
}

// ----------------------------------------------------------------- RLC

// RLCHeaderLen is the octet length of the UM PDU header: a 16-bit SN,
// a 16-bit segment offset and a 16-bit flags/length field.
const RLCHeaderLen = 6

const (
	rlcFlagFirst = 0x8000
	rlcFlagLast  = 0x4000
)

// RLCSegment is one unacknowledged-mode PDU.
type RLCSegment struct {
	SN     uint16
	Offset uint16
	Flags  uint16
	Data   []byte
}

// RLC segments SDUs into PDUs of bounded size and reassembles them.
type RLC struct {
	// MaxPDU bounds the payload bytes per PDU (excluding header).
	MaxPDU int
	txSN   uint16

	pending map[uint16][]RLCSegment
}

// NewRLC builds an UM RLC entity with the given PDU payload bound.
func NewRLC(maxPDU int) *RLC {
	if maxPDU <= 0 {
		maxPDU = 1500
	}
	return &RLC{MaxPDU: maxPDU, pending: make(map[uint16][]RLCSegment)}
}

// Segment splits an SDU into PDUs sharing one sequence number.
func (r *RLC) Segment(sdu []byte) []RLCSegment {
	sn := r.txSN
	r.txSN++
	var segs []RLCSegment
	for off := 0; off < len(sdu) || off == 0; off += r.MaxPDU {
		end := off + r.MaxPDU
		if end > len(sdu) {
			end = len(sdu)
		}
		var flags uint16
		if off == 0 {
			flags |= rlcFlagFirst
		}
		if end == len(sdu) {
			flags |= rlcFlagLast
		}
		segs = append(segs, RLCSegment{
			SN: sn, Offset: uint16(off), Flags: flags,
			Data: append([]byte(nil), sdu[off:end]...),
		})
		if end == len(sdu) {
			break
		}
	}
	return segs
}

// Marshal serializes a PDU.
func (s RLCSegment) Marshal() []byte {
	out := make([]byte, RLCHeaderLen+len(s.Data))
	binary.BigEndian.PutUint16(out[0:], s.SN)
	binary.BigEndian.PutUint16(out[2:], s.Offset)
	binary.BigEndian.PutUint16(out[4:], s.Flags|uint16(len(s.Data))&0x3fff)
	copy(out[RLCHeaderLen:], s.Data)
	return out
}

// UnmarshalRLC parses a serialized PDU.
func UnmarshalRLC(b []byte) (RLCSegment, error) {
	if len(b) < RLCHeaderLen {
		return RLCSegment{}, fmt.Errorf("l2: RLC PDU too short")
	}
	fl := binary.BigEndian.Uint16(b[4:])
	n := int(fl & 0x3fff)
	if len(b) != RLCHeaderLen+n {
		return RLCSegment{}, fmt.Errorf("l2: RLC length field %d != payload %d", n, len(b)-RLCHeaderLen)
	}
	return RLCSegment{
		SN:     binary.BigEndian.Uint16(b[0:]),
		Offset: binary.BigEndian.Uint16(b[2:]),
		Flags:  fl & 0xc000,
		Data:   append([]byte(nil), b[RLCHeaderLen:]...),
	}, nil
}

// Deliver feeds a received PDU to the reassembler; when an SDU
// completes, it is returned (nil otherwise).
func (r *RLC) Deliver(seg RLCSegment) []byte {
	segs := append(r.pending[seg.SN], seg)
	r.pending[seg.SN] = segs
	// Complete when a Last segment is present and offsets tile the SDU.
	total := -1
	for _, s := range segs {
		if s.Flags&rlcFlagLast != 0 {
			total = int(s.Offset) + len(s.Data)
		}
	}
	if total < 0 {
		return nil
	}
	out := make([]byte, total)
	have := 0
	for _, s := range segs {
		copy(out[s.Offset:], s.Data)
		have += len(s.Data)
	}
	if have < total {
		return nil
	}
	delete(r.pending, seg.SN)
	return out
}

// ----------------------------------------------------------------- MAC

// MACHeaderLen is the octet length of the MAC subheader: LCID plus a
// 16-bit length.
const MACHeaderLen = 3

// TransportBlock is one MAC PDU handed to the PHY.
type TransportBlock struct {
	// Bits is the PDU as a bit slice (the PHY consumes bits).
	Bits []byte
	// Bytes is the octet length.
	Bytes int
	// HARQ is the process number the block was sent on.
	HARQ int
}

// MAC multiplexes RLC PDUs into transport blocks and tracks HARQ-lite
// state (retransmission counts per process).
type MAC struct {
	// TBSBytes is the transport block size the scheduler grants.
	TBSBytes int
	// Processes is the number of HARQ processes (LTE: 8).
	Processes int

	nextProc int
	// Retx counts retransmissions per process since the last reset.
	Retx []int
}

// NewMAC builds a MAC entity with the given grant size.
func NewMAC(tbsBytes int) *MAC {
	return &MAC{TBSBytes: tbsBytes, Processes: 8, Retx: make([]int, 8)}
}

// BuildTB packs as many queued RLC PDUs as fit into one transport block,
// returning the block and the PDUs consumed. Padding fills the grant.
func (m *MAC) BuildTB(queue [][]byte) (TransportBlock, int) {
	tb := make([]byte, 0, m.TBSBytes)
	used := 0
	for _, pdu := range queue {
		need := MACHeaderLen + len(pdu)
		if len(tb)+need > m.TBSBytes {
			break
		}
		hdr := make([]byte, MACHeaderLen)
		hdr[0] = 0x01 // LCID: DTCH
		binary.BigEndian.PutUint16(hdr[1:], uint16(len(pdu)))
		tb = append(tb, hdr...)
		tb = append(tb, pdu...)
		used++
	}
	if len(tb) == 0 && len(queue) > 0 {
		// Grant too small for the head-of-line PDU: signal by
		// consuming nothing; caller must resegment.
		return TransportBlock{Bytes: 0}, 0
	}
	// Padding subheader (LCID 0x1f) fills the remainder implicitly.
	for len(tb) < m.TBSBytes {
		tb = append(tb, 0)
	}
	proc := m.nextProc
	m.nextProc = (m.nextProc + 1) % m.Processes
	return TransportBlock{Bits: BytesToBits(tb), Bytes: len(tb), HARQ: proc}, used
}

// ParseTB extracts the RLC PDUs from a received transport block.
func (m *MAC) ParseTB(tb TransportBlock) ([][]byte, error) {
	b := BitsToBytes(tb.Bits)
	var pdus [][]byte
	for off := 0; off+MACHeaderLen <= len(b); {
		if b[off] != 0x01 {
			break // padding reached
		}
		n := int(binary.BigEndian.Uint16(b[off+1:]))
		if off+MACHeaderLen+n > len(b) {
			return nil, fmt.Errorf("l2: MAC subheader length %d overruns TB", n)
		}
		pdus = append(pdus, b[off+MACHeaderLen:off+MACHeaderLen+n])
		off += MACHeaderLen + n
	}
	return pdus, nil
}

// NotifyHARQ records a decode outcome for a process; failed blocks bump
// the retransmission counter.
func (m *MAC) NotifyHARQ(proc int, ok bool) {
	if proc >= 0 && proc < len(m.Retx) && !ok {
		m.Retx[proc]++
	}
}

// ------------------------------------------------------------- helpers

// BytesToBits expands octets MSB-first into a 0/1 slice.
func BytesToBits(b []byte) []byte {
	out := make([]byte, 0, len(b)*8)
	for _, x := range b {
		for i := 7; i >= 0; i-- {
			out = append(out, x>>uint(i)&1)
		}
	}
	return out
}

// BitsToBytes packs a 0/1 slice MSB-first into octets; trailing bits
// short of an octet are dropped.
func BitsToBytes(bits []byte) []byte {
	out := make([]byte, len(bits)/8)
	for i := range out {
		var x byte
		for j := 0; j < 8; j++ {
			x = x<<1 | bits[i*8+j]&1
		}
		out[i] = x
	}
	return out
}

// Scheduler grants transport blocks round-robin across UEs.
type Scheduler struct {
	// UEs is the number of attached users.
	UEs int
	// TBSBytes is the per-TTI grant.
	TBSBytes int
	next     int
}

// NextGrant returns the UE index scheduled this TTI and its grant.
func (s *Scheduler) NextGrant() (ue, tbsBytes int) {
	if s.UEs == 0 {
		return -1, 0
	}
	ue = s.next
	s.next = (s.next + 1) % s.UEs
	return ue, s.TBSBytes
}
