package trace

import (
	"testing"
	"testing/quick"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder(4)
	if r.Len() != 0 {
		t.Fatal("fresh recorder not empty")
	}
	i0 := r.Emit(Inst{Class: Load, Mnemonic: "mov", Bytes: 8, Deps: Deps3()})
	i1 := r.Emit(Inst{Class: Store, Mnemonic: "mov", Bytes: 8, Deps: Deps3(i0)})
	if i0 != 0 || i1 != 1 || r.Len() != 2 {
		t.Fatal("emit indices wrong")
	}
	if r.At(1).Deps[0] != 0 {
		t.Fatal("dependency lost")
	}
	if len(r.Slice(0, 2)) != 2 {
		t.Fatal("slice wrong")
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("reset failed")
	}
}

func TestDeps3(t *testing.T) {
	d := Deps3()
	if d != [3]int32{NoDep, NoDep, NoDep} {
		t.Errorf("empty deps = %v", d)
	}
	d = Deps3(5, -1, 7)
	if d[0] != 5 || d[1] != NoDep || d[2] != 7 {
		t.Errorf("deps = %v", d)
	}
	d = Deps3(1, 2, 3, 4) // extra ignored
	if d[2] != 3 {
		t.Errorf("deps = %v", d)
	}
}

func TestMixAccounting(t *testing.T) {
	insts := []Inst{
		{Class: Load, Bytes: 16},
		{Class: Store, Bytes: 2},
		{Class: Store, Bytes: 2},
		{Class: VecALU},
		{Class: Branch},
	}
	m := MixOf(insts)
	if m.Total != 5 || m.Count[Store] != 2 || m.LoadBytes != 16 || m.StoreBytes != 4 {
		t.Errorf("mix = %+v", m)
	}
	if f := m.Fraction(Store); f != 0.4 {
		t.Errorf("store fraction = %f", f)
	}
	if m.String() == "" {
		t.Error("empty mix string")
	}
	if (Mix{}).Fraction(Load) != 0 {
		t.Error("empty mix fraction should be 0")
	}
}

func TestClassString(t *testing.T) {
	names := map[Class]string{
		ScalarALU: "scalar-alu", VecALU: "vec-alu", VecShuffle: "vec-shuffle",
		Load: "load", Store: "store", Branch: "branch", Nop: "nop",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
	if Class(200).String() == "" {
		t.Error("out-of-range class should still format")
	}
}

func TestWindowRebasesDeps(t *testing.T) {
	insts := []Inst{
		{Class: Load, Deps: Deps3()},
		{Class: VecALU, Deps: Deps3(0)},
		{Class: VecALU, Deps: Deps3(1, 0)},
		{Class: Store, Deps: Deps3(2)},
	}
	w := Window(insts, 2, 4)
	if len(w) != 2 {
		t.Fatalf("window length %d", len(w))
	}
	// inst 2's deps (1, 0) both precede the window: dropped.
	if w[0].Deps[0] != NoDep || w[0].Deps[1] != NoDep {
		t.Errorf("pre-window deps not dropped: %v", w[0].Deps)
	}
	// inst 3's dep on 2 becomes 0.
	if w[1].Deps[0] != 0 {
		t.Errorf("in-window dep not rebased: %v", w[1].Deps)
	}
	// Original slice untouched.
	if insts[3].Deps[0] != 2 {
		t.Error("Window mutated its input")
	}
}

// Property: windowed deps always point inside the window and before the
// instruction itself.
func TestWindowProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			raw = []uint8{0}
		}
		insts := make([]Inst, len(raw)+2)
		for i := range insts {
			d := int(raw[i%len(raw)])%(i+1) - 1 // in [-1, i-1]
			insts[i] = Inst{Class: ScalarALU, Deps: Deps3(d)}
		}
		lo, hi := len(insts)/3, len(insts)
		w := Window(insts, lo, hi)
		for i := range w {
			for _, d := range w[i].Deps {
				if d != NoDep && (d < 0 || int(d) >= i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
