// Package trace records dynamic instruction (µop) traces produced by the
// SIMD engine and scalar models. A trace is the interface between the
// functional layer (internal/simd and everything built on it) and the
// timing layer (internal/uarch): the functional layer emits one Inst per
// executed operation, carrying its execution class, the registers it
// depends on (as indices of earlier trace entries) and, for memory
// operations, the byte address and width touched.
package trace

import "fmt"

// Class identifies which kind of execution resource an instruction needs.
// The mapping from Class to ports lives in internal/uarch; the paper's
// port model (its Figure 2) distinguishes scalar ALU, vector ALU, load and
// store resources.
type Class uint8

const (
	// ScalarALU is a general-purpose integer/float operation (ports 0-3
	// in the paper's model).
	ScalarALU Class = iota
	// VecALU is a SIMD calculation instruction such as padds, psubs,
	// pmax, vpand, vpor (ports 0-2).
	VecALU
	// VecShuffle is a SIMD permute/shuffle (ports 0-2, but modeled
	// separately so ablations can restrict it to a single port, as on
	// real Skylake where shuffles issue only on port 5).
	VecShuffle
	// Load is a memory read, scalar or vector (ports 4-5).
	Load
	// Store is a memory write, scalar or vector (ports 6-7).
	Store
	// Branch is a control-flow instruction; it occupies a scalar ALU
	// port and contributes to bad speculation through the configured
	// misprediction ratio.
	Branch
	// Nop retires without needing an execution port (e.g. register
	// moves eliminated at rename). It still consumes an issue slot.
	Nop
)

// NumClasses is the count of distinct instruction classes.
const NumClasses = int(Nop) + 1

var classNames = [NumClasses]string{
	"scalar-alu", "vec-alu", "vec-shuffle", "load", "store", "branch", "nop",
}

// String returns the lower-case name of the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// NoDep marks an unused dependency slot in Inst.Deps.
const NoDep int32 = -1

// Inst is one dynamic instruction in a trace.
//
// Deps holds up to three indices of earlier instructions in the same trace
// whose results this instruction consumes; unused slots are NoDep. Three
// slots cover every operation the engine emits (two register sources plus
// a memory or mask dependency).
type Inst struct {
	Class    Class
	Mnemonic string
	// Bytes is the number of data bytes moved for Load/Store classes
	// (used for register<->L1 bandwidth accounting); zero otherwise.
	Bytes int32
	// Addr is the byte address touched by Load/Store classes.
	Addr int64
	Deps [3]int32
}

// Recorder accumulates a dynamic trace. The zero value is ready to use.
type Recorder struct {
	insts []Inst
}

// NewRecorder returns a Recorder with capacity for n instructions.
func NewRecorder(n int) *Recorder {
	return &Recorder{insts: make([]Inst, 0, n)}
}

// Emit appends inst and returns its index in the trace.
func (r *Recorder) Emit(inst Inst) int {
	r.insts = append(r.insts, inst)
	return len(r.insts) - 1
}

// Len reports the number of recorded instructions.
func (r *Recorder) Len() int { return len(r.insts) }

// At returns the i-th instruction.
func (r *Recorder) At(i int) Inst { return r.insts[i] }

// Insts exposes the underlying slice; callers must not mutate it.
func (r *Recorder) Insts() []Inst { return r.insts }

// Reset discards all recorded instructions but keeps capacity.
func (r *Recorder) Reset() { r.insts = r.insts[:0] }

// Slice returns the instructions in [lo, hi).
func (r *Recorder) Slice(lo, hi int) []Inst { return r.insts[lo:hi] }

// Mix summarizes the instruction-class composition of a trace.
type Mix struct {
	Count      [NumClasses]int
	Total      int
	LoadBytes  int64
	StoreBytes int64
}

// MixOf computes the class mix of insts.
func MixOf(insts []Inst) Mix {
	var m Mix
	for i := range insts {
		in := &insts[i]
		m.Count[in.Class]++
		m.Total++
		switch in.Class {
		case Load:
			m.LoadBytes += int64(in.Bytes)
		case Store:
			m.StoreBytes += int64(in.Bytes)
		}
	}
	return m
}

// Fraction returns the share of instructions in class c, in [0,1].
func (m Mix) Fraction(c Class) float64 {
	if m.Total == 0 {
		return 0
	}
	return float64(m.Count[c]) / float64(m.Total)
}

// String renders the mix as "class=count" pairs for debugging.
func (m Mix) String() string {
	s := ""
	for c := 0; c < NumClasses; c++ {
		if m.Count[c] == 0 {
			continue
		}
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", Class(c), m.Count[c])
	}
	return s
}

// Window returns a copy of insts[lo:hi] with dependency indices rebased
// to the window: deps pointing before lo are dropped (treated as already
// satisfied). It lets a sub-trace — one pipeline stage, one decoder phase
// — be simulated in isolation for per-module attribution; boundary
// dependencies and warm-cache effects are forfeited, so windowed cycle
// counts are attribution estimates, not exact partitions of the full-run
// total.
func Window(insts []Inst, lo, hi int) []Inst {
	out := make([]Inst, hi-lo)
	for i := range out {
		in := insts[lo+i]
		for d := range in.Deps {
			if in.Deps[d] >= 0 {
				if r := in.Deps[d] - int32(lo); r >= 0 {
					in.Deps[d] = r
				} else {
					in.Deps[d] = NoDep
				}
			}
		}
		out[i] = in
	}
	return out
}

// Deps3 packs up to three dependency indices into the fixed array used by
// Inst, filling unused slots with NoDep.
func Deps3(deps ...int) [3]int32 {
	d := [3]int32{NoDep, NoDep, NoDep}
	for i, v := range deps {
		if i >= 3 {
			break
		}
		if v >= 0 {
			d[i] = int32(v)
		}
	}
	return d
}
