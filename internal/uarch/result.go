package uarch

import (
	"fmt"

	"vransim/internal/trace"
)

// TopDown holds Intel top-down pipeline-slot fractions. The four
// first-level categories sum to 1; backend bound is further split into
// core bound and memory bound (which sum to BackendBound).
type TopDown struct {
	Retiring      float64
	FrontendBound float64
	BadSpec       float64
	BackendBound  float64
	CoreBound     float64
	MemoryBound   float64
}

// String formats the breakdown as percentages.
func (t TopDown) String() string {
	return fmt.Sprintf("ret=%.1f%% fe=%.1f%% bs=%.1f%% be=%.1f%% (core=%.1f%% mem=%.1f%%)",
		100*t.Retiring, 100*t.FrontendBound, 100*t.BadSpec,
		100*t.BackendBound, 100*t.CoreBound, 100*t.MemoryBound)
}

// Result is the outcome of simulating one instruction trace.
type Result struct {
	// Cycles is the total simulated cycle count; Insts the number of
	// µops retired.
	Cycles int64
	Insts  int64

	// Slots is the total number of issue slots the top-down accounting
	// attributed while the trace was still being fetched — exactly
	// IssueWidth per accounting cycle, each slot in exactly one
	// category, so Retiring*Slots == Insts for a fully retired trace.
	Slots int64

	TopDown TopDown

	// PortBusy counts, per port, the cycles the port executed a µop.
	PortBusy [NumPorts]int64

	// LoadBytes / StoreBytes are total bytes moved between registers
	// and L1 by Load/Store µops.
	LoadBytes  int64
	StoreBytes int64

	// L1Hits etc. summarize the cache replay when a hierarchy was
	// attached.
	L1Hits, L1Misses int64
	L2Hits, L2Misses int64
	L3Hits, L3Misses int64

	// FrequencyGHz is copied from the config for time conversion.
	FrequencyGHz float64

	Mix trace.Mix
}

// IPC returns retired µops per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Insts) / float64(r.Cycles)
}

// Seconds converts the cycle count to wall-clock seconds at the
// configured frequency.
func (r Result) Seconds() float64 {
	if r.FrequencyGHz == 0 {
		return 0
	}
	return float64(r.Cycles) / (r.FrequencyGHz * 1e9)
}

// Microseconds is Seconds in µs.
func (r Result) Microseconds() float64 { return r.Seconds() * 1e6 }

// StoreBitsPerCycle is the average register->L1 store bandwidth, the
// metric behind the paper's Figure 8b and its "4X-16X" bandwidth claim.
func (r Result) StoreBitsPerCycle() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.StoreBytes*8) / float64(r.Cycles)
}

// BandwidthUtilization is StoreBitsPerCycle divided by the peak store
// bandwidth of one register width per cycle.
func (r Result) BandwidthUtilization(regBits int) float64 {
	if regBits == 0 {
		return 0
	}
	return r.StoreBitsPerCycle() / float64(regBits)
}

// PortUtilization returns the busy fraction of port p.
func (r Result) PortUtilization(p int) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.PortBusy[p]) / float64(r.Cycles)
}

// String gives a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("cycles=%d insts=%d ipc=%.2f %s bw=%.1f bits/cyc",
		r.Cycles, r.Insts, r.IPC(), r.TopDown.String(), r.StoreBitsPerCycle())
}
