package uarch

import (
	"testing"

	"vransim/internal/cache"
	"vransim/internal/trace"
)

// cleanConfig returns the paper's port model with the stochastic noise
// sources (frontend stalls, branch misprediction) disabled so tests can
// assert exact steady-state behaviour.
func cleanConfig() Config {
	cfg := SkylakeServer()
	cfg.FrontendStallFrac = 0
	cfg.BranchMispredictRate = 0
	return cfg
}

func repeat(in trace.Inst, n int) []trace.Inst {
	out := make([]trace.Inst, n)
	for i := range out {
		out[i] = in
		out[i].Deps = trace.Deps3()
	}
	return out
}

func TestScalarStreamReachesIssueWidth(t *testing.T) {
	insts := repeat(trace.Inst{Class: trace.ScalarALU, Mnemonic: "add"}, 4000)
	res := NewSimulator(cleanConfig(), nil).Run(insts)
	if ipc := res.IPC(); ipc < 3.8 || ipc > 4.01 {
		t.Errorf("scalar IPC = %.2f, want ~4 (issue-width limited)", ipc)
	}
	if res.TopDown.Retiring < 0.95 {
		t.Errorf("retiring = %.2f, want ~1", res.TopDown.Retiring)
	}
}

func TestVecALUStreamPortLimitedAt3(t *testing.T) {
	insts := repeat(trace.Inst{Class: trace.VecALU, Mnemonic: "padds"}, 6000)
	res := NewSimulator(cleanConfig(), nil).Run(insts)
	if ipc := res.IPC(); ipc < 2.9 || ipc > 3.05 {
		t.Errorf("vec ALU IPC = %.2f, want ~3 (ports 0-2)", ipc)
	}
	// The stall must be core bound, not memory bound.
	if res.TopDown.CoreBound < 0.15 {
		t.Errorf("core bound = %.2f, want noticeable", res.TopDown.CoreBound)
	}
	if res.TopDown.MemoryBound > 0.01 {
		t.Errorf("memory bound = %.2f, want ~0", res.TopDown.MemoryBound)
	}
}

func TestLoadStreamPortLimitedAt2(t *testing.T) {
	insts := repeat(trace.Inst{Class: trace.Load, Mnemonic: "mov", Bytes: 8}, 6000)
	res := NewSimulator(cleanConfig(), nil).Run(insts)
	if ipc := res.IPC(); ipc < 1.9 || ipc > 2.05 {
		t.Errorf("load IPC = %.2f, want ~2 (ports 4-5)", ipc)
	}
}

func TestStoreStreamCommitLimitedAt1(t *testing.T) {
	insts := repeat(trace.Inst{Class: trace.Store, Mnemonic: "pextrw", Bytes: 2}, 6000)
	res := NewSimulator(cleanConfig(), nil).Run(insts)
	if ipc := res.IPC(); ipc < 0.9 || ipc > 1.1 {
		t.Errorf("store IPC = %.2f, want ~1 (L1 commit limited)", ipc)
	}
	if res.TopDown.BackendBound < 0.5 {
		t.Errorf("backend bound = %.2f, want dominant", res.TopDown.BackendBound)
	}
	if res.StoreBytes != 12000 {
		t.Errorf("store bytes = %d, want 12000", res.StoreBytes)
	}
}

func TestDependencyChainSerializes(t *testing.T) {
	n := 2000
	insts := make([]trace.Inst, n)
	for i := range insts {
		prev := i - 1
		insts[i] = trace.Inst{Class: trace.ScalarALU, Mnemonic: "add", Deps: trace.Deps3(prev)}
	}
	res := NewSimulator(cleanConfig(), nil).Run(insts)
	if ipc := res.IPC(); ipc > 1.05 {
		t.Errorf("chained IPC = %.2f, want <=1", ipc)
	}
}

func TestTopDownSumsToOne(t *testing.T) {
	cfg := SkylakeServer() // with FE + branch noise enabled
	insts := make([]trace.Inst, 0, 5000)
	for i := 0; i < 1000; i++ {
		insts = append(insts,
			trace.Inst{Class: trace.VecALU, Mnemonic: "padds", Deps: trace.Deps3()},
			trace.Inst{Class: trace.Load, Mnemonic: "mov", Bytes: 16, Deps: trace.Deps3()},
			trace.Inst{Class: trace.Store, Mnemonic: "mov", Bytes: 16, Deps: trace.Deps3()},
			trace.Inst{Class: trace.Branch, Mnemonic: "jnz", Deps: trace.Deps3()},
		)
	}
	res := NewSimulator(cfg, nil).Run(insts)
	td := res.TopDown
	sum := td.Retiring + td.FrontendBound + td.BadSpec + td.BackendBound
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("top-down sum = %f, want 1", sum)
	}
	if be := td.CoreBound + td.MemoryBound; be < td.BackendBound-0.001 || be > td.BackendBound+0.001 {
		t.Errorf("core+mem = %f, backend = %f", be, td.BackendBound)
	}
	if td.BadSpec <= 0 {
		t.Error("expected nonzero bad speculation with branches present")
	}
	if td.FrontendBound <= 0 {
		t.Error("expected nonzero frontend bound with FE stalls enabled")
	}
}

func TestCacheMissesBecomeMemoryBound(t *testing.T) {
	// Dependent loads striding far beyond every cache level.
	n := 3000
	insts := make([]trace.Inst, n)
	for i := range insts {
		prev := i - 1
		insts[i] = trace.Inst{
			Class: trace.Load, Mnemonic: "mov", Bytes: 8,
			Addr: int64(i) * 4096 * 17,
			Deps: trace.Deps3(prev),
		}
	}
	h := cache.NewHierarchy(cache.Config{
		Name:   "tiny",
		L1Size: 4 << 10, L1Assoc: 2,
		L2Size: 32 << 10, L2Assoc: 4,
		L3Size: 256 << 10, L3Assoc: 8,
		LineSize:  64,
		L1Latency: 4, L2Latency: 12, L3Latency: 40, MemLatency: 200,
	})
	res := NewSimulator(cleanConfig(), h).Run(insts)
	if res.TopDown.MemoryBound < 0.5 {
		t.Errorf("memory bound = %.2f, want dominant for a miss-every-load chain", res.TopDown.MemoryBound)
	}
	if res.L1Misses == 0 {
		t.Error("expected L1 misses")
	}
}

func TestWarmCacheFasterThanCold(t *testing.T) {
	n := 2000
	insts := make([]trace.Inst, n)
	for i := range insts {
		prev := i - 1
		insts[i] = trace.Inst{
			Class: trace.Load, Mnemonic: "mov", Bytes: 8,
			Addr: int64(i%64) * 64,
			Deps: trace.Deps3(prev),
		}
	}
	h := cache.NewHierarchy(cache.WimpyNode)
	cold := NewSimulator(cleanConfig(), h).Run(insts)
	warm := NewSimulator(cleanConfig(), h).Run(insts)
	if warm.Cycles >= cold.Cycles {
		t.Errorf("warm run (%d cycles) should beat cold run (%d cycles)", warm.Cycles, cold.Cycles)
	}
}

func TestIdealIPCByClass(t *testing.T) {
	cfg := SkylakeServer()
	if got := cfg.IdealIPC(trace.ScalarALU); got != 4 {
		t.Errorf("scalar ideal IPC = %d, want 4", got)
	}
	if got := cfg.IdealIPC(trace.VecALU); got != 3 {
		t.Errorf("vec ideal IPC = %d, want 3", got)
	}
	if got := cfg.IdealIPC(trace.Load); got != 2 {
		t.Errorf("load ideal IPC = %d, want 2", got)
	}
	if got := cfg.IdealIPC(trace.Store); got != 2 {
		t.Errorf("store ideal IPC = %d, want 2", got)
	}
}

func TestWithPortsAblation(t *testing.T) {
	cfg := cleanConfig().WithPorts(trace.VecALU, []int{0})
	insts := repeat(trace.Inst{Class: trace.VecALU, Mnemonic: "padds"}, 3000)
	res := NewSimulator(cfg, nil).Run(insts)
	if ipc := res.IPC(); ipc > 1.05 {
		t.Errorf("single-port vec IPC = %.2f, want ~1", ipc)
	}
}

func TestStoreBandwidthAccounting(t *testing.T) {
	// Full-width 64B stores at 1/cycle commit: ~512 bits/cycle.
	insts := repeat(trace.Inst{Class: trace.Store, Mnemonic: "vmovdqu", Bytes: 64}, 4000)
	res := NewSimulator(cleanConfig(), nil).Run(insts)
	if bw := res.StoreBitsPerCycle(); bw < 450 || bw > 530 {
		t.Errorf("store bandwidth = %.1f bits/cycle, want ~512", bw)
	}
	if u := res.BandwidthUtilization(512); u < 0.88 || u > 1.05 {
		t.Errorf("bandwidth utilization = %.2f, want ~1", u)
	}
}

func TestSecondsConversion(t *testing.T) {
	res := Result{Cycles: 3_200_000, FrequencyGHz: 3.2}
	if got := res.Seconds(); got < 0.00099 || got > 0.00101 {
		t.Errorf("seconds = %g, want 1ms", got)
	}
	if got := res.Microseconds(); got < 999 || got > 1001 {
		t.Errorf("microseconds = %g, want 1000", got)
	}
}

func TestEmptyTrace(t *testing.T) {
	res := NewSimulator(cleanConfig(), nil).Run(nil)
	if res.Cycles != 0 || res.Insts != 0 {
		t.Errorf("empty trace: cycles=%d insts=%d", res.Cycles, res.Insts)
	}
}

func TestNopConsumesSlotNotPort(t *testing.T) {
	insts := repeat(trace.Inst{Class: trace.Nop, Mnemonic: "nop"}, 1000)
	res := NewSimulator(cleanConfig(), nil).Run(insts)
	for p := 0; p < NumPorts; p++ {
		if res.PortBusy[p] != 0 {
			t.Errorf("port %d busy %d cycles for nops", p, res.PortBusy[p])
		}
	}
	if ipc := res.IPC(); ipc < 3.5 {
		t.Errorf("nop IPC = %.2f, want ~4", ipc)
	}
}

func TestStoreToLoadOrdering(t *testing.T) {
	// load depending on a store must not complete before it.
	insts := []trace.Inst{
		{Class: trace.Store, Mnemonic: "mov", Bytes: 8, Addr: 0, Deps: trace.Deps3()},
		{Class: trace.Load, Mnemonic: "mov", Bytes: 8, Addr: 0, Deps: trace.Deps3(0)},
	}
	res := NewSimulator(cleanConfig(), nil).Run(insts)
	if res.Cycles < 2 {
		t.Errorf("store->load pair completed in %d cycles, want >=2", res.Cycles)
	}
}

func TestMSHRLimitsMLP(t *testing.T) {
	// Independent L3-latency loads: with unlimited MSHRs the window
	// hides the latency; with few MSHRs throughput collapses toward
	// latency/MSHRs per load.
	n := 4000
	insts := make([]trace.Inst, n)
	for i := range insts {
		insts[i] = trace.Inst{
			Class: trace.Load, Mnemonic: "mov", Bytes: 8,
			Addr: int64(i) * 4096 * 31, // distinct sets, misses L1/L2
			Deps: trace.Deps3(),
		}
	}
	cfgTight := cleanConfig()
	cfgTight.MSHRs = 2
	cfgLoose := cleanConfig()
	cfgLoose.MSHRs = 0 // unlimited
	h := func() *cache.Hierarchy {
		return cache.NewHierarchy(cache.Config{
			Name:   "t",
			L1Size: 4 << 10, L1Assoc: 2,
			L2Size: 32 << 10, L2Assoc: 4,
			L3Size: 64 << 20, L3Assoc: 16,
			LineSize:  64,
			L1Latency: 4, L2Latency: 12, L3Latency: 40, MemLatency: 200,
			PrefetchDegree: 0,
		})
	}
	// Warm so every access is an L3 hit (40 cycles).
	simT := NewSimulator(cfgTight, h())
	simT.Run(insts)
	tight := simT.Run(insts)
	simL := NewSimulator(cfgLoose, h())
	simL.Run(insts)
	loose := simL.Run(insts)
	if tight.Cycles < 3*loose.Cycles {
		t.Errorf("2 MSHRs (%d cycles) should be far slower than unlimited (%d)", tight.Cycles, loose.Cycles)
	}
	if tight.TopDown.MemoryBound < 0.5 {
		t.Errorf("MSHR-bound run shows memory bound %.2f, want dominant", tight.TopDown.MemoryBound)
	}
}

func TestPlatformConstructors(t *testing.T) {
	w, b := WimpyPlatform(), BeefyPlatform()
	if w.Caches.Name != "wimpy" || b.Caches.Name != "beefy" {
		t.Error("platform cache configs mislabeled")
	}
	if w.Core.FrequencyGHz <= b.Core.FrequencyGHz {
		t.Error("wimpy desktop core should clock higher than beefy xeon")
	}
}

// TestSlotAttributionSaturatedSchedWindow pins the top-down accounting
// invariant at the boundary the scheduler window creates: with
// SchedWindow far smaller than the ready-queue depth the window fills,
// mispredicts cut issue cycles short, and the trace tail issues
// mid-cycle — and still every issue slot of every accounting cycle
// must land in exactly one category. Three checkable consequences:
// Slots is a whole number of issue cycles, the category fractions sum
// to one, and Retiring*Slots equals the µop count (each µop issues
// exactly once).
func TestSlotAttributionSaturatedSchedWindow(t *testing.T) {
	mkTrace := func(n int, chained bool, branchEvery int) []trace.Inst {
		insts := make([]trace.Inst, n)
		for i := range insts {
			in := trace.Inst{Class: trace.VecALU, Mnemonic: "padds", Deps: trace.Deps3()}
			if chained && i > 0 {
				in.Deps = trace.Deps3(i - 1)
			}
			if branchEvery > 0 && i%branchEvery == branchEvery-1 {
				in = trace.Inst{Class: trace.Branch, Mnemonic: "jnz", Deps: trace.Deps3()}
			}
			insts[i] = in
		}
		return insts
	}
	cases := []struct {
		name  string
		cfg   func() Config
		insts []trace.Inst
	}{
		{"window-1-wide", func() Config {
			cfg := cleanConfig()
			cfg.SchedWindow = 1
			return cfg
		}, mkTrace(4003, false, 0)},
		{"window-1-chained", func() Config {
			cfg := cleanConfig()
			cfg.SchedWindow = 1
			return cfg
		}, mkTrace(2001, true, 0)},
		{"window-2-mispredicts", func() Config {
			cfg := SkylakeServer()
			cfg.SchedWindow = 2
			cfg.BranchMispredictRate = 0.5
			return cfg
		}, mkTrace(3007, false, 3)},
		{"fe-noise-tail", func() Config {
			cfg := SkylakeServer()
			cfg.SchedWindow = 1
			cfg.FrontendStallFrac = 0.13
			return cfg
		}, mkTrace(5, false, 0)},
		{"mispredict-on-tail", func() Config {
			cfg := cleanConfig()
			cfg.SchedWindow = 1
			cfg.BranchMispredictRate = 1
			return cfg
		}, mkTrace(9, false, 2)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg()
			res := NewSimulator(cfg, nil).Run(tc.insts)
			if res.Slots <= 0 {
				t.Fatalf("Slots = %d, want > 0", res.Slots)
			}
			if res.Slots%int64(cfg.IssueWidth) != 0 {
				t.Errorf("Slots = %d not a multiple of issue width %d: some cycle was partially attributed",
					res.Slots, cfg.IssueWidth)
			}
			td := res.TopDown
			sum := td.Retiring + td.FrontendBound + td.BadSpec + td.BackendBound
			if sum < 1-1e-9 || sum > 1+1e-9 {
				t.Errorf("top-down sum = %.12f, want exactly 1", sum)
			}
			got := td.Retiring * float64(res.Slots)
			if want := float64(len(tc.insts)); got < want-1e-6 || got > want+1e-6 {
				t.Errorf("Retiring*Slots = %.6f, want %v (every µop issues exactly once)", got, want)
			}
		})
	}
}

// TestTraceBuilderShapes pins the mop adapter's expansion: µop counts,
// class mix, budget, and the dependency shape (loads gate on external
// deps, strands chain at the declared depth, stores gate on the last
// compute µop).
func TestTraceBuilderShapes(t *testing.T) {
	tb := NewTraceBuilder(0)
	first := tb.Add(&MopSpec{VecALU: 1, Deps: trace.Deps3()})
	if first != 0 || tb.Len() != 1 {
		t.Fatalf("first mop: terminal=%d len=%d, want 0, 1", first, tb.Len())
	}
	term := tb.Add(&MopSpec{
		Loads: 2, LoadBytes: 64, LoadAddr: 1024, LoadStep: 64,
		VecShuffle: 2, VecALU: 4, Depth: 3,
		Stores: 1, StoreBytes: 64, StoreAddr: 4096,
		Deps: trace.Deps3(int(first)),
	})
	insts := tb.Insts()
	if tb.Len() != 1+2+6+1 || int(term) != tb.Len()-1 {
		t.Fatalf("len=%d terminal=%d, want 10, 9", tb.Len(), term)
	}
	if insts[1].Class != trace.Load || insts[1].Deps[0] != first {
		t.Errorf("load µop = %+v, want Load gated on mop 1's terminal", insts[1])
	}
	if insts[2].Addr != 1024+64 {
		t.Errorf("second load addr = %d, want stride applied", insts[2].Addr)
	}
	if insts[3].Class != trace.VecShuffle || insts[8].Class != trace.VecALU {
		t.Errorf("compute classes = %v, %v; want shuffles first then ALU", insts[3].Class, insts[8].Class)
	}
	if insts[9].Class != trace.Store || insts[9].Deps[0] != 8 {
		t.Errorf("store µop = %+v, want gated on last compute", insts[9])
	}
	// Depth 3 over 6 compute µops = 2 strands: µop j depends on j-2.
	if insts[5].Deps[0] != 3 {
		t.Errorf("strand chain dep = %d, want 3", insts[5].Deps[0])
	}
	mix := trace.MixOf(insts)
	if mix.Count[trace.Load] != 2 || mix.Count[trace.Store] != 1 ||
		mix.Count[trace.VecShuffle] != 2 || mix.Count[trace.VecALU] != 5 {
		t.Errorf("mix = %v", mix)
	}

	lim := NewTraceBuilder(3)
	lim.Add(&MopSpec{VecALU: 2, Deps: trace.Deps3()})
	if lim.Full() {
		t.Error("builder full before reaching limit")
	}
	lim.Add(&MopSpec{VecALU: 2, Deps: trace.Deps3()})
	if !lim.Full() {
		t.Error("builder not full after exceeding limit")
	}
}
