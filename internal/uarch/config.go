// Package uarch is a cycle-level model of the execution engine of a
// Skylake/Coffee Lake-class out-of-order core, specialized to what the
// paper measures: execution-port contention, register<->L1 bandwidth and
// Intel's top-down pipeline-slot accounting (retiring / frontend bound /
// bad speculation / backend bound, with backend split into core bound and
// memory bound).
//
// The port topology follows the paper's Figure 2 reading of the
// microarchitecture: SIMD calculation instructions can use ports 0-2,
// scalar ALU instructions ports 0-3, loads ports 4-5 and stores ports
// 6-7. Hence the ideal IPC ceilings the paper derives: 4 for scalar code,
// 3 for SIMD calculation and 2 for SIMD data movement.
package uarch

import (
	"vransim/internal/cache"
	"vransim/internal/trace"
)

// NumPorts is the number of execution ports in the modeled core.
const NumPorts = 8

// Config parameterizes the core model.
type Config struct {
	// Name labels the configuration in reports.
	Name string

	// IssueWidth is the number of pipeline slots per cycle (µops that
	// can enter the window and also the retirement bandwidth). Intel's
	// top-down method counts 4 slots per cycle.
	IssueWidth int

	// WindowSize is the reorder-buffer capacity.
	WindowSize int

	// SchedWindow caps how deep into the waiting window the dispatcher
	// looks for ready µops each cycle (the reservation-station size).
	SchedWindow int

	// PortsByClass lists which ports may execute each instruction class.
	PortsByClass [trace.NumClasses][]int

	// LatencyByClass is the execution latency in cycles for non-memory
	// classes. Loads take their latency from the cache model.
	LatencyByClass [trace.NumClasses]int

	// MSHRs caps the outstanding L1 misses (miss-status holding
	// registers / fill buffers): it bounds the memory-level parallelism
	// a stream of independent misses can extract, which is what makes
	// cache-resident vs spilled working sets visible as memory bound.
	MSHRs int

	// StoreBufferSize is the number of in-flight stores the core can
	// buffer; StoreCommitPerCycle is how many of them the L1 can retire
	// per cycle. Committing one store per cycle regardless of its width
	// is precisely why 2-byte pextrw stores waste 87.5% (xmm) to 96.9%
	// (zmm) of the register<->L1 bandwidth.
	StoreBufferSize     int
	StoreCommitPerCycle int

	// BranchMispredictRate is the fraction of Branch µops that
	// mispredict (deterministically spaced), each costing
	// BranchPenalty cycles of issue accounted as bad speculation.
	BranchMispredictRate float64
	BranchPenalty        int

	// FrontendStallFrac injects instruction-fetch starvation: this
	// fraction of issue slots is unavailable, accounted as frontend
	// bound. vRAN kernels are tiny loops, so the paper measures this
	// as negligible.
	FrontendStallFrac float64

	// FrequencyGHz converts cycles to wall-clock time in reports.
	FrequencyGHz float64
}

// SkylakeServer returns the paper's port model with Skylake-class
// parameters.
func SkylakeServer() Config {
	cfg := Config{
		Name:                 "skylake-server",
		IssueWidth:           4,
		WindowSize:           224,
		SchedWindow:          97,
		MSHRs:                10,
		StoreBufferSize:      56,
		StoreCommitPerCycle:  1,
		BranchMispredictRate: 0.01,
		BranchPenalty:        16,
		FrontendStallFrac:    0.02,
		FrequencyGHz:         3.2,
	}
	cfg.PortsByClass = [trace.NumClasses][]int{
		trace.ScalarALU:  {0, 1, 2, 3},
		trace.VecALU:     {0, 1, 2},
		trace.VecShuffle: {0, 1, 2},
		trace.Load:       {4, 5},
		trace.Store:      {6, 7},
		trace.Branch:     {0, 1, 2, 3},
		trace.Nop:        nil,
	}
	cfg.LatencyByClass = [trace.NumClasses]int{
		trace.ScalarALU:  1,
		trace.VecALU:     1,
		trace.VecShuffle: 1,
		trace.Load:       4, // default when no cache model is attached
		trace.Store:      1,
		trace.Branch:     1,
		trace.Nop:        1,
	}
	return cfg
}

// CoffeeLakeDesktop returns the wimpy-node (Core i7-8700) core: the same
// port model at the desktop clock.
func CoffeeLakeDesktop() Config {
	cfg := SkylakeServer()
	cfg.Name = "coffeelake-desktop"
	cfg.FrequencyGHz = 3.2
	return cfg
}

// XeonW2195 returns the beefy-node core clocked at 2.3 GHz.
func XeonW2195() Config {
	cfg := SkylakeServer()
	cfg.Name = "xeon-w2195"
	cfg.FrequencyGHz = 2.3
	return cfg
}

// WithPorts returns a copy of cfg with the port set for class c replaced;
// used by the port-sensitivity ablations.
func (c Config) WithPorts(cl trace.Class, ports []int) Config {
	c.PortsByClass[cl] = ports
	return c
}

// IdealIPC returns the port-limited IPC ceiling for a stream made purely
// of class cl (ignoring the issue width).
func (c Config) IdealIPC(cl trace.Class) int {
	n := len(c.PortsByClass[cl])
	if n > c.IssueWidth {
		return c.IssueWidth
	}
	return n
}

// Platform couples a core configuration with a cache hierarchy; the
// experiment harness passes Platforms around as a unit.
type Platform struct {
	Core   Config
	Caches cache.Config
}

// WimpyPlatform is the Core i7-8700 testbed node.
func WimpyPlatform() Platform {
	return Platform{Core: CoffeeLakeDesktop(), Caches: cache.WimpyNode}
}

// BeefyPlatform is the Xeon W2195 testbed node.
func BeefyPlatform() Platform {
	return Platform{Core: XeonW2195(), Caches: cache.BeefyNode}
}
