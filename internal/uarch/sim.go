package uarch

import (
	"vransim/internal/cache"
	"vransim/internal/trace"
)

// robEntry tracks one µop living in the reorder buffer.
type robEntry struct {
	idx        int32
	lat        int32
	dispatched bool
	isLoadMiss bool
	doneCycle  int64
}

// Simulator replays an instruction trace against a core configuration and
// an optional cache hierarchy.
type Simulator struct {
	cfg  Config
	hier *cache.Hierarchy
}

// NewSimulator builds a simulator. hier may be nil, in which case every
// memory access hits L1 at the configured load latency.
func NewSimulator(cfg Config, hier *cache.Hierarchy) *Simulator {
	return &Simulator{cfg: cfg, hier: hier}
}

// Config returns the simulator's core configuration.
func (s *Simulator) Config() Config { return s.cfg }

// Run simulates insts to completion and returns the timing result.
//
// The model: a perfect frontend delivers cfg.IssueWidth µops per cycle
// (minus an injected frontend-stall fraction) into a WindowSize reorder
// buffer; ready µops dispatch out of order to the first free port allowed
// for their class, at most one µop per port per cycle, scanning at most
// SchedWindow waiting entries; loads take their latency from the cache
// hierarchy; stores occupy a store-buffer entry until the L1 commits them
// at StoreCommitPerCycle; retirement is in order, IssueWidth per cycle.
// Every issue slot of every cycle (while the trace is still being
// fetched) is attributed to exactly one top-down category.
func (s *Simulator) Run(insts []trace.Inst) Result {
	cfg := s.cfg
	n := len(insts)
	res := Result{FrequencyGHz: cfg.FrequencyGHz, Mix: trace.MixOf(insts)}
	if n == 0 {
		return res
	}

	var l1h0, l1m0, l2h0, l2m0, l3h0, l3m0 int64
	if s.hier != nil {
		l1h0, l1m0 = s.hier.L1.Hits(), s.hier.L1.Misses()
		l2h0, l2m0 = s.hier.L2.Hits(), s.hier.L2.Misses()
		l3h0, l3m0 = s.hier.L3.Hits(), s.hier.L3.Misses()
	}

	// doneAt[i] is the cycle µop i finished executing, or -1.
	doneAt := make([]int64, n)
	for i := range doneAt {
		doneAt[i] = -1
	}
	// loadMiss[i] marks loads whose latency exceeded the L1 hit cost.
	loadMiss := make([]bool, n)

	rob := make([]robEntry, cfg.WindowSize)
	head, count := 0, 0 // ring buffer state

	var (
		cycle       int64 = -1
		fetch       int   // next trace index to issue
		retired     int64
		slotsRet    int64
		slotsFE     int64
		slotsBS     int64
		slotsBECore int64
		slotsBEMem  int64
		feAcc       float64
		brAcc       float64
		bsCountdown int
		sbOcc       int
		sbReady     []int64 // dispatch cycles of buffered stores (FIFO)
		mshr        []int64 // completion cycles of outstanding L1 misses
		portUsed    [NumPorts]bool
	)

	l1Lat := int64(cfg.LatencyByClass[trace.Load])
	if s.hier != nil {
		l1Lat = int64(s.hier.Config().L1Latency)
	}

	for retired < int64(n) {
		cycle++

		// 1. Store-buffer drain: the L1 commits up to
		// StoreCommitPerCycle stores that were dispatched in an
		// earlier cycle.
		drained := 0
		for len(sbReady) > 0 && sbReady[0] < cycle && drained < cfg.StoreCommitPerCycle {
			sbReady = sbReady[1:]
			sbOcc--
			drained++
		}

		// 1b. Retire completed L1 misses from the MSHRs.
		live := mshr[:0]
		for _, done := range mshr {
			if done > cycle {
				live = append(live, done)
			}
		}
		mshr = live

		// 2. In-order retirement.
		for r := 0; r < cfg.IssueWidth && count > 0; r++ {
			e := &rob[head]
			if !e.dispatched || e.doneCycle > cycle {
				break
			}
			head = (head + 1) % cfg.WindowSize
			count--
			retired++
		}

		// 3. Out-of-order dispatch to ports.
		for p := range portUsed {
			portUsed[p] = false
		}
		scanned := 0
		for i := 0; i < count && scanned < cfg.SchedWindow; i++ {
			e := &rob[(head+i)%cfg.WindowSize]
			if e.dispatched {
				continue
			}
			scanned++
			in := &insts[e.idx]
			if !depsReady(in, doneAt, cycle) {
				continue
			}
			if in.Class == trace.Store && sbOcc >= cfg.StoreBufferSize {
				continue
			}
			if in.Class == trace.Load && s.hier != nil && cfg.MSHRs > 0 &&
				len(mshr) >= cfg.MSHRs && s.hier.WouldMissL1(in.Addr) {
				continue // no fill buffer free for a new miss
			}
			port := -1
			for _, p := range cfg.PortsByClass[in.Class] {
				if !portUsed[p] {
					port = p
					break
				}
			}
			if in.Class == trace.Nop {
				e.dispatched = true
				e.doneCycle = cycle
				doneAt[e.idx] = cycle
				continue
			}
			if port < 0 {
				continue
			}
			portUsed[port] = true
			res.PortBusy[port]++
			lat := int64(cfg.LatencyByClass[in.Class])
			switch in.Class {
			case trace.Load:
				if s.hier != nil {
					lat = int64(s.hier.Load(in.Addr))
				}
				if lat > l1Lat {
					loadMiss[e.idx] = true
					e.isLoadMiss = true
					mshr = append(mshr, cycle+lat-1)
				}
				res.LoadBytes += int64(in.Bytes)
			case trace.Store:
				if s.hier != nil {
					s.hier.Store(in.Addr)
				}
				sbOcc++
				sbReady = append(sbReady, cycle)
				res.StoreBytes += int64(in.Bytes)
			}
			e.dispatched = true
			e.lat = int32(lat)
			e.doneCycle = cycle + lat - 1
			doneAt[e.idx] = e.doneCycle
		}

		// 4. Issue into the window, with top-down slot accounting.
		if fetch >= n {
			continue // fetch done; drain without accounting slots
		}
		if bsCountdown > 0 {
			bsCountdown--
			slotsBS += int64(cfg.IssueWidth)
			continue
		}
		feAcc += cfg.FrontendStallFrac * float64(cfg.IssueWidth)
		feSlots := int(feAcc)
		feAcc -= float64(feSlots)
		slotsFE += int64(feSlots)
		supply := cfg.IssueWidth - feSlots

		issued := 0
		mispredicted := false
		for issued < supply && fetch < n {
			if count >= cfg.WindowSize {
				break
			}
			e := &rob[(head+count)%cfg.WindowSize]
			*e = robEntry{idx: int32(fetch)}
			count++
			issued++
			isBranch := insts[fetch].Class == trace.Branch
			fetch++
			if isBranch {
				brAcc += cfg.BranchMispredictRate
				if brAcc >= 1 {
					brAcc -= 1
					bsCountdown = cfg.BranchPenalty
					mispredicted = true
					break
				}
			}
		}
		slotsRet += int64(issued)
		if issued < supply {
			// Leftover slots of an accounting cycle must land in
			// exactly one category. In priority order: slots wasted
			// behind a mispredicted branch are bad speculation (the
			// fetch redirect starts this cycle, not next); slots left
			// because the trace's tail just issued are frontend
			// starvation (nothing to fetch); otherwise the window is
			// full — backend bound, classified by what blocks the
			// oldest unfinished µop.
			stall := int64(supply - issued)
			switch {
			case mispredicted:
				slotsBS += stall
			case fetch >= n:
				slotsFE += stall
			default:
				mshrFull := cfg.MSHRs > 0 && len(mshr) >= cfg.MSHRs
				if s.headBlockedOnMemory(insts, rob[head], doneAt, loadMiss, cycle, mshrFull) {
					slotsBEMem += stall
				} else {
					slotsBECore += stall
				}
			}
		}
	}

	res.Cycles = cycle + 1
	res.Insts = int64(n)
	total := slotsRet + slotsFE + slotsBS + slotsBECore + slotsBEMem
	res.Slots = total
	if total > 0 {
		res.TopDown = TopDown{
			Retiring:      float64(slotsRet) / float64(total),
			FrontendBound: float64(slotsFE) / float64(total),
			BadSpec:       float64(slotsBS) / float64(total),
			BackendBound:  float64(slotsBECore+slotsBEMem) / float64(total),
			CoreBound:     float64(slotsBECore) / float64(total),
			MemoryBound:   float64(slotsBEMem) / float64(total),
		}
	}
	if s.hier != nil {
		res.L1Hits = s.hier.L1.Hits() - l1h0
		res.L1Misses = s.hier.L1.Misses() - l1m0
		res.L2Hits = s.hier.L2.Hits() - l2h0
		res.L2Misses = s.hier.L2.Misses() - l2m0
		res.L3Hits = s.hier.L3.Hits() - l3h0
		res.L3Misses = s.hier.L3.Misses() - l3m0
	}
	return res
}

// headBlockedOnMemory decides whether the window-full stall should be
// attributed to memory bound (an outstanding cache miss) or core bound
// (port or store-buffer pressure, dependency chains).
func (s *Simulator) headBlockedOnMemory(insts []trace.Inst, head robEntry, doneAt []int64, loadMiss []bool, cycle int64, mshrFull bool) bool {
	if head.dispatched {
		return head.isLoadMiss && head.doneCycle > cycle
	}
	if mshrFull && insts[head.idx].Class == trace.Load {
		return true
	}
	for _, d := range insts[head.idx].Deps {
		if d >= 0 && loadMiss[d] && doneAt[d] >= cycle {
			return true
		}
	}
	return false
}

func depsReady(in *trace.Inst, doneAt []int64, cycle int64) bool {
	for _, d := range in.Deps {
		if d < 0 {
			continue
		}
		if doneAt[d] < 0 || doneAt[d] >= cycle {
			return false
		}
	}
	return true
}

// Simulate is a convenience wrapper constructing a Simulator with a fresh
// hierarchy from cfgCache (or nil for perfect L1) and running insts.
func Simulate(insts []trace.Inst, core Config, caches *cache.Config) Result {
	var h *cache.Hierarchy
	if caches != nil {
		h = cache.NewHierarchy(*caches)
	}
	return NewSimulator(core, h).Run(insts)
}
