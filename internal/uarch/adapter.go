package uarch

import "vransim/internal/trace"

// This file adapts macro-op (mop) streams — the fused replay ops the
// decode compiler in internal/simd/program produces — into the µop
// traces the simulator prices. A mop is described structurally (how
// many load, compute and store µops it expands to, how deep its
// internal dependency chain is, and which earlier mops it depends on);
// the builder lays the µops out with a dataflow shape that matches:
// loads first (gated on the predecessors' terminal µops), then the
// compute µops arranged as parallel strands of the declared depth, then
// stores gated on the last compute. The result is a trace.Inst stream
// the existing Simulator runs unchanged, which is what lets the
// program scheduler use the port model as a cost function for
// candidate mop orderings.

// MopSpec describes one macro-op's µop expansion for trace building.
// Memory µops are uniform within a mop: Loads load µops of LoadBytes
// each starting at LoadAddr and advancing LoadStep per µop (stores
// likewise). Depth is the length in µops of the longest internal
// dependency chain through the compute µops; the builder derives the
// strand width (internal ILP) from it.
type MopSpec struct {
	Scalar, VecALU, VecShuffle int

	Loads     int
	LoadBytes int32
	LoadAddr  int64
	LoadStep  int64

	Stores     int
	StoreBytes int32
	StoreAddr  int64
	StoreStep  int64

	Depth int

	// Deps holds the terminal µop indices (as returned by Add) of up
	// to three memory-carried predecessor mops: they gate this mop's
	// load µops (and its stores, transitively). Unused slots are
	// trace.NoDep.
	Deps [3]int32
	// CompDeps holds the terminal µop indices of up to three
	// register-carried predecessor mops: they gate the compute strand
	// heads directly, so loads can issue ahead of a register
	// dependency chain exactly as an out-of-order core would.
	// Unused slots are trace.NoDep.
	CompDeps [3]int32
}

// TraceBuilder accumulates the µop trace for a mop stream. The zero
// value is ready to use; Reset keeps capacity across candidate
// orderings so the scheduler's search allocates once.
type TraceBuilder struct {
	insts []trace.Inst
	limit int
}

// NewTraceBuilder returns a builder that stops accepting mops once the
// trace reaches limit µops (0 means unlimited) — the deterministic
// budget that bounds the scheduler's simulation cost on large
// segments.
func NewTraceBuilder(limit int) *TraceBuilder {
	return &TraceBuilder{limit: limit}
}

// Reset discards the trace but keeps capacity.
func (tb *TraceBuilder) Reset() { tb.insts = tb.insts[:0] }

// Full reports whether the µop budget is exhausted.
func (tb *TraceBuilder) Full() bool {
	return tb.limit > 0 && len(tb.insts) >= tb.limit
}

// Len reports the number of µops emitted so far.
func (tb *TraceBuilder) Len() int { return len(tb.insts) }

// Insts exposes the accumulated trace; callers must not retain it
// across Reset.
func (tb *TraceBuilder) Insts() []trace.Inst { return tb.insts }

// Add appends one mop's µop expansion and returns the index of its
// terminal µop (the one successors should depend on), or trace.NoDep
// if the spec expands to zero µops. The expansion order is loads,
// compute (Scalar+VecALU+VecShuffle µops in Depth-long strands), then
// stores.
func (tb *TraceBuilder) Add(sp *MopSpec) int32 {
	lastLoad := int32(trace.NoDep)
	for i := 0; i < sp.Loads; i++ {
		lastLoad = tb.emit(trace.Inst{
			Class: trace.Load,
			Bytes: sp.LoadBytes,
			Addr:  sp.LoadAddr + int64(i)*sp.LoadStep,
			Deps:  sp.Deps,
		})
	}

	compute := sp.Scalar + sp.VecALU + sp.VecShuffle
	lastCompute := lastLoad
	if compute > 0 {
		depth := sp.Depth
		if depth < 1 {
			depth = 1
		}
		if depth > compute {
			depth = compute
		}
		// strands parallel chains of ~depth µops each model the mop's
		// internal ILP: µop j depends on µop j-strands, so the chain
		// length through any strand is ceil(compute/strands) ≈ depth.
		strands := (compute + depth - 1) / depth
		base := int32(len(tb.insts))
		shuf, alu := sp.VecShuffle, sp.VecALU
		for j := 0; j < compute; j++ {
			var class trace.Class
			switch {
			case j < shuf:
				class = trace.VecShuffle
			case j < shuf+alu:
				class = trace.VecALU
			default:
				class = trace.ScalarALU
			}
			deps := [3]int32{trace.NoDep, trace.NoDep, trace.NoDep}
			if j >= strands {
				deps[0] = base + int32(j-strands)
				deps[1] = lastLoad
			} else {
				// Strand head: gated on the mop's own loads (which
				// carry the memory-carried deps transitively) and on
				// the register-carried predecessors.
				deps[0] = lastLoad
				deps[1] = sp.CompDeps[0]
				deps[2] = sp.CompDeps[1]
				if lastLoad < 0 {
					deps[0], deps[1], deps[2] = sp.CompDeps[0], sp.CompDeps[1], sp.CompDeps[2]
				}
			}
			lastCompute = tb.emit(trace.Inst{Class: class, Deps: deps})
		}
	}

	last := lastCompute
	storeDeps := sp.Deps
	if lastCompute >= 0 {
		// Stores wait for the value (last compute) and for the
		// memory-carried predecessors (store-store ordering); when the
		// mop had loads, the latter are already transitive through
		// lastCompute.
		storeDeps = [3]int32{lastCompute, sp.Deps[0], sp.Deps[1]}
		if lastLoad >= 0 {
			storeDeps = [3]int32{lastCompute, trace.NoDep, trace.NoDep}
		}
	}
	for i := 0; i < sp.Stores; i++ {
		last = tb.emit(trace.Inst{
			Class: trace.Store,
			Bytes: sp.StoreBytes,
			Addr:  sp.StoreAddr + int64(i)*sp.StoreStep,
			Deps:  storeDeps,
		})
	}
	return last
}

func (tb *TraceBuilder) emit(in trace.Inst) int32 {
	tb.insts = append(tb.insts, in)
	return int32(len(tb.insts) - 1)
}
