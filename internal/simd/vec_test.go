package simd

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWidthProperties(t *testing.T) {
	cases := []struct {
		w     Width
		bits  int
		lanes int
		name  string
		reg   string
	}{
		{W128, 128, 8, "SSE128", "xmm"},
		{W256, 256, 16, "AVX256", "ymm"},
		{W512, 512, 32, "AVX512", "zmm"},
	}
	for _, c := range cases {
		if got := c.w.Bits(); got != c.bits {
			t.Errorf("%v.Bits() = %d, want %d", c.w, got, c.bits)
		}
		if got := c.w.Lanes16(); got != c.lanes {
			t.Errorf("%v.Lanes16() = %d, want %d", c.w, got, c.lanes)
		}
		if got := c.w.String(); got != c.name {
			t.Errorf("Width.String() = %q, want %q", got, c.name)
		}
		if got := c.w.RegName(); got != c.reg {
			t.Errorf("Width.RegName() = %q, want %q", got, c.reg)
		}
	}
}

func TestLaneRoundTrip(t *testing.T) {
	var v Vec
	vals := []int16{0, 1, -1, 32767, -32768, 12345, -12345, 255}
	v.SetLanes16(vals)
	for i, want := range vals {
		if got := v.Lane16(i); got != want {
			t.Errorf("lane %d = %d, want %d", i, got, want)
		}
	}
	got := v.Lanes16(len(vals))
	for i := range vals {
		if got[i] != vals[i] {
			t.Errorf("Lanes16[%d] = %d, want %d", i, got[i], vals[i])
		}
	}
}

func TestSatAddI16(t *testing.T) {
	cases := []struct{ a, b, want int16 }{
		{1, 2, 3},
		{32767, 1, 32767},
		{-32768, -1, -32768},
		{32000, 1000, 32767},
		{-32000, -1000, -32768},
		{-5, 5, 0},
	}
	for _, c := range cases {
		if got := satAddI16(c.a, c.b); got != c.want {
			t.Errorf("satAddI16(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSatSubI16(t *testing.T) {
	cases := []struct{ a, b, want int16 }{
		{3, 2, 1},
		{-32768, 1, -32768},
		{32767, -1, 32767},
		{0, -32768, 32767},
		{10, 10, 0},
	}
	for _, c := range cases {
		if got := satSubI16(c.a, c.b); got != c.want {
			t.Errorf("satSubI16(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: saturated add always equals the clamped wide-integer sum.
func TestSatAddMatchesClampedSum(t *testing.T) {
	f := func(a, b int16) bool {
		s := int32(a) + int32(b)
		if s > math.MaxInt16 {
			s = math.MaxInt16
		}
		if s < math.MinInt16 {
			s = math.MinInt16
		}
		return satAddI16(a, b) == int16(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: saturated ops are monotone in their first argument.
func TestSatAddMonotone(t *testing.T) {
	f := func(a1, a2, b int16) bool {
		if a1 > a2 {
			a1, a2 = a2, a1
		}
		return satAddI16(a1, b) <= satAddI16(a2, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxMinI16(t *testing.T) {
	f := func(a, b int16) bool {
		mx, mn := maxI16(a, b), minI16(a, b)
		return mx >= mn && (mx == a || mx == b) && (mn == a || mn == b) &&
			int32(mx)+int32(mn) == int32(a)+int32(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
