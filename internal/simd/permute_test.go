package simd

import "testing"

// TestPermuteWAliased: PermuteW must read all of a's lanes before
// writing any of dst's, so dst == a is well-defined (the engine stages
// through permTmp). A full reversal in place is the harshest case —
// every lane both sources and receives a value.
func TestPermuteWAliased(t *testing.T) {
	for _, w := range Widths {
		e := NewEngine(w, NewMemory(1<<12), nil)
		n := w.Lanes16()
		v := e.NewVec()
		idx := make([]int, n)
		for i := 0; i < n; i++ {
			v.SetLane16(i, int16(100+i))
			idx[i] = n - 1 - i
		}
		e.PermuteW(v, v, idx)
		for i := 0; i < n; i++ {
			if got, want := v.Lane16(i), int16(100+n-1-i); got != want {
				t.Errorf("%v aliased reverse lane %d = %d, want %d", w, i, got, want)
			}
		}
	}
}

// TestPermuteWOutOfRange pins the zeroing contract: indices outside
// [0, lanes) and table positions past the end of a short index table
// produce 0 in the corresponding destination lane, never a panic or a
// stale value.
func TestPermuteWOutOfRange(t *testing.T) {
	for _, w := range Widths {
		e := NewEngine(w, NewMemory(1<<12), nil)
		n := w.Lanes16()
		v, d := e.NewVec(), e.NewVec()
		for i := 0; i < n; i++ {
			v.SetLane16(i, int16(1+i))
			d.SetLane16(i, -7) // stale contents that must not survive
		}
		idx := make([]int, n)
		for i := range idx {
			switch i % 4 {
			case 0:
				idx[i] = i // in range
			case 1:
				idx[i] = n // one past the end
			case 2:
				idx[i] = -1 // negative
			default:
				idx[i] = n + 1000
			}
		}
		e.PermuteW(d, v, idx)
		for i := 0; i < n; i++ {
			want := int16(0)
			if i%4 == 0 {
				want = int16(1 + i)
			}
			if got := d.Lane16(i); got != want {
				t.Errorf("%v lane %d (idx %d) = %d, want %d", w, i, idx[i], got, want)
			}
		}

		// A short table leaves the uncovered lanes zero.
		d2 := e.NewVec()
		for i := 0; i < n; i++ {
			d2.SetLane16(i, 31)
		}
		e.PermuteW(d2, v, []int{1, 0})
		for i := 0; i < n; i++ {
			var want int16
			switch i {
			case 0:
				want = 2
			case 1:
				want = 1
			}
			if got := d2.Lane16(i); got != want {
				t.Errorf("%v short-table lane %d = %d, want %d", w, i, got, want)
			}
		}
	}
}

// TestRotateLanesLeftAliased: the rotate-mimic is a PermuteW under the
// hood, so rotating a register onto itself must behave like rotating
// into a distinct destination — including negative rotations, which
// wrap.
func TestRotateLanesLeftAliased(t *testing.T) {
	for _, w := range Widths {
		n := w.Lanes16()
		for _, k := range []int{1, n - 1, -3} {
			e := NewEngine(w, NewMemory(1<<12), nil)
			v := e.NewVec()
			for i := 0; i < n; i++ {
				v.SetLane16(i, int16(10*i))
			}
			e.RotateLanesLeft(v, v, k)
			kk := ((k % n) + n) % n
			for i := 0; i < n; i++ {
				want := int16(10 * ((i + kk) % n))
				if got := v.Lane16(i); got != want {
					t.Errorf("%v aliased rot %d lane %d = %d, want %d", w, k, i, got, want)
				}
			}
		}
	}
}
