package program

import "fmt"

// This file derives, for every executable mop kind, the exact set of
// architectural resources the op reads and writes — registers (whole
// register files entries, conservatively) and memory byte ranges — and
// builds the dependency DAG over a segment from them. The walker is the
// single authority on each kind's operand layout (mirroring Run's
// semantics op for op), shared by three consumers: the DAG builder
// (register def/use plus memory aliasing), the deserialization
// validator (bounds-checking untrusted programs from the tuner's disk
// cache before they may touch an arena), and nothing else — run.go
// stays the executable truth it is checked against by the differential
// tests.
//
// Dependency rules (no renaming, so anti/output dependencies are real
// order constraints):
//
//   - a read of a resource depends on its last writer;
//   - a write depends on its last writer AND every reader since.
//
// Register scratch (p.tmp, p.s0..s3) is written before read within
// every op that uses it and never carries state across ops, so it is
// invisible to the DAG. Partial register writes (mInsrW's single lane,
// short loads) are treated as whole-register writes, which only adds
// edges, never drops one. Memory is tracked at 64-byte page
// granularity: two accesses on the same page conflict unless both are
// reads — again conservative in the safe direction (the fusion pass's
// `disjoint` discipline guarantees intra-op exactness; the page map is
// the inter-op aliasing check).

// effectVisitor receives one mop's effects. Nil callbacks are skipped.
type effectVisitor struct {
	// reg is called with a register lane offset (regID*regStride).
	reg func(off int32, write bool)
	// mem is called with a byte range [addr, addr+n).
	mem func(addr, n int64, write bool)
	// tab is called with an idxTabs id; full marks ids the op indexes
	// per active lane without permute's short-table guard.
	tab func(id int64, full bool)
	// pat is called with a lanePats id.
	pat func(id int64)
}

// visitEffects walks op's reads and writes. It returns an error — and
// guarantees the callbacks saw nothing out of the op's true layout —
// when the op is structurally malformed: unknown kind, aux window out
// of pool bounds, or an immediate outside the range Run indexes with.
// On a freshly compiled program errors are impossible; on a
// deserialized one they mean the bytes are not a program.
func (p *Program) visitEffects(op *mop, v *effectVisitor) error {
	reg := v.reg
	if reg == nil {
		reg = func(int32, bool) {}
	}
	mem := v.mem
	if mem == nil {
		mem = func(int64, int64, bool) {}
	}
	tab := v.tab
	if tab == nil {
		tab = func(int64, bool) {}
	}
	pat := v.pat
	if pat == nil {
		pat = func(int64) {}
	}
	// aux returns the op's aux window after bounds-checking it.
	aux := func(need int32) ([]int64, error) {
		if need < 0 || op.tab < 0 || int(op.tab)+int(need) > len(p.aux) {
			return nil, fmt.Errorf("program: op kind %d aux window [%d,+%d) outside pool of %d", op.kind, op.tab, need, len(p.aux))
		}
		return p.aux[op.tab : op.tab+need], nil
	}
	aux32 := func(need int32) ([]int32, error) {
		if op.tab < 0 || int(op.tab)+int(need) > len(p.aux32) {
			return nil, fmt.Errorf("program: op kind %d aux32 window [%d,+%d) outside pool of %d", op.kind, op.tab, need, len(p.aux32))
		}
		return p.aux32[op.tab : op.tab+need], nil
	}
	wb := int64(2 * p.lanes)

	switch op.kind {
	case mClear, mBcastImm:
		reg(op.d, true)
	case mAddS, mSubS, mMaxS, mMinS, mAnd, mOr, mXor, mAndN:
		reg(op.a, false)
		reg(op.b, false)
		reg(op.d, true)
	case mSra:
		reg(op.a, false)
		reg(op.d, true)
	case mBcastMem:
		mem(op.addr, 2, false)
		reg(op.d, true)
	case mSetImm:
		if op.tab < 0 || int(op.tab) >= len(p.lanePats) {
			return fmt.Errorf("program: mSetImm pattern %d outside %d", op.tab, len(p.lanePats))
		}
		pat(int64(op.tab))
		reg(op.d, true)
	case mPermute:
		if op.tab < 0 || int(op.tab) >= len(p.idxTabs) {
			return fmt.Errorf("program: mPermute table %d outside %d", op.tab, len(p.idxTabs))
		}
		tab(int64(op.tab), false)
		reg(op.a, false)
		reg(op.d, true)
	case mExt128:
		if op.imm < 0 || 8*op.imm+8 > regStride {
			return fmt.Errorf("program: mExt128 sel %d out of range", op.imm)
		}
		reg(op.a, false)
		reg(op.d, true)
	case mExt256:
		if op.imm < 0 || 16*op.imm+16 > regStride {
			return fmt.Errorf("program: mExt256 sel %d out of range", op.imm)
		}
		reg(op.a, false)
		reg(op.d, true)
	case mLoad:
		if op.imm < 0 || op.imm/2 > regStride {
			return fmt.Errorf("program: mLoad of %d bytes out of range", op.imm)
		}
		mem(op.addr, op.imm, false)
		reg(op.d, true)
	case mStore:
		if op.imm < 0 || op.imm/2 > regStride {
			return fmt.Errorf("program: mStore of %d bytes out of range", op.imm)
		}
		reg(op.a, false)
		mem(op.addr, op.imm, true)
	case mExtrW:
		if op.imm < 0 || op.imm >= regStride {
			return fmt.Errorf("program: mExtrW lane %d out of range", op.imm)
		}
		reg(op.a, false)
		mem(op.addr, 2, true)
	case mInsrW:
		if op.imm < 0 || op.imm >= regStride {
			return fmt.Errorf("program: mInsrW lane %d out of range", op.imm)
		}
		mem(op.addr, 2, false)
		reg(op.d, false) // single-lane insert: the other lanes persist
		reg(op.d, true)
	case mCopy16:
		mem(op.addr2, 2, false)
		mem(op.addr, 2, true)
	case mGammaPoint:
		t, err := aux32(3)
		if err != nil {
			return err
		}
		for _, a := range t {
			mem(int64(a), 2, false)
		}
		mem(op.addr, 2, true)
		mem(op.addr2, 2, true)
	case mExtPoint:
		t, err := aux32(3)
		if err != nil {
			return err
		}
		for _, a := range t {
			mem(int64(a), 2, false)
		}
		mem(op.addr, 2, true)
	case mCopyRun:
		if op.n < 1 {
			return fmt.Errorf("program: mCopyRun n=%d", op.n)
		}
		t, err := aux(2 * op.n)
		if err != nil {
			return err
		}
		for i := 0; i < len(t); i += 2 {
			mem(t[i+1], 2, false)
			mem(t[i], 2, true)
		}
	case mGammaRun:
		if op.n < 1 {
			return fmt.Errorf("program: mGammaRun n=%d", op.n)
		}
		t, err := aux(5 * op.n)
		if err != nil {
			return err
		}
		for i := 0; i < len(t); i += 5 {
			mem(t[i+2], 2, false)
			mem(t[i+3], 2, false)
			mem(t[i+4], 2, false)
			mem(t[i], 2, true)
			mem(t[i+1], 2, true)
		}
	case mExtRun:
		if op.n < 1 {
			return fmt.Errorf("program: mExtRun n=%d", op.n)
		}
		t, err := aux(4 * op.n)
		if err != nil {
			return err
		}
		for i := 0; i < len(t); i += 4 {
			mem(t[i+1], 2, false)
			mem(t[i+2], 2, false)
			mem(t[i+3], 2, false)
			mem(t[i], 2, true)
		}
	case mGammaVec:
		t, err := aux(11)
		if err != nil {
			return err
		}
		for _, o := range t[:6] {
			reg(int32(o), true)
		}
		mem(t[6], wb, false)
		mem(t[7], wb, false)
		mem(t[8], wb, false)
		mem(t[9], wb, true)
		mem(t[10], wb, true)
	case mExtVec:
		t, err := aux(11)
		if err != nil {
			return err
		}
		for _, o := range t[:5] {
			reg(int32(o), true)
		}
		reg(int32(t[5]), false)
		reg(int32(t[6]), false)
		mem(t[7], wb, false)
		mem(t[8], wb, false)
		mem(t[9], wb, false)
		mem(t[10], wb, true)
	case mSelect:
		t, err := aux(12)
		if err != nil {
			return err
		}
		for _, i := range []int{2, 3, 4, 5, 7, 8, 9, 10} {
			reg(int32(t[i]), false)
		}
		for _, i := range []int{0, 1, 6, 11} {
			reg(int32(t[i]), true)
		}
	case mPack:
		if op.n < 2 {
			return fmt.Errorf("program: mPack n=%d", op.n)
		}
		t, err := aux(3 + 2*op.n)
		if err != nil {
			return err
		}
		reg(int32(t[0]), true)
		reg(int32(t[1]), true)
		reg(int32(t[2]), true)
		for b := int32(0); b < op.n; b++ {
			mem(t[3+2*b], 2, false)
			reg(int32(t[4+2*b]), false)
		}
	case mRecurse:
		t, err := aux(10)
		if err != nil {
			return err
		}
		if err := p.checkTabs(false, t[3], t[4]); err != nil {
			return err
		}
		tab(t[3], false)
		tab(t[4], false)
		reg(int32(t[2]), false)
		reg(int32(t[6]), false)
		reg(int32(t[8]), false)
		reg(int32(t[0]), true)
		reg(int32(t[1]), true)
		reg(int32(t[5]), true)
		reg(int32(t[7]), true)
		if t[9] >= 0 {
			reg(int32(t[9]), true)
		}
	case mHmax:
		t, err := aux(6)
		if err != nil {
			return err
		}
		if err := p.checkTabs(false, t[3], t[4], t[5]); err != nil {
			return err
		}
		tab(t[3], false)
		tab(t[4], false)
		tab(t[5], false)
		reg(int32(t[1]), false)
		reg(int32(t[0]), true)
		reg(int32(t[2]), true)
	case mNormSub:
		if op.tab < 0 || int(op.tab) >= len(p.idxTabs) {
			return fmt.Errorf("program: mNormSub table %d outside %d", op.tab, len(p.idxTabs))
		}
		tab(int64(op.tab), false)
		reg(op.d, false)
		reg(op.d, true)
		reg(op.a, true)
	case mQuadScatter:
		if op.n < 2 {
			return fmt.Errorf("program: mQuadScatter n=%d", op.n)
		}
		t, err := aux(3 + 2*op.n)
		if err != nil {
			return err
		}
		for s := int32(0); s < op.n; s++ {
			if err := p.checkTabs(true, t[4+2*s]); err != nil {
				return err
			}
			tab(t[4+2*s], true)
			reg(int32(t[3+2*s]), false)
		}
		reg(int32(t[0]), true)
		reg(int32(t[1]), true)
		mem(t[2], wb, true)
	case mQuadGather:
		if op.n < 1 {
			return fmt.Errorf("program: mQuadGather n=%d", op.n)
		}
		t, err := aux(4 + 2*op.n)
		if err != nil {
			return err
		}
		for s := int32(0); s < op.n; s++ {
			if err := p.checkTabs(true, t[5+2*s]); err != nil {
				return err
			}
			tab(t[5+2*s], true)
			mem(t[4+2*s], wb, false)
		}
		reg(int32(t[0]), true)
		reg(int32(t[1]), true)
		if op.n > 1 {
			reg(int32(t[2]), true)
		}
		mem(t[3], wb, true)
	case mAlphaStepP:
		t, err := aux(16)
		if err != nil {
			return err
		}
		if err := p.checkTabs(true, t[11], t[12], t[13], t[14], t[15]); err != nil {
			return err
		}
		for _, id := range t[11:16] {
			tab(id, true)
		}
		for _, o := range t[:8] {
			reg(int32(o), true)
		}
		reg(int32(t[8]), false) // alpha: read then rewritten
		reg(int32(t[8]), true)
		mem(t[9], wb, false)
		mem(t[10], wb, true)
	case mBetaStepP:
		need := int32(15)
		if op.imm != 0 {
			if op.n < 1 {
				return fmt.Errorf("program: mBetaStepP extract n=%d", op.n)
			}
			need = 26 + 2*op.n
		}
		t, err := aux(need)
		if err != nil {
			return err
		}
		if err := p.checkTabs(true, t[10], t[11], t[12], t[13], t[14]); err != nil {
			return err
		}
		for _, id := range t[10:15] {
			tab(id, true)
		}
		for _, o := range t[:7] {
			reg(int32(o), true)
		}
		reg(int32(t[7]), false) // beta: read then rewritten
		reg(int32(t[7]), true)
		reg(int32(t[8]), true)
		mem(t[9], wb, false)
		if op.imm != 0 {
			if err := p.checkTabs(true, t[23], t[24], t[25]); err != nil {
				return err
			}
			for _, id := range t[23:26] {
				tab(id, true)
			}
			for _, o := range t[15:22] {
				reg(int32(o), true)
			}
			mem(t[22], wb, false)
			et := t[26 : 26+2*op.n]
			for x := 0; x < len(et); x += 2 {
				if lane := et[x+1]; lane < 0 || lane >= regStride {
					return fmt.Errorf("program: mBetaStepP extract lane %d out of range", lane)
				}
				mem(et[x], 2, true)
			}
		}
	default:
		return fmt.Errorf("program: unknown op kind %d", op.kind)
	}
	return nil
}

// checkTabs verifies idxTabs ids are in range and, when full is set,
// long enough for per-lane indexing without permute's short-table
// guard (what fullTabs established at fuse time).
func (p *Program) checkTabs(full bool, ids ...int64) error {
	for _, id := range ids {
		if id < 0 || int(id) >= len(p.idxTabs) {
			return fmt.Errorf("program: index table %d outside %d", id, len(p.idxTabs))
		}
		if full && len(p.idxTabs[id]) < p.lanes {
			return fmt.Errorf("program: index table %d has %d lanes, need %d", id, len(p.idxTabs[id]), p.lanes)
		}
	}
	return nil
}

// pageShift is the memory-aliasing granularity for DAG construction:
// accesses are tracked per 64-byte page (one W512 register line), so
// two ops conflict when they touch the same page and at least one
// writes. Coarser than byte-exact, therefore safe.
const pageShift = 6

// Edge kinds: what carries a dependency between two mops. An edge can
// be both (the pair conflicts through a register and through memory).
// The distinction only matters to the cost model — the scheduler's
// legality is kind-blind — which uses it to gate a mop's load µops on
// memory-carried predecessors and its compute µops on register-carried
// ones, instead of serializing everything behind everything.
const (
	edgeReg uint8 = 1 << iota
	edgeMem
)

// dag is the dependency graph over one segment's mops. Edges always
// point from a lower index to a higher one (program order is a
// topological order by construction). predKind[i][j] carries the edge
// kind bits for preds[i][j].
type dag struct {
	preds    [][]int32
	predKind [][]uint8
	succs    [][]int32
	indeg    []int32
}

// accessState tracks one resource's last writer and the readers seen
// since that write.
type accessState struct {
	lastWriter int32
	readers    []int32
}

// buildDAG constructs the dependency DAG for seg. Any topological
// order of the result replays bit-identically to program order.
func (p *Program) buildDAG(seg []mop) (*dag, error) {
	n := len(seg)
	d := &dag{
		preds:    make([][]int32, n),
		predKind: make([][]uint8, n),
		succs:    make([][]int32, n),
		indeg:    make([]int32, n),
	}
	nreg := len(p.regs) / regStride
	regs := make([]accessState, nreg)
	for i := range regs {
		regs[i].lastWriter = -1
	}
	pages := make(map[int64]*accessState)
	// mark dedups edges into the current op: mark[j] == i+1 means the
	// edge j -> i already exists, at position edgeAt[j] of preds[i].
	mark := make([]int32, n)
	edgeAt := make([]int32, n)

	var cur int32
	var verr error
	addPred := func(j int32, kind uint8) {
		if j < 0 || j == cur {
			return
		}
		if mark[j] == cur+1 {
			d.predKind[cur][edgeAt[j]] |= kind
			return
		}
		mark[j] = cur + 1
		edgeAt[j] = int32(len(d.preds[cur]))
		d.preds[cur] = append(d.preds[cur], j)
		d.predKind[cur] = append(d.predKind[cur], kind)
		d.succs[j] = append(d.succs[j], cur)
		d.indeg[cur]++
	}
	touch := func(st *accessState, write bool, kind uint8) {
		if write {
			addPred(st.lastWriter, kind)
			for _, r := range st.readers {
				addPred(r, kind)
			}
			st.lastWriter = cur
			st.readers = st.readers[:0]
		} else {
			addPred(st.lastWriter, kind)
			if k := len(st.readers); k == 0 || st.readers[k-1] != cur {
				st.readers = append(st.readers, cur)
			}
		}
	}
	v := &effectVisitor{
		reg: func(off int32, write bool) {
			id := off / regStride
			if off < 0 || int(id) >= nreg {
				if verr == nil {
					verr = fmt.Errorf("program: register offset %d outside file of %d", off, nreg)
				}
				return
			}
			touch(&regs[id], write, edgeReg)
		},
		mem: func(addr, nb int64, write bool) {
			if nb <= 0 {
				return
			}
			for pg := addr >> pageShift; pg <= (addr+nb-1)>>pageShift; pg++ {
				st := pages[pg]
				if st == nil {
					st = &accessState{lastWriter: -1}
					pages[pg] = st
				}
				touch(st, write, edgeMem)
			}
		},
	}
	for i := range seg {
		cur = int32(i)
		if err := p.visitEffects(&seg[i], v); err != nil {
			return nil, err
		}
		if verr != nil {
			return nil, verr
		}
	}
	return d, nil
}

// legalOrder reports whether order is a permutation of [0,n) in which
// every mop appears after all of its DAG predecessors.
func (d *dag) legalOrder(order []int32) bool {
	n := len(d.preds)
	if len(order) != n {
		return false
	}
	pos := make([]int32, n)
	for i := range pos {
		pos[i] = -1
	}
	for at, idx := range order {
		if idx < 0 || int(idx) >= n || pos[idx] >= 0 {
			return false
		}
		pos[idx] = int32(at)
	}
	for i := 0; i < n; i++ {
		for _, pr := range d.preds[i] {
			if pos[pr] >= pos[i] {
				return false
			}
		}
	}
	return true
}
