package program

import (
	"encoding/binary"

	"vransim/internal/simd"
)

func satAdd(a, b int16) int16 {
	s := int32(a) + int32(b)
	if s > 32767 {
		return 32767
	}
	if s < -32768 {
		return -32768
	}
	return int16(s)
}

func satSub(a, b int16) int16 {
	s := int32(a) - int32(b)
	if s > 32767 {
		return 32767
	}
	if s < -32768 {
		return -32768
	}
	return int16(s)
}

func rd16(data []byte, a int64) int16 {
	return int16(binary.LittleEndian.Uint16(data[a:]))
}

func wr16(data []byte, a int64, x int16) {
	binary.LittleEndian.PutUint16(data[a:], uint16(x))
}

// Run replays one segment directly over mem. The register file persists
// across calls; a decode runs SegFirst once and SegSteady for every
// iteration after the first. No state outside mem and the program's own
// register file is touched, and the loop performs no allocation.
func (p *Program) Run(mem *simd.Memory, seg int) {
	data := mem.Bytes(0, mem.Size())
	r := p.regs
	L := p.lanes
	for oi := range p.segs[seg] {
		op := &p.segs[seg][oi]
		switch op.kind {
		case mClear:
			clear(r[op.d : op.d+regStride])
		case mAddS:
			d, a, b := r[op.d:op.d+regStride], r[op.a:op.a+regStride], r[op.b:op.b+regStride]
			for i := 0; i < L; i++ {
				d[i] = satAdd(a[i], b[i])
			}
		case mSubS:
			d, a, b := r[op.d:op.d+regStride], r[op.a:op.a+regStride], r[op.b:op.b+regStride]
			for i := 0; i < L; i++ {
				d[i] = satSub(a[i], b[i])
			}
		case mMaxS:
			d, a, b := r[op.d:op.d+regStride], r[op.a:op.a+regStride], r[op.b:op.b+regStride]
			for i := 0; i < L; i++ {
				if a[i] > b[i] {
					d[i] = a[i]
				} else {
					d[i] = b[i]
				}
			}
		case mMinS:
			d, a, b := r[op.d:op.d+regStride], r[op.a:op.a+regStride], r[op.b:op.b+regStride]
			for i := 0; i < L; i++ {
				if a[i] < b[i] {
					d[i] = a[i]
				} else {
					d[i] = b[i]
				}
			}
		case mAnd:
			d, a, b := r[op.d:op.d+regStride], r[op.a:op.a+regStride], r[op.b:op.b+regStride]
			for i := 0; i < L; i++ {
				d[i] = a[i] & b[i]
			}
		case mOr:
			d, a, b := r[op.d:op.d+regStride], r[op.a:op.a+regStride], r[op.b:op.b+regStride]
			for i := 0; i < L; i++ {
				d[i] = a[i] | b[i]
			}
		case mXor:
			d, a, b := r[op.d:op.d+regStride], r[op.a:op.a+regStride], r[op.b:op.b+regStride]
			for i := 0; i < L; i++ {
				d[i] = a[i] ^ b[i]
			}
		case mAndN:
			d, a, b := r[op.d:op.d+regStride], r[op.a:op.a+regStride], r[op.b:op.b+regStride]
			for i := 0; i < L; i++ {
				d[i] = ^a[i] & b[i]
			}
		case mSra:
			d, a := r[op.d:op.d+regStride], r[op.a:op.a+regStride]
			sh := uint(op.imm)
			for i := 0; i < L; i++ {
				d[i] = a[i] >> sh
			}
		case mBcastImm:
			d := r[op.d : op.d+regStride]
			x := int16(op.imm)
			for i := 0; i < L; i++ {
				d[i] = x
			}
		case mBcastMem:
			d := r[op.d : op.d+regStride]
			x := rd16(data, op.addr)
			for i := 0; i < L; i++ {
				d[i] = x
			}
		case mSetImm:
			d := r[op.d : op.d+regStride]
			clear(d)
			copy(d, p.lanePats[op.tab])
		case mPermute:
			p.permute(r, op.d, op.a, p.idxTabs[op.tab])
		case mExt128:
			p.extract(r, op.d, op.a, 8*int(op.imm), 8)
		case mExt256:
			p.extract(r, op.d, op.a, 16*int(op.imm), 16)
		case mLoad:
			d := r[op.d : op.d+regStride]
			clear(d)
			n := int(op.imm) / 2
			a := op.addr
			for i := 0; i < n; i++ {
				d[i] = rd16(data, a+int64(2*i))
			}
		case mStore:
			a := r[op.a : op.a+regStride]
			n := int(op.imm) / 2
			ad := op.addr
			for i := 0; i < n; i++ {
				wr16(data, ad+int64(2*i), a[i])
			}
		case mExtrW:
			wr16(data, op.addr, r[op.a+int32(op.imm)])
		case mInsrW:
			r[op.d+int32(op.imm)] = rd16(data, op.addr)
		case mCopy16:
			wr16(data, op.addr, rd16(data, op.addr2))
		case mGammaPoint:
			s := rd16(data, int64(p.aux32[op.tab]))
			pv := rd16(data, int64(p.aux32[op.tab+1]))
			la := rd16(data, int64(p.aux32[op.tab+2]))
			sa := int32(s) + int32(la)
			wr16(data, op.addr, sat16i(sa+int32(pv)))
			wr16(data, op.addr2, sat16i(sa-int32(pv)))
		case mExtPoint:
			s := rd16(data, int64(p.aux32[op.tab]))
			la := rd16(data, int64(p.aux32[op.tab+1]))
			dv := rd16(data, int64(p.aux32[op.tab+2]))
			x := int32(dv>>1) - int32(s) - int32(la)
			wr16(data, op.addr, clampi(x, int32(op.imm)))

		case mCopyRun:
			t := p.aux[op.tab : op.tab+2*op.n]
			for i := 0; i < len(t); i += 2 {
				wr16(data, t[i], rd16(data, t[i+1]))
			}
		case mGammaRun:
			t := p.aux[op.tab : op.tab+5*op.n]
			for i := 0; i < len(t); i += 5 {
				s := rd16(data, t[i+2])
				pv := rd16(data, t[i+3])
				la := rd16(data, t[i+4])
				sa := int32(s) + int32(la)
				wr16(data, t[i], sat16i(sa+int32(pv)))
				wr16(data, t[i+1], sat16i(sa-int32(pv)))
			}
		case mExtRun:
			t := p.aux[op.tab : op.tab+4*op.n]
			cl := int32(op.imm)
			for i := 0; i < len(t); i += 4 {
				s := rd16(data, t[i+1])
				la := rd16(data, t[i+2])
				dv := rd16(data, t[i+3])
				wr16(data, t[i], clampi(int32(dv>>1)-int32(s)-int32(la), cl))
			}
		case mGammaVec:
			t := p.aux[op.tab : op.tab+11]
			s, pv, la := r[t[0]:t[0]+regStride], r[t[1]:t[1]+regStride], r[t[2]:t[2]+regStride]
			tt, g0, g1 := r[t[3]:t[3]+regStride], r[t[4]:t[4]+regStride], r[t[5]:t[5]+regStride]
			sA, pA, laA, g0A, g1A := t[6], t[7], t[8], t[9], t[10]
			for i := 0; i < L; i++ {
				sv := rd16(data, sA+int64(2*i))
				pvv := rd16(data, pA+int64(2*i))
				lv := rd16(data, laA+int64(2*i))
				tv := satAdd(sv, lv)
				g0v := satAdd(tv, pvv)
				g1v := satSub(tv, pvv)
				s[i], pv[i], la[i], tt[i], g0[i], g1[i] = sv, pvv, lv, tv, g0v, g1v
				wr16(data, g0A+int64(2*i), g0v)
				wr16(data, g1A+int64(2*i), g1v)
			}
		case mExtVec:
			t := p.aux[op.tab : op.tab+11]
			dvec, s, la := r[t[0]:t[0]+regStride], r[t[1]:t[1]+regStride], r[t[2]:t[2]+regStride]
			tt, half := r[t[3]:t[3]+regStride], r[t[4]:t[4]+regStride]
			lim, nlim := r[t[5]:t[5]+regStride], r[t[6]:t[6]+regStride]
			dA, sA, laA, oA := t[7], t[8], t[9], t[10]
			sh := uint(op.imm)
			for i := 0; i < L; i++ {
				dv := rd16(data, dA+int64(2*i))
				sv := rd16(data, sA+int64(2*i))
				lv := rd16(data, laA+int64(2*i))
				tv := satAdd(sv, lv)
				h := satSub(dv>>sh, tv)
				if h > lim[i] {
					h = lim[i]
				}
				if h < nlim[i] {
					h = nlim[i]
				}
				dvec[i], s[i], la[i], tt[i], half[i] = dv, sv, lv, tv, h
				wr16(data, oA+int64(2*i), h)
			}
		case mSelect:
			t := p.aux[op.tab : op.tab+12]
			t1, t2 := r[t[0]:t[0]+regStride], r[t[1]:t[1]+regStride]
			bg0, m0 := r[t[2]:t[2]+regStride], r[t[3]:t[3]+regStride]
			bg1, m0n := r[t[4]:t[4]+regStride], r[t[5]:t[5]+regStride]
			bm0 := r[t[6] : t[6]+regStride]
			ng1, m1 := r[t[7]:t[7]+regStride], r[t[8]:t[8]+regStride]
			ng0, m1n := r[t[9]:t[9]+regStride], r[t[10]:t[10]+regStride]
			bm1 := r[t[11] : t[11]+regStride]
			for i := 0; i < L; i++ {
				x := bg0[i] & m0[i]
				t1[i] = x
				y := bg1[i] & m0n[i]
				t2[i] = y
				bm0[i] = x | y
				x = ng1[i] & m1[i]
				t1[i] = x
				y = ng0[i] & m1n[i]
				t2[i] = y
				bm1[i] = x | y
			}
		case mPack:
			nb := int(op.n)
			t := p.aux[op.tab : op.tab+int32(3+2*nb)]
			dst, pA, pT := r[t[0]:t[0]+regStride], r[t[1]:t[1]+regStride], r[t[2]:t[2]+regStride]
			for i := 0; i < L; i++ {
				v := rd16(data, t[3])
				pA[i] = v
				acc := v & r[t[4]+int64(i)]
				for b := 1; b < nb; b++ {
					v = rd16(data, t[3+2*b])
					pA[i] = v
					x := v & r[t[4+2*b]+int64(i)]
					pT[i] = x
					acc |= x
				}
				dst[i] = acc
			}
		case mRecurse:
			t := p.aux[op.tab : op.tab+10]
			p.permute(r, int32(t[0]), int32(t[2]), p.idxTabs[t[3]])
			p.permute(r, int32(t[1]), int32(t[2]), p.idxTabs[t[4]])
			r0, x0 := r[t[0]:t[0]+regStride], r[t[6]:t[6]+regStride]
			r1, x1 := r[t[1]:t[1]+regStride], r[t[8]:t[8]+regStride]
			c0, c1 := r[t[5]:t[5]+regStride], r[t[7]:t[7]+regStride]
			if t[9] >= 0 {
				d := r[t[9] : t[9]+regStride]
				for i := 0; i < L; i++ {
					a := satAdd(r0[i], x0[i])
					b := satAdd(r1[i], x1[i])
					c0[i], c1[i] = a, b
					if a > b {
						d[i] = a
					} else {
						d[i] = b
					}
				}
			} else {
				for i := 0; i < L; i++ {
					c0[i] = satAdd(r0[i], x0[i])
					c1[i] = satAdd(r1[i], x1[i])
				}
			}
		case mHmax:
			t := p.aux[op.tab : op.tab+6]
			tmp, v, dst := int32(t[0]), int32(t[1]), int32(t[2])
			p.permute(r, tmp, v, p.idxTabs[t[3]])
			dd, vv, tt := r[dst:dst+regStride], r[v:v+regStride], r[tmp:tmp+regStride]
			for i := 0; i < L; i++ {
				if vv[i] > tt[i] {
					dd[i] = vv[i]
				} else {
					dd[i] = tt[i]
				}
			}
			for step := 1; step < 3; step++ {
				p.permute(r, tmp, dst, p.idxTabs[t[3+step]])
				for i := 0; i < L; i++ {
					if tt[i] > dd[i] {
						dd[i] = tt[i]
					}
				}
			}
		case mNormSub:
			p.permute(r, op.a, op.d, p.idxTabs[op.tab])
			d, norm := r[op.d:op.d+regStride], r[op.a:op.a+regStride]
			for i := 0; i < L; i++ {
				d[i] = satSub(d[i], norm[i])
			}
		}
	}
}

// permute implements the engine's PermuteW semantics: active lanes only,
// out-of-range or missing indices select zero, staging through scratch
// so dst == src aliasing behaves identically.
func (p *Program) permute(r []int16, d, a int32, idx []int32) {
	L := p.lanes
	tmp := p.tmp[:L]
	clear(tmp)
	src := r[a : a+regStride]
	n := L
	if len(idx) < n {
		n = len(idx)
	}
	for i := 0; i < n; i++ {
		if j := idx[i]; j >= 0 && int(j) < L {
			tmp[i] = src[j]
		}
	}
	copy(r[d:d+int32(L)], tmp)
}

// extract implements VExtractI128/VExtractI32x8: lanes [from, from+n) of
// a into lanes [0, n) of d, the rest of d zeroed.
func (p *Program) extract(r []int16, d, a int32, from, n int) {
	tmp := p.tmp[:n]
	copy(tmp, r[a+int32(from):a+int32(from+n)])
	clear(r[d : d+regStride])
	copy(r[d:d+int32(n)], tmp)
}

func sat16i(x int32) int16 {
	if x > 32767 {
		return 32767
	}
	if x < -32768 {
		return -32768
	}
	return int16(x)
}

func clampi(x, c int32) int16 {
	if x > c {
		x = c
	}
	if x < -c {
		x = -c
	}
	return int16(x)
}
