package program

import (
	"encoding/binary"

	"vransim/internal/simd"
)

func satAdd(a, b int16) int16 {
	s := int32(a) + int32(b)
	if s > 32767 {
		return 32767
	}
	if s < -32768 {
		return -32768
	}
	return int16(s)
}

func satSub(a, b int16) int16 {
	s := int32(a) - int32(b)
	if s > 32767 {
		return 32767
	}
	if s < -32768 {
		return -32768
	}
	return int16(s)
}

func rd16(data []byte, a int64) int16 {
	return int16(binary.LittleEndian.Uint16(data[a:]))
}

func wr16(data []byte, a int64, x int16) {
	binary.LittleEndian.PutUint16(data[a:], uint16(x))
}

// Run replays one segment directly over mem. The register file persists
// across calls; a decode runs SegFirst once and SegSteady for every
// iteration after the first. No state outside mem and the program's own
// register file is touched, and the loop performs no allocation.
func (p *Program) Run(mem *simd.Memory, seg int) {
	data := mem.Bytes(0, mem.Size())
	r := p.regs
	L := p.lanes
	for oi := range p.segs[seg] {
		op := &p.segs[seg][oi]
		switch op.kind {
		case mClear:
			clear(r[op.d : op.d+regStride])
		case mAddS:
			d, a, b := r[op.d:op.d+regStride], r[op.a:op.a+regStride], r[op.b:op.b+regStride]
			for i := 0; i < L; i++ {
				d[i] = satAdd(a[i], b[i])
			}
		case mSubS:
			d, a, b := r[op.d:op.d+regStride], r[op.a:op.a+regStride], r[op.b:op.b+regStride]
			for i := 0; i < L; i++ {
				d[i] = satSub(a[i], b[i])
			}
		case mMaxS:
			d, a, b := r[op.d:op.d+regStride], r[op.a:op.a+regStride], r[op.b:op.b+regStride]
			for i := 0; i < L; i++ {
				if a[i] > b[i] {
					d[i] = a[i]
				} else {
					d[i] = b[i]
				}
			}
		case mMinS:
			d, a, b := r[op.d:op.d+regStride], r[op.a:op.a+regStride], r[op.b:op.b+regStride]
			for i := 0; i < L; i++ {
				if a[i] < b[i] {
					d[i] = a[i]
				} else {
					d[i] = b[i]
				}
			}
		case mAnd:
			d, a, b := r[op.d:op.d+regStride], r[op.a:op.a+regStride], r[op.b:op.b+regStride]
			for i := 0; i < L; i++ {
				d[i] = a[i] & b[i]
			}
		case mOr:
			d, a, b := r[op.d:op.d+regStride], r[op.a:op.a+regStride], r[op.b:op.b+regStride]
			for i := 0; i < L; i++ {
				d[i] = a[i] | b[i]
			}
		case mXor:
			d, a, b := r[op.d:op.d+regStride], r[op.a:op.a+regStride], r[op.b:op.b+regStride]
			for i := 0; i < L; i++ {
				d[i] = a[i] ^ b[i]
			}
		case mAndN:
			d, a, b := r[op.d:op.d+regStride], r[op.a:op.a+regStride], r[op.b:op.b+regStride]
			for i := 0; i < L; i++ {
				d[i] = ^a[i] & b[i]
			}
		case mSra:
			d, a := r[op.d:op.d+regStride], r[op.a:op.a+regStride]
			sh := uint(op.imm)
			for i := 0; i < L; i++ {
				d[i] = a[i] >> sh
			}
		case mBcastImm:
			d := r[op.d : op.d+regStride]
			x := int16(op.imm)
			for i := 0; i < L; i++ {
				d[i] = x
			}
		case mBcastMem:
			d := r[op.d : op.d+regStride]
			x := rd16(data, op.addr)
			for i := 0; i < L; i++ {
				d[i] = x
			}
		case mSetImm:
			d := r[op.d : op.d+regStride]
			clear(d)
			copy(d, p.lanePats[op.tab])
		case mPermute:
			p.permute(r, op.d, op.a, p.idxTabs[op.tab])
		case mExt128:
			p.extract(r, op.d, op.a, 8*int(op.imm), 8)
		case mExt256:
			p.extract(r, op.d, op.a, 16*int(op.imm), 16)
		case mLoad:
			d := r[op.d : op.d+regStride]
			clear(d)
			n := int(op.imm) / 2
			a := op.addr
			for i := 0; i < n; i++ {
				d[i] = rd16(data, a+int64(2*i))
			}
		case mStore:
			a := r[op.a : op.a+regStride]
			n := int(op.imm) / 2
			ad := op.addr
			for i := 0; i < n; i++ {
				wr16(data, ad+int64(2*i), a[i])
			}
		case mExtrW:
			wr16(data, op.addr, r[op.a+int32(op.imm)])
		case mInsrW:
			r[op.d+int32(op.imm)] = rd16(data, op.addr)
		case mCopy16:
			wr16(data, op.addr, rd16(data, op.addr2))
		case mGammaPoint:
			s := rd16(data, int64(p.aux32[op.tab]))
			pv := rd16(data, int64(p.aux32[op.tab+1]))
			la := rd16(data, int64(p.aux32[op.tab+2]))
			sa := int32(s) + int32(la)
			wr16(data, op.addr, sat16i(sa+int32(pv)))
			wr16(data, op.addr2, sat16i(sa-int32(pv)))
		case mExtPoint:
			s := rd16(data, int64(p.aux32[op.tab]))
			la := rd16(data, int64(p.aux32[op.tab+1]))
			dv := rd16(data, int64(p.aux32[op.tab+2]))
			x := int32(dv>>1) - int32(s) - int32(la)
			wr16(data, op.addr, clampi(x, int32(op.imm)))

		case mCopyRun:
			t := p.aux[op.tab : op.tab+2*op.n]
			for i := 0; i < len(t); i += 2 {
				wr16(data, t[i], rd16(data, t[i+1]))
			}
		case mGammaRun:
			t := p.aux[op.tab : op.tab+5*op.n]
			for i := 0; i < len(t); i += 5 {
				s := rd16(data, t[i+2])
				pv := rd16(data, t[i+3])
				la := rd16(data, t[i+4])
				sa := int32(s) + int32(la)
				wr16(data, t[i], sat16i(sa+int32(pv)))
				wr16(data, t[i+1], sat16i(sa-int32(pv)))
			}
		case mExtRun:
			t := p.aux[op.tab : op.tab+4*op.n]
			cl := int32(op.imm)
			for i := 0; i < len(t); i += 4 {
				s := rd16(data, t[i+1])
				la := rd16(data, t[i+2])
				dv := rd16(data, t[i+3])
				wr16(data, t[i], clampi(int32(dv>>1)-int32(s)-int32(la), cl))
			}
		case mGammaVec:
			t := p.aux[op.tab : op.tab+11]
			s, pv, la := r[t[0]:t[0]+regStride], r[t[1]:t[1]+regStride], r[t[2]:t[2]+regStride]
			tt, g0, g1 := r[t[3]:t[3]+regStride], r[t[4]:t[4]+regStride], r[t[5]:t[5]+regStride]
			sA, pA, laA, g0A, g1A := t[6], t[7], t[8], t[9], t[10]
			for i := 0; i < L; i++ {
				sv := rd16(data, sA+int64(2*i))
				pvv := rd16(data, pA+int64(2*i))
				lv := rd16(data, laA+int64(2*i))
				tv := satAdd(sv, lv)
				g0v := satAdd(tv, pvv)
				g1v := satSub(tv, pvv)
				s[i], pv[i], la[i], tt[i], g0[i], g1[i] = sv, pvv, lv, tv, g0v, g1v
				wr16(data, g0A+int64(2*i), g0v)
				wr16(data, g1A+int64(2*i), g1v)
			}
		case mExtVec:
			t := p.aux[op.tab : op.tab+11]
			dvec, s, la := r[t[0]:t[0]+regStride], r[t[1]:t[1]+regStride], r[t[2]:t[2]+regStride]
			tt, half := r[t[3]:t[3]+regStride], r[t[4]:t[4]+regStride]
			lim, nlim := r[t[5]:t[5]+regStride], r[t[6]:t[6]+regStride]
			dA, sA, laA, oA := t[7], t[8], t[9], t[10]
			sh := uint(op.imm)
			for i := 0; i < L; i++ {
				dv := rd16(data, dA+int64(2*i))
				sv := rd16(data, sA+int64(2*i))
				lv := rd16(data, laA+int64(2*i))
				tv := satAdd(sv, lv)
				h := satSub(dv>>sh, tv)
				if h > lim[i] {
					h = lim[i]
				}
				if h < nlim[i] {
					h = nlim[i]
				}
				dvec[i], s[i], la[i], tt[i], half[i] = dv, sv, lv, tv, h
				wr16(data, oA+int64(2*i), h)
			}
		case mSelect:
			t := p.aux[op.tab : op.tab+12]
			t1, t2 := r[t[0]:t[0]+regStride], r[t[1]:t[1]+regStride]
			bg0, m0 := r[t[2]:t[2]+regStride], r[t[3]:t[3]+regStride]
			bg1, m0n := r[t[4]:t[4]+regStride], r[t[5]:t[5]+regStride]
			bm0 := r[t[6] : t[6]+regStride]
			ng1, m1 := r[t[7]:t[7]+regStride], r[t[8]:t[8]+regStride]
			ng0, m1n := r[t[9]:t[9]+regStride], r[t[10]:t[10]+regStride]
			bm1 := r[t[11] : t[11]+regStride]
			for i := 0; i < L; i++ {
				x := bg0[i] & m0[i]
				t1[i] = x
				y := bg1[i] & m0n[i]
				t2[i] = y
				bm0[i] = x | y
				x = ng1[i] & m1[i]
				t1[i] = x
				y = ng0[i] & m1n[i]
				t2[i] = y
				bm1[i] = x | y
			}
		case mPack:
			nb := int(op.n)
			t := p.aux[op.tab : op.tab+int32(3+2*nb)]
			dst, pA, pT := r[t[0]:t[0]+regStride], r[t[1]:t[1]+regStride], r[t[2]:t[2]+regStride]
			for i := 0; i < L; i++ {
				v := rd16(data, t[3])
				pA[i] = v
				acc := v & r[t[4]+int64(i)]
				for b := 1; b < nb; b++ {
					v = rd16(data, t[3+2*b])
					pA[i] = v
					x := v & r[t[4+2*b]+int64(i)]
					pT[i] = x
					acc |= x
				}
				dst[i] = acc
			}
		case mRecurse:
			t := p.aux[op.tab : op.tab+10]
			p.permute(r, int32(t[0]), int32(t[2]), p.idxTabs[t[3]])
			p.permute(r, int32(t[1]), int32(t[2]), p.idxTabs[t[4]])
			r0, x0 := r[t[0]:t[0]+regStride], r[t[6]:t[6]+regStride]
			r1, x1 := r[t[1]:t[1]+regStride], r[t[8]:t[8]+regStride]
			c0, c1 := r[t[5]:t[5]+regStride], r[t[7]:t[7]+regStride]
			if t[9] >= 0 {
				d := r[t[9] : t[9]+regStride]
				for i := 0; i < L; i++ {
					a := satAdd(r0[i], x0[i])
					b := satAdd(r1[i], x1[i])
					c0[i], c1[i] = a, b
					if a > b {
						d[i] = a
					} else {
						d[i] = b
					}
				}
			} else {
				for i := 0; i < L; i++ {
					c0[i] = satAdd(r0[i], x0[i])
					c1[i] = satAdd(r1[i], x1[i])
				}
			}
		case mHmax:
			t := p.aux[op.tab : op.tab+6]
			tmp, v, dst := int32(t[0]), int32(t[1]), int32(t[2])
			p.permute(r, tmp, v, p.idxTabs[t[3]])
			dd, vv, tt := r[dst:dst+regStride], r[v:v+regStride], r[tmp:tmp+regStride]
			for i := 0; i < L; i++ {
				if vv[i] > tt[i] {
					dd[i] = vv[i]
				} else {
					dd[i] = tt[i]
				}
			}
			for step := 1; step < 3; step++ {
				p.permute(r, tmp, dst, p.idxTabs[t[3+step]])
				for i := 0; i < L; i++ {
					if tt[i] > dd[i] {
						dd[i] = tt[i]
					}
				}
			}
		case mNormSub:
			p.permute(r, op.a, op.d, p.idxTabs[op.tab])
			d, norm := r[op.d:op.d+regStride], r[op.a:op.a+regStride]
			for i := 0; i < L; i++ {
				d[i] = satSub(d[i], norm[i])
			}
		case mQuadScatter:
			ns := int(op.n)
			t := p.aux[op.tab : op.tab+int32(3+2*ns)]
			acc := r[t[0] : t[0]+regStride]
			tmp := r[t[1] : t[1]+regStride]
			dstA := t[2]
			vs, last := &p.s0, &p.s1
			for s := 0; s < ns; s++ {
				src := r[t[3+2*s] : t[3+2*s]+regStride]
				tb := p.idxTabs[t[4+2*s]]
				for i := 0; i < L; i++ {
					var x int16
					if j := tb[i]; j >= 0 && int(j) < L {
						x = src[j]
					}
					if s == 0 {
						vs[i] = x
					} else {
						vs[i] |= x
						last[i] = x
					}
				}
			}
			for i := 0; i < L; i++ {
				acc[i] = vs[i]
				tmp[i] = last[i]
				wr16(data, dstA+int64(2*i), vs[i])
			}
		case mQuadGather:
			ns := int(op.n)
			t := p.aux[op.tab : op.tab+int32(4+2*ns)]
			acc := r[t[1] : t[1]+regStride]
			dstA := t[3]
			vs, last := &p.s0, &p.s1
			for s := 0; s < ns; s++ {
				sa := t[4+2*s]
				tb := p.idxTabs[t[5+2*s]]
				for i := 0; i < L; i++ {
					var x int16
					if j := tb[i]; j >= 0 && int(j) < L {
						x = rd16(data, sa+int64(2*j))
					}
					if s == 0 {
						vs[i] = x
					} else {
						vs[i] |= x
						last[i] = x
					}
				}
			}
			if ns > 1 {
				tmp := r[t[2] : t[2]+regStride]
				copy(tmp[:L], last[:L])
			}
			for i := 0; i < L; i++ {
				acc[i] = vs[i]
				wr16(data, dstA+int64(2*i), vs[i])
			}
			// The source register's final value is the last load (the
			// store range is disjoint from every load range, checked at
			// fuse time, so re-reading after the store is safe).
			rr := r[t[0] : t[0]+regStride]
			if L < regStride {
				clear(rr)
			}
			lastA := t[4+2*(ns-1)]
			for i := 0; i < L; i++ {
				rr[i] = rd16(data, lastA+int64(2*i))
			}
		case mAlphaStepP:
			t := p.aux[op.tab : op.tab+16]
			qd := r[t[0] : t[0]+regStride]
			bm0 := r[t[1] : t[1]+regStride]
			bm1 := r[t[2] : t[2]+regStride]
			a0 := r[t[3] : t[3]+regStride]
			a1 := r[t[4] : t[4]+regStride]
			c0 := r[t[5] : t[5]+regStride]
			c1 := r[t[6] : t[6]+regStride]
			norm := r[t[7] : t[7]+regStride]
			al := r[t[8] : t[8]+regStride]
			qA, sA := t[9], t[10]
			tb0, tb1 := p.idxTabs[t[11]], p.idxTabs[t[12]]
			tp0, tp1, tn := p.idxTabs[t[13]], p.idxTabs[t[14]], p.idxTabs[t[15]]
			if L < regStride {
				clear(qd)
			}
			for i := 0; i < L; i++ {
				qd[i] = rd16(data, qA+int64(2*i))
			}
			na := &p.s0
			for i := 0; i < L; i++ {
				var x0, x1, y0, y1 int16
				if j := tb0[i]; j >= 0 && int(j) < L {
					x0 = qd[j]
				}
				if j := tb1[i]; j >= 0 && int(j) < L {
					x1 = qd[j]
				}
				if j := tp0[i]; j >= 0 && int(j) < L {
					y0 = al[j]
				}
				if j := tp1[i]; j >= 0 && int(j) < L {
					y1 = al[j]
				}
				bm0[i], bm1[i], a0[i], a1[i] = x0, x1, y0, y1
				s0 := satAdd(y0, x0)
				s1 := satAdd(y1, x1)
				c0[i], c1[i] = s0, s1
				if s1 > s0 {
					s0 = s1
				}
				na[i] = s0
			}
			for i := 0; i < L; i++ {
				var nv int16
				if j := tn[i]; j >= 0 && int(j) < L {
					nv = na[j]
				}
				norm[i] = nv
				v := satSub(na[i], nv)
				al[i] = v
				wr16(data, sA+int64(2*i), v)
			}
		case mBetaStepP:
			t := p.aux[op.tab:]
			qd := r[t[0] : t[0]+regStride]
			bm0 := r[t[1] : t[1]+regStride]
			bm1 := r[t[2] : t[2]+regStride]
			b0 := r[t[3] : t[3]+regStride]
			b1 := r[t[4] : t[4]+regStride]
			v0 := r[t[5] : t[5]+regStride]
			v1 := r[t[6] : t[6]+regStride]
			beta := r[t[7] : t[7]+regStride]
			norm := r[t[8] : t[8]+regStride]
			qA := t[9]
			tb0, tb1 := p.idxTabs[t[10]], p.idxTabs[t[11]]
			tn0, tn1, tn := p.idxTabs[t[12]], p.idxTabs[t[13]], p.idxTabs[t[14]]
			if L < regStride {
				clear(qd)
			}
			for i := 0; i < L; i++ {
				qd[i] = rd16(data, qA+int64(2*i))
			}
			for i := 0; i < L; i++ {
				var x0, x1, y0, y1 int16
				if j := tb0[i]; j >= 0 && int(j) < L {
					x0 = qd[j]
				}
				if j := tb1[i]; j >= 0 && int(j) < L {
					x1 = qd[j]
				}
				if j := tn0[i]; j >= 0 && int(j) < L {
					y0 = beta[j]
				}
				if j := tn1[i]; j >= 0 && int(j) < L {
					y1 = beta[j]
				}
				bm0[i], bm1[i], b0[i], b1[i] = x0, x1, y0, y1
				v0[i] = satAdd(y0, x0)
				v1[i] = satAdd(y1, x1)
			}
			if op.imm != 0 {
				// Fused posterior extraction for in-block steps.
				al := r[t[15] : t[15]+regStride]
				e0 := r[t[16] : t[16]+regStride]
				e1 := r[t[17] : t[17]+regStride]
				m0 := r[t[18] : t[18]+regStride]
				m1 := r[t[19] : t[19]+regStride]
				tmp := r[t[20] : t[20]+regStride]
				dvOff := t[21]
				dv := r[dvOff : dvOff+regStride]
				alA := t[22]
				h0, h1, h2 := p.idxTabs[t[23]], p.idxTabs[t[24]], p.idxTabs[t[25]]
				if L < regStride {
					clear(al)
				}
				for i := 0; i < L; i++ {
					av := rd16(data, alA+int64(2*i))
					al[i] = av
					e0[i] = satAdd(av, v0[i])
					e1[i] = satAdd(av, v1[i])
				}
				p.hmax3Pair(e0, e1, m0, m1, tmp, h0, h1, h2)
				for i := 0; i < L; i++ {
					dv[i] = satSub(m0[i], m1[i])
				}
				et := t[26 : 26+2*op.n]
				for x := 0; x < len(et); x += 2 {
					wr16(data, et[x], dv[et[x+1]])
				}
			}
			nb := &p.s0
			for i := 0; i < L; i++ {
				w := v0[i]
				if v1[i] > w {
					w = v1[i]
				}
				nb[i] = w
			}
			for i := 0; i < L; i++ {
				var nv int16
				if j := tn[i]; j >= 0 && int(j) < L {
					nv = nb[j]
				}
				norm[i] = nv
				beta[i] = satSub(nb[i], nv)
			}
		}
	}
}

// hmax3Pair simulates two three-stage permute+max butterflies (sharing
// one index-table set and one scratch register, as the packed posterior
// extraction records them) exactly as the engine executes them, staging
// each stage's full reduction in scratch — the engine's permute reads
// the complete pre-permute register, so a stage may not observe its own
// updates. Only final register values are written: ma/mb get the
// stage-3 reductions and tmp the second butterfly's stage-3 permute
// output; the intermediate tmp values are dead, overwritten within the
// fused sequence. All registers are pairwise distinct (checked at fuse
// time).
func (p *Program) hmax3Pair(va, vb, ma, mb, tmp []int16, h0, h1, h2 []int32) {
	L := p.lanes
	va, vb, ma, mb, tmp = va[:L], vb[:L], ma[:L], mb[:L], tmp[:L]
	h0, h1, h2 = h0[:L], h1[:L], h2[:L]
	a1, b1, a2, b2 := &p.s0, &p.s1, &p.s2, &p.s3
	for i := 0; i < L; i++ {
		var x, y int16
		if j := h0[i]; j >= 0 && int(j) < L {
			x, y = va[j], vb[j]
		}
		if va[i] > x {
			x = va[i]
		}
		if vb[i] > y {
			y = vb[i]
		}
		a1[i], b1[i] = x, y
	}
	for i := 0; i < L; i++ {
		x, y := a1[i], b1[i]
		if j := h1[i]; j >= 0 && int(j) < L {
			if a1[j] > x {
				x = a1[j]
			}
			if b1[j] > y {
				y = b1[j]
			}
		}
		a2[i], b2[i] = x, y
	}
	for i := 0; i < L; i++ {
		var x, y int16
		if j := h2[i]; j >= 0 && int(j) < L {
			x, y = a2[j], b2[j]
		}
		tmp[i] = y
		if x < a2[i] {
			x = a2[i]
		}
		if y < b2[i] {
			y = b2[i]
		}
		ma[i], mb[i] = x, y
	}
}

// permute implements the engine's PermuteW semantics: active lanes only,
// out-of-range or missing indices select zero, staging through scratch
// so dst == src aliasing behaves identically.
func (p *Program) permute(r []int16, d, a int32, idx []int32) {
	L := p.lanes
	tmp := p.tmp[:L]
	clear(tmp)
	src := r[a : a+regStride]
	n := L
	if len(idx) < n {
		n = len(idx)
	}
	for i := 0; i < n; i++ {
		if j := idx[i]; j >= 0 && int(j) < L {
			tmp[i] = src[j]
		}
	}
	copy(r[d:d+int32(L)], tmp)
}

// extract implements VExtractI128/VExtractI32x8: lanes [from, from+n) of
// a into lanes [0, n) of d, the rest of d zeroed.
func (p *Program) extract(r []int16, d, a int32, from, n int) {
	tmp := p.tmp[:n]
	copy(tmp, r[a+int32(from):a+int32(from+n)])
	clear(r[d : d+regStride])
	copy(r[d:d+int32(n)], tmp)
}

func sat16i(x int32) int16 {
	if x > 32767 {
		return 32767
	}
	if x < -32768 {
		return -32768
	}
	return int16(x)
}

func clampi(x, c int32) int16 {
	if x > c {
		x = c
	}
	if x < -c {
		x = -c
	}
	return int16(x)
}
