package program

import (
	"vransim/internal/simd"
)

// mop is one executable replay op. Singleton kinds mirror the recorded
// ops one-to-one; fused kinds carry their operand lists (register lane
// offsets and addresses) in the program's aux pool at [tab, tab+...).
type mop struct {
	kind    uint8
	d, a, b int32 // register lane offsets (regID * regStride)
	addr    int64
	addr2   int64
	imm     int64
	tab     int32
	n       int32
}

// Executable op kinds.
const (
	mClear uint8 = iota
	mAddS
	mSubS
	mMaxS
	mMinS
	mAnd
	mOr
	mXor
	mAndN
	mSra
	mBcastImm
	mBcastMem
	mSetImm
	mPermute
	mExt128
	mExt256
	mLoad
	mStore
	mExtrW
	mInsrW
	mCopy16
	mGammaPoint
	mExtPoint

	// Fused kinds (see fuse.go for the matched patterns).
	mCopyRun  // run of element copies; aux: n × (dst, src) addresses
	mGammaRun // run of scalar gamma points; aux: n × (g0, g1, s, p, la)
	mExtRun   // run of scalar ext points; aux: n × (dst, s, la, d)
	mGammaVec // load s,p,la + padds t,g0 + psubs g1 + store g0,g1
	mExtVec   // load dvec,s,la + padds + psraw + psubs + pmin + pmax + store
	mSelect   // pand,pand,por ×2 branch-metric mask select
	mPack     // broadcast+pand+por gather of per-block branch metrics
	mRecurse  // vpermw ×2 + padds ×2 (+ pmax) trellis recursion step
	mHmax     // vpermw+pmax ×3 intra-block horizontal max
	mNormSub  // vpermw + psubs renormalization

	// Packed-stream fusions (the cross-block SoA decode path; see the
	// try*P matchers in fuse.go). Each replaces a whole recorded phase
	// step with one single-pass op while still writing every
	// intermediate register its final value.
	mQuadScatter // vpermw + (vpermw+por)×m + store: quad branch-metric scatter
	mQuadGather  // load+vpermw (+load+vpermw+por)×m + store: interleave gather
	mAlphaStepP  // load quad + 4 vpermw + 2 padds + pmax + norm + store: alpha step
	mBetaStepP   // beta recursion step, optionally with fused posterior extract
)

// regStride is the register-file stride in lanes. Every register gets
// the full 32 lanes (W512) regardless of the compiled width, so partial
// loads and 128/256-bit extracts behave exactly like the engine's
// 64-byte Vec storage (inactive lanes read as zero).
const regStride = 32

// SegFirst and SegSteady select the two replay segments: the first
// segment is setup + constants + iteration 0, the steady segment is one
// mid-decode iteration (identical for every iteration after the first).
const (
	SegFirst  = 0
	SegSteady = 1
)

// Program is a compiled replay program bound to the arena addresses and
// register dataflow of the decode it was recorded from. It is not safe
// for concurrent use (the register file and permute scratch are owned
// by the program); serving code keeps one per worker, exactly like the
// engine it replaces. Arena eviction invalidates it.
type Program struct {
	w     simd.Width
	lanes int

	regs     []int16
	segs     [2][]mop
	idxTabs  [][]int32
	lanePats [][]int16
	aux32    []int32
	aux      []int64

	tmp [regStride]int16
	// Scratch for the packed-step fused ops. Each op writes the active
	// lanes before reading them, so no clearing between ops is needed.
	s0, s1, s2, s3 [regStride]int16

	// RawOps and FusedOps count the recorded ops and the executable ops
	// per segment — the compression the fusion pass achieved.
	RawOps   [2]int
	FusedOps [2]int

	// sched records what the scheduling pass (sched.go) did, when
	// CompileOptions.Schedule was set.
	sched SchedInfo
}

// Width reports the register width the program was compiled for.
func (p *Program) Width() simd.Width { return p.w }

// Compile lowers the recorded stream into a replay program for width w.
// It fails (and the caller stays on the interpreter) when fewer than
// two iterations were recorded, when any iteration diverged from the
// steady segment, or when recording hit an unsupported op.
func (b *Builder) Compile(w simd.Width) (*Program, error) {
	return b.CompileOpts(w, CompileOptions{})
}

// CompileOpts is Compile with options; see CompileOptions. With
// opts.Schedule set, the fused segments additionally go through the
// port-aware scheduling pass (sched.go), which reorders mops within
// dependency constraints when the uarch cost model says the new order
// retires at a higher IPC.
func (b *Builder) CompileOpts(w simd.Width, opts CompileOptions) (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.cuts) < 2 {
		return nil, ErrTooFewIterations
	}
	if b.verifying && b.vpos != len(b.steady()) {
		// Recording stopped mid-iteration: the stream is malformed.
		return nil, ErrUnstable
	}
	p := &Program{
		w:        w,
		lanes:    w.Lanes16(),
		regs:     make([]int16, b.nreg*regStride),
		idxTabs:  b.idxTabs,
		lanePats: b.lanePats,
		aux32:    b.aux32,
	}
	first := b.ops[:b.cuts[1]]
	steady := b.steady()
	p.RawOps = [2]int{len(first), len(steady)}
	p.segs[SegFirst] = p.fuse(first)
	p.segs[SegSteady] = p.fuse(steady)
	p.FusedOps = [2]int{len(p.segs[SegFirst]), len(p.segs[SegSteady])}
	if opts.Schedule {
		p.schedule(&opts)
	}
	return p, nil
}

// off converts a register id to its lane offset (-1 stays -1; only
// kinds that ignore the operand carry -1).
func off(id int16) int32 {
	if id < 0 {
		return -1
	}
	return int32(id) * regStride
}

// single lowers one recorded op to its executable singleton.
func single(r rawOp) mop {
	m := mop{
		d: off(r.d), a: off(r.a), b: off(r.b),
		addr: int64(r.addr), addr2: int64(r.addr2), imm: int64(r.imm),
		tab: r.tab,
	}
	switch r.kind {
	case simd.PClear:
		m.kind = mClear
	case simd.PAddS:
		m.kind = mAddS
	case simd.PSubS:
		m.kind = mSubS
	case simd.PMaxS:
		m.kind = mMaxS
	case simd.PMinS:
		m.kind = mMinS
	case simd.PAnd:
		m.kind = mAnd
	case simd.POr:
		m.kind = mOr
	case simd.PXor:
		m.kind = mXor
	case simd.PAndN:
		m.kind = mAndN
	case simd.PSra:
		m.kind = mSra
	case simd.PBcastImm:
		m.kind = mBcastImm
	case simd.PBcastMem:
		m.kind = mBcastMem
	case simd.PSetImm:
		m.kind = mSetImm
	case simd.PPermute:
		m.kind = mPermute
	case simd.PExt128:
		m.kind = mExt128
	case simd.PExt256:
		m.kind = mExt256
	case simd.PLoad:
		m.kind = mLoad
	case simd.PStore:
		m.kind = mStore
	case simd.PExtrW:
		m.kind = mExtrW
	case simd.PInsrW:
		m.kind = mInsrW
	case simd.PCopy16:
		m.kind = mCopy16
	case simd.PGammaPoint:
		m.kind = mGammaPoint
	case simd.PExtPoint:
		m.kind = mExtPoint
	default:
		panic("program: unknown recorded op kind")
	}
	return m
}
