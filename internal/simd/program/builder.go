// Package program compiles one recorded decode into a fused replay
// program. The interpreter (internal/simd.Engine) pays per-µop overhead
// on every call — method dispatch, a closure call per 16-bit lane,
// dependency bookkeeping — even though the µop stream per
// (K, width, strategy) is deterministic: the same instructions touch the
// same arena addresses with the same index tables every decode, only
// the data differs. This package exploits that. A Builder attached as
// the engine's ProgSink records the semantic operation stream of one
// interpreted decode; Compile splits it at the decoder's iteration
// marks into a "first" segment (setup + constants + iteration 0) and a
// "steady" segment (one mid-iteration, identical for all later ones),
// lowers both to a flat slice of width-specialized ops, and fuses the
// hot patterns — load+padds+pmax recursion chains, batched vpand/vpor
// mask selects, branch-metric gather groups, scalar element-copy runs —
// into single ops executed by a tight loop directly over the arena.
//
// Replay is bit-identical to interpretation by construction: every
// fused op preserves the exact register and memory effects of the
// sequence it replaces (lane-local op runs execute per lane in original
// op order, which is equivalent under any register aliasing; fusions
// spanning loads and stores are only formed when their address ranges
// are provably disjoint), and while recording continues past the second
// iteration every further iteration is verified op-by-op against the
// steady segment — any divergence aborts compilation and the caller
// stays on the interpreter.
package program

import (
	"errors"
	"fmt"
	"math"

	"vransim/internal/simd"
)

// Compilation errors (callers fall back to the interpreter on any of
// them; they are ordinary conditions, not bugs).
var (
	// ErrTooFewIterations: the recorded decode ran fewer than two
	// iterations, so there is no steady-state iteration to replay.
	ErrTooFewIterations = errors.New("program: need >= 2 recorded iterations to compile")
	// ErrUnstable: an iteration after the second diverged from the
	// steady segment, so the kernel's op stream is not iteration-
	// invariant and cannot be replayed.
	ErrUnstable = errors.New("program: op stream differs across iterations")
)

// rawOp is the compact lowered form of one recorded simd.ProgOp: register
// pointers interned to small ids, index tables and scalar-helper address
// triples interned into side pools. It is comparable field-by-field,
// which is what the cross-iteration stability check relies on. Keeping
// it at 24 bytes matters: a W512 K=6144 decode records ~1.7M ops per
// iteration and the builder holds two iterations plus the prefix.
type rawOp struct {
	kind    simd.ProgKind
	d, a, b int16 // register ids, -1 when absent
	imm     int32
	addr    int32
	addr2   int32
	tab     int32 // idxTabs / lanePats / aux32 pool reference, -1 when absent
}

// Builder is a simd.ProgSink that records one decode and compiles it.
// It is single-use: attach to an engine, run one decode, detach, call
// Compile.
type Builder struct {
	ops  []rawOp
	cuts []int // ops offsets at each "iteration" mark

	regs map[*simd.Vec]int16
	nreg int

	idxTabs  [][]int32
	idxByPtr map[*int]int32
	lanePats [][]int16
	aux32    []int32

	err error

	// After the third iteration mark the stored stream is frozen and
	// further ops are verified against the steady segment instead.
	verifying bool
	vpos      int

	// Verification register bijection: live Vec pointers -> steady
	// register ids. Seeded with identity at freeze time and rebound at
	// every fully-overwriting destination, so the stability check is
	// insensitive to Vec pool identity churn — the engine's bounded
	// free list makes reacquired pointers differ across iterations even
	// when the computation is identical. A read through an unbound (or
	// wrongly bound) pointer is a real divergence and aborts.
	vfwd map[*simd.Vec]int16
	vrev map[int16]*simd.Vec
}

// NewBuilder returns an empty recording sink.
func NewBuilder() *Builder {
	return &Builder{regs: make(map[*simd.Vec]int16), idxByPtr: make(map[*int]int32)}
}

// Err reports the first recording error (nil while the stream is still
// compilable).
func (b *Builder) Err() error { return b.err }

// Iterations reports how many iteration marks were seen.
func (b *Builder) Iterations() int { return len(b.cuts) }

// steady returns the recorded steady-iteration segment (valid once two
// cuts exist).
func (b *Builder) steady() []rawOp {
	end := len(b.ops)
	if len(b.cuts) >= 3 {
		end = b.cuts[2]
	}
	return b.ops[b.cuts[1]:end]
}

// Mark implements simd.ProgSink. Only "iteration" marks are structural;
// anything else is ignored.
func (b *Builder) Mark(name string) {
	if name != "iteration" || b.err != nil {
		return
	}
	if b.verifying {
		if b.vpos != len(b.steady()) {
			b.err = ErrUnstable
		}
		b.vpos = 0
		return
	}
	b.cuts = append(b.cuts, len(b.ops))
	if len(b.cuts) == 3 {
		b.verifying = true
		b.vpos = 0
		// At freeze time the replay state corresponds to the recorded
		// state under the identity mapping built during lowering.
		b.vfwd = make(map[*simd.Vec]int16, len(b.regs))
		b.vrev = make(map[int16]*simd.Vec, len(b.regs))
		for v, id := range b.regs {
			b.vfwd[v] = id
			b.vrev[id] = v
		}
	}
}

// Record implements simd.ProgSink.
func (b *Builder) Record(op simd.ProgOp) {
	if b.err != nil {
		return
	}
	if b.verifying {
		b.verify(op)
		return
	}
	r, err := b.lower(op)
	if err != nil {
		b.err = err
		return
	}
	b.ops = append(b.ops, r)
}

func (b *Builder) regID(v *simd.Vec) int16 {
	if v == nil {
		return -1
	}
	if id, ok := b.regs[v]; ok {
		return id
	}
	id := int16(b.nreg)
	b.nreg++
	b.regs[v] = id
	return id
}

func checkAddr(a int64) (int32, error) {
	if a < 0 || a > math.MaxInt32 {
		return 0, fmt.Errorf("program: address %d outside compilable range", a)
	}
	return int32(a), nil
}

// lower converts a recorded op to its compact form, interning tables
// into the builder pools.
func (b *Builder) lower(op simd.ProgOp) (rawOp, error) {
	r := rawOp{kind: op.Kind, d: b.regID(op.Dst), a: b.regID(op.A), b: b.regID(op.B), tab: -1}
	var err error
	if r.addr, err = checkAddr(op.Addr); err != nil {
		return r, err
	}
	if r.addr2, err = checkAddr(op.Addr2); err != nil {
		return r, err
	}
	if op.Imm < math.MinInt32 || op.Imm > math.MaxInt32 {
		return r, fmt.Errorf("program: immediate %d outside compilable range", op.Imm)
	}
	r.imm = int32(op.Imm)
	switch op.Kind {
	case simd.PSetImm:
		pat := make([]int16, len(op.Lanes))
		copy(pat, op.Lanes)
		r.tab = int32(len(b.lanePats))
		b.lanePats = append(b.lanePats, pat)
	case simd.PPermute:
		if len(op.Idx) == 0 {
			return r, errors.New("program: empty permute index table")
		}
		key := &op.Idx[0]
		id, ok := b.idxByPtr[key]
		if !ok {
			t := make([]int32, len(op.Idx))
			for i, x := range op.Idx {
				t[i] = int32(x)
			}
			id = int32(len(b.idxTabs))
			b.idxTabs = append(b.idxTabs, t)
			b.idxByPtr[key] = id
		}
		r.tab = id
	case simd.PGammaPoint, simd.PExtPoint:
		r.tab = int32(len(b.aux32))
		for _, x := range op.Xa {
			xa, err := checkAddr(x)
			if err != nil {
				return r, err
			}
			b.aux32 = append(b.aux32, xa)
		}
	}
	return r, nil
}

// verify compares an op recorded during iteration >= 3 against the
// frozen steady segment, without growing any pool.
func (b *Builder) verify(op simd.ProgOp) {
	steady := b.steady()
	if b.vpos >= len(steady) {
		b.err = ErrUnstable
		return
	}
	e := steady[b.vpos]
	b.vpos++
	if e.kind != op.Kind ||
		int64(e.addr) != op.Addr || int64(e.addr2) != op.Addr2 || int64(e.imm) != op.Imm {
		b.err = ErrUnstable
		return
	}
	// Source operands must read through the current bijection: the
	// iteration's pointer must be bound to exactly the steady register
	// the replay would read.
	expect := func(v *simd.Vec, want int16) bool {
		if v == nil {
			return want == -1
		}
		id, ok := b.vfwd[v]
		return ok && id == want
	}
	if !expect(op.A, e.a) || !expect(op.B, e.b) {
		b.err = ErrUnstable
		return
	}
	switch {
	case op.Dst == nil:
		if e.d != -1 {
			b.err = ErrUnstable
			return
		}
	case op.Kind == simd.PInsrW:
		// Partial write: dst is read-modify-write, so it must already
		// be bound like a source operand.
		if !expect(op.Dst, e.d) {
			b.err = ErrUnstable
			return
		}
	default:
		// Every other destination is fully overwritten (all active
		// lanes), so the iteration pointer rebinds to the steady
		// register here — displacing any stale pair, whose later reads
		// would then correctly fail the expect check above.
		if e.d == -1 {
			b.err = ErrUnstable
			return
		}
		if old, ok := b.vfwd[op.Dst]; ok && old != e.d {
			delete(b.vrev, old)
		}
		if oldV, ok := b.vrev[e.d]; ok && oldV != op.Dst {
			delete(b.vfwd, oldV)
		}
		b.vfwd[op.Dst] = e.d
		b.vrev[e.d] = op.Dst
	}
	switch op.Kind {
	case simd.PSetImm:
		pat := b.lanePats[e.tab]
		if len(pat) != len(op.Lanes) {
			b.err = ErrUnstable
			return
		}
		for i, x := range op.Lanes {
			if pat[i] != x {
				b.err = ErrUnstable
				return
			}
		}
	case simd.PPermute:
		var t []int32
		if len(op.Idx) > 0 {
			if id, ok := b.idxByPtr[&op.Idx[0]]; ok && id == e.tab {
				return
			}
			t = b.idxTabs[e.tab]
		}
		if len(t) != len(op.Idx) {
			b.err = ErrUnstable
			return
		}
		for i, x := range op.Idx {
			if t[i] != int32(x) {
				b.err = ErrUnstable
				return
			}
		}
	case simd.PGammaPoint, simd.PExtPoint:
		for i, x := range op.Xa {
			if int64(b.aux32[e.tab+int32(i)]) != x {
				b.err = ErrUnstable
				return
			}
		}
	}
}
