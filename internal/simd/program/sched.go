package program

import (
	"fmt"
	"math/rand"

	"vransim/internal/trace"
	"vransim/internal/uarch"
)

// This file is the port-aware scheduling pass: mops are classified
// into the trace.Class vocabulary internal/uarch prices (via their µop
// expansions), list-scheduled against per-class port capacity within
// the dependency DAG of dag.go, and the uarch simulator arbitrates —
// each candidate ordering of a segment is replayed through the port
// model and the program keeps whichever order simulates at the highest
// IPC. Replay stays bit-exact because only the order changes, never an
// operand: any order the DAG admits produces the same architectural
// state, which the differential and fuzz tests in internal/turbo pin.

// Heuristic selects a list-scheduling policy.
type Heuristic uint8

const (
	// HeurCP schedules by critical-path priority: the mop with the
	// longest latency-weighted path to the end of the segment issues
	// first among ready mops, subject to per-class port capacity.
	HeurCP Heuristic = iota
	// HeurCPStore is the windowed variant with APCM-aware store
	// batching: candidates are drawn from a bounded lookahead over the
	// recorded order (so the schedule is a local perturbation, not a
	// global reshuffle), picked by critical-path priority — except that
	// once a storing mop is placed, ready mops storing to nearby
	// addresses are preferred within the same issue cycle, so the
	// packed path's quad scatters commit in address-contiguous runs
	// instead of interleaving with unrelated traffic in the store
	// buffer.
	HeurCPStore

	numHeuristics
)

var heurNames = [numHeuristics]string{"cp", "cp+store"}

// String names the heuristic ("cp", "cp+store").
func (h Heuristic) String() string {
	if int(h) < len(heurNames) {
		return heurNames[h]
	}
	return fmt.Sprintf("heuristic(%d)", uint8(h))
}

// AllHeuristics lists every scheduling heuristic, in search order.
func AllHeuristics() []Heuristic { return []Heuristic{HeurCP, HeurCPStore} }

// ParseHeuristic maps a name back to its Heuristic.
func ParseHeuristic(s string) (Heuristic, error) {
	for h, name := range heurNames {
		if s == name {
			return Heuristic(h), nil
		}
	}
	return 0, fmt.Errorf("program: unknown schedule heuristic %q", s)
}

// DefaultSimBudget caps the µops each candidate ordering feeds the
// cost-model simulation (per segment). It bounds compile latency at
// large K deterministically — no wall-clock cutoffs — while keeping
// the simulated window far wider than the core's reorder buffer.
const DefaultSimBudget = 120_000

// CompileOptions configures Builder.CompileOpts. The zero value
// compiles exactly like Builder.Compile (no scheduling pass).
type CompileOptions struct {
	// Schedule enables the scheduling pass: candidate orderings of
	// SegFirst and SegSteady are simulated against the cost-model
	// core and the program keeps the winner.
	Schedule bool
	// Heuristics is the candidate set to search; nil means
	// AllHeuristics(). The recorded order is always a candidate, so a
	// schedule is only adopted when it strictly improves simulated
	// IPC.
	Heuristics []Heuristic
	// SimBudget caps simulated µops per candidate segment
	// (0 = DefaultSimBudget).
	SimBudget int
	// Core is the cost-model core configuration; nil means
	// uarch.SkylakeServer(). Stochastic noise sources (frontend
	// stalls, branch misprediction) are zeroed so the cost model is
	// deterministic.
	Core *uarch.Config
}

// SchedInfo reports what the scheduling pass did to a program.
type SchedInfo struct {
	// Enabled records that the pass ran; Scheduled that at least one
	// segment was actually reordered.
	Enabled   bool
	Scheduled bool
	// Per segment (SegFirst, SegSteady): the winning heuristic
	// ("original" when the recorded order won), the cost-model IPC of
	// the recorded order and of the winner, and how many mops moved.
	Heuristic [2]string
	IPCBefore [2]float64
	IPCAfter  [2]float64
	Moved     [2]int
	// Search cost: candidate orderings simulated (including the
	// recorded-order baselines) and total µops fed to the simulator.
	Candidates    int
	SimulatedUops int64
}

// Sched reports the scheduling pass's outcome (zero value when the
// program was compiled without scheduling).
func (p *Program) Sched() SchedInfo { return p.sched }

// Scheduled reports whether any segment was reordered by the
// scheduling pass.
func (p *Program) Scheduled() bool { return p.sched.Scheduled }

// schedule runs the scheduling pass over both segments in place.
func (p *Program) schedule(opts *CompileOptions) {
	core := uarch.SkylakeServer()
	if opts.Core != nil {
		core = *opts.Core
	} else {
		// Default scheduling core: same ports and latencies, but a
		// tight window. A 224-entry ROB hides almost any static order
		// at steady state — the regime where pre-scheduling pays is
		// when the effective scheduler window is the constraint
		// (full-rate issue, reservation stations shared with the other
		// hyperthread, µop-cache misses), so candidate orders are
		// priced where they differ. The before/after IPCs in SchedInfo
		// are both measured on this same core.
		core.WindowSize = 64
		core.SchedWindow = 24
	}
	core.FrontendStallFrac = 0
	core.BranchMispredictRate = 0
	budget := opts.SimBudget
	if budget <= 0 {
		budget = DefaultSimBudget
	}
	heurs := opts.Heuristics
	if heurs == nil {
		heurs = AllHeuristics()
	}
	p.sched.Enabled = true
	tb := uarch.NewTraceBuilder(budget)
	sim := uarch.NewSimulator(core, nil)
	for seg := range p.segs {
		mops := p.segs[seg]
		p.sched.Heuristic[seg] = "original"
		if len(mops) < 2 {
			continue
		}
		d, err := p.buildDAG(mops)
		if err != nil {
			// Conservative: an unanalyzable segment keeps its
			// recorded order (still bit-exact — it is the order the
			// interpreter ran).
			continue
		}
		specs := make([]uarch.MopSpec, len(mops))
		for i := range mops {
			p.mopSpec(&mops[i], &specs[i])
		}
		term := make([]int32, len(mops))
		base := p.simulateOrder(tb, sim, specs, d, nil, term)
		p.sched.Candidates++
		p.sched.SimulatedUops += base.Insts
		p.sched.IPCBefore[seg] = base.IPC()
		p.sched.IPCAfter[seg] = base.IPC()
		bestIPC := base.IPC()
		var bestOrder []int32
		for _, h := range heurs {
			order := listSchedule(specs, d, h, &core)
			if !d.legalOrder(order) {
				continue // scheduler bug; never trade exactness for it
			}
			res := p.simulateOrder(tb, sim, specs, d, order, term)
			p.sched.Candidates++
			p.sched.SimulatedUops += res.Insts
			if ipc := res.IPC(); ipc > bestIPC {
				bestIPC = ipc
				bestOrder = order
				p.sched.Heuristic[seg] = h.String()
				p.sched.IPCAfter[seg] = ipc
			}
		}
		if bestOrder != nil {
			p.sched.Moved[seg] = applyOrder(mops, bestOrder)
			p.sched.Scheduled = p.sched.Scheduled || p.sched.Moved[seg] > 0
		}
	}
}

// simulateOrder prices one candidate ordering (nil = recorded order)
// of the segment whose specs and DAG are given, feeding at most the
// builder's budget of µops to the simulator. term is caller-provided
// scratch of len(specs).
func (p *Program) simulateOrder(tb *uarch.TraceBuilder, sim *uarch.Simulator, specs []uarch.MopSpec, d *dag, order []int32, term []int32) uarch.Result {
	tb.Reset()
	var sp uarch.MopSpec
	for k := 0; k < len(specs) && !tb.Full(); k++ {
		idx := int32(k)
		if order != nil {
			idx = order[k]
		}
		sp = specs[idx]
		sp.Deps = latestTerminals(d.preds[idx], d.predKind[idx], edgeMem, term)
		sp.CompDeps = latestTerminals(d.preds[idx], d.predKind[idx], edgeReg, term)
		term[idx] = tb.Add(&sp)
	}
	return sim.Run(tb.Insts())
}

// latestTerminals picks the up-to-three predecessor terminal µops of
// the given edge kind with the highest trace indices — the ones that
// finish last dominate the dependency anyway.
func latestTerminals(preds []int32, kinds []uint8, want uint8, term []int32) [3]int32 {
	out := [3]int32{trace.NoDep, trace.NoDep, trace.NoDep}
	for pi, pr := range preds {
		if kinds[pi]&want == 0 {
			continue
		}
		t := term[pr]
		if t < 0 {
			continue
		}
		switch {
		case t > out[0]:
			out[0], out[1], out[2] = t, out[0], out[1]
		case t > out[1]:
			out[1], out[2] = t, out[1]
		case t > out[2]:
			out[2] = t
		}
	}
	return out
}

// Class-capacity groups for the list scheduler's cycle model. ccTotal
// models issue bandwidth: every µop consumes one slot regardless of
// class, so a scheduled "cycle" is a feasible issue group for the
// core, not just a port-feasible one.
const (
	ccScalar = iota
	ccALU
	ccShuf
	ccLoad
	ccStore
	ccTotal
	numCC
)

func classCaps(core *uarch.Config) [numCC]int32 {
	cap := func(c trace.Class) int32 {
		n := int32(len(core.PortsByClass[c]))
		if n < 1 {
			n = 1
		}
		return n
	}
	caps := [numCC]int32{
		ccScalar: cap(trace.ScalarALU),
		ccALU:    cap(trace.VecALU),
		ccShuf:   cap(trace.VecShuffle),
		ccLoad:   cap(trace.Load),
		ccStore:  cap(trace.Store),
		ccTotal:  int32(core.IssueWidth),
	}
	if caps[ccTotal] < 1 {
		caps[ccTotal] = 1
	}
	if sc := int32(core.StoreCommitPerCycle); sc >= 1 && sc < caps[ccStore] {
		// Sustained store throughput is commit-limited, not
		// port-limited; schedule against the tighter bound.
		caps[ccStore] = sc
	}
	return caps
}

func classCounts(sp *uarch.MopSpec) [numCC]int32 {
	return [numCC]int32{
		ccScalar: int32(sp.Scalar),
		ccALU:    int32(sp.VecALU),
		ccShuf:   int32(sp.VecShuffle),
		ccLoad:   int32(sp.Loads),
		ccStore:  int32(sp.Stores),
		ccTotal:  int32(sp.Scalar + sp.VecALU + sp.VecShuffle + sp.Loads + sp.Stores),
	}
}

// mopHeap is a deterministic max-heap of mop indices ordered by
// priority, ties broken toward the lower (earlier-recorded) index.
type mopHeap struct {
	idx  []int32
	prio []int64
}

func (h *mopHeap) less(a, b int32) bool {
	if h.prio[a] != h.prio[b] {
		return h.prio[a] > h.prio[b]
	}
	return a < b
}

func (h *mopHeap) len() int { return len(h.idx) }

func (h *mopHeap) push(x int32) {
	h.idx = append(h.idx, x)
	i := len(h.idx) - 1
	for i > 0 {
		up := (i - 1) / 2
		if !h.less(h.idx[i], h.idx[up]) {
			break
		}
		h.idx[i], h.idx[up] = h.idx[up], h.idx[i]
		i = up
	}
}

func (h *mopHeap) removeAt(i int) int32 {
	x := h.idx[i]
	last := len(h.idx) - 1
	h.idx[i] = h.idx[last]
	h.idx = h.idx[:last]
	if i < last {
		h.siftDown(i)
		// The moved element may also need to rise.
		for i > 0 {
			up := (i - 1) / 2
			if !h.less(h.idx[i], h.idx[up]) {
				break
			}
			h.idx[i], h.idx[up] = h.idx[up], h.idx[i]
			i = up
		}
	}
	return x
}

func (h *mopHeap) pop() int32 { return h.removeAt(0) }

func (h *mopHeap) siftDown(i int) {
	n := len(h.idx)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(h.idx[l], h.idx[best]) {
			best = l
		}
		if r < n && h.less(h.idx[r], h.idx[best]) {
			best = r
		}
		if best == i {
			return
		}
		h.idx[i], h.idx[best] = h.idx[best], h.idx[i]
		i = best
	}
}

// listSchedule builds one candidate ordering for the given heuristic:
// critical-path priority within the DAG, issued against a per-cycle,
// per-class port-capacity model derived from the core config (with
// capacity debt carried across cycles so multi-µop fused ops occupy
// their ports across the cycles they realistically need).
func listSchedule(specs []uarch.MopSpec, d *dag, h Heuristic, core *uarch.Config) []int32 {
	n := len(specs)
	prio := make([]int64, n)
	loadLat := int64(core.LatencyByClass[trace.Load])
	if loadLat < 1 {
		loadLat = 1
	}
	for i := n - 1; i >= 0; i-- {
		var best int64
		for _, s := range d.succs[i] {
			if prio[s] > best {
				best = prio[s]
			}
		}
		w := int64(specs[i].Depth)
		if w < 1 {
			w = 1
		}
		if specs[i].Loads > 0 {
			w += loadLat
		}
		if specs[i].Stores > 0 {
			w++
		}
		prio[i] = w + best
	}
	if h == HeurCPStore {
		return scheduleWindowed(specs, d, prio, core)
	}
	return scheduleGlobal(specs, d, prio, core)
}

// scheduleGlobal is the HeurCP policy: pure greedy list scheduling
// over the whole segment by critical-path priority.
func scheduleGlobal(specs []uarch.MopSpec, d *dag, prio []int64, core *uarch.Config) []int32 {
	n := len(specs)
	caps := classCaps(core)
	indeg := append([]int32(nil), d.indeg...)
	hp := &mopHeap{prio: prio, idx: make([]int32, 0, 64)}
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			hp.push(int32(i))
		}
	}
	order := make([]int32, 0, n)
	var rem [numCC]int32
	deferred := make([]int32, 0, 16)
	const maxMisfits = 16

	admit := func(cand int32) {
		order = append(order, cand)
		cst := classCounts(&specs[cand])
		for c, k := range cst {
			rem[c] -= k
		}
		for _, s := range d.succs[cand] {
			indeg[s]--
			if indeg[s] == 0 {
				hp.push(s)
			}
		}
	}

	for len(order) < n {
		for c := range rem {
			r := rem[c] + caps[c]
			if r > caps[c] {
				r = caps[c]
			}
			rem[c] = r
		}
		scheduled := 0
		misfits := 0
		for hp.len() > 0 && misfits < maxMisfits {
			cand := hp.pop()
			cst := classCounts(&specs[cand])
			fits := true
			for c, k := range cst {
				if k > 0 && rem[c] <= 0 {
					fits = false
					break
				}
			}
			if fits || (scheduled == 0 && misfits == 0) {
				// The first candidate of a cycle always issues, even
				// over capacity debt — guarantees forward progress.
				admit(cand)
				scheduled++
			} else {
				deferred = append(deferred, cand)
				misfits++
			}
		}
		for _, x := range deferred {
			hp.push(x)
		}
		deferred = deferred[:0]
	}
	return order
}

// scheduleWindowed is the HeurCPStore policy: candidates are the
// lowest-index (earliest-recorded) ready mops within a bounded
// lookahead, so the result tracks the recorded order and only hoists
// nearby independent work into stalls — the regime where the recorded
// order is already good (per-block plans, whose trellis walk the
// interpreter emitted in dependency order) and a global reshuffle
// loses locality. Within the window, critical-path priority picks,
// with store affinity: after a storing mop issues, a ready mop storing
// within storeWindow bytes of it is preferred in the same cycle.
func scheduleWindowed(specs []uarch.MopSpec, d *dag, prio []int64, core *uarch.Config) []int32 {
	const lookahead = 32
	storeWindow := int64(8 * 64)
	n := len(specs)
	caps := classCaps(core)
	indeg := append([]int32(nil), d.indeg...)
	var ready idxHeap
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready.push(int32(i))
		}
	}
	order := make([]int32, 0, n)
	var rem [numCC]int32
	buf := make([]int32, 0, lookahead)

	for len(order) < n {
		for c := range rem {
			r := rem[c] + caps[c]
			if r > caps[c] {
				r = caps[c]
			}
			rem[c] = r
		}
		buf = buf[:0]
		for len(buf) < lookahead && ready.len() > 0 {
			buf = append(buf, ready.pop())
		}
		scheduled := 0
		lastStoreEnd := int64(-1)
		for len(buf) > 0 {
			// Pick: nearest fitting store to the last store if affinity
			// is live, else the fitting candidate with the highest
			// critical-path priority (ties toward the earlier-recorded
			// mop). Track the best regardless of fit for the forced
			// first issue of the cycle.
			best, bestFit := -1, -1
			bestDist := storeWindow + 1
			for bi, cand := range buf {
				if best < 0 || prio[cand] > prio[buf[best]] {
					best = bi
				}
				cst := classCounts(&specs[cand])
				fits := true
				for c, k := range cst {
					if k > 0 && rem[c] <= 0 {
						fits = false
						break
					}
				}
				if !fits {
					continue
				}
				if sp := &specs[cand]; lastStoreEnd >= 0 && sp.Stores > 0 {
					dist := sp.StoreAddr - lastStoreEnd
					if dist < 0 {
						dist = -dist
					}
					if dist <= storeWindow && dist < bestDist {
						bestDist = dist
						bestFit = bi
						continue
					}
				}
				if bestDist > storeWindow && (bestFit < 0 || prio[cand] > prio[buf[bestFit]]) {
					bestFit = bi
				}
			}
			pick := bestFit
			if pick < 0 {
				if scheduled > 0 {
					break // cycle full; leftovers wait
				}
				pick = best
			}
			cand := buf[pick]
			buf = append(buf[:pick], buf[pick+1:]...)
			order = append(order, cand)
			scheduled++
			cst := classCounts(&specs[cand])
			for c, k := range cst {
				rem[c] -= k
			}
			if sp := &specs[cand]; sp.Stores > 0 {
				lastStoreEnd = sp.StoreAddr + int64(sp.Stores)*sp.StoreStep + int64(sp.StoreBytes)
			}
			for _, s := range d.succs[cand] {
				indeg[s]--
				if indeg[s] == 0 {
					ready.push(s)
				}
			}
		}
		for _, x := range buf {
			ready.push(x)
		}
	}
	return order
}

// idxHeap is a deterministic min-heap of mop indices: the windowed
// scheduler pulls ready mops in recorded order.
type idxHeap []int32

func (h idxHeap) len() int { return len(h) }

func (h *idxHeap) push(x int32) {
	*h = append(*h, x)
	s := *h
	i := len(s) - 1
	for i > 0 {
		up := (i - 1) / 2
		if s[i] >= s[up] {
			break
		}
		s[i], s[up] = s[up], s[i]
		i = up
	}
}

func (h *idxHeap) pop() int32 {
	s := *h
	x := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(s) && s[l] < s[best] {
			best = l
		}
		if r < len(s) && s[r] < s[best] {
			best = r
		}
		if best == i {
			break
		}
		s[i], s[best] = s[best], s[i]
		i = best
	}
	return x
}

// applyOrder permutes seg in place and reports how many mops changed
// position.
func applyOrder(seg []mop, order []int32) int {
	out := make([]mop, len(seg))
	moved := 0
	for at, idx := range order {
		out[at] = seg[idx]
		if int(idx) != at {
			moved++
		}
	}
	copy(seg, out)
	return moved
}

// ReorderRandom permutes one segment into a uniformly random legal
// topological order of its dependency DAG (seeded, deterministic).
// Replay output is unchanged for any legal order — the property the
// fuzz target in internal/turbo asserts against the interpreter.
func (p *Program) ReorderRandom(seg int, seed int64) error {
	mops := p.segs[seg]
	d, err := p.buildDAG(mops)
	if err != nil {
		return err
	}
	n := len(mops)
	indeg := append([]int32(nil), d.indeg...)
	ready := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, int32(i))
		}
	}
	rng := rand.New(rand.NewSource(seed))
	order := make([]int32, 0, n)
	for len(ready) > 0 {
		k := rng.Intn(len(ready))
		cand := ready[k]
		ready[k] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		order = append(order, cand)
		for _, s := range d.succs[cand] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(order) != n {
		return fmt.Errorf("program: dependency graph of segment %d is cyclic", seg)
	}
	applyOrder(mops, order)
	return nil
}

// mopSpec fills sp with op's µop expansion for the cost model: how
// many µops of each trace class it becomes, the internal dependency
// depth, and its memory footprint. The counts mirror the engine
// sequences the fusion pass collapsed (fuse.go documents each
// pattern).
func (p *Program) mopSpec(op *mop, sp *uarch.MopSpec) {
	*sp = uarch.MopSpec{}
	wb := int32(2 * p.lanes)
	switch op.kind {
	case mClear, mBcastImm, mAddS, mSubS, mMaxS, mMinS, mAnd, mOr, mXor, mAndN, mSra:
		sp.VecALU, sp.Depth = 1, 1
	case mBcastMem:
		sp.Loads, sp.LoadBytes, sp.LoadAddr = 1, 2, op.addr
		sp.VecShuffle, sp.Depth = 1, 2
	case mSetImm:
		sp.Loads, sp.LoadBytes, sp.Depth = 1, wb, 1
	case mPermute, mExt128, mExt256:
		sp.VecShuffle, sp.Depth = 1, 1
	case mLoad:
		sp.Loads, sp.LoadBytes, sp.LoadAddr, sp.Depth = 1, int32(op.imm), op.addr, 1
	case mStore:
		sp.Stores, sp.StoreBytes, sp.StoreAddr, sp.Depth = 1, int32(op.imm), op.addr, 1
	case mExtrW:
		sp.Stores, sp.StoreBytes, sp.StoreAddr, sp.Depth = 1, 2, op.addr, 1
	case mInsrW:
		sp.Loads, sp.LoadBytes, sp.LoadAddr = 1, 2, op.addr
		sp.VecShuffle, sp.Depth = 1, 2
	case mCopy16:
		sp.Loads, sp.LoadBytes, sp.LoadAddr = 1, 2, op.addr2
		sp.Stores, sp.StoreBytes, sp.StoreAddr, sp.Depth = 1, 2, op.addr, 1
	case mGammaPoint:
		sp.Loads, sp.LoadBytes, sp.LoadAddr, sp.LoadStep = 3, 2, int64(p.aux32[op.tab]), 2
		sp.Scalar = 4
		sp.Stores, sp.StoreBytes, sp.StoreAddr, sp.StoreStep = 2, 2, op.addr, op.addr2-op.addr
		sp.Depth = 3
	case mExtPoint:
		sp.Loads, sp.LoadBytes, sp.LoadAddr, sp.LoadStep = 3, 2, int64(p.aux32[op.tab]), 2
		sp.Scalar = 4
		sp.Stores, sp.StoreBytes, sp.StoreAddr, sp.Depth = 1, 2, op.addr, 3
	case mCopyRun:
		t := p.aux[op.tab:]
		sp.Loads, sp.LoadBytes, sp.LoadAddr, sp.LoadStep = int(op.n), 2, t[1], 2
		sp.Stores, sp.StoreBytes, sp.StoreAddr, sp.StoreStep = int(op.n), 2, t[0], 2
		sp.Depth = 1
	case mGammaRun:
		t := p.aux[op.tab:]
		sp.Loads, sp.LoadBytes, sp.LoadAddr, sp.LoadStep = 3*int(op.n), 2, t[2], 2
		sp.Scalar = 4 * int(op.n)
		sp.Stores, sp.StoreBytes, sp.StoreAddr, sp.StoreStep = 2*int(op.n), 2, t[0], 2
		sp.Depth = 3
	case mExtRun:
		t := p.aux[op.tab:]
		sp.Loads, sp.LoadBytes, sp.LoadAddr, sp.LoadStep = 3*int(op.n), 2, t[1], 2
		sp.Scalar = 4 * int(op.n)
		sp.Stores, sp.StoreBytes, sp.StoreAddr, sp.StoreStep = int(op.n), 2, t[0], 2
		sp.Depth = 3
	case mGammaVec:
		t := p.aux[op.tab:]
		sp.Loads, sp.LoadBytes, sp.LoadAddr = 3, wb, t[6]
		sp.VecALU = 3
		sp.Stores, sp.StoreBytes, sp.StoreAddr, sp.StoreStep = 2, wb, t[9], t[10]-t[9]
		sp.Depth = 2
	case mExtVec:
		t := p.aux[op.tab:]
		sp.Loads, sp.LoadBytes, sp.LoadAddr = 3, wb, t[7]
		sp.VecALU = 5
		sp.Stores, sp.StoreBytes, sp.StoreAddr, sp.Depth = 1, wb, t[10], 4
	case mSelect:
		sp.VecALU, sp.Depth = 6, 2
	case mPack:
		nb := int(op.n)
		t := p.aux[op.tab:]
		sp.Loads, sp.LoadBytes, sp.LoadAddr, sp.LoadStep = nb, 2, t[3], 2
		sp.VecShuffle = nb
		sp.VecALU = 2*nb - 1
		sp.Depth = nb + 1
	case mRecurse:
		t := p.aux[op.tab:]
		sp.VecShuffle = 2
		sp.VecALU = 2
		if t[9] >= 0 {
			sp.VecALU++
		}
		sp.Depth = 3
	case mHmax:
		sp.VecShuffle, sp.VecALU, sp.Depth = 3, 3, 6
	case mNormSub:
		sp.VecShuffle, sp.VecALU, sp.Depth = 1, 1, 2
	case mQuadScatter:
		ns := int(op.n)
		t := p.aux[op.tab:]
		sp.VecShuffle = ns
		sp.VecALU = ns - 1
		sp.Stores, sp.StoreBytes, sp.StoreAddr, sp.Depth = 1, wb, t[2], ns
	case mQuadGather:
		ns := int(op.n)
		t := p.aux[op.tab:]
		sp.Loads, sp.LoadBytes, sp.LoadAddr, sp.LoadStep = ns+1, wb, t[4], 0
		sp.VecShuffle = ns
		sp.VecALU = ns - 1
		sp.Stores, sp.StoreBytes, sp.StoreAddr, sp.Depth = 1, wb, t[3], ns+1
	case mAlphaStepP:
		t := p.aux[op.tab:]
		sp.Loads, sp.LoadBytes, sp.LoadAddr = 1, wb, t[9]
		sp.VecShuffle, sp.VecALU = 5, 4
		sp.Stores, sp.StoreBytes, sp.StoreAddr, sp.Depth = 1, wb, t[10], 6
	case mBetaStepP:
		t := p.aux[op.tab:]
		sp.Loads, sp.LoadBytes, sp.LoadAddr = 1, wb, t[9]
		sp.VecShuffle, sp.VecALU, sp.Depth = 5, 4, 6
		if op.imm != 0 {
			sp.Loads = 2
			sp.LoadStep = t[22] - t[9]
			sp.VecShuffle = 11
			sp.VecALU = 13
			sp.Stores, sp.StoreBytes, sp.StoreAddr, sp.StoreStep = int(op.n), 2, t[26], 2
			sp.Depth = 12
		}
	default:
		// Unknown kinds never reach here (fuse produces only the
		// kinds above); price as one scalar µop if they ever do.
		sp.Scalar, sp.Depth = 1, 1
	}
}
