package program

import (
	"bytes"
	"strings"
	"testing"

	"vransim/internal/simd"
	"vransim/internal/uarch"
)

// recordAndCompileOpts is recordAndCompile with scheduling options.
func recordAndCompileOpts(t *testing.T, w simd.Width, memBytes, iters int, opts CompileOptions) (*Program, *simd.Memory, *synthKernel) {
	t.Helper()
	mem := simd.NewMemory(memBytes)
	e := simd.NewEngine(w, mem, nil)
	k := newSynthKernel(w, mem)
	k.seed(mem)
	k.iters = iters
	b := NewBuilder()
	e.SetProgSink(b)
	k.run(e)
	e.SetProgSink(nil)
	p, err := b.CompileOpts(w, opts)
	if err != nil {
		t.Fatalf("%v: compile: %v", w, err)
	}
	return p, mem, k
}

// replayBytes replays p over a freshly seeded arena laid out like k's
// and returns the arena bytes.
func replayBytes(t *testing.T, p *Program, k *synthKernel, memBytes, iters int) []byte {
	t.Helper()
	mem := simd.NewMemory(memBytes)
	newSynthKernel(k.w, mem)
	k.seed(mem)
	p.Run(mem, SegFirst)
	for it := 1; it < iters; it++ {
		p.Run(mem, SegSteady)
	}
	return mem.Bytes(0, mem.Size())
}

// TestScheduledReplayMatchesInterpreter: the scheduling pass may only
// reorder, never change results — a scheduled program replayed over a
// fresh arena must be byte-identical to the interpreted run, across
// widths and heuristics.
func TestScheduledReplayMatchesInterpreter(t *testing.T) {
	const iters = 5
	for _, w := range simd.Widths {
		p, interpMem, k := recordAndCompileOpts(t, w, 1<<14, iters,
			CompileOptions{Schedule: true})
		info := p.Sched()
		if !info.Enabled {
			t.Fatalf("%v: scheduling pass did not run", w)
		}
		if info.Candidates < 2 {
			t.Errorf("%v: only %d candidate orderings simulated", w, info.Candidates)
		}
		for seg := range p.segs {
			if info.IPCAfter[seg] < info.IPCBefore[seg] {
				t.Errorf("%v: seg %d simulated IPC regressed: %.3f -> %.3f",
					w, seg, info.IPCBefore[seg], info.IPCAfter[seg])
			}
		}
		got := replayBytes(t, p, k, 1<<14, iters)
		if !bytes.Equal(interpMem.Bytes(0, interpMem.Size()), got) {
			t.Errorf("%v: scheduled replay diverged from interpreter (heur=%v moved=%v)",
				w, info.Heuristic, info.Moved)
		}
	}
}

// TestScheduleActuallyReorders: on the synthetic kernel at least one
// segment must end up reordered with a strictly better simulated IPC —
// otherwise the pass is a no-op and the ISSUE's perf claim is vacuous.
func TestScheduleActuallyReorders(t *testing.T) {
	p, _, _ := recordAndCompileOpts(t, simd.W512, 1<<14, 5,
		CompileOptions{Schedule: true})
	info := p.Sched()
	if !info.Scheduled {
		t.Fatalf("no segment was reordered: %+v", info)
	}
	improved := false
	for seg := range p.segs {
		if info.IPCAfter[seg] > info.IPCBefore[seg] {
			improved = true
		}
	}
	if !improved {
		t.Errorf("no segment improved simulated IPC: before=%v after=%v",
			info.IPCBefore, info.IPCAfter)
	}
	if p.Scheduled() != info.Scheduled {
		t.Errorf("Scheduled() disagrees with Sched().Scheduled")
	}
}

// TestSingleHeuristicSelection: restricting the candidate set must
// restrict the winner, and each heuristic alone must still be
// bit-exact.
func TestSingleHeuristicSelection(t *testing.T) {
	for _, h := range AllHeuristics() {
		p, interpMem, k := recordAndCompileOpts(t, simd.W256, 1<<14, 4,
			CompileOptions{Schedule: true, Heuristics: []Heuristic{h}})
		info := p.Sched()
		for seg := range p.segs {
			if got := info.Heuristic[seg]; got != "original" && got != h.String() {
				t.Errorf("%v: seg %d won by %q, candidate set was only %q", h, seg, got, h)
			}
		}
		if got := replayBytes(t, p, k, 1<<14, 4); !bytes.Equal(interpMem.Bytes(0, interpMem.Size()), got) {
			t.Errorf("%v: replay diverged", h)
		}
	}
}

// TestReorderRandomBitExact: ANY legal topological order of the DAG
// replays identically — the property the turbo fuzz target leans on,
// pinned here across seeds on both segments.
func TestReorderRandomBitExact(t *testing.T) {
	const iters = 4
	p, interpMem, k := recordAndCompile(t, simd.W512, 1<<14, iters)
	want := interpMem.Bytes(0, interpMem.Size())
	for seed := int64(1); seed <= 8; seed++ {
		for seg := range p.segs {
			if err := p.ReorderRandom(seg, seed*17+int64(seg)); err != nil {
				t.Fatalf("seed %d seg %d: %v", seed, seg, err)
			}
		}
		if got := replayBytes(t, p, k, 1<<14, iters); !bytes.Equal(want, got) {
			t.Fatalf("seed %d: random legal reorder changed replay output", seed)
		}
	}
}

// TestDAGLegalOrder sanity-checks the DAG machinery itself: program
// order is legal, a reversed order of a multi-op segment is not (the
// segment has at least one true dependency), and listSchedule's output
// is legal for every heuristic.
func TestDAGLegalOrder(t *testing.T) {
	p, _, _ := recordAndCompile(t, simd.W512, 1<<14, 4)
	core := uarch.SkylakeServer()
	for seg := range p.segs {
		mops := p.segs[seg]
		d, err := p.buildDAG(mops)
		if err != nil {
			t.Fatalf("seg %d: buildDAG: %v", seg, err)
		}
		n := len(mops)
		ident := make([]int32, n)
		rev := make([]int32, n)
		hasEdge := false
		for i := 0; i < n; i++ {
			ident[i] = int32(i)
			rev[i] = int32(n - 1 - i)
			hasEdge = hasEdge || len(d.preds[i]) > 0
		}
		if !d.legalOrder(ident) {
			t.Errorf("seg %d: program order not legal", seg)
		}
		if !hasEdge {
			t.Fatalf("seg %d: DAG has no edges at all", seg)
		}
		if n > 1 && d.legalOrder(rev) {
			t.Errorf("seg %d: full reversal considered legal", seg)
		}
		specs := make([]uarch.MopSpec, n)
		for i := range mops {
			p.mopSpec(&mops[i], &specs[i])
		}
		for _, h := range AllHeuristics() {
			order := listSchedule(specs, d, h, &core)
			if !d.legalOrder(order) {
				t.Errorf("seg %d: %v produced an illegal order", seg, h)
			}
		}
	}
}

// TestSerializationRoundtrip: marshal -> unmarshal -> replay must be
// byte-identical, and the metadata (width, op counts, sched info) must
// survive the trip.
func TestSerializationRoundtrip(t *testing.T) {
	const iters = 4
	p, interpMem, k := recordAndCompileOpts(t, simd.W512, 1<<14, iters,
		CompileOptions{Schedule: true})
	blob, err := p.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	q, err := UnmarshalProgram(blob, 1<<14)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if q.Width() != p.Width() || q.RawOps != p.RawOps || q.FusedOps != p.FusedOps {
		t.Fatalf("metadata lost: %v %v %v vs %v %v %v",
			q.Width(), q.RawOps, q.FusedOps, p.Width(), p.RawOps, p.FusedOps)
	}
	if q.Sched() != p.Sched() {
		t.Errorf("sched info lost: %+v vs %+v", q.Sched(), p.Sched())
	}
	want := interpMem.Bytes(0, interpMem.Size())
	if got := replayBytes(t, q, k, 1<<14, iters); !bytes.Equal(want, got) {
		t.Fatalf("deserialized program replay diverged")
	}
}

// TestSerializationRejectsBadBytes: garbage, truncation, and plans
// whose memory footprint exceeds the target arena must all be refused.
func TestSerializationRejectsBadBytes(t *testing.T) {
	p, _, _ := recordAndCompile(t, simd.W256, 1<<14, 4)
	blob, err := p.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if _, err := UnmarshalProgram([]byte("not a program"), 0); err == nil {
		t.Error("garbage bytes accepted")
	}
	if _, err := UnmarshalProgram(blob[:len(blob)/2], 0); err == nil {
		t.Error("truncated blob accepted")
	}
	// The program touches addresses well past 256 bytes: a smaller
	// arena than it was recorded against must be rejected, not
	// replayed out of bounds.
	if _, err := UnmarshalProgram(blob, 256); err == nil {
		t.Error("plan accepted against an arena smaller than its footprint")
	} else if !strings.Contains(err.Error(), "outside arena") {
		t.Errorf("wrong rejection: %v", err)
	}
	// Full-size arena still accepts.
	if _, err := UnmarshalProgram(blob, 1<<14); err != nil {
		t.Errorf("valid blob rejected: %v", err)
	}
}
