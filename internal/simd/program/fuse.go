package program

import "vransim/internal/simd"

// The fusion pass collapses the recorded stream's hot patterns into
// single executable ops. Two correctness disciplines make every fusion
// exact without liveness analysis:
//
//  1. Fused ops preserve ALL effects of the sequence they replace —
//     every intermediate register is written its final value, so any
//     later op reading one observes exactly the interpreted state.
//  2. Lane-local op runs (adds, subs, min/max, and/or, broadcasts)
//     execute per lane in original op order. Because each such op's
//     output lane i depends only on lane i of its inputs, per-lane
//     sequential execution is equivalent to per-op sequential execution
//     under ANY register aliasing. Patterns containing permutes execute
//     the permute stepwise through scratch (like the engine does), and
//     patterns spanning loads and stores are only fused when the store
//     ranges are disjoint from the load ranges and each other.

// fuse lowers a raw segment, greedily matching fusion patterns and
// falling back to singletons.
func (p *Program) fuse(raw []rawOp) []mop {
	out := make([]mop, 0, len(raw)/2+16)
	for i := 0; i < len(raw); {
		if m, n := p.tryCopyRun(raw[i:]); n > 0 {
			out = append(out, m)
			i += n
			continue
		}
		if m, n := p.tryGammaRun(raw[i:]); n > 0 {
			out = append(out, m)
			i += n
			continue
		}
		if m, n := p.tryExtRun(raw[i:]); n > 0 {
			out = append(out, m)
			i += n
			continue
		}
		if m, n := p.tryGammaVec(raw[i:]); n > 0 {
			out = append(out, m)
			i += n
			continue
		}
		if m, n := p.tryExtVec(raw[i:]); n > 0 {
			out = append(out, m)
			i += n
			continue
		}
		if m, n := p.tryAlphaStepP(raw[i:]); n > 0 {
			out = append(out, m)
			i += n
			continue
		}
		if m, n := p.tryBetaStepP(raw[i:]); n > 0 {
			out = append(out, m)
			i += n
			continue
		}
		if m, n := p.tryQuadGather(raw[i:]); n > 0 {
			out = append(out, m)
			i += n
			continue
		}
		if m, n := p.tryQuadScatter(raw[i:]); n > 0 {
			out = append(out, m)
			i += n
			continue
		}
		if m, n := p.tryPack(raw[i:]); n > 0 {
			out = append(out, m)
			i += n
			continue
		}
		if m, n := p.trySelect(raw[i:]); n > 0 {
			out = append(out, m)
			i += n
			continue
		}
		if m, n := p.tryRecurse(raw[i:]); n > 0 {
			out = append(out, m)
			i += n
			continue
		}
		if m, n := p.tryHmax(raw[i:]); n > 0 {
			out = append(out, m)
			i += n
			continue
		}
		if m, n := p.tryNormSub(raw[i:]); n > 0 {
			out = append(out, m)
			i += n
			continue
		}
		out = append(out, single(raw[i]))
		i++
	}
	return out
}

// pushAux appends operand words to the program pool and returns their
// offset.
func (p *Program) pushAux(xs ...int64) int32 {
	o := int32(len(p.aux))
	p.aux = append(p.aux, xs...)
	return o
}

// disjoint reports whether [a, a+n) and [b, b+n) do not overlap.
func disjoint(a, b, n int64) bool { return a+n <= b || b+n <= a }

// tryCopyRun collapses a run of scalar element copies (the decoder's
// interleave gather/scatter loops and arrangement tails, K copies each)
// into one op over a flat (dst, src) address table.
func (p *Program) tryCopyRun(raw []rawOp) (mop, int) {
	n := 0
	for n < len(raw) && raw[n].kind == simd.PCopy16 {
		n++
	}
	if n < 4 {
		return mop{}, 0
	}
	tab := int32(len(p.aux))
	for _, r := range raw[:n] {
		p.aux = append(p.aux, int64(r.addr), int64(r.addr2))
	}
	return mop{kind: mCopyRun, tab: tab, n: int32(n)}, n
}

// tryGammaRun collapses a run of scalar branch-metric tail points
// (the k % GroupLanes remainder of the gamma phase).
func (p *Program) tryGammaRun(raw []rawOp) (mop, int) {
	n := 0
	for n < len(raw) && raw[n].kind == simd.PGammaPoint {
		n++
	}
	if n < 2 {
		return mop{}, 0
	}
	tab := int32(len(p.aux))
	for _, r := range raw[:n] {
		p.aux = append(p.aux, int64(r.addr), int64(r.addr2),
			int64(p.aux32[r.tab]), int64(p.aux32[r.tab+1]), int64(p.aux32[r.tab+2]))
	}
	return mop{kind: mGammaRun, tab: tab, n: int32(n)}, n
}

// tryExtRun collapses a run of scalar extrinsic tail points sharing one
// clamp bound.
func (p *Program) tryExtRun(raw []rawOp) (mop, int) {
	n := 0
	for n < len(raw) && raw[n].kind == simd.PExtPoint && raw[n].imm == raw[0].imm {
		n++
	}
	if n < 2 {
		return mop{}, 0
	}
	tab := int32(len(p.aux))
	for _, r := range raw[:n] {
		p.aux = append(p.aux, int64(r.addr),
			int64(p.aux32[r.tab]), int64(p.aux32[r.tab+1]), int64(p.aux32[r.tab+2]))
	}
	return mop{kind: mExtRun, tab: tab, n: int32(n), imm: int64(raw[0].imm)}, n
}

// kindsAre matches the next ops' kinds exactly.
func kindsAre(raw []rawOp, kinds ...simd.ProgKind) bool {
	if len(raw) < len(kinds) {
		return false
	}
	for i, k := range kinds {
		if raw[i].kind != k {
			return false
		}
	}
	return true
}

// tryGammaVec fuses the gamma inner-loop group
//
//	load s; load p; load la; padds t,s,la; padds g0,t,p; psubs g1,t,p;
//	store g0; store g1
//
// into one op that streams memory -> memory, still writing the six
// registers their final values. All eight ops are elementwise, so the
// per-lane execution is exact; the store ranges must be disjoint from
// the load ranges (and each other) for the lane-interleaved memory
// order to be equivalent.
func (p *Program) tryGammaVec(raw []rawOp) (mop, int) {
	if !kindsAre(raw, simd.PLoad, simd.PLoad, simd.PLoad,
		simd.PAddS, simd.PAddS, simd.PSubS, simd.PStore, simd.PStore) {
		return mop{}, 0
	}
	wb := int64(p.w)
	ls, lp, lla, at, ag0, sg1, st0, st1 := raw[0], raw[1], raw[2], raw[3], raw[4], raw[5], raw[6], raw[7]
	if ls.imm != int32(wb) || lp.imm != int32(wb) || lla.imm != int32(wb) ||
		st0.imm != int32(wb) || st1.imm != int32(wb) {
		return mop{}, 0
	}
	if at.a != ls.d || at.b != lla.d ||
		ag0.a != at.d || ag0.b != lp.d ||
		sg1.a != at.d || sg1.b != lp.d ||
		st0.a != ag0.d || st1.a != sg1.d {
		return mop{}, 0
	}
	for _, sa := range []int64{int64(st0.addr), int64(st1.addr)} {
		for _, la := range []int64{int64(ls.addr), int64(lp.addr), int64(lla.addr)} {
			if !disjoint(sa, la, wb) {
				return mop{}, 0
			}
		}
	}
	if !disjoint(int64(st0.addr), int64(st1.addr), wb) {
		return mop{}, 0
	}
	tab := p.pushAux(
		int64(off(ls.d)), int64(off(lp.d)), int64(off(lla.d)),
		int64(off(at.d)), int64(off(ag0.d)), int64(off(sg1.d)),
		int64(ls.addr), int64(lp.addr), int64(lla.addr),
		int64(st0.addr), int64(st1.addr),
	)
	return mop{kind: mGammaVec, tab: tab}, 8
}

// tryExtVec fuses the extrinsic-finalization inner-loop group
//
//	load dvec; load s; load la; padds t,s,la; psraw half,dvec,1;
//	psubs half,half,t; pmin half,half,lim; pmax half,half,nlim;
//	store half
func (p *Program) tryExtVec(raw []rawOp) (mop, int) {
	if !kindsAre(raw, simd.PLoad, simd.PLoad, simd.PLoad,
		simd.PAddS, simd.PSra, simd.PSubS, simd.PMinS, simd.PMaxS, simd.PStore) {
		return mop{}, 0
	}
	wb := int64(p.w)
	ld, ls, lla, at, sr, sb, mn, mx, st := raw[0], raw[1], raw[2], raw[3], raw[4], raw[5], raw[6], raw[7], raw[8]
	if ld.imm != int32(wb) || ls.imm != int32(wb) || lla.imm != int32(wb) || st.imm != int32(wb) {
		return mop{}, 0
	}
	half := sr.d
	if at.a != ls.d || at.b != lla.d ||
		sr.a != ld.d ||
		sb.d != half || sb.a != half || sb.b != at.d ||
		mn.d != half || mn.a != half ||
		mx.d != half || mx.a != half ||
		st.a != half {
		return mop{}, 0
	}
	for _, la := range []int64{int64(ld.addr), int64(ls.addr), int64(lla.addr)} {
		if !disjoint(int64(st.addr), la, wb) {
			return mop{}, 0
		}
	}
	tab := p.pushAux(
		int64(off(ld.d)), int64(off(ls.d)), int64(off(lla.d)),
		int64(off(at.d)), int64(off(half)), int64(off(mn.b)), int64(off(mx.b)),
		int64(ld.addr), int64(ls.addr), int64(lla.addr), int64(st.addr),
	)
	return mop{kind: mExtVec, tab: tab, imm: int64(sr.imm)}, 9
}

// tryPack fuses the branch-metric gather: per-block broadcast-from-
// memory masked into its lane group and OR-merged,
//
//	bcastmem pA,addr0; pand dst,pA,m0;
//	( bcastmem pA,addr_b; pand pT,pA,m_b; por dst,dst,pT ) × (nb-1)
//
// All ops are lane-local, so per-lane execution in op order is exact.
func (p *Program) tryPack(raw []rawOp) (mop, int) {
	if !kindsAre(raw, simd.PBcastMem, simd.PAnd) {
		return mop{}, 0
	}
	pA := raw[0].d
	dst := raw[1].d
	if raw[1].a != pA {
		return mop{}, 0
	}
	nb := 1
	pT := int16(-1)
	i := 2
	for kindsAre(raw[i:], simd.PBcastMem, simd.PAnd, simd.POr) &&
		raw[i].d == pA &&
		raw[i+1].a == pA && (pT < 0 || raw[i+1].d == pT) && raw[i+1].d != dst && raw[i+1].d != pA &&
		raw[i+2].d == dst && raw[i+2].a == dst && raw[i+2].b == raw[i+1].d {
		pT = raw[i+1].d
		nb++
		i += 3
	}
	if nb < 2 {
		return mop{}, 0
	}
	tab := p.pushAux(int64(off(dst)), int64(off(pA)), int64(off(pT)))
	p.pushAux(int64(raw[0].addr), int64(off(raw[1].b)))
	for b := 1; b < nb; b++ {
		j := 2 + 3*(b-1)
		p.pushAux(int64(raw[j].addr), int64(off(raw[j+1].b)))
	}
	return mop{kind: mPack, tab: tab, n: int32(nb)}, i
}

// trySelect fuses the six-op branch-metric mask select
//
//	pand t1,bg0,m0; pand t2,bg1,m0n; por bm0,t1,t2;
//	pand t1,ng1,m1; pand t2,ng0,m1n; por bm1,t1,t2
func (p *Program) trySelect(raw []rawOp) (mop, int) {
	if !kindsAre(raw, simd.PAnd, simd.PAnd, simd.POr, simd.PAnd, simd.PAnd, simd.POr) {
		return mop{}, 0
	}
	t1, t2 := raw[0].d, raw[1].d
	if raw[2].a != t1 || raw[2].b != t2 ||
		raw[3].d != t1 || raw[4].d != t2 ||
		raw[5].a != t1 || raw[5].b != t2 {
		return mop{}, 0
	}
	tab := p.pushAux(
		int64(off(t1)), int64(off(t2)),
		int64(off(raw[0].a)), int64(off(raw[0].b)),
		int64(off(raw[1].a)), int64(off(raw[1].b)),
		int64(off(raw[2].d)),
		int64(off(raw[3].a)), int64(off(raw[3].b)),
		int64(off(raw[4].a)), int64(off(raw[4].b)),
		int64(off(raw[5].d)),
	)
	return mop{kind: mSelect, tab: tab}, 6
}

// tryRecurse fuses the trellis recursion step
//
//	vpermw r0,src,tabA; vpermw r1,src,tabB; padds c0,r0,x0; padds c1,r1,x1
//
// optionally followed by pmax dst,c0,c1 (the alpha form; the beta form
// interposes the posterior extraction before its max). The permutes
// execute stepwise through scratch, so any aliasing behaves exactly as
// the engine's PermuteW sequence.
func (p *Program) tryRecurse(raw []rawOp) (mop, int) {
	if !kindsAre(raw, simd.PPermute, simd.PPermute, simd.PAddS, simd.PAddS) {
		return mop{}, 0
	}
	p0, p1, a0, a1 := raw[0], raw[1], raw[2], raw[3]
	if p1.a != p0.a || a0.a != p0.d || a1.a != p1.d {
		return mop{}, 0
	}
	n := 4
	maxD := int32(-1)
	if kindsAre(raw[4:], simd.PMaxS) && raw[4].a == a0.d && raw[4].b == a1.d {
		maxD = off(raw[4].d)
		n = 5
	}
	tab := p.pushAux(
		int64(off(p0.d)), int64(off(p1.d)), int64(off(p0.a)),
		int64(p0.tab), int64(p1.tab),
		int64(off(a0.d)), int64(off(a0.b)),
		int64(off(a1.d)), int64(off(a1.b)),
		int64(maxD),
	)
	return mop{kind: mRecurse, tab: tab}, n
}

// tryHmax fuses the intra-block horizontal max
//
//	vpermw tmp,v,t0; pmax dst,v,tmp;
//	vpermw tmp,dst,t1; pmax dst,dst,tmp;
//	vpermw tmp,dst,t2; pmax dst,dst,tmp
func (p *Program) tryHmax(raw []rawOp) (mop, int) {
	if !kindsAre(raw, simd.PPermute, simd.PMaxS, simd.PPermute, simd.PMaxS, simd.PPermute, simd.PMaxS) {
		return mop{}, 0
	}
	tmp := raw[0].d
	v := raw[0].a
	dst := raw[1].d
	if tmp == dst || raw[1].a != v || raw[1].b != tmp ||
		raw[2].d != tmp || raw[2].a != dst ||
		raw[3].d != dst || raw[3].a != dst || raw[3].b != tmp ||
		raw[4].d != tmp || raw[4].a != dst ||
		raw[5].d != dst || raw[5].a != dst || raw[5].b != tmp {
		return mop{}, 0
	}
	tab := p.pushAux(
		int64(off(tmp)), int64(off(v)), int64(off(dst)),
		int64(raw[0].tab), int64(raw[2].tab), int64(raw[4].tab),
	)
	return mop{kind: mHmax, tab: tab}, 6
}

// distinctRegs reports whether all register ids are pairwise distinct.
// The packed-step fusions execute whole recorded phases in one pass,
// which is only equivalent to op-by-op execution when no written
// register aliases another operand still live in the sequence.
func distinctRegs(ids ...int16) bool {
	for i := range ids {
		for j := i + 1; j < len(ids); j++ {
			if ids[i] == ids[j] {
				return false
			}
		}
	}
	return true
}

// fullTabs reports whether every index table covers all active lanes.
// The packed fusions index tables directly per lane (no short-table
// guard like permute's), so they only fire on full-length tables.
func (p *Program) fullTabs(tabs ...int32) bool {
	for _, tb := range tabs {
		if int(tb) >= len(p.idxTabs) || len(p.idxTabs[tb]) < p.lanes {
			return false
		}
	}
	return true
}

// tryQuadScatter fuses the packed gamma scatter step — OR-merging
// permutations of register sources into one accumulator and storing it:
//
//	vpermw acc,s0,t0; ( vpermw tmp,s_j,t_j; por acc,acc,tmp ) × m;
//	store acc
//
// No source register is written by the pattern (acc and tmp must not
// alias any source), so one per-lane pass over the combined tables is
// exact; acc gets the merged result and tmp the last permute's output.
func (p *Program) tryQuadScatter(raw []rawOp) (mop, int) {
	if !kindsAre(raw, simd.PPermute) {
		return mop{}, 0
	}
	acc := raw[0].d
	srcs := []int16{raw[0].a}
	tabs := []int32{raw[0].tab}
	tmp := int16(-1)
	i := 1
	for kindsAre(raw[i:], simd.PPermute, simd.POr) &&
		raw[i].d != acc && (tmp < 0 || raw[i].d == tmp) &&
		raw[i+1].d == acc && raw[i+1].a == acc && raw[i+1].b == raw[i].d {
		tmp = raw[i].d
		srcs = append(srcs, raw[i].a)
		tabs = append(tabs, raw[i].tab)
		i += 2
	}
	if len(srcs) < 2 {
		return mop{}, 0
	}
	if !kindsAre(raw[i:], simd.PStore) || raw[i].a != acc || int64(raw[i].imm) != int64(p.w) {
		return mop{}, 0
	}
	for _, s := range srcs {
		if s == acc || s == tmp {
			return mop{}, 0
		}
	}
	if !p.fullTabs(tabs...) {
		return mop{}, 0
	}
	tab := p.pushAux(int64(off(acc)), int64(off(tmp)), int64(raw[i].addr))
	for j := range srcs {
		p.pushAux(int64(off(srcs[j])), int64(tabs[j]))
	}
	return mop{kind: mQuadScatter, tab: tab, n: int32(len(srcs))}, i + 1
}

// tryQuadGather fuses the packed interleave gather step — permutations
// of freshly loaded source groups OR-merged and stored:
//
//	load r; vpermw acc,r,t0;
//	( load r; vpermw tmp,r,t_j; por acc,acc,tmp ) × m;
//	store acc
//
// All loads precede the store in the recorded order, so the replay must
// keep source reads ahead of the destination write: the store range is
// required to be disjoint from every load range.
func (p *Program) tryQuadGather(raw []rawOp) (mop, int) {
	wb := int64(p.w)
	if !kindsAre(raw, simd.PLoad, simd.PPermute) || int64(raw[0].imm) != wb {
		return mop{}, 0
	}
	rr := raw[0].d
	acc := raw[1].d
	if raw[1].a != rr || acc == rr {
		return mop{}, 0
	}
	addrs := []int64{int64(raw[0].addr)}
	tabs := []int32{raw[1].tab}
	tmp := int16(-1)
	i := 2
	for kindsAre(raw[i:], simd.PLoad, simd.PPermute, simd.POr) &&
		raw[i].d == rr && int64(raw[i].imm) == wb &&
		raw[i+1].a == rr && raw[i+1].d != acc && raw[i+1].d != rr && (tmp < 0 || raw[i+1].d == tmp) &&
		raw[i+2].d == acc && raw[i+2].a == acc && raw[i+2].b == raw[i+1].d {
		tmp = raw[i+1].d
		addrs = append(addrs, int64(raw[i].addr))
		tabs = append(tabs, raw[i+1].tab)
		i += 3
	}
	if !kindsAre(raw[i:], simd.PStore) || raw[i].a != acc || int64(raw[i].imm) != wb {
		return mop{}, 0
	}
	dstA := int64(raw[i].addr)
	for _, la := range addrs {
		if !disjoint(dstA, la, wb) {
			return mop{}, 0
		}
	}
	if !p.fullTabs(tabs...) {
		return mop{}, 0
	}
	tab := p.pushAux(int64(off(rr)), int64(off(acc)), int64(off(tmp)), dstA)
	for j := range addrs {
		p.pushAux(addrs[j], int64(tabs[j]))
	}
	return mop{kind: mQuadGather, tab: tab, n: int32(len(addrs))}, i + 1
}

// tryAlphaStepP fuses one whole packed alpha recursion step:
//
//	load qd; vpermw bm0,qd,tA0; vpermw bm1,qd,tA1;
//	vpermw a0,alpha,tP0; vpermw a1,alpha,tP1;
//	padds c0,a0,bm0; padds c1,a1,bm1; pmax alpha,c0,c1;
//	vpermw norm,alpha,tN; psubs alpha,alpha,norm; store alpha
//
// The replay reads the quad group and the old alpha, computes the new
// alpha into scratch, then renormalizes and stores — writing every
// intermediate register its final value. The load precedes the store in
// the replay exactly as recorded, so no disjointness check is needed.
func (p *Program) tryAlphaStepP(raw []rawOp) (mop, int) {
	if !kindsAre(raw, simd.PLoad, simd.PPermute, simd.PPermute, simd.PPermute, simd.PPermute,
		simd.PAddS, simd.PAddS, simd.PMaxS, simd.PPermute, simd.PSubS, simd.PStore) {
		return mop{}, 0
	}
	wb := int64(p.w)
	ld, pb0, pb1, pa0, pa1, ad0, ad1, mx, pn, sb, st := raw[0], raw[1], raw[2], raw[3], raw[4], raw[5], raw[6], raw[7], raw[8], raw[9], raw[10]
	if int64(ld.imm) != wb || int64(st.imm) != wb {
		return mop{}, 0
	}
	qd := ld.d
	alpha := pa0.a
	if pb0.a != qd || pb1.a != qd || pa1.a != alpha ||
		ad0.a != pa0.d || ad0.b != pb0.d ||
		ad1.a != pa1.d || ad1.b != pb1.d ||
		mx.d != alpha || mx.a != ad0.d || mx.b != ad1.d ||
		pn.a != alpha ||
		sb.d != alpha || sb.a != alpha || sb.b != pn.d ||
		st.a != alpha {
		return mop{}, 0
	}
	if !distinctRegs(qd, pb0.d, pb1.d, pa0.d, pa1.d, ad0.d, ad1.d, pn.d, alpha) {
		return mop{}, 0
	}
	if !p.fullTabs(pb0.tab, pb1.tab, pa0.tab, pa1.tab, pn.tab) {
		return mop{}, 0
	}
	tab := p.pushAux(
		int64(off(qd)), int64(off(pb0.d)), int64(off(pb1.d)),
		int64(off(pa0.d)), int64(off(pa1.d)),
		int64(off(ad0.d)), int64(off(ad1.d)),
		int64(off(pn.d)), int64(off(alpha)),
		int64(ld.addr), int64(st.addr),
		int64(pb0.tab), int64(pb1.tab), int64(pa0.tab), int64(pa1.tab), int64(pn.tab),
	)
	return mop{kind: mAlphaStepP, tab: tab}, 11
}

// matchHmaxOn checks raw[0:6] for the horizontal-max butterfly over v
// (the same shape tryHmax fuses) and returns its registers and tables.
func matchHmaxOn(raw []rawOp, v int16) (dst, tmp int16, t0, t1, t2 int32, ok bool) {
	if !kindsAre(raw, simd.PPermute, simd.PMaxS, simd.PPermute, simd.PMaxS, simd.PPermute, simd.PMaxS) {
		return
	}
	tmp = raw[0].d
	dst = raw[1].d
	if raw[0].a != v || tmp == dst ||
		raw[1].a != v || raw[1].b != tmp ||
		raw[2].d != tmp || raw[2].a != dst ||
		raw[3].d != dst || raw[3].a != dst || raw[3].b != tmp ||
		raw[4].d != tmp || raw[4].a != dst ||
		raw[5].d != dst || raw[5].a != dst || raw[5].b != tmp {
		return
	}
	return dst, tmp, raw[0].tab, raw[2].tab, raw[4].tab, true
}

// tryBetaStepP fuses one whole packed beta recursion step. The common
// prefix is
//
//	load qd; vpermw bm0,qd,tB0; vpermw bm1,qd,tB1;
//	vpermw b0,beta,tN0; vpermw b1,beta,tN1;
//	padds v0,b0,bm0; padds v1,b1,bm1
//
// followed either directly by the beta update (the tail-step form)
//
//	pmax beta,v0,v1; vpermw norm,beta,tN; psubs beta,beta,norm
//
// or (the in-block form) by the fused posterior extraction first:
//
//	load al; padds e0,al,v0; padds e1,al,v1;
//	hmax(e0 -> m0, tmp); hmax(e1 -> m1, tmp);
//	psubs dv,m0,m1; pextrw × nb; pmax beta,v0,v1; norm; sub
//
// Both hmax butterflies must share tmp and the three index tables. The
// recorded order has every load before every pextrw store; the replay
// preserves that order, so no load/store disjointness is required.
func (p *Program) tryBetaStepP(raw []rawOp) (mop, int) {
	if !kindsAre(raw, simd.PLoad, simd.PPermute, simd.PPermute, simd.PPermute, simd.PPermute,
		simd.PAddS, simd.PAddS) {
		return mop{}, 0
	}
	wb := int64(p.w)
	ld, pb0, pb1, pn0, pn1, av0, av1 := raw[0], raw[1], raw[2], raw[3], raw[4], raw[5], raw[6]
	if int64(ld.imm) != wb {
		return mop{}, 0
	}
	qd := ld.d
	beta := pn0.a
	if pb0.a != qd || pb1.a != qd || pn1.a != beta ||
		av0.a != pn0.d || av0.b != pb0.d ||
		av1.a != pn1.d || av1.b != pb1.d {
		return mop{}, 0
	}
	v0, v1 := av0.d, av1.d
	if !p.fullTabs(pb0.tab, pb1.tab, pn0.tab, pn1.tab) {
		return mop{}, 0
	}

	// finish matches the trailing beta update at raw[i:].
	finish := func(i int) (norm int16, ok bool) {
		if !kindsAre(raw[i:], simd.PMaxS, simd.PPermute, simd.PSubS) {
			return 0, false
		}
		mx, pn, sb := raw[i], raw[i+1], raw[i+2]
		if mx.d != beta || mx.a != v0 || mx.b != v1 ||
			pn.a != beta ||
			sb.d != beta || sb.a != beta || sb.b != pn.d ||
			!p.fullTabs(pn.tab) {
			return 0, false
		}
		return pn.d, true
	}

	if raw[7].kind == simd.PMaxS {
		// Tail-step form: no posterior extraction.
		norm, ok := finish(7)
		if !ok || !distinctRegs(qd, pb0.d, pb1.d, pn0.d, pn1.d, v0, v1, norm, beta) {
			return mop{}, 0
		}
		tab := p.pushAux(
			int64(off(qd)), int64(off(pb0.d)), int64(off(pb1.d)),
			int64(off(pn0.d)), int64(off(pn1.d)), int64(off(v0)), int64(off(v1)),
			int64(off(beta)), int64(off(norm)),
			int64(ld.addr),
			int64(pb0.tab), int64(pb1.tab), int64(pn0.tab), int64(pn1.tab), int64(raw[8].tab),
		)
		return mop{kind: mBetaStepP, tab: tab}, 10
	}

	// In-block form with posterior extraction.
	if !kindsAre(raw[7:], simd.PLoad, simd.PAddS, simd.PAddS) {
		return mop{}, 0
	}
	la, ae0, ae1 := raw[7], raw[8], raw[9]
	if int64(la.imm) != wb ||
		ae0.a != la.d || ae0.b != v0 ||
		ae1.a != la.d || ae1.b != v1 {
		return mop{}, 0
	}
	e0, e1 := ae0.d, ae1.d
	m0, tmp0, h0, h1, h2, ok := matchHmaxOn(raw[10:], e0)
	if !ok {
		return mop{}, 0
	}
	m1, tmp1, g0, g1, g2, ok := matchHmaxOn(raw[16:], e1)
	if !ok || tmp1 != tmp0 || g0 != h0 || g1 != h1 || g2 != h2 {
		return mop{}, 0
	}
	if !kindsAre(raw[22:], simd.PSubS) {
		return mop{}, 0
	}
	sd := raw[22]
	if sd.a != m0 || sd.b != m1 {
		return mop{}, 0
	}
	dv := sd.d
	i := 23
	nx := 0
	for i < len(raw) && raw[i].kind == simd.PExtrW && raw[i].a == dv {
		nx++
		i++
	}
	if nx == 0 {
		return mop{}, 0
	}
	norm, ok := finish(i)
	if !ok {
		return mop{}, 0
	}
	if !distinctRegs(qd, pb0.d, pb1.d, pn0.d, pn1.d, v0, v1,
		la.d, e0, e1, m0, m1, tmp0, dv, norm, beta) {
		return mop{}, 0
	}
	if !p.fullTabs(h0, h1, h2) {
		return mop{}, 0
	}
	tab := p.pushAux(
		int64(off(qd)), int64(off(pb0.d)), int64(off(pb1.d)),
		int64(off(pn0.d)), int64(off(pn1.d)), int64(off(v0)), int64(off(v1)),
		int64(off(beta)), int64(off(norm)),
		int64(ld.addr),
		int64(pb0.tab), int64(pb1.tab), int64(pn0.tab), int64(pn1.tab), int64(raw[i+1].tab),
		int64(off(la.d)), int64(off(e0)), int64(off(e1)),
		int64(off(m0)), int64(off(m1)), int64(off(tmp0)), int64(off(dv)),
		int64(la.addr),
		int64(h0), int64(h1), int64(h2),
	)
	for j := 23; j < 23+nx; j++ {
		p.pushAux(int64(raw[j].addr), int64(raw[j].imm))
	}
	return mop{kind: mBetaStepP, tab: tab, imm: 1, n: int32(nx)}, i + 3
}

// tryNormSub fuses the renormalization pair
//
//	vpermw norm,v,tab; psubs v,v,norm
func (p *Program) tryNormSub(raw []rawOp) (mop, int) {
	if !kindsAre(raw, simd.PPermute, simd.PSubS) {
		return mop{}, 0
	}
	norm, v := raw[0].d, raw[0].a
	if norm == v || raw[1].d != v || raw[1].a != v || raw[1].b != norm {
		return mop{}, 0
	}
	return mop{kind: mNormSub, d: off(v), a: off(norm), tab: raw[0].tab}, 2
}
