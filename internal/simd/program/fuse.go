package program

import "vransim/internal/simd"

// The fusion pass collapses the recorded stream's hot patterns into
// single executable ops. Two correctness disciplines make every fusion
// exact without liveness analysis:
//
//  1. Fused ops preserve ALL effects of the sequence they replace —
//     every intermediate register is written its final value, so any
//     later op reading one observes exactly the interpreted state.
//  2. Lane-local op runs (adds, subs, min/max, and/or, broadcasts)
//     execute per lane in original op order. Because each such op's
//     output lane i depends only on lane i of its inputs, per-lane
//     sequential execution is equivalent to per-op sequential execution
//     under ANY register aliasing. Patterns containing permutes execute
//     the permute stepwise through scratch (like the engine does), and
//     patterns spanning loads and stores are only fused when the store
//     ranges are disjoint from the load ranges and each other.

// fuse lowers a raw segment, greedily matching fusion patterns and
// falling back to singletons.
func (p *Program) fuse(raw []rawOp) []mop {
	out := make([]mop, 0, len(raw)/2+16)
	for i := 0; i < len(raw); {
		if m, n := p.tryCopyRun(raw[i:]); n > 0 {
			out = append(out, m)
			i += n
			continue
		}
		if m, n := p.tryGammaRun(raw[i:]); n > 0 {
			out = append(out, m)
			i += n
			continue
		}
		if m, n := p.tryExtRun(raw[i:]); n > 0 {
			out = append(out, m)
			i += n
			continue
		}
		if m, n := p.tryGammaVec(raw[i:]); n > 0 {
			out = append(out, m)
			i += n
			continue
		}
		if m, n := p.tryExtVec(raw[i:]); n > 0 {
			out = append(out, m)
			i += n
			continue
		}
		if m, n := p.tryPack(raw[i:]); n > 0 {
			out = append(out, m)
			i += n
			continue
		}
		if m, n := p.trySelect(raw[i:]); n > 0 {
			out = append(out, m)
			i += n
			continue
		}
		if m, n := p.tryRecurse(raw[i:]); n > 0 {
			out = append(out, m)
			i += n
			continue
		}
		if m, n := p.tryHmax(raw[i:]); n > 0 {
			out = append(out, m)
			i += n
			continue
		}
		if m, n := p.tryNormSub(raw[i:]); n > 0 {
			out = append(out, m)
			i += n
			continue
		}
		out = append(out, single(raw[i]))
		i++
	}
	return out
}

// pushAux appends operand words to the program pool and returns their
// offset.
func (p *Program) pushAux(xs ...int64) int32 {
	o := int32(len(p.aux))
	p.aux = append(p.aux, xs...)
	return o
}

// disjoint reports whether [a, a+n) and [b, b+n) do not overlap.
func disjoint(a, b, n int64) bool { return a+n <= b || b+n <= a }

// tryCopyRun collapses a run of scalar element copies (the decoder's
// interleave gather/scatter loops and arrangement tails, K copies each)
// into one op over a flat (dst, src) address table.
func (p *Program) tryCopyRun(raw []rawOp) (mop, int) {
	n := 0
	for n < len(raw) && raw[n].kind == simd.PCopy16 {
		n++
	}
	if n < 4 {
		return mop{}, 0
	}
	tab := int32(len(p.aux))
	for _, r := range raw[:n] {
		p.aux = append(p.aux, int64(r.addr), int64(r.addr2))
	}
	return mop{kind: mCopyRun, tab: tab, n: int32(n)}, n
}

// tryGammaRun collapses a run of scalar branch-metric tail points
// (the k % GroupLanes remainder of the gamma phase).
func (p *Program) tryGammaRun(raw []rawOp) (mop, int) {
	n := 0
	for n < len(raw) && raw[n].kind == simd.PGammaPoint {
		n++
	}
	if n < 2 {
		return mop{}, 0
	}
	tab := int32(len(p.aux))
	for _, r := range raw[:n] {
		p.aux = append(p.aux, int64(r.addr), int64(r.addr2),
			int64(p.aux32[r.tab]), int64(p.aux32[r.tab+1]), int64(p.aux32[r.tab+2]))
	}
	return mop{kind: mGammaRun, tab: tab, n: int32(n)}, n
}

// tryExtRun collapses a run of scalar extrinsic tail points sharing one
// clamp bound.
func (p *Program) tryExtRun(raw []rawOp) (mop, int) {
	n := 0
	for n < len(raw) && raw[n].kind == simd.PExtPoint && raw[n].imm == raw[0].imm {
		n++
	}
	if n < 2 {
		return mop{}, 0
	}
	tab := int32(len(p.aux))
	for _, r := range raw[:n] {
		p.aux = append(p.aux, int64(r.addr),
			int64(p.aux32[r.tab]), int64(p.aux32[r.tab+1]), int64(p.aux32[r.tab+2]))
	}
	return mop{kind: mExtRun, tab: tab, n: int32(n), imm: int64(raw[0].imm)}, n
}

// kindsAre matches the next ops' kinds exactly.
func kindsAre(raw []rawOp, kinds ...simd.ProgKind) bool {
	if len(raw) < len(kinds) {
		return false
	}
	for i, k := range kinds {
		if raw[i].kind != k {
			return false
		}
	}
	return true
}

// tryGammaVec fuses the gamma inner-loop group
//
//	load s; load p; load la; padds t,s,la; padds g0,t,p; psubs g1,t,p;
//	store g0; store g1
//
// into one op that streams memory -> memory, still writing the six
// registers their final values. All eight ops are elementwise, so the
// per-lane execution is exact; the store ranges must be disjoint from
// the load ranges (and each other) for the lane-interleaved memory
// order to be equivalent.
func (p *Program) tryGammaVec(raw []rawOp) (mop, int) {
	if !kindsAre(raw, simd.PLoad, simd.PLoad, simd.PLoad,
		simd.PAddS, simd.PAddS, simd.PSubS, simd.PStore, simd.PStore) {
		return mop{}, 0
	}
	wb := int64(p.w)
	ls, lp, lla, at, ag0, sg1, st0, st1 := raw[0], raw[1], raw[2], raw[3], raw[4], raw[5], raw[6], raw[7]
	if ls.imm != int32(wb) || lp.imm != int32(wb) || lla.imm != int32(wb) ||
		st0.imm != int32(wb) || st1.imm != int32(wb) {
		return mop{}, 0
	}
	if at.a != ls.d || at.b != lla.d ||
		ag0.a != at.d || ag0.b != lp.d ||
		sg1.a != at.d || sg1.b != lp.d ||
		st0.a != ag0.d || st1.a != sg1.d {
		return mop{}, 0
	}
	for _, sa := range []int64{int64(st0.addr), int64(st1.addr)} {
		for _, la := range []int64{int64(ls.addr), int64(lp.addr), int64(lla.addr)} {
			if !disjoint(sa, la, wb) {
				return mop{}, 0
			}
		}
	}
	if !disjoint(int64(st0.addr), int64(st1.addr), wb) {
		return mop{}, 0
	}
	tab := p.pushAux(
		int64(off(ls.d)), int64(off(lp.d)), int64(off(lla.d)),
		int64(off(at.d)), int64(off(ag0.d)), int64(off(sg1.d)),
		int64(ls.addr), int64(lp.addr), int64(lla.addr),
		int64(st0.addr), int64(st1.addr),
	)
	return mop{kind: mGammaVec, tab: tab}, 8
}

// tryExtVec fuses the extrinsic-finalization inner-loop group
//
//	load dvec; load s; load la; padds t,s,la; psraw half,dvec,1;
//	psubs half,half,t; pmin half,half,lim; pmax half,half,nlim;
//	store half
func (p *Program) tryExtVec(raw []rawOp) (mop, int) {
	if !kindsAre(raw, simd.PLoad, simd.PLoad, simd.PLoad,
		simd.PAddS, simd.PSra, simd.PSubS, simd.PMinS, simd.PMaxS, simd.PStore) {
		return mop{}, 0
	}
	wb := int64(p.w)
	ld, ls, lla, at, sr, sb, mn, mx, st := raw[0], raw[1], raw[2], raw[3], raw[4], raw[5], raw[6], raw[7], raw[8]
	if ld.imm != int32(wb) || ls.imm != int32(wb) || lla.imm != int32(wb) || st.imm != int32(wb) {
		return mop{}, 0
	}
	half := sr.d
	if at.a != ls.d || at.b != lla.d ||
		sr.a != ld.d ||
		sb.d != half || sb.a != half || sb.b != at.d ||
		mn.d != half || mn.a != half ||
		mx.d != half || mx.a != half ||
		st.a != half {
		return mop{}, 0
	}
	for _, la := range []int64{int64(ld.addr), int64(ls.addr), int64(lla.addr)} {
		if !disjoint(int64(st.addr), la, wb) {
			return mop{}, 0
		}
	}
	tab := p.pushAux(
		int64(off(ld.d)), int64(off(ls.d)), int64(off(lla.d)),
		int64(off(at.d)), int64(off(half)), int64(off(mn.b)), int64(off(mx.b)),
		int64(ld.addr), int64(ls.addr), int64(lla.addr), int64(st.addr),
	)
	return mop{kind: mExtVec, tab: tab, imm: int64(sr.imm)}, 9
}

// tryPack fuses the branch-metric gather: per-block broadcast-from-
// memory masked into its lane group and OR-merged,
//
//	bcastmem pA,addr0; pand dst,pA,m0;
//	( bcastmem pA,addr_b; pand pT,pA,m_b; por dst,dst,pT ) × (nb-1)
//
// All ops are lane-local, so per-lane execution in op order is exact.
func (p *Program) tryPack(raw []rawOp) (mop, int) {
	if !kindsAre(raw, simd.PBcastMem, simd.PAnd) {
		return mop{}, 0
	}
	pA := raw[0].d
	dst := raw[1].d
	if raw[1].a != pA {
		return mop{}, 0
	}
	nb := 1
	pT := int16(-1)
	i := 2
	for kindsAre(raw[i:], simd.PBcastMem, simd.PAnd, simd.POr) &&
		raw[i].d == pA &&
		raw[i+1].a == pA && (pT < 0 || raw[i+1].d == pT) && raw[i+1].d != dst && raw[i+1].d != pA &&
		raw[i+2].d == dst && raw[i+2].a == dst && raw[i+2].b == raw[i+1].d {
		pT = raw[i+1].d
		nb++
		i += 3
	}
	if nb < 2 {
		return mop{}, 0
	}
	tab := p.pushAux(int64(off(dst)), int64(off(pA)), int64(off(pT)))
	p.pushAux(int64(raw[0].addr), int64(off(raw[1].b)))
	for b := 1; b < nb; b++ {
		j := 2 + 3*(b-1)
		p.pushAux(int64(raw[j].addr), int64(off(raw[j+1].b)))
	}
	return mop{kind: mPack, tab: tab, n: int32(nb)}, i
}

// trySelect fuses the six-op branch-metric mask select
//
//	pand t1,bg0,m0; pand t2,bg1,m0n; por bm0,t1,t2;
//	pand t1,ng1,m1; pand t2,ng0,m1n; por bm1,t1,t2
func (p *Program) trySelect(raw []rawOp) (mop, int) {
	if !kindsAre(raw, simd.PAnd, simd.PAnd, simd.POr, simd.PAnd, simd.PAnd, simd.POr) {
		return mop{}, 0
	}
	t1, t2 := raw[0].d, raw[1].d
	if raw[2].a != t1 || raw[2].b != t2 ||
		raw[3].d != t1 || raw[4].d != t2 ||
		raw[5].a != t1 || raw[5].b != t2 {
		return mop{}, 0
	}
	tab := p.pushAux(
		int64(off(t1)), int64(off(t2)),
		int64(off(raw[0].a)), int64(off(raw[0].b)),
		int64(off(raw[1].a)), int64(off(raw[1].b)),
		int64(off(raw[2].d)),
		int64(off(raw[3].a)), int64(off(raw[3].b)),
		int64(off(raw[4].a)), int64(off(raw[4].b)),
		int64(off(raw[5].d)),
	)
	return mop{kind: mSelect, tab: tab}, 6
}

// tryRecurse fuses the trellis recursion step
//
//	vpermw r0,src,tabA; vpermw r1,src,tabB; padds c0,r0,x0; padds c1,r1,x1
//
// optionally followed by pmax dst,c0,c1 (the alpha form; the beta form
// interposes the posterior extraction before its max). The permutes
// execute stepwise through scratch, so any aliasing behaves exactly as
// the engine's PermuteW sequence.
func (p *Program) tryRecurse(raw []rawOp) (mop, int) {
	if !kindsAre(raw, simd.PPermute, simd.PPermute, simd.PAddS, simd.PAddS) {
		return mop{}, 0
	}
	p0, p1, a0, a1 := raw[0], raw[1], raw[2], raw[3]
	if p1.a != p0.a || a0.a != p0.d || a1.a != p1.d {
		return mop{}, 0
	}
	n := 4
	maxD := int32(-1)
	if kindsAre(raw[4:], simd.PMaxS) && raw[4].a == a0.d && raw[4].b == a1.d {
		maxD = off(raw[4].d)
		n = 5
	}
	tab := p.pushAux(
		int64(off(p0.d)), int64(off(p1.d)), int64(off(p0.a)),
		int64(p0.tab), int64(p1.tab),
		int64(off(a0.d)), int64(off(a0.b)),
		int64(off(a1.d)), int64(off(a1.b)),
		int64(maxD),
	)
	return mop{kind: mRecurse, tab: tab}, n
}

// tryHmax fuses the intra-block horizontal max
//
//	vpermw tmp,v,t0; pmax dst,v,tmp;
//	vpermw tmp,dst,t1; pmax dst,dst,tmp;
//	vpermw tmp,dst,t2; pmax dst,dst,tmp
func (p *Program) tryHmax(raw []rawOp) (mop, int) {
	if !kindsAre(raw, simd.PPermute, simd.PMaxS, simd.PPermute, simd.PMaxS, simd.PPermute, simd.PMaxS) {
		return mop{}, 0
	}
	tmp := raw[0].d
	v := raw[0].a
	dst := raw[1].d
	if tmp == dst || raw[1].a != v || raw[1].b != tmp ||
		raw[2].d != tmp || raw[2].a != dst ||
		raw[3].d != dst || raw[3].a != dst || raw[3].b != tmp ||
		raw[4].d != tmp || raw[4].a != dst ||
		raw[5].d != dst || raw[5].a != dst || raw[5].b != tmp {
		return mop{}, 0
	}
	tab := p.pushAux(
		int64(off(tmp)), int64(off(v)), int64(off(dst)),
		int64(raw[0].tab), int64(raw[2].tab), int64(raw[4].tab),
	)
	return mop{kind: mHmax, tab: tab}, 6
}

// tryNormSub fuses the renormalization pair
//
//	vpermw norm,v,tab; psubs v,v,norm
func (p *Program) tryNormSub(raw []rawOp) (mop, int) {
	if !kindsAre(raw, simd.PPermute, simd.PSubS) {
		return mop{}, 0
	}
	norm, v := raw[0].d, raw[0].a
	if norm == v || raw[1].d != v || raw[1].a != v || raw[1].b != norm {
		return mop{}, 0
	}
	return mop{kind: mNormSub, d: off(v), a: off(norm), tab: raw[0].tab}, 2
}
