package program

import (
	"bytes"
	"errors"
	"testing"

	"vransim/internal/simd"
)

// synthKernel is a width-generic "decode-like" kernel exercising every
// recorded op kind and every fusion shape the compiler knows: vector
// arithmetic, the select and pack mask patterns, aliased and
// out-of-range permutes, the recursion and horizontal-max chains,
// scalar copy/gamma/ext helper runs, lane extract/insert, and register
// state that is live across iterations (acc). It deliberately allocates
// a throwaway register with NewVec every iteration — a fresh pointer
// each time — so compiling it at >= 4 iterations proves the verifier's
// register bijection rather than pointer identity.
type synthKernel struct {
	w                            simd.Width
	in, out, acc, scalars, gamma int64
	iters                        int
}

func newSynthKernel(w simd.Width, mem *simd.Memory) *synthKernel {
	k := &synthKernel{w: w}
	k.in = mem.Alloc(256, 64)
	k.out = mem.Alloc(512, 64)
	k.acc = mem.Alloc(128, 64)
	k.scalars = mem.Alloc(128, 64)
	k.gamma = mem.Alloc(128, 64)
	return k
}

// seed writes the kernel's initial memory; identical on the interpreted
// and replayed arenas.
func (k *synthKernel) seed(mem *simd.Memory) {
	for i := 0; i < 128; i++ {
		mem.WriteI16(k.in+int64(2*i), int16(37*i-900))
	}
	for i := 0; i < 64; i++ {
		mem.WriteI16(k.acc+int64(2*i), int16(3*i))
		mem.WriteI16(k.scalars+int64(2*i), int16(500-11*i))
	}
}

// run drives iters recorded iterations on e (whose ProgSink may be a
// Builder) after a constant-register prefix.
func (k *synthKernel) run(e *simd.Engine) {
	n := k.w.Lanes16()
	rev := make([]int, n)
	wild := make([]int, n)
	for i := range rev {
		rev[i] = n - 1 - i
		wild[i] = i
	}
	wild[0] = -2
	wild[n-1] = n + 7

	// Prefix: long-lived constants and masks (stable pointers).
	hi := e.NewVec()
	e.Broadcast16(hi, 4096)
	mask := e.NewVec()
	pat := make([]int16, n)
	for i := range pat {
		if i%3 == 0 {
			pat[i] = -1
		}
	}
	e.SetImm(mask, pat)
	acc := e.NewVec()
	e.LoadVec(acc, k.acc)

	for it := 0; it < k.iters; it++ {
		e.ProgMark("iteration")

		// Fresh pointer every iteration: verification must rebind it.
		scratch := e.NewVec()
		a, b, t1, t2, d := e.AcquireVec(), e.AcquireVec(), e.AcquireVec(), e.AcquireVec(), e.AcquireVec()

		e.LoadVec(a, k.in)
		e.LoadVec(b, k.in+int64(2*n))
		e.PAddSW(acc, acc, a) // cross-iteration register state
		e.PSubSW(t1, a, b)
		e.PMaxSW(t2, t1, b)
		e.PMinSW(t2, t2, hi)
		e.PSraW(t2, t2, 1)

		// Select shape: and,and,or,and,and,or.
		e.PAnd(t1, a, mask)
		e.PAndN(t2, mask, b)
		e.POr(d, t1, t2)
		e.PAnd(t1, d, mask)
		e.PAndN(t2, mask, a)
		e.POr(d, t1, t2)
		e.PXor(scratch, d, a)

		// Aliased and out-of-range permutes (replay parity with the
		// engine's zeroing semantics).
		e.PermuteW(d, d, rev)
		e.PermuteW(scratch, scratch, wild)
		e.StoreVec(k.out, d)
		e.StoreVec(k.out+int64(2*n), scratch)

		// Recursion shape: two permutes of one source + adds + max.
		e.PermuteW(t1, acc, rev)
		e.PermuteW(t2, acc, wild)
		e.PAddSW(t1, t1, a)
		e.PAddSW(t2, t2, b)
		e.PMaxSW(d, t1, t2)
		e.StoreVec(k.out+int64(4*n), d)
		e.StoreVec(k.acc, acc)

		// Scalar helper runs (copy / gamma / ext fusions).
		for i := 0; i < 6; i++ {
			e.CopyI16(k.out+int64(6*n+2*i), k.scalars+int64(2*i))
		}
		for i := 0; i < 3; i++ {
			e.ScalarGammaPoint(
				k.gamma+int64(4*i), k.gamma+int64(4*i+2),
				k.scalars+int64(2*i), k.scalars+int64(2*i+8), k.acc+int64(2*i))
		}
		for i := 0; i < 2; i++ {
			e.ScalarExtPoint(k.out+int64(8*n+2*i),
				k.scalars+int64(2*i), k.acc+int64(2*i), k.gamma+int64(4*i), 8191)
		}

		// Lane traffic and 128-bit views.
		e.PExtrWToMem(k.scalars+96, t2, n/2)
		e.PInsrWFromMem(t2, k.scalars+96, 0)
		e.Broadcast16FromMem(b, k.gamma)
		e.LoadVec128(t1, k.in)
		e.StoreVec128(k.out+int64(10*n), t1)
		if k.w != simd.W128 {
			e.VExtractI128(t1, t2, 1)
			e.StoreVec128(k.out+int64(12*n), t1)
		}
		if k.w == simd.W512 {
			e.VExtractI32x8(t1, acc, 1)
			e.StoreVec(k.out+256, t1)
		}
		e.StoreVec(k.out+int64(2*n), scratch)

		e.ReleaseVec(d, t2, t1, b, a)
		// scratch is deliberately NOT released: next iteration's NewVec
		// yields a different pointer.
	}
}

// recordAndCompile runs the kernel interpreted with a Builder attached
// and compiles the recording.
func recordAndCompile(t *testing.T, w simd.Width, memBytes int, iters int) (*Program, *simd.Memory, *synthKernel) {
	t.Helper()
	mem := simd.NewMemory(memBytes)
	e := simd.NewEngine(w, mem, nil)
	k := newSynthKernel(w, mem)
	k.seed(mem)
	k.iters = iters
	b := NewBuilder()
	e.SetProgSink(b)
	k.run(e)
	e.SetProgSink(nil)
	p, err := b.Compile(w)
	if err != nil {
		t.Fatalf("%v: compile: %v", w, err)
	}
	return p, mem, k
}

// TestReplayMatchesInterpreter is the core equivalence property: running
// SegFirst once and SegSteady iters-1 times over a freshly seeded arena
// must leave byte-identical memory to the interpreted run — across all
// widths, with register state carried across iterations and with
// per-iteration pointer churn in the recording.
func TestReplayMatchesInterpreter(t *testing.T) {
	const iters = 5
	for _, w := range simd.Widths {
		p, interpMem, k := recordAndCompile(t, w, 1<<14, iters)
		if p.Width() != w {
			t.Fatalf("%v: program width %v", w, p.Width())
		}

		replayMem := simd.NewMemory(1 << 14)
		// Same allocation sequence -> same addresses.
		rk := newSynthKernel(w, replayMem)
		if *rk != (synthKernel{w: w, in: k.in, out: k.out, acc: k.acc, scalars: k.scalars, gamma: k.gamma}) {
			t.Fatalf("%v: replay arena layout diverged", w)
		}
		rk.seed(replayMem)
		p.Run(replayMem, SegFirst)
		for it := 1; it < iters; it++ {
			p.Run(replayMem, SegSteady)
		}
		if !bytes.Equal(interpMem.Bytes(0, interpMem.Size()), replayMem.Bytes(0, replayMem.Size())) {
			for a := int64(0); a < int64(interpMem.Size()); a += 2 {
				if x, y := interpMem.ReadI16(a), replayMem.ReadI16(a); x != y {
					t.Errorf("%v: memory differs at %d: interpreted %d, replayed %d", w, a, x, y)
					break
				}
			}
		}
		if p.FusedOps[SegSteady] >= p.RawOps[SegSteady] {
			t.Errorf("%v: fusion did not shrink the steady segment (%d -> %d)",
				w, p.RawOps[SegSteady], p.FusedOps[SegSteady])
		}
	}
}

// TestReplayIsRestartable: replaying the same compiled program over a
// re-seeded arena must give the same bytes again (no hidden state left
// in the program between runs beyond its register file, which SegFirst
// fully re-establishes).
func TestReplayIsRestartable(t *testing.T) {
	const iters = 4
	p, interpMem, k := recordAndCompile(t, simd.W256, 1<<14, iters)
	for round := 0; round < 2; round++ {
		mem := simd.NewMemory(1 << 14)
		newSynthKernel(simd.W256, mem)
		k.seed(mem)
		p.Run(mem, SegFirst)
		for it := 1; it < iters; it++ {
			p.Run(mem, SegSteady)
		}
		if !bytes.Equal(interpMem.Bytes(0, interpMem.Size()), mem.Bytes(0, mem.Size())) {
			t.Fatalf("round %d: replay diverged from interpreter", round)
		}
	}
}

// TestCompileTooFewIterations: a single recorded iteration has no
// steady segment and must refuse to compile.
func TestCompileTooFewIterations(t *testing.T) {
	mem := simd.NewMemory(1 << 14)
	e := simd.NewEngine(simd.W128, mem, nil)
	k := newSynthKernel(simd.W128, mem)
	k.seed(mem)
	k.iters = 1
	b := NewBuilder()
	e.SetProgSink(b)
	k.run(e)
	e.SetProgSink(nil)
	if _, err := b.Compile(simd.W128); !errors.Is(err, ErrTooFewIterations) {
		t.Fatalf("compile of 1-iteration recording: %v, want ErrTooFewIterations", err)
	}
}

// TestCompileUnstableStream: an op stream that changes after the steady
// segment freezes — an extra op, or the same op with a different
// immediate — must abort with ErrUnstable, not silently compile.
func TestCompileUnstableStream(t *testing.T) {
	build := func(tamper func(e *simd.Engine, it int, v *simd.Vec)) error {
		mem := simd.NewMemory(1 << 12)
		e := simd.NewEngine(simd.W128, mem, nil)
		addr := mem.Alloc(64, 64)
		b := NewBuilder()
		e.SetProgSink(b)
		v := e.NewVec()
		for it := 0; it < 4; it++ {
			e.ProgMark("iteration")
			e.LoadVec(v, addr)
			e.PAddSW(v, v, v)
			e.StoreVec(addr, v)
			tamper(e, it, v)
		}
		e.SetProgSink(nil)
		_, err := b.Compile(simd.W128)
		return err
	}
	if err := build(func(e *simd.Engine, it int, v *simd.Vec) {
		if it == 3 {
			e.PMaxSW(v, v, v) // extra op after freeze
		}
	}); !errors.Is(err, ErrUnstable) {
		t.Errorf("extra op in iteration 3: %v, want ErrUnstable", err)
	}
	if err := build(func(e *simd.Engine, it int, v *simd.Vec) {
		imm := uint(1)
		if it == 3 {
			imm = 2 // same op, different immediate
		}
		e.PSraW(v, v, imm)
	}); !errors.Is(err, ErrUnstable) {
		t.Errorf("changed immediate in iteration 3: %v, want ErrUnstable", err)
	}
	if err := build(func(e *simd.Engine, it int, v *simd.Vec) {
		addr2 := int64(32)
		if it == 3 {
			addr2 = 48 // same op, different address
		}
		e.StoreVec(addr2, v)
	}); !errors.Is(err, ErrUnstable) {
		t.Errorf("changed address in iteration 3: %v, want ErrUnstable", err)
	}
	// Control: an untampered stream compiles.
	if err := build(func(*simd.Engine, int, *simd.Vec) {}); err != nil {
		t.Errorf("stable stream failed to compile: %v", err)
	}
}
