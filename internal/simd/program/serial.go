package program

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"vransim/internal/simd"
)

// This file is the wire format for compiled programs, used by the
// offline auto-tuner's persistent plan cache (internal/tune): a tuned
// serving process deserializes the winning plan instead of re-recording,
// re-fusing and re-searching. The bytes are only trusted after
// validation — every mop is walked with visitEffects and its register
// and memory footprint bounds-checked against the register file and the
// arena size the plan will run over, so a stale or corrupt cache entry
// is rejected instead of replaying into the wrong addresses.

// WireVersion is the serialization format version. It participates in
// the tuner's cache hash, so bumping it (for any change to the mop
// vocabulary, aux layouts or this encoding) invalidates every persisted
// plan at once.
const WireVersion = 1

type wireMop struct {
	K       uint8
	D, A, B int32
	Addr    int64
	Addr2   int64
	Imm     int64
	Tab, N  int32
}

type wireProgram struct {
	Version  int
	Width    int
	NReg     int
	Segs     [2][]wireMop
	IdxTabs  [][]int32
	LanePats [][]int16
	Aux32    []int32
	Aux      []int64
	RawOps   [2]int
	FusedOps [2]int
	Sched    SchedInfo
}

// MarshalBinary encodes the program for the plan cache.
func (p *Program) MarshalBinary() ([]byte, error) {
	wp := wireProgram{
		Version:  WireVersion,
		Width:    int(p.w),
		NReg:     len(p.regs) / regStride,
		IdxTabs:  p.idxTabs,
		LanePats: p.lanePats,
		Aux32:    p.aux32,
		Aux:      p.aux,
		RawOps:   p.RawOps,
		FusedOps: p.FusedOps,
		Sched:    p.sched,
	}
	for seg := range p.segs {
		ws := make([]wireMop, len(p.segs[seg]))
		for i, op := range p.segs[seg] {
			ws[i] = wireMop{
				K: op.kind, D: op.d, A: op.a, B: op.b,
				Addr: op.addr, Addr2: op.addr2, Imm: op.imm,
				Tab: op.tab, N: op.n,
			}
		}
		wp.Segs[seg] = ws
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&wp); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// maxWireRegs bounds the register-file size a deserialized program may
// request, so corrupt bytes cannot demand an absurd allocation. Real
// decode programs use tens of registers.
const maxWireRegs = 1 << 16

// UnmarshalProgram decodes and validates a program serialized by
// MarshalBinary. memSize is the byte size of the arena the program will
// replay over (every memory access must fall inside it); pass 0 to skip
// the arena bound (structural validation still runs). The returned
// program has a fresh zeroed register file, exactly like a freshly
// compiled one.
func UnmarshalProgram(data []byte, memSize int64) (*Program, error) {
	var wp wireProgram
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&wp); err != nil {
		return nil, fmt.Errorf("program: decode: %w", err)
	}
	if wp.Version != WireVersion {
		return nil, fmt.Errorf("program: wire version %d, want %d", wp.Version, WireVersion)
	}
	w := simd.Width(wp.Width)
	switch w {
	case simd.W128, simd.W256, simd.W512:
	default:
		return nil, fmt.Errorf("program: unknown width %d", wp.Width)
	}
	if wp.NReg < 1 || wp.NReg > maxWireRegs {
		return nil, fmt.Errorf("program: register count %d out of range", wp.NReg)
	}
	for i, tb := range wp.IdxTabs {
		if len(tb) > regStride {
			return nil, fmt.Errorf("program: index table %d has %d entries, max %d", i, len(tb), regStride)
		}
	}
	for i, pat := range wp.LanePats {
		if len(pat) > regStride {
			return nil, fmt.Errorf("program: lane pattern %d has %d lanes, max %d", i, len(pat), regStride)
		}
	}
	p := &Program{
		w:        w,
		lanes:    w.Lanes16(),
		regs:     make([]int16, wp.NReg*regStride),
		idxTabs:  wp.IdxTabs,
		lanePats: wp.LanePats,
		aux32:    wp.Aux32,
		aux:      wp.Aux,
		RawOps:   wp.RawOps,
		FusedOps: wp.FusedOps,
		sched:    wp.Sched,
	}
	for seg := range wp.Segs {
		mops := make([]mop, len(wp.Segs[seg]))
		for i, wm := range wp.Segs[seg] {
			mops[i] = mop{
				kind: wm.K, d: wm.D, a: wm.A, b: wm.B,
				addr: wm.Addr, addr2: wm.Addr2, imm: wm.Imm,
				tab: wm.Tab, n: wm.N,
			}
		}
		p.segs[seg] = mops
	}
	if err := p.validate(memSize); err != nil {
		return nil, err
	}
	return p, nil
}

// validate walks every mop's effects, bounds-checking register offsets
// against the register file and memory ranges against memSize (when
// positive). visitEffects itself rejects malformed aux windows, table
// ids and immediates.
func (p *Program) validate(memSize int64) error {
	nregs := int32(len(p.regs))
	var verr error
	v := &effectVisitor{
		reg: func(off int32, write bool) {
			if verr == nil && (off < 0 || off+regStride > nregs) {
				verr = fmt.Errorf("program: register offset %d outside file of %d lanes", off, nregs)
			}
		},
		mem: func(addr, n int64, write bool) {
			if verr == nil && (addr < 0 || n < 0 || (memSize > 0 && addr+n > memSize)) {
				verr = fmt.Errorf("program: memory access [%d,+%d) outside arena of %d", addr, n, memSize)
			}
		},
	}
	for seg := range p.segs {
		for i := range p.segs[seg] {
			if err := p.visitEffects(&p.segs[seg][i], v); err != nil {
				return err
			}
			if verr != nil {
				return verr
			}
		}
	}
	return nil
}
