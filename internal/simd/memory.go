package simd

import (
	"encoding/binary"
	"fmt"
)

// Memory is the flat byte-addressable memory the emulated instructions
// load from and store to. Addresses are plain offsets into the backing
// slice; the cache simulator in internal/cache interprets the same
// addresses when replaying the trace.
type Memory struct {
	data []byte
	// next is the bump-allocation cursor used by Alloc.
	next int64
}

// NewMemory creates a memory of the given size in bytes.
func NewMemory(size int) *Memory {
	return &Memory{data: make([]byte, size)}
}

// Size returns the memory capacity in bytes.
func (m *Memory) Size() int { return len(m.data) }

// Alloc reserves n bytes aligned to align and returns the base address.
// It panics if the memory is exhausted: workloads size their memories up
// front and exhaustion is a programming error, not a runtime condition.
func (m *Memory) Alloc(n int, align int) int64 {
	if align <= 0 {
		align = 1
	}
	base := (m.next + int64(align) - 1) / int64(align) * int64(align)
	if base+int64(n) > int64(len(m.data)) {
		panic(fmt.Sprintf("simd: memory exhausted: need %d bytes at %d, have %d", n, base, len(m.data)))
	}
	m.next = base + int64(n)
	return base
}

// AllocReset rewinds the bump allocator, invalidating prior allocations.
func (m *Memory) AllocReset() { m.next = 0 }

// AllocOffset reports the bump-allocation cursor: the address the next
// unaligned Alloc would return. Two memories that performed the same
// allocation sequence have equal cursors, which is how warm-started
// decode plans (whose compiled programs embed absolute arena addresses)
// prove their allocations landed where the recording run put them.
func (m *Memory) AllocOffset() int64 { return m.next }

// Remaining reports how many bytes are still available to Alloc (before
// alignment padding). Long-lived consumers that cache allocations check
// it to decide when a cache flush plus AllocReset is needed instead of
// letting Alloc panic.
func (m *Memory) Remaining() int64 { return int64(len(m.data)) - m.next }

// Bytes returns the n bytes starting at addr.
func (m *Memory) Bytes(addr int64, n int) []byte { return m.data[addr : addr+int64(n)] }

// ReadI16 reads a signed 16-bit little-endian value.
func (m *Memory) ReadI16(addr int64) int16 {
	return int16(binary.LittleEndian.Uint16(m.data[addr:]))
}

// WriteI16 writes a signed 16-bit little-endian value.
func (m *Memory) WriteI16(addr int64, x int16) {
	binary.LittleEndian.PutUint16(m.data[addr:], uint16(x))
}

// ReadI16s reads n consecutive int16 values starting at addr.
func (m *Memory) ReadI16s(addr int64, n int) []int16 {
	out := make([]int16, n)
	for i := range out {
		out[i] = m.ReadI16(addr + int64(2*i))
	}
	return out
}

// WriteI16s writes xs consecutively starting at addr.
func (m *Memory) WriteI16s(addr int64, xs []int16) {
	for i, x := range xs {
		m.WriteI16(addr+int64(2*i), x)
	}
}

// ReadU32 reads an unsigned 32-bit little-endian value.
func (m *Memory) ReadU32(addr int64) uint32 {
	return binary.LittleEndian.Uint32(m.data[addr:])
}

// WriteU32 writes an unsigned 32-bit little-endian value.
func (m *Memory) WriteU32(addr int64, x uint32) {
	binary.LittleEndian.PutUint32(m.data[addr:], x)
}
