package simd

// This file defines the semantic operation stream the Engine can record
// for the trace-replay compiler (internal/simd/program). The trace
// (internal/trace) carries what the *timing* layer needs — classes,
// ports, dependencies — but deliberately erases operand identity: a
// vpermw µop does not say which index table it used, a vmovdqa.const
// does not say which lane pattern it loaded. Replaying a kernel
// functionally needs exactly that erased information, so the Engine
// exposes a second, optional recording channel: every operation with a
// functional effect emits one ProgOp carrying its full semantics
// (register identities, addresses, immediates, index tables). A
// compiler can turn one recorded run of a deterministic kernel into a
// width-specialized straight-line program and replay it without method
// dispatch, per-lane closures or dependency bookkeeping.
//
// Recording is off unless a sink is attached with SetProgSink; the
// per-op cost is then one nil check, so the serving hot path pays
// nothing when not recording.

// ProgKind identifies the semantic operation a ProgOp records. The set
// mirrors the Engine's public API one-to-one (plus PClear for register
// recycling and the scalar-tail helpers).
type ProgKind uint8

// Recorded operation kinds.
const (
	// PClear zeroes Dst (AcquireVec/NewVec recycling a register).
	PClear ProgKind = iota
	// PAddS/PSubS/PMaxS/PMinS are the saturating 16-bit lanewise ops.
	PAddS
	PSubS
	PMaxS
	PMinS
	// PAnd/POr/PXor/PAndN are the bitwise register ops.
	PAnd
	POr
	PXor
	PAndN
	// PSra is the 16-bit arithmetic right shift by immediate (Imm).
	PSra
	// PBcastImm fills every active lane of Dst with Imm.
	PBcastImm
	// PBcastMem fills every active lane of Dst with the int16 at Addr.
	PBcastMem
	// PSetImm loads the Lanes pattern into Dst (full-register clear
	// first, exactly like Engine.SetImm).
	PSetImm
	// PPermute permutes 16-bit lanes of A into Dst by the Idx table.
	PPermute
	// PExt128 copies 128-bit half Imm of A into the low lanes of Dst,
	// zeroing the rest; PExt256 is the 256-bit analogue.
	PExt128
	PExt256
	// PLoad/PStore move Imm bytes between Dst/A and memory at Addr.
	PLoad
	PStore
	// PExtrW stores lane Imm of A to Addr; PInsrW loads Addr into lane
	// Imm of Dst.
	PExtrW
	PInsrW
	// PCopy16 copies one int16 from Addr2 to Addr (the scalar
	// element-copy helper used by interleavers and arrangement tails).
	PCopy16
	// PGammaPoint is the scalar branch-metric tail:
	// mem[Addr] = sat16(s+la+p), mem[Addr2] = sat16(s+la-p) with
	// s, p, la read from Xa[0..2].
	PGammaPoint
	// PExtPoint is the scalar extrinsic tail:
	// mem[Addr] = clamp(d>>1 - s - la, Imm) with s, la, d read from
	// Xa[0..2].
	PExtPoint
)

// ProgOp is one semantically complete engine operation. Dst/A/B
// identify registers by pointer; a sink maps pointer identity to
// virtual register numbers (the same *Vec recycled through
// AcquireVec/ReleaseVec is the same storage, which is exactly the
// dataflow a replay needs). Lanes and Idx may alias caller-owned
// storage: sinks that retain ops beyond the recording call must copy
// them.
type ProgOp struct {
	Kind       ProgKind
	Dst, A, B  *Vec
	Addr       int64
	Addr2      int64
	Imm        int64
	Lanes      []int16
	Idx        []int
	Xa         [3]int64
}

// ProgSink receives the recorded operation stream. Mark lets the
// kernel being recorded annotate structural boundaries (e.g. "one
// decoder iteration starts here") that a compiler can split on.
type ProgSink interface {
	Record(op ProgOp)
	Mark(name string)
}

// SetProgSink attaches (or, with nil, detaches) the semantic operation
// recorder. While attached, every functional engine operation is
// forwarded to the sink in execution order.
func (e *Engine) SetProgSink(s ProgSink) { e.prog = s }

// ProgSink returns the currently attached sink (nil when not recording).
func (e *Engine) ProgSink() ProgSink { return e.prog }

// ProgMark forwards a structural boundary marker to the attached sink;
// a no-op when not recording.
func (e *Engine) ProgMark(name string) {
	if e.prog != nil {
		e.prog.Mark(name)
	}
}

// rec3 forwards op to the attached sink. The name parallels the trace
// recorder's emit: emit feeds the timing layer, rec3 feeds the replay
// compiler.
func (e *Engine) rec3(op ProgOp) {
	if e.prog != nil {
		e.prog.Record(op)
	}
}
