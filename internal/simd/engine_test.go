package simd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vransim/internal/trace"
)

func newTestEngine(w Width) *Engine {
	return NewEngine(w, NewMemory(1<<16), trace.NewRecorder(1024))
}

func TestPAddSWLanes(t *testing.T) {
	for _, w := range Widths {
		e := newTestEngine(w)
		a, b, d := e.NewVec(), e.NewVec(), e.NewVec()
		n := w.Lanes16()
		for i := 0; i < n; i++ {
			a.SetLane16(i, int16(i*100))
			b.SetLane16(i, int16(-i*50))
		}
		e.PAddSW(d, a, b)
		for i := 0; i < n; i++ {
			want := satAddI16(int16(i*100), int16(-i*50))
			if got := d.Lane16(i); got != want {
				t.Errorf("%v lane %d = %d, want %d", w, i, got, want)
			}
		}
	}
}

func TestPMaxSW(t *testing.T) {
	e := newTestEngine(W128)
	a, b, d := e.NewVec(), e.NewVec(), e.NewVec()
	a.SetLanes16([]int16{1, -1, 100, -100, 32767, -32768, 0, 7})
	b.SetLanes16([]int16{2, -2, -100, 100, -32768, 32767, 0, 6})
	e.PMaxSW(d, a, b)
	want := []int16{2, -1, 100, 100, 32767, 32767, 0, 7}
	for i, wv := range want {
		if got := d.Lane16(i); got != wv {
			t.Errorf("lane %d = %d, want %d", i, got, wv)
		}
	}
}

func TestLogicalOps(t *testing.T) {
	e := newTestEngine(W256)
	a, b, d := e.NewVec(), e.NewVec(), e.NewVec()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < int(W256); i++ {
		a.b[i] = byte(rng.Intn(256))
		b.b[i] = byte(rng.Intn(256))
	}
	e.PAnd(d, a, b)
	for i := 0; i < int(W256); i++ {
		if d.b[i] != a.b[i]&b.b[i] {
			t.Fatalf("and byte %d wrong", i)
		}
	}
	e.POr(d, a, b)
	for i := 0; i < int(W256); i++ {
		if d.b[i] != a.b[i]|b.b[i] {
			t.Fatalf("or byte %d wrong", i)
		}
	}
	e.PXor(d, a, b)
	for i := 0; i < int(W256); i++ {
		if d.b[i] != a.b[i]^b.b[i] {
			t.Fatalf("xor byte %d wrong", i)
		}
	}
	e.PAndN(d, a, b)
	for i := 0; i < int(W256); i++ {
		if d.b[i] != ^a.b[i]&b.b[i] {
			t.Fatalf("andn byte %d wrong", i)
		}
	}
}

func TestAndOrMnemonicsByWidth(t *testing.T) {
	for _, tc := range []struct {
		w       Width
		wantAnd string
		wantOr  string
	}{{W128, "vpand", "vpor"}, {W256, "vpand", "vpor"}, {W512, "vpandd", "vpord"}} {
		e := newTestEngine(tc.w)
		a, b, d := e.NewVec(), e.NewVec(), e.NewVec()
		e.PAnd(d, a, b)
		e.POr(d, a, b)
		insts := e.Recorder().Insts()
		if insts[0].Mnemonic != tc.wantAnd {
			t.Errorf("%v and mnemonic = %q, want %q", tc.w, insts[0].Mnemonic, tc.wantAnd)
		}
		if insts[1].Mnemonic != tc.wantOr {
			t.Errorf("%v or mnemonic = %q, want %q", tc.w, insts[1].Mnemonic, tc.wantOr)
		}
	}
}

func TestBroadcastAndPermute(t *testing.T) {
	e := newTestEngine(W128)
	v, d := e.NewVec(), e.NewVec()
	e.Broadcast16(v, -42)
	for i := 0; i < 8; i++ {
		if v.Lane16(i) != -42 {
			t.Fatalf("broadcast lane %d = %d", i, v.Lane16(i))
		}
	}
	v.SetLanes16([]int16{10, 11, 12, 13, 14, 15, 16, 17})
	e.PermuteW(d, v, []int{7, 6, 5, 4, 3, 2, 1, 0})
	for i := 0; i < 8; i++ {
		if got := d.Lane16(i); got != int16(17-i) {
			t.Errorf("permute lane %d = %d, want %d", i, got, 17-i)
		}
	}
}

func TestRotateLanesLeft(t *testing.T) {
	for _, w := range Widths {
		e := newTestEngine(w)
		n := w.Lanes16()
		v, d := e.NewVec(), e.NewVec()
		for i := 0; i < n; i++ {
			v.SetLane16(i, int16(i))
		}
		for _, k := range []int{0, 1, 2, n - 1, n, n + 3} {
			e.RotateLanesLeft(d, v, k)
			for i := 0; i < n; i++ {
				want := int16((i + k) % n)
				if got := d.Lane16(i); got != want {
					t.Errorf("%v rot %d lane %d = %d, want %d", w, k, i, got, want)
				}
			}
		}
	}
}

func TestVExtractI128(t *testing.T) {
	e := newTestEngine(W256)
	a, d := e.NewVec(), e.NewVec()
	for i := 0; i < 16; i++ {
		a.SetLane16(i, int16(100+i))
	}
	e.VExtractI128(d, a, 1)
	for i := 0; i < 8; i++ {
		if got := d.Lane16(i); got != int16(108+i) {
			t.Errorf("upper half lane %d = %d, want %d", i, got, 108+i)
		}
	}
	for i := 8; i < 32; i++ {
		if d.Lane16(i) != 0 {
			t.Errorf("lane %d not zeroed", i)
		}
	}
	e.VExtractI128(d, a, 0)
	for i := 0; i < 8; i++ {
		if got := d.Lane16(i); got != int16(100+i) {
			t.Errorf("lower half lane %d = %d, want %d", i, got, 100+i)
		}
	}
}

func TestVExtractI32x8DestroysUpper(t *testing.T) {
	e := newTestEngine(W512)
	a, d := e.NewVec(), e.NewVec()
	for i := 0; i < 32; i++ {
		a.SetLane16(i, int16(i))
		d.SetLane16(i, int16(1000+i))
	}
	e.VExtractI32x8(d, a, 0)
	for i := 0; i < 16; i++ {
		if got := d.Lane16(i); got != int16(i) {
			t.Errorf("low lane %d = %d, want %d", i, got, i)
		}
	}
	for i := 16; i < 32; i++ {
		if d.Lane16(i) != 0 {
			t.Errorf("upper lane %d = %d, want 0 (vextracti32x8 zeroes the rest)", i, d.Lane16(i))
		}
	}
	e.VExtractI32x8(d, a, 1)
	for i := 0; i < 16; i++ {
		if got := d.Lane16(i); got != int16(16+i) {
			t.Errorf("sel=1 lane %d = %d, want %d", i, got, 16+i)
		}
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	for _, w := range Widths {
		e := newTestEngine(w)
		addr := e.Mem.Alloc(int(w), 64)
		src := e.NewVec()
		n := w.Lanes16()
		for i := 0; i < n; i++ {
			src.SetLane16(i, int16(-i*3))
		}
		e.StoreVec(addr, src)
		dst := e.NewVec()
		e.LoadVec(dst, addr)
		for i := 0; i < n; i++ {
			if dst.Lane16(i) != src.Lane16(i) {
				t.Errorf("%v lane %d mismatch after roundtrip", w, i)
			}
		}
	}
}

func TestPExtrWToMem(t *testing.T) {
	e := newTestEngine(W128)
	addr := e.Mem.Alloc(16, 16)
	v := e.NewVec()
	v.SetLanes16([]int16{5, -6, 7, -8, 9, -10, 11, -12})
	for i := 0; i < 8; i++ {
		e.PExtrWToMem(addr+int64(2*i), v, i)
	}
	got := e.Mem.ReadI16s(addr, 8)
	for i, want := range []int16{5, -6, 7, -8, 9, -10, 11, -12} {
		if got[i] != want {
			t.Errorf("mem[%d] = %d, want %d", i, got[i], want)
		}
	}
	// Each pextrw must be a 2-byte store µop.
	m := trace.MixOf(e.Recorder().Insts())
	if m.Count[trace.Store] != 8 {
		t.Errorf("store count = %d, want 8", m.Count[trace.Store])
	}
	if m.StoreBytes != 16 {
		t.Errorf("store bytes = %d, want 16", m.StoreBytes)
	}
}

func TestStoreLoadDependency(t *testing.T) {
	e := newTestEngine(W128)
	addr := e.Mem.Alloc(64, 64)
	v := e.NewVec()
	e.Broadcast16(v, 9)
	e.StoreVec(addr, v)
	d := e.NewVec()
	e.LoadVec(d, addr)
	insts := e.Recorder().Insts()
	load := insts[len(insts)-1]
	if load.Class != trace.Load {
		t.Fatalf("last inst class = %v, want load", load.Class)
	}
	storeIdx := int32(len(insts) - 2)
	if load.Deps[0] != storeIdx && load.Deps[1] != storeIdx {
		t.Errorf("load deps %v do not include store at %d", load.Deps, storeIdx)
	}
}

func TestRegisterDataflowDeps(t *testing.T) {
	e := newTestEngine(W128)
	a, b, c, d := e.NewVec(), e.NewVec(), e.NewVec(), e.NewVec()
	e.Broadcast16(a, 1) // idx 0
	e.Broadcast16(b, 2) // idx 1
	e.PAddSW(c, a, b)   // idx 2, deps {0,1}
	e.PMaxSW(d, c, a)   // idx 3, deps {2,0}
	insts := e.Recorder().Insts()
	if insts[2].Deps[0] != 0 || insts[2].Deps[1] != 1 {
		t.Errorf("padds deps = %v, want {0,1,-1}", insts[2].Deps)
	}
	if insts[3].Deps[0] != 2 || insts[3].Deps[1] != 0 {
		t.Errorf("pmax deps = %v, want {2,0,-1}", insts[3].Deps)
	}
}

func TestScalarEmission(t *testing.T) {
	e := newTestEngine(W128)
	e.EmitScalar("add", 5)
	e.EmitScalarChain("imul", 3)
	e.EmitBranch("jnz")
	m := trace.MixOf(e.Recorder().Insts())
	if m.Count[trace.ScalarALU] != 8 {
		t.Errorf("scalar count = %d, want 8", m.Count[trace.ScalarALU])
	}
	if m.Count[trace.Branch] != 1 {
		t.Errorf("branch count = %d, want 1", m.Count[trace.Branch])
	}
	// Chain must be serially dependent.
	insts := e.Recorder().Insts()
	if insts[6].Deps[0] != 5 || insts[7].Deps[0] != 6 {
		t.Errorf("chain deps broken: %v %v", insts[6].Deps, insts[7].Deps)
	}
}

func TestMemoryAlloc(t *testing.T) {
	m := NewMemory(1024)
	a := m.Alloc(10, 64)
	if a != 0 {
		t.Errorf("first alloc = %d, want 0", a)
	}
	b := m.Alloc(10, 64)
	if b != 64 {
		t.Errorf("second alloc = %d, want 64", b)
	}
	c := m.Alloc(4, 4)
	if c != 76 {
		t.Errorf("third alloc = %d, want 76", c)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on exhaustion")
		}
	}()
	m.Alloc(2048, 1)
}

func TestMemoryI16Helpers(t *testing.T) {
	m := NewMemory(256)
	xs := []int16{0, 1, -1, 32767, -32768, 42}
	m.WriteI16s(8, xs)
	got := m.ReadI16s(8, len(xs))
	for i := range xs {
		if got[i] != xs[i] {
			t.Errorf("i16[%d] = %d, want %d", i, got[i], xs[i])
		}
	}
	m.WriteU32(100, 0xdeadbeef)
	if m.ReadU32(100) != 0xdeadbeef {
		t.Error("u32 roundtrip failed")
	}
}

// Property: for any lane data, PAddSW/PSubSW on the engine agree with the
// scalar saturating reference in every active lane, at every width.
func TestEngineArithMatchesScalarReference(t *testing.T) {
	for _, w := range Widths {
		w := w
		f := func(raw []int16) bool {
			e := NewEngine(w, NewMemory(256), nil)
			n := w.Lanes16()
			a, b, d := e.NewVec(), e.NewVec(), e.NewVec()
			for i := 0; i < n; i++ {
				var x, y int16
				if 2*i < len(raw) {
					x = raw[2*i]
				}
				if 2*i+1 < len(raw) {
					y = raw[2*i+1]
				}
				a.SetLane16(i, x)
				b.SetLane16(i, y)
			}
			e.PAddSW(d, a, b)
			for i := 0; i < n; i++ {
				if d.Lane16(i) != satAddI16(a.Lane16(i), b.Lane16(i)) {
					return false
				}
			}
			e.PSubSW(d, a, b)
			for i := 0; i < n; i++ {
				if d.Lane16(i) != satSubI16(a.Lane16(i), b.Lane16(i)) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%v: %v", w, err)
		}
	}
}

func TestTraceMixString(t *testing.T) {
	e := newTestEngine(W128)
	a, b, d := e.NewVec(), e.NewVec(), e.NewVec()
	e.PAddSW(d, a, b)
	e.EmitScalar("add", 2)
	m := trace.MixOf(e.Recorder().Insts())
	if m.Total != 3 {
		t.Fatalf("total = %d, want 3", m.Total)
	}
	if f := m.Fraction(trace.VecALU); f < 0.33 || f > 0.34 {
		t.Errorf("vec fraction = %f", f)
	}
	if s := m.String(); s == "" {
		t.Error("empty mix string")
	}
}
